// Topology example: the rack-aware deployment substrate and the placement
// policies that drive it.
//
// The paper's sensitivity analysis stops at a 4-node Swarm cluster with a
// flat network. This walkthrough builds a 4-rack topology by hand, shows how
// transfer and data-plane latency follow the source→destination path, and
// then runs the rack-skew scenario twice — scale-out placed rack-local vs
// spread across the cluster — to measure what crossing the shared rack
// uplinks costs.
package main

import (
	"fmt"

	"drrs/internal/bench"
	"drrs/internal/cluster"
	"drrs/internal/netsim"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

func main() {
	// --- 1. A topology by hand -------------------------------------------
	// Two racks, two nodes each. Nodes expose 2 MB/s migration NICs; each
	// rack shares a 4 MB/s uplink with 2 ms of latency per hop. Every
	// cross-rack transfer serializes on its source rack's uplink, whichever
	// node it leaves from.
	s := simtime.NewScheduler()
	c := cluster.New(s)
	for _, r := range []string{"r0", "r1"} {
		c.AddRack(r, 4<<20, simtime.Ms(2))
		for n := 0; n < 2; n++ {
			c.AddNodeOnRack(r, fmt.Sprintf("%sn%d", r, n), 1.0, 2<<20).Slots = 4
		}
	}
	ep := func(i int) netsim.Endpoint { return netsim.Endpoint{Op: "agg", Index: i} }
	c.Place(ep(0), "r0n0")
	c.Place(ep(1), "r0n1") // same rack as 0
	c.Place(ep(2), "r1n0") // other rack

	base := simtime.Ms(0.5)
	fmt.Println("link latency follows the topology path:")
	fmt.Printf("  same node  : %v\n", c.LinkLatency(ep(0), ep(0), base))
	fmt.Printf("  same rack  : %v\n", c.LinkLatency(ep(0), ep(1), base))
	fmt.Printf("  cross rack : %v (base + both uplink hops)\n\n", c.LinkLatency(ep(0), ep(2), base))

	const mb = 1 << 20
	var sameRack, crossRack simtime.Time
	c.Transfer(ep(0), ep(1), 2*mb, func() { sameRack = s.Now() })
	s.Run()
	c.Transfer(ep(0), ep(2), 2*mb, func() { crossRack = s.Now() })
	s.Run()
	fmt.Println("a 2 MB state transfer:")
	fmt.Printf("  within rack r0      : %v (2 MB/s source NIC)\n", simtime.Duration(sameRack))
	fmt.Printf("  r0 → r1 over uplink : %v more (store-and-forward on the shared 4 MB/s uplink)\n",
		crossRack.Sub(sameRack))
	fmt.Printf("  r0 uplink carried   : %d MB\n\n", c.Rack("r0").OutBytes/mb)

	// --- 2. Placement policies -------------------------------------------
	// spread round-robins across all nodes; pack fills slots in node order;
	// rack-local keeps an operator inside the racks it already occupies.
	// Initial deployment and every scale-out wave consult the same policy.
	for _, name := range cluster.PolicyNames() {
		s2 := simtime.NewScheduler()
		c2 := cluster.New(s2)
		c2.Node("local").Unschedulable = true
		for _, r := range []string{"r0", "r1"} {
			c2.AddRack(r, 0, 0)
			for n := 0; n < 2; n++ {
				c2.AddNodeOnRack(r, fmt.Sprintf("%sn%d", r, n), 1.0, 0).Slots = 2
			}
		}
		c2.SetPolicy(cluster.PolicyByName(name))
		c2.PlaceInstances("agg", 0, 4)
		fmt.Printf("%-10s places agg[0..3] on:", name)
		for i := 0; i < 4; i++ {
			fmt.Printf(" %s", c2.NodeOf(netsim.Endpoint{Op: "agg", Index: i}).Name)
		}
		fmt.Println()
	}

	// --- 3. Rack-local vs spread scale-out, measured ---------------------
	// The rack-skew scenario packs the job onto one of four racks; the 16→24
	// scale-out either stays there or drags state across the 4 MB/s uplinks.
	fmt.Println("\nrack-skew scenario, DRRS, scale-out 16→24 (seed 1):")
	for _, placement := range []string{"rack-local", "spread"} {
		sc := bench.RackSkewScenario(1).WithPlacement(placement)
		o := sc.RunWith(func() scaling.Mechanism { return bench.Mechanisms("drrs") })
		w := o.Waves[0]
		fmt.Printf("  %-10s migration %8.0f ms  cross-rack %5.2f of %.2f MB  peak %6.1f ms\n",
			placement, w.Scale.MigrationDuration().Millis(),
			float64(o.CrossRackBytes)/mb, float64(o.TransferredBytes)/mb,
			o.PeakIn(o.ScaleAt, o.EndAt))
	}
	fmt.Println("\nrack-local scale-out never touches the uplinks; spread pays for")
	fmt.Println("every migrated group twice — the source NIC and the shared uplink.")
}
