// Quickstart: build a small keyed streaming job on the simulated engine,
// run it, rescale the aggregator 4→6 with DRRS mid-stream, and print what
// happened. This is the smallest end-to-end use of the public pieces:
// workload construction, the engine runtime, a scaling plan, and the DRRS
// mechanism.
package main

import (
	"fmt"

	"drrs/internal/core"
	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

func main() {
	// A 3-operator job: generator → keyed aggregator (4 instances, 64 key
	// groups) → sink, 2000 records/s for 6 simulated seconds.
	g, sink := workload.Build(workload.Config{
		AggParallelism:   4,
		MaxKeyGroups:     64,
		Keys:             500,
		RatePerSec:       2000,
		StateBytesPerKey: 1024,
		CostPerRecord:    200 * simtime.Microsecond,
		Duration:         simtime.Sec(6),
		EmitUpdates:      true,
		Seed:             42,
	})

	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 42})
	rt.Start()

	// At t=2s, rescale "agg" from 4 to 6 instances with full DRRS
	// (Decoupling & Re-routing + Record Scheduling + Subscale Division).
	var done simtime.Time
	s.After(simtime.Sec(2), func() {
		plan := scaling.UniformPlan(g, "agg", 6, simtime.Ms(50))
		fmt.Printf("t=%v  scaling agg 4→6: %d of 64 key groups migrate\n",
			s.Now(), len(plan.Moves))
		core.New(core.FullDRRS()).Start(rt, plan, func() { done = s.Now() })
	})

	// Run the whole simulation to completion (virtual time, so this is
	// instant in wall time).
	s.RunUntil(simtime.Time(simtime.Sec(6)))
	rt.StopMarkers()
	s.Run()

	fmt.Printf("t=%v  scaling completed (%v after request)\n",
		done, done.Sub(simtime.Time(simtime.Sec(2))))
	fmt.Printf("\nDelay decomposition (the paper's Lp / Ls / Ld):\n")
	fmt.Printf("  propagation Lp: %v\n", rt.Scale.CumulativePropagationDelay())
	fmt.Printf("  suspension  Ls: %v\n", rt.Scale.CumulativeSuspension())
	fmt.Printf("  dependency  Ld: %v\n", rt.Scale.AvgDependencyOverhead())

	fmt.Printf("\nResults: %d aggregation updates reached the sink, 0 duplicates=%v\n",
		sink.Records, sink.Duplicates() == 0)
	fmt.Printf("Post-scaling placement:\n")
	for _, in := range rt.Instances("agg") {
		fmt.Printf("  %-8s owns %2d key groups, processed %6d records\n",
			in.Name(), len(in.Store().Groups()), in.Processed)
	}
	fmt.Printf("\nLatency: pre-scale avg %.2fms, during-scale peak %.2fms\n",
		rt.Latency.AvgIn(0, simtime.Time(simtime.Sec(2))),
		rt.Latency.PeakIn(simtime.Time(simtime.Sec(2)), simtime.Time(simtime.Sec(6))))
}
