// NEXMark example: run Q7 (sliding-window highest bid) and rescale the
// window operator 8→12 under DRRS, Meces, and Megaphone in turn, printing
// the paper's headline comparison (Fig 10's shape) for a single seed.
package main

import (
	"fmt"
	"time"

	"drrs/internal/bench"
)

func main() {
	fmt.Println("NEXMark Q7 — sliding-window max bid, scaling winmax 8→12")
	fmt.Println("(single-seed, scaled-down rendition of the paper's Fig 10a)")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s %14s %14s\n",
		"mechanism", "peak(ms)", "avg(ms)", "scaling(s)", "suspension(ms)")

	for _, mech := range []string{"drrs", "meces", "megaphone", "no-scale"} {
		t0 := time.Now() //lint:allow nowallclock wall-clock report column; measured around a finished run
		sc := bench.Q7Scenario(1)
		o := sc.Run(bench.Mechanisms(mech))
		peak := o.PeakIn(o.ScaleAt, o.EndAt)
		avg := o.AvgIn(o.ScaleAt, o.EndAt)
		fmt.Printf("%-12s %12.1f %12.1f %14.2f %14.1f   (wall %v)\n",
			mech, peak, avg, o.ScalingPeriod().Seconds(),
			o.Scale.CumulativeSuspension().Millis(), time.Since(t0).Round(time.Millisecond)) //lint:allow nowallclock wall-clock report column; measured around a finished run
	}
	fmt.Println()
	fmt.Println("Expected shape (paper): DRRS lowest peak/avg and shortest scaling;")
	fmt.Println("Megaphone slowest overall; Meces between, with high suspension.")
}
