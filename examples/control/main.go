// Control example: the reactive control plane, end to end. Nothing in this
// scenario scripts *when* to scale — a flash crowd multiplies the custom
// job's load by 1.5× for ten seconds, and the backlog policy, sampling the
// live run every 500 ms, decides on its own when to scale out, when the
// in-flight operation is too slow and must be superseded (the paper's
// concurrent-execution rule 1, re-planned via PlanFromPlacement so migrated
// key groups never move twice), and when to scale back as the crowd
// disperses.
//
// The same closed loop runs under three mechanisms. Because the policy
// reacts to what the mechanism actually delivers, the mechanisms see
// *different* decision sequences: a fast mechanism absorbs the spike with a
// couple of decisions; a slow one lets backlog build, provoking escalation
// and supersessions.
package main

import (
	"fmt"

	"drrs/internal/bench"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

func main() {
	sc := bench.FlashCrowdReactiveScenario(1)
	fmt.Printf("Flash-crowd-reactive scenario — driving %s, warmup %v, measure %v\n",
		sc.ProgramString(), sc.Warmup, sc.Measure)
	fmt.Println("(the controller samples every 500 ms, debounces decisions 2 s apart,")
	fmt.Println(" and may rescale anywhere between 4 and 16 instances)")
	fmt.Println()

	for _, mech := range []string{"drrs", "meces", "megaphone"} {
		mech := mech
		o := sc.RunWith(func() scaling.Mechanism { return bench.Mechanisms(mech) })
		fmt.Printf("%s  (peak %.1f ms, avg %.1f ms after the first decision)\n",
			mech, o.PeakIn(o.ScaleAt, o.EndAt), o.AvgIn(o.ScaleAt, o.EndAt))
		fmt.Print(bench.FormatDecisions(o))
		for i, w := range o.Waves {
			status := "completed"
			if !w.Done {
				status = "STILL IN FLIGHT AT HORIZON"
			}
			fmt.Printf("  op %d %d→%d at %v: %s, migration %v, suspension %v\n",
				i, w.FromParallelism, w.Wave.NewParallelism, w.ScaleAt, status,
				w.Scale.MigrationDuration(), w.Scale.CumulativeSuspension())
		}
		fmt.Printf("  timeline %s\n\n", bench.Sparkline(o, simtime.Second, o.ScaleAt, o.EndAt))
	}

	fmt.Println("DRRS absorbs the spike in two decisions and settles back down. Meces")
	fmt.Println("lets the backlog build, so the policy escalates further before")
	fmt.Println("recovering. Megaphone's announced rounds cannot be cancelled: every")
	fmt.Println("mid-spike decision supersedes a still-running operation, and the run")
	fmt.Println("ends overprovisioned — a ranking no scripted wave program can show.")
}
