// Twitch example: the paper's seven-operator loyalty pipeline with the
// Fig 14 ablation — full DRRS against variants that each keep only one of
// the three mechanisms (Decoupling & Re-routing, Record Scheduling, Subscale
// Division).
package main

import (
	"fmt"

	"drrs/internal/bench"
)

func main() {
	fmt.Println("Twitch loyalty pipeline — DRRS mechanism ablation (Fig 14 shape)")
	fmt.Println()
	fmt.Printf("%-15s %12s %12s %16s\n", "variant", "peak(ms)", "avg(ms)", "suspension(ms)")

	type row struct {
		name string
		peak float64
		avg  float64
	}
	var full row
	for _, mech := range []string{"drrs", "drrs-dr", "drrs-schedule", "drrs-subscale"} {
		sc := bench.TwitchScenario(1)
		o := sc.Run(bench.Mechanisms(mech))
		peak := o.PeakIn(o.ScaleAt, o.EndAt)
		avg := o.AvgIn(o.ScaleAt, o.EndAt)
		fmt.Printf("%-15s %12.1f %12.1f %16.1f\n",
			mech, peak, avg, o.Scale.CumulativeSuspension().Millis())
		if mech == "drrs" {
			full = row{name: mech, peak: peak, avg: avg}
		}
	}
	fmt.Println()
	fmt.Printf("Full DRRS should have the lowest peak and average; the paper\n")
	fmt.Printf("reports variants 15–30%% worse (full system: peak %.1fms, avg %.1fms).\n",
		full.peak, full.avg)
}
