// Sensitivity example: one slice of the paper's Fig 15 grid on the simulated
// 4-node cluster — throughput deviation under varying workload skew for
// DRRS, Megaphone, and Meces at a fixed rate and state size.
package main

import (
	"fmt"
	"time"

	"drrs/internal/bench"
)

func main() {
	const (
		rate       = 8000.0   // records/s
		stateBytes = 15 << 20 // ~15 MB total keyed state (paper: 15 GB, scaled ×1000)
	)
	skews := []float64{0, 0.5, 1.0, 1.5}

	fmt.Println("Sensitivity slice (Fig 15): throughput deviation vs workload skew")
	fmt.Printf("rate=%.0f rec/s, state=%dMB, 25→30 instances over 256 key groups, 4-node cluster\n\n",
		rate, stateBytes>>20)
	fmt.Printf("%-12s", "skew")
	for _, s := range skews {
		fmt.Printf(" %10.1f", s)
	}
	fmt.Println()

	for _, mech := range []string{"drrs", "megaphone", "meces"} {
		t0 := time.Now() //lint:allow nowallclock wall-clock report column; measured around a finished run
		fmt.Printf("%-12s", mech)
		pts, _ := bench.Fig15(1, []float64{rate}, []int{stateBytes}, skews, []string{mech})
		for _, s := range skews {
			for _, p := range pts {
				if p.Skew == s {
					fmt.Printf(" %10.0f", p.Deviation)
				}
			}
		}
		fmt.Printf("   (wall %v)\n", time.Since(t0).Round(time.Millisecond)) //lint:allow nowallclock wall-clock report column; measured around a finished run
	}
	fmt.Println("\nLower is better. Expected shape: deviation grows with skew for every")
	fmt.Println("mechanism; DRRS stays lowest across the row (paper Fig 15).")
}
