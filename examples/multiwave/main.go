// Multiwave example: the dynamic-scenario track beyond the paper's fixed
// experiments. A flash crowd multiplies the custom job's load by 1.25× for
// eight seconds; the scaling program rides it out with two waves — scale out
// 8→12 as the crowd arrives, scale back 12→8 after it disperses. Each wave
// runs under a fresh mechanism instance and is measured separately.
package main

import (
	"fmt"

	"drrs/internal/bench"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

func main() {
	sc := bench.FlashCrowdScenario(1)
	fmt.Printf("Flash-crowd scenario — waves %s, warmup %v, measure %v\n\n",
		sc.ProgramString(), sc.Warmup, sc.Measure)

	for _, mech := range []string{"drrs", "meces", "megaphone"} {
		mech := mech
		o := sc.RunWith(func() scaling.Mechanism { return bench.Mechanisms(mech) })
		fmt.Printf("%s  (peak %.1f ms, avg %.1f ms over the program)\n",
			mech, o.PeakIn(o.ScaleAt, o.EndAt), o.AvgIn(o.ScaleAt, o.EndAt))
		for i, w := range o.Waves {
			if w.Scale == nil {
				fmt.Printf("  wave %d →%d NEVER LAUNCHED\n", i, w.Wave.NewParallelism)
				continue
			}
			status := "completed"
			if !w.Done {
				status = "NEVER COMPLETED"
			}
			fmt.Printf("  wave %d %d→%d at %v: %s, scaling period %v, migration %v, suspension %v\n",
				i, w.FromParallelism, w.Wave.NewParallelism, w.ScaleAt, status,
				w.ScalingPeriod(), w.Scale.MigrationDuration(), w.Scale.CumulativeSuspension())
		}
		fmt.Printf("  timeline %s\n\n", bench.Sparkline(o, simtime.Second, o.ScaleAt, o.EndAt))
	}

	fmt.Println("DRRS should complete both waves with the lowest peak latency and")
	fmt.Println("suspension; Megaphone's sequential rounds stretch wave 0 across the")
	fmt.Println("entire spike.")
}
