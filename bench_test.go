// Benchmarks regenerating the paper's evaluation figures (one Benchmark per
// table/figure). Each benchmark runs the corresponding scaled-down scenario
// and reports the figure's headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints a compact rendition of the whole evaluation. Figures 10–13 derive
// from the same runs (as in the paper), shared through a per-process cache.
package drrs

import (
	"fmt"
	"sync"
	"testing"

	"drrs/internal/bench"
	"drrs/internal/simtime"
)

// outcomeCache memoizes scenario runs so the Fig 10/11/12/13 benchmarks do
// not re-simulate identical configurations. Each key owns a sync.Once, so
// concurrent callers of distinct configurations simulate in parallel while
// callers of the same configuration share one run — no lock is held while a
// simulation executes.
var outcomeCache sync.Map // key string → *outcomeEntry

type outcomeEntry struct {
	once sync.Once
	o    bench.Outcome
}

func cachedRun(workload, mech string, seed int64) bench.Outcome {
	key := fmt.Sprintf("%s|%s|%d", workload, mech, seed)
	v, _ := outcomeCache.LoadOrStore(key, &outcomeEntry{})
	e := v.(*outcomeEntry)
	e.once.Do(func() {
		sc := bench.ScenarioByName(workload, seed)
		e.o = sc.Run(bench.Mechanisms(mech))
	})
	return e.o
}

// BenchmarkFig02_Motivation regenerates Fig 2: Unbound vs OTFS vs No Scale
// on the Twitch workload. The reported metrics are the peak/average latency
// ratios relative to the non-scaling run — the paper's "Unbound ≈ No Scale"
// observation.
func BenchmarkFig02_Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unbound := cachedRun("twitch", "unbound", 1)
		otfs := cachedRun("twitch", "otfs", 1)
		base := cachedRun("twitch", "no-scale", 1)
		from, to := unbound.ScaleAt, unbound.EndAt
		b.ReportMetric(otfs.PeakIn(from, to)/base.PeakIn(from, to), "otfs-peak-x")
		b.ReportMetric(unbound.PeakIn(from, to)/base.PeakIn(from, to), "unbound-peak-x")
		b.ReportMetric(otfs.AvgIn(from, to)/base.AvgIn(from, to), "otfs-avg-x")
		b.ReportMetric(unbound.AvgIn(from, to)/base.AvgIn(from, to), "unbound-avg-x")
		b.ReportMetric(unbound.Scale.CumulativeSuspension().Millis(), "unbound-susp-ms")
	}
}

// headToHead runs the Fig 10 comparison for one workload and reports peak
// and average latency plus the scaling period per mechanism.
func headToHead(b *testing.B, workload string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, mech := range []string{"drrs", "meces", "megaphone"} {
			o := cachedRun(workload, mech, 1)
			if !o.Done {
				b.Fatalf("%s/%s never completed scaling", workload, mech)
			}
			from, to := o.ScaleAt, o.EndAt
			b.ReportMetric(o.PeakIn(from, to), mech+"-peak-ms")
			b.ReportMetric(o.AvgIn(from, to), mech+"-avg-ms")
			b.ReportMetric(o.ScalingPeriod().Seconds(), mech+"-scaling-s")
		}
	}
}

// BenchmarkFig10_Latency_* regenerate the end-to-end latency comparison
// (DRRS vs Meces vs Megaphone) per workload.
func BenchmarkFig10_Latency_Q7(b *testing.B)     { headToHead(b, "q7") }
func BenchmarkFig10_Latency_Q8(b *testing.B)     { headToHead(b, "q8") }
func BenchmarkFig10_Latency_Twitch(b *testing.B) { headToHead(b, "twitch") }

// throughputFig reports Fig 11's signature: the depth of the throughput dip
// during scaling (min rate / offered rate) and the recovery overshoot.
func throughputFig(b *testing.B, workload string, offered float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, mech := range []string{"drrs", "meces", "megaphone"} {
			o := cachedRun(workload, mech, 1)
			pts := o.Throughput.Series().Slice(o.ScaleAt, o.EndAt)
			minV, maxV := offered, 0.0
			for _, p := range pts {
				if p.V < minV {
					minV = p.V
				}
				if p.V > maxV {
					maxV = p.V
				}
			}
			b.ReportMetric(minV/offered, mech+"-dip-frac")
			b.ReportMetric(maxV/offered, mech+"-overshoot-x")
		}
	}
}

// BenchmarkFig11_Throughput_* regenerate the throughput timelines' headline
// shape per workload.
func BenchmarkFig11_Throughput_Q7(b *testing.B)     { throughputFig(b, "q7", 4000) }
func BenchmarkFig11_Throughput_Q8(b *testing.B)     { throughputFig(b, "q8", 1000) }
func BenchmarkFig11_Throughput_Twitch(b *testing.B) { throughputFig(b, "twitch", 4000) }

// propDepFig reports Fig 12: cumulative propagation delay and average
// dependency-related overhead.
func propDepFig(b *testing.B, workload string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, mech := range []string{"drrs", "meces", "megaphone"} {
			o := cachedRun(workload, mech, 1)
			b.ReportMetric(o.Scale.CumulativePropagationDelay().Millis(), mech+"-prop-ms")
			b.ReportMetric(o.Scale.AvgDependencyOverhead().Millis(), mech+"-dep-ms")
		}
	}
}

// BenchmarkFig12_PropDep_* regenerate the propagation/dependency comparison.
func BenchmarkFig12_PropDep_Q7(b *testing.B)     { propDepFig(b, "q7") }
func BenchmarkFig12_PropDep_Q8(b *testing.B)     { propDepFig(b, "q8") }
func BenchmarkFig12_PropDep_Twitch(b *testing.B) { propDepFig(b, "twitch") }

// suspensionFig reports Fig 13: cumulative suspension time.
func suspensionFig(b *testing.B, workload string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, mech := range []string{"drrs", "meces", "megaphone"} {
			o := cachedRun(workload, mech, 1)
			b.ReportMetric(o.Scale.CumulativeSuspension().Millis(), mech+"-susp-ms")
		}
	}
}

// BenchmarkFig13_Suspension_* regenerate the suspension comparison.
func BenchmarkFig13_Suspension_Q7(b *testing.B)     { suspensionFig(b, "q7") }
func BenchmarkFig13_Suspension_Q8(b *testing.B)     { suspensionFig(b, "q8") }
func BenchmarkFig13_Suspension_Twitch(b *testing.B) { suspensionFig(b, "twitch") }

// BenchmarkFig14_Ablation regenerates the mechanism ablation on Twitch:
// full DRRS vs DR-only vs Schedule-only vs Subscale-only.
func BenchmarkFig14_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mech := range []string{"drrs", "drrs-dr", "drrs-schedule", "drrs-subscale"} {
			o := cachedRun("twitch", mech, 1)
			b.ReportMetric(o.PeakIn(o.ScaleAt, o.EndAt), mech+"-peak-ms")
			b.ReportMetric(o.AvgIn(o.ScaleAt, o.EndAt), mech+"-avg-ms")
		}
	}
}

// BenchmarkFig15_Sensitivity regenerates a compact slice of the sensitivity
// grid (rate × state × skew) and reports each mechanism's mean throughput
// deviation across the grid (records/s below the offered load).
func BenchmarkFig15_Sensitivity(b *testing.B) {
	rates := []float64{4000, 10000}
	states := []int{5 << 20, 20 << 20}
	skews := []float64{0, 1.0}
	for i := 0; i < b.N; i++ {
		for _, mech := range []string{"drrs", "megaphone", "meces"} {
			pts, _ := bench.Fig15(1, rates, states, skews, []string{mech})
			var sum float64
			for _, p := range pts {
				sum += p.Deviation
			}
			b.ReportMetric(sum/float64(len(pts)), mech+"-mean-dev-rps")
		}
	}
}

// BenchmarkEngineThroughput measures the raw simulation speed of the engine
// itself (events/second of wall time) — not a paper figure, but the number
// that bounds every experiment above.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := bench.TwitchScenario(int64(i + 100))
		o := sc.Run(nil)
		b.ReportMetric(float64(o.Throughput.Total()), "records")
		_ = o
	}
}

var _ = simtime.Second
