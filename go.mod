module drrs

go 1.23
