module drrs

go 1.24
