// Package drrs is a from-scratch Go reproduction of "Towards Fine-Grained
// Scalability for Stateful Stream Processing Systems" (Qing & Zheng, ICDE
// 2025): the DRRS on-the-fly rescaling mechanism — Decoupling & Re-routing,
// Record Scheduling, and Subscale Division — together with the entire
// substrate it needs (a deterministic discrete-event stream-processing
// engine modelled on Apache Flink), every baseline the paper compares
// against (generalized OTFS, Megaphone, Meces, Stop-Checkpoint-Restart, and
// the Unbound diagnostic), the three evaluation workloads (NEXMark Q7/Q8,
// a synthetic Twitch loyalty pipeline, and the configurable custom job), and
// a benchmark harness that regenerates every figure and table of the paper's
// evaluation.
//
// Layout:
//
//	internal/core       DRRS itself (the paper's contribution)
//	internal/engine     the simulated stream processing engine
//	internal/scaling    the mechanism framework and the baselines
//	internal/bench      the figure/table regeneration harness
//	cmd/drrs-bench      regenerate the paper's figures
//	cmd/drrs-sim        run one workload + mechanism and print a report
//	examples/           runnable walkthroughs
//
// See README.md for a quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package drrs
