package workload

import (
	"fmt"

	"drrs/internal/dataflow"
	"drrs/internal/simtime"
)

// Event is one arrival in a traffic stream: what reaches a source instance at
// At. A Stop event carries no record; it marks the stream's bounded end (the
// source emits a final watermark there and quits).
type Event struct {
	At     simtime.Time
	Key    uint64
	Size   int
	Value  float64
	Cohort uint32
	Stop   bool
}

// Stream yields one source instance's arrivals in nondecreasing At order.
// Next fills ev and reports whether an event was produced; after a Stop event
// (or on an exhausted unbounded stream) it returns false forever.
type Stream interface {
	Next(ev *Event) bool
}

// Traffic produces per-instance arrival streams. Stream is called once per
// source instance at job start; implementations partition their load across
// [0, parallelism) instances and anchor event times at start. All randomness
// must come from named simtime.NewRNG streams so runs replay bit-for-bit.
type Traffic interface {
	Stream(instance, parallelism int, start simtime.Time) Stream
	// Describe returns a one-line human summary for scenario listings.
	Describe() string
}

// driveSource adapts a Traffic onto the engine's source API. One re-armed
// pump walks the stream: each firing hands the due record straight to the
// source's backlog drain (dataflow.SourcePump) and stamps watermark crossings
// at the job's cadence — the same machinery, in the same scheduler order, as
// the pre-split generator, so Classic traffic is byte-identical to it.
func driveSource(job JobConfig, traffic Traffic) dataflow.SourceFunc {
	return func(ctx dataflow.SourceContext) {
		start := ctx.Now()
		st := traffic.Stream(ctx.InstanceIndex(), ctx.Parallelism(), start)
		ingest := ctx.Ingest
		if p, ok := ctx.(dataflow.SourcePump); ok {
			ingest = p.IngestNow
		}

		var (
			cur    Event
			curWM  bool
			nextWM simtime.Time
		)
		// advance pulls the next arrival and precomputes its watermark flag;
		// crossings are a pure function of arrival order, so flagging at pull
		// time equals flagging at emit time.
		advance := func() bool {
			if !st.Next(&cur) {
				return false
			}
			curWM = false
			if !cur.Stop && cur.At >= nextWM {
				curWM = true
				nextWM = cur.At.Add(job.WatermarkEvery)
			}
			return true
		}
		if !advance() {
			return
		}
		var pump func()
		pump = func() {
			now := ctx.Now()
			if cur.Stop {
				ctx.EmitWatermark(now)
				return
			}
			r := ctx.NewRecord()
			r.Key = cur.Key
			r.EventTime = now
			r.Size = cur.Size
			r.Value = cur.Value
			ingest(r)
			if curWM {
				ctx.EmitWatermark(now)
			}
			if !advance() {
				return
			}
			ctx.After(cur.At.Sub(now), pump)
		}
		if d := cur.At.Sub(start); d > 0 {
			ctx.After(d, pump)
		} else {
			pump()
		}
	}
}

// genBatch is how many emissions the classic stream precomputes per refill:
// large enough to amortize the refill and keep the RNG/shape math off the
// per-wake path, small enough that a mid-run rate change (shapes are pure
// functions of arrival time, so precomputation is exact) costs no extra
// memory to speak of.
const genBatch = 256

// genEvent is one precomputed classic-stream emission.
type genEvent struct {
	at  simtime.Time
	key uint64
	// stop marks the deadline tick.
	stop bool
}

// Classic is the original single-generator traffic: Zipf-keyed records at the
// shape-modulated per-instance rate with ±5% interarrival jitter. Every
// source instance emits an identical copy of the stream (seeded identically),
// exactly as the pre-split generator did. Only the traffic half of cfg is
// read: Keys, RatePerSec, Skew, Shape, Duration, Seed.
func Classic(cfg Config) Traffic {
	cfg.fillDefaults()
	return classicTraffic{cfg: cfg}
}

type classicTraffic struct{ cfg Config }

func (c classicTraffic) Describe() string {
	d := fmt.Sprintf("zipf(s=%g) over %d keys @ %g rec/s per source", c.cfg.Skew, c.cfg.Keys, c.cfg.RatePerSec)
	if s := c.cfg.Shape.String(); s != "" {
		d += ", " + s
	}
	return d
}

func (c classicTraffic) Stream(instance, parallelism int, start simtime.Time) Stream {
	cfg := c.cfg
	s := &classicStream{
		cfg:      cfg,
		rng:      simtime.NewRNG(cfg.Seed, "workload/gen"),
		zipf:     simtime.NewZipf(simtime.NewRNG(cfg.Seed, "workload/zipf"), cfg.Keys, cfg.Skew),
		start:    start,
		deadline: -1,
		events:   make([]genEvent, 0, genBatch),
	}
	if cfg.Duration > 0 {
		s.deadline = start.Add(cfg.Duration)
	}
	s.fill(start)
	return s
}

// classicStream precomputes arrivals one genBatch at a time, drawing the RNG
// in exactly the per-tick order (zipf rank, then period jitter) of the
// timer-per-record loop the batching replaced.
type classicStream struct {
	cfg      Config
	rng      *simtime.RNG
	zipf     *simtime.Zipf
	start    simtime.Time
	deadline simtime.Time
	events   []genEvent
	next     int
	tailAt   simtime.Time // where the batch after this one starts
	done     bool         // a stop event has been yielded
}

func (s *classicStream) fill(t simtime.Time) {
	s.events = s.events[:0]
	s.next = 0
	for len(s.events) < genBatch {
		if s.deadline >= 0 && t >= s.deadline {
			s.events = append(s.events, genEvent{at: t, stop: true})
			return
		}
		el := t.Sub(s.start)
		// Key 0 is reserved; ranks shift by 1.
		ev := genEvent{at: t, key: uint64(s.cfg.Shape.MapRank(s.zipf.Next(), el, s.cfg.Keys)) + 1}
		s.events = append(s.events, ev)
		period := simtime.Duration(float64(simtime.Second) / (s.cfg.RatePerSec * s.cfg.Shape.FactorAt(el)))
		t = t.Add(s.rng.Jitter(period, 0.05))
	}
	s.tailAt = t
}

func (s *classicStream) Next(ev *Event) bool {
	if s.done {
		return false
	}
	if s.next == len(s.events) {
		s.fill(s.tailAt)
	}
	ge := s.events[s.next]
	s.next++
	if ge.stop {
		s.done = true
		*ev = Event{At: ge.at, Stop: true}
		return true
	}
	*ev = Event{At: ge.at, Key: ge.key, Size: 100, Value: 1.0}
	return true
}
