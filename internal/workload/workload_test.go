package workload

import (
	"math"
	"testing"

	"drrs/internal/engine"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

func run(t *testing.T, cfg Config) (*engine.Runtime, *engine.CollectSink) {
	t.Helper()
	g, sink := Build(cfg)
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: cfg.Seed})
	rt.Start()
	s.RunUntil(simtime.Time(cfg.Duration))
	rt.StopMarkers()
	s.Run()
	return rt, sink
}

func TestDefaultsAndStructure(t *testing.T) {
	g, _ := Build(Config{Duration: simtime.Sec(1)})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order := g.Topological()
	if len(order) != 3 {
		t.Fatalf("custom workload should be a 3-operator job, got %d", len(order))
	}
	if g.Operator("agg").MaxKeyGroups != 128 {
		t.Fatalf("default MaxKeyGroups %d", g.Operator("agg").MaxKeyGroups)
	}
}

func TestRateIsHonored(t *testing.T) {
	cfg := Config{RatePerSec: 3000, Duration: simtime.Sec(2), Seed: 1, EmitUpdates: true}
	rt, _ := run(t, cfg)
	total := rt.Throughput.Total()
	// One source instance at 3000/s for 2s ≈ 6000 records (±jitter).
	if total < 5500 || total > 6500 {
		t.Fatalf("generated %d records, want ≈6000", total)
	}
}

func TestStateSizeKnob(t *testing.T) {
	cfg := Config{Keys: 500, StateBytesPerKey: 2048, RatePerSec: 5000, Duration: simtime.Sec(2), Seed: 2}
	rt, _ := run(t, cfg)
	got := rt.TotalStateBytes("agg")
	// Most of the 500 keys should have been touched: state ≈ keys × bytes.
	if got < 500*2048*8/10 {
		t.Fatalf("state %d bytes, want ≈%d", got, 500*2048)
	}
}

func TestSkewConcentratesKeys(t *testing.T) {
	uniform := keySpread(t, 0.0)
	skewed := keySpread(t, 1.5)
	if skewed <= uniform {
		t.Fatalf("skew 1.5 top-key share %.3f should exceed uniform %.3f", skewed, uniform)
	}
}

// keySpread returns the fraction of records on the most loaded aggregator
// instance.
func keySpread(t *testing.T, skew float64) float64 {
	cfg := Config{
		Keys: 1000, Skew: skew, RatePerSec: 5000,
		Duration: simtime.Sec(2), Seed: 3, AggParallelism: 4, MaxKeyGroups: 32,
	}
	rt, _ := run(t, cfg)
	var max, total uint64
	for _, in := range rt.Instances("agg") {
		total += in.Processed
		if in.Processed > max {
			max = in.Processed
		}
	}
	if total == 0 {
		t.Fatal("nothing processed")
	}
	return float64(max) / float64(total)
}

func TestEmitUpdatesReachSink(t *testing.T) {
	cfg := Config{RatePerSec: 2000, Duration: simtime.Sec(1), Seed: 4, EmitUpdates: true}
	rt, sink := run(t, cfg)
	if int64(sink.Records) != rt.Throughput.Total() {
		t.Fatalf("sink %d vs generated %d", sink.Records, rt.Throughput.Total())
	}
	if d := sink.Duplicates(); d != 0 {
		t.Fatalf("%d duplicates", d)
	}
}

func TestKeysLandInCorrectGroups(t *testing.T) {
	cfg := Config{Keys: 300, RatePerSec: 4000, Duration: simtime.Sec(1), Seed: 5, MaxKeyGroups: 64}
	rt, _ := run(t, cfg)
	for _, in := range rt.Instances("agg") {
		st := in.Store()
		for _, kg := range st.Groups() {
			for k := range st.Group(kg).Entries {
				if state.KeyGroupOf(k, 64) != kg {
					t.Fatalf("key %d in wrong group %d", k, kg)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{RatePerSec: 2500, Duration: simtime.Sec(1), Seed: 6, EmitUpdates: true}
	_, a := run(t, cfg)
	_, b := run(t, cfg)
	if a.Records != b.Records {
		t.Fatalf("non-deterministic: %d vs %d", a.Records, b.Records)
	}
	for k, v := range a.ByKey {
		if bv := b.ByKey[k]; math.Abs(bv-v) > 1e-9 {
			t.Fatalf("key %d diverged: %v vs %v", k, v, bv)
		}
	}
}
