package workload

import (
	"math"
	"testing"

	"drrs/internal/engine"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

func run(t *testing.T, cfg Config) (*engine.Runtime, *engine.CollectSink) {
	t.Helper()
	g, sink := Build(cfg)
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: cfg.Seed})
	rt.Start()
	s.RunUntil(simtime.Time(cfg.Duration))
	rt.StopMarkers()
	s.Run()
	return rt, sink
}

func TestDefaultsAndStructure(t *testing.T) {
	g, _ := Build(Config{Duration: simtime.Sec(1)})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order := g.Topological()
	if len(order) != 3 {
		t.Fatalf("custom workload should be a 3-operator job, got %d", len(order))
	}
	if g.Operator("agg").MaxKeyGroups != 128 {
		t.Fatalf("default MaxKeyGroups %d", g.Operator("agg").MaxKeyGroups)
	}
}

func TestRateIsHonored(t *testing.T) {
	cfg := Config{RatePerSec: 3000, Duration: simtime.Sec(2), Seed: 1, EmitUpdates: true}
	rt, _ := run(t, cfg)
	total := rt.Throughput.Total()
	// One source instance at 3000/s for 2s ≈ 6000 records (±jitter).
	if total < 5500 || total > 6500 {
		t.Fatalf("generated %d records, want ≈6000", total)
	}
}

func TestStateSizeKnob(t *testing.T) {
	cfg := Config{Keys: 500, StateBytesPerKey: 2048, RatePerSec: 5000, Duration: simtime.Sec(2), Seed: 2}
	rt, _ := run(t, cfg)
	got := rt.TotalStateBytes("agg")
	// Most of the 500 keys should have been touched: state ≈ keys × bytes.
	if got < 500*2048*8/10 {
		t.Fatalf("state %d bytes, want ≈%d", got, 500*2048)
	}
}

func TestSkewConcentratesKeys(t *testing.T) {
	uniform := keySpread(t, 0.0)
	skewed := keySpread(t, 1.5)
	if skewed <= uniform {
		t.Fatalf("skew 1.5 top-key share %.3f should exceed uniform %.3f", skewed, uniform)
	}
}

// keySpread returns the fraction of records on the most loaded aggregator
// instance.
func keySpread(t *testing.T, skew float64) float64 {
	cfg := Config{
		Keys: 1000, Skew: skew, RatePerSec: 5000,
		Duration: simtime.Sec(2), Seed: 3, AggParallelism: 4, MaxKeyGroups: 32,
	}
	rt, _ := run(t, cfg)
	var max, total uint64
	for _, in := range rt.Instances("agg") {
		total += in.Processed
		if in.Processed > max {
			max = in.Processed
		}
	}
	if total == 0 {
		t.Fatal("nothing processed")
	}
	return float64(max) / float64(total)
}

func TestEmitUpdatesReachSink(t *testing.T) {
	cfg := Config{RatePerSec: 2000, Duration: simtime.Sec(1), Seed: 4, EmitUpdates: true}
	rt, sink := run(t, cfg)
	if int64(sink.Records) != rt.Throughput.Total() {
		t.Fatalf("sink %d vs generated %d", sink.Records, rt.Throughput.Total())
	}
	if d := sink.Duplicates(); d != 0 {
		t.Fatalf("%d duplicates", d)
	}
}

func TestKeysLandInCorrectGroups(t *testing.T) {
	cfg := Config{Keys: 300, RatePerSec: 4000, Duration: simtime.Sec(1), Seed: 5, MaxKeyGroups: 64}
	rt, _ := run(t, cfg)
	for _, in := range rt.Instances("agg") {
		st := in.Store()
		for _, kg := range st.Groups() {
			for _, k := range st.Group(kg).Keys() {
				if state.KeyGroupOf(k, 64) != kg {
					t.Fatalf("key %d in wrong group %d", k, kg)
				}
			}
		}
	}
}

func TestShapeFactorAt(t *testing.T) {
	// Flat (zero) shape.
	if f := (Shape{}).FactorAt(simtime.Sec(5)); f != 1 {
		t.Fatalf("zero shape factor %v", f)
	}
	// Flash crowd: 1× for 10 s, 2× for 5 s, 1× after.
	fc := FlashCrowd(simtime.Sec(10), simtime.Sec(5), 2)
	for _, c := range []struct {
		at   simtime.Duration
		want float64
	}{{simtime.Sec(1), 1}, {simtime.Sec(12), 2}, {simtime.Sec(16), 1}, {simtime.Sec(100), 1}} {
		if f := fc.FactorAt(c.at); f != c.want {
			t.Fatalf("flash crowd factor at %v = %v, want %v", c.at, f, c.want)
		}
	}
	// Diurnal: ramps low→high→low and loops.
	d := Diurnal(simtime.Sec(20), 0.5, 1.5)
	if f := d.FactorAt(0); f != 0.5 {
		t.Fatalf("diurnal start %v", f)
	}
	if f := d.FactorAt(simtime.Sec(10)); f != 1.5 {
		t.Fatalf("diurnal peak %v", f)
	}
	if f := d.FactorAt(simtime.Sec(5)); f != 1.0 {
		t.Fatalf("diurnal mid-ramp %v", f)
	}
	if a, b := d.FactorAt(simtime.Sec(3)), d.FactorAt(simtime.Sec(43)); a != b {
		t.Fatalf("diurnal should loop: %v vs %v", a, b)
	}
	// A nonsense zero/negative factor clamps instead of stalling the
	// generator.
	bad := Shape{Phases: []Phase{{Duration: simtime.Sec(1), StartFactor: -1, EndFactor: -1}}}
	if f := bad.FactorAt(simtime.Ms(500)); f <= 0 {
		t.Fatalf("factor %v must stay positive", f)
	}
}

func TestShapeMapRankDrift(t *testing.T) {
	s := HotKeyDrift(simtime.Sec(2), 0.1)
	const keys = 100
	if got := s.MapRank(3, simtime.Sec(1), keys); got != 3 {
		t.Fatalf("no shift before the first interval: %d", got)
	}
	if got := s.MapRank(3, simtime.Sec(3), keys); got != 13 {
		t.Fatalf("one shift of 10%%: %d, want 13", got)
	}
	if got := s.MapRank(95, simtime.Sec(3), keys); got != 5 {
		t.Fatalf("shift must wrap the key space: %d, want 5", got)
	}
	// Zero shape never remaps.
	if got := (Shape{}).MapRank(42, simtime.Sec(99), keys); got != 42 {
		t.Fatalf("zero shape remapped to %d", got)
	}
}

func TestFlashCrowdRaisesRate(t *testing.T) {
	base := Config{RatePerSec: 2000, Duration: simtime.Sec(6), Seed: 9, EmitUpdates: true}
	shaped := base
	shaped.Shape = FlashCrowd(simtime.Sec(2), simtime.Sec(2), 1.5)
	rt, _ := run(t, base)
	rts, _ := run(t, shaped)
	flat := rt.Throughput.Series()
	spiked := rts.Throughput.Series()
	// Bucket 3 (t ∈ [3s,4s)) sits inside the spike: ~3000/s vs ~2000/s.
	flatMid := flat.Slice(simtime.Time(simtime.Sec(3)), simtime.Time(simtime.Sec(4)))
	spikeMid := spiked.Slice(simtime.Time(simtime.Sec(3)), simtime.Time(simtime.Sec(4)))
	if len(flatMid) == 0 || len(spikeMid) == 0 {
		t.Fatal("missing throughput buckets")
	}
	if spikeMid[0].V < flatMid[0].V*1.3 {
		t.Fatalf("spike bucket %v not ≈1.5× flat bucket %v", spikeMid[0].V, flatMid[0].V)
	}
	// Outside the spike the rates match.
	flatPre := flat.Slice(simtime.Time(simtime.Sec(1)), simtime.Time(simtime.Sec(2)))
	spikePre := spiked.Slice(simtime.Time(simtime.Sec(1)), simtime.Time(simtime.Sec(2)))
	if d := math.Abs(spikePre[0].V - flatPre[0].V); d > flatPre[0].V*0.1 {
		t.Fatalf("pre-spike rates diverge: %v vs %v", spikePre[0].V, flatPre[0].V)
	}
}

func TestHotKeyDriftSpreadsLoad(t *testing.T) {
	// With a static skewed distribution one key owns the whole run's hot
	// mass; when the hot set drifts, that mass spreads across the rotation's
	// successive hot keys and the top key's share collapses.
	share := func(shape Shape) float64 {
		cfg := Config{
			Keys: 500, Skew: 1.2, RatePerSec: 4000, Duration: simtime.Sec(6),
			Seed: 10, Shape: shape, EmitUpdates: true,
		}
		_, sink := run(t, cfg)
		var max, total float64
		for _, v := range sink.ByKey {
			total += v
			if v > max {
				max = v
			}
		}
		if total == 0 {
			t.Fatal("nothing reached the sink")
		}
		return max / total
	}
	static := share(Shape{})
	drift := share(HotKeyDrift(simtime.Sec(1), 0.2))
	if drift >= static*0.7 {
		t.Fatalf("drift top-key share %.3f should be well below static %.3f", drift, static)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{RatePerSec: 2500, Duration: simtime.Sec(1), Seed: 6, EmitUpdates: true}
	_, a := run(t, cfg)
	_, b := run(t, cfg)
	if a.Records != b.Records {
		t.Fatalf("non-deterministic: %d vs %d", a.Records, b.Records)
	}
	for k, v := range a.ByKey {
		if bv := b.ByKey[k]; math.Abs(bv-v) > 1e-9 {
			t.Fatalf("key %d diverged: %v vs %v", k, v, bv)
		}
	}
}
