package workload

import (
	"fmt"
	"strconv"

	"drrs/internal/simtime"
)

// Arrival identifies a cohort's interarrival process.
type Arrival uint8

const (
	// ArrivalPoisson draws exponential interarrivals (memoryless clients).
	ArrivalPoisson Arrival = iota
	// ArrivalGamma draws gamma interarrivals with shape Cohort.ArrivalShape
	// (< 1 burstier than Poisson, > 1 more regular).
	ArrivalGamma
	// ArrivalWeibull draws Weibull interarrivals with shape
	// Cohort.ArrivalShape (< 1 heavy-tailed).
	ArrivalWeibull
	// ArrivalConstant ticks at the aggregate period, jittered ±Cohort.Jitter
	// (0 is a strict metronome).
	ArrivalConstant
)

func (a Arrival) String() string {
	switch a {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalGamma:
		return "gamma"
	case ArrivalWeibull:
		return "weibull"
	case ArrivalConstant:
		return "constant"
	}
	return fmt.Sprintf("arrival(%d)", uint8(a))
}

// Cohort is one homogeneous client population inside a Spec: Clients clients
// emitting RatePerClient records/s each (the cohort aggregates to Clients ×
// RatePerClient), with its own arrival process, key distribution, and load
// shape. Each cohort draws from its own named RNG streams, so adding or
// editing one cohort never perturbs another's stream.
type Cohort struct {
	// Name labels the cohort in summaries; optional.
	Name string
	// Clients is the client count; the cohort's aggregate rate is
	// Clients × RatePerClient records/s.
	Clients       int
	RatePerClient float64
	// Arrival picks the interarrival process for the cohort's merged stream.
	Arrival Arrival
	// ArrivalShape is the gamma/Weibull shape k (1 ≈ Poisson); ignored by
	// other processes.
	ArrivalShape float64
	// Jitter is ArrivalConstant's ± fraction; 0 is a strict metronome.
	Jitter float64
	// Key distribution: either KeySet (fixed keys cycled round-robin) or a
	// Zipf(Skew) hot set over [KeyBase, KeyBase+KeyCount). Skew 0 is uniform.
	// Key 0 is reserved by the engine, so KeyBase must be ≥ 1.
	KeyBase  uint64
	KeyCount int
	Skew     float64
	KeySet   []uint64
	// Load modulates the cohort's rate over time and drifts its hot set
	// (shapes are shared with the classic generator); PhaseOffset shifts the
	// cohort's position in the shape program, staggering diurnal peaks.
	Load        Shape
	PhaseOffset simtime.Duration
	// Size and Value fill the emitted records.
	Size  int
	Value float64
}

// DefaultCohort returns a single Poisson client over the classic key space:
// 1 client at 1 record/s, uniform over keys [1, 1000], 100-byte records.
func DefaultCohort() Cohort {
	return Cohort{
		Clients:       1,
		RatePerClient: 1,
		Arrival:       ArrivalPoisson,
		ArrivalShape:  1,
		KeyBase:       1,
		KeyCount:      1000,
		Size:          100,
		Value:         1,
	}
}

// Spec is a composable multi-client traffic description: a list of cohorts
// deterministically merged into one ordered arrival stream. Cohorts are
// partitioned round-robin across source instances (cohort i feeds instance
// i mod parallelism).
type Spec struct {
	Cohorts []Cohort
	// Duration bounds the stream; 0 generates forever.
	Duration simtime.Duration
	// Seed drives every cohort's named RNG streams.
	Seed int64
}

// validate panics on malformed cohorts; Specs are authored by scenario code,
// so errors are programming mistakes, caught eagerly like JobConfig's.
func (s Spec) validate() {
	if len(s.Cohorts) == 0 {
		panic("workload: Spec needs at least one Cohort")
	}
	for i, c := range s.Cohorts {
		where := func(msg string) string {
			name := c.Name
			if name == "" {
				name = "#" + strconv.Itoa(i)
			}
			return "workload: cohort " + name + ": " + msg
		}
		if c.Clients <= 0 {
			panic(where("Clients must be > 0 (use DefaultCohort)"))
		}
		if c.RatePerClient <= 0 {
			panic(where("RatePerClient must be > 0"))
		}
		if c.Size <= 0 {
			panic(where("Size must be > 0"))
		}
		switch c.Arrival {
		case ArrivalGamma, ArrivalWeibull:
			if c.ArrivalShape <= 0 {
				panic(where("ArrivalShape must be > 0 for gamma/weibull arrivals"))
			}
		case ArrivalConstant:
			if c.Jitter < 0 || c.Jitter >= 1 {
				panic(where("Jitter must be in [0, 1)"))
			}
		}
		if len(c.KeySet) > 0 {
			for _, k := range c.KeySet {
				if k == 0 {
					panic(where("KeySet contains key 0 (reserved)"))
				}
			}
			continue
		}
		if c.KeyBase < 1 {
			panic(where("KeyBase must be ≥ 1 (key 0 is reserved)"))
		}
		if c.KeyCount <= 0 {
			panic(where("KeyCount must be > 0"))
		}
		if c.Skew < 0 {
			panic(where("Skew must be ≥ 0"))
		}
	}
}

// Live builds Traffic from a Spec: each source instance k-way-merges its
// cohorts' arrival streams into one ordered stream. Zipf CDF tables are
// shared across cohorts with the same (KeyCount, Skew), so thousands of
// cohorts over a handful of distributions stay cheap to set up. Panics on
// malformed Specs.
func Live(spec Spec) Traffic {
	spec.validate()
	lt := &liveTraffic{spec: spec, cdfs: make([][]float64, len(spec.Cohorts))}
	type dist struct {
		n int
		s float64
	}
	shared := map[dist][]float64{}
	for i, c := range spec.Cohorts {
		if len(c.KeySet) > 0 || c.Skew <= 0 {
			continue
		}
		d := dist{n: c.KeyCount, s: c.Skew}
		cdf, ok := shared[d]
		if !ok {
			cdf = simtime.ZipfCDF(d.n, d.s)
			shared[d] = cdf
		}
		lt.cdfs[i] = cdf
	}
	return lt
}

type liveTraffic struct {
	spec Spec
	// cdfs[i] is cohort i's shared Zipf CDF table (nil for uniform/KeySet).
	cdfs [][]float64
}

func (lt *liveTraffic) Describe() string {
	clients := 0
	rate := 0.0
	var kinds [4]int
	for _, c := range lt.spec.Cohorts {
		clients += c.Clients
		rate += float64(c.Clients) * c.RatePerClient
		if int(c.Arrival) < len(kinds) {
			kinds[c.Arrival]++
		}
	}
	mix := ""
	for a, n := range kinds {
		if n == 0 {
			continue
		}
		if mix != "" {
			mix += " "
		}
		mix += fmt.Sprintf("%s:%d", Arrival(a), n)
	}
	return fmt.Sprintf("%d cohorts, %d clients, ~%.3g rec/s aggregate (%s)",
		len(lt.spec.Cohorts), clients, rate, mix)
}

func (lt *liveTraffic) Stream(instance, parallelism int, start simtime.Time) Stream {
	ms := &mergedStream{deadline: -1}
	if lt.spec.Duration > 0 {
		ms.deadline = start.Add(lt.spec.Duration)
	}
	for i := range lt.spec.Cohorts {
		if i%parallelism != instance {
			continue
		}
		ms.states = append(ms.states, newCohortState(&lt.spec.Cohorts[i], lt.cdfs[i], uint32(i), lt.spec.Seed, start))
	}
	// states were appended in ascending cohort order with their first arrival
	// already drawn; establish the heap invariant over (nextAt, cohort).
	for i := len(ms.states)/2 - 1; i >= 0; i-- {
		ms.siftDown(i)
	}
	return ms
}

// cohortState is one cohort's position in the merge: its RNG streams, its
// samplers, and the arrival it will contribute next.
type cohortState struct {
	c       *Cohort
	idx     uint32
	start   simtime.Time
	arrival *simtime.RNG
	keys    *simtime.RNG
	zipf    *simtime.Zipf
	baseGap float64 // aggregate interarrival mean at factor 1, in duration units
	cursor  int     // KeySet round-robin position
	nextAt  simtime.Time
}

func newCohortState(c *Cohort, cdf []float64, idx uint32, seed int64, start simtime.Time) *cohortState {
	name := "workload/cohort/" + strconv.Itoa(int(idx))
	cs := &cohortState{
		c:       c,
		idx:     idx,
		start:   start,
		arrival: simtime.NewRNG(seed, name+"/arrival"),
		keys:    simtime.NewRNG(seed, name+"/keys"),
		baseGap: float64(simtime.Second) / (float64(c.Clients) * c.RatePerClient),
	}
	if len(c.KeySet) == 0 && c.Skew > 0 {
		cs.zipf = simtime.NewZipfShared(cs.keys, c.KeyCount, c.Skew, cdf)
	}
	cs.nextAt = start.Add(cs.gap(start))
	return cs
}

// gap draws the next interarrival for the cohort's merged client stream,
// modulated by the load shape at the draw's position in the run.
func (cs *cohortState) gap(at simtime.Time) simtime.Duration {
	el := at.Sub(cs.start) + cs.c.PhaseOffset
	mean := simtime.Duration(cs.baseGap / cs.c.Load.FactorAt(el))
	var d simtime.Duration
	switch cs.c.Arrival {
	case ArrivalGamma:
		d = cs.arrival.Gamma(mean, cs.c.ArrivalShape)
	case ArrivalWeibull:
		d = cs.arrival.Weibull(mean, cs.c.ArrivalShape)
	case ArrivalConstant:
		d = cs.arrival.Jitter(mean, cs.c.Jitter)
	default:
		d = cs.arrival.Exp(mean)
	}
	if d < 1 {
		d = 1 // keep time strictly advancing per cohort
	}
	return d
}

// drawKey picks the arrival's key: fixed-set round-robin, or a rank from the
// cohort's Zipf/uniform distribution mapped through the load shape's hot-key
// drift into [KeyBase, KeyBase+KeyCount).
func (cs *cohortState) drawKey(at simtime.Time) uint64 {
	c := cs.c
	if len(c.KeySet) > 0 {
		k := c.KeySet[cs.cursor]
		cs.cursor++
		if cs.cursor == len(c.KeySet) {
			cs.cursor = 0
		}
		return k
	}
	var rank int
	if cs.zipf != nil {
		rank = cs.zipf.Next()
	} else {
		rank = int(cs.keys.Int63n(int64(c.KeyCount)))
	}
	el := at.Sub(cs.start) + c.PhaseOffset
	return c.KeyBase + uint64(c.Load.MapRank(rank, el, c.KeyCount))
}

// mergedStream k-way-merges its cohorts by (nextAt, cohort index) — the
// index breaks ties deterministically — and clamps the whole stream at the
// Spec deadline with a single Stop event.
type mergedStream struct {
	states   []*cohortState
	deadline simtime.Time
	done     bool
}

func (ms *mergedStream) Next(ev *Event) bool {
	if ms.done {
		return false
	}
	if len(ms.states) == 0 || (ms.deadline >= 0 && ms.states[0].nextAt >= ms.deadline) {
		// No cohorts on this instance, or every remaining arrival lands past
		// the deadline: the stream ends. Unbounded cohortless streams end
		// silently; bounded ones stop at the deadline so the source still
		// emits its final watermark.
		ms.done = true
		if ms.deadline < 0 {
			return false
		}
		*ev = Event{At: ms.deadline, Stop: true}
		return true
	}
	cs := ms.states[0]
	at := cs.nextAt
	*ev = Event{
		At:     at,
		Key:    cs.drawKey(at),
		Size:   cs.c.Size,
		Value:  cs.c.Value,
		Cohort: cs.idx,
	}
	cs.nextAt = at.Add(cs.gap(at))
	ms.siftDown(0)
	return true
}

// less orders the heap by (nextAt, cohort index).
func (ms *mergedStream) less(a, b *cohortState) bool {
	if a.nextAt != b.nextAt {
		return a.nextAt < b.nextAt
	}
	return a.idx < b.idx
}

func (ms *mergedStream) siftDown(i int) {
	n := len(ms.states)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && ms.less(ms.states[l], ms.states[min]) {
			min = l
		}
		if r < n && ms.less(ms.states[r], ms.states[min]) {
			min = r
		}
		if min == i {
			return
		}
		ms.states[i], ms.states[min] = ms.states[min], ms.states[i]
		i = min
	}
}
