package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"drrs/internal/simtime"
)

// Trace is a recorded arrival-stream set: exactly what a run's source
// instances consumed, in a versioned format that round-trips bit-for-bit.
// Replaying a Trace against the same job reproduces the run's OutcomeDigest.
type Trace struct {
	// SourceParallelism is the source instance count the trace was recorded
	// under. Replay re-partitions by cohort when the target differs.
	SourceParallelism int
	// Streams holds each instance's arrivals with At relative to the
	// stream's start; a bounded stream ends with a single Stop event.
	Streams [][]Event
}

// traceMagic identifies the format; the trailing byte is the version.
const traceMagic = "DRRSTRC\x01"

// Event flag bits in the encoded form.
const (
	tfStop  = 1 << 0
	tfValue = 1 << 1 // Value differs from the default 1.0 and is encoded
	tfSize  = 1 << 2 // Size differs from the default 100 and is encoded
)

// Events counts the data events (excluding Stop markers) across all streams.
func (t *Trace) Events() int {
	n := 0
	for _, st := range t.Streams {
		for i := range st {
			if !st[i].Stop {
				n++
			}
		}
	}
	return n
}

// Write encodes the trace: magic+version, then per-stream delta-encoded
// events, then an FNV-1a checksum of everything after the magic.
func (t *Trace) Write(w io.Writer) error {
	if t.SourceParallelism <= 0 || len(t.Streams) != t.SourceParallelism {
		return fmt.Errorf("workload: trace has %d streams for source parallelism %d",
			len(t.Streams), t.SourceParallelism)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	hw := &sumWriter{w: bw, sum: fnvOffset}
	hw.uvarint(uint64(t.SourceParallelism))
	for _, st := range t.Streams {
		hw.uvarint(uint64(len(st)))
		prev := simtime.Time(0)
		for i := range st {
			ev := &st[i]
			if ev.At < prev {
				return fmt.Errorf("workload: trace stream not time-ordered at event %d", i)
			}
			hw.uvarint(uint64(ev.At - prev))
			prev = ev.At
			if ev.Stop {
				hw.byte(tfStop)
				continue
			}
			flags := byte(0)
			if ev.Value != 1.0 {
				flags |= tfValue
			}
			if ev.Size != 100 {
				flags |= tfSize
			}
			hw.byte(flags)
			hw.uvarint(ev.Key)
			hw.uvarint(uint64(ev.Cohort))
			if flags&tfSize != 0 {
				hw.uvarint(uint64(ev.Size))
			}
			if flags&tfValue != 0 {
				hw.u64(math.Float64bits(ev.Value))
			}
		}
	}
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], hw.sum)
	if hw.err == nil {
		_, hw.err = bw.Write(foot[:])
	}
	if hw.err != nil {
		return hw.err
	}
	return bw.Flush()
}

// ReadTrace decodes a trace written by Write, verifying version and checksum.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("workload: reading trace header: %w", err)
	}
	if string(magic[:7]) != traceMagic[:7] {
		return nil, fmt.Errorf("workload: not a drrs trace file")
	}
	if magic[7] != traceMagic[7] {
		return nil, fmt.Errorf("workload: unsupported trace version %d (this build reads %d)",
			magic[7], traceMagic[7])
	}
	hr := &sumReader{r: br, sum: fnvOffset}
	p := int(hr.uvarint())
	if hr.err == nil && (p <= 0 || p > 1<<20) {
		return nil, fmt.Errorf("workload: trace declares implausible parallelism %d", p)
	}
	t := &Trace{SourceParallelism: p}
	for s := 0; s < p && hr.err == nil; s++ {
		n := int(hr.uvarint())
		st := make([]Event, 0, n)
		prev := simtime.Time(0)
		stopped := false
		for i := 0; i < n && hr.err == nil; i++ {
			prev = prev.Add(simtime.Duration(hr.uvarint()))
			flags := hr.byte()
			if stopped {
				return nil, fmt.Errorf("workload: trace stream %d has events after its stop marker", s)
			}
			if flags&tfStop != 0 {
				st = append(st, Event{At: prev, Stop: true})
				stopped = true
				continue
			}
			if flags&^(tfValue|tfSize) != 0 {
				return nil, fmt.Errorf("workload: trace uses unknown event flags 0x%x (newer writer?)", flags)
			}
			ev := Event{At: prev, Key: hr.uvarint(), Cohort: uint32(hr.uvarint()), Size: 100, Value: 1.0}
			if flags&tfSize != 0 {
				ev.Size = int(hr.uvarint())
			}
			if flags&tfValue != 0 {
				ev.Value = math.Float64frombits(hr.u64())
			}
			st = append(st, ev)
		}
		t.Streams = append(t.Streams, st)
	}
	if hr.err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", hr.err)
	}
	sum := hr.sum
	var foot [8]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(foot[:]); got != sum {
		return nil, fmt.Errorf("workload: trace checksum mismatch (file corrupt?)")
	}
	return t, nil
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile reads a trace from path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// fnvOffset/fnvPrime are FNV-1a constants (matching the digest elsewhere in
// the repo).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// sumWriter folds every written byte into an FNV-1a sum, capturing the first
// error so encode loops stay branch-light.
type sumWriter struct {
	w   *bufio.Writer
	sum uint64
	err error
}

func (h *sumWriter) byte(b byte) {
	h.sum = (h.sum ^ uint64(b)) * fnvPrime
	if h.err == nil {
		h.err = h.w.WriteByte(b)
	}
}

func (h *sumWriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	for _, b := range buf[:n] {
		h.byte(b)
	}
}

func (h *sumWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for _, b := range buf {
		h.byte(b)
	}
}

// sumReader mirrors sumWriter for decoding.
type sumReader struct {
	r   *bufio.Reader
	sum uint64
	err error
}

func (h *sumReader) byte() byte {
	if h.err != nil {
		return 0
	}
	b, err := h.r.ReadByte()
	if err != nil {
		h.err = err
		return 0
	}
	h.sum = (h.sum ^ uint64(b)) * fnvPrime
	return b
}

func (h *sumReader) uvarint() uint64 {
	var v uint64
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b := h.byte()
		if h.err != nil {
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
	h.err = fmt.Errorf("uvarint overflows 64 bits")
	return 0
}

func (h *sumReader) u64() uint64 {
	var buf [8]byte
	for i := range buf {
		buf[i] = h.byte()
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Replay builds Traffic that feeds a recorded Trace back verbatim. When the
// job's source parallelism matches the recording, each instance replays its
// exact stream; otherwise arrivals are re-partitioned by cohort (cohort i
// feeds instance i mod parallelism, matching Live) with recorded order
// preserved inside each instance.
func Replay(t *Trace) Traffic {
	if t == nil {
		panic("workload: Replay needs a non-nil Trace")
	}
	return replayTraffic{t: t}
}

type replayTraffic struct{ t *Trace }

func (rt replayTraffic) Describe() string {
	var end simtime.Time
	for _, st := range rt.t.Streams {
		if n := len(st); n > 0 && st[n-1].At > end {
			end = st[n-1].At
		}
	}
	return fmt.Sprintf("replay: %d events over %d streams, %v recorded",
		rt.t.Events(), rt.t.SourceParallelism, simtime.Duration(end))
}

func (rt replayTraffic) Stream(instance, parallelism int, start simtime.Time) Stream {
	if parallelism == rt.t.SourceParallelism {
		return &sliceStream{events: rt.t.Streams[instance], start: start}
	}
	return &sliceStream{events: rt.repartition(instance, parallelism), start: start}
}

// repartition merges the recorded streams by (At, stream) and keeps the
// arrivals whose cohort routes to this instance, ending with a Stop at the
// latest recorded stop time.
func (rt replayTraffic) repartition(instance, parallelism int) []Event {
	idx := make([]int, len(rt.t.Streams))
	var out []Event
	var stopAt simtime.Time
	sawStop := false
	for {
		best := -1
		for s, st := range rt.t.Streams {
			if idx[s] >= len(st) {
				continue
			}
			if best < 0 || st[idx[s]].At < rt.t.Streams[best][idx[best]].At {
				best = s
			}
		}
		if best < 0 {
			break
		}
		ev := rt.t.Streams[best][idx[best]]
		idx[best]++
		if ev.Stop {
			if ev.At > stopAt {
				stopAt = ev.At
			}
			sawStop = true
			continue
		}
		if int(ev.Cohort)%parallelism == instance {
			out = append(out, ev)
		}
	}
	if sawStop {
		out = append(out, Event{At: stopAt, Stop: true})
	}
	return out
}

// sliceStream replays a recorded event slice, re-anchoring times at start.
type sliceStream struct {
	events []Event
	start  simtime.Time
	next   int
}

func (s *sliceStream) Next(ev *Event) bool {
	if s.next >= len(s.events) {
		return false
	}
	*ev = s.events[s.next]
	s.next++
	ev.At = s.start.Add(simtime.Duration(ev.At))
	return true
}

// Recorder tees a Traffic's streams into an in-memory Trace as a run pulls
// them: wrap the traffic, run once, then Trace() holds exactly what the
// sources consumed. One recorder serves one run.
type Recorder struct {
	inner Traffic
	trace Trace
}

// NewRecorder wraps inner so its streams are recorded as they are consumed.
func NewRecorder(inner Traffic) *Recorder {
	return &Recorder{inner: inner}
}

func (r *Recorder) Describe() string { return "record(" + r.inner.Describe() + ")" }

func (r *Recorder) Stream(instance, parallelism int, start simtime.Time) Stream {
	if r.trace.SourceParallelism == 0 {
		r.trace.SourceParallelism = parallelism
		r.trace.Streams = make([][]Event, parallelism)
	}
	return &teeStream{
		inner: r.inner.Stream(instance, parallelism, start),
		rec:   &r.trace.Streams[instance],
		start: start,
	}
}

// Trace returns the recording; call after the run has drained the streams.
func (r *Recorder) Trace() *Trace { return &r.trace }

type teeStream struct {
	inner Stream
	rec   *[]Event
	start simtime.Time
}

func (s *teeStream) Next(ev *Event) bool {
	if !s.inner.Next(ev) {
		return false
	}
	stored := *ev
	stored.At = simtime.Time(stored.At.Sub(s.start))
	*s.rec = append(*s.rec, stored)
	return true
}

// Synthesize drains a bounded Traffic's streams directly — no simulation —
// into the Trace a run over the same (traffic, parallelism) would consume.
// Unbounded traffic would never return; callers pass Specs with a Duration.
func Synthesize(traffic Traffic, parallelism int) *Trace {
	t := &Trace{SourceParallelism: parallelism, Streams: make([][]Event, parallelism)}
	for i := 0; i < parallelism; i++ {
		st := traffic.Stream(i, parallelism, 0)
		var ev Event
		for st.Next(&ev) {
			t.Streams[i] = append(t.Streams[i], ev)
		}
	}
	return t
}
