package workload

import (
	"fmt"
	"strings"

	"drrs/internal/simtime"
)

// Phase is one segment of a phase-programmable load shape: for the phase's
// duration the offered rate is Config.RatePerSec multiplied by a factor
// interpolated linearly from StartFactor to EndFactor.
type Phase struct {
	Duration    simtime.Duration
	StartFactor float64
	EndFactor   float64
}

// Shape programs how a workload evolves over a run: a sequence of rate
// phases plus optional hot-key drift that migrates the Zipf hot set across
// the key space. The zero Shape is a flat load with a static hot set, which
// keeps every pre-existing scenario byte-identical.
//
// Shapes are pure functions of elapsed time, so a shaped run stays exactly
// as deterministic as a flat one.
type Shape struct {
	// Phases play in order from the start of the run. After the last phase
	// the final EndFactor holds for the rest of the run, unless Loop repeats
	// the program from the beginning.
	Phases []Phase
	Loop   bool

	// HotKeyShiftEvery rotates the Zipf rank→key mapping every interval, so
	// the hottest keys drift through the key space instead of staying pinned
	// to the lowest ranks (0 disables drift).
	HotKeyShiftEvery simtime.Duration
	// HotKeyShiftFraction is the fraction of the key space the hot set moves
	// per shift (default 0.05 when drift is enabled).
	HotKeyShiftFraction float64
}

// minFactor keeps a mis-programmed phase from stalling the generator: the
// tick loop reschedules at period/factor, so factor must stay positive.
const minFactor = 0.01

// IsZero reports whether the shape modulates anything.
func (s Shape) IsZero() bool {
	return len(s.Phases) == 0 && s.HotKeyShiftEvery == 0
}

// FactorAt returns the rate multiplier at elapsed run time el.
func (s Shape) FactorAt(el simtime.Duration) float64 {
	if len(s.Phases) == 0 {
		return 1
	}
	var total simtime.Duration
	for _, p := range s.Phases {
		total += p.Duration
	}
	if total <= 0 {
		return 1
	}
	if s.Loop {
		el = el % total
	} else if el >= total {
		return clampFactor(s.Phases[len(s.Phases)-1].EndFactor)
	}
	for _, p := range s.Phases {
		if el < p.Duration {
			frac := float64(el) / float64(p.Duration)
			return clampFactor(p.StartFactor + (p.EndFactor-p.StartFactor)*frac)
		}
		el -= p.Duration
	}
	return clampFactor(s.Phases[len(s.Phases)-1].EndFactor)
}

func clampFactor(f float64) float64 {
	if f < minFactor {
		return minFactor
	}
	return f
}

// MapRank translates a Zipf rank into a key index in [0, keys), applying the
// hot-key drift active at elapsed time el: the whole rank order rotates
// through the key space by HotKeyShiftFraction per HotKeyShiftEvery.
func (s Shape) MapRank(rank int, el simtime.Duration, keys int) int {
	if s.HotKeyShiftEvery <= 0 || keys <= 0 {
		return rank
	}
	frac := s.HotKeyShiftFraction
	if frac <= 0 {
		frac = 0.05
	}
	step := int(frac * float64(keys))
	if step < 1 {
		step = 1
	}
	shifts := int(el / s.HotKeyShiftEvery)
	return (rank + shifts*step) % keys
}

// String renders a compact description for scenario listings.
func (s Shape) String() string {
	if s.IsZero() {
		return "flat"
	}
	var parts []string
	for _, p := range s.Phases {
		if p.StartFactor == p.EndFactor {
			parts = append(parts, fmt.Sprintf("%.2gx@%v", p.StartFactor, p.Duration))
		} else {
			parts = append(parts, fmt.Sprintf("%.2g→%.2gx@%v", p.StartFactor, p.EndFactor, p.Duration))
		}
	}
	out := strings.Join(parts, " ")
	if s.Loop {
		out += " loop"
	}
	if s.HotKeyShiftEvery > 0 {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("drift@%v", s.HotKeyShiftEvery)
	}
	return out
}

// FlashCrowd builds the spike shape: baseline load for quiet, a sudden jump
// to magnitude× for spike, then baseline again (a flash crowd arriving and
// dispersing — the regime where scale-out followed by scale-back pays off).
func FlashCrowd(quiet, spike simtime.Duration, magnitude float64) Shape {
	return Shape{Phases: []Phase{
		{Duration: quiet, StartFactor: 1, EndFactor: 1},
		{Duration: spike, StartFactor: magnitude, EndFactor: magnitude},
		{Duration: quiet, StartFactor: 1, EndFactor: 1},
	}}
}

// Diurnal builds a looping ramp between low× and high× with the given
// period — a compressed day/night cycle of drifting offered load.
func Diurnal(period simtime.Duration, low, high float64) Shape {
	return Shape{
		Phases: []Phase{
			{Duration: period / 2, StartFactor: low, EndFactor: high},
			{Duration: period / 2, StartFactor: high, EndFactor: low},
		},
		Loop: true,
	}
}

// HotKeyDrift builds a flat-rate shape whose Zipf hot set migrates by
// fraction of the key space every interval — the adversarial case for
// placement decisions made at scale time.
func HotKeyDrift(every simtime.Duration, fraction float64) Shape {
	return Shape{HotKeyShiftEvery: every, HotKeyShiftFraction: fraction}
}
