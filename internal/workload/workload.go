// Package workload builds the paper's configurable custom job (Section V-A):
// a generator → keyed aggregator → sink pipeline with adjustable input rate,
// per-key state size, and Zipf workload skewness. The paper uses it for the
// cluster sensitivity analysis (Fig 15) because the dominant scaling overhead
// involves only the scaling operator and its predecessors.
//
// The API separates what runs from what arrives:
//
//   - JobConfig fixes the topology side — parallelism, key groups, state
//     size, processing cost, watermark cadence.
//   - Traffic produces the arrival stream — Classic (the original
//     single-generator Zipf load), Live (multi-client cohort Specs), or
//     Replay (a recorded Trace).
//   - BuildJob(job, traffic) assembles the graph.
//
// Config predates the split and remains as a compatibility veneer: Build(cfg)
// is exactly BuildJob(cfg.Split()) and produces a byte-identical event
// stream.
package workload

import (
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/simtime"
)

// JobConfig parameterizes the custom job's topology: everything about the
// pipeline that is independent of the arrival stream. Unlike the legacy
// Config it performs no zero-value defaulting — every field is used verbatim,
// so explicit zeros (a free aggregator, stateless keys) are expressible.
// Start from DefaultJob and override.
type JobConfig struct {
	// SourceParallelism and AggParallelism set initial parallelism.
	SourceParallelism int
	AggParallelism    int
	// MaxKeyGroups is the aggregator's key-group count (paper: 128 single
	// machine, 256 cluster).
	MaxKeyGroups int
	// StateBytesPerKey sets per-key state size (total state ≈ keys × this).
	// Zero is honoured: a stateless aggregator.
	StateBytesPerKey int
	// CostPerRecord is the aggregator's processing cost. Zero is honoured: a
	// free aggregator.
	CostPerRecord simtime.Duration
	// WatermarkEvery sets the watermark cadence.
	WatermarkEvery simtime.Duration
	// EmitUpdates forwards every aggregation update to the sink (needed by
	// correctness tests; benchmarks can disable it to cut message volume).
	EmitUpdates bool
}

// DefaultJob returns the job topology the legacy Config defaulted to: 1
// source, 4 aggregators over 128 key groups, 1 KiB per key, 100 µs per
// record, 100 ms watermarks.
func DefaultJob() JobConfig {
	return JobConfig{
		SourceParallelism: 1,
		AggParallelism:    4,
		MaxKeyGroups:      128,
		StateBytesPerKey:  1024,
		CostPerRecord:     100 * simtime.Microsecond,
		WatermarkEvery:    simtime.Ms(100),
	}
}

// validate panics on structurally impossible jobs. Zeros that are meaningful
// (cost, state size) pass; zeros that would wedge the engine do not.
func (j JobConfig) validate() {
	if j.SourceParallelism <= 0 {
		panic("workload: JobConfig.SourceParallelism must be > 0 (use DefaultJob)")
	}
	if j.AggParallelism <= 0 {
		panic("workload: JobConfig.AggParallelism must be > 0 (use DefaultJob)")
	}
	if j.MaxKeyGroups <= 0 {
		panic("workload: JobConfig.MaxKeyGroups must be > 0 (use DefaultJob)")
	}
	if j.WatermarkEvery <= 0 {
		panic("workload: JobConfig.WatermarkEvery must be > 0 (use DefaultJob)")
	}
	if j.StateBytesPerKey < 0 || j.CostPerRecord < 0 {
		panic("workload: JobConfig state size and record cost cannot be negative")
	}
}

// Config parameterizes the custom job through the pre-split API. It is a thin
// veneer over (JobConfig, Traffic): Build(cfg) == BuildJob(cfg.Split()).
//
// Sentinel semantics: a zero in any field below means "use the default", so
// explicit zeros are unexpressible here — Config{RatePerSec: 0} is 1000
// records/s, not silence, and Config{CostPerRecord: 0} costs 100 µs. Callers
// that need a true zero (or traffic beyond one Zipf generator) use JobConfig
// + Traffic directly.
type Config struct {
	// SourceParallelism and AggParallelism set initial parallelism.
	SourceParallelism int
	AggParallelism    int
	// MaxKeyGroups is the aggregator's key-group count (paper: 128 single
	// machine, 256 cluster).
	MaxKeyGroups int
	// Keys is the key-space size.
	Keys int
	// RatePerSec is the per-source-instance input rate (records/s).
	RatePerSec float64
	// Skew is the Zipf skewness over keys (paper: 0, 0.5, 1.0, 1.5).
	Skew float64
	// StateBytesPerKey sets per-key state size (total state ≈ Keys × this).
	StateBytesPerKey int
	// CostPerRecord is the aggregator's processing cost.
	CostPerRecord simtime.Duration
	// Shape programs rate phases and hot-key drift over the run; the zero
	// Shape is the classic flat load.
	Shape Shape
	// Duration bounds generation; 0 generates forever.
	Duration simtime.Duration
	// WatermarkEvery sets the watermark cadence (default 100 ms).
	WatermarkEvery simtime.Duration
	// Seed drives the generators.
	Seed int64
	// EmitUpdates forwards every aggregation update to the sink (needed by
	// correctness tests; benchmarks can disable it to cut message volume).
	EmitUpdates bool
}

func (c *Config) fillDefaults() {
	if c.SourceParallelism == 0 {
		c.SourceParallelism = 1
	}
	if c.AggParallelism == 0 {
		c.AggParallelism = 4
	}
	if c.MaxKeyGroups == 0 {
		c.MaxKeyGroups = 128
	}
	if c.Keys == 0 {
		c.Keys = 1000
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 1000
	}
	if c.StateBytesPerKey == 0 {
		c.StateBytesPerKey = 1024
	}
	if c.CostPerRecord == 0 {
		c.CostPerRecord = 100 * simtime.Microsecond
	}
	if c.WatermarkEvery == 0 {
		c.WatermarkEvery = simtime.Ms(100)
	}
}

// Split converts the veneer into the post-redesign form: the fully-defaulted
// JobConfig plus the Classic traffic generator. The traffic produced is
// byte-identical to what the pre-split Build emitted.
func (c Config) Split() (JobConfig, Traffic) {
	c.fillDefaults()
	job := JobConfig{
		SourceParallelism: c.SourceParallelism,
		AggParallelism:    c.AggParallelism,
		MaxKeyGroups:      c.MaxKeyGroups,
		StateBytesPerKey:  c.StateBytesPerKey,
		CostPerRecord:     c.CostPerRecord,
		WatermarkEvery:    c.WatermarkEvery,
		EmitUpdates:       c.EmitUpdates,
	}
	return job, Classic(c)
}

// Build constructs the job graph from the legacy Config and returns it with
// the sink logic for inspection. Operators are named "gen", "agg", "sink".
func Build(cfg Config) (*dataflow.Graph, *engine.CollectSink) {
	job, traffic := cfg.Split()
	return BuildJob(job, traffic)
}

// BuildJob constructs the job graph from a topology and an arrival stream and
// returns it with the sink logic for inspection. Operators are named "gen",
// "agg", "sink". Panics on structurally invalid jobs (see JobConfig).
func BuildJob(job JobConfig, traffic Traffic) (*dataflow.Graph, *engine.CollectSink) {
	job.validate()
	if traffic == nil {
		panic("workload: BuildJob needs a Traffic (Classic, Live, or Replay)")
	}
	sink := engine.NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "gen",
		Parallelism: job.SourceParallelism,
		Source:      driveSource(job, traffic),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          "agg",
		Parallelism:   job.AggParallelism,
		KeyedInput:    true,
		MaxKeyGroups:  job.MaxKeyGroups,
		CostPerRecord: job.CostPerRecord,
		CostJitter:    0.1,
		NewLogic: func() dataflow.Logic {
			return &engine.KeyedReduceLogic{
				StateBytes:  job.StateBytesPerKey,
				EmitUpdates: job.EmitUpdates,
			}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "sink",
		Parallelism: 1,
		NewLogic:    func() dataflow.Logic { return sink },
	})
	g.Connect("gen", "agg", dataflow.ExchangeKeyed)
	g.Connect("agg", "sink", dataflow.ExchangeRebalance)
	return g, sink
}
