// Package workload builds the paper's configurable custom job (Section V-A):
// a generator → keyed aggregator → sink pipeline with adjustable input rate,
// per-key state size, and Zipf workload skewness. The paper uses it for the
// cluster sensitivity analysis (Fig 15) because the dominant scaling overhead
// involves only the scaling operator and its predecessors.
package workload

import (
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/simtime"
)

// Config parameterizes the custom job.
type Config struct {
	// SourceParallelism and AggParallelism set initial parallelism.
	SourceParallelism int
	AggParallelism    int
	// MaxKeyGroups is the aggregator's key-group count (paper: 128 single
	// machine, 256 cluster).
	MaxKeyGroups int
	// Keys is the key-space size.
	Keys int
	// RatePerSec is the per-source-instance input rate (records/s).
	RatePerSec float64
	// Skew is the Zipf skewness over keys (paper: 0, 0.5, 1.0, 1.5).
	Skew float64
	// StateBytesPerKey sets per-key state size (total state ≈ Keys × this).
	StateBytesPerKey int
	// CostPerRecord is the aggregator's processing cost.
	CostPerRecord simtime.Duration
	// Shape programs rate phases and hot-key drift over the run; the zero
	// Shape is the classic flat load.
	Shape Shape
	// Duration bounds generation; 0 generates forever.
	Duration simtime.Duration
	// WatermarkEvery sets the watermark cadence (default 100 ms).
	WatermarkEvery simtime.Duration
	// Seed drives the generators.
	Seed int64
	// EmitUpdates forwards every aggregation update to the sink (needed by
	// correctness tests; benchmarks can disable it to cut message volume).
	EmitUpdates bool
}

func (c *Config) fillDefaults() {
	if c.SourceParallelism == 0 {
		c.SourceParallelism = 1
	}
	if c.AggParallelism == 0 {
		c.AggParallelism = 4
	}
	if c.MaxKeyGroups == 0 {
		c.MaxKeyGroups = 128
	}
	if c.Keys == 0 {
		c.Keys = 1000
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 1000
	}
	if c.StateBytesPerKey == 0 {
		c.StateBytesPerKey = 1024
	}
	if c.CostPerRecord == 0 {
		c.CostPerRecord = 100 * simtime.Microsecond
	}
	if c.WatermarkEvery == 0 {
		c.WatermarkEvery = simtime.Ms(100)
	}
}

// Build constructs the job graph and returns it with the sink logic for
// inspection. Operators are named "gen", "agg", "sink".
func Build(cfg Config) (*dataflow.Graph, *engine.CollectSink) {
	cfg.fillDefaults()
	sink := engine.NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "gen",
		Parallelism: cfg.SourceParallelism,
		Source:      generator(cfg),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          "agg",
		Parallelism:   cfg.AggParallelism,
		KeyedInput:    true,
		MaxKeyGroups:  cfg.MaxKeyGroups,
		CostPerRecord: cfg.CostPerRecord,
		CostJitter:    0.1,
		NewLogic: func() dataflow.Logic {
			return &engine.KeyedReduceLogic{
				StateBytes:  cfg.StateBytesPerKey,
				EmitUpdates: cfg.EmitUpdates,
			}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "sink",
		Parallelism: 1,
		NewLogic:    func() dataflow.Logic { return sink },
	})
	g.Connect("gen", "agg", dataflow.ExchangeKeyed)
	g.Connect("agg", "sink", dataflow.ExchangeRebalance)
	return g, sink
}

// genBatch is how many emissions the generator precomputes per scheduling
// batch: large enough to amortize the batch refill and keep the RNG/shape
// math out of the per-wake path, small enough that a mid-run rate change
// (shapes are pure functions of arrival time, so precomputation is exact)
// costs no extra memory to speak of.
const genBatch = 256

// genEvent is one precomputed source emission.
type genEvent struct {
	at  simtime.Time
	key uint64
	// wm emits a watermark right after the record (the record's arrival
	// crossed the watermark cadence).
	wm bool
	// stop marks the deadline tick: emit a final watermark and quit.
	stop bool
}

// generator emits Zipf-keyed records at the shape-modulated rate with
// periodic watermarks.
//
// Instead of one timer callback per record, it precomputes the arrival
// times, keys, and watermark crossings of the next genBatch records up
// front — drawing the RNG in exactly the per-tick order (zipf rank, then
// period jitter) of the timer-per-record loop it replaces, so the event
// stream is byte-identical — and re-arms a single pump across the batch.
// Each pump firing hands the due record straight to the source's backlog
// drain (dataflow.SourcePump), so the instance emits whole inbox batches
// without a zero-delay wake event per record.
func generator(cfg Config) dataflow.SourceFunc {
	return func(ctx dataflow.SourceContext) {
		rng := simtime.NewRNG(cfg.Seed, "workload/gen")
		zipf := simtime.NewZipf(simtime.NewRNG(cfg.Seed, "workload/zipf"), cfg.Keys, cfg.Skew)
		start := ctx.Now()
		deadline := simtime.Time(-1)
		if cfg.Duration > 0 {
			deadline = start.Add(cfg.Duration)
		}
		var nextWM simtime.Time

		events := make([]genEvent, 0, genBatch)
		next := 0
		var tailAt simtime.Time // where the batch after this one starts
		fill := func(t simtime.Time) {
			events = events[:0]
			next = 0
			for len(events) < genBatch {
				if deadline >= 0 && t >= deadline {
					events = append(events, genEvent{at: t, stop: true})
					return
				}
				el := t.Sub(start)
				// Key 0 is reserved; ranks shift by 1.
				ev := genEvent{at: t, key: uint64(cfg.Shape.MapRank(zipf.Next(), el, cfg.Keys)) + 1}
				if t >= nextWM {
					ev.wm = true
					nextWM = t.Add(cfg.WatermarkEvery)
				}
				events = append(events, ev)
				period := simtime.Duration(float64(simtime.Second) / (cfg.RatePerSec * cfg.Shape.FactorAt(el)))
				t = t.Add(rng.Jitter(period, 0.05))
			}
			tailAt = t
		}

		ingest := ctx.Ingest
		if p, ok := ctx.(dataflow.SourcePump); ok {
			ingest = p.IngestNow
		}
		var pump func()
		pump = func() {
			now := ctx.Now()
			ev := events[next]
			next++
			if ev.stop {
				ctx.EmitWatermark(now)
				return
			}
			r := ctx.NewRecord()
			r.Key = ev.key
			r.EventTime = now
			r.Size = 100
			r.Value = 1.0
			ingest(r)
			if ev.wm {
				ctx.EmitWatermark(now)
			}
			if next == len(events) {
				fill(tailAt)
			}
			ctx.After(events[next].at.Sub(now), pump)
		}
		fill(start)
		pump()
	}
}
