package workload

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"drrs/internal/simtime"
)

// testSpec is a compact spec covering the full cohort surface: all four
// arrival processes, a skewed hot set, a fixed key set, a load shape, and
// non-default record size/value (exercising every trace flag path).
func testSpec(seed int64) Spec {
	mk := func(name string, clients int, rate float64, a Arrival, shape float64) Cohort {
		c := DefaultCohort()
		c.Name = name
		c.Clients = clients
		c.RatePerClient = rate / float64(clients)
		c.Arrival = a
		c.ArrivalShape = shape
		return c
	}
	skewed := mk("skewed", 40, 400, ArrivalPoisson, 1)
	skewed.Skew = 1.1
	skewed.KeyCount = 100
	bursty := mk("bursty", 25, 300, ArrivalGamma, 0.5)
	bursty.KeyBase = 101
	tail := mk("tail", 15, 250, ArrivalWeibull, 0.8)
	tail.KeyBase = 1101
	poll := mk("poll", 8, 200, ArrivalConstant, 0)
	poll.Jitter = 0.3
	poll.KeyBase = 2101
	fixed := mk("fixed", 5, 150, ArrivalPoisson, 1)
	fixed.KeySet = []uint64{5, 9}
	big := mk("big", 10, 200, ArrivalPoisson, 1)
	big.Size = 200
	big.Value = 2.5
	big.KeyBase = 3101
	big.Load = Diurnal(simtime.Sec(1), 0.6, 1.5)
	return Spec{
		Cohorts:  []Cohort{skewed, bursty, tail, poll, fixed, big},
		Duration: simtime.Sec(2),
		Seed:     seed,
	}
}

func drain(s Stream) []Event {
	var out []Event
	var ev Event
	for s.Next(&ev) {
		out = append(out, ev)
	}
	return out
}

func dropStops(events []Event) []Event {
	out := events[:0:0]
	for _, ev := range events {
		if !ev.Stop {
			out = append(out, ev)
		}
	}
	return out
}

// sortArrivals orders events the way the k-way merge promises to: by
// (At, cohort). Within one cohort times strictly increase (the ≥1ns gap
// clamp), so this is a total order.
func sortArrivals(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Cohort < events[j].Cohort
	})
}

// TestMergedStreamIsSortedMergeOfCohorts is the tentpole property test: for
// any parallelism, each instance's stream is time-ordered, and the union of
// all instances' arrivals is exactly the sorted merge of the independent
// per-cohort streams (obtained by running one cohort per instance). Checked
// across two seeds.
func TestMergedStreamIsSortedMergeOfCohorts(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		spec := testSpec(seed)
		n := len(spec.Cohorts)
		// Reference: parallelism n isolates cohort i on instance i, so each
		// stream IS that cohort's arrival sequence.
		var reference []Event
		perCohort := make([]int, n)
		for i := 0; i < n; i++ {
			evs := dropStops(drain(Live(spec).Stream(i, n, 0)))
			perCohort[i] = len(evs)
			for _, ev := range evs {
				if int(ev.Cohort) != i {
					t.Fatalf("seed %d: instance %d saw cohort %d", seed, i, ev.Cohort)
				}
			}
			reference = append(reference, evs...)
		}
		sortArrivals(reference)
		if len(reference) == 0 {
			t.Fatalf("seed %d: reference stream empty", seed)
		}
		for i, c := range perCohort {
			if c == 0 {
				t.Fatalf("seed %d: cohort %d produced no arrivals", seed, i)
			}
		}
		for _, par := range []int{1, 2} {
			var union []Event
			for inst := 0; inst < par; inst++ {
				evs := drain(Live(spec).Stream(inst, par, 0))
				for k := 1; k < len(evs); k++ {
					if evs[k].At < evs[k-1].At {
						t.Fatalf("seed %d par %d inst %d: stream not time-ordered at %d", seed, par, inst, k)
					}
				}
				last := evs[len(evs)-1]
				if !last.Stop || last.At != simtime.Time(0).Add(spec.Duration) {
					t.Fatalf("seed %d par %d inst %d: stream must end with a Stop at the deadline, got %+v", seed, par, inst, last)
				}
				union = append(union, dropStops(evs)...)
			}
			sortArrivals(union)
			if !reflect.DeepEqual(union, reference) {
				t.Fatalf("seed %d par %d: merged union diverges from per-cohort reference (%d vs %d events)",
					seed, par, len(union), len(reference))
			}
		}
	}
}

// TestLiveDeterminism: same spec and seed replay identically; a different
// seed moves the stream.
func TestLiveDeterminism(t *testing.T) {
	a := Synthesize(Live(testSpec(3)), 2)
	b := Synthesize(Live(testSpec(3)), 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed synthesized different traces")
	}
	c := Synthesize(Live(testSpec(4)), 2)
	if reflect.DeepEqual(a.Streams, c.Streams) {
		t.Fatal("different seeds synthesized identical traces")
	}
}

// TestTraceRoundTrip: encode → decode is identity, in memory and on disk,
// including non-default sizes/values and stop markers.
func TestTraceRoundTrip(t *testing.T) {
	tr := Synthesize(Live(testSpec(3)), 2)
	if tr.Events() == 0 {
		t.Fatal("synthesized trace is empty")
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("trace did not round-trip through the codec")
	}
	path := t.TempDir() + "/round.trace"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back2) {
		t.Fatal("trace did not round-trip through a file")
	}
}

// TestTraceRejectsCorruption: version bumps, bit flips, and truncation all
// fail loudly instead of replaying garbage.
func TestTraceRejectsCorruption(t *testing.T) {
	tr := Synthesize(Live(testSpec(3)), 1)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	future := append([]byte(nil), enc...)
	future[7]++ // version byte
	if _, err := ReadTrace(bytes.NewReader(future)); err == nil {
		t.Fatal("accepted a future trace version")
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadTrace(bytes.NewReader(flipped)); err == nil {
		t.Fatal("accepted a corrupted trace")
	}
	if _, err := ReadTrace(bytes.NewReader(enc[:len(enc)-4])); err == nil {
		t.Fatal("accepted a truncated trace")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("accepted a non-trace file")
	}
}

// TestReplayReproducesTraffic: replaying a synthesized trace at the recorded
// parallelism reproduces it exactly; replaying at a different parallelism
// preserves the arrival multiset, time order, and cohort routing.
func TestReplayReproducesTraffic(t *testing.T) {
	tr := Synthesize(Live(testSpec(3)), 2)
	same := Synthesize(Replay(tr), 2)
	if !reflect.DeepEqual(tr.Streams, same.Streams) {
		t.Fatal("replay at the recorded parallelism is not exact")
	}

	one := Synthesize(Replay(tr), 1)
	if got, want := one.Events(), tr.Events(); got != want {
		t.Fatalf("repartition dropped events: %d vs %d", got, want)
	}
	evs := one.Streams[0]
	for k := 1; k < len(evs); k++ {
		if evs[k].At < evs[k-1].At {
			t.Fatalf("repartitioned stream not time-ordered at %d", k)
		}
	}
	if last := evs[len(evs)-1]; !last.Stop {
		t.Fatal("repartitioned bounded stream must end with a Stop")
	}
	// The same arrivals, regardless of how they were partitioned.
	a := dropStops(append([]Event(nil), tr.Streams[0]...))
	a = append(a, dropStops(tr.Streams[1])...)
	sortArrivals(a)
	b := dropStops(append([]Event(nil), evs...))
	sortArrivals(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repartitioning changed the arrival multiset")
	}
	// Cohort routing matches Live's partitioning on the new parallelism.
	three := Synthesize(Replay(tr), 3)
	for inst, st := range three.Streams {
		for _, ev := range dropStops(st) {
			if int(ev.Cohort)%3 != inst {
				t.Fatalf("cohort %d landed on instance %d", ev.Cohort, inst)
			}
		}
	}
}

// TestSpecValidation: malformed cohorts panic with the cohort named.
func TestSpecValidation(t *testing.T) {
	cases := map[string]func(*Cohort){
		"zero clients": func(c *Cohort) { c.Clients = 0 },
		"zero rate":    func(c *Cohort) { c.RatePerClient = 0 },
		"zero size":    func(c *Cohort) { c.Size = 0 },
		"gamma shape":  func(c *Cohort) { c.Arrival = ArrivalGamma; c.ArrivalShape = 0 },
		"jitter range": func(c *Cohort) { c.Arrival = ArrivalConstant; c.Jitter = 1 },
		"key zero":     func(c *Cohort) { c.KeySet = []uint64{0} },
		"keybase zero": func(c *Cohort) { c.KeyBase = 0 },
		"negative skew": func(c *Cohort) {
			c.Skew = -1
		},
	}
	for name, breakIt := range cases {
		c := DefaultCohort()
		c.Name = "victim"
		breakIt(&c)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: validate accepted the cohort", name)
				}
			}()
			Live(Spec{Cohorts: []Cohort{c}})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty Spec accepted")
			}
		}()
		Live(Spec{})
	}()
}

// TestJobConfigValidation: BuildJob rejects malformed jobs and nil traffic
// eagerly; explicit zeros for cost and state are honored, not re-defaulted.
func TestJobConfigValidation(t *testing.T) {
	for name, breakIt := range map[string]func(*JobConfig){
		"source parallelism": func(j *JobConfig) { j.SourceParallelism = 0 },
		"agg parallelism":    func(j *JobConfig) { j.AggParallelism = 0 },
		"key groups":         func(j *JobConfig) { j.MaxKeyGroups = 0 },
		"watermark":          func(j *JobConfig) { j.WatermarkEvery = 0 },
		"negative state":     func(j *JobConfig) { j.StateBytesPerKey = -1 },
		"negative cost":      func(j *JobConfig) { j.CostPerRecord = -1 },
	} {
		j := DefaultJob()
		breakIt(&j)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: BuildJob accepted the job", name)
				}
			}()
			BuildJob(j, Classic(Config{}))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BuildJob accepted nil traffic")
			}
		}()
		BuildJob(DefaultJob(), nil)
	}()
	// Explicit zeros are legal and preserved — the ambiguity JobConfig fixes.
	j := DefaultJob()
	j.CostPerRecord = 0
	j.StateBytesPerKey = 0
	g, _ := BuildJob(j, Classic(Config{}))
	if err := g.Validate(); err != nil {
		t.Fatalf("zero-cost job graph invalid: %v", err)
	}
}

// TestSplitMapsSentinels: the compat veneer resolves Config's zero sentinels
// to the documented defaults, so JobConfig carries no ambiguity forward.
func TestSplitMapsSentinels(t *testing.T) {
	job, traffic := Config{}.Split()
	if job != DefaultJob() {
		t.Fatalf("Config{}.Split() job %+v, want DefaultJob %+v", job, DefaultJob())
	}
	if traffic == nil || traffic.Describe() == "" {
		t.Fatal("Split returned no classic traffic")
	}
	job2, _ := Config{AggParallelism: 6, StateBytesPerKey: 2048}.Split()
	if job2.AggParallelism != 6 || job2.StateBytesPerKey != 2048 {
		t.Fatalf("Split dropped explicit fields: %+v", job2)
	}
}

// TestDescribeSummaries: traffic one-liners (used by drrs-bench -list) name
// the essentials.
func TestDescribeSummaries(t *testing.T) {
	live := Live(testSpec(3))
	if d := live.Describe(); d == "" {
		t.Fatal("live Describe empty")
	}
	tr := Synthesize(live, 2)
	if d := Replay(tr).Describe(); d == "" {
		t.Fatal("replay Describe empty")
	}
	if d := NewRecorder(live).Describe(); d == "" {
		t.Fatal("recorder Describe empty")
	}
	if d := Classic(Config{}).Describe(); d == "" {
		t.Fatal("classic Describe empty")
	}
}
