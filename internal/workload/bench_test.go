package workload

import (
	"testing"

	"drrs/internal/engine"
	"drrs/internal/simtime"
)

// BenchmarkWorkloadGen measures the generator-dominated end of the custom
// job: a high-rate source feeding a cheap single-instance aggregator, so the
// per-record source cost (RNG draws, shape modulation, timer scheduling,
// ingest/emit) is what the number tracks.
func BenchmarkWorkloadGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := Config{
			SourceParallelism: 1,
			AggParallelism:    1,
			Keys:              2000,
			RatePerSec:        20000,
			Skew:              0.8,
			CostPerRecord:     time1us,
			Duration:          simtime.Sec(3),
			Seed:              int64(i + 1),
		}
		g, _ := Build(cfg)
		s := simtime.NewScheduler()
		rt := engine.New(s, g, nil, engine.Config{Seed: cfg.Seed})
		rt.Start()
		s.RunUntil(simtime.Time(cfg.Duration))
		rt.StopMarkers()
		s.Run()
		if rt.Throughput.Total() < 50000 {
			b.Fatalf("generated only %d records", rt.Throughput.Total())
		}
	}
}

const time1us = 1 * simtime.Microsecond
