// Package nexmark implements the NEXMark benchmark pieces the paper
// evaluates on (Section V-A): the auction-system event generator and the Q7
// and Q8 query pipelines, with the paper's substitution of sliding windows
// for tumbling ones ("the latter can introduce significant instability in
// scaling performance").
//
//   - Q7 (highest bid): a high-rate bid stream into a sliding-window max
//     keyed by auction. The paper runs 20K tps with a 10 s window sliding
//     every 500 ms, accumulating ~800 MB of window state.
//   - Q8 (new users joining auctions): persons ⋈ auctions over a sliding
//     window keyed by person/seller id. The paper runs 1K tps with a 40 s
//     window sliding every 5 s, accumulating ~3 GB.
//
// Configs default to scaled-down rates and windows so simulations stay fast;
// EXPERIMENTS.md documents the scaling factors.
package nexmark

import (
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/simtime"
)

// Bid is a NEXMark bid event. On the wire it is encoded into the typed
// record fields (Key = Auction, Value = Price), so the Q7 hot path never
// boxes a Bid.
type Bid struct {
	Auction uint64
	Bidder  uint64
	Price   float64
}

// PersonEvt is a NEXMark person registration.
type PersonEvt struct {
	Person uint64
}

// AuctionEvt is a NEXMark auction opening.
type AuctionEvt struct {
	Auction uint64
	Seller  uint64
}

// Q7Config parameterizes the Q7 pipeline.
type Q7Config struct {
	// RatePerSec is bids/second per source instance (paper: 20K total).
	RatePerSec float64
	// SourceParallelism and WindowParallelism set initial parallelism
	// (paper: windows at 8, scaled to 12).
	SourceParallelism int
	WindowParallelism int
	// MaxKeyGroups is the window operator's key-group count (paper: 128).
	MaxKeyGroups int
	// Auctions is the hot-auction pool size (key space).
	Auctions int
	// WindowSize and Slide follow the paper's Q7 shape (10 s / 500 ms),
	// scaled down by default.
	WindowSize simtime.Duration
	Slide      simtime.Duration
	// BytesPerEntry sizes window state per buffered bid.
	BytesPerEntry int
	// CostPerRecord is the window operator's processing cost.
	CostPerRecord simtime.Duration
	// Duration bounds generation (0 = endless).
	Duration simtime.Duration
	// Seed drives the generator.
	Seed int64
}

func (c *Q7Config) fillDefaults() {
	if c.RatePerSec == 0 {
		c.RatePerSec = 2000
	}
	if c.SourceParallelism == 0 {
		c.SourceParallelism = 2
	}
	if c.WindowParallelism == 0 {
		c.WindowParallelism = 8
	}
	if c.MaxKeyGroups == 0 {
		c.MaxKeyGroups = 128
	}
	if c.Auctions == 0 {
		c.Auctions = 2000
	}
	if c.WindowSize == 0 {
		c.WindowSize = simtime.Sec(2)
	}
	if c.Slide == 0 {
		c.Slide = simtime.Ms(100)
	}
	if c.BytesPerEntry == 0 {
		c.BytesPerEntry = 48
	}
	if c.CostPerRecord == 0 {
		c.CostPerRecord = 60 * simtime.Microsecond
	}
}

// BuildQ7 constructs the Q7 job: "bids" → "winmax" (scaling operator) →
// "sink". It returns the graph and the sink for inspection.
func BuildQ7(cfg Q7Config) (*dataflow.Graph, *engine.CollectSink) {
	cfg.fillDefaults()
	sink := engine.NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "bids",
		Parallelism: cfg.SourceParallelism,
		Source:      bidSource(cfg),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          "winmax",
		Parallelism:   cfg.WindowParallelism,
		KeyedInput:    true,
		MaxKeyGroups:  cfg.MaxKeyGroups,
		CostPerRecord: cfg.CostPerRecord,
		CostJitter:    0.1,
		NewLogic: func() dataflow.Logic {
			return &engine.SlidingWindowLogic{
				Size:          cfg.WindowSize,
				Slide:         cfg.Slide,
				BytesPerEntry: cfg.BytesPerEntry,
			}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "sink",
		Parallelism: 1,
		NewLogic:    func() dataflow.Logic { return sink },
	})
	g.Connect("bids", "winmax", dataflow.ExchangeKeyed)
	g.Connect("winmax", "sink", dataflow.ExchangeRebalance)
	return g, sink
}

func bidSource(cfg Q7Config) dataflow.SourceFunc {
	return func(ctx dataflow.SourceContext) {
		rng := simtime.NewRNG(cfg.Seed, "nexmark/bids")
		// Hot auctions follow NEXMark's skewed popularity.
		zipf := simtime.NewZipf(simtime.NewRNG(cfg.Seed, "nexmark/auctions"), cfg.Auctions, 0.8)
		period := simtime.Duration(float64(simtime.Second) / cfg.RatePerSec)
		start := ctx.Now()
		var nextWM simtime.Time
		var tick func()
		tick = func() {
			now := ctx.Now()
			if cfg.Duration > 0 && now >= start.Add(cfg.Duration) {
				ctx.EmitWatermark(now)
				return
			}
			// A Bid travels in the typed record fields (Key = Auction,
			// Value = Price); the bidder draw stays so the generator's RNG
			// sequence is unchanged by the unboxed encoding.
			auction := uint64(zipf.Next()) + 1
			_ = uint64(rng.Intn(100000)) // bidder id
			r := ctx.NewRecord()
			r.Key = auction
			r.EventTime = now
			r.Size = 120
			r.Value = 10 + rng.Float64()*990
			ctx.Ingest(r)
			if now >= nextWM {
				ctx.EmitWatermark(now - simtime.Time(simtime.Ms(1)))
				nextWM = now.Add(simtime.Ms(50))
			}
			ctx.After(rng.Jitter(period, 0.05), tick)
		}
		tick()
	}
}

// Q8Config parameterizes the Q8 pipeline.
type Q8Config struct {
	// PersonsPerSec and AuctionsPerSec set the two stream rates
	// (paper: 1K tps combined).
	PersonsPerSec  float64
	AuctionsPerSec float64
	// JoinParallelism is the join operator's initial parallelism (paper: 8).
	JoinParallelism int
	// MaxKeyGroups is the join operator's key-group count (paper: 128).
	MaxKeyGroups int
	// People is the person-id space (join key space).
	People int
	// WindowSize and Slide follow the paper's Q8 shape (40 s / 5 s), scaled
	// down by default.
	WindowSize simtime.Duration
	Slide      simtime.Duration
	// BytesPerEntry sizes join-buffer state per event (paper Q8 carries
	// ~3 GB, the largest state in the evaluation).
	BytesPerEntry int
	// CostPerRecord is the join operator's processing cost.
	CostPerRecord simtime.Duration
	// Duration bounds generation (0 = endless).
	Duration simtime.Duration
	// Seed drives the generators.
	Seed int64
}

func (c *Q8Config) fillDefaults() {
	if c.PersonsPerSec == 0 {
		c.PersonsPerSec = 400
	}
	if c.AuctionsPerSec == 0 {
		c.AuctionsPerSec = 600
	}
	if c.JoinParallelism == 0 {
		c.JoinParallelism = 8
	}
	if c.MaxKeyGroups == 0 {
		c.MaxKeyGroups = 128
	}
	if c.People == 0 {
		c.People = 3000
	}
	if c.WindowSize == 0 {
		c.WindowSize = simtime.Sec(8)
	}
	if c.Slide == 0 {
		c.Slide = simtime.Sec(1)
	}
	if c.BytesPerEntry == 0 {
		c.BytesPerEntry = 200
	}
	if c.CostPerRecord == 0 {
		c.CostPerRecord = 80 * simtime.Microsecond
	}
}

// BuildQ8 constructs the Q8 job: "persons" + "auctions" → "join" (scaling
// operator) → "sink".
func BuildQ8(cfg Q8Config) (*dataflow.Graph, *engine.CollectSink) {
	cfg.fillDefaults()
	sink := engine.NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "persons",
		Parallelism: 1,
		Source:      q8Source(cfg, true, cfg.PersonsPerSec, "persons"),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "auctions",
		Parallelism: 1,
		Source:      q8Source(cfg, false, cfg.AuctionsPerSec, "auctions"),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          "join",
		Parallelism:   cfg.JoinParallelism,
		KeyedInput:    true,
		MaxKeyGroups:  cfg.MaxKeyGroups,
		CostPerRecord: cfg.CostPerRecord,
		CostJitter:    0.1,
		NewLogic: func() dataflow.Logic {
			return &engine.WindowJoinLogic{
				Size:          cfg.WindowSize,
				Slide:         cfg.Slide,
				BytesPerEntry: cfg.BytesPerEntry,
			}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "sink",
		Parallelism: 1,
		NewLogic:    func() dataflow.Logic { return sink },
	})
	g.Connect("persons", "join", dataflow.ExchangeKeyed)
	g.Connect("auctions", "join", dataflow.ExchangeKeyed)
	g.Connect("join", "sink", dataflow.ExchangeRebalance)
	return g, sink
}

func q8Source(cfg Q8Config, left bool, rate float64, name string) dataflow.SourceFunc {
	return func(ctx dataflow.SourceContext) {
		rng := simtime.NewRNG(cfg.Seed, "nexmark/"+name)
		zipf := simtime.NewZipf(simtime.NewRNG(cfg.Seed, "nexmark/zipf/"+name), cfg.People, 0.5)
		period := simtime.Duration(float64(simtime.Second) / rate)
		start := ctx.Now()
		var nextWM simtime.Time
		var tick func()
		tick = func() {
			now := ctx.Now()
			if cfg.Duration > 0 && now >= start.Add(cfg.Duration) {
				ctx.EmitWatermark(now)
				return
			}
			person := uint64(zipf.Next()) + 1
			var data engine.JoinSide
			if left {
				data = engine.JoinSide{Left: true, Value: 1}
				_ = PersonEvt{Person: person}
			} else {
				data = engine.JoinSide{Left: false, Value: 1}
				_ = AuctionEvt{Auction: uint64(rng.Intn(1 << 20)), Seller: person}
			}
			r := ctx.NewRecord()
			r.Key = person
			r.EventTime = now
			r.Size = 150
			// Join inputs are two-sided, the one payload shape that does not
			// fit the float64 fast lane; they ride the Aux escape hatch.
			r.Aux = data
			ctx.Ingest(r)
			if now >= nextWM {
				ctx.EmitWatermark(now - simtime.Time(simtime.Ms(1)))
				nextWM = now.Add(simtime.Ms(100))
			}
			ctx.After(rng.Jitter(period, 0.05), tick)
		}
		tick()
	}
}
