package nexmark

import (
	"testing"

	"drrs/internal/core"
	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

func runQ7(t *testing.T, mech scaling.Mechanism, dur simtime.Duration) (*engine.Runtime, *engine.CollectSink) {
	t.Helper()
	g, sink := BuildQ7(Q7Config{
		RatePerSec: 1000, SourceParallelism: 2, WindowParallelism: 4,
		MaxKeyGroups: 32, Auctions: 500,
		WindowSize: simtime.Ms(500), Slide: simtime.Ms(100),
		Duration: dur, Seed: 5,
	})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 5})
	rt.Start()
	if mech != nil {
		s.After(simtime.Sec(1), func() {
			mech.Begin(rt, scaling.UniformPlan(g, "winmax", 6, simtime.Ms(20)), nil)
		})
	}
	s.RunUntil(simtime.Time(dur))
	rt.StopMarkers()
	s.Run()
	return rt, sink
}

func TestQ7ProducesWindowOutput(t *testing.T) {
	rt, sink := runQ7(t, nil, simtime.Sec(3))
	if sink.Records == 0 {
		t.Fatal("Q7 produced no window aggregates")
	}
	// Window state accumulates on the window operator.
	if rt.TotalStateBytes("winmax") == 0 {
		t.Fatal("no window state accumulated")
	}
	// All window instances participate (keyed spread over hot auctions).
	for _, in := range rt.Instances("winmax") {
		if in.Processed == 0 {
			t.Fatalf("window instance %s idle", in.Name())
		}
	}
}

func TestQ7WindowMaxSemantics(t *testing.T) {
	// Every emitted aggregate must be a max over positive bid prices.
	_, sink := runQ7(t, nil, simtime.Sec(2))
	for k, v := range sink.ByKey {
		if v <= 0 {
			t.Fatalf("auction %d window max %v not positive", k, v)
		}
	}
}

func TestQ7ScalesUnderDRRS(t *testing.T) {
	rt, sink := runQ7(t, core.New(core.FullDRRS()), simtime.Sec(4))
	if !rt.Scale.Ended() {
		t.Fatal("scaling never completed")
	}
	if sink.Records == 0 {
		t.Fatal("no output after scaling")
	}
	// Window state for migrated groups lives at new instances.
	var newStateful bool
	for idx := 4; idx < 6; idx++ {
		if len(rt.Instance("winmax", idx).Store().Groups()) > 0 {
			newStateful = true
		}
	}
	if !newStateful {
		t.Fatal("no state migrated to new window instances")
	}
}

func TestQ8JoinEmitsMatches(t *testing.T) {
	g, sink := BuildQ8(Q8Config{
		PersonsPerSec: 300, AuctionsPerSec: 400, JoinParallelism: 4,
		MaxKeyGroups: 32, People: 200,
		WindowSize: simtime.Sec(1), Slide: simtime.Ms(200),
		Duration: simtime.Sec(3), Seed: 6,
	})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 6})
	rt.Start()
	s.RunUntil(simtime.Time(simtime.Sec(3)))
	rt.StopMarkers()
	s.Run()
	if sink.Records == 0 {
		t.Fatal("Q8 join produced no matches")
	}
	if rt.TotalStateBytes("join") == 0 {
		t.Fatal("no join state accumulated")
	}
	// Matches only for keys present on both sides: every emitted value is a
	// positive pair-count.
	for k, v := range sink.ByKey {
		if v <= 0 {
			t.Fatalf("person %d match count %v", k, v)
		}
	}
}

func TestQ8ScalesUnderDRRS(t *testing.T) {
	g, sink := BuildQ8(Q8Config{
		PersonsPerSec: 300, AuctionsPerSec: 400, JoinParallelism: 4,
		MaxKeyGroups: 32, People: 200,
		WindowSize: simtime.Sec(1), Slide: simtime.Ms(200),
		Duration: simtime.Sec(4), Seed: 7,
	})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 7})
	rt.Start()
	var done bool
	s.After(simtime.Sec(1), func() {
		core.New(core.FullDRRS()).Start(rt, scaling.UniformPlan(g, "join", 6, simtime.Ms(20)), func() { done = true })
	})
	s.RunUntil(simtime.Time(simtime.Sec(4)))
	rt.StopMarkers()
	s.Run()
	if !done {
		t.Fatal("Q8 scaling never completed")
	}
	if sink.Records == 0 {
		t.Fatal("no join output after scaling")
	}
}

func TestQ7DefaultsFilled(t *testing.T) {
	cfg := Q7Config{}
	cfg.fillDefaults()
	if cfg.RatePerSec == 0 || cfg.MaxKeyGroups == 0 || cfg.WindowSize == 0 {
		t.Fatal("defaults not applied")
	}
	cfg8 := Q8Config{}
	cfg8.fillDefaults()
	if cfg8.PersonsPerSec == 0 || cfg8.WindowSize == 0 {
		t.Fatal("Q8 defaults not applied")
	}
}
