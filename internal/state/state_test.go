package state

import (
	"testing"
	"testing/quick"
)

func TestKeyGroupOfStableAndInRange(t *testing.T) {
	for key := uint64(0); key < 10000; key++ {
		kg := KeyGroupOf(key, 128)
		if kg < 0 || kg >= 128 {
			t.Fatalf("key %d → group %d out of range", key, kg)
		}
		if kg != KeyGroupOf(key, 128) {
			t.Fatalf("key %d unstable", key)
		}
	}
}

func TestKeyGroupOfSpread(t *testing.T) {
	counts := make([]int, 16)
	for key := uint64(0); key < 16000; key++ {
		counts[KeyGroupOf(key, 16)]++
	}
	for kg, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("group %d badly balanced: %d", kg, c)
		}
	}
}

func TestSubUnitOfRange(t *testing.T) {
	for key := uint64(0); key < 1000; key++ {
		if s := SubUnitOf(key, 4); s < 0 || s >= 4 {
			t.Fatalf("sub unit %d", s)
		}
	}
	if SubUnitOf(123, 1) != 0 || SubUnitOf(123, 0) != 0 {
		t.Fatal("degenerate sub unit should be 0")
	}
}

func TestGroupPutDeleteAccounting(t *testing.T) {
	g := NewGroup()
	g.Put(1, "a", 10)
	g.Put(2, "b", 20)
	if g.Bytes != 30 {
		t.Fatalf("bytes %d", g.Bytes)
	}
	g.Put(1, "a2", 15) // replace
	if g.Bytes != 35 {
		t.Fatalf("bytes after replace %d", g.Bytes)
	}
	g.Delete(2)
	if g.Bytes != 15 || g.Len() != 1 {
		t.Fatalf("after delete: %d bytes, %d entries", g.Bytes, g.Len())
	}
	g.Delete(99) // no-op
	if g.Bytes != 15 {
		t.Fatal("deleting absent key changed accounting")
	}
}

func TestStorePutGetPanicsOnNonLocal(t *testing.T) {
	s := NewStore(8)
	key := uint64(42)
	kg := KeyGroupOf(key, 8)
	s.OwnGroup(kg)
	s.Put(key, 7, 8)
	if v, ok := s.Get(key); !ok || v.(int) != 7 {
		t.Fatalf("get %v %v", v, ok)
	}
	var other uint64
	for other = 0; KeyGroupOf(other, 8) == kg; other++ {
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put into non-local group must panic")
		}
	}()
	s.Put(other, 1, 1)
}

func TestStoreGetMissing(t *testing.T) {
	s := NewStore(8)
	if _, ok := s.Get(1); ok {
		t.Fatal("missing group should report !ok")
	}
	s.OwnGroup(KeyGroupOf(1, 8))
	if _, ok := s.Get(1); ok {
		t.Fatal("missing key should report !ok")
	}
}

func TestStoreExtractInstall(t *testing.T) {
	a := NewStore(8)
	b := NewStore(8)
	var keys []uint64
	for k := uint64(0); len(keys) < 5; k++ {
		if KeyGroupOf(k, 8) == 3 {
			keys = append(keys, k)
		}
	}
	a.OwnGroup(3)
	for i, k := range keys {
		a.Put(k, i, 10)
	}
	if a.GroupBytes(3) != 50 {
		t.Fatalf("bytes %d", a.GroupBytes(3))
	}
	g := a.ExtractGroup(3)
	if g == nil || a.HasGroup(3) {
		t.Fatal("extract failed")
	}
	if a.ExtractGroup(3) != nil {
		t.Fatal("double extract should return nil")
	}
	b.InstallGroup(3, g)
	for i, k := range keys {
		if v, ok := b.Get(k); !ok || v.(int) != i {
			t.Fatalf("key %d lost in migration", k)
		}
	}
	if b.TotalBytes() != 50 {
		t.Fatalf("total %d", b.TotalBytes())
	}
}

func TestStoreInstallMerges(t *testing.T) {
	s := NewStore(8)
	s.OwnGroup(2)
	g := NewGroup()
	var k uint64
	for ; KeyGroupOf(k, 8) != 2; k++ {
	}
	g.Put(k, "x", 5)
	s.InstallGroup(2, g)
	if v, ok := s.Get(k); !ok || v.(string) != "x" {
		t.Fatal("merge install lost entry")
	}
	s.InstallGroup(5, nil)
	if !s.HasGroup(5) {
		t.Fatal("nil install should create empty group")
	}
}

func TestExtractSubUnitPartition(t *testing.T) {
	s := NewStore(4)
	kg := 1
	s.OwnGroup(kg)
	var keys []uint64
	for k := uint64(0); len(keys) < 200; k++ {
		if KeyGroupOf(k, 4) == kg {
			keys = append(keys, k)
			s.Put(k, k, 4)
		}
	}
	total := s.GroupBytes(kg)
	var gotKeys int
	for sub := 0; sub < 4; sub++ {
		g := s.ExtractSubUnit(kg, sub, 4)
		if g == nil {
			t.Fatal("nil sub unit")
		}
		gotKeys += g.Len()
		for _, k := range g.Keys() {
			if SubUnitOf(k, 4) != sub {
				t.Fatalf("key %d in wrong sub unit", k)
			}
		}
	}
	if gotKeys != len(keys) {
		t.Fatalf("sub units lost keys: %d vs %d", gotKeys, len(keys))
	}
	if s.GroupBytes(kg) != 0 {
		t.Fatalf("residual bytes %d of %d", s.GroupBytes(kg), total)
	}
	if s.ExtractSubUnit(99, 0, 4) != nil {
		t.Fatal("non-local sub unit extraction should return nil")
	}
}

func TestSnapshotRestoreIsolated(t *testing.T) {
	s := NewStore(8)
	kg := KeyGroupOf(7, 8)
	s.OwnGroup(kg)
	s.Put(7, "v1", 2)
	snap := s.Snapshot()
	s.Put(7, "v2", 2)
	s2 := NewStore(8)
	s2.Restore(snap)
	if v, _ := s2.Get(7); v.(string) != "v1" {
		t.Fatalf("snapshot not isolated: %v", v)
	}
	if v, _ := s.Get(7); v.(string) != "v2" {
		t.Fatal("original store mutated by snapshot")
	}
	if s2.KeyCount() != 1 {
		t.Fatalf("restored key count %d", s2.KeyCount())
	}
}

func TestKeyGroupRangePartition(t *testing.T) {
	for _, tc := range []struct{ maxKG, p int }{{128, 8}, {128, 12}, {256, 25}, {256, 30}, {7, 3}} {
		covered := make([]int, tc.maxKG)
		prevEnd := 0
		for i := 0; i < tc.p; i++ {
			s, e := KeyGroupRange(tc.maxKG, tc.p, i)
			if s != prevEnd {
				t.Fatalf("maxKG=%d p=%d i=%d: gap %d != %d", tc.maxKG, tc.p, i, s, prevEnd)
			}
			prevEnd = e
			for kg := s; kg < e; kg++ {
				covered[kg]++
			}
		}
		if prevEnd != tc.maxKG {
			t.Fatalf("maxKG=%d p=%d: coverage ends at %d", tc.maxKG, tc.p, prevEnd)
		}
		for kg, c := range covered {
			if c != 1 {
				t.Fatalf("kg %d covered %d times", kg, c)
			}
		}
	}
}

func TestOwnerOfMatchesRange(t *testing.T) {
	for _, tc := range []struct{ maxKG, p int }{{128, 8}, {128, 12}, {256, 30}, {16, 5}} {
		for kg := 0; kg < tc.maxKG; kg++ {
			owner := OwnerOf(tc.maxKG, tc.p, kg)
			s, e := KeyGroupRange(tc.maxKG, tc.p, owner)
			if kg < s || kg >= e {
				t.Fatalf("maxKG=%d p=%d kg=%d: owner %d range [%d,%d)", tc.maxKG, tc.p, kg, owner, s, e)
			}
		}
	}
}

func TestStoreGroupsSorted(t *testing.T) {
	s := NewStore(16)
	for _, kg := range []int{9, 3, 12, 0} {
		s.OwnGroup(kg)
	}
	gs := s.Groups()
	want := []int{0, 3, 9, 12}
	for i, kg := range want {
		if gs[i] != kg {
			t.Fatalf("groups %v", gs)
		}
	}
}

func TestMigrationRoundTripProperty(t *testing.T) {
	// Property: extracting all groups from one store and installing them in
	// another preserves every (key, value) pair and total bytes.
	f := func(keys []uint64) bool {
		a := NewStore(32)
		for kg := 0; kg < 32; kg++ {
			a.OwnGroup(kg)
		}
		for i, k := range keys {
			a.Put(k, i, int(k%100)+1)
		}
		wantBytes := a.TotalBytes()
		wantCount := a.KeyCount()
		b := NewStore(32)
		for _, kg := range a.Groups() {
			b.InstallGroup(kg, a.ExtractGroup(kg))
		}
		if b.TotalBytes() != wantBytes || b.KeyCount() != wantCount {
			return false
		}
		for i, k := range keys {
			v, ok := b.Get(k)
			if !ok {
				return false
			}
			// Later duplicates overwrite earlier ones; accept any index with
			// the same key value mapping as final store state. Verify final
			// occurrence only.
			_ = i
			_ = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
