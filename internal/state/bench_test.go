package state

import "testing"

// BenchmarkStatePutGet measures the keyed-reduce hot path against the state
// backend: one read-modify-write per op over a working set large enough to
// defeat tiny-cache effects, exactly the access pattern KeyedReduceLogic
// performs per record (the float64 fast lane; the boxed Put/Get compat path
// is off the record path and is not gated).
func BenchmarkStatePutGet(b *testing.B) {
	const keys = 4096
	s := NewStore(128)
	for kg := 0; kg < 128; kg++ {
		s.OwnGroup(kg)
	}
	for k := uint64(1); k <= keys; k++ {
		s.PutF64(k, float64(k), 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%keys) + 1
		acc, _ := s.GetF64(k)
		s.PutF64(k, acc+1, 64)
	}
}

// BenchmarkStateMigrateGroup measures the migration unit operations every
// scaling mechanism is built from: extract a populated key group from one
// store, install it into another, then move it back.
func BenchmarkStateMigrateGroup(b *testing.B) {
	const keys = 8192
	src := NewStore(8)
	dst := NewStore(8)
	for kg := 0; kg < 8; kg++ {
		src.OwnGroup(kg)
		dst.OwnGroup(kg)
	}
	for k := uint64(1); k <= keys; k++ {
		src.PutF64(k, float64(k), 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kg := i % 8
		dst.InstallGroup(kg, src.ExtractGroup(kg))
		src.InstallGroup(kg, dst.ExtractGroup(kg))
	}
}
