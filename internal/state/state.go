// Package state implements the keyed state backend of the simulated engine.
//
// Following Flink's model (and the paper's), keyed state is partitioned into
// a fixed number of key groups; a key group is the atomic unit of state
// migration. Meces additionally splits key groups into sub-key-groups
// ("hierarchical state organization"), which ExtractSubUnit supports.
//
// Storage layout: a key group keeps a map[uint64]int32 index from key to a
// slot in a contiguous slab. The common payload — one float64 accumulator —
// lives unboxed in the slot's fast lane; rare structured payloads (window
// panes, join buffers) ride in an `any` escape hatch. Deleted slots go on a
// free list and are reused, so steady-state Put/Get/Delete allocate nothing.
// Byte accounting (per entry, per group) is identical to the boxed
// implementation this replaces: migration chunking, sub-key-group slicing,
// and serialized-bytes accounting observe the exact same numbers.
package state

import (
	"fmt"
	"sort"
)

// KeyGroupOf maps a key to its key group, Flink-style: a stable hash of the
// key modulo the maximum number of key groups.
func KeyGroupOf(key uint64, maxKeyGroups int) int {
	if maxKeyGroups <= 0 {
		panic("state: maxKeyGroups must be positive")
	}
	h := key
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(maxKeyGroups))
}

// SubUnitOf maps a key to one of n sub-key-groups within its key group
// (Meces's hierarchical organization).
func SubUnitOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	h := key*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	h ^= h >> 29
	return int(h % uint64(n))
}

// slot is one key's state in a group's slab: an unboxed float64 fast lane,
// an `any` escape hatch for structured payloads, and the accounted size.
// aux == nil means the entry's payload is the fast lane.
type slot struct {
	key   uint64
	val   float64
	aux   any
	bytes int
	live  bool
}

// Group is the state of one key group: a slab of slots indexed by key, with
// a free list recycling deleted slots.
type Group struct {
	index map[uint64]int32
	slots []slot
	free  []int32
	// Bytes is the group's accounted size (the sum of entry sizes).
	Bytes int
}

// NewGroup returns an empty key-group container.
func NewGroup() *Group {
	return &Group{index: make(map[uint64]int32)}
}

// Len reports the number of keys with state in the group.
func (g *Group) Len() int { return len(g.index) }

// put is the shared insert/replace path; value semantics are split across
// the two lanes by the callers.
func (g *Group) put(key uint64, val float64, aux any, bytes int) {
	if i, ok := g.index[key]; ok {
		s := &g.slots[i]
		g.Bytes -= s.bytes
		s.val, s.aux, s.bytes = val, aux, bytes
		g.Bytes += bytes
		return
	}
	var i int32
	if n := len(g.free); n > 0 {
		i = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		g.slots = append(g.slots, slot{})
		i = int32(len(g.slots) - 1)
	}
	g.slots[i] = slot{key: key, val: val, aux: aux, bytes: bytes, live: true}
	g.index[key] = i
	g.Bytes += bytes
}

// PutF64 inserts or replaces a key's state with an unboxed float64,
// maintaining byte accounting. This is the record hot path.
func (g *Group) PutF64(key uint64, v float64, bytes int) { g.put(key, v, nil, bytes) }

// Put inserts or replaces a key's state, maintaining byte accounting.
// float64 values land in the fast lane; everything else rides in the aux
// lane. Hot paths should call PutF64 directly.
func (g *Group) Put(key uint64, value any, bytes int) {
	if f, ok := value.(float64); ok {
		g.put(key, f, nil, bytes)
		return
	}
	g.put(key, 0, value, bytes)
}

// GetF64 returns the fast-lane value for key. ok is false when the key is
// absent or holds an aux payload.
func (g *Group) GetF64(key uint64) (float64, bool) {
	i, ok := g.index[key]
	if !ok {
		return 0, false
	}
	s := &g.slots[i]
	if s.aux != nil {
		return 0, false
	}
	return s.val, true
}

// Get returns the state for key: the aux payload if present, else the boxed
// fast-lane value. Hot paths should call GetF64 to avoid the boxing.
func (g *Group) Get(key uint64) (any, bool) {
	i, ok := g.index[key]
	if !ok {
		return nil, false
	}
	s := &g.slots[i]
	if s.aux != nil {
		return s.aux, true
	}
	return s.val, true
}

// EntryBytes returns the accounted size of one key's entry (0 if absent).
func (g *Group) EntryBytes(key uint64) int {
	if i, ok := g.index[key]; ok {
		return g.slots[i].bytes
	}
	return 0
}

// Delete removes a key's state, recycling its slot.
func (g *Group) Delete(key uint64) {
	i, ok := g.index[key]
	if !ok {
		return
	}
	s := &g.slots[i]
	g.Bytes -= s.bytes
	*s = slot{}
	delete(g.index, key)
	g.free = append(g.free, i)
}

// ForEach visits every entry in slab (insertion) order. Fast-lane values are
// boxed for the callback, so hot paths should not iterate this way; it
// exists for migration slicing, window firing, and inspection. The callback
// must not add or delete entries.
func (g *Group) ForEach(fn func(key uint64, value any, bytes int)) {
	for i := range g.slots {
		s := &g.slots[i]
		if !s.live {
			continue
		}
		if s.aux != nil {
			fn(s.key, s.aux, s.bytes)
		} else {
			fn(s.key, s.val, s.bytes)
		}
	}
}

// Keys returns the group's keys in slab (insertion) order.
func (g *Group) Keys() []uint64 {
	return g.AppendKeys(make([]uint64, 0, len(g.index)))
}

// AppendKeys appends the group's keys to dst in slab order and returns it
// (the allocation-free variant of Keys for reusable scratch buffers).
func (g *Group) AppendKeys(dst []uint64) []uint64 {
	for i := range g.slots {
		if g.slots[i].live {
			dst = append(dst, g.slots[i].key)
		}
	}
	return dst
}

// Merge folds other into g (used when a migrated chunk arrives), entry by
// entry with Put accounting, without boxing fast-lane values.
func (g *Group) Merge(other *Group) {
	for i := range other.slots {
		s := &other.slots[i]
		if s.live {
			g.put(s.key, s.val, s.aux, s.bytes)
		}
	}
}

// Clone deep-copies the group — the checkpoint/restore path: snapshots must
// not alias live slabs, and restores must not hand the checkpoint's only copy
// to a store that will keep mutating it.
func (g *Group) Clone() *Group { return g.clone() }

// clone deep-copies the group (aux payloads are copied shallowly; simulated
// state values are immutable or replaced wholesale on Put).
func (g *Group) clone() *Group {
	ng := &Group{
		index: make(map[uint64]int32, len(g.index)),
		slots: append([]slot(nil), g.slots...),
		free:  append([]int32(nil), g.free...),
		Bytes: g.Bytes,
	}
	for k, i := range g.index {
		ng.index[k] = i
	}
	return ng
}

// Store is the keyed state of one operator instance: the subset of key groups
// currently local to it.
type Store struct {
	MaxKeyGroups int
	groups       map[int]*Group
}

// NewStore returns a store that owns no key groups yet.
func NewStore(maxKeyGroups int) *Store {
	if maxKeyGroups <= 0 {
		panic("state: maxKeyGroups must be positive")
	}
	return &Store{MaxKeyGroups: maxKeyGroups, groups: make(map[int]*Group)}
}

// OwnGroup declares kg local (idempotent), creating an empty group if absent.
func (s *Store) OwnGroup(kg int) *Group {
	g, ok := s.groups[kg]
	if !ok {
		g = NewGroup()
		s.groups[kg] = g
	}
	return g
}

// HasGroup reports whether kg is local.
func (s *Store) HasGroup(kg int) bool {
	_, ok := s.groups[kg]
	return ok
}

// Group returns the local group for kg, or nil.
func (s *Store) Group(kg int) *Group { return s.groups[kg] }

// Groups returns the sorted list of local key groups.
func (s *Store) Groups() []int {
	out := make([]int, 0, len(s.groups))
	for kg := range s.groups {
		out = append(out, kg)
	}
	sort.Ints(out)
	return out
}

// Get returns the state for key, which must hash into a local group. Hot
// paths use GetF64.
func (s *Store) Get(key uint64) (any, bool) {
	kg := KeyGroupOf(key, s.MaxKeyGroups)
	g, ok := s.groups[kg]
	if !ok {
		return nil, false
	}
	return g.Get(key)
}

// GetF64 returns the unboxed fast-lane state for key (ok is false when the
// key is absent, holds an aux payload, or its group is not local).
func (s *Store) GetF64(key uint64) (float64, bool) {
	kg := KeyGroupOf(key, s.MaxKeyGroups)
	g, ok := s.groups[kg]
	if !ok {
		return 0, false
	}
	return g.GetF64(key)
}

// Put writes state for key into its (local) key group. It panics if the key
// group is not local: processing a record without local state is exactly the
// bug class the scaling mechanisms exist to prevent, so it must be loud.
func (s *Store) Put(key uint64, value any, bytes int) {
	s.mustGroup(key).Put(key, value, bytes)
}

// PutF64 writes unboxed fast-lane state for key into its (local) key group,
// panicking like Put when the group is not local.
func (s *Store) PutF64(key uint64, v float64, bytes int) {
	s.mustGroup(key).PutF64(key, v, bytes)
}

func (s *Store) mustGroup(key uint64) *Group {
	kg := KeyGroupOf(key, s.MaxKeyGroups)
	g, ok := s.groups[kg]
	if !ok {
		panic(fmt.Sprintf("state: Put(key=%d) into non-local key group %d", key, kg))
	}
	return g
}

// Delete removes state for key if present.
func (s *Store) Delete(key uint64) {
	kg := KeyGroupOf(key, s.MaxKeyGroups)
	if g, ok := s.groups[kg]; ok {
		g.Delete(key)
	}
}

// GroupBytes reports the accounted size of kg (0 if not local).
func (s *Store) GroupBytes(kg int) int {
	if g, ok := s.groups[kg]; ok {
		return g.Bytes
	}
	return 0
}

// TotalBytes reports the accounted size of all local state.
func (s *Store) TotalBytes() int {
	var sum int
	for _, g := range s.groups {
		sum += g.Bytes
	}
	return sum
}

// KeyCount reports the number of keys with state across local groups.
func (s *Store) KeyCount() int {
	var n int
	//lint:allow maporder Len is a pure read folded into an integer sum, which commutes exactly
	for _, g := range s.groups {
		n += g.Len()
	}
	return n
}

// ExtractGroup removes kg from the store and returns it (the migration
// source path). Returns an empty group if kg was local but empty, nil if not
// local.
func (s *Store) ExtractGroup(kg int) *Group {
	g, ok := s.groups[kg]
	if !ok {
		return nil
	}
	delete(s.groups, kg)
	return g
}

// InstallGroup makes kg local with the given contents, merging if the group
// already exists (fetch-back paths can interleave with background chunks).
func (s *Store) InstallGroup(kg int, g *Group) {
	if g == nil {
		g = NewGroup()
	}
	if cur, ok := s.groups[kg]; ok {
		cur.Merge(g)
		return
	}
	s.groups[kg] = g
}

// ExtractSubUnit removes the keys of kg that fall into sub-unit sub of n and
// returns them as a group. The key group itself stays local (Meces keeps
// serving the remainder). Returns nil if kg is not local.
func (s *Store) ExtractSubUnit(kg, sub, n int) *Group {
	g, ok := s.groups[kg]
	if !ok {
		return nil
	}
	out := NewGroup()
	for i := range g.slots {
		sl := &g.slots[i]
		if sl.live && SubUnitOf(sl.key, n) == sub {
			out.put(sl.key, sl.val, sl.aux, sl.bytes)
		}
	}
	for i := range out.slots {
		g.Delete(out.slots[i].key)
	}
	return out
}

// Snapshot deep-copies the group map.
func (s *Store) Snapshot() map[int]*Group {
	out := make(map[int]*Group, len(s.groups))
	//lint:allow maporder clone deep-copies one self-contained group; writes keyed by the same kg are content-deterministic
	for kg, g := range s.groups {
		out[kg] = g.clone()
	}
	return out
}

// Restore replaces the store contents with a snapshot.
func (s *Store) Restore(snap map[int]*Group) {
	s.groups = make(map[int]*Group, len(snap))
	//lint:allow maporder clone deep-copies one self-contained group; writes keyed by the same kg are content-deterministic
	for kg, g := range snap {
		s.groups[kg] = g.clone()
	}
}

// KeyGroupRange computes Flink's contiguous key-group assignment
// (KeyGroupRangeAssignment.computeKeyGroupRangeForOperatorIndex): instance i
// of parallelism p over maxKG groups owns [start, end). This exact formula
// matters: with it, scaling 8→12 over 128 groups migrates 111 groups and
// 25→30 over 256 migrates 229, matching the paper's reported counts.
func KeyGroupRange(maxKG, parallelism, index int) (start, end int) {
	if parallelism <= 0 || index < 0 || index >= parallelism {
		panic(fmt.Sprintf("state: bad key-group range args p=%d i=%d", parallelism, index))
	}
	start = (index*maxKG + parallelism - 1) / parallelism
	end = ((index+1)*maxKG + parallelism - 1) / parallelism
	return start, end
}

// OwnerOf returns the instance that owns kg under the contiguous assignment.
func OwnerOf(maxKG, parallelism, kg int) int {
	// Inverse of KeyGroupRange: find i with start <= kg < end.
	i := (kg*parallelism + parallelism - 1) / maxKG
	for {
		s, e := KeyGroupRange(maxKG, parallelism, clamp(i, 0, parallelism-1))
		ci := clamp(i, 0, parallelism-1)
		if kg >= s && kg < e {
			return ci
		}
		if kg < s {
			i = ci - 1
		} else {
			i = ci + 1
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
