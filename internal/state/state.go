// Package state implements the keyed state backend of the simulated engine.
//
// Following Flink's model (and the paper's), keyed state is partitioned into
// a fixed number of key groups; a key group is the atomic unit of state
// migration. Meces additionally splits key groups into sub-key-groups
// ("hierarchical state organization"), which SliceGroup supports.
package state

import (
	"fmt"
	"sort"
)

// KeyGroupOf maps a key to its key group, Flink-style: a stable hash of the
// key modulo the maximum number of key groups.
func KeyGroupOf(key uint64, maxKeyGroups int) int {
	if maxKeyGroups <= 0 {
		panic("state: maxKeyGroups must be positive")
	}
	h := key
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(maxKeyGroups))
}

// SubUnitOf maps a key to one of n sub-key-groups within its key group
// (Meces's hierarchical organization).
func SubUnitOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	h := key*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	h ^= h >> 29
	return int(h % uint64(n))
}

// Entry is one key's state plus its accounted size.
type Entry struct {
	Value any
	Bytes int
}

// Group is the state of one key group.
type Group struct {
	Entries map[uint64]Entry
	Bytes   int
}

// NewGroup returns an empty key-group container.
func NewGroup() *Group {
	return &Group{Entries: make(map[uint64]Entry)}
}

// Put inserts or replaces a key's state, maintaining byte accounting.
func (g *Group) Put(key uint64, value any, bytes int) {
	if old, ok := g.Entries[key]; ok {
		g.Bytes -= old.Bytes
	}
	g.Entries[key] = Entry{Value: value, Bytes: bytes}
	g.Bytes += bytes
}

// Delete removes a key's state.
func (g *Group) Delete(key uint64) {
	if old, ok := g.Entries[key]; ok {
		g.Bytes -= old.Bytes
		delete(g.Entries, key)
	}
}

// Merge folds other into g (used when a migrated chunk arrives).
func (g *Group) Merge(other *Group) {
	for k, e := range other.Entries {
		g.Put(k, e.Value, e.Bytes)
	}
}

// Store is the keyed state of one operator instance: the subset of key groups
// currently local to it.
type Store struct {
	MaxKeyGroups int
	groups       map[int]*Group
}

// NewStore returns a store that owns no key groups yet.
func NewStore(maxKeyGroups int) *Store {
	if maxKeyGroups <= 0 {
		panic("state: maxKeyGroups must be positive")
	}
	return &Store{MaxKeyGroups: maxKeyGroups, groups: make(map[int]*Group)}
}

// OwnGroup declares kg local (idempotent), creating an empty group if absent.
func (s *Store) OwnGroup(kg int) *Group {
	g, ok := s.groups[kg]
	if !ok {
		g = NewGroup()
		s.groups[kg] = g
	}
	return g
}

// HasGroup reports whether kg is local.
func (s *Store) HasGroup(kg int) bool {
	_, ok := s.groups[kg]
	return ok
}

// Group returns the local group for kg, or nil.
func (s *Store) Group(kg int) *Group { return s.groups[kg] }

// Groups returns the sorted list of local key groups.
func (s *Store) Groups() []int {
	out := make([]int, 0, len(s.groups))
	for kg := range s.groups {
		out = append(out, kg)
	}
	sort.Ints(out)
	return out
}

// Get returns the state for key, which must hash into a local group.
func (s *Store) Get(key uint64) (any, bool) {
	kg := KeyGroupOf(key, s.MaxKeyGroups)
	g, ok := s.groups[kg]
	if !ok {
		return nil, false
	}
	e, ok := g.Entries[key]
	if !ok {
		return nil, false
	}
	return e.Value, true
}

// Put writes state for key into its (local) key group. It panics if the key
// group is not local: processing a record without local state is exactly the
// bug class the scaling mechanisms exist to prevent, so it must be loud.
func (s *Store) Put(key uint64, value any, bytes int) {
	kg := KeyGroupOf(key, s.MaxKeyGroups)
	g, ok := s.groups[kg]
	if !ok {
		panic(fmt.Sprintf("state: Put(key=%d) into non-local key group %d", key, kg))
	}
	g.Put(key, value, bytes)
}

// Delete removes state for key if present.
func (s *Store) Delete(key uint64) {
	kg := KeyGroupOf(key, s.MaxKeyGroups)
	if g, ok := s.groups[kg]; ok {
		g.Delete(key)
	}
}

// GroupBytes reports the accounted size of kg (0 if not local).
func (s *Store) GroupBytes(kg int) int {
	if g, ok := s.groups[kg]; ok {
		return g.Bytes
	}
	return 0
}

// TotalBytes reports the accounted size of all local state.
func (s *Store) TotalBytes() int {
	var sum int
	for _, g := range s.groups {
		sum += g.Bytes
	}
	return sum
}

// KeyCount reports the number of keys with state across local groups.
func (s *Store) KeyCount() int {
	var n int
	for _, g := range s.groups {
		n += len(g.Entries)
	}
	return n
}

// ExtractGroup removes kg from the store and returns it (the migration
// source path). Returns an empty group if kg was local but empty, nil if not
// local.
func (s *Store) ExtractGroup(kg int) *Group {
	g, ok := s.groups[kg]
	if !ok {
		return nil
	}
	delete(s.groups, kg)
	return g
}

// InstallGroup makes kg local with the given contents, merging if the group
// already exists (fetch-back paths can interleave with background chunks).
func (s *Store) InstallGroup(kg int, g *Group) {
	if g == nil {
		g = NewGroup()
	}
	if cur, ok := s.groups[kg]; ok {
		cur.Merge(g)
		return
	}
	s.groups[kg] = g
}

// ExtractSubUnit removes the keys of kg that fall into sub-unit sub of n and
// returns them as a group. The key group itself stays local (Meces keeps
// serving the remainder). Returns nil if kg is not local.
func (s *Store) ExtractSubUnit(kg, sub, n int) *Group {
	g, ok := s.groups[kg]
	if !ok {
		return nil
	}
	out := NewGroup()
	for k, e := range g.Entries {
		if SubUnitOf(k, n) == sub {
			out.Put(k, e.Value, e.Bytes)
		}
	}
	for k := range out.Entries {
		g.Delete(k)
	}
	return out
}

// Snapshot deep-copies the group map (values are copied shallowly; simulated
// state values are immutable or replaced wholesale on Put).
func (s *Store) Snapshot() map[int]*Group {
	out := make(map[int]*Group, len(s.groups))
	for kg, g := range s.groups {
		ng := NewGroup()
		for k, e := range g.Entries {
			ng.Entries[k] = e
		}
		ng.Bytes = g.Bytes
		out[kg] = ng
	}
	return out
}

// Restore replaces the store contents with a snapshot.
func (s *Store) Restore(snap map[int]*Group) {
	s.groups = make(map[int]*Group, len(snap))
	for kg, g := range snap {
		ng := NewGroup()
		for k, e := range g.Entries {
			ng.Entries[k] = e
		}
		ng.Bytes = g.Bytes
		s.groups[kg] = ng
	}
}

// KeyGroupRange computes Flink's contiguous key-group assignment
// (KeyGroupRangeAssignment.computeKeyGroupRangeForOperatorIndex): instance i
// of parallelism p over maxKG groups owns [start, end). This exact formula
// matters: with it, scaling 8→12 over 128 groups migrates 111 groups and
// 25→30 over 256 migrates 229, matching the paper's reported counts.
func KeyGroupRange(maxKG, parallelism, index int) (start, end int) {
	if parallelism <= 0 || index < 0 || index >= parallelism {
		panic(fmt.Sprintf("state: bad key-group range args p=%d i=%d", parallelism, index))
	}
	start = (index*maxKG + parallelism - 1) / parallelism
	end = ((index+1)*maxKG + parallelism - 1) / parallelism
	return start, end
}

// OwnerOf returns the instance that owns kg under the contiguous assignment.
func OwnerOf(maxKG, parallelism, kg int) int {
	// Inverse of KeyGroupRange: find i with start <= kg < end.
	i := (kg*parallelism + parallelism - 1) / maxKG
	for {
		s, e := KeyGroupRange(maxKG, parallelism, clamp(i, 0, parallelism-1))
		ci := clamp(i, 0, parallelism-1)
		if kg >= s && kg < e {
			return ci
		}
		if kg < s {
			i = ci - 1
		} else {
			i = ci + 1
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
