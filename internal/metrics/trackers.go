package metrics

import (
	"sort"

	"drrs/internal/simtime"
)

// LatencyTracker records end-to-end latencies of latency markers as they
// reach the sink, mirroring the paper's measurement methodology (markers flow
// through the system as regular records and bypass windowing).
type LatencyTracker struct {
	Series *Series
}

// NewLatencyTracker returns an empty tracker.
func NewLatencyTracker() *LatencyTracker {
	return &LatencyTracker{Series: NewSeries("latency_ms")}
}

// Observe records that a marker emitted at emit arrived at the sink at now.
func (l *LatencyTracker) Observe(now, emit simtime.Time) {
	l.Series.Append(now, now.Sub(emit).Millis())
}

// PeakIn returns the maximum latency in [from, to) in milliseconds.
func (l *LatencyTracker) PeakIn(from, to simtime.Time) float64 {
	return l.Series.StatsIn(from, to).Max
}

// AvgIn returns the mean latency in [from, to) in milliseconds.
func (l *LatencyTracker) AvgIn(from, to simtime.Time) float64 {
	return l.Series.StatsIn(from, to).Mean
}

// StabilizesAt implements the paper's scaling-period rule: the scaling period
// ends at the first instant t >= start such that every latency sample in
// [t, t+hold) stays within tolerance× the pre-scaling level. It returns the
// end of the scaling period and whether stabilization was observed before the
// series ran out (a series that never stabilizes reports the last sample
// time, false).
//
// The paper uses tolerance = 1.10 and hold = 100 s.
func (l *LatencyTracker) StabilizesAt(start simtime.Time, preLevel float64, tolerance float64, hold simtime.Duration) (simtime.Time, bool) {
	return StabilizesOn(l.Series.Points(), start, preLevel, tolerance, hold)
}

// StabilizesSmoothed applies the scaling-period rule to the bucket-averaged
// latency curve instead of raw samples — matching the paper, whose latency
// plots (and therefore its stabilization reading) are per-interval averages.
// Raw markers have a heavy tail even in steady state, which would make the
// rule unsatisfiable.
func (l *LatencyTracker) StabilizesSmoothed(bucket simtime.Duration, start simtime.Time, preLevel float64, tolerance float64, hold simtime.Duration) (simtime.Time, bool) {
	return StabilizesOn(l.Series.Downsample(bucket), start, preLevel, tolerance, hold)
}

// StabilizesOn implements the rule over an explicit sample sequence.
func StabilizesOn(pts []Point, start simtime.Time, preLevel float64, tolerance float64, hold simtime.Duration) (simtime.Time, bool) {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At >= start })
	limit := preLevel * tolerance
	for ; i < len(pts); i++ {
		if pts[i].V > limit {
			continue
		}
		// candidate window start: all samples in [pts[i].At, +hold) must hold
		end := pts[i].At.Add(hold)
		ok := true
		j := i
		for ; j < len(pts) && pts[j].At < end; j++ {
			if pts[j].V > limit {
				ok = false
				break
			}
		}
		if ok && (j >= len(pts) || pts[j].At >= end) {
			if j >= len(pts) && (len(pts) == 0 || pts[len(pts)-1].At < end) {
				// Series ended before the hold window completed: inconclusive,
				// but accept if the window start plus hold is past series end
				// and everything seen held.
				return pts[i].At, true
			}
			return pts[i].At, true
		}
		i = j // skip past the violating sample
	}
	if len(pts) == 0 {
		return start, false
	}
	return pts[len(pts)-1].At, false
}

// ThroughputTracker counts source emissions into fixed buckets and exposes a
// records/second series, matching the paper's "output rate of the source
// operators" metric.
type ThroughputTracker struct {
	Bucket simtime.Duration
	counts map[int64]int64
	maxB   int64
	minB   int64
	has    bool
}

// NewThroughputTracker returns a tracker with the given bucket width
// (the paper plots per-second throughput).
func NewThroughputTracker(bucket simtime.Duration) *ThroughputTracker {
	return &ThroughputTracker{Bucket: bucket, counts: make(map[int64]int64)}
}

// Observe counts n records emitted at time now.
func (t *ThroughputTracker) Observe(now simtime.Time, n int64) {
	b := int64(now) / int64(t.Bucket)
	t.counts[b] += n
	if !t.has || b > t.maxB {
		t.maxB = b
	}
	if !t.has || b < t.minB {
		t.minB = b
	}
	t.has = true
}

// Series materializes the per-bucket rate series in records/second, with
// zero-filled gaps so stalls are visible.
func (t *ThroughputTracker) Series() *Series {
	s := NewSeries("throughput_rps")
	if !t.has {
		return s
	}
	perSec := float64(simtime.Second) / float64(t.Bucket)
	for b := t.minB; b <= t.maxB; b++ {
		s.Append(simtime.Time(b*int64(t.Bucket)), float64(t.counts[b])*perSec)
	}
	return s
}

// RateIn reports the mean emission rate (records/s) over [from, to),
// measured on the buckets fully contained in the window — a partially
// elapsed trailing bucket divided by the full bucket width would read
// systematically low on mid-bucket samples, sawtoothing any controller that
// polls off the bucket grid. Windows narrower than one full bucket fall
// back to whole-overlapping-bucket averaging. Negative from clamps to zero
// (early-run sampling windows reach before the origin). An empty tracker
// reports 0.
func (t *ThroughputTracker) RateIn(from, to simtime.Time) float64 {
	if from < 0 {
		from = 0
	}
	if to <= from || !t.has {
		return 0
	}
	// First and last bucket indices fully inside [from, to).
	b0 := (int64(from) + int64(t.Bucket) - 1) / int64(t.Bucket)
	b1 := int64(to)/int64(t.Bucket) - 1
	if b1 < b0 {
		// Sub-bucket window: average over every overlapping bucket.
		b0 = int64(from) / int64(t.Bucket)
		b1 = (int64(to) - 1) / int64(t.Bucket)
	}
	var sum int64
	for b := b0; b <= b1; b++ {
		sum += t.counts[b]
	}
	seconds := float64(b1-b0+1) * float64(t.Bucket) / float64(simtime.Second)
	return float64(sum) / seconds
}

// Total reports the total records observed.
func (t *ThroughputTracker) Total() int64 {
	var sum int64
	for _, c := range t.counts {
		sum += c
	}
	return sum
}

// DeviationFrom computes the paper's Fig 15 metric: the mean shortfall of the
// measured rate below the target input rate over [from, to), in records/s.
// Overshoot (catch-up flushes) does not offset shortfall; the paper's metric
// penalizes time spent below the offered load.
func (t *ThroughputTracker) DeviationFrom(target float64, from, to simtime.Time) float64 {
	s := t.Series()
	pts := s.Slice(from, to)
	if len(pts) == 0 {
		return target
	}
	var dev float64
	for _, p := range pts {
		if p.V < target {
			dev += target - p.V
		}
	}
	return dev / float64(len(pts))
}
