package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"drrs/internal/simtime"
)

func TestSeriesAppendAndSlice(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Append(simtime.Time(i*100), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len %d", s.Len())
	}
	got := s.Slice(200, 500)
	if len(got) != 3 || got[0].V != 2 || got[2].V != 4 {
		t.Fatalf("slice %v", got)
	}
	if got := s.Slice(5000, 6000); len(got) != 0 {
		t.Fatalf("out-of-range slice %v", got)
	}
}

func TestSeriesBackwardsPanics(t *testing.T) {
	s := NewSeries("x")
	s.Append(100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards append")
		}
	}()
	s.Append(50, 2)
}

func TestStats(t *testing.T) {
	s := NewSeries("x")
	vals := []float64{1, 2, 3, 4, 5}
	for i, v := range vals {
		s.Append(simtime.Time(i), v)
	}
	st := s.StatsIn(0, 100)
	if st.Count != 5 || st.Mean != 3 || st.Max != 5 || st.Min != 1 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std %v", st.Std)
	}
	if st.P99 != 5 {
		t.Fatalf("p99 %v", st.P99)
	}
}

func TestStatsLargeMagnitude(t *testing.T) {
	// Regression: the old E[X²]−E[X]² variance cancels catastrophically for
	// large-magnitude samples and reported Std=0 here.
	s := NewSeries("x")
	for i, v := range []float64{1e9, 1e9 + 1, 1e9 + 2} {
		s.Append(simtime.Time(i), v)
	}
	st := s.StatsIn(0, 100)
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(st.Std-want) > 1e-6 {
		t.Fatalf("std %v, want %v (catastrophic cancellation?)", st.Std, want)
	}
	if st.Mean != 1e9+1 {
		t.Fatalf("mean %v", st.Mean)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := NewSeries("x")
	st := s.StatsIn(0, 100)
	if st.Count != 0 || st.Mean != 0 || st.Max != 0 {
		t.Fatalf("empty stats %+v", st)
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Append(simtime.Time(i)*simtime.Time(simtime.Millisecond), float64(i))
	}
	out := s.Downsample(10 * simtime.Millisecond)
	if len(out) != 10 {
		t.Fatalf("buckets %d", len(out))
	}
	if out[0].V != 4.5 { // mean of 0..9
		t.Fatalf("bucket mean %v", out[0].V)
	}
}

func TestDownsampleEmpty(t *testing.T) {
	if out := NewSeries("x").Downsample(simtime.Millisecond); out != nil {
		t.Fatalf("expected nil, got %v", out)
	}
}

func TestLatencyTracker(t *testing.T) {
	l := NewLatencyTracker()
	l.Observe(simtime.Time(10*simtime.Millisecond), 0)
	l.Observe(simtime.Time(30*simtime.Millisecond), simtime.Time(10*simtime.Millisecond))
	if got := l.PeakIn(0, simtime.Time(simtime.Second)); got != 20 {
		t.Fatalf("peak %v", got)
	}
	if got := l.AvgIn(0, simtime.Time(simtime.Second)); got != 15 {
		t.Fatalf("avg %v", got)
	}
}

func TestStabilizesAt(t *testing.T) {
	l := NewLatencyTracker()
	// Pre-scale level 10ms; spike to 100ms during [1s,3s); settle after.
	at := func(s float64) simtime.Time { return simtime.Time(simtime.Sec(s)) }
	for i := 0; i < 100; i++ {
		ts := at(float64(i) * 0.1)
		var lat simtime.Duration
		switch {
		case ts >= at(1) && ts < at(3):
			lat = simtime.Ms(100)
		default:
			lat = simtime.Ms(10)
		}
		l.Observe(ts.Add(lat), ts)
	}
	end, ok := l.StabilizesAt(at(1), 10, 1.10, simtime.Sec(2))
	if !ok {
		t.Fatal("should stabilize")
	}
	if end < at(3) || end > at(3.5) {
		t.Fatalf("stabilized at %v", end)
	}
}

func TestStabilizesAtNever(t *testing.T) {
	l := NewLatencyTracker()
	for i := 0; i < 20; i++ {
		ts := simtime.Time(simtime.Sec(float64(i)))
		l.Observe(ts.Add(simtime.Ms(500)), ts)
	}
	_, ok := l.StabilizesAt(0, 10, 1.10, simtime.Sec(5))
	if ok {
		t.Fatal("should not stabilize")
	}
}

func TestStabilizesAtHoldViolation(t *testing.T) {
	l := NewLatencyTracker()
	at := func(s float64) simtime.Time { return simtime.Time(simtime.Sec(s)) }
	// Spike at 0.5s falls inside the first candidate hold window, so the
	// window must restart after the spike.
	seq := []struct {
		ts  float64
		lat float64 // ms
	}{{0, 10}, {0.5, 100}, {1.0, 10}, {1.5, 10}, {2.0, 10}, {2.5, 10}, {3.0, 10}}
	for _, e := range seq {
		l.Observe(at(e.ts).Add(simtime.Ms(e.lat)), at(e.ts))
	}
	end, ok := l.StabilizesAt(0, 10, 1.10, simtime.Sec(1))
	if !ok {
		t.Fatal("should stabilize")
	}
	if end < at(1) {
		t.Fatalf("stabilized too early at %v (spike at 0.5s inside hold window)", end)
	}
}

func TestThroughputTracker(t *testing.T) {
	tr := NewThroughputTracker(simtime.Second)
	for i := 0; i < 10; i++ {
		tr.Observe(simtime.Time(simtime.Sec(0.1*float64(i))), 1)
	}
	tr.Observe(simtime.Time(simtime.Sec(2.5)), 5)
	s := tr.Series()
	if s.Len() != 3 {
		t.Fatalf("series len %d", s.Len())
	}
	if s.At(0).V != 10 {
		t.Fatalf("bucket0 %v", s.At(0).V)
	}
	if s.At(1).V != 0 { // gap zero-filled
		t.Fatalf("bucket1 %v", s.At(1).V)
	}
	if s.At(2).V != 5 {
		t.Fatalf("bucket2 %v", s.At(2).V)
	}
	if tr.Total() != 15 {
		t.Fatalf("total %d", tr.Total())
	}
}

func TestThroughputRateIn(t *testing.T) {
	tr := NewThroughputTracker(simtime.Second)
	tr.Observe(simtime.Time(simtime.Sec(0.5)), 100)
	tr.Observe(simtime.Time(simtime.Sec(1.5)), 50)
	tr.Observe(simtime.Time(simtime.Sec(2.5)), 150)
	// Whole window: 300 records over 3 bucket-seconds.
	if got := tr.RateIn(0, simtime.Time(simtime.Sec(3))); got != 100 {
		t.Fatalf("RateIn(0,3s) = %v, want 100", got)
	}
	// A window inside one bucket reads that bucket's rate.
	if got := tr.RateIn(simtime.Time(simtime.Sec(1)), simtime.Time(simtime.Sec(1.5))); got != 50 {
		t.Fatalf("RateIn(1s,1.5s) = %v, want 50", got)
	}
	// Negative from clamps to the origin (early-run sampling windows).
	if got := tr.RateIn(simtime.Time(-simtime.Sec(1)), simtime.Time(simtime.Sec(1))); got != 100 {
		t.Fatalf("RateIn(-1s,1s) = %v, want 100", got)
	}
	// A partially elapsed trailing bucket is excluded, not diluted: the
	// window [0, 1.5s) covers only bucket 0 completely.
	if got := tr.RateIn(0, simtime.Time(simtime.Sec(1.5))); got != 100 {
		t.Fatalf("RateIn(0,1.5s) = %v, want 100 (partial bucket must not dilute)", got)
	}
	// Empty and degenerate windows report 0.
	if got := tr.RateIn(simtime.Time(simtime.Sec(2)), simtime.Time(simtime.Sec(2))); got != 0 {
		t.Fatalf("empty window = %v, want 0", got)
	}
	if got := NewThroughputTracker(simtime.Second).RateIn(0, simtime.Time(simtime.Sec(1))); got != 0 {
		t.Fatalf("empty tracker = %v, want 0", got)
	}
}

func TestThroughputDeviation(t *testing.T) {
	tr := NewThroughputTracker(simtime.Second)
	// 3 buckets at 100, 50, 150 against target 100 → shortfalls 0, 50, 0 → mean 50/3
	tr.Observe(simtime.Time(simtime.Sec(0.5)), 100)
	tr.Observe(simtime.Time(simtime.Sec(1.5)), 50)
	tr.Observe(simtime.Time(simtime.Sec(2.5)), 150)
	dev := tr.DeviationFrom(100, 0, simtime.Time(simtime.Sec(3)))
	if math.Abs(dev-50.0/3) > 1e-9 {
		t.Fatalf("deviation %v", dev)
	}
}

func TestScalingMetricsPropagationAndDependency(t *testing.T) {
	m := NewScalingMetrics()
	m.MarkScaleStart(0)
	m.SignalInjected("s1", 100)
	m.SignalInjected("s2", 200)
	m.UnitAssigned(1, "s1")
	m.UnitAssigned(2, "s1")
	m.UnitAssigned(3, "s2")
	m.FirstMigration("s1", 150)
	m.FirstMigration("s2", 280)
	m.UnitMigrated(1, 160)
	m.UnitMigrated(2, 300)
	m.UnitMigrated(3, 320)
	m.MarkScaleEnd(320)

	if got := m.CumulativePropagationDelay(); got != 50+80 {
		t.Fatalf("prop %v", got)
	}
	// dep: (160-100)+(300-100)+(320-200) = 60+200+120 = 380 → /3
	if got := m.AvgDependencyOverhead(); got != 380/3 {
		t.Fatalf("dep %v", got)
	}
	if m.MigrationDuration() != 320 {
		t.Fatalf("dur %v", m.MigrationDuration())
	}
	if m.UnitsMigrated() != 3 {
		t.Fatalf("units %d", m.UnitsMigrated())
	}
}

func TestScalingMetricsIdempotentMarks(t *testing.T) {
	m := NewScalingMetrics()
	m.SignalInjected("s", 100)
	m.SignalInjected("s", 999) // ignored
	m.FirstMigration("s", 150)
	m.FirstMigration("s", 151) // ignored
	m.UnitAssigned(1, "s")
	m.UnitMigrated(1, 200)
	m.UnitMigrated(1, 999) // ignored
	if m.CumulativePropagationDelay() != 50 {
		t.Fatalf("prop %v", m.CumulativePropagationDelay())
	}
	if m.AvgDependencyOverhead() != 100 {
		t.Fatalf("dep %v", m.AvgDependencyOverhead())
	}
}

func TestSuspensionAccounting(t *testing.T) {
	m := NewScalingMetrics()
	m.SuspendBegin("i0", 100)
	m.SuspendBegin("i0", 120) // reentrant, ignored
	m.SuspendEnd("i0", 200)
	m.SuspendEnd("i0", 300) // not open, ignored
	m.SuspendBegin("i1", 150)
	m.SuspendEnd("i1", 250)
	if got := m.CumulativeSuspension(); got != 200 {
		t.Fatalf("susp %v", got)
	}
	if m.SuspensionCurve().Len() != 2 {
		t.Fatalf("curve %d", m.SuspensionCurve().Len())
	}
}

func TestCloseAllSuspensions(t *testing.T) {
	m := NewScalingMetrics()
	m.SuspendBegin("a", 100)
	m.SuspendBegin("b", 200)
	m.CloseAllSuspensions(300)
	if got := m.CumulativeSuspension(); got != 200+100 {
		t.Fatalf("susp %v", got)
	}
}

// TestCloseAllSuspensionsDeterministic is the regression guard for the
// map-iteration bug: with ≥2 instances still open at experiment end, all
// closures land on the same timestamp and the cumulative curve appends one
// intermediate value per closure — random order emitted different series for
// the same run. Closures must happen in instance-name order regardless of
// how the intervals were opened.
func TestCloseAllSuspensionsDeterministic(t *testing.T) {
	// The open order must not matter: closures happen in instance-name
	// order, so the intermediate cumulative values are fully determined by
	// (name, open time), not by map iteration.
	durations := map[string]simtime.Time{"op[3]": 100, "op[11]": 150, "op[0]": 200, "op[7]": 250}
	curve := func(openOrder []string) []Point {
		m := NewScalingMetrics()
		for _, name := range openOrder {
			m.SuspendBegin(name, durations[name])
		}
		m.CloseAllSuspensions(1000)
		return append([]Point(nil), m.SuspensionCurve().Points()...)
	}
	a := curve([]string{"op[3]", "op[11]", "op[0]", "op[7]"})
	b := curve([]string{"op[7]", "op[0]", "op[11]", "op[3]"})
	if len(a) != 4 {
		t.Fatalf("curve length %d, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("open order leaked into the curve: %v vs %v", a, b)
		}
		if a[i].At != 1000 {
			t.Fatalf("closure %d at %v, want shared timestamp 1000", i, a[i].At)
		}
	}
	// Name-sorted closure: op[0] (800), op[11] (850), op[3] (900), op[7]
	// (750) → cumulative 800, 1650, 2550, 3300 ticks, in ms on the curve.
	want := []float64{
		simtime.Duration(800).Millis(),
		simtime.Duration(1650).Millis(),
		simtime.Duration(2550).Millis(),
		simtime.Duration(3300).Millis(),
	}
	for i, w := range want {
		if math.Abs(a[i].V-w) > 1e-12 {
			t.Fatalf("cumulative values %v, want %v (closure not name-sorted)", a, want)
		}
	}
}

func TestCounters(t *testing.T) {
	m := NewScalingMetrics()
	m.AddCounter("fetch", 2)
	m.AddCounter("fetch", 3)
	if m.Counter("fetch") != 5 {
		t.Fatalf("counter %d", m.Counter("fetch"))
	}
	if m.Counter("missing") != 0 {
		t.Fatal("missing counter should be zero")
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	m := NewScalingMetrics()
	if m.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestSuspensionNonNegativeProperty(t *testing.T) {
	// Property: any interleaving of begin/end over increasing times yields a
	// non-negative, monotone cumulative suspension.
	f := func(ops []bool) bool {
		m := NewScalingMetrics()
		at := simtime.Time(0)
		prev := simtime.Duration(0)
		for _, open := range ops {
			at = at.Add(10)
			if open {
				m.SuspendBegin("x", at)
			} else {
				m.SuspendEnd("x", at)
			}
			cur := m.CumulativeSuspension()
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStabilizesSmoothed(t *testing.T) {
	l := NewLatencyTracker()
	// Raw samples with a heavy tail: one 100ms spike per second on a 10ms
	// baseline. The raw rule never stabilizes; the 1s-smoothed rule does.
	for i := 0; i < 30; i++ {
		base := simtime.Time(simtime.Sec(float64(i)))
		for j := 0; j < 9; j++ {
			ts := base.Add(simtime.Ms(float64(j * 100)))
			l.Observe(ts.Add(simtime.Ms(10)), ts)
		}
		spike := base.Add(simtime.Ms(950))
		l.Observe(spike.Add(simtime.Ms(30)), spike)
	}
	pre := 12.0 // per-second mean = (9*10+30)/10
	if _, ok := l.StabilizesAt(0, pre, 1.10, simtime.Sec(5)); ok {
		t.Fatal("raw rule should never stabilize with 30ms spikes against a 13.2 limit")
	}
	at, ok := l.StabilizesSmoothed(simtime.Second, 0, pre, 1.10, simtime.Sec(5))
	if !ok {
		t.Fatalf("smoothed rule should stabilize (at %v)", at)
	}
}
