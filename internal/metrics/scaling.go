package metrics

import (
	"fmt"
	"sort"
	"sync"

	"drrs/internal/simtime"
)

// ScalingMetrics aggregates the three delay components the paper isolates
// (Section II-B): propagation delay Lp, suspension delay Ls, and
// dependency-related overhead Ld, plus bookkeeping used by the evaluation
// figures.
//
// Definitions (matching Fig 12 / Fig 13 captions):
//   - Cumulative propagation delay: sum over scaling signals of the interval
//     between signal injection and the first state migration it triggers.
//   - Average dependency overhead: mean over migrated state units of the
//     interval from their signal's injection to the unit's migration.
//   - Cumulative suspension time: total duration across instances in which
//     record processing was blocked waiting for state migration.
type ScalingMetrics struct {
	mu sync.Mutex

	// Per-signal (scaling operation or subscale) bookkeeping.
	injections map[string]simtime.Time
	firstMove  map[string]simtime.Time

	// Per-unit (key group) migration completion.
	unitSignal map[int]string
	unitDone   map[int]simtime.Time

	// Suspension intervals per instance.
	suspOpen  map[string]simtime.Time
	suspTotal simtime.Duration
	suspCurve *Series

	// Scaling lifecycle.
	ScaleStart simtime.Time
	ScaleEnd   simtime.Time
	started    bool
	ended      bool

	// Mechanism-specific counters (e.g. Meces fetch statistics).
	Counters map[string]int64
}

// NewScalingMetrics returns an empty collector.
func NewScalingMetrics() *ScalingMetrics {
	return &ScalingMetrics{
		injections: make(map[string]simtime.Time),
		firstMove:  make(map[string]simtime.Time),
		unitSignal: make(map[int]string),
		unitDone:   make(map[int]simtime.Time),
		suspOpen:   make(map[string]simtime.Time),
		suspCurve:  NewSeries("cumulative_suspension_ms"),
		Counters:   make(map[string]int64),
	}
}

// MarkScaleStart records the instant the scaling operation was requested.
func (m *ScalingMetrics) MarkScaleStart(at simtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		m.ScaleStart = at
		m.started = true
	}
}

// MarkScaleEnd records the instant all migration work finished.
func (m *ScalingMetrics) MarkScaleEnd(at simtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ScaleEnd = at
	m.ended = true
}

// Ended reports whether MarkScaleEnd has been called.
func (m *ScalingMetrics) Ended() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ended
}

// MigrationDuration reports the span from scale start to scale end, or zero
// if the scaling never completed.
func (m *ScalingMetrics) MigrationDuration() simtime.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started || !m.ended {
		return 0
	}
	return m.ScaleEnd.Sub(m.ScaleStart)
}

// SignalInjected records the injection of a scaling signal (for DRRS, one per
// subscale; for Megaphone, one per reconfiguration batch; for OTFS/Meces, a
// single one).
func (m *ScalingMetrics) SignalInjected(signal string, at simtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.injections[signal]; !ok {
		m.injections[signal] = at
	}
}

// UnitAssigned binds a migrating state unit (key group) to the signal that
// governs it.
func (m *ScalingMetrics) UnitAssigned(unit int, signal string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unitSignal[unit] = signal
}

// FirstMigration records the first state movement triggered by a signal.
func (m *ScalingMetrics) FirstMigration(signal string, at simtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.firstMove[signal]; !ok {
		m.firstMove[signal] = at
	}
}

// UnitMigrated records completion of a state unit's migration.
func (m *ScalingMetrics) UnitMigrated(unit int, at simtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.unitDone[unit]; !ok {
		m.unitDone[unit] = at
	}
}

// UnitDoneTimes returns a copy of the per-unit migration completion times.
func (m *ScalingMetrics) UnitDoneTimes() map[int]simtime.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]simtime.Time, len(m.unitDone))
	for u, t := range m.unitDone {
		out[u] = t
	}
	return out
}

// UnitsMigrated reports how many units have completed migration.
func (m *ScalingMetrics) UnitsMigrated() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.unitDone)
}

// CumulativePropagationDelay implements Fig 12a: the sum over signals of
// (first migration - injection).
func (m *ScalingMetrics) CumulativePropagationDelay() simtime.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum simtime.Duration
	for sig, inj := range m.injections {
		if first, ok := m.firstMove[sig]; ok {
			sum += first.Sub(inj)
		}
	}
	return sum
}

// AvgDependencyOverhead implements Fig 12b: the mean over migrated units of
// (migration completion - governing signal injection).
func (m *ScalingMetrics) AvgDependencyOverhead() simtime.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum simtime.Duration
	var n int
	for unit, done := range m.unitDone {
		sig, ok := m.unitSignal[unit]
		if !ok {
			continue
		}
		inj, ok := m.injections[sig]
		if !ok {
			continue
		}
		sum += done.Sub(inj)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / simtime.Duration(n)
}

// SuspendBegin opens a suspension interval for an instance. Reentrant opens
// are ignored.
func (m *ScalingMetrics) SuspendBegin(instance string, at simtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, open := m.suspOpen[instance]; !open {
		m.suspOpen[instance] = at
	}
}

// SuspendEnd closes a suspension interval for an instance and accumulates it
// into the cumulative suspension curve (Fig 13).
func (m *ScalingMetrics) SuspendEnd(instance string, at simtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start, open := m.suspOpen[instance]
	if !open {
		return
	}
	delete(m.suspOpen, instance)
	m.suspTotal += at.Sub(start)
	m.suspCurve.Append(at, m.suspTotal.Millis())
}

// CloseAllSuspensions force-closes any open intervals (called at experiment
// end so in-progress suspensions count). Intervals close in instance-name
// order: all closures share the same timestamp, and the cumulative curve
// appends one intermediate value per closure, so map-iteration order would
// make same-seed runs emit different series. It returns the closed instance
// names (sorted) so a caller swapping in a fresh collector can re-open the
// still-suspended instances there.
func (m *ScalingMetrics) CloseAllSuspensions(at simtime.Time) []string {
	m.mu.Lock()
	names := make([]string, 0, len(m.suspOpen))
	for n := range m.suspOpen {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		m.SuspendEnd(n, at)
	}
	return names
}

// CumulativeSuspension reports total suspension time so far.
func (m *ScalingMetrics) CumulativeSuspension() simtime.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suspTotal
}

// SuspensionCurve returns the cumulative suspension time series in ms.
func (m *ScalingMetrics) SuspensionCurve() *Series { return m.suspCurve }

// AddCounter increments a mechanism-specific counter (e.g. "meces_fetches").
func (m *ScalingMetrics) AddCounter(name string, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Counters[name] += delta
}

// Counter reads a mechanism-specific counter.
func (m *ScalingMetrics) Counter(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Counters[name]
}

// Summary renders a one-line digest for logs and run reports.
func (m *ScalingMetrics) Summary() string {
	return fmt.Sprintf("scale=%v prop=%v dep=%v susp=%v units=%d",
		m.MigrationDuration(), m.CumulativePropagationDelay(),
		m.AvgDependencyOverhead(), m.CumulativeSuspension(), m.UnitsMigrated())
}
