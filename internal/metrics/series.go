// Package metrics collects the measurements the paper's evaluation is built
// on: end-to-end latency and throughput time series, cumulative suspension
// time, propagation delay, and dependency-related overhead, plus the paper's
// scaling-period detection rule (latency within 110% of the pre-scaling level
// for a sustained interval).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"drrs/internal/simtime"
)

// Point is one sample of a time series.
type Point struct {
	At simtime.Time
	V  float64
}

// Series is an append-only time series. Samples must be appended in
// non-decreasing time order.
type Series struct {
	Name string
	pts  []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append adds a sample. It panics if time goes backwards, which always
// indicates a simulation bug.
func (s *Series) Append(at simtime.Time, v float64) {
	if n := len(s.pts); n > 0 && at < s.pts[n-1].At {
		panic(fmt.Sprintf("metrics: series %q sample at %v before %v", s.Name, at, s.pts[n-1].At))
	}
	s.pts = append(s.pts, Point{At: at, V: v})
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.pts) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.pts[i] }

// Points returns the underlying samples. Callers must not mutate the slice.
func (s *Series) Points() []Point { return s.pts }

// Slice returns the samples with from <= t < to.
func (s *Series) Slice(from, to simtime.Time) []Point {
	lo := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].At >= from })
	hi := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].At >= to })
	return s.pts[lo:hi]
}

// Stats summarizes a set of samples.
type Stats struct {
	Count int
	Mean  float64
	Max   float64
	Min   float64
	P99   float64
	Std   float64
}

// StatsIn computes summary statistics over [from, to).
func (s *Series) StatsIn(from, to simtime.Time) Stats {
	return computeStats(s.Slice(from, to))
}

func computeStats(pts []Point) Stats {
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	if len(pts) == 0 {
		return Stats{}
	}
	var sum float64
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.V
		sum += p.V
		if p.V > st.Max {
			st.Max = p.V
		}
		if p.V < st.Min {
			st.Min = p.V
		}
	}
	st.Count = len(pts)
	st.Mean = sum / float64(len(pts))
	// Two-pass variance: the textbook E[X²]−E[X]² form cancels
	// catastrophically for large-magnitude samples (e.g. values near 1e9
	// with small spread report Std=0).
	var sq float64
	for _, v := range vals {
		d := v - st.Mean
		sq += d * d
	}
	variance := sq / float64(len(pts))
	if variance > 0 {
		st.Std = math.Sqrt(variance)
	}
	sort.Float64s(vals)
	idx := int(math.Ceil(0.99*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	st.P99 = vals[idx]
	return st
}

// Downsample buckets the series into fixed windows and returns one averaged
// point per non-empty bucket — used by the figure reporters to print compact
// timelines.
func (s *Series) Downsample(bucket simtime.Duration) []Point {
	if len(s.pts) == 0 || bucket <= 0 {
		return nil
	}
	var out []Point
	start := s.pts[0].At
	var sum float64
	var n int
	var curBucket simtime.Time = start
	flush := func() {
		if n > 0 {
			out = append(out, Point{At: curBucket, V: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range s.pts {
		b := start.Add(simtime.Duration(int64(p.At.Sub(start))/int64(bucket)) * bucket)
		if b != curBucket {
			flush()
			curBucket = b
		}
		sum += p.V
		n++
	}
	flush()
	return out
}
