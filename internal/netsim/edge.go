package netsim

import (
	"fmt"

	"drrs/internal/simtime"
)

// Endpoint names one operator instance as a channel endpoint.
type Endpoint struct {
	Op    string
	Index int
}

func (e Endpoint) String() string { return fmt.Sprintf("%s[%d]", e.Op, e.Index) }

// Edge is a point-to-point channel between two operator instances.
//
// A message first enters the sender-side outbox (Flink's output cache). The
// link drains the outbox in order: each message occupies the link for
// size/Bandwidth (serialization) and arrives Latency later (propagation is
// pipelined). On arrival it joins the receiver-side inbox, except trigger
// barriers, which jump to the inbox front (priority arrival).
//
// Backpressure: TrySend refuses records when the outbox is at capacity, and
// the link stalls when the inbox (including in-flight messages) is full; the
// sender is woken asynchronously when outbox space frees.
type Edge struct {
	sched *simtime.Scheduler

	Src, Dst Endpoint
	// Created is when the edge was wired; checkpoint alignment only expects
	// barriers on channels that existed when the checkpoint was triggered.
	Created simtime.Time
	// Auxiliary marks out-of-band channels (DRRS re-route paths) that never
	// carry checkpoint barriers.
	Auxiliary bool
	Latency   simtime.Duration
	Bandwidth float64 // bytes/second; <= 0 means infinite
	OutCap    int     // records; <= 0 means unbounded
	InCap     int     // records; <= 0 means unbounded

	outbox Deque[Message]
	inbox  Deque[Message]

	// arrivals is the ordered pending-arrival queue of messages on the link.
	// Arrival instants are nondecreasing (a FIFO link admits no overtaking),
	// so a single outstanding timer at the head instant drains the whole
	// queue — one scheduled event per busy period instead of one per message.
	arrivals      Deque[pendingArrival]
	timerArmed    bool
	deliverFn     func()
	linkBusyUntil simtime.Time

	onArrival  func(*Edge)
	onOutSpace func()
	wakeFn     func()
	wakeQueued bool

	// Delivered counts messages that reached the inbox, for tests and debug.
	Delivered uint64
	// DeliveredBytes counts payload bytes that reached the inbox.
	DeliveredBytes uint64
}

// EdgeConfig bundles the link parameters for NewEdge.
type EdgeConfig struct {
	Latency   simtime.Duration
	Bandwidth float64
	OutCap    int
	InCap     int
}

// pendingArrival is one in-flight message and its arrival instant.
type pendingArrival struct {
	msg Message
	at  simtime.Time
}

// NewEdge builds an edge between src and dst on the given scheduler.
func NewEdge(s *simtime.Scheduler, src, dst Endpoint, cfg EdgeConfig) *Edge {
	e := &Edge{
		sched:     s,
		Src:       src,
		Dst:       dst,
		Created:   s.Now(),
		Latency:   cfg.Latency,
		Bandwidth: cfg.Bandwidth,
		OutCap:    cfg.OutCap,
		InCap:     cfg.InCap,
	}
	// Prebound so the hot path never allocates a closure.
	e.deliverFn = e.deliver
	e.wakeFn = func() {
		e.wakeQueued = false
		e.onOutSpace()
	}
	return e
}

// SetReceiver installs the arrival callback (the receiving instance's wake).
func (e *Edge) SetReceiver(fn func(*Edge)) { e.onArrival = fn }

// SetSenderWake installs the callback fired (asynchronously) when outbox
// space frees up, so a blocked sender can resume emitting.
func (e *Edge) SetSenderWake(fn func()) { e.onOutSpace = fn }

// TrySend enqueues m into the outbox. It refuses data records (including
// rerouted ones) when the outbox is full — that is backpressure — but always
// accepts control messages, whose loss or blockage would deadlock the
// protocol. Reports whether the message was accepted.
func (e *Edge) TrySend(m Message) bool {
	if e.OutCap > 0 && e.outbox.Len() >= e.OutCap {
		switch m.MsgKind() {
		case KindRecord, KindRerouted, KindStateChunk:
			return false
		}
	}
	e.outbox.PushBack(m)
	e.pump()
	return true
}

// SendPriority pushes m to the front of the outbox, bypassing all queued
// output (the trigger-barrier path, and the confirm barrier's output-cache
// priority).
func (e *Edge) SendPriority(m Message) {
	e.outbox.PushFront(m)
	e.pump()
}

// ForceSend appends m to the outbox regardless of capacity. Used for
// redirection: records extracted from another edge's output cache must land
// here without being dropped, even under backpressure.
func (e *Edge) ForceSend(m Message) {
	e.outbox.PushBack(m)
	e.pump()
}

func (e *Edge) inboxSpace() bool {
	return e.InCap <= 0 || e.inbox.Len()+e.arrivals.Len() < e.InCap
}

// isDataKind reports whether a message consumes buffer capacity; control
// messages (barriers, watermarks) always flow, so a full input buffer cannot
// stall a priority trigger barrier sitting at the outbox front.
func isDataKind(m Message) bool {
	switch m.MsgKind() {
	case KindRecord, KindRerouted, KindStateChunk:
		return true
	}
	return false
}

// pump moves messages from the outbox onto the link while the inbox has
// room. Transmission is pipelined: the link serializes messages back to back
// and propagation latency overlaps.
func (e *Edge) pump() {
	freed := false
	now := e.sched.Now()
	for e.outbox.Len() > 0 {
		if isDataKind(e.outbox.At(0)) && !e.inboxSpace() {
			break
		}
		m := e.outbox.PopFront()
		freed = true
		var ser simtime.Duration
		if e.Bandwidth > 0 {
			ser = simtime.Duration(float64(m.SizeBytes()) / e.Bandwidth * float64(simtime.Second))
		}
		depart := now
		if e.linkBusyUntil > depart {
			depart = e.linkBusyUntil
		}
		e.linkBusyUntil = depart.Add(ser)
		arrive := e.linkBusyUntil.Add(e.Latency)
		// A FIFO link admits no overtaking; clamp in case Latency was lowered
		// while messages were in flight.
		if n := e.arrivals.Len(); n > 0 && arrive < e.arrivals.At(n-1).at {
			arrive = e.arrivals.At(n - 1).at
		}
		e.arrivals.PushBack(pendingArrival{msg: m, at: arrive})
		e.armDeliver()
	}
	if freed {
		e.wakeSender()
	}
}

// armDeliver keeps exactly one timer outstanding: the head arrival. Arrival
// instants are nondecreasing, so later pushes never need to re-arm earlier.
func (e *Edge) armDeliver() {
	if e.timerArmed || e.arrivals.Len() == 0 {
		return
	}
	e.timerArmed = true
	e.sched.At(e.arrivals.At(0).at, e.deliverFn)
}

func (e *Edge) wakeSender() {
	if e.onOutSpace == nil || e.wakeQueued {
		return
	}
	e.wakeQueued = true
	e.sched.After(0, e.wakeFn)
}

// deliver drains every arrival due at the current instant into the inbox,
// then re-arms for the next pending arrival.
func (e *Edge) deliver() {
	e.timerArmed = false
	now := e.sched.Now()
	for e.arrivals.Len() > 0 && e.arrivals.At(0).at <= now {
		m := e.arrivals.PopFront().msg
		if m.MsgKind() == KindTriggerBarrier {
			e.inbox.PushFront(m)
		} else {
			e.inbox.PushBack(m)
		}
		e.Delivered++
		e.DeliveredBytes += uint64(m.SizeBytes())
		if e.onArrival != nil {
			e.onArrival(e)
		}
	}
	e.armDeliver()
}

// InboxLen reports the number of arrived, unconsumed messages.
func (e *Edge) InboxLen() int { return e.inbox.Len() }

// InboxAt peeks at inbox depth i (0 = next to be consumed).
func (e *Edge) InboxAt(i int) Message { return e.inbox.At(i) }

// PopInbox consumes the inbox head and re-pumps the link.
func (e *Edge) PopInbox() Message {
	m := e.inbox.PopFront()
	e.pump()
	return m
}

// RemoveInboxAt consumes the message at depth i (Intra-channel Scheduling)
// and re-pumps the link.
func (e *Edge) RemoveInboxAt(i int) Message {
	m := e.inbox.RemoveAt(i)
	e.pump()
	return m
}

// PushFrontInbox returns a message to the inbox head (used when a handler
// peeks a message it cannot yet consume).
func (e *Edge) PushFrontInbox(m Message) { e.inbox.PushFront(m) }

// OutboxLen reports the number of messages waiting in the output cache.
func (e *Edge) OutboxLen() int { return e.outbox.Len() }

// OutboxAt peeks at outbox depth i (0 = next to transmit).
func (e *Edge) OutboxAt(i int) Message { return e.outbox.At(i) }

// InFlight reports messages currently on the link.
func (e *Edge) InFlight() int { return e.arrivals.Len() }

// QueuedTotal reports outbox + in-flight + inbox occupancy.
func (e *Edge) QueuedTotal() int { return e.outbox.Len() + e.arrivals.Len() + e.inbox.Len() }

// ExtractOutbox removes every queued message for which take returns true,
// scanning from the front and stopping (exclusively) at the first message for
// which stop returns true. Extracted messages keep their relative order.
// Messages already on the link cannot be extracted — exactly the paper's
// semantics, where in-flight records become Ep records handled by re-routing.
func (e *Edge) ExtractOutbox(take func(Message) bool, stop func(Message) bool) []Message {
	var out []Message
	for i := 0; i < e.outbox.Len(); {
		m := e.outbox.At(i)
		if stop != nil && stop(m) {
			break
		}
		if take(m) {
			out = append(out, e.outbox.RemoveAt(i))
			continue
		}
		i++
	}
	if len(out) > 0 {
		e.wakeSender()
	}
	return out
}

// InsertOutboxAt places m at outbox depth i (for checkpoint-integrated DRRS
// signals that must sit immediately behind a checkpoint barrier).
func (e *Edge) InsertOutboxAt(i int, m Message) {
	e.outbox.InsertAt(i, m)
	e.pump()
}

// FindOutbox returns the depth of the first outbox message satisfying pred,
// or -1.
func (e *Edge) FindOutbox(pred func(Message) bool) int {
	for i := 0; i < e.outbox.Len(); i++ {
		if pred(e.outbox.At(i)) {
			return i
		}
	}
	return -1
}

// FindInbox returns the depth of the first inbox message satisfying pred, or
// -1.
func (e *Edge) FindInbox(pred func(Message) bool) int {
	for i := 0; i < e.inbox.Len(); i++ {
		if pred(e.inbox.At(i)) {
			return i
		}
	}
	return -1
}
