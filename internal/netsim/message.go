// Package netsim models the network plane of the simulated stream processing
// engine: typed messages and point-to-point edges with sender-side outboxes
// (Flink's output caches / result subpartitions) and receiver-side inboxes
// (input buffers).
//
// The DRRS mechanisms manipulate both sides of an edge: trigger barriers are
// priority messages in outbox and inbox; confirm barriers are priority only
// in the outbox; redirection extracts key-group records from the outbox; and
// Record Scheduling inspects the inbox at positional depth.
package netsim

import (
	"fmt"

	"drrs/internal/simtime"
)

// Kind discriminates message types on an edge.
type Kind int

// Message kinds.
const (
	KindRecord Kind = iota
	KindWatermark
	KindCheckpointBarrier
	KindTriggerBarrier
	KindConfirmBarrier
	KindStateChunk
	KindRerouted
	KindScaleBarrier // coupled scaling signal used by OTFS/Megaphone
)

func (k Kind) String() string {
	switch k {
	case KindRecord:
		return "record"
	case KindWatermark:
		return "watermark"
	case KindCheckpointBarrier:
		return "ckpt-barrier"
	case KindTriggerBarrier:
		return "trigger-barrier"
	case KindConfirmBarrier:
		return "confirm-barrier"
	case KindStateChunk:
		return "state-chunk"
	case KindRerouted:
		return "rerouted"
	case KindScaleBarrier:
		return "scale-barrier"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Message is anything that travels on an edge.
type Message interface {
	MsgKind() Kind
	SizeBytes() int
}

// Record is a data record (or a latency marker travelling as one).
type Record struct {
	Key       uint64
	KeyGroup  int
	EventTime simtime.Time
	// IngestTime is when the record entered the system (Kafka ingest); end-to-
	// end latency is measured against it, so source backlog counts, as in the
	// paper.
	IngestTime simtime.Time
	Seq        uint64
	Size       int
	// Value is the record's payload fast lane: every hot-path operator
	// (keyed reduce, windows, sinks, map transforms) reads and writes this
	// unboxed float64, so the steady-state record path allocates nothing.
	Value float64
	// Aux is the escape hatch for the rare structured payloads that do not
	// reduce to one float64 (e.g. join-side tags). It boxes, so hot paths
	// must leave it nil.
	Aux any
	// Marker marks a latency marker; markers bypass windowing operators but
	// otherwise queue and process like records.
	Marker bool
}

// MsgKind implements Message.
func (*Record) MsgKind() Kind { return KindRecord }

// SizeBytes implements Message.
func (r *Record) SizeBytes() int {
	if r.Size <= 0 {
		return 64
	}
	return r.Size
}

// Watermark carries event-time progress.
type Watermark struct {
	WM simtime.Time
}

// MsgKind implements Message.
func (*Watermark) MsgKind() Kind { return KindWatermark }

// SizeBytes implements Message.
func (*Watermark) SizeBytes() int { return 16 }

// CheckpointBarrier is Flink's aligned checkpoint barrier.
type CheckpointBarrier struct {
	ID int64
	// Integrated carries DRRS signals merged into this barrier per the
	// paper's Fig 9 fault-tolerance integration.
	Integrated []Message
}

// MsgKind implements Message.
func (*CheckpointBarrier) MsgKind() Kind { return KindCheckpointBarrier }

// SizeBytes implements Message.
func (*CheckpointBarrier) SizeBytes() int { return 16 }

// TriggerBarrier is DRRS's migration trigger: a priority message that
// bypasses in-flight data in both output and input caches.
type TriggerBarrier struct {
	ScaleID  int64
	Subscale int
	FromOp   string
	FromIdx  int
}

// MsgKind implements Message.
func (*TriggerBarrier) MsgKind() Kind { return KindTriggerBarrier }

// SizeBytes implements Message.
func (*TriggerBarrier) SizeBytes() int { return 24 }

// ConfirmBarrier is DRRS's routing confirmation: priority only in the output
// cache, ordinary in transit and on arrival, re-routed by the scaling
// instance to the migration target.
type ConfirmBarrier struct {
	ScaleID  int64
	Subscale int
	FromOp   string
	FromIdx  int
}

// MsgKind implements Message.
func (*ConfirmBarrier) MsgKind() Kind { return KindConfirmBarrier }

// SizeBytes implements Message.
func (*ConfirmBarrier) SizeBytes() int { return 24 }

// ScaleBarrier is the coupled scaling signal used by the generalized OTFS
// framework and Megaphone: routing confirmation and migration trigger in one
// message, aligned like a checkpoint barrier.
type ScaleBarrier struct {
	ScaleID int64
	Round   int // Megaphone reconfiguration round (0 for single-shot OTFS)
}

// MsgKind implements Message.
func (*ScaleBarrier) MsgKind() Kind { return KindScaleBarrier }

// SizeBytes implements Message.
func (*ScaleBarrier) SizeBytes() int { return 24 }

// StateChunk is a migrated piece of keyed state (one key group, or one
// sub-key-group under hierarchical organization).
type StateChunk struct {
	ScaleID  int64
	Subscale int
	KeyGroup int
	SubUnit  int // -1 when the whole key group moves at once
	Bytes    int
	Entries  map[uint64]any
	// Last marks the final chunk of a key group, after which the group is
	// fully local at the receiver.
	Last bool
}

// MsgKind implements Message.
func (*StateChunk) MsgKind() Kind { return KindStateChunk }

// SizeBytes implements Message.
func (c *StateChunk) SizeBytes() int {
	if c.Bytes <= 0 {
		return 128
	}
	return c.Bytes
}

// Rerouted wraps a record (or confirm barrier) that the scaling-out instance
// forwards to the scaling-in instance because the associated state already
// migrated. Rerouted messages are handled as special events and are not
// affected by processing suspension.
type Rerouted struct {
	Inner    Message
	Subscale int
}

// MsgKind implements Message.
func (*Rerouted) MsgKind() Kind { return KindRerouted }

// SizeBytes implements Message.
func (r *Rerouted) SizeBytes() int { return r.Inner.SizeBytes() + 8 }
