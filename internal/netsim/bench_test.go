package netsim

import (
	"testing"

	"drrs/internal/simtime"
)

// benchEdge wires an edge whose receiver drains the inbox immediately —
// the engine's steady-state pattern with a fast consumer.
func benchEdge(caps int) (*simtime.Scheduler, *Edge) {
	s := simtime.NewScheduler()
	e := NewEdge(s, Endpoint{Op: "a"}, Endpoint{Op: "b"}, EdgeConfig{
		Latency: simtime.Ms(0.5),
		OutCap:  caps,
		InCap:   caps,
	})
	e.SetReceiver(func(e *Edge) {
		for e.InboxLen() > 0 {
			e.PopInbox()
		}
	})
	return s, e
}

// BenchmarkEdgePump measures the per-message cost of the coalesced delivery
// path: send → (single-timer) link → inbox → consume → recycle, the engine's
// actual steady-state loop.
func BenchmarkEdgePump(b *testing.B) {
	s, e := benchEdge(128)
	var pool RecordPool
	e.SetReceiver(func(e *Edge) {
		for e.InboxLen() > 0 {
			if r, ok := e.PopInbox().(*Record); ok {
				pool.Put(r)
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := pool.Get()
		r.Key = uint64(i)
		r.Size = 64
		if !e.TrySend(r) {
			s.Run() // drain backpressure, then retry
			e.TrySend(r)
		}
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
	if e.Delivered == 0 {
		b.Fatal("nothing delivered")
	}
	b.ReportMetric(float64(e.Delivered), "delivered")
}

// BenchmarkEdgePumpBandwidth exercises the serialization path (finite
// bandwidth makes every message occupy the link).
func BenchmarkEdgePumpBandwidth(b *testing.B) {
	s := simtime.NewScheduler()
	e := NewEdge(s, Endpoint{Op: "a"}, Endpoint{Op: "b"}, EdgeConfig{
		Latency:   simtime.Ms(0.5),
		Bandwidth: 64 << 20,
		OutCap:    128,
		InCap:     128,
	})
	var pool RecordPool
	e.SetReceiver(func(e *Edge) {
		for e.InboxLen() > 0 {
			if r, ok := e.PopInbox().(*Record); ok {
				pool.Put(r)
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := pool.Get()
		r.Size = 64
		if !e.TrySend(r) {
			s.Run()
			e.TrySend(r)
		}
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
}

// TestEdgePumpSteadyStateAllocs is the CI guard for the coalesced delivery
// path: once deques, the arrival queue, and the scheduler pool are warm,
// pushing a pooled record through the edge must not allocate.
func TestEdgePumpSteadyStateAllocs(t *testing.T) {
	s, e := benchEdge(128)
	var pool RecordPool
	recycle := func(m Message) {
		if r, ok := m.(*Record); ok {
			pool.Put(r)
		}
	}
	e.SetReceiver(func(e *Edge) {
		for e.InboxLen() > 0 {
			recycle(e.PopInbox())
		}
	})
	// Warm everything.
	for i := 0; i < 512; i++ {
		e.TrySend(pool.Get())
		if i%32 == 31 {
			s.Run()
		}
	}
	s.Run()
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			r := pool.Get()
			r.Size = 64
			e.TrySend(r)
		}
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("edge steady state allocates %.2f objects per batch, want 0", avg)
	}
}

// TestEdgeCoalescedDeliveryTiming pins that coalescing did not change
// arrival *times*: three back-to-back messages on a bandwidth-limited link
// arrive pipelined exactly as the per-message implementation delivered them.
func TestEdgeCoalescedDeliveryTiming(t *testing.T) {
	s := simtime.NewScheduler()
	e := NewEdge(s, Endpoint{Op: "a"}, Endpoint{Op: "b"}, EdgeConfig{
		Latency:   simtime.Duration(1000),
		Bandwidth: 64_000, // 64 bytes / 64000 B/s = 1 ms serialization
	})
	var arrivals []simtime.Time
	e.SetReceiver(func(e *Edge) {
		for e.InboxLen() > 0 {
			e.PopInbox()
			arrivals = append(arrivals, s.Now())
		}
	})
	for i := 0; i < 3; i++ {
		e.TrySend(&Record{Size: 64})
	}
	s.Run()
	// Serialization is 1 ms per message (back to back), propagation 1 ms:
	// arrivals at 2 ms, 3 ms, 4 ms.
	want := []simtime.Time{2000, 3000, 4000}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals %v", arrivals)
	}
	for i, w := range want {
		if arrivals[i] != w {
			t.Fatalf("arrival %d at %v, want %v (got %v)", i, arrivals[i], w, arrivals)
		}
	}
	if e.InFlight() != 0 {
		t.Fatalf("in-flight %d after drain", e.InFlight())
	}
}

// TestRecordPoolRecycle pins the pool contract: Put zeroes, Get reuses.
func TestRecordPoolRecycle(t *testing.T) {
	var p RecordPool
	r := p.Get()
	r.Key = 42
	r.Aux = "payload"
	p.Put(r)
	if p.Len() != 1 {
		t.Fatalf("pool len %d", p.Len())
	}
	r2 := p.Get()
	if r2 != r {
		t.Fatal("pool did not recycle the record")
	}
	if r2.Key != 0 || r2.Aux != nil || r2.Value != 0 {
		t.Fatalf("recycled record not zeroed: %+v", r2)
	}
	p.Put(nil) // must not panic
}
