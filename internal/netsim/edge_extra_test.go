package netsim

import (
	"testing"

	"drrs/internal/simtime"
)

func TestForceSendBypassesCapacity(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{OutCap: 1, InCap: 1})
	e.TrySend(rec(1, 64))
	e.TrySend(rec(2, 64))
	if e.TrySend(rec(3, 64)) {
		t.Fatal("TrySend should refuse at capacity")
	}
	e.ForceSend(rec(3, 64))
	// The forced record is queued at the tail, order preserved.
	if e.OutboxLen() == 0 {
		t.Fatal("forced record lost")
	}
	last := e.OutboxAt(e.OutboxLen() - 1).(*Record)
	if last.Key != 3 {
		t.Fatalf("forced record at wrong position: key %d", last.Key)
	}
}

func TestControlFlowsThroughFullInbox(t *testing.T) {
	// The trigger barrier's defining property: a full input buffer cannot
	// stall it, while data behind it waits.
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{InCap: 2, Latency: simtime.Ms(1)})
	e.SetReceiver(func(*Edge) {})
	for i := 0; i < 5; i++ {
		e.TrySend(rec(uint64(i), 64))
	}
	s.Run()
	if e.InboxLen() != 2 {
		t.Fatalf("inbox %d, want 2 (capacity)", e.InboxLen())
	}
	e.SendPriority(&TriggerBarrier{ScaleID: 1})
	s.Run()
	// Trigger arrived despite the full buffer, at the front.
	if e.InboxAt(0).MsgKind() != KindTriggerBarrier {
		t.Fatalf("head is %v, want trigger", e.InboxAt(0).MsgKind())
	}
	// Data is still gated.
	if e.OutboxLen() == 0 {
		t.Fatal("remaining data should still be waiting in the outbox")
	}
}

func TestInsertOutboxAtOrdering(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{InCap: 1, Latency: simtime.Ms(1), Bandwidth: 64 * 1000})
	e.TrySend(rec(0, 64)) // departs
	e.TrySend(rec(1, 64))
	e.TrySend(&CheckpointBarrier{ID: 3})
	e.TrySend(rec(2, 64))
	at := e.FindOutbox(func(m Message) bool { return m.MsgKind() == KindCheckpointBarrier })
	if at < 0 {
		t.Fatal("barrier not found in outbox")
	}
	e.InsertOutboxAt(at+1, &TriggerBarrier{ScaleID: 1})
	e.InsertOutboxAt(at+2, &ConfirmBarrier{ScaleID: 1})
	// Expected order behind the head: rec1, ckpt, trigger, confirm, rec2.
	kinds := make([]Kind, 0, e.OutboxLen())
	for i := 0; i < e.OutboxLen(); i++ {
		kinds = append(kinds, e.OutboxAt(i).MsgKind())
	}
	want := []Kind{KindRecord, KindCheckpointBarrier, KindTriggerBarrier, KindConfirmBarrier, KindRecord}
	if len(kinds) != len(want) {
		t.Fatalf("outbox kinds %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("position %d: %v, want %v (full: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestEdgeCreatedStamped(t *testing.T) {
	s := simtime.NewScheduler()
	s.After(simtime.Ms(7), func() {
		e := newTestEdge(s, EdgeConfig{})
		if e.Created != simtime.Time(simtime.Ms(7)) {
			t.Errorf("Created %v", e.Created)
		}
	})
	s.Run()
}
