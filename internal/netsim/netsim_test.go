package netsim

import (
	"testing"
	"testing/quick"

	"drrs/internal/simtime"
)

func TestDequeBasics(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("len %d", d.Len())
	}
	for i := 0; i < 100; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("pop %d want %d", got, i)
		}
	}
}

func TestDequePushFront(t *testing.T) {
	var d Deque[int]
	d.PushBack(1)
	d.PushBack(2)
	d.PushFront(0)
	if d.At(0) != 0 || d.At(1) != 1 || d.At(2) != 2 {
		t.Fatalf("order wrong: %d %d %d", d.At(0), d.At(1), d.At(2))
	}
}

func TestDequeRemoveAt(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushBack(i)
	}
	if got := d.RemoveAt(3); got != 3 {
		t.Fatalf("removed %d", got)
	}
	if got := d.RemoveAt(0); got != 0 {
		t.Fatalf("removed %d", got)
	}
	if got := d.RemoveAt(d.Len() - 1); got != 9 {
		t.Fatalf("removed %d", got)
	}
	want := []int{1, 2, 4, 5, 6, 7, 8}
	for i, w := range want {
		if d.At(i) != w {
			t.Fatalf("at %d = %d want %d", i, d.At(i), w)
		}
	}
}

func TestDequeInsertAt(t *testing.T) {
	var d Deque[int]
	d.PushBack(0)
	d.PushBack(2)
	d.InsertAt(1, 1)
	d.InsertAt(3, 3)
	d.InsertAt(0, -1)
	want := []int{-1, 0, 1, 2, 3}
	for i, w := range want {
		if d.At(i) != w {
			t.Fatalf("at %d = %d want %d", i, d.At(i), w)
		}
	}
}

func TestDequeWrapAround(t *testing.T) {
	var d Deque[int]
	// Force head to wander around the ring.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			d.PushBack(round*7 + i)
		}
		for i := 0; i < 6; i++ {
			d.PopFront()
		}
	}
	// Now verify positional ops still work over the wrapped buffer.
	n := d.Len()
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		vals[i] = d.At(i)
	}
	got := d.RemoveAt(n / 2)
	if got != vals[n/2] {
		t.Fatalf("wrap RemoveAt got %d want %d", got, vals[n/2])
	}
}

func TestDequeDrain(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 5; i++ {
		d.PushBack(i)
	}
	out := d.Drain()
	if len(out) != 5 || d.Len() != 0 || out[4] != 4 {
		t.Fatalf("drain %v", out)
	}
}

func TestDequeRandomOpsProperty(t *testing.T) {
	// Model-based property test: Deque behaves like a reference slice.
	f := func(ops []uint8) bool {
		var d Deque[int]
		var ref []int
		next := 0
		for _, op := range ops {
			switch op % 5 {
			case 0:
				d.PushBack(next)
				ref = append(ref, next)
				next++
			case 1:
				d.PushFront(next)
				ref = append([]int{next}, ref...)
				next++
			case 2:
				if len(ref) > 0 {
					if d.PopFront() != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 3:
				if len(ref) > 0 {
					i := int(op) % len(ref)
					if d.RemoveAt(i) != ref[i] {
						return false
					}
					ref = append(ref[:i:i], ref[i+1:]...)
				}
			case 4:
				i := 0
				if len(ref) > 0 {
					i = int(op) % (len(ref) + 1)
				}
				d.InsertAt(i, next)
				ref = append(ref[:i:i], append([]int{next}, ref[i:]...)...)
				next++
			}
			if d.Len() != len(ref) {
				return false
			}
		}
		for i, v := range ref {
			if d.At(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func rec(key uint64, size int) *Record {
	return &Record{Key: key, Size: size}
}

func newTestEdge(s *simtime.Scheduler, cfg EdgeConfig) *Edge {
	return NewEdge(s, Endpoint{Op: "a", Index: 0}, Endpoint{Op: "b", Index: 0}, cfg)
}

func TestEdgeDeliveryOrderAndLatency(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{Latency: simtime.Ms(1)})
	var arrivals []simtime.Time
	e.SetReceiver(func(*Edge) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 3; i++ {
		if !e.TrySend(rec(uint64(i), 64)) {
			t.Fatal("send refused")
		}
	}
	s.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals %d", len(arrivals))
	}
	for _, at := range arrivals {
		if at != simtime.Time(simtime.Ms(1)) {
			t.Fatalf("infinite-bandwidth messages should pipeline: %v", at)
		}
	}
	for i := 0; i < 3; i++ {
		r := e.PopInbox().(*Record)
		if r.Key != uint64(i) {
			t.Fatalf("order: got key %d at %d", r.Key, i)
		}
	}
}

func TestEdgeBandwidthSerialization(t *testing.T) {
	s := simtime.NewScheduler()
	// 1000 bytes/sec, 100-byte messages → 100ms serialization each.
	e := newTestEdge(s, EdgeConfig{Latency: simtime.Ms(5), Bandwidth: 1000})
	var arrivals []simtime.Time
	e.SetReceiver(func(*Edge) { arrivals = append(arrivals, s.Now()) })
	e.TrySend(rec(1, 100))
	e.TrySend(rec(2, 100))
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals %d", len(arrivals))
	}
	if arrivals[0] != simtime.Time(simtime.Ms(105)) {
		t.Fatalf("first at %v want 105ms", arrivals[0])
	}
	if arrivals[1] != simtime.Time(simtime.Ms(205)) {
		t.Fatalf("second at %v want 205ms (pipelined propagation)", arrivals[1])
	}
}

func TestEdgeOutboxBackpressure(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{OutCap: 2, InCap: 1, Latency: simtime.Ms(1)})
	// InCap 1: only one message may be in flight or queued at the receiver.
	ok1 := e.TrySend(rec(1, 64))
	ok2 := e.TrySend(rec(2, 64))
	ok3 := e.TrySend(rec(3, 64)) // outbox holds msg2,msg3? msg1 in flight
	ok4 := e.TrySend(rec(4, 64))
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("first three sends should be accepted")
	}
	if ok4 {
		t.Fatal("fourth send should hit outbox capacity")
	}
	var woken int
	e.SetSenderWake(func() { woken++ })
	s.Run()
	// Nothing pops the inbox, so only one delivery happens.
	if e.InboxLen() != 1 {
		t.Fatalf("inbox %d", e.InboxLen())
	}
	e.PopInbox()
	s.Run()
	if e.InboxLen() != 1 {
		t.Fatalf("inbox after pop %d", e.InboxLen())
	}
	if woken == 0 {
		t.Fatal("sender never woken on outbox space")
	}
}

func TestEdgeControlMessagesBypassCapacity(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{OutCap: 1})
	e.TrySend(rec(1, 64))
	e.TrySend(rec(2, 64))
	if !e.TrySend(&Watermark{WM: 5}) {
		t.Fatal("watermark must not be refused")
	}
	if !e.TrySend(&CheckpointBarrier{ID: 1}) {
		t.Fatal("barrier must not be refused")
	}
}

func TestEdgeTriggerBarrierPriorityBothSides(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{Latency: simtime.Ms(1), Bandwidth: 64 * 1000}) // 1ms per 64B record
	e.SetReceiver(func(*Edge) {})
	for i := 0; i < 5; i++ {
		e.TrySend(rec(uint64(i), 64))
	}
	// Let two records arrive, three still queued in outbox or in flight.
	s.RunUntil(simtime.Time(simtime.Ms(2)).Add(500))
	e.SendPriority(&TriggerBarrier{ScaleID: 1})
	s.Run()
	// The trigger must land in front of records that had not yet been
	// consumed, even though records sent before it were already in the inbox.
	idx := e.FindInbox(func(m Message) bool { return m.MsgKind() == KindTriggerBarrier })
	if idx == -1 {
		t.Fatal("trigger not delivered")
	}
	// Everything after the trigger should be records that were behind it in
	// the outbox; records that arrived before it stay ahead only if already
	// consumed — we didn't consume, so priority arrival puts it at front of
	// the *remaining* queue at its arrival instant.
	for i := 0; i < idx; i++ {
		if e.InboxAt(i).MsgKind() == KindRecord {
			r := e.InboxAt(i).(*Record)
			if r.Key >= 2 {
				t.Fatalf("record %d should have been bypassed by trigger", r.Key)
			}
		}
	}
}

func TestEdgeExtractOutbox(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{Latency: simtime.Ms(1), Bandwidth: 64 * 1000})
	// Stall the link by filling InCap so outbox retains messages.
	e2 := newTestEdge(s, EdgeConfig{InCap: 0})
	_ = e2
	e.InCap = 1
	for i := 0; i < 6; i++ {
		e.TrySend(rec(uint64(i%3), 64))
	}
	// One message departs; the rest sit in the outbox.
	taken := e.ExtractOutbox(
		func(m Message) bool { r, ok := m.(*Record); return ok && r.Key == 1 },
		nil,
	)
	for _, m := range taken {
		if m.(*Record).Key != 1 {
			t.Fatalf("extracted wrong key %d", m.(*Record).Key)
		}
	}
	if len(taken) == 0 {
		t.Fatal("nothing extracted")
	}
	// Remaining outbox must preserve the relative order of keys 0 and 2.
	var rest []uint64
	for i := 0; i < e.OutboxLen(); i++ {
		if r, ok := e.OutboxAt(i).(*Record); ok {
			rest = append(rest, r.Key)
		}
	}
	for _, k := range rest {
		if k == 1 {
			t.Fatal("key 1 left behind")
		}
	}
}

func TestEdgeExtractOutboxStopsAtBarrier(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{InCap: 1, Latency: simtime.Ms(1), Bandwidth: 64 * 1000})
	e.TrySend(rec(9, 64)) // departs immediately
	e.TrySend(rec(1, 64))
	e.TrySend(&CheckpointBarrier{ID: 7})
	e.TrySend(rec(1, 64))
	taken := e.ExtractOutbox(
		func(m Message) bool { r, ok := m.(*Record); return ok && r.Key == 1 },
		func(m Message) bool { return m.MsgKind() == KindCheckpointBarrier },
	)
	if len(taken) != 1 {
		t.Fatalf("extraction should stop at checkpoint barrier, took %d", len(taken))
	}
}

func TestEdgeRemoveInboxAt(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{})
	e.SetReceiver(func(*Edge) {})
	for i := 0; i < 4; i++ {
		e.TrySend(rec(uint64(i), 64))
	}
	s.Run()
	m := e.RemoveInboxAt(2).(*Record)
	if m.Key != 2 {
		t.Fatalf("removed key %d", m.Key)
	}
	if e.InboxLen() != 3 {
		t.Fatalf("inbox %d", e.InboxLen())
	}
	if e.InboxAt(2).(*Record).Key != 3 {
		t.Fatal("order broken after RemoveInboxAt")
	}
}

func TestEdgeDeliveredCounters(t *testing.T) {
	s := simtime.NewScheduler()
	e := newTestEdge(s, EdgeConfig{})
	e.SetReceiver(func(*Edge) {})
	e.TrySend(rec(1, 100))
	e.TrySend(rec(2, 50))
	s.Run()
	if e.Delivered != 2 || e.DeliveredBytes != 150 {
		t.Fatalf("counters %d/%d", e.Delivered, e.DeliveredBytes)
	}
}

func TestEdgeFIFOProperty(t *testing.T) {
	// Property: without priority sends, records arrive in send order
	// regardless of sizes and capacities.
	f := func(sizes []uint16, capRaw uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		s := simtime.NewScheduler()
		e := newTestEdge(s, EdgeConfig{
			Latency:   simtime.Ms(1),
			Bandwidth: 10000,
			InCap:     int(capRaw%8) + 1,
		})
		e.SetReceiver(func(*Edge) {})
		for i, sz := range sizes {
			e.TrySend(rec(uint64(i), int(sz%500)+1))
		}
		var seen uint64
		for {
			s.Run()
			if e.InboxLen() == 0 {
				break
			}
			r := e.PopInbox().(*Record)
			if r.Key != seen {
				return false
			}
			seen++
		}
		return seen == uint64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageKindsAndSizes(t *testing.T) {
	msgs := []Message{
		&Record{Size: 10}, &Watermark{}, &CheckpointBarrier{},
		&TriggerBarrier{}, &ConfirmBarrier{}, &ScaleBarrier{},
		&StateChunk{Bytes: 99}, &Rerouted{Inner: &Record{Size: 10}},
	}
	kinds := map[Kind]bool{}
	for _, m := range msgs {
		if m.SizeBytes() <= 0 {
			t.Fatalf("%v has non-positive size", m.MsgKind())
		}
		if kinds[m.MsgKind()] {
			t.Fatalf("duplicate kind %v", m.MsgKind())
		}
		kinds[m.MsgKind()] = true
		if m.MsgKind().String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if (&Record{}).SizeBytes() <= 0 || (&StateChunk{}).SizeBytes() <= 0 {
		t.Fatal("default sizes must be positive")
	}
	if (&Rerouted{Inner: &Record{Size: 10}}).SizeBytes() != 18 {
		t.Fatal("rerouted size should wrap inner")
	}
}
