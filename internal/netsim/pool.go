package netsim

// RecordPool is a free-list recycler for Record values on the ingest path.
// A simulation is single-threaded, so the pool is deliberately unsynchronized;
// each run (engine runtime) owns its own pool. Get falls back to allocation
// when empty, and Put drops records beyond a bound so a burst cannot pin
// memory for the rest of a run.
type RecordPool struct {
	free []*Record
}

// poolCap bounds retained records (~64K records ≈ a few MB of headers).
const poolCap = 1 << 16

// Get returns a zeroed record, recycling a dead one when available.
func (p *RecordPool) Get() *Record {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	return &Record{}
}

// Put recycles a record the caller owns. The record must not be referenced
// anywhere else: it is zeroed and handed out again by a later Get.
func (p *RecordPool) Put(r *Record) {
	if r == nil || len(p.free) >= poolCap {
		return
	}
	*r = Record{}
	p.free = append(p.free, r)
}

// Len reports how many records the pool currently holds (for tests).
func (p *RecordPool) Len() int { return len(p.free) }
