package netsim

// Deque is a slice-backed double-ended queue used for edge outboxes and
// inboxes. It supports the positional access Record Scheduling needs
// (peeking and removing at arbitrary depth) while keeping push/pop amortized
// O(1).
type Deque[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued elements.
func (d *Deque[T]) Len() int { return d.n }

func (d *Deque[T]) grow() {
	if d.n < len(d.buf) {
		return
	}
	newCap := len(d.buf) * 2
	if newCap < 8 {
		newCap = 8
	}
	nb := make([]T, newCap)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

// PushBack appends v at the tail.
func (d *Deque[T]) PushBack(v T) {
	d.grow()
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
}

// PushFront prepends v at the head.
func (d *Deque[T]) PushFront(v T) {
	d.grow()
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.n++
}

// PopFront removes and returns the head. It panics on an empty deque.
func (d *Deque[T]) PopFront() T {
	if d.n == 0 {
		panic("netsim: PopFront on empty deque")
	}
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return v
}

// At returns the element at depth i (0 = head) without removing it.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("netsim: deque index out of range")
	}
	return d.buf[(d.head+i)%len(d.buf)]
}

// RemoveAt removes and returns the element at depth i, preserving the order
// of the others.
func (d *Deque[T]) RemoveAt(i int) T {
	if i < 0 || i >= d.n {
		panic("netsim: deque remove out of range")
	}
	v := d.At(i)
	// Shift the shorter side.
	if i < d.n-i-1 {
		for j := i; j > 0; j-- {
			d.buf[(d.head+j)%len(d.buf)] = d.buf[(d.head+j-1)%len(d.buf)]
		}
		var zero T
		d.buf[d.head] = zero
		d.head = (d.head + 1) % len(d.buf)
	} else {
		for j := i; j < d.n-1; j++ {
			d.buf[(d.head+j)%len(d.buf)] = d.buf[(d.head+j+1)%len(d.buf)]
		}
		var zero T
		d.buf[(d.head+d.n-1)%len(d.buf)] = zero
	}
	d.n--
	return v
}

// InsertAt inserts v at depth i (0 = front, Len() = back).
func (d *Deque[T]) InsertAt(i int, v T) {
	if i < 0 || i > d.n {
		panic("netsim: deque insert out of range")
	}
	d.PushBack(v) // make room
	for j := d.n - 1; j > i; j-- {
		d.buf[(d.head+j)%len(d.buf)] = d.buf[(d.head+j-1)%len(d.buf)]
	}
	d.buf[(d.head+i)%len(d.buf)] = v
}

// Drain removes and returns all elements in order.
func (d *Deque[T]) Drain() []T {
	out := make([]T, 0, d.n)
	for d.n > 0 {
		out = append(out, d.PopFront())
	}
	return out
}
