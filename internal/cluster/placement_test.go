package cluster

import (
	"testing"

	"drrs/internal/simtime"
)

// policyCluster builds 2 racks × 2 nodes with 2 slots each (plus the default
// unbounded "local" node kept off the racks).
func policyCluster(s *simtime.Scheduler) *Cluster {
	c := New(s)
	c.Node("local").Slots = 0 // unbounded, flat
	for _, r := range []string{"r0", "r1"} {
		c.AddRack(r, 1000, simtime.Ms(1))
		for _, n := range []string{"a", "b"} {
			c.AddNodeOnRack(r, r+n, 1, 1000).Slots = 2
		}
	}
	return c
}

func TestPlaceInstancesNoPolicyIsNoOp(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.PlaceInstances("op", 0, 4)
	if c.NodeOf(ep("op", 0)).Name != "local" {
		t.Fatal("without a policy, instances must stay on the default node")
	}
	if c.PolicyName() != "" {
		t.Fatal("no policy installed")
	}
}

func TestSpreadMatchesRoundRobin(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 0)
	c.AddNode("n2", 1, 0)
	c.SetPolicy(PolicyByName("spread"))
	c.PlaceInstances("op", 0, 6)
	for i := 0; i < 6; i++ {
		want := c.Nodes()[i%3]
		if got := c.NodeOf(ep("op", i)).Name; got != want {
			t.Fatalf("spread placed op[%d] on %s, want %s (PlaceRoundRobin parity)", i, got, want)
		}
	}
}

func TestSpreadSkipsFullNodes(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.Node("local").Slots = 1
	c.Place(ep("other", 0), "local") // local is now full
	c.SetPolicy(SpreadPolicy{})
	c.PlaceInstances("op", 0, 1)
	if got := c.NodeOf(ep("op", 0)).Name; got != "r0a" {
		t.Fatalf("spread placed op[0] on full node path: %s", got)
	}
}

func TestPackFillsInOrder(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.Node("local").Slots = 1
	c.SetPolicy(PolicyByName("pack"))
	c.PlaceInstances("op", 0, 5)
	want := []string{"local", "r0a", "r0a", "r0b", "r0b"}
	for i, w := range want {
		if got := c.NodeOf(ep("op", i)).Name; got != w {
			t.Fatalf("pack placed op[%d] on %s, want %s", i, got, w)
		}
	}
	// All slots full (local 1 + 4×2 = 9): overflow degrades to least-used.
	c.PlaceInstances("op", 5, 10)
	if got := c.NodeOf(ep("op", 9)).Name; got == "" {
		t.Fatal("pack must always place")
	}
	if c.Used("local") != 2 {
		t.Fatalf("overflow should revisit the least-used node first, local=%d", c.Used("local"))
	}
}

func TestRackLocalPrefersOperatorRacks(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	// The operator already lives on rack r1.
	c.Place(ep("op", 0), "r1a")
	c.SetPolicy(PolicyByName("rack-local"))
	c.PlaceInstances("op", 1, 3)
	for i := 1; i < 3; i++ {
		if rack := c.NodeOf(ep("op", i)).Rack; rack != "r1" {
			t.Fatalf("rack-local placed op[%d] on rack %q, want r1", i, rack)
		}
	}
	// r1 is full (r1a: 2, r1b: 2 would be after one more)… fill it, then the
	// next instance must spill outside without failing.
	c.PlaceInstances("op", 3, 4)
	if rack := c.NodeOf(ep("op", 3)).Rack; rack != "r1" {
		t.Fatalf("op[3] should still fit on r1, got %q", rack)
	}
	c.PlaceInstances("op", 4, 5)
	if rack := c.NodeOf(ep("op", 4)).Rack; rack == "r1" {
		t.Fatal("r1 is full; op[4] must spill to another node")
	}
}

func TestRackLocalSeedsFirstRack(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.SetPolicy(RackLocalPolicy{})
	c.PlaceInstances("op", 0, 4)
	for i := 0; i < 4; i++ {
		if rack := c.NodeOf(ep("op", i)).Rack; rack != "r0" {
			t.Fatalf("with no footprint, rack-local should seed the first rack; op[%d] on %q", i, rack)
		}
	}
	// Within the rack, the two nodes stay balanced.
	if c.Used("r0a") != 2 || c.Used("r0b") != 2 {
		t.Fatalf("rack-local should balance within the rack: r0a=%d r0b=%d", c.Used("r0a"), c.Used("r0b"))
	}
}

func TestRackLocalOnFlatClusterFallsBackToSpread(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 0)
	c.SetPolicy(RackLocalPolicy{})
	c.PlaceInstances("op", 0, 2)
	if c.NodeOf(ep("op", 0)).Name != "local" || c.NodeOf(ep("op", 1)).Name != "n1" {
		t.Fatal("rack-local on a flat cluster should spread")
	}
}

func TestUnschedulableNodeIsSkipped(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.Node("local").Unschedulable = true
	for _, policy := range PolicyNames() {
		c2 := policyCluster(simtime.NewScheduler())
		c2.Node("local").Unschedulable = true
		c2.SetPolicy(PolicyByName(policy))
		// 9 instances overflow the racks' 8 slots: even the least-used
		// fallback must avoid the unschedulable node.
		c2.PlaceInstances("op", 0, 9)
		for i := 0; i < 9; i++ {
			if got := c2.NodeOf(ep("op", i)).Name; got == "local" {
				t.Fatalf("%s placed op[%d] on the unschedulable node", policy, i)
			}
		}
	}
	// Explicit placement still works.
	c.Place(ep("pinned", 0), "local")
	if c.NodeOf(ep("pinned", 0)).Name != "local" {
		t.Fatal("explicit Place must bypass schedulability")
	}
}

func TestReplaceKeepsSlotAccounting(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.Place(ep("op", 0), "r0a")
	c.Place(ep("op", 0), "r1a") // moved
	if c.Used("r0a") != 0 || c.Used("r1a") != 1 {
		t.Fatalf("re-place leaked slots: r0a=%d r1a=%d", c.Used("r0a"), c.Used("r1a"))
	}
}

func TestPolicyByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PolicyByName("bogus")
}
