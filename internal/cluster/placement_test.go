package cluster

import (
	"testing"

	"drrs/internal/simtime"
)

// policyCluster builds 2 racks × 2 nodes with 2 slots each (plus the default
// unbounded "local" node kept off the racks).
func policyCluster(s *simtime.Scheduler) *Cluster {
	c := New(s)
	c.Node("local").Slots = 0 // unbounded, flat
	for _, r := range []string{"r0", "r1"} {
		c.AddRack(r, 1000, simtime.Ms(1))
		for _, n := range []string{"a", "b"} {
			c.AddNodeOnRack(r, r+n, 1, 1000).Slots = 2
		}
	}
	return c
}

func TestPlaceInstancesNoPolicyIsNoOp(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.PlaceInstances("op", 0, 4)
	if c.NodeOf(ep("op", 0)).Name != "local" {
		t.Fatal("without a policy, instances must stay on the default node")
	}
	if c.PolicyName() != "" {
		t.Fatal("no policy installed")
	}
}

func TestSpreadMatchesRoundRobin(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 0)
	c.AddNode("n2", 1, 0)
	c.SetPolicy(PolicyByName("spread"))
	c.PlaceInstances("op", 0, 6)
	for i := 0; i < 6; i++ {
		want := c.Nodes()[i%3]
		if got := c.NodeOf(ep("op", i)).Name; got != want {
			t.Fatalf("spread placed op[%d] on %s, want %s (PlaceRoundRobin parity)", i, got, want)
		}
	}
}

func TestSpreadSkipsFullNodes(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.Node("local").Slots = 1
	c.Place(ep("other", 0), "local") // local is now full
	c.SetPolicy(SpreadPolicy{})
	c.PlaceInstances("op", 0, 1)
	if got := c.NodeOf(ep("op", 0)).Name; got != "r0a" {
		t.Fatalf("spread placed op[0] on full node path: %s", got)
	}
}

func TestPackFillsInOrder(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.Node("local").Slots = 1
	c.SetPolicy(PolicyByName("pack"))
	c.PlaceInstances("op", 0, 5)
	want := []string{"local", "r0a", "r0a", "r0b", "r0b"}
	for i, w := range want {
		if got := c.NodeOf(ep("op", i)).Name; got != w {
			t.Fatalf("pack placed op[%d] on %s, want %s", i, got, w)
		}
	}
	// All slots full (local 1 + 4×2 = 9): overflow degrades to least-used.
	c.PlaceInstances("op", 5, 10)
	if got := c.NodeOf(ep("op", 9)).Name; got == "" {
		t.Fatal("pack must always place")
	}
	if c.Used("local") != 2 {
		t.Fatalf("overflow should revisit the least-used node first, local=%d", c.Used("local"))
	}
}

func TestRackLocalPrefersOperatorRacks(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	// The operator already lives on rack r1.
	c.Place(ep("op", 0), "r1a")
	c.SetPolicy(PolicyByName("rack-local"))
	c.PlaceInstances("op", 1, 3)
	for i := 1; i < 3; i++ {
		if rack := c.NodeOf(ep("op", i)).Rack; rack != "r1" {
			t.Fatalf("rack-local placed op[%d] on rack %q, want r1", i, rack)
		}
	}
	// r1 is full (r1a: 2, r1b: 2 would be after one more)… fill it, then the
	// next instance must spill outside without failing.
	c.PlaceInstances("op", 3, 4)
	if rack := c.NodeOf(ep("op", 3)).Rack; rack != "r1" {
		t.Fatalf("op[3] should still fit on r1, got %q", rack)
	}
	c.PlaceInstances("op", 4, 5)
	if rack := c.NodeOf(ep("op", 4)).Rack; rack == "r1" {
		t.Fatal("r1 is full; op[4] must spill to another node")
	}
}

func TestRackLocalSeedsFirstRack(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.SetPolicy(RackLocalPolicy{})
	c.PlaceInstances("op", 0, 4)
	for i := 0; i < 4; i++ {
		if rack := c.NodeOf(ep("op", i)).Rack; rack != "r0" {
			t.Fatalf("with no footprint, rack-local should seed the first rack; op[%d] on %q", i, rack)
		}
	}
	// Within the rack, the two nodes stay balanced.
	if c.Used("r0a") != 2 || c.Used("r0b") != 2 {
		t.Fatalf("rack-local should balance within the rack: r0a=%d r0b=%d", c.Used("r0a"), c.Used("r0b"))
	}
}

func TestRackLocalOnFlatClusterFallsBackToSpread(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 0)
	c.SetPolicy(RackLocalPolicy{})
	c.PlaceInstances("op", 0, 2)
	if c.NodeOf(ep("op", 0)).Name != "local" || c.NodeOf(ep("op", 1)).Name != "n1" {
		t.Fatal("rack-local on a flat cluster should spread")
	}
}

func TestUnschedulableNodeIsSkipped(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.Node("local").Unschedulable = true
	for _, policy := range PolicyNames() {
		c2 := policyCluster(simtime.NewScheduler())
		c2.Node("local").Unschedulable = true
		c2.SetPolicy(PolicyByName(policy))
		// 9 instances overflow the racks' 8 slots: even the least-used
		// fallback must avoid the unschedulable node.
		c2.PlaceInstances("op", 0, 9)
		for i := 0; i < 9; i++ {
			if got := c2.NodeOf(ep("op", i)).Name; got == "local" {
				t.Fatalf("%s placed op[%d] on the unschedulable node", policy, i)
			}
		}
	}
	// Explicit placement still works.
	c.Place(ep("pinned", 0), "local")
	if c.NodeOf(ep("pinned", 0)).Name != "local" {
		t.Fatal("explicit Place must bypass schedulability")
	}
}

func TestReplaceKeepsSlotAccounting(t *testing.T) {
	s := simtime.NewScheduler()
	c := policyCluster(s)
	c.Place(ep("op", 0), "r0a")
	c.Place(ep("op", 0), "r1a") // moved
	if c.Used("r0a") != 0 || c.Used("r1a") != 1 {
		t.Fatalf("re-place leaked slots: r0a=%d r1a=%d", c.Used("r0a"), c.Used("r1a"))
	}
}

// TestDeadNodeIsSkipped: every policy, including the degraded least-used
// fallback, must route around dead nodes while any live node remains.
func TestDeadNodeIsSkipped(t *testing.T) {
	for _, policy := range PolicyNames() {
		c := policyCluster(simtime.NewScheduler())
		c.Node("local").Unschedulable = true
		c.MarkDead("r0a")
		c.SetPolicy(PolicyByName(policy))
		// 8 instances overflow the 6 surviving slots: even overflow must avoid
		// the corpse.
		c.PlaceInstances("op", 0, 8)
		for i := 0; i < 8; i++ {
			if got := c.NodeOf(ep("op", i)).Name; got == "r0a" {
				t.Fatalf("%s placed op[%d] on the dead node", policy, i)
			}
		}
	}
}

// TestMidRunCapacityChangesRespected is the satellite regression test:
// `used` accounting and the schedulability flags are consulted live, so a
// node cordoned, killed, or shrunk *after* initial placement is respected by
// the next placement wave — recovery placement never oversubscribes.
func TestMidRunCapacityChangesRespected(t *testing.T) {
	c := policyCluster(simtime.NewScheduler())
	c.Node("local").Unschedulable = true
	c.SetPolicy(PolicyByName("spread"))
	c.PlaceInstances("op", 0, 4) // one instance per rack node
	// Mid-run: r0a dies, r0b is cordoned, r1a shrinks to its current load.
	c.MarkDead("r0a")
	c.Node("r0b").Unschedulable = true
	c.Node("r1a").Slots = c.Used("r1a")
	// One recovery instance fits in the single surviving free slot (r1b):
	// while capacity remains, the full node must not be oversubscribed.
	c.PlaceInstances("op", 4, 5)
	if got := c.NodeOf(ep("op", 4)).Name; got != "r1b" {
		t.Fatalf("recovery instance placed on %s, want the only free slot r1b", got)
	}
	if used, slots := c.Used("r1a"), c.Node("r1a").Slots; used > slots {
		t.Fatalf("r1a oversubscribed while capacity remained: used=%d slots=%d", used, slots)
	}
	// Overflow past total capacity degrades gracefully but still avoids the
	// dead and cordoned nodes.
	c.PlaceInstances("op", 5, 7)
	for i := 5; i < 7; i++ {
		got := c.NodeOf(ep("op", i)).Name
		if got == "r0a" || got == "r0b" {
			t.Fatalf("overflow placed op[%d] on unavailable node %s", i, got)
		}
	}
	// Un-cordon and revive: capacity is visible again on the next wave.
	c.MarkAlive("r0a")
	c.Node("r0b").Unschedulable = false
	c.PlaceInstances("op", 7, 9)
	onRevived := 0
	for i := 7; i < 9; i++ {
		if n := c.NodeOf(ep("op", i)).Name; n == "r0a" || n == "r0b" {
			onRevived++
		}
	}
	if onRevived == 0 {
		t.Fatal("revived capacity never used by later placement")
	}
}

// TestDeadReplacementFollowsInstance: re-placing an instance off a dead node
// moves its slot accounting so the corpse's slots don't stay booked.
func TestDeadReplacementFollowsInstance(t *testing.T) {
	c := policyCluster(simtime.NewScheduler())
	c.Place(ep("op", 0), "r0a")
	c.Place(ep("op", 1), "r0a")
	c.MarkDead("r0a")
	c.SetPolicy(PolicyByName("spread"))
	// Recovery: explicitly re-place the dead node's instances via the policy.
	for i := 0; i < 2; i++ {
		c.Place(ep("op", i), c.policy.Pick(c, "op", i))
	}
	if c.Used("r0a") != 0 {
		t.Fatalf("dead node still accounts %d instances", c.Used("r0a"))
	}
	for i := 0; i < 2; i++ {
		if n := c.NodeOf(ep("op", i)); n.Dead {
			t.Fatalf("op[%d] still on a dead node", i)
		}
	}
}

func TestPolicyByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PolicyByName("bogus")
}
