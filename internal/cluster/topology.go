package cluster

import (
	"fmt"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// Rack models a top-of-rack switch: nodes within a rack talk at the base
// latency, while traffic crossing the rack boundary pays the uplink latency
// of both ends and contends for the source rack's shared uplink bandwidth.
type Rack struct {
	Name string
	// UplinkBandwidth is the shared byte rate for migration traffic leaving
	// the rack; <= 0 means infinite. All cross-rack transfers out of the rack
	// serialize on this one pool, whichever node they originate from.
	UplinkBandwidth float64
	// UplinkLatency is the extra one-way latency of the rack's uplink hop.
	UplinkLatency simtime.Duration
	// Down partitions the rack: cross-rack transfers into or out of it fail
	// with ErrPartitioned until it is cleared. A zeroed UplinkBandwidth cannot
	// model this — the bandwidth pools treat <= 0 as infinite.
	Down bool

	busyUntil simtime.Time
	// OutBytes / InBytes count migration traffic leaving / entering the rack
	// across its uplink.
	OutBytes, InBytes int64
}

// reserveUplink books bytes on the rack's shared uplink, starting no earlier
// than ready (the instant the last byte cleared the source node's NIC —
// store-and-forward), and returns when the uplink is done with them. Infinite
// uplinks pass through without touching busyUntil, so idle-gap reset
// semantics hold however the bandwidth is reconfigured mid-run.
func (r *Rack) reserveUplink(ready simtime.Time, bytes int) simtime.Time {
	r.busyUntil, ready = reservePool(r.busyUntil, r.UplinkBandwidth, ready, bytes)
	return ready
}

// AddRack registers a rack with the given shared uplink bandwidth (bytes/s,
// <= 0 infinite) and per-hop uplink latency.
func (c *Cluster) AddRack(name string, uplinkBW float64, uplinkLat simtime.Duration) *Rack {
	if _, dup := c.racks[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate rack %s", name))
	}
	r := &Rack{Name: name, UplinkBandwidth: uplinkBW, UplinkLatency: uplinkLat}
	c.racks[name] = r
	c.rackOrder = append(c.rackOrder, name)
	return r
}

// Rack returns a registered rack by name (nil if unknown).
func (c *Cluster) Rack(name string) *Rack { return c.racks[name] }

// Racks returns rack names in registration order.
func (c *Cluster) Racks() []string { return append([]string(nil), c.rackOrder...) }

// AddNodeOnRack registers a worker node on a rack. The rack must exist.
func (c *Cluster) AddNodeOnRack(rack, name string, speed, migBandwidth float64) *Node {
	if _, ok := c.racks[rack]; !ok {
		panic(fmt.Sprintf("cluster: add node %s on unknown rack %s", name, rack))
	}
	n := c.AddNode(name, speed, migBandwidth)
	n.Rack = rack
	return n
}

// RackNodes returns the nodes of one rack in registration order.
func (c *Cluster) RackNodes(rack string) []string {
	var out []string
	for _, name := range c.order {
		if c.nodes[name].Rack == rack {
			out = append(out, name)
		}
	}
	return out
}

// RackOf resolves an instance's rack (nil on flat clusters and for instances
// whose node has been removed).
func (c *Cluster) RackOf(ep netsim.Endpoint) *Rack {
	n := c.NodeOf(ep)
	if n == nil {
		return nil
	}
	return c.racks[n.Rack]
}

// LinkLatency derives the data-plane latency of a channel between two
// instances from the topology path: the base latency within a node, a rack,
// or a flat cluster, plus both racks' uplink latencies when the path crosses
// a rack boundary. The engine wires every edge through this, so large
// clusters feel network distance on the data plane, not just during
// migration.
func (c *Cluster) LinkLatency(from, to netsim.Endpoint, base simtime.Duration) simtime.Duration {
	src := c.NodeOf(from)
	dst := c.NodeOf(to)
	if src == dst || src == nil || dst == nil {
		// Same node, or an endpoint whose node was removed: charge only the
		// base latency (a removed node has no topology position to price).
		return base
	}
	if sr, dr := c.racks[src.Rack], c.racks[dst.Rack]; sr != nil && dr != nil && sr != dr {
		return base + sr.UplinkLatency + dr.UplinkLatency
	}
	return base
}

// CrossRackBytes sums migration traffic that crossed any rack uplink.
func (c *Cluster) CrossRackBytes() int64 {
	var sum int64
	for _, name := range c.rackOrder {
		sum += c.racks[name].OutBytes
	}
	return sum
}

// TransferredBytes sums outgoing migration traffic across all nodes.
func (c *Cluster) TransferredBytes() int64 {
	var sum int64
	for _, name := range c.order {
		sum += c.nodes[name].TransferredBytes
	}
	return sum
}
