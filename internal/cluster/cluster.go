// Package cluster models the physical deployment substrate: worker nodes
// with processing-speed factors and per-node migration bandwidth pools,
// optionally organized into racks with shared cross-rack uplinks, plus the
// placement policies that decide which node each operator instance runs on.
//
// State migration transfers from the same source node contend for that node's
// migration bandwidth (FIFO), which is what makes the DRRS Subscale
// Scheduler's per-node concurrency threshold meaningful, and what the paper's
// sensitivity analysis (Fig 15) exercises on its 4-node Swarm cluster.
// Transfers that cross a rack boundary additionally contend for the source
// rack's shared uplink and pay both racks' uplink latencies (topology.go).
package cluster

import (
	"errors"
	"fmt"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// Transfer failure causes, wrapped into the error a failed transfer reports.
// IsTransient classifies them for retry and settle paths.
var (
	// ErrInstanceDead means an endpoint instance's node is marked dead. A
	// crash-with-restart clears it, so it classifies as transient.
	ErrInstanceDead = errors.New("instance node dead")
	// ErrNodeMissing means an endpoint's node has been removed from the
	// cluster (its placement dangles). Removal is permanent: fatal.
	ErrNodeMissing = errors.New("node missing")
	// ErrPartitioned means the transfer path crosses a partitioned rack
	// uplink. Partitions heal, so it classifies as transient.
	ErrPartitioned = errors.New("rack uplink down")
)

// IsTransient classifies a transfer error: true when a healed cluster clears
// the cause (a partitioned uplink, a dead-but-restartable node), false when
// no amount of waiting can (the node was removed from the cluster). Works
// through wrapped errors, so settle paths can classify the error their fail
// callback received directly.
func IsTransient(err error) bool {
	return errors.Is(err, ErrInstanceDead) || errors.Is(err, ErrPartitioned)
}

// RetryPolicy retries transient transfer failures with deterministic capped
// exponential backoff: attempt n re-launches Backoff(n) after the failure is
// detected, where Backoff doubles from Base up to Cap. The zero value
// disables retry entirely — transfers fail on first detection, preserving
// every pre-retry digest — so the policy is safe to install unconditionally.
type RetryPolicy struct {
	// Max is the number of re-attempts per transfer (0 disables retry).
	Max int
	// Base is the first backoff delay (default 250ms when Max > 0).
	Base simtime.Duration
	// Cap bounds the exponential growth (default 2s when Max > 0).
	Cap simtime.Duration
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.Max > 0 }

// Backoff returns the delay before re-attempt number attempt+1 (attempt
// counts completed attempts, starting at 0): Base<<attempt, capped at Cap.
func (p RetryPolicy) Backoff(attempt int) simtime.Duration {
	base, ceil := p.Base, p.Cap
	if base <= 0 {
		base = 250 * simtime.Millisecond
	}
	if ceil <= 0 {
		ceil = 2 * simtime.Second
	}
	d := base
	for i := 0; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	return d
}

// Node is one simulated worker machine.
type Node struct {
	Name string
	// Speed scales instance processing cost (cost/Speed); the paper's cluster
	// is heterogeneous (Gold vs Silver Xeons).
	Speed float64
	// MigrationBandwidth is the byte rate available for outgoing state
	// transfers; <= 0 means infinite.
	MigrationBandwidth float64
	// Rack is the rack the node belongs to ("" on flat clusters).
	Rack string
	// Slots is the node's instance capacity, consulted by capacity-aware
	// placement policies; <= 0 means unbounded.
	Slots int
	// Unschedulable excludes the node from placement policies (explicit
	// Place still works) — e.g. the default "local" node on rack topologies,
	// which would otherwise soak up instances on its infinite NIC.
	Unschedulable bool
	// Dead marks a crashed node: placement policies avoid it and transfers
	// touching it fail through their error callback. Use MarkDead/MarkAlive
	// rather than flipping the field so accounting stays in one place.
	Dead bool

	busyUntil simtime.Time
	// TransferredBytes counts outgoing migration traffic.
	TransferredBytes int64
}

// reserve books bytes on the node's outgoing migration pool, starting no
// earlier than ready, and returns when the last byte clears the NIC. An
// infinite pool (MigrationBandwidth <= 0) never queues and never advances
// busyUntil — the old code advanced the bookkeeping anyway, so a pool whose
// bandwidth was raised to infinite mid-run could still delay transfers behind
// stale busyUntil state.
func (n *Node) reserve(ready simtime.Time, bytes int) simtime.Time {
	n.busyUntil, ready = reservePool(n.busyUntil, n.MigrationBandwidth, ready, bytes)
	return ready
}

// reservePool is the shared FIFO bandwidth-pool arithmetic for node NICs and
// rack uplinks: it returns the updated busy horizon and the completion time
// of this reservation.
func reservePool(busyUntil simtime.Time, bandwidth float64, ready simtime.Time, bytes int) (simtime.Time, simtime.Time) {
	if bandwidth <= 0 {
		return busyUntil, ready
	}
	start := ready
	if busyUntil > start {
		start = busyUntil
	}
	done := start.Add(simtime.Duration(float64(bytes) / bandwidth * float64(simtime.Second)))
	return done, done
}

// Cluster places operator instances onto nodes and brokers state transfers.
type Cluster struct {
	sched     *simtime.Scheduler
	nodes     map[string]*Node
	order     []string
	racks     map[string]*Rack
	rackOrder []string
	placement map[netsim.Endpoint]string
	// used counts placed instances per node; opUsed counts them per
	// (node, operator) for the rack-local policy.
	used   map[string]int
	opUsed map[string]map[string]int
	policy Policy
	// TransferLatency is the per-transfer network latency between distinct
	// nodes; transfers within one node skip it.
	TransferLatency simtime.Duration
	// OnTransferFail, when set, observes every failed transfer (fault
	// accounting). It runs before the transfer's own fail callback.
	OnTransferFail func(from, to netsim.Endpoint, bytes int, err error)
	// TransferRetry, when armed (Max > 0), re-attempts transient transfer
	// failures with capped exponential backoff before reporting them. The
	// zero value keeps the historical fail-on-first-detection behavior.
	TransferRetry RetryPolicy
	// OnTransferRetry, when set, observes every scheduled re-attempt
	// (attempt numbers the re-attempt, starting at 1). It fires at the
	// instant the failure was detected, before the backoff elapses.
	OnTransferRetry func(from, to netsim.Endpoint, bytes int, err error, attempt int)
}

// New returns a cluster with a single infinite-bandwidth node "local", which
// keeps single-machine experiments trivial to set up.
func New(s *simtime.Scheduler) *Cluster {
	c := &Cluster{
		sched:           s,
		nodes:           make(map[string]*Node),
		racks:           make(map[string]*Rack),
		placement:       make(map[netsim.Endpoint]string),
		used:            make(map[string]int),
		opUsed:          make(map[string]map[string]int),
		TransferLatency: simtime.Ms(0.5),
	}
	c.AddNode("local", 1.0, 0)
	return c
}

// AddNode registers a worker node.
func (c *Cluster) AddNode(name string, speed, migBandwidth float64) *Node {
	if _, dup := c.nodes[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate node %s", name))
	}
	if speed <= 0 {
		speed = 1
	}
	n := &Node{Name: name, Speed: speed, MigrationBandwidth: migBandwidth}
	c.nodes[name] = n
	c.order = append(c.order, name)
	return n
}

// Node returns a registered node by name.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// MarkDead marks a node as crashed: placement policies skip it and transfers
// touching it fail. Placements on the node are kept — instances stay pinned to
// the corpse until something re-places them — so recovery can see where state
// used to live. Unknown names are ignored (the fault plan may name nodes a
// topology override removed).
func (c *Cluster) MarkDead(name string) {
	if n := c.nodes[name]; n != nil {
		n.Dead = true
	}
}

// MarkAlive returns a dead node to service (crash-with-restart).
func (c *Cluster) MarkAlive(name string) {
	if n := c.nodes[name]; n != nil {
		n.Dead = false
	}
}

// RemoveNode deletes a node from the cluster entirely. Placements pointing at
// it are left dangling: NodeOf resolves them to nil-backed defaults and
// transfers touching them fail with ErrNodeMissing. The first registered node
// cannot be removed (it is the NodeOf fallback).
func (c *Cluster) RemoveNode(name string) {
	if name == c.order[0] {
		panic(fmt.Sprintf("cluster: cannot remove fallback node %s", name))
	}
	if _, ok := c.nodes[name]; !ok {
		return
	}
	delete(c.nodes, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Nodes returns node names in registration order.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.order...) }

// Place pins an instance to a node, replacing any earlier placement (slot
// accounting follows the instance).
func (c *Cluster) Place(ep netsim.Endpoint, node string) {
	if _, ok := c.nodes[node]; !ok {
		panic(fmt.Sprintf("cluster: place on unknown node %s", node))
	}
	if old, ok := c.placement[ep]; ok {
		c.used[old]--
		c.opUsed[old][ep.Op]--
	}
	c.placement[ep] = node
	c.used[node]++
	if c.opUsed[node] == nil {
		c.opUsed[node] = make(map[string]int)
	}
	c.opUsed[node][ep.Op]++
}

// Used reports how many instances are placed on a node.
func (c *Cluster) Used(node string) int { return c.used[node] }

// PlaceRoundRobin spreads an operator's instances across all nodes.
func (c *Cluster) PlaceRoundRobin(op string, parallelism int) {
	for i := 0; i < parallelism; i++ {
		c.Place(netsim.Endpoint{Op: op, Index: i}, c.order[i%len(c.order)])
	}
}

// NodeOf resolves an instance's node, defaulting to the first node. It
// returns nil when the instance's placed node has been removed from the
// cluster — callers that can run against a faulted cluster must tolerate nil.
func (c *Cluster) NodeOf(ep netsim.Endpoint) *Node {
	if name, ok := c.placement[ep]; ok {
		return c.nodes[name]
	}
	return c.nodes[c.order[0]]
}

// SpeedOf returns the processing-speed factor for an instance. An instance
// whose node was removed keeps speed 1 so a draining pipeline can still make
// progress until recovery re-places it.
func (c *Cluster) SpeedOf(ep netsim.Endpoint) float64 {
	n := c.NodeOf(ep)
	if n == nil {
		return 1
	}
	return n.Speed
}

// Transfer schedules a state transfer of the given size from one instance to
// another and invokes done on completion. Transfers leaving the same node
// serialize on its migration bandwidth; transfers crossing a rack boundary
// additionally serialize (store-and-forward) on the source rack's shared
// uplink and pay both racks' uplink latencies on top of the base latency.
//
// On an unhealthy cluster (dead/removed endpoint node, partitioned rack) the
// transfer fails instead of completing: Transfer drops it silently after
// notifying OnTransferFail; use TransferChecked to observe the failure.
func (c *Cluster) Transfer(from, to netsim.Endpoint, bytes int, done func()) {
	c.TransferChecked(from, to, bytes, done, nil)
}

// TransferChecked is Transfer with an explicit failure callback. The source
// node and the rack path are checked at launch; the destination is checked at
// delivery time, so a transfer whose destination instance is re-placed onto a
// healthy node while the bytes are in flight still succeeds. Exactly one of
// done/fail fires, at the instant the transfer would have completed (failures
// are detected when the bytes arrive, not for free at launch — except a dead
// source, which cannot even start and fails immediately).
//
// When TransferRetry is armed, a transiently failed transfer re-launches from
// scratch after the policy's backoff — re-resolving both endpoints and
// re-paying bandwidth for the re-sent bytes — until it succeeds, fails
// fatally, or exhausts the retry budget. done/fail still fire exactly once.
func (c *Cluster) TransferChecked(from, to netsim.Endpoint, bytes int, done func(), fail func(error)) {
	c.attemptTransfer(from, to, bytes, 0, done, fail)
}

// attemptTransfer launches attempt number attempt (0-based) of a transfer.
func (c *Cluster) attemptTransfer(from, to netsim.Endpoint, bytes, attempt int, done func(), fail func(error)) {
	src := c.NodeOf(from)
	if src == nil {
		c.failTransfer(c.sched.Now(), from, to, bytes, attempt, ErrNodeMissing, done, fail)
		return
	}
	if src.Dead {
		c.failTransfer(c.sched.Now(), from, to, bytes, attempt, ErrInstanceDead, done, fail)
		return
	}
	dst := c.NodeOf(to)
	src.TransferredBytes += int64(bytes)
	ready := src.reserve(c.sched.Now(), bytes)
	if src == dst {
		c.sched.At(ready, func() { c.deliver(from, to, bytes, attempt, done, fail) })
		return
	}
	lat := c.TransferLatency
	if sr, dr := c.rackPath(src, dst); sr != nil {
		if sr.Down || dr.Down {
			// The path is partitioned: the transfer times out after the base
			// hop latency without ever occupying the uplink.
			c.failTransfer(ready.Add(lat), from, to, bytes, attempt, ErrPartitioned, done, fail)
			return
		}
		ready = sr.reserveUplink(ready, bytes)
		sr.OutBytes += int64(bytes)
		dr.InBytes += int64(bytes)
		lat += sr.UplinkLatency + dr.UplinkLatency
	}
	c.sched.At(ready.Add(lat), func() { c.deliver(from, to, bytes, attempt, done, fail) })
}

// rackPath returns the source and destination racks when the transfer crosses
// a rack boundary, (nil, nil) otherwise.
func (c *Cluster) rackPath(src, dst *Node) (*Rack, *Rack) {
	if dst == nil {
		// Destination node removed: no rack path — the delivery check fails
		// the transfer regardless.
		return nil, nil
	}
	if sr, dr := c.racks[src.Rack], c.racks[dst.Rack]; sr != nil && dr != nil && sr != dr {
		return sr, dr
	}
	return nil, nil
}

// deliver lands the bytes at the destination, re-resolving its node at
// delivery time.
func (c *Cluster) deliver(from, to netsim.Endpoint, bytes, attempt int, done func(), fail func(error)) {
	dst := c.NodeOf(to)
	switch {
	case dst == nil:
		c.concludeFail(from, to, bytes, attempt, ErrNodeMissing, done, fail)
	case dst.Dead:
		c.concludeFail(from, to, bytes, attempt, ErrInstanceDead, done, fail)
	case done != nil:
		done()
	}
}

// failTransfer schedules the failure's conclusion (retry or report) for at.
func (c *Cluster) failTransfer(at simtime.Time, from, to netsim.Endpoint, bytes, attempt int, cause error, done func(), fail func(error)) {
	c.sched.At(at, func() { c.concludeFail(from, to, bytes, attempt, cause, done, fail) })
}

// concludeFail runs at the instant a failed attempt was detected: under an
// armed retry policy a transient cause with budget left re-launches the whole
// attempt after the backoff; everything else reports the failure.
func (c *Cluster) concludeFail(from, to netsim.Endpoint, bytes, attempt int, cause error, done func(), fail func(error)) {
	if p := c.TransferRetry; p.Enabled() && attempt < p.Max && IsTransient(cause) {
		if c.OnTransferRetry != nil {
			c.OnTransferRetry(from, to, bytes, cause, attempt+1)
		}
		c.sched.After(p.Backoff(attempt), func() {
			c.attemptTransfer(from, to, bytes, attempt+1, done, fail)
		})
		return
	}
	c.noteFail(from, to, bytes, cause, fail)
}

func (c *Cluster) noteFail(from, to netsim.Endpoint, bytes int, cause error, fail func(error)) {
	err := fmt.Errorf("cluster: transfer %s/%d→%s/%d (%d B): %w",
		from.Op, from.Index, to.Op, to.Index, bytes, cause)
	if c.OnTransferFail != nil {
		c.OnTransferFail(from, to, bytes, err)
	}
	if fail != nil {
		fail(err)
	}
}
