// Package cluster models the physical deployment substrate: worker nodes
// with processing-speed factors and per-node migration bandwidth pools.
//
// State migration transfers from the same source node contend for that node's
// migration bandwidth (FIFO), which is what makes the DRRS Subscale
// Scheduler's per-node concurrency threshold meaningful, and what the paper's
// sensitivity analysis (Fig 15) exercises on its 4-node Swarm cluster.
package cluster

import (
	"fmt"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// Node is one simulated worker machine.
type Node struct {
	Name string
	// Speed scales instance processing cost (cost/Speed); the paper's cluster
	// is heterogeneous (Gold vs Silver Xeons).
	Speed float64
	// MigrationBandwidth is the byte rate available for outgoing state
	// transfers; <= 0 means infinite.
	MigrationBandwidth float64

	busyUntil simtime.Time
	// TransferredBytes counts outgoing migration traffic.
	TransferredBytes int64
}

// Cluster places operator instances onto nodes and brokers state transfers.
type Cluster struct {
	sched     *simtime.Scheduler
	nodes     map[string]*Node
	order     []string
	placement map[netsim.Endpoint]string
	// TransferLatency is the per-transfer network latency between distinct
	// nodes; transfers within one node skip it.
	TransferLatency simtime.Duration
}

// New returns a cluster with a single infinite-bandwidth node "local", which
// keeps single-machine experiments trivial to set up.
func New(s *simtime.Scheduler) *Cluster {
	c := &Cluster{
		sched:           s,
		nodes:           make(map[string]*Node),
		placement:       make(map[netsim.Endpoint]string),
		TransferLatency: simtime.Ms(0.5),
	}
	c.AddNode("local", 1.0, 0)
	return c
}

// AddNode registers a worker node.
func (c *Cluster) AddNode(name string, speed, migBandwidth float64) *Node {
	if _, dup := c.nodes[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate node %s", name))
	}
	if speed <= 0 {
		speed = 1
	}
	n := &Node{Name: name, Speed: speed, MigrationBandwidth: migBandwidth}
	c.nodes[name] = n
	c.order = append(c.order, name)
	return n
}

// Node returns a registered node by name.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Nodes returns node names in registration order.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.order...) }

// Place pins an instance to a node.
func (c *Cluster) Place(ep netsim.Endpoint, node string) {
	if _, ok := c.nodes[node]; !ok {
		panic(fmt.Sprintf("cluster: place on unknown node %s", node))
	}
	c.placement[ep] = node
}

// PlaceRoundRobin spreads an operator's instances across all nodes.
func (c *Cluster) PlaceRoundRobin(op string, parallelism int) {
	for i := 0; i < parallelism; i++ {
		c.Place(netsim.Endpoint{Op: op, Index: i}, c.order[i%len(c.order)])
	}
}

// NodeOf resolves an instance's node, defaulting to the first node.
func (c *Cluster) NodeOf(ep netsim.Endpoint) *Node {
	if name, ok := c.placement[ep]; ok {
		return c.nodes[name]
	}
	return c.nodes[c.order[0]]
}

// SpeedOf returns the processing-speed factor for an instance.
func (c *Cluster) SpeedOf(ep netsim.Endpoint) float64 { return c.NodeOf(ep).Speed }

// Transfer schedules a state transfer of the given size from one instance to
// another and invokes done on completion. Transfers leaving the same node
// serialize on its migration bandwidth.
func (c *Cluster) Transfer(from, to netsim.Endpoint, bytes int, done func()) {
	src := c.NodeOf(from)
	dst := c.NodeOf(to)
	now := c.sched.Now()
	var ser simtime.Duration
	if src.MigrationBandwidth > 0 {
		ser = simtime.Duration(float64(bytes) / src.MigrationBandwidth * float64(simtime.Second))
	}
	start := now
	if src.busyUntil > start {
		start = src.busyUntil
	}
	src.busyUntil = start.Add(ser)
	src.TransferredBytes += int64(bytes)
	arrive := src.busyUntil
	if src != dst {
		arrive = arrive.Add(c.TransferLatency)
	}
	c.sched.At(arrive, done)
}
