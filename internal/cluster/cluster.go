// Package cluster models the physical deployment substrate: worker nodes
// with processing-speed factors and per-node migration bandwidth pools,
// optionally organized into racks with shared cross-rack uplinks, plus the
// placement policies that decide which node each operator instance runs on.
//
// State migration transfers from the same source node contend for that node's
// migration bandwidth (FIFO), which is what makes the DRRS Subscale
// Scheduler's per-node concurrency threshold meaningful, and what the paper's
// sensitivity analysis (Fig 15) exercises on its 4-node Swarm cluster.
// Transfers that cross a rack boundary additionally contend for the source
// rack's shared uplink and pay both racks' uplink latencies (topology.go).
package cluster

import (
	"fmt"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// Node is one simulated worker machine.
type Node struct {
	Name string
	// Speed scales instance processing cost (cost/Speed); the paper's cluster
	// is heterogeneous (Gold vs Silver Xeons).
	Speed float64
	// MigrationBandwidth is the byte rate available for outgoing state
	// transfers; <= 0 means infinite.
	MigrationBandwidth float64
	// Rack is the rack the node belongs to ("" on flat clusters).
	Rack string
	// Slots is the node's instance capacity, consulted by capacity-aware
	// placement policies; <= 0 means unbounded.
	Slots int
	// Unschedulable excludes the node from placement policies (explicit
	// Place still works) — e.g. the default "local" node on rack topologies,
	// which would otherwise soak up instances on its infinite NIC.
	Unschedulable bool

	busyUntil simtime.Time
	// TransferredBytes counts outgoing migration traffic.
	TransferredBytes int64
}

// reserve books bytes on the node's outgoing migration pool, starting no
// earlier than ready, and returns when the last byte clears the NIC. An
// infinite pool (MigrationBandwidth <= 0) never queues and never advances
// busyUntil — the old code advanced the bookkeeping anyway, so a pool whose
// bandwidth was raised to infinite mid-run could still delay transfers behind
// stale busyUntil state.
func (n *Node) reserve(ready simtime.Time, bytes int) simtime.Time {
	n.busyUntil, ready = reservePool(n.busyUntil, n.MigrationBandwidth, ready, bytes)
	return ready
}

// reservePool is the shared FIFO bandwidth-pool arithmetic for node NICs and
// rack uplinks: it returns the updated busy horizon and the completion time
// of this reservation.
func reservePool(busyUntil simtime.Time, bandwidth float64, ready simtime.Time, bytes int) (simtime.Time, simtime.Time) {
	if bandwidth <= 0 {
		return busyUntil, ready
	}
	start := ready
	if busyUntil > start {
		start = busyUntil
	}
	done := start.Add(simtime.Duration(float64(bytes) / bandwidth * float64(simtime.Second)))
	return done, done
}

// Cluster places operator instances onto nodes and brokers state transfers.
type Cluster struct {
	sched     *simtime.Scheduler
	nodes     map[string]*Node
	order     []string
	racks     map[string]*Rack
	rackOrder []string
	placement map[netsim.Endpoint]string
	// used counts placed instances per node; opUsed counts them per
	// (node, operator) for the rack-local policy.
	used   map[string]int
	opUsed map[string]map[string]int
	policy Policy
	// TransferLatency is the per-transfer network latency between distinct
	// nodes; transfers within one node skip it.
	TransferLatency simtime.Duration
}

// New returns a cluster with a single infinite-bandwidth node "local", which
// keeps single-machine experiments trivial to set up.
func New(s *simtime.Scheduler) *Cluster {
	c := &Cluster{
		sched:           s,
		nodes:           make(map[string]*Node),
		racks:           make(map[string]*Rack),
		placement:       make(map[netsim.Endpoint]string),
		used:            make(map[string]int),
		opUsed:          make(map[string]map[string]int),
		TransferLatency: simtime.Ms(0.5),
	}
	c.AddNode("local", 1.0, 0)
	return c
}

// AddNode registers a worker node.
func (c *Cluster) AddNode(name string, speed, migBandwidth float64) *Node {
	if _, dup := c.nodes[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate node %s", name))
	}
	if speed <= 0 {
		speed = 1
	}
	n := &Node{Name: name, Speed: speed, MigrationBandwidth: migBandwidth}
	c.nodes[name] = n
	c.order = append(c.order, name)
	return n
}

// Node returns a registered node by name.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Nodes returns node names in registration order.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.order...) }

// Place pins an instance to a node, replacing any earlier placement (slot
// accounting follows the instance).
func (c *Cluster) Place(ep netsim.Endpoint, node string) {
	if _, ok := c.nodes[node]; !ok {
		panic(fmt.Sprintf("cluster: place on unknown node %s", node))
	}
	if old, ok := c.placement[ep]; ok {
		c.used[old]--
		c.opUsed[old][ep.Op]--
	}
	c.placement[ep] = node
	c.used[node]++
	if c.opUsed[node] == nil {
		c.opUsed[node] = make(map[string]int)
	}
	c.opUsed[node][ep.Op]++
}

// Used reports how many instances are placed on a node.
func (c *Cluster) Used(node string) int { return c.used[node] }

// PlaceRoundRobin spreads an operator's instances across all nodes.
func (c *Cluster) PlaceRoundRobin(op string, parallelism int) {
	for i := 0; i < parallelism; i++ {
		c.Place(netsim.Endpoint{Op: op, Index: i}, c.order[i%len(c.order)])
	}
}

// NodeOf resolves an instance's node, defaulting to the first node.
func (c *Cluster) NodeOf(ep netsim.Endpoint) *Node {
	if name, ok := c.placement[ep]; ok {
		return c.nodes[name]
	}
	return c.nodes[c.order[0]]
}

// SpeedOf returns the processing-speed factor for an instance.
func (c *Cluster) SpeedOf(ep netsim.Endpoint) float64 { return c.NodeOf(ep).Speed }

// Transfer schedules a state transfer of the given size from one instance to
// another and invokes done on completion. Transfers leaving the same node
// serialize on its migration bandwidth; transfers crossing a rack boundary
// additionally serialize (store-and-forward) on the source rack's shared
// uplink and pay both racks' uplink latencies on top of the base latency.
func (c *Cluster) Transfer(from, to netsim.Endpoint, bytes int, done func()) {
	src := c.NodeOf(from)
	dst := c.NodeOf(to)
	src.TransferredBytes += int64(bytes)
	ready := src.reserve(c.sched.Now(), bytes)
	if src == dst {
		c.sched.At(ready, done)
		return
	}
	lat := c.TransferLatency
	if sr, dr := c.racks[src.Rack], c.racks[dst.Rack]; sr != nil && dr != nil && sr != dr {
		ready = sr.reserveUplink(ready, bytes)
		sr.OutBytes += int64(bytes)
		dr.InBytes += int64(bytes)
		lat += sr.UplinkLatency + dr.UplinkLatency
	}
	c.sched.At(ready.Add(lat), done)
}
