package cluster

import (
	"fmt"

	"drrs/internal/netsim"
)

// Policy decides which node each operator instance runs on. Both initial
// deployment and scale-out waves consult the cluster's policy (scaling.Deploy
// calls PlaceInstances for the new index range before creating instances), so
// where scale-out lands — rack-local next to the operator's existing
// instances, or spread across the whole cluster — is a per-run knob.
//
// Implementations must be deterministic: the same cluster state and arguments
// always yield the same node, or same-seed runs would diverge.
type Policy interface {
	// Name identifies the policy in reports and flags.
	Name() string
	// Pick returns the node for instance idx of op. Lower-indexed instances
	// are already placed when Pick runs, so policies can see the operator's
	// current footprint through the cluster's accounting.
	Pick(c *Cluster, op string, idx int) string
}

// PolicyNames lists the built-in placement policies.
func PolicyNames() []string { return []string{"spread", "pack", "rack-local"} }

// PolicyByName returns a built-in placement policy. Unknown names panic with
// the known list — they indicate a harness misconfiguration.
func PolicyByName(name string) Policy {
	switch name {
	case "spread":
		return SpreadPolicy{}
	case "pack":
		return PackPolicy{}
	case "rack-local":
		return RackLocalPolicy{}
	default:
		panic(fmt.Sprintf("cluster: unknown placement policy %q (known: spread, pack, rack-local)", name))
	}
}

// SetPolicy installs the placement policy PlaceInstances consults. A nil
// policy (the default) makes PlaceInstances a no-op, preserving the legacy
// behaviour where clusters place explicitly or fall back to the first node.
func (c *Cluster) SetPolicy(p Policy) { c.policy = p }

// PolicyName reports the installed policy ("" when none).
func (c *Cluster) PolicyName() string {
	if c.policy == nil {
		return ""
	}
	return c.policy.Name()
}

// PlaceInstances places instances [from, to) of op through the cluster's
// placement policy, in index order so each decision sees its predecessors.
// Without a policy it is a no-op.
func (c *Cluster) PlaceInstances(op string, from, to int) {
	if c.policy == nil {
		return
	}
	for idx := from; idx < to; idx++ {
		c.Place(netsim.Endpoint{Op: op, Index: idx}, c.policy.Pick(c, op, idx))
	}
}

// PlaceInstance re-places a single existing instance through the cluster's
// placement policy — the fault-recovery path, where a crashed node's
// instances need a new live home. Without a policy the placement stays where
// it is (the node may come back). Returns the node the instance ends on.
func (c *Cluster) PlaceInstance(ep netsim.Endpoint) string {
	if c.policy != nil {
		c.Place(ep, c.policy.Pick(c, ep.Op, ep.Index))
	}
	return c.placement[ep]
}

// hasRoom reports whether a policy may place another instance on the node.
// Placement consults live `used` accounting, so slot counts and the
// Unschedulable/Dead flags can change mid-run (cordoning, crashes) and the
// next Pick respects them — recovery placement never oversubscribes a node
// that shrank underneath it.
func (c *Cluster) hasRoom(node string) bool {
	n := c.nodes[node]
	return !n.Unschedulable && !n.Dead && (n.Slots <= 0 || c.used[node] < n.Slots)
}

// leastUsed returns the schedulable node with the fewest placed instances
// among the given candidates (registration-order tiebreak); used when every
// candidate is full, so placement degrades gracefully instead of failing.
// When every candidate is unschedulable or dead it falls back to the absolute
// least-used live one — placement must always produce a node, but never a
// dead one while any candidate survives.
func (c *Cluster) leastUsed(candidates []string) string {
	best, found := "", false
	for _, name := range candidates {
		if c.nodes[name].Unschedulable || c.nodes[name].Dead {
			continue
		}
		if !found || c.used[name] < c.used[best] {
			best, found = name, true
		}
	}
	if found {
		return best
	}
	for _, name := range candidates {
		if c.nodes[name].Dead {
			continue
		}
		if !found || c.used[name] < c.used[best] {
			best, found = name, true
		}
	}
	if found {
		return best
	}
	best = candidates[0]
	for _, name := range candidates[1:] {
		if c.used[name] < c.used[best] {
			best = name
		}
	}
	return best
}

// SpreadPolicy distributes instances round-robin across all nodes by index
// (matching PlaceRoundRobin, so pre-placed legacy scenarios and policy-driven
// runs agree), walking past full nodes.
type SpreadPolicy struct{}

// Name implements Policy.
func (SpreadPolicy) Name() string { return "spread" }

// Pick implements Policy.
func (SpreadPolicy) Pick(c *Cluster, op string, idx int) string {
	n := len(c.order)
	for off := 0; off < n; off++ {
		name := c.order[(idx+off)%n]
		if c.hasRoom(name) {
			return name
		}
	}
	return c.leastUsed(c.order)
}

// PackPolicy fills nodes in registration order up to their Slots capacity,
// minimizing the number of nodes in use — the bin-packing default of
// resource managers. With unbounded slots everything lands on the first node.
type PackPolicy struct{}

// Name implements Policy.
func (PackPolicy) Name() string { return "pack" }

// Pick implements Policy.
func (PackPolicy) Pick(c *Cluster, op string, idx int) string {
	for _, name := range c.order {
		if c.hasRoom(name) {
			return name
		}
	}
	return c.leastUsed(c.order)
}

// RackLocalPolicy keeps an operator's instances together: new instances go to
// the racks already hosting the operator (least-loaded node first, so the
// rack stays balanced), which keeps scale-out state transfers off the rack
// uplinks. When the operator has no footprint yet it seeds the first rack;
// when the preferred racks are full it spills to the least-loaded node with
// room anywhere.
type RackLocalPolicy struct{}

// Name implements Policy.
func (RackLocalPolicy) Name() string { return "rack-local" }

// Pick implements Policy.
func (RackLocalPolicy) Pick(c *Cluster, op string, idx int) string {
	if len(c.rackOrder) == 0 {
		return SpreadPolicy{}.Pick(c, op, idx)
	}
	var preferred []string
	for _, rack := range c.rackOrder {
		hosts := false
		for _, name := range c.RackNodes(rack) {
			if c.opUsed[name][op] > 0 {
				hosts = true
				break
			}
		}
		if hosts {
			preferred = append(preferred, c.RackNodes(rack)...)
		}
	}
	if len(preferred) == 0 {
		preferred = c.RackNodes(c.rackOrder[0])
	}
	if name, ok := pickLeastUsedWithRoom(c, preferred); ok {
		return name
	}
	if name, ok := pickLeastUsedWithRoom(c, c.order); ok {
		return name
	}
	return c.leastUsed(c.order)
}

// pickLeastUsedWithRoom returns the least-loaded candidate that still has a
// free slot (registration-order tiebreak).
func pickLeastUsedWithRoom(c *Cluster, candidates []string) (string, bool) {
	best, found := "", false
	for _, name := range candidates {
		if !c.hasRoom(name) {
			continue
		}
		if !found || c.used[name] < c.used[best] {
			best, found = name, true
		}
	}
	return best, found
}
