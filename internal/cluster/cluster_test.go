package cluster

import (
	"testing"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

func ep(op string, i int) netsim.Endpoint { return netsim.Endpoint{Op: op, Index: i} }

func TestDefaultNode(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	if c.NodeOf(ep("x", 0)).Name != "local" {
		t.Fatal("unplaced instance should land on the default node")
	}
	if c.SpeedOf(ep("x", 0)) != 1.0 {
		t.Fatal("default speed should be 1.0")
	}
}

func TestPlacement(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 2.0, 1000)
	c.Place(ep("op", 3), "n1")
	if c.NodeOf(ep("op", 3)).Name != "n1" {
		t.Fatal("placement lost")
	}
	if c.SpeedOf(ep("op", 3)) != 2.0 {
		t.Fatal("speed factor lost")
	}
}

func TestPlaceRoundRobin(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 0)
	c.AddNode("n2", 1, 0)
	c.PlaceRoundRobin("op", 6)
	counts := map[string]int{}
	for i := 0; i < 6; i++ {
		counts[c.NodeOf(ep("op", i)).Name]++
	}
	if counts["local"] != 2 || counts["n1"] != 2 || counts["n2"] != 2 {
		t.Fatalf("uneven placement %v", counts)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddNode("local", 1, 0)
}

func TestPlaceUnknownNodePanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Place(ep("op", 0), "ghost")
}

func TestTransferBandwidthSerialization(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n := c.AddNode("src", 1, 1000) // 1000 B/s
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")

	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	s.Run()
	if len(done) != 2 {
		t.Fatalf("completions %d", len(done))
	}
	lat := c.TransferLatency
	if done[0] != simtime.Time(simtime.Ms(500)).Add(lat) {
		t.Fatalf("first done at %v", done[0])
	}
	if done[1] != simtime.Time(simtime.Sec(1)).Add(lat) {
		t.Fatalf("second done at %v (should serialize on src bandwidth)", done[1])
	}
	if n.TransferredBytes != 1000 {
		t.Fatalf("transferred %d", n.TransferredBytes)
	}
}

func TestTransferSameNodeSkipsLatency(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n", 1, 1000)
	c.Place(ep("a", 0), "n")
	c.Place(ep("b", 0), "n")
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1000, func() { at = s.Now() })
	s.Run()
	if at != simtime.Time(simtime.Sec(1)) {
		t.Fatalf("same-node transfer at %v", at)
	}
}

func TestTransferInfiniteBandwidth(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1<<30, func() { at = s.Now() })
	s.Run()
	if at != 0 {
		t.Fatalf("infinite bandwidth same-node transfer should be instant, got %v", at)
	}
}

// TestTransferSameSourceSerializesAcrossDestinations pins the queueing model
// the subscale scheduler leans on: the bandwidth pool belongs to the source
// node, so transfers to *different* destinations still serialize.
func TestTransferSameSourceSerializesAcrossDestinations(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("src", 1, 1000)
	c.AddNode("d1", 1, 1000)
	c.AddNode("d2", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "d1")
	c.Place(ep("b", 1), "d2")
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1000, func() { done = append(done, s.Now()) })
	c.Transfer(ep("a", 0), ep("b", 1), 1000, func() { done = append(done, s.Now()) })
	s.Run()
	lat := c.TransferLatency
	if done[0] != simtime.Time(simtime.Sec(1)).Add(lat) {
		t.Fatalf("first transfer done at %v", done[0])
	}
	if done[1] != simtime.Time(simtime.Sec(2)).Add(lat) {
		t.Fatalf("second transfer to a different destination should still queue on src: %v", done[1])
	}
}

// TestTransferIdleGapDoesNotCarryOver guards busyUntil bookkeeping: after the
// source drains and sits idle, the next transfer starts from now, not from
// the stale busyUntil.
func TestTransferIdleGapDoesNotCarryOver(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("src", 1, 1000)
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	s.Run()
	// Launch the second transfer 10 s later, long after the first finished.
	s.At(simtime.Time(simtime.Sec(10)), func() {
		c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	})
	s.Run()
	if len(done) != 2 {
		t.Fatalf("completions %d", len(done))
	}
	want := simtime.Time(simtime.Sec(10.5)).Add(c.TransferLatency)
	if done[1] != want {
		t.Fatalf("post-idle transfer done at %v, want %v", done[1], want)
	}
}

// TestTransferZeroBytes covers empty key groups: the transfer must still
// round-trip (latency only) and complete, or migrations of empty groups
// would hang the scaling protocol.
func TestTransferZeroBytes(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n := c.AddNode("src", 1, 1000)
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")
	fired := false
	c.Transfer(ep("a", 0), ep("b", 0), 0, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("zero-byte transfer never completed")
	}
	if s.Now() != simtime.Time(c.TransferLatency) {
		t.Fatalf("zero-byte transfer took %v, want latency only", s.Now())
	}
	if n.TransferredBytes != 0 {
		t.Fatalf("transferred %d bytes", n.TransferredBytes)
	}
}

// TestTransferredBytesAccountsPerSourceNode checks the outgoing-traffic
// counters stay with the sending node.
func TestTransferredBytesAccountsPerSourceNode(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n1 := c.AddNode("n1", 1, 0)
	n2 := c.AddNode("n2", 1, 0)
	c.Place(ep("a", 0), "n1")
	c.Place(ep("a", 1), "n2")
	c.Place(ep("b", 0), "n2")
	c.Transfer(ep("a", 0), ep("b", 0), 300, func() {})
	c.Transfer(ep("a", 1), ep("b", 0), 700, func() {}) // n2-internal
	c.Transfer(ep("a", 0), ep("a", 1), 200, func() {})
	s.Run()
	if n1.TransferredBytes != 500 {
		t.Fatalf("n1 transferred %d, want 500", n1.TransferredBytes)
	}
	if n2.TransferredBytes != 700 {
		t.Fatalf("n2 transferred %d, want 700", n2.TransferredBytes)
	}
}

func TestTransfersFromDifferentNodesDontContend(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 1000)
	c.AddNode("n2", 1, 1000)
	c.Place(ep("a", 0), "n1")
	c.Place(ep("b", 0), "n2")
	c.Place(ep("c", 0), "n1") // same node as a? no — to test independence use dst anywhere
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("c", 0), 1000, func() { done = append(done, s.Now()) })
	c.Transfer(ep("b", 0), ep("c", 0), 1000, func() { done = append(done, s.Now()) })
	s.Run()
	// Both take 1s of their own node's bandwidth; neither waits for the other.
	for _, d := range done {
		if d > simtime.Time(simtime.Sec(1)).Add(c.TransferLatency) {
			t.Fatalf("independent transfers contended: %v", done)
		}
	}
}
