package cluster

import (
	"errors"
	"testing"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

func ep(op string, i int) netsim.Endpoint { return netsim.Endpoint{Op: op, Index: i} }

func TestDefaultNode(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	if c.NodeOf(ep("x", 0)).Name != "local" {
		t.Fatal("unplaced instance should land on the default node")
	}
	if c.SpeedOf(ep("x", 0)) != 1.0 {
		t.Fatal("default speed should be 1.0")
	}
}

func TestPlacement(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 2.0, 1000)
	c.Place(ep("op", 3), "n1")
	if c.NodeOf(ep("op", 3)).Name != "n1" {
		t.Fatal("placement lost")
	}
	if c.SpeedOf(ep("op", 3)) != 2.0 {
		t.Fatal("speed factor lost")
	}
}

func TestPlaceRoundRobin(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 0)
	c.AddNode("n2", 1, 0)
	c.PlaceRoundRobin("op", 6)
	counts := map[string]int{}
	for i := 0; i < 6; i++ {
		counts[c.NodeOf(ep("op", i)).Name]++
	}
	if counts["local"] != 2 || counts["n1"] != 2 || counts["n2"] != 2 {
		t.Fatalf("uneven placement %v", counts)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddNode("local", 1, 0)
}

func TestPlaceUnknownNodePanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Place(ep("op", 0), "ghost")
}

func TestTransferBandwidthSerialization(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n := c.AddNode("src", 1, 1000) // 1000 B/s
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")

	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	s.Run()
	if len(done) != 2 {
		t.Fatalf("completions %d", len(done))
	}
	lat := c.TransferLatency
	if done[0] != simtime.Time(simtime.Ms(500)).Add(lat) {
		t.Fatalf("first done at %v", done[0])
	}
	if done[1] != simtime.Time(simtime.Sec(1)).Add(lat) {
		t.Fatalf("second done at %v (should serialize on src bandwidth)", done[1])
	}
	if n.TransferredBytes != 1000 {
		t.Fatalf("transferred %d", n.TransferredBytes)
	}
}

func TestTransferSameNodeSkipsLatency(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n", 1, 1000)
	c.Place(ep("a", 0), "n")
	c.Place(ep("b", 0), "n")
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1000, func() { at = s.Now() })
	s.Run()
	if at != simtime.Time(simtime.Sec(1)) {
		t.Fatalf("same-node transfer at %v", at)
	}
}

func TestTransferInfiniteBandwidth(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1<<30, func() { at = s.Now() })
	s.Run()
	if at != 0 {
		t.Fatalf("infinite bandwidth same-node transfer should be instant, got %v", at)
	}
}

// TestTransferSameSourceSerializesAcrossDestinations pins the queueing model
// the subscale scheduler leans on: the bandwidth pool belongs to the source
// node, so transfers to *different* destinations still serialize.
func TestTransferSameSourceSerializesAcrossDestinations(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("src", 1, 1000)
	c.AddNode("d1", 1, 1000)
	c.AddNode("d2", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "d1")
	c.Place(ep("b", 1), "d2")
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1000, func() { done = append(done, s.Now()) })
	c.Transfer(ep("a", 0), ep("b", 1), 1000, func() { done = append(done, s.Now()) })
	s.Run()
	lat := c.TransferLatency
	if done[0] != simtime.Time(simtime.Sec(1)).Add(lat) {
		t.Fatalf("first transfer done at %v", done[0])
	}
	if done[1] != simtime.Time(simtime.Sec(2)).Add(lat) {
		t.Fatalf("second transfer to a different destination should still queue on src: %v", done[1])
	}
}

// TestTransferIdleGapDoesNotCarryOver guards busyUntil bookkeeping: after the
// source drains and sits idle, the next transfer starts from now, not from
// the stale busyUntil.
func TestTransferIdleGapDoesNotCarryOver(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("src", 1, 1000)
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	s.Run()
	// Launch the second transfer 10 s later, long after the first finished.
	s.At(simtime.Time(simtime.Sec(10)), func() {
		c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	})
	s.Run()
	if len(done) != 2 {
		t.Fatalf("completions %d", len(done))
	}
	want := simtime.Time(simtime.Sec(10.5)).Add(c.TransferLatency)
	if done[1] != want {
		t.Fatalf("post-idle transfer done at %v, want %v", done[1], want)
	}
}

// TestTransferZeroBytes covers empty key groups: the transfer must still
// round-trip (latency only) and complete, or migrations of empty groups
// would hang the scaling protocol.
func TestTransferZeroBytes(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n := c.AddNode("src", 1, 1000)
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")
	fired := false
	c.Transfer(ep("a", 0), ep("b", 0), 0, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("zero-byte transfer never completed")
	}
	if s.Now() != simtime.Time(c.TransferLatency) {
		t.Fatalf("zero-byte transfer took %v, want latency only", s.Now())
	}
	if n.TransferredBytes != 0 {
		t.Fatalf("transferred %d bytes", n.TransferredBytes)
	}
}

// TestTransferredBytesAccountsPerSourceNode checks the outgoing-traffic
// counters stay with the sending node.
func TestTransferredBytesAccountsPerSourceNode(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n1 := c.AddNode("n1", 1, 0)
	n2 := c.AddNode("n2", 1, 0)
	c.Place(ep("a", 0), "n1")
	c.Place(ep("a", 1), "n2")
	c.Place(ep("b", 0), "n2")
	c.Transfer(ep("a", 0), ep("b", 0), 300, func() {})
	c.Transfer(ep("a", 1), ep("b", 0), 700, func() {}) // n2-internal
	c.Transfer(ep("a", 0), ep("a", 1), 200, func() {})
	s.Run()
	if n1.TransferredBytes != 500 {
		t.Fatalf("n1 transferred %d, want 500", n1.TransferredBytes)
	}
	if n2.TransferredBytes != 700 {
		t.Fatalf("n2 transferred %d, want 700", n2.TransferredBytes)
	}
}

// TestTransferToDeadNodeFails pins the unhealthy-cluster semantics: a
// transfer whose destination node is dead must fail through the error
// callback at the instant the bytes arrive (bandwidth and latency are still
// paid — the failure is detected at delivery, not for free at launch).
func TestTransferToDeadNodeFails(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("src", 1, 1000)
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")
	c.MarkDead("dst")
	var failedAt simtime.Time
	var failErr error
	done := false
	c.TransferChecked(ep("a", 0), ep("b", 0), 500, func() { done = true }, func(err error) {
		failedAt = s.Now()
		failErr = err
	})
	s.Run()
	if done {
		t.Fatal("transfer to a dead node must not complete")
	}
	if failErr == nil || !errors.Is(failErr, ErrInstanceDead) {
		t.Fatalf("want ErrInstanceDead, got %v", failErr)
	}
	want := simtime.Time(simtime.Ms(500)).Add(c.TransferLatency)
	if failedAt != want {
		t.Fatalf("failure detected at %v, want delivery time %v", failedAt, want)
	}
}

// TestTransferFromDeadNodeFailsImmediately: a dead source cannot even start
// sending, so the failure fires at launch time without consuming bandwidth.
func TestTransferFromDeadNodeFailsImmediately(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n := c.AddNode("src", 1, 1000)
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")
	c.MarkDead("src")
	var failErr error
	c.TransferChecked(ep("a", 0), ep("b", 0), 500, func() { t.Fatal("completed") }, func(err error) {
		failErr = err
		if s.Now() != 0 {
			t.Fatalf("dead-source failure at %v, want launch time", s.Now())
		}
	})
	s.Run()
	if failErr == nil || !errors.Is(failErr, ErrInstanceDead) {
		t.Fatalf("want ErrInstanceDead, got %v", failErr)
	}
	if n.TransferredBytes != 0 {
		t.Fatalf("dead source accounted %d transferred bytes", n.TransferredBytes)
	}
}

// TestTransferToRemovedNodeFails covers the satellite bugfix: NodeOf on a
// removed node used to nil-deref inside Transfer; now the transfer fails with
// ErrNodeMissing and plain Transfer (no fail callback) drops it silently.
func TestTransferToRemovedNodeFails(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("src", 1, 1000)
	c.AddNode("gone", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "gone")
	c.RemoveNode("gone")
	var observed error
	c.OnTransferFail = func(_, _ netsim.Endpoint, _ int, err error) { observed = err }
	// Plain Transfer must not panic and must not complete.
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { t.Fatal("completed") })
	s.Run()
	if observed == nil || !errors.Is(observed, ErrNodeMissing) {
		t.Fatalf("want ErrNodeMissing via OnTransferFail, got %v", observed)
	}
	// Source side removed: same story, synchronous failure path.
	c.AddNode("gone2", 1, 1000)
	c.Place(ep("x", 0), "gone2")
	c.RemoveNode("gone2")
	observed = nil
	c.Transfer(ep("x", 0), ep("a", 0), 100, func() { t.Fatal("completed") })
	s.Run()
	if observed == nil || !errors.Is(observed, ErrNodeMissing) {
		t.Fatalf("removed-source transfer: want ErrNodeMissing, got %v", observed)
	}
}

// TestTransferSurvivesReplacementInFlight: the destination is checked when
// the bytes arrive, so re-placing the destination instance onto a healthy
// node while the transfer is in flight lets it complete.
func TestTransferSurvivesReplacementInFlight(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("src", 1, 1000)
	c.AddNode("doomed", 1, 1000)
	c.AddNode("safe", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "doomed")
	done := false
	c.TransferChecked(ep("a", 0), ep("b", 0), 500, func() { done = true }, func(err error) {
		t.Fatalf("transfer failed despite re-placement: %v", err)
	})
	// Mid-flight: the destination node dies, but the instance is re-placed
	// before the bytes arrive.
	s.At(simtime.Time(simtime.Ms(100)), func() {
		c.MarkDead("doomed")
		c.Place(ep("b", 0), "safe")
	})
	s.Run()
	if !done {
		t.Fatal("transfer should complete at the re-placed destination")
	}
}

// TestTransferAcrossDownRackFails: partitioned uplinks fail cross-rack
// transfers without occupying the uplink pool.
func TestTransferAcrossDownRackFails(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	for _, r := range []string{"r0", "r1"} {
		c.AddRack(r, 1000, simtime.Ms(1))
		c.AddNodeOnRack(r, r+"n", 1, 1000)
	}
	c.Place(ep("a", 0), "r0n")
	c.Place(ep("b", 0), "r1n")
	c.Rack("r0").Down = true
	var failErr error
	c.TransferChecked(ep("a", 0), ep("b", 0), 500, func() { t.Fatal("completed") }, func(err error) {
		failErr = err
	})
	s.Run()
	if failErr == nil || !errors.Is(failErr, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", failErr)
	}
	if c.Rack("r0").OutBytes != 0 {
		t.Fatalf("partitioned transfer accounted %d uplink bytes", c.Rack("r0").OutBytes)
	}
	// Healed: the same transfer goes through.
	c.Rack("r0").Down = false
	done := false
	c.TransferChecked(ep("a", 0), ep("b", 0), 500, func() { done = true }, nil)
	s.Run()
	if !done {
		t.Fatal("healed uplink should carry the transfer")
	}
}

// TestLinkLatencyRemovedNode: LinkLatency used to nil-deref for endpoints on
// removed nodes; it must fall back to the base latency.
func TestLinkLatencyRemovedNode(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("gone", 1, 0)
	c.Place(ep("a", 0), "gone")
	c.RemoveNode("gone")
	base := simtime.Ms(1)
	if got := c.LinkLatency(ep("a", 0), ep("b", 0), base); got != base {
		t.Fatalf("LinkLatency with removed src = %v, want base %v", got, base)
	}
	if got := c.LinkLatency(ep("b", 0), ep("a", 0), base); got != base {
		t.Fatalf("LinkLatency with removed dst = %v, want base %v", got, base)
	}
	if c.RackOf(ep("a", 0)) != nil {
		t.Fatal("RackOf for a removed node should be nil")
	}
	if c.SpeedOf(ep("a", 0)) != 1 {
		t.Fatal("SpeedOf for a removed node should default to 1")
	}
}

func TestRemoveFallbackNodePanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.RemoveNode("local")
}

func TestTransfersFromDifferentNodesDontContend(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 1000)
	c.AddNode("n2", 1, 1000)
	c.Place(ep("a", 0), "n1")
	c.Place(ep("b", 0), "n2")
	c.Place(ep("c", 0), "n1") // same node as a? no — to test independence use dst anywhere
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("c", 0), 1000, func() { done = append(done, s.Now()) })
	c.Transfer(ep("b", 0), ep("c", 0), 1000, func() { done = append(done, s.Now()) })
	s.Run()
	// Both take 1s of their own node's bandwidth; neither waits for the other.
	for _, d := range done {
		if d > simtime.Time(simtime.Sec(1)).Add(c.TransferLatency) {
			t.Fatalf("independent transfers contended: %v", done)
		}
	}
}
