package cluster

import (
	"testing"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

func ep(op string, i int) netsim.Endpoint { return netsim.Endpoint{Op: op, Index: i} }

func TestDefaultNode(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	if c.NodeOf(ep("x", 0)).Name != "local" {
		t.Fatal("unplaced instance should land on the default node")
	}
	if c.SpeedOf(ep("x", 0)) != 1.0 {
		t.Fatal("default speed should be 1.0")
	}
}

func TestPlacement(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 2.0, 1000)
	c.Place(ep("op", 3), "n1")
	if c.NodeOf(ep("op", 3)).Name != "n1" {
		t.Fatal("placement lost")
	}
	if c.SpeedOf(ep("op", 3)) != 2.0 {
		t.Fatal("speed factor lost")
	}
}

func TestPlaceRoundRobin(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 0)
	c.AddNode("n2", 1, 0)
	c.PlaceRoundRobin("op", 6)
	counts := map[string]int{}
	for i := 0; i < 6; i++ {
		counts[c.NodeOf(ep("op", i)).Name]++
	}
	if counts["local"] != 2 || counts["n1"] != 2 || counts["n2"] != 2 {
		t.Fatalf("uneven placement %v", counts)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddNode("local", 1, 0)
}

func TestPlaceUnknownNodePanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Place(ep("op", 0), "ghost")
}

func TestTransferBandwidthSerialization(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n := c.AddNode("src", 1, 1000) // 1000 B/s
	c.AddNode("dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")

	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	s.Run()
	if len(done) != 2 {
		t.Fatalf("completions %d", len(done))
	}
	lat := c.TransferLatency
	if done[0] != simtime.Time(simtime.Ms(500)).Add(lat) {
		t.Fatalf("first done at %v", done[0])
	}
	if done[1] != simtime.Time(simtime.Sec(1)).Add(lat) {
		t.Fatalf("second done at %v (should serialize on src bandwidth)", done[1])
	}
	if n.TransferredBytes != 1000 {
		t.Fatalf("transferred %d", n.TransferredBytes)
	}
}

func TestTransferSameNodeSkipsLatency(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n", 1, 1000)
	c.Place(ep("a", 0), "n")
	c.Place(ep("b", 0), "n")
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1000, func() { at = s.Now() })
	s.Run()
	if at != simtime.Time(simtime.Sec(1)) {
		t.Fatalf("same-node transfer at %v", at)
	}
}

func TestTransferInfiniteBandwidth(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1<<30, func() { at = s.Now() })
	s.Run()
	if at != 0 {
		t.Fatalf("infinite bandwidth same-node transfer should be instant, got %v", at)
	}
}

func TestTransfersFromDifferentNodesDontContend(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n1", 1, 1000)
	c.AddNode("n2", 1, 1000)
	c.Place(ep("a", 0), "n1")
	c.Place(ep("b", 0), "n2")
	c.Place(ep("c", 0), "n1") // same node as a? no — to test independence use dst anywhere
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("c", 0), 1000, func() { done = append(done, s.Now()) })
	c.Transfer(ep("b", 0), ep("c", 0), 1000, func() { done = append(done, s.Now()) })
	s.Run()
	// Both take 1s of their own node's bandwidth; neither waits for the other.
	for _, d := range done {
		if d > simtime.Time(simtime.Sec(1)).Add(c.TransferLatency) {
			t.Fatalf("independent transfers contended: %v", done)
		}
	}
}
