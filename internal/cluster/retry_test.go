package cluster

import (
	"errors"
	"fmt"
	"testing"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

func TestIsTransientClassification(t *testing.T) {
	if !IsTransient(ErrInstanceDead) || !IsTransient(ErrPartitioned) {
		t.Fatal("dead-node and partition failures are transient (heal/restart clears them)")
	}
	if IsTransient(ErrNodeMissing) {
		t.Fatal("a removed node never comes back — not transient")
	}
	if IsTransient(nil) || IsTransient(errors.New("other")) {
		t.Fatal("unknown errors must not classify as transient")
	}
	// Classification must see through the wrapping noteFail applies.
	wrapped := fmt.Errorf("cluster: transfer a/0→b/0 (500 B): %w", ErrPartitioned)
	if !IsTransient(wrapped) {
		t.Fatal("wrapped transient cause lost its classification")
	}
}

func TestRetryBackoffShape(t *testing.T) {
	p := RetryPolicy{Max: 5, Base: 100 * simtime.Millisecond, Cap: 500 * simtime.Millisecond}
	want := []simtime.Duration{
		100 * simtime.Millisecond, // attempt 0
		200 * simtime.Millisecond,
		400 * simtime.Millisecond,
		500 * simtime.Millisecond, // capped
		500 * simtime.Millisecond, // stays capped
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
	// Zero Base/Cap fall back to the documented defaults.
	d := RetryPolicy{Max: 1}
	if d.Backoff(0) != 250*simtime.Millisecond || d.Backoff(10) != 2*simtime.Second {
		t.Fatalf("default backoff %v / %v", d.Backoff(0), d.Backoff(10))
	}
	if (RetryPolicy{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
}

// TestTransferRetrySucceedsAfterHeal: a transfer into a partitioned rack
// backs off deterministically and lands once the uplink heals — the done
// callback fires exactly once and the retry observer sees every re-attempt.
func TestTransferRetrySucceedsAfterHeal(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddRack("r0", 1<<20, 0)
	c.AddRack("r1", 1<<20, 0)
	c.AddNode("n0", 1, 1<<20).Rack = "r0"
	c.AddNode("n1", 1, 1<<20).Rack = "r1"
	c.Place(ep("a", 0), "n0")
	c.Place(ep("b", 0), "n1")
	c.TransferRetry = RetryPolicy{Max: 4, Base: 250 * simtime.Millisecond, Cap: simtime.Second}
	retries := 0
	c.OnTransferRetry = func(_, _ netsim.Endpoint, _ int, _ error, attempt int) {
		retries = attempt
	}
	c.Rack("r1").Down = true
	s.After(600*simtime.Millisecond, func() { c.Rack("r1").Down = false })
	dones, fails := 0, 0
	var doneAt simtime.Time
	c.TransferChecked(ep("a", 0), ep("b", 0), 1000, func() {
		dones++
		doneAt = s.Now()
	}, func(error) { fails++ })
	s.Run()
	if dones != 1 || fails != 0 {
		t.Fatalf("done=%d fail=%d, want exactly one done", dones, fails)
	}
	if retries == 0 {
		t.Fatal("retry observer never fired")
	}
	if doneAt == 0 {
		t.Fatal("no completion time recorded")
	}
}

// TestTransferRetryExhaustsBudget: a partition that never heals burns the
// whole budget, then fails once with the transient cause preserved.
func TestTransferRetryExhaustsBudget(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddRack("r0", 1<<20, 0)
	c.AddRack("r1", 1<<20, 0)
	c.AddNode("n0", 1, 1<<20).Rack = "r0"
	c.AddNode("n1", 1, 1<<20).Rack = "r1"
	c.Place(ep("a", 0), "n0")
	c.Place(ep("b", 0), "n1")
	c.TransferRetry = RetryPolicy{Max: 3, Base: 100 * simtime.Millisecond, Cap: 200 * simtime.Millisecond}
	c.Rack("r1").Down = true
	retries := 0
	c.OnTransferRetry = func(_, _ netsim.Endpoint, _ int, _ error, attempt int) { retries = attempt }
	dones, fails := 0, 0
	var failErr error
	c.TransferChecked(ep("a", 0), ep("b", 0), 1000, func() { dones++ }, func(err error) {
		fails++
		failErr = err
	})
	s.Run()
	if dones != 0 || fails != 1 {
		t.Fatalf("done=%d fail=%d, want exactly one failure", dones, fails)
	}
	if retries != 3 {
		t.Fatalf("%d re-attempts, want the full budget of 3", retries)
	}
	if !errors.Is(failErr, ErrPartitioned) || !IsTransient(failErr) {
		t.Fatalf("exhausted failure lost its cause: %v", failErr)
	}
}

// TestTransferRetrySkipsFatal: a missing destination node is fatal — no
// backoff, the failure reports immediately even with retry armed.
func TestTransferRetrySkipsFatal(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n0", 1, 1<<20)
	c.AddNode("gone", 1, 1<<20)
	c.Place(ep("a", 0), "n0")
	c.Place(ep("b", 0), "gone")
	c.RemoveNode("gone")
	c.TransferRetry = RetryPolicy{Max: 5}
	retried := false
	c.OnTransferRetry = func(_, _ netsim.Endpoint, _ int, _ error, _ int) { retried = true }
	var failErr error
	c.TransferChecked(ep("a", 0), ep("b", 0), 1000, nil, func(err error) { failErr = err })
	s.Run()
	if retried {
		t.Fatal("fatal cause must not consume retry budget")
	}
	if !errors.Is(failErr, ErrNodeMissing) {
		t.Fatalf("want ErrNodeMissing, got %v", failErr)
	}
}

// TestTransferRetryDisabledIsFailFast: the zero policy preserves the
// historical semantics — first detection reports the failure.
func TestTransferRetryDisabledIsFailFast(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddNode("n0", 1, 1<<20)
	c.AddNode("n1", 1, 1<<20)
	c.Place(ep("a", 0), "n0")
	c.Place(ep("b", 0), "n1")
	c.MarkDead("n1")
	fails := 0
	c.TransferChecked(ep("a", 0), ep("b", 0), 1000, nil, func(error) { fails++ })
	s.Run()
	if fails != 1 {
		t.Fatalf("fail fired %d times, want 1", fails)
	}
}
