package cluster

import (
	"testing"

	"drrs/internal/simtime"
)

// rackPair builds two racks with one node each: src on r0, dst on r1.
// Node bandwidth 1000 B/s, uplink 500 B/s, uplink latency 2 ms per hop.
func rackPair(s *simtime.Scheduler) *Cluster {
	c := New(s)
	c.AddRack("r0", 500, simtime.Ms(2))
	c.AddRack("r1", 500, simtime.Ms(2))
	c.AddNodeOnRack("r0", "src", 1, 1000)
	c.AddNodeOnRack("r1", "dst", 1, 1000)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")
	return c
}

func TestTransferCrossRackPaysUplink(t *testing.T) {
	s := simtime.NewScheduler()
	c := rackPair(s)
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { at = s.Now() })
	s.Run()
	// 0.5 s on the node NIC, then 1 s store-and-forward on the 500 B/s
	// uplink, then base latency + 2×2 ms uplink latency.
	want := simtime.Time(simtime.Sec(1.5)).Add(c.TransferLatency + simtime.Ms(4))
	if at != want {
		t.Fatalf("cross-rack transfer done at %v, want %v", at, want)
	}
	if c.Rack("r0").OutBytes != 500 || c.Rack("r1").InBytes != 500 {
		t.Fatalf("uplink accounting out=%d in=%d", c.Rack("r0").OutBytes, c.Rack("r1").InBytes)
	}
}

func TestTransferSameRackSkipsUplink(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddRack("r0", 500, simtime.Ms(2))
	c.AddNodeOnRack("r0", "n1", 1, 1000)
	c.AddNodeOnRack("r0", "n2", 1, 1000)
	c.Place(ep("a", 0), "n1")
	c.Place(ep("b", 0), "n2")
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1000, func() { at = s.Now() })
	s.Run()
	if want := simtime.Time(simtime.Sec(1)).Add(c.TransferLatency); at != want {
		t.Fatalf("same-rack transfer done at %v, want %v", at, want)
	}
	if c.Rack("r0").OutBytes != 0 || c.CrossRackBytes() != 0 {
		t.Fatal("same-rack transfer must not touch the uplink")
	}
}

// TestUplinkSharedAcrossRackNodes pins the rack model's point: transfers from
// *different* nodes of one rack still serialize on the shared uplink.
func TestUplinkSharedAcrossRackNodes(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddRack("r0", 1000, 0)
	c.AddRack("r1", 1000, 0)
	c.AddNodeOnRack("r0", "n1", 1, 0) // infinite NICs: only the uplink gates
	c.AddNodeOnRack("r0", "n2", 1, 0)
	c.AddNodeOnRack("r1", "d", 1, 0)
	c.Place(ep("a", 0), "n1")
	c.Place(ep("a", 1), "n2")
	c.Place(ep("b", 0), "d")
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 1000, func() { done = append(done, s.Now()) })
	c.Transfer(ep("a", 1), ep("b", 0), 1000, func() { done = append(done, s.Now()) })
	s.Run()
	lat := c.TransferLatency
	if done[0] != simtime.Time(simtime.Sec(1)).Add(lat) {
		t.Fatalf("first uplink transfer done at %v", done[0])
	}
	if done[1] != simtime.Time(simtime.Sec(2)).Add(lat) {
		t.Fatalf("second transfer from a sibling node should queue on the shared uplink: %v", done[1])
	}
}

// TestUplinkIdleGapDoesNotCarryOver extends the idle-gap guard to rack
// uplinks: after the uplink drains, the next transfer starts from now.
func TestUplinkIdleGapDoesNotCarryOver(t *testing.T) {
	s := simtime.NewScheduler()
	c := rackPair(s)
	var done []simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	s.Run()
	s.At(simtime.Time(simtime.Sec(10)), func() {
		c.Transfer(ep("a", 0), ep("b", 0), 500, func() { done = append(done, s.Now()) })
	})
	s.Run()
	want := simtime.Time(simtime.Sec(11.5)).Add(c.TransferLatency + simtime.Ms(4))
	if len(done) != 2 || done[1] != want {
		t.Fatalf("post-idle uplink transfer done at %v, want %v", done[1], want)
	}
}

// TestInfiniteBandwidthSkipsQueueing is the PR-3 bugfix regression: a pool
// whose bandwidth is raised to infinite mid-run must neither inherit the
// stale busyUntil horizon nor advance it.
func TestInfiniteBandwidthSkipsQueueing(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	n := c.AddNode("src", 1, 100) // slow: 10 s for 1000 B
	c.AddNode("dst", 1, 0)
	c.Place(ep("a", 0), "src")
	c.Place(ep("b", 0), "dst")
	c.Transfer(ep("a", 0), ep("b", 0), 1000, func() {}) // busy until t=10s
	var at simtime.Time
	s.At(simtime.Time(simtime.Sec(1)), func() {
		n.MigrationBandwidth = 0 // reconfigured to infinite
		c.Transfer(ep("a", 0), ep("b", 0), 1<<20, func() { at = s.Now() })
	})
	s.Run()
	if want := simtime.Time(simtime.Sec(1)).Add(c.TransferLatency); at != want {
		t.Fatalf("infinite-bandwidth transfer queued behind stale busyUntil: done %v, want %v", at, want)
	}
	if n.busyUntil != simtime.Time(simtime.Sec(10)) {
		t.Fatalf("infinite transfer advanced busyUntil to %v", n.busyUntil)
	}
}

// TestZeroByteCrossRack covers empty key groups on the topology path: the
// transfer completes after latency only and leaves every byte counter alone.
func TestZeroByteCrossRack(t *testing.T) {
	s := simtime.NewScheduler()
	c := rackPair(s)
	var at simtime.Time
	c.Transfer(ep("a", 0), ep("b", 0), 0, func() { at = s.Now() })
	s.Run()
	if want := simtime.Time(c.TransferLatency + simtime.Ms(4)); at != want {
		t.Fatalf("zero-byte cross-rack transfer done at %v, want %v", at, want)
	}
	if c.CrossRackBytes() != 0 || c.Node("src").TransferredBytes != 0 {
		t.Fatal("zero-byte transfer must not count bytes")
	}
}

func TestLinkLatencyFollowsPath(t *testing.T) {
	s := simtime.NewScheduler()
	c := rackPair(s)
	c.AddNodeOnRack("r0", "n2", 1, 0)
	c.Place(ep("x", 0), "n2")
	base := simtime.Ms(0.5)
	if got := c.LinkLatency(ep("a", 0), ep("a", 0), base); got != base {
		t.Fatalf("same-node link latency %v", got)
	}
	if got := c.LinkLatency(ep("a", 0), ep("x", 0), base); got != base {
		t.Fatalf("same-rack link latency %v", got)
	}
	if got := c.LinkLatency(ep("a", 0), ep("b", 0), base); got != base+simtime.Ms(4) {
		t.Fatalf("cross-rack link latency %v, want base+4ms", got)
	}
}

// TestUplinkByteConservation checks per-transfer accounting balances: every
// byte leaving a rack arrives at exactly one other rack.
func TestUplinkByteConservation(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	for _, r := range []string{"r0", "r1", "r2"} {
		c.AddRack(r, 1000, simtime.Ms(1))
		c.AddNodeOnRack(r, r+"n", 1, 1000)
	}
	c.Place(ep("a", 0), "r0n")
	c.Place(ep("a", 1), "r1n")
	c.Place(ep("a", 2), "r2n")
	c.Transfer(ep("a", 0), ep("a", 1), 300, func() {})
	c.Transfer(ep("a", 1), ep("a", 2), 500, func() {})
	c.Transfer(ep("a", 2), ep("a", 2), 700, func() {}) // same node: no uplink
	s.Run()
	var in int64
	for _, r := range c.Racks() {
		in += c.Rack(r).InBytes
	}
	if out := c.CrossRackBytes(); out != 800 || in != 800 {
		t.Fatalf("uplink bytes out=%d in=%d, want 800/800", out, in)
	}
	if c.TransferredBytes() != 1500 {
		t.Fatalf("node bytes %d, want 1500", c.TransferredBytes())
	}
}

func TestDuplicateRackPanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	c.AddRack("r0", 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddRack("r0", 0, 0)
}

func TestAddNodeOnUnknownRackPanics(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddNodeOnRack("ghost", "n", 1, 0)
}
