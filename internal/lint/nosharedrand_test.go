package lint_test

import (
	"testing"

	"drrs/internal/lint"
	"drrs/internal/lint/linttest"
)

func TestNoSharedRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoSharedRand, "sharedrand")
}

// TestNoSharedRandSimtimeExemption checks the carve-out: a package whose
// import path ends in internal/simtime may construct generators, but global
// draws stay illegal even there.
func TestNoSharedRandSimtimeExemption(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoSharedRand, "sharedrand/internal/simtime")
}
