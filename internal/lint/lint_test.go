package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// incAnalyzer reports every ++/-- statement. It borrows a registered name
// ("maporder") so //lint:allow resolution treats it as known, which lets
// these tests exercise the suppression machinery without depending on any
// real analyzer's trigger conditions.
func incAnalyzer() *Analyzer {
	a := &Analyzer{Name: "maporder", Doc: "test double reporting every IncDecStmt"}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if inc, ok := n.(*ast.IncDecStmt); ok {
					pass.Reportf(inc.Pos(), "inc")
				}
				return true
			})
		}
		return nil
	}
	return a
}

// runOn type-checks src under the given filename and runs the inc test
// double through the full Run pipeline (test-file filtering, suppression,
// sorting).
func runOn(t *testing.T, filename, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	diags, err := Run(fset, []*ast.File{f}, pkg, info, []*Analyzer{incAnalyzer()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func TestAllowSuppressionAndMalformedAllows(t *testing.T) {
	src := `package p

func f() {
	x := 0
	x++
	//lint:allow maporder order-insensitive by construction
	x++
	x++ //lint:allow maporder order-insensitive by construction
	//lint:allow maporder
	x++
	//lint:allow bogus some reason
	x++
	//lint:allow
	x++
	_ = x
}
`
	diags := runOn(t, "p.go", src)
	want := []struct {
		line     int
		analyzer string
		contains string
	}{
		{5, "maporder", "inc"},              // no allow anywhere near
		{9, "lintallow", "needs a reason"},  // bare analyzer, no reason
		{10, "maporder", "inc"},             // the reasonless allow must not suppress
		{11, "lintallow", "known analyzer"}, // "bogus" is not an analyzer
		{12, "maporder", "inc"},
		{13, "lintallow", "known analyzer"}, // no analyzer at all
		{14, "maporder", "inc"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.contains) {
			t.Errorf("diag %d = line %d %s %q; want line %d %s containing %q",
				i, d.Pos.Line, d.Analyzer, d.Message, w.line, w.analyzer, w.contains)
		}
	}
	// Lines 7 (allow above) and 8 (allow on the line) must be silent.
	for _, d := range diags {
		if d.Pos.Line == 7 || d.Pos.Line == 8 {
			t.Errorf("suppressed line %d still reported: %v", d.Pos.Line, d)
		}
	}
}

func TestTestFilesAreSkipped(t *testing.T) {
	src := `package p

func f() {
	x := 0
	x++
	_ = x
}
`
	if diags := runOn(t, "p_test.go", src); len(diags) != 0 {
		t.Fatalf("diagnostics reported in a _test.go file: %v", diags)
	}
}
