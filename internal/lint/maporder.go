package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for … range m` over a map when the loop body lets
// iteration order escape into the simulation. Go randomizes map iteration
// per run, so a body that schedules timers, appends to a metrics series,
// calls cluster/netsim/engine mutators, or accumulates floating point in
// map order produces a different event sequence every run — the exact bug
// class fixed by hand in PR 1 (scaling batch construction) and PR 2
// (CloseAllSuspensions curve appends). The sanctioned idiom is
// collect-and-sort: range the map only to gather keys into a slice, sort
// it, then range the slice. A body is therefore safe when it only
// assigns/appends into locals, folds exactly-representable values, or
// tests membership; it is flagged when it
//
//   - calls any function or method that is not a builtin, a conversion, or
//     a known-pure helper (strings/strconv/math/sort/fmt.Sprintf-style
//     value producers, simtime arithmetic) — an opaque call is assumed to
//     observe order;
//   - sends on a channel, spawns a goroutine, or defers in map order;
//   - returns a value derived from the iteration variables (an arbitrary
//     pick);
//   - accumulates into a floating-point variable declared outside the loop
//     (FP addition does not commute in the low bits).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body side-effects the simulation without collect-and-sort; map order must never reach the event stream",
	Run:  runMapOrder,
}

// pureStdlibPkgs are packages whose exported functions only compute values.
// A call into one of these inside a map range cannot observe iteration
// order. "sort" and "slices" qualify because sorting a local collection
// erases whatever insertion order produced it.
var pureStdlibPkgs = map[string]bool{
	"strings":      true,
	"strconv":      true,
	"math":         true,
	"math/bits":    true,
	"math/cmplx":   true,
	"unicode":      true,
	"unicode/utf8": true,
	"errors":       true,
	"sort":         true,
	"slices":       true,
	"maps":         true,
	"cmp":          true,
	"bytes":        true,
	"path":         true,
	"regexp":       true,
	"time":         true, // conversions and Duration/Time arithmetic; clock reads are nowallclock's job
}

// pureFmtFuncs are the value-producing fmt functions. The printing ones
// (Print*, Fprint*) write to a stream in iteration order and stay flagged.
var pureFmtFuncs = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
}

// pureSimtimeMethods are the value-receiver arithmetic helpers on
// simtime.Time/Duration. Timer.Cancel also has a value receiver but
// mutates the scheduler, so purity is decided by name, not receiver kind.
var pureSimtimeMethods = map[string]bool{
	"Add":     true,
	"Sub":     true,
	"Millis":  true,
	"Seconds": true,
	"String":  true,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pos, what := orderSensitiveEffect(pass, rs); what != "" {
				// Anchor the report on the range statement — that is where
				// the collect-and-sort fix goes and where an //lint:allow
				// comment is expected — and point at the effect by line.
				pass.Reportf(rs.For, "map iteration order reaches the simulation: %s (line %d); collect the keys, sort, then range the slice (see PR 1/2 map-order fixes)", what, pass.Fset.Position(pos).Line)
			}
			return true
		})
	}
	return nil
}

// orderSensitiveEffect scans a map-range body for the first construct that
// lets iteration order escape, returning its position and a description,
// or "" if the body is order-safe.
func orderSensitiveEffect(pass *Pass, rs *ast.RangeStmt) (token.Pos, string) {
	loopVars := rangeVars(pass.TypesInfo, rs)
	// Returns inside closures do not exit the loop; record closure extents
	// so the arbitrary-pick rule skips them. Calls and sends inside a
	// closure still run (or are registered) per map entry and stay flagged.
	var closures []*ast.FuncLit
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			closures = append(closures, fl)
		}
		return true
	})
	inClosure := func(p token.Pos) bool {
		for _, fl := range closures {
			if fl.Pos() <= p && p <= fl.End() {
				return true
			}
		}
		return false
	}
	var pos token.Pos
	var what string
	found := func(p token.Pos, format string, args ...any) {
		if what == "" {
			pos, what = p, fmt.Sprintf(format, args...)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc := impureCall(pass, n); desc != "" {
				found(n.Pos(), "%s", desc)
			}
		case *ast.SendStmt:
			found(n.Arrow, "channel send inside the loop delivers in map order")
		case *ast.GoStmt:
			found(n.Go, "goroutine launched per map entry starts in map order")
		case *ast.DeferStmt:
			found(n.Defer, "defer inside the loop runs in (reverse) map order")
		case *ast.ReturnStmt:
			if inClosure(n.Return) {
				break
			}
			for _, res := range n.Results {
				if usesAny(pass.TypesInfo, res, loopVars) {
					found(n.Return, "return of a loop variable picks an arbitrary map entry")
					break
				}
			}
		case *ast.AssignStmt:
			if desc := floatAccumulation(pass, rs, n); desc != "" {
				found(n.TokPos, "%s", desc)
			}
		}
		return true
	})
	return pos, what
}

// rangeVars collects the objects bound to the range's key and value.
func rangeVars(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// usesAny reports whether expr references any of the given objects.
func usesAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	used := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			used = true
		}
		return !used
	})
	return used
}

// impureCall classifies a call inside a map-range body. It returns "" for
// calls that provably cannot observe iteration order (builtins,
// conversions, known-pure helpers) and a description for everything else.
func impureCall(pass *Pass, call *ast.CallExpr) string {
	info := pass.TypesInfo
	// Type conversions produce values.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return ""
	}
	callee := typeutilCallee(info, call)
	switch fn := callee.(type) {
	case *types.Builtin:
		return "" // append/len/delete/copy/… act on operands the caller controls
	case *types.Func:
		pkg := fn.Pkg()
		if pkg == nil {
			return "" // error.Error and friends from the universe scope
		}
		sig, _ := fn.Type().(*types.Signature)
		isMethod := sig != nil && sig.Recv() != nil
		switch {
		case pureStdlibPkgs[pkg.Path()]:
			return ""
		case pkg.Path() == "fmt" && pureFmtFuncs[fn.Name()]:
			return ""
		case isSimtimePkgForPurity(pkg.Path()) && isMethod && pureSimtimeMethods[fn.Name()]:
			return ""
		}
		if isMethod {
			// Qualify foreign receiver types by package name, not import
			// path: diagnostics read like the source does.
			qual := func(p *types.Package) string {
				if p == pass.Pkg {
					return ""
				}
				return p.Name()
			}
			recv := sig.Recv().Type()
			return fmt.Sprintf("call to (%s).%s runs per map entry", types.TypeString(recv, qual), fn.Name())
		}
		return fmt.Sprintf("call to %s.%s runs per map entry", pkg.Name(), fn.Name())
	case nil:
		// A dynamic call: a closure, function value, or field. Its body is
		// out of reach, so assume it observes order.
		return "dynamic call runs per map entry"
	default:
		return "dynamic call runs per map entry"
	}
}

func isSimtimePkgForPurity(path string) bool {
	return isSimtimePkg(path) || path == "simtime"
}

// typeutilCallee resolves the called function or builtin, mirroring
// x/tools' typeutil.Callee on the stdlib only.
func typeutilCallee(info *types.Info, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	case *ast.IndexExpr:
		// Generic instantiation f[T](…).
		if id, ok := fun.X.(*ast.Ident); ok {
			return info.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return info.Uses[id]
		}
	}
	return nil
}

// floatAccumulation flags `x += v` (or -=, *=, /=) where x is a
// floating-point variable declared outside the loop: FP addition is not
// associative, so folding map-ordered values drifts in the low bits.
// Integer folds commute exactly and stay legal.
func floatAccumulation(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	if len(as.Lhs) != 1 {
		return ""
	}
	lhs := as.Lhs[0]
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return ""
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return ""
	}
	// An accumulator declared inside the loop resets every iteration and
	// cannot carry order across entries.
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if rs.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.Body.End() {
				return ""
			}
		}
	}
	return fmt.Sprintf("floating-point accumulation (%s) folds values in map order and drifts in the low bits", as.Tok)
}
