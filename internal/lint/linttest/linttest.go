// Package linttest is a hermetic, stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest for the drrs lint suite. A
// test points it at a package under testdata/src (GOPATH-style layout);
// the harness parses and type-checks it, runs one analyzer through the
// same lint.Run pipeline the vettool driver uses (so //lint:allow
// suppression behaves identically), and compares the diagnostics against
// `// want "regexp"` comments in the sources.
//
// Imports resolve inside testdata/src only: stdlib packages the fixtures
// need ("time", "math/rand", "sync/atomic", …) are stubbed there, which
// keeps the tests independent of GOROOT layout and fast. A fixture import
// with no stub fails loudly.
//
// A want comment holds one or more quoted regular expressions and binds to
// the line it sits on:
//
//	rand.Intn(6) // want `global math/rand`
//	x := rand.New(rand.NewSource(1)) // want "ad-hoc rand.New" "ad-hoc rand.NewSource"
//
// Every diagnostic must match an unconsumed want on its line and every
// want must be consumed, or the test fails.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"drrs/internal/lint"
)

// Run loads testdata/src/<pkgPath> beneath dir, applies the analyzer, and
// checks its diagnostics against the package's want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	l := &loader{
		fset: token.NewFileSet(),
		src:  filepath.Join(dir, "src"),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
		pkgs:  make(map[string]*types.Package),
		files: make(map[string][]*ast.File),
	}
	pkg, err := l.Import(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	files := l.files[pkgPath]
	diags, err := lint.Run(l.fset, files, pkg, l.info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgPath, err)
	}
	wants, err := collectWants(l.fset, files)
	if err != nil {
		t.Fatalf("parse want comments in %s: %v", pkgPath, err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

type loader struct {
	fset  *token.FileSet
	src   string
	info  *types.Info
	pkgs  map[string]*types.Package
	files map[string][]*ast.File
}

// Import loads and type-checks the testdata package at path, memoized.
// It is both the harness entry point and the types.Importer fixtures
// resolve through, so stubs and fixtures share one loading path.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("import %q: no testdata stub: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("import %q: no .go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %q: %v", path, err)
	}
	l.pkgs[path] = pkg
	l.files[path] = files
	return pkg, nil
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

const wantPrefix = "// want "

// collectWants extracts the expectations from every file's comments,
// keyed by "filename:line".
func collectWants(fset *token.FileSet, files []*ast.File) (map[string][]*want, error) {
	wants := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, wantPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, wantPrefix))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want pattern %q (quote each regexp)", pos, rest)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", pos, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad regexp %q: %v", pos, pat, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &want{re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants, nil
}
