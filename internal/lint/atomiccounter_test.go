package lint_test

import (
	"testing"

	"drrs/internal/lint"
	"drrs/internal/lint/linttest"
)

func TestAtomicCounter(t *testing.T) {
	linttest.Run(t, "testdata", lint.AtomicCounter, "counters")
}
