// Package lint implements drrs's determinism analyzers: machine-checked
// versions of the invariants that every golden digest, chaos scenario, and
// policy comparison in this repo rests on. The simulator must be bit-for-bit
// deterministic for a given seed, which bans three habits that are harmless
// in ordinary Go programs — reading the wall clock, drawing from the shared
// math/rand source, and letting map iteration order leak into simulation
// effects — and requires that counters shared with the parallel runner stay
// behind sync/atomic.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built purely on the standard library so
// the repo stays dependency-free: cmd/drrs-lint drives it through `go vet
// -vettool`, and linttest drives it over golden testdata packages.
//
// Suppression: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it silences that analyzer
// there. The reason is mandatory; a bare allow is itself reported. Allows
// are for sites where the rule is satisfied in a way the analyzer cannot
// see (e.g. wall-clock use in the bench runner's wall-budget reporting,
// which never feeds simulation time) — true violations must be fixed, not
// allowed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one determinism rule. Run inspects a type-checked package
// and reports violations through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the analysis. It reports findings via Pass.Reportf and
	// returns an error only for internal failures, not for violations.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation, already resolved to a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full determinism suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{NoWallClock, NoSharedRand, MapOrder, AtomicCounter}
}

// Run applies the analyzers to one type-checked package and returns the
// surviving diagnostics sorted by position. Test files (*_test.go) are
// excluded: tests assert on outcomes, they do not generate simulation
// events, so wall-clock deadlines and ad-hoc randomness are fine there.
// //lint:allow suppressions are applied here so every driver (vettool,
// linttest) shares identical semantics; malformed allows are reported as
// diagnostics in their own right.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	kept := files[:0:0]
	for _, f := range files {
		name := fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     kept,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	allows, bad := collectAllows(fset, kept)
	var out []Diagnostic
	for _, d := range diags {
		if allows.covers(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowSet records, per file and line, which analyzers an //lint:allow
// comment on that line silences.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	// The allow may sit on the flagged line itself or on the line above.
	return lines[d.Pos.Line][d.Analyzer] || lines[d.Pos.Line-1][d.Analyzer]
}

const allowPrefix = "//lint:allow"

// collectAllows parses //lint:allow comments from the files. A malformed
// allow (no analyzer, unknown analyzer, or missing reason) is returned as a
// diagnostic so it fails the build instead of silently not suppressing.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	allows := make(allowSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0 || !known[fields[0]]:
					bad = append(bad, Diagnostic{
						Analyzer: "lintallow",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed %s: want %q with a known analyzer (%s)", allowPrefix, allowPrefix+" <analyzer> <reason>", strings.Join(analyzerNames(), ", ")),
					})
				case len(fields) < 2:
					bad = append(bad, Diagnostic{
						Analyzer: "lintallow",
						Pos:      pos,
						Message:  fmt.Sprintf("%s %s needs a reason: say why this site cannot perturb the simulation", allowPrefix, fields[0]),
					})
				default:
					lines := allows[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						allows[pos.Filename] = lines
					}
					names := lines[pos.Line]
					if names == nil {
						names = make(map[string]bool)
						lines[pos.Line] = names
					}
					names[fields[0]] = true
				}
			}
		}
	}
	return allows, bad
}

func analyzerNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// pkgNameOf resolves the base of a selector expression to an imported
// package, or nil if the selector is not a package-qualified reference
// (e.g. a field or method access). Shadowed package identifiers resolve
// correctly because the lookup goes through the type checker, not the
// import table.
func pkgNameOf(info *types.Info, expr ast.Expr) *types.PkgName {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}
