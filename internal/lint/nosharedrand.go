package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoSharedRand forbids the shared math/rand source and ad-hoc generators.
// Every random draw in a simulation must come from a named simtime RNG
// stream (simtime.NewRNG(seed, "component")): the top-level rand functions
// share one process-global source, so any draw from them entangles
// components and makes the sequence depend on goroutine interleaving under
// the parallel runner; an ad-hoc rand.New hides its seed from the
// scenario's seed plumbing. Constructors (rand.New, rand.NewSource, …) are
// legal only inside internal/simtime, where the streams are minted. Method
// calls on a *rand.Rand value are always fine — the value reached the
// caller through a named stream.
var NoSharedRand = &Analyzer{
	Name: "nosharedrand",
	Doc:  "forbid global math/rand functions everywhere and rand.New outside internal/simtime; randomness must flow through named simtime RNG streams",
	Run:  runNoSharedRand,
}

// randConstructors may be called only inside internal/simtime.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// isSimtimePkg reports whether the package being analyzed is the RNG-stream
// factory itself (suffix match so linttest's fake module layout qualifies).
func isSimtimePkg(path string) bool {
	return path == "internal/simtime" || strings.HasSuffix(path, "/internal/simtime")
}

func runNoSharedRand(pass *Pass) error {
	inSimtime := isSimtimePkg(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pass.TypesInfo, sel.X)
			if pn == nil || !isRandPkg(pn.Imported().Path()) {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true // a type or constant reference, e.g. rand.Rand
			}
			switch {
			case randConstructors[fn.Name()]:
				if !inSimtime {
					pass.Reportf(sel.Pos(), "ad-hoc rand.%s outside internal/simtime hides its seed from scenario plumbing; derive a named stream with simtime.NewRNG(seed, %q)", fn.Name(), "component")
				}
			default:
				pass.Reportf(sel.Pos(), "rand.%s draws from the process-global math/rand source, which is shared across goroutines and seeds; draw from a named simtime RNG stream instead", fn.Name())
			}
			return true
		})
	}
	return nil
}
