package lint

import (
	"go/ast"
)

// NoWallClock forbids reading the wall clock in simulation code. Simulated
// time must come from a simtime.Scheduler: a single time.Now() in a hot
// path silently couples outcomes to host speed, destroying bit-for-bit
// reproducibility across machines and runs. Formatting helpers
// (time.Duration, time.ParseDuration, constants) stay legal — they compute
// on values, they do not observe the clock. The bench runner's wall-budget
// reporting (wall-time columns in figures, report timestamps) is the one
// legitimate consumer of real time and carries //lint:allow nowallclock
// comments at each site.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid wall-clock reads (time.Now, time.Since, time.Sleep, timers) in simulation code; virtual time must come from simtime",
	Run:  runNoWallClock,
}

// wallClockFuncs are the package-level functions of "time" that observe or
// wait on the host clock. Everything else in "time" (conversions, parsing,
// constants, types) is pure and allowed.
var wallClockFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"Tick":      "creates a wall-clock ticker",
	"After":     "creates a wall-clock timer",
	"AfterFunc": "creates a wall-clock timer",
	"NewTimer":  "creates a wall-clock timer",
	"NewTicker": "creates a wall-clock ticker",
}

func runNoWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pass.TypesInfo, sel.X)
			if pn == nil || pn.Imported().Path() != "time" {
				return true
			}
			if what, bad := wallClockFuncs[sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(), "time.%s %s; simulation time must come from the simtime.Scheduler (use sched.Now/At/After)", sel.Sel.Name, what)
			}
			return true
		})
	}
	return nil
}
