package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicCounter flags mixed atomic/plain access to package-level counters.
// The parallel runner executes scenario replicas on a worker pool, so a
// package-level counter touched from simulation code is shared across
// goroutines; once any site uses sync/atomic on it, every other read or
// write must too — a plain `x++` next to `atomic.AddUint64(&x, 1)` is a
// data race and, worse, a nondeterminism source that only shows up under
// -parallel (the PR 2 scaleIDs bug: ID allocation raced, renaming scale
// operations between runs). Counters wrapped in the typed atomics
// (atomic.Uint64 & co.) cannot be misused this way and are not flagged.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc:  "flag plain reads/writes of package-level counters that are accessed via sync/atomic elsewhere in the package",
	Run:  runAtomicCounter,
}

func runAtomicCounter(pass *Pass) error {
	counters := packageLevelIntVars(pass)
	if len(counters) == 0 {
		return nil
	}
	type use struct {
		pos    token.Pos
		write  bool
		atomic bool
	}
	uses := make(map[*types.Var][]use)
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || !counters[v] {
				return true
			}
			uses[v] = append(uses[v], use{
				pos:    id.Pos(),
				write:  isWriteUse(id, stack),
				atomic: isAtomicUse(pass.TypesInfo, stack),
			})
			return true
		})
	}
	// Walk the counters in declaration order so diagnostics come out
	// deterministically — the suite must satisfy its own maporder rule.
	ordered := make([]*types.Var, 0, len(uses))
	for v := range uses {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
	for _, v := range ordered {
		us := uses[v]
		hasAtomic := false
		for _, u := range us {
			if u.atomic {
				hasAtomic = true
				break
			}
		}
		if !hasAtomic {
			continue
		}
		for _, u := range us {
			if u.atomic {
				continue
			}
			verb := "read"
			if u.write {
				verb = "write"
			}
			pass.Reportf(u.pos, "plain %s of package-level counter %s, which is accessed via sync/atomic elsewhere; this races under the parallel runner — use atomic.Load/Add or the typed atomics", verb, v.Name())
		}
	}
	return nil
}

// packageLevelIntVars collects the package-scope variables of plain integer
// type — candidate counters. Typed atomics (atomic.Int64 …) are excluded by
// construction since their underlying type is a struct.
func packageLevelIntVars(pass *Pass) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok {
			continue
		}
		basic, ok := v.Type().Underlying().(*types.Basic)
		if !ok || basic.Info()&(types.IsInteger|types.IsUnsigned) == 0 {
			continue
		}
		vars[v] = true
	}
	return vars
}

// isAtomicUse reports whether the identifier at the top of the stack is
// used as `&x` directly inside a call to a sync/atomic function.
func isAtomicUse(info *types.Info, stack []ast.Node) bool {
	// stack: … CallExpr UnaryExpr(&) Ident
	if len(stack) < 3 {
		return false
	}
	un, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := typeutilCallee(info, call).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isWriteUse reports whether the identifier is assigned to (including
// compound assignment and ++/--).
func isWriteUse(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == ast.Expr(id) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return parent.X == ast.Expr(id)
	}
	return false
}
