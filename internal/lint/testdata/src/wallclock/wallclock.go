// Package wallclock exercises the nowallclock analyzer: clock reads and
// timer constructions are flagged, pure time arithmetic is not.
package wallclock

import (
	"time"
	wall "time"
)

func bad() {
	_ = time.Now()                             // want `time\.Now reads the wall clock`
	_ = time.Since(time.Time{})                // want `time\.Since reads the wall clock`
	_ = time.Until(time.Time{})                // want `time\.Until reads the wall clock`
	time.Sleep(time.Second)                    // want `time\.Sleep blocks on the wall clock`
	_ = time.Tick(time.Second)                 // want `time\.Tick creates a wall-clock ticker`
	_ = time.After(time.Second)                // want `time\.After creates a wall-clock timer`
	_ = time.NewTimer(time.Second)             // want `time\.NewTimer creates a wall-clock timer`
	_ = time.NewTicker(time.Second)            // want `time\.NewTicker creates a wall-clock ticker`
	_ = time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc creates a wall-clock timer`
	_ = wall.Now()                             // want `time\.Now reads the wall clock`
}

func good() {
	d, _ := time.ParseDuration("5ms") // parsing computes a value, it does not observe the clock
	_ = d.Seconds()
	_ = time.Duration(42)
	_ = time.Millisecond
	var t0 time.Time
	_ = t0.Add(d) // Time arithmetic on values is pure
}

type fake struct{}

func (fake) Now() int { return 0 }

func shadowed() int {
	time := fake{}    // a local identifier shadowing the package
	return time.Now() // resolves to fake.Now, not the clock
}
