package wallclock

import "time"

// wallBudget is the sanctioned exception shape: the bench runner measuring
// host time around a finished simulation. Both allow placements — same
// line and line above — must suppress.
func wallBudget() time.Duration {
	t0 := time.Now() //lint:allow nowallclock measures the host wall budget around a finished run
	//lint:allow nowallclock measures the host wall budget around a finished run
	d := time.Since(t0)
	return d
}
