// Package counters exercises the atomiccounter analyzer: a package-level
// integer touched via sync/atomic anywhere must be atomic everywhere.
package counters

import "sync/atomic"

var scaleIDs uint64 // mixed atomic/plain: every plain use below is flagged

var plainOnly uint64 // never touched atomically; plain uses stay legal

var typedID atomic.Uint64 // typed atomics carry the discipline in the type

func nextID() uint64 {
	return atomic.AddUint64(&scaleIDs, 1)
}

func bad() uint64 {
	scaleIDs++      // want `plain write of package-level counter scaleIDs`
	scaleIDs = 0    // want `plain write of package-level counter scaleIDs`
	return scaleIDs // want `plain read of package-level counter scaleIDs`
}

func good() uint64 {
	plainOnly++
	local := plainOnly
	local++
	typedID.Add(1)
	_ = typedID.Load()
	return atomic.LoadUint64(&scaleIDs) + local
}
