// Package time is a minimal stub of the standard library's time package:
// the analyzers match on import path and symbol name, so fixtures stay
// hermetic (no GOROOT typechecking) by resolving against this.
package time

type Time struct{ ns int64 }

type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

type Timer struct{ C <-chan Time }

type Ticker struct{ C <-chan Time }

func Now() Time                                { return Time{} }
func Since(t Time) Duration                    { return 0 }
func Until(t Time) Duration                    { return 0 }
func Sleep(d Duration)                         {}
func Tick(d Duration) <-chan Time              { return nil }
func After(d Duration) <-chan Time             { return nil }
func AfterFunc(d Duration, f func()) *Timer    { return nil }
func NewTimer(d Duration) *Timer               { return nil }
func NewTicker(d Duration) *Ticker             { return nil }
func ParseDuration(s string) (Duration, error) { return 0, nil }

func (t Time) Add(d Duration) Time  { return t }
func (t Time) Sub(u Time) Duration  { return 0 }
func (d Duration) Seconds() float64 { return 0 }
func (d Duration) String() string   { return "" }
