// Package sort is a minimal stub of sort for hermetic analyzer tests.
package sort

func Ints(x []int)                          {}
func Strings(x []string)                    {}
func Slice(x any, less func(i, j int) bool) {}
