// Package atomic is a minimal stub of sync/atomic for hermetic analyzer
// tests.
package atomic

func AddUint64(addr *uint64, delta uint64) uint64             { return 0 }
func LoadUint64(addr *uint64) uint64                          { return 0 }
func StoreUint64(addr *uint64, val uint64)                    {}
func AddInt64(addr *int64, delta int64) int64                 { return 0 }
func LoadInt64(addr *int64) int64                             { return 0 }
func StoreInt64(addr *int64, val int64)                       {}
func CompareAndSwapUint64(addr *uint64, old, new uint64) bool { return false }

type Uint64 struct{ v uint64 }

func (x *Uint64) Load() uint64            { return 0 }
func (x *Uint64) Add(delta uint64) uint64 { return 0 }
func (x *Uint64) Store(val uint64)        {}
