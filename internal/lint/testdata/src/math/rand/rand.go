// Package rand is a minimal stub of math/rand for hermetic analyzer tests.
package rand

type Source interface {
	Int63() int64
	Seed(seed int64)
}

type Rand struct{}

func New(src Source) *Rand        { return &Rand{} }
func NewSource(seed int64) Source { return nil }

func Int() int                           { return 0 }
func Intn(n int) int                     { return 0 }
func Int63() int64                       { return 0 }
func Int63n(n int64) int64               { return 0 }
func Float64() float64                   { return 0 }
func ExpFloat64() float64                { return 0 }
func NormFloat64() float64               { return 0 }
func Perm(n int) []int                   { return nil }
func Seed(seed int64)                    {}
func Shuffle(n int, swap func(i, j int)) {}

func (r *Rand) Int() int             { return 0 }
func (r *Rand) Intn(n int) int       { return 0 }
func (r *Rand) Int63n(n int64) int64 { return 0 }
func (r *Rand) Float64() float64     { return 0 }
func (r *Rand) Perm(n int) []int     { return nil }
