// Package simtime stands in for drrs's internal/simtime: the one place
// allowed to mint rand generators (its path ends in internal/simtime).
// Global draws stay illegal even here.
package simtime

import "math/rand"

type RNG struct{ *rand.Rand }

// NewRNG may construct generators: this package is the stream factory.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed))}
}

func bad() int64 {
	return rand.Int63() // want `rand\.Int63 draws from the process-global`
}
