// Package sharedrand exercises the nosharedrand analyzer outside
// internal/simtime: global draws and ad-hoc constructors are flagged,
// method calls on an injected stream are not.
package sharedrand

import "math/rand"

func bad() {
	_ = rand.Int()                     // want `rand\.Int draws from the process-global`
	_ = rand.Intn(6)                   // want `rand\.Intn draws from the process-global`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-global`
	rand.Seed(42)                      // want `rand\.Seed draws from the process-global`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global`
	r := rand.New(rand.NewSource(1))   // want `ad-hoc rand\.New outside` `ad-hoc rand\.NewSource outside`
	_ = r
}

// good receives a stream minted by simtime: method calls draw from that
// named stream, which is exactly the discipline the analyzer enforces.
func good(r *rand.Rand) int {
	_ = r.Float64()
	_ = r.Perm(4)
	var _ rand.Source // type references are fine
	return r.Intn(6)
}
