// Package mapord exercises the maporder analyzer: map-range bodies whose
// effects observe iteration order are flagged; collect-and-sort and pure
// folds are not.
package mapord

import (
	"fmt"
	"sort"

	"mapord/internal/simtime"
)

func touch(int) {}

func callsOut(m map[int]int) {
	for k := range m { // want `call to mapord\.touch runs per map entry`
		touch(k)
	}
}

type series struct{ xs []float64 }

func (s *series) Append(x float64) { s.xs = append(s.xs, x) }

func methodCall(m map[int]float64, s *series) {
	for _, v := range m { // want `call to \(\*series\)\.Append runs per map entry`
		s.Append(v)
	}
}

func schedule(m map[int]simtime.Duration, sched *simtime.Scheduler) {
	for _, d := range m { // want `call to \(\*simtime\.Scheduler\)\.After runs per map entry`
		sched.After(d, func() {})
	}
}

func emit(m map[int]int, ch chan int) {
	for k := range m { // want `channel send inside the loop delivers in map order`
		ch <- k
	}
}

func spawn(m map[int]int) {
	for k := range m { // want `goroutine launched per map entry starts in map order`
		go touch(k)
	}
}

func deferred(m map[int]int) {
	for k := range m { // want `defer inside the loop runs in \(reverse\) map order`
		defer touch(k)
	}
}

func dynamic(m map[int]int, fn func(int)) {
	for k := range m { // want `dynamic call runs per map entry`
		fn(k)
	}
}

func pick(m map[int]int) int {
	for k := range m { // want `return of a loop variable picks an arbitrary map entry`
		return k
	}
	return 0
}

func sums(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `floating-point accumulation \(\+=\) folds values in map order`
		sum += v
	}
	return sum
}

// collectAndSort is the sanctioned idiom: the map range only gathers keys,
// the effectful loop runs over the sorted slice.
func collectAndSort(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// total folds integers, which commute exactly.
func total(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// format writes into another map keyed identically; fmt.Sprintf is a pure
// value producer.
func format(m map[int]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[k] = fmt.Sprintf("%d", v)
	}
	return out
}

// pureSimtime uses a conversion and a value-receiver arithmetic method.
func pureSimtime(m map[int]int64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		d := simtime.Duration(v)
		out[k] = d.Millis()
	}
	return out
}

// anyNegative computes an order-insensitive predicate.
func anyNegative(m map[int]int) bool {
	neg := false
	for _, v := range m {
		if v < 0 {
			neg = true
		}
	}
	return neg
}

// perEntry accumulates into a float declared inside the loop body, which
// resets each iteration and cannot carry order across entries.
func perEntry(m map[int][]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, vs := range m {
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

// allowed shows the suppression path for a deliberate exception.
func allowed(m map[int]int) {
	//lint:allow maporder touch is order-insensitive here; documented exception
	for k := range m {
		touch(k)
	}
}
