// Package simtime is a miniature of drrs's internal/simtime for the
// maporder fixtures: Duration arithmetic is pure, Scheduler.After is a
// scheduling side effect.
package simtime

type Duration int64

func (d Duration) Millis() float64 { return float64(d) / 1e6 }

type Scheduler struct{ n int }

func (s *Scheduler) After(d Duration, fn func()) { s.n++ }
