// Package allowsyntax checks that a well-formed //lint:allow for one
// analyzer does not silence another. The malformed-allow diagnostics
// (missing reason, unknown analyzer) are covered white-box in
// lint_test.go, since they anchor on the comment's own line, which
// cannot also carry an expectation comment.
package allowsyntax

import "time"

func wrongAnalyzer() time.Time {
	//lint:allow maporder an allow for one analyzer must not silence another
	return time.Now() // want `time\.Now reads the wall clock`
}
