package lint_test

import (
	"testing"

	"drrs/internal/lint"
	"drrs/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrder, "mapord")
}
