package lint_test

import (
	"testing"

	"drrs/internal/lint"
	"drrs/internal/lint/linttest"
)

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock, "wallclock")
}

// TestNoWallClockAllowWrongAnalyzer checks that a well-formed allow for a
// different analyzer does not silence nowallclock.
func TestNoWallClockAllowWrongAnalyzer(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock, "allowsyntax")
}
