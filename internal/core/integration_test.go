package core

import (
	"testing"

	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/netsim"
	"drrs/internal/scaletest"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/state"
	"drrs/internal/workload"
)

// fig9Job builds a minimal src → agg(keyed, p=1) → sink job whose aggregator
// starts halted, so the test controls exactly where queued records and
// checkpoint burst-barriers sit when DRRS signals inject (the Fig 9 setup).
// burst records are ingested immediately at start.
func fig9Job(t *testing.T, burst int, inCap, outCap int) (*simtime.Scheduler, *engine.Runtime, *engine.CollectSink) {
	t.Helper()
	sink := engine.NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: func(ctx dataflow.SourceContext) {
			for i := 0; i < burst; i++ {
				ctx.Ingest(&netsim.Record{
					Key:       uint64(i) + 1,
					EventTime: ctx.Now(),
					Size:      64,
					Value:     1.0,
				})
			}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "agg", Parallelism: 1, KeyedInput: true, MaxKeyGroups: 8,
		CostPerRecord: 100 * simtime.Microsecond,
		NewLogic: func() dataflow.Logic {
			return &engine.KeyedReduceLogic{EmitUpdates: true}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "sink", Parallelism: 1,
		NewLogic: func() dataflow.Logic { return sink },
	})
	g.Connect("src", "agg", dataflow.ExchangeKeyed)
	g.Connect("agg", "sink", dataflow.ExchangeRebalance)
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{
		Seed: 9, EdgeInCap: inCap, EdgeOutCap: outCap, MarkerInterval: -1,
	})
	rt.Instance("agg", 0).Halted = true
	rt.Start()
	return s, rt, sink
}

// TestCheckpointIntegrationOutbox exercises Fig 9a: a checkpoint barrier is
// sitting in the predecessor's output cache when DRRS injects. Redirection
// must conclude at the barrier and the trigger/confirm must ride immediately
// behind it as an integrated signal.
func TestCheckpointIntegrationOutbox(t *testing.T) {
	// 30 records: ~8 reach the halted aggregator's input buffer, the rest
	// wait in the output cache with room to spare; the barrier queues behind
	// them there.
	s, rt, sink := fig9Job(t, 30, 8, 64)
	var ckptDone, scaleDone bool
	s.After(simtime.Ms(10), func() {
		rt.TriggerCheckpoint(func(int64) { ckptDone = true })
	})
	mech := New(FullDRRS())
	s.After(simtime.Ms(12), func() {
		plan := scaling.UniformPlan(rt.Graph, "agg", 2, simtime.Ms(1))
		mech.Start(rt, plan, func() { scaleDone = true })
	})
	s.After(simtime.Ms(20), func() {
		if got := rt.Scale.Counter("drrs_ckpt_integrated_outbox"); got == 0 {
			t.Error("barrier was in the outbox at injection but the Fig 9a path did not fire")
		}
		in := rt.Instance("agg", 0)
		in.Halted = false
		in.Wake()
	})
	s.Run()
	if !ckptDone {
		t.Fatal("checkpoint never completed")
	}
	if !scaleDone {
		t.Fatal("scaling never completed")
	}
	if sink.Records != 30 {
		t.Fatalf("sink saw %d records, want 30 (loss or duplication through the integrated path)", sink.Records)
	}
	if d := sink.Duplicates(); d != 0 {
		t.Fatalf("%d duplicates", d)
	}
}

// TestCheckpointIntegrationInbox exercises Fig 9b: the checkpoint barrier is
// already in the scaling instance's input buffer when the (priority) trigger
// barrier arrives. The trigger must integrate into the checkpoint barrier
// and take effect only after the snapshot.
func TestCheckpointIntegrationInbox(t *testing.T) {
	// Generous buffers: all 20 records and the barrier reach the halted
	// aggregator's input buffer before injection.
	s, rt, sink := fig9Job(t, 20, 64, 64)
	var ckptDone, scaleDone bool
	s.After(simtime.Ms(10), func() {
		rt.TriggerCheckpoint(func(int64) { ckptDone = true })
	})
	mech := New(FullDRRS())
	s.After(simtime.Ms(15), func() {
		plan := scaling.UniformPlan(rt.Graph, "agg", 2, simtime.Ms(1))
		mech.Start(rt, plan, func() { scaleDone = true })
	})
	s.After(simtime.Ms(25), func() {
		in := rt.Instance("agg", 0)
		in.Halted = false
		in.Wake()
	})
	s.Run()
	if got := rt.Scale.Counter("drrs_ckpt_integrated_inbox"); got == 0 {
		t.Fatal("barrier was in the input buffer at trigger arrival but the Fig 9b path did not fire")
	}
	if !ckptDone {
		t.Fatal("checkpoint never completed")
	}
	if !scaleDone {
		t.Fatal("scaling never completed — the integrated trigger was lost")
	}
	if sink.Records != 20 {
		t.Fatalf("sink saw %d records, want 20", sink.Records)
	}
}

func withUpdates(wl workload.Config) workload.Config {
	wl.EmitUpdates = true
	return wl
}

// TestSupersession exercises the paper's concurrent-request rule under
// scripted driving: a newer scaling request on the same operator terminates
// the older one mid-migration, and the superseding plan is computed from
// actual placement so nothing the cancelled operation already moved migrates
// twice. The whole exchange goes through the lifecycle Mechanism surface
// (Begin/Progress/Cancel) — the same path the reactive controller drives.
func TestSupersession(t *testing.T) {
	wl := scaletest.DefaultWorkload(82)
	wl.Duration = simtime.Sec(5)
	g, _ := workload.Build(withUpdates(wl))
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: wl.Seed})
	// Slow migration so the first scaling is mid-flight when superseded.
	rt.Cluster.Node("local").MigrationBandwidth = 1 << 20
	rt.Start()

	first := New(FullDRRS())
	var firstOp scaling.Operation
	var firstDone, secondDone bool
	var progressAtCancel scaling.Progress
	s.After(simtime.Sec(1), func() {
		firstOp = first.Begin(rt, scaling.UniformPlan(g, "agg", 6, simtime.Ms(20)), func() { firstDone = true })
		if ph := firstOp.Progress().Phase; ph != scaling.PhaseDeploy {
			t.Errorf("freshly begun operation reports phase %v, want deploy", ph)
		}
	})
	s.After(simtime.Sec(1)+simtime.Ms(80), func() {
		// Rapid load fluctuation: supersede 4→6 with →8. The rule is only
		// exercised if the cancellation lands mid-migration — some groups
		// moved, some not.
		progressAtCancel = firstOp.Progress()
		if !firstOp.Cancel() {
			t.Error("DRRS must honor cancellation")
		}
	})
	s.RunUntil(simtime.Time(simtime.Ms(1200)))
	// Wait for the first mechanism to drain its active subscales.
	for !first.Finished() && s.Step() {
	}
	if !first.Finished() {
		t.Fatal("cancelled mechanism never settled")
	}
	if progressAtCancel.Phase != scaling.PhaseMigrate ||
		progressAtCancel.Moved == 0 || progressAtCancel.Moved >= progressAtCancel.Total {
		t.Fatalf("cancellation did not land mid-migration: %+v (rig needs retuning)", progressAtCancel)
	}
	if pr := firstOp.Progress(); pr.Phase != scaling.PhaseDone || !pr.Cancelled {
		t.Fatalf("settled cancelled operation reports %+v", pr)
	}

	second := New(FullDRRS())
	plan2 := scaling.PlanFromPlacement(rt, "agg", 8, simtime.Ms(20))
	second.Begin(rt, plan2, func() { secondDone = true })
	s.RunUntil(simtime.Time(wl.Duration))
	rt.StopMarkers()
	s.Run()

	if !firstDone {
		t.Fatal("cancelled mechanism never reported completion")
	}
	if !secondDone {
		t.Fatal("superseding mechanism never completed")
	}
	// A group the first scaling already delivered to an instance that is
	// still its p=8 owner must not appear in the second plan (no redundant
	// migration).
	inPlan2 := map[int]bool{}
	for _, mv := range plan2.Moves {
		inPlan2[mv.KeyGroup] = true
	}
	spec := g.Operator("agg")
	for _, kg := range first.MigratedGroups() {
		if state.OwnerOf(spec.MaxKeyGroups, 8, kg) == first.moveOf[kg].To && inPlan2[kg] {
			t.Fatalf("kg %d already at its final owner but re-planned", kg)
		}
	}
	// Final placement: every key group at its p=8 contiguous owner.
	for _, in := range rt.Instances("agg") {
		for _, kg := range in.Store().Groups() {
			want := state.OwnerOf(spec.MaxKeyGroups, 8, kg)
			if want != in.Index && in.Store().Group(kg).Len() > 0 {
				t.Fatalf("kg %d at %s, want instance %d", kg, in.Name(), want)
			}
		}
	}
}
