package core

import (
	"sort"
)

// ScalingSnapshot captures a DRRS operation's progress for inclusion in a
// checkpoint, per the paper's §IV-C: "to handle potential scaling failures,
// DRRS incorporates scaling-related states, such as subscale progress and
// in-transit data, within snapshots". A recovered job restores the keyed
// state from the checkpoint and uses this record to decide which subscales
// must be re-driven (pending and in-flight ones) versus replayed as already
// complete.
type ScalingSnapshot struct {
	// ScaleID identifies the operation.
	ScaleID int64
	// Operator is the scaling operator.
	Operator string
	// NewParallelism is the target parallelism.
	NewParallelism int
	// Subscales records per-subscale progress.
	Subscales []SubscaleSnapshot
	// Finished marks a fully completed operation.
	Finished bool
	// Cancelled marks a superseded operation.
	Cancelled bool
}

// SubscaleSnapshot is one subscale's durable progress.
type SubscaleSnapshot struct {
	ID int
	// KeyGroups are the subscale's migrating groups, ascending.
	KeyGroups []int
	// Launched reports whether signals were injected.
	Launched bool
	// Completed reports chunks + confirms all accounted.
	Completed bool
	// MigratedGroups lists groups whose chunks have been installed at the
	// target (they need no re-migration after recovery).
	MigratedGroups []int
	// ConfirmsOutstanding counts confirm barriers still in flight — the
	// "in-transit data" a recovery must re-synthesize.
	ConfirmsOutstanding int
}

// Snapshot captures the operation's current progress. Returns the zero value
// if the mechanism has not started (or runs a coupled variant, which is
// barrier-synchronized and needs no extra state beyond the checkpoint).
func (m *Mechanism) Snapshot() ScalingSnapshot {
	if m.rt == nil {
		return ScalingSnapshot{}
	}
	snap := ScalingSnapshot{
		ScaleID:        m.scaleID,
		Operator:       m.op,
		NewParallelism: m.plan.NewParallelism,
		Finished:       m.finished,
		Cancelled:      m.cancelled,
	}
	for _, s := range m.subs {
		ss := SubscaleSnapshot{
			ID:                  s.id,
			Launched:            s.launched,
			Completed:           s.completed,
			ConfirmsOutstanding: s.confirmsLeft,
		}
		for kg := range s.kgs {
			ss.KeyGroups = append(ss.KeyGroups, kg)
			if m.chunkAt[kg] {
				ss.MigratedGroups = append(ss.MigratedGroups, kg)
			}
		}
		sort.Ints(ss.KeyGroups)
		sort.Ints(ss.MigratedGroups)
		snap.Subscales = append(snap.Subscales, ss)
	}
	sort.Slice(snap.Subscales, func(i, j int) bool {
		return snap.Subscales[i].ID < snap.Subscales[j].ID
	})
	return snap
}

// RemainingAfterRecovery derives the key groups a restarted scaling
// operation must still migrate, given the snapshot: everything the snapshot
// does not record as installed at its target.
func (s ScalingSnapshot) RemainingAfterRecovery() []int {
	migrated := map[int]bool{}
	var all []int
	for _, sub := range s.Subscales {
		all = append(all, sub.KeyGroups...)
		for _, kg := range sub.MigratedGroups {
			migrated[kg] = true
		}
	}
	var out []int
	for _, kg := range all {
		if !migrated[kg] {
			out = append(out, kg)
		}
	}
	sort.Ints(out)
	return out
}
