package core

import (
	"testing"

	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

func TestSnapshotBeforeStartIsZero(t *testing.T) {
	m := New(FullDRRS())
	if snap := m.Snapshot(); snap.ScaleID != 0 || len(snap.Subscales) != 0 {
		t.Fatalf("unstarted snapshot should be zero, got %+v", snap)
	}
}

func TestSnapshotMidScaling(t *testing.T) {
	wl := scaletestConfig(91)
	g, _ := workload.Build(wl)
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: wl.Seed})
	rt.Cluster.Node("local").MigrationBandwidth = 1 << 20 // slow: catch it mid-flight
	rt.Start()

	m := New(FullDRRS())
	var plan scaling.Plan
	s.After(simtime.Sec(1), func() {
		plan = scaling.UniformPlan(g, "agg", 6, simtime.Ms(20))
		m.Start(rt, plan, nil)
	})
	s.RunUntil(simtime.Time(simtime.Ms(1300)))

	snap := m.Snapshot()
	if snap.Operator != "agg" || snap.NewParallelism != 6 {
		t.Fatalf("snapshot header %+v", snap)
	}
	if snap.Finished {
		t.Fatal("slow migration should still be in flight at 1.3s")
	}
	var total, migrated int
	for _, sub := range snap.Subscales {
		total += len(sub.KeyGroups)
		migrated += len(sub.MigratedGroups)
	}
	if total != len(plan.Moves) {
		t.Fatalf("snapshot covers %d groups, plan has %d", total, len(plan.Moves))
	}
	remaining := snap.RemainingAfterRecovery()
	if len(remaining)+migrated != total {
		t.Fatalf("remaining %d + migrated %d != total %d", len(remaining), migrated, total)
	}
	if len(remaining) == 0 {
		t.Fatal("nothing remaining mid-flight — the snapshot caught a finished run; slow the cluster down")
	}

	// Run to completion: the final snapshot records everything migrated.
	s.RunUntil(simtime.Time(wl.Duration))
	rt.StopMarkers()
	s.Run()
	final := m.Snapshot()
	if !final.Finished {
		t.Fatal("scaling never finished")
	}
	if got := final.RemainingAfterRecovery(); len(got) != 0 {
		t.Fatalf("finished snapshot still reports %d remaining", len(got))
	}
	for _, sub := range final.Subscales {
		if !sub.Completed || sub.ConfirmsOutstanding != 0 {
			t.Fatalf("subscale %d not settled in final snapshot: %+v", sub.ID, sub)
		}
	}
}

func scaletestConfig(seed int64) workload.Config {
	return workload.Config{
		SourceParallelism: 2,
		AggParallelism:    4,
		MaxKeyGroups:      32,
		Keys:              200,
		RatePerSec:        2000,
		StateBytesPerKey:  2048,
		CostPerRecord:     50 * simtime.Microsecond,
		Duration:          simtime.Sec(4),
		EmitUpdates:       true,
		Seed:              seed,
	}
}
