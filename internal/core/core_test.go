package core

import (
	"testing"

	"drrs/internal/scaletest"
	"drrs/internal/scaling/otfs"
	"drrs/internal/simtime"
)

func execDRRS(seed int64, opt Options, tune func(*scaletest.Run)) scaletest.Result {
	r := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(seed),
		Mechanism:      New(opt),
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
	}
	if tune != nil {
		tune(&r)
	}
	return r.Execute()
}

func TestVariantsExactlyOnce(t *testing.T) {
	for _, v := range []string{"drrs", "dr", "schedule", "subscale"} {
		v := v
		t.Run(v, func(t *testing.T) {
			base := scaletest.Run{Workload: scaletest.DefaultWorkload(71)}.Execute()
			scaled := execDRRS(71, Variant(v), nil)
			if !scaled.Done {
				t.Fatal("scaling never completed")
			}
			if msg := scaletest.CheckExactlyOnce(base, scaled); msg != "" {
				t.Fatal(msg)
			}
			if msg := scaletest.CheckPlacement(scaled); msg != "" {
				t.Fatal(msg)
			}
			if msg := scaletest.CheckParticipation(scaled); msg != "" {
				t.Fatal(msg)
			}
		})
	}
}

func TestVariantsExactlyOnceUnderSlowMigration(t *testing.T) {
	// Slow migration stretches every protocol window (Ep re-routing, epoch
	// switching, suspension) — the regime where ordering bugs surface.
	for _, v := range []string{"drrs", "dr"} {
		v := v
		t.Run(v, func(t *testing.T) {
			wl := scaletest.DefaultWorkload(72)
			wl.RatePerSec = 6000
			base := scaletest.Run{Workload: wl}.Execute()
			scaled := execDRRS(72, Variant(v), func(r *scaletest.Run) {
				r.Workload = wl
				r.Cluster = scaletest.SlowMigrationCluster(2 << 20)
			})
			if !scaled.Done {
				t.Fatal("scaling never completed")
			}
			if msg := scaletest.CheckExactlyOnce(base, scaled); msg != "" {
				t.Fatal(msg)
			}
			if msg := scaletest.CheckPlacement(scaled); msg != "" {
				t.Fatal(msg)
			}
		})
	}
}

func TestSubscaleDivisionEmitsManySignals(t *testing.T) {
	scaled := execDRRS(73, FullDRRS(), nil)
	// 4→6 over 32 groups: multiple (src,dst) pairs, chunked ≤8 per subscale;
	// every subscale injects its own signal and first-migration marker.
	prop := scaled.RT.Scale.CumulativePropagationDelay()
	if prop <= 0 {
		t.Fatal("no propagation recorded")
	}
	m := scaled.Mech.(*Mechanism)
	if len(m.subs) < 2 {
		t.Fatalf("expected multiple subscales, got %d", len(m.subs))
	}
	for _, s := range m.subs {
		if !s.completed {
			t.Fatalf("subscale %d never completed", s.id)
		}
		if len(s.srcs) != 1 || len(s.dsts) != 1 {
			t.Fatalf("subscale %d spans %d srcs, %d dsts; divider should chunk per pair", s.id, len(s.srcs), len(s.dsts))
		}
	}
}

func TestSingleSubscaleWithoutDivision(t *testing.T) {
	scaled := execDRRS(74, Options{DR: true}, nil)
	m := scaled.Mech.(*Mechanism)
	if len(m.subs) != 1 {
		t.Fatalf("DR-only should run one subscale, got %d", len(m.subs))
	}
}

func TestTriggerBypassBeatsCoupledPropagation(t *testing.T) {
	// The trigger barrier's priority path should start migration far sooner
	// than a coupled, alignment-synchronized barrier under load: make the
	// pipeline busy so in-band barriers queue behind data.
	wl := scaletest.DefaultWorkload(75)
	wl.RatePerSec = 9000
	wl.CostPerRecord = 200 * simtime.Microsecond
	drrs := scaletest.Run{
		Workload: wl, Mechanism: New(Options{DR: true}),
		ScaleAt: simtime.Sec(1), NewParallelism: 6,
	}.Execute()
	coupled := scaletest.Run{
		Workload: wl, Mechanism: &otfs.Mechanism{Fluid: true},
		ScaleAt: simtime.Sec(1), NewParallelism: 6,
	}.Execute()
	if !drrs.Done || !coupled.Done {
		t.Fatal("runs did not complete")
	}
	dp := drrs.RT.Scale.CumulativePropagationDelay()
	cp := coupled.RT.Scale.CumulativePropagationDelay()
	if dp >= cp {
		t.Fatalf("DRRS propagation %v should beat coupled %v under load", dp, cp)
	}
}

func TestSchedulingReducesSuspension(t *testing.T) {
	// Record Scheduling's whole purpose: under slow migration, the full
	// system suspends far less than the DR-only variant on the same seed.
	mk := func(opt Options) simtime.Duration {
		wl := scaletest.DefaultWorkload(76)
		wl.RatePerSec = 6000
		res := scaletest.Run{
			Workload: wl, Mechanism: New(opt),
			ScaleAt: simtime.Sec(1), NewParallelism: 6,
			Cluster: scaletest.SlowMigrationCluster(1 << 20),
		}.Execute()
		if !res.Done {
			t.Fatal("run did not complete")
		}
		return res.RT.Scale.CumulativeSuspension()
	}
	full := mk(FullDRRS())
	drOnly := mk(Options{DR: true})
	if full >= drOnly {
		t.Fatalf("full DRRS suspension %v should beat DR-only %v", full, drOnly)
	}
}

func TestNodeConcurrencyRespected(t *testing.T) {
	// With NodeConcurrency=1 on a single node, subscales must serialize.
	opt := FullDRRS()
	opt.NodeConcurrency = 1
	opt.SubscaleKGs = 4
	scaled := execDRRS(77, opt, func(r *scaletest.Run) {
		r.Cluster = scaletest.SlowMigrationCluster(16 << 20)
	})
	if !scaled.Done {
		t.Fatal("never completed")
	}
	m := scaled.Mech.(*Mechanism)
	if len(m.subs) < 3 {
		t.Fatalf("want several subscales, got %d", len(m.subs))
	}
	if m.MaxActive > 1 {
		t.Fatalf("observed %d concurrent subscales with NodeConcurrency=1", m.MaxActive)
	}
}

func TestNames(t *testing.T) {
	cases := map[string]string{
		"drrs": "drrs", "dr": "drrs-dr", "schedule": "drrs-schedule", "subscale": "drrs-subscale",
	}
	for v, want := range cases {
		if got := New(Variant(v)).Name(); got != want {
			t.Fatalf("variant %s name %s", v, got)
		}
	}
}

func TestVariantPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Variant("bogus")
}
