package core

import (
	"drrs/internal/engine"
	"drrs/internal/netsim"
)

// SchedulingHandler is DRRS's Record Scheduling input handler (the paper's
// Scale Input Handler B1 plus Suspend Manager B3). It prevents processing
// suspensions through semantic-preserving adjustments of the engine-level
// execution order:
//
//   - Inter-channel Scheduling: when the current channel's head is
//     unprocessable, switch to any channel whose head is — legal because
//     cross-channel order is inherently non-deterministic.
//   - Intra-channel Scheduling: when every head is unprocessable, scan up
//     to Depth records deep (the paper's 200-record pre-serialized buffer)
//     and bypass unprocessable records — but never across a control message
//     (watermarks, checkpoint/scale/confirm barriers are fences, preserving
//     time semantics and epoch boundaries).
//
// Bypassing never reorders records of the same key: all records of a key
// group share processability, so a bypassed record and the record taken in
// its place are always from different groups.
//
// The instance suspends only when every queued record is unprocessable —
// exactly the paper's Suspend Manager rule.
type SchedulingHandler struct {
	// Depth bounds the intra-channel scan (default 200).
	Depth int
	rr    int
}

// Next implements engine.InputHandler.
func (h *SchedulingHandler) Next(in *engine.Instance) (netsim.Message, *netsim.Edge, engine.NextStatus) {
	ins := in.InEdges()
	n := len(ins)
	if n == 0 {
		return nil, nil, engine.NextIdle
	}
	depth := h.Depth
	if depth <= 0 {
		depth = 200
	}
	queued := false
	// Pass 1 — inter-channel: serve the first channel whose head is
	// processable, round-robin for fairness.
	for k := 0; k < n; k++ {
		h.rr = (h.rr + 1) % n
		e := ins[h.rr]
		if in.EdgeBlocked(e) || e.InboxLen() == 0 {
			continue
		}
		queued = true
		if in.CanProcess(e.InboxAt(0), e) {
			return e.PopInbox(), e, engine.NextOK
		}
	}
	if !queued {
		return nil, nil, engine.NextIdle
	}
	// Pass 2 — intra-channel: bypass unprocessable records up to the buffer
	// depth, fencing on control messages.
	for k := 0; k < n; k++ {
		e := ins[(h.rr+k)%n]
		if in.EdgeBlocked(e) {
			continue
		}
		limit := e.InboxLen()
		if limit > depth {
			limit = depth
		}
		for i := 1; i < limit; i++ {
			msg := e.InboxAt(i)
			if !isSchedulableData(msg) {
				break // fence: never cross control messages
			}
			if in.CanProcess(msg, e) {
				return e.RemoveInboxAt(i), e, engine.NextOK
			}
		}
	}
	return nil, nil, engine.NextSuspended
}

// isSchedulableData reports whether the intra-channel scan may hop over or
// take this message: data records (possibly rerouted) only.
func isSchedulableData(m netsim.Message) bool {
	switch v := m.(type) {
	case *netsim.Record:
		return true
	case *netsim.Rerouted:
		_, isRec := v.Inner.(*netsim.Record)
		return isRec
	default:
		return false
	}
}

// drHandler is the input handler installed on scaling-operator instances
// while a decoupled (DR) scaling runs. Re-route channels are served first as
// special events — rerouted records and confirm barriers are "not affected
// by processing suspension" (paper §III-A) — and an unprocessable re-route
// head never commits the task (it is skipped, not suspended on). Ordinary
// channels are then served by Record Scheduling when enabled, or by native
// (stock Flink) semantics otherwise.
type drHandler struct {
	m        *Mechanism
	schedule bool
	sched    SchedulingHandler
	native   engine.NativeHandler
}

// Next implements engine.InputHandler.
func (h *drHandler) Next(in *engine.Instance) (netsim.Message, *netsim.Edge, engine.NextStatus) {
	for _, e := range h.m.reroutesInto[in.Index] {
		if in.EdgeBlocked(e) || e.InboxLen() == 0 {
			continue
		}
		if in.CanProcess(e.InboxAt(0), e) {
			return e.PopInbox(), e, engine.NextOK
		}
	}
	if h.schedule {
		return h.sched.Next(in)
	}
	return h.native.Next(in)
}
