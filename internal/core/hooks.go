package core

import (
	"drrs/internal/engine"
	"drrs/internal/netsim"
)

// opHook is DRRS's per-instance executor on the scaling operator. An
// instance can be migration source and destination at once (uniform
// repartitioning moves groups between original instances too), so one hook
// covers both roles:
//
//   - Barrier Handler (B2): consumes trigger barriers (first one starts the
//     subscale's migration; later ones are ignored) and re-routes confirm
//     barriers to the migration targets.
//   - Re-route Manager (B4): records whose state migrated out are forwarded
//     over the re-route path as special events, in channel order, so the
//     target sees every Ep record of a predecessor before that
//     predecessor's rerouted confirm.
//   - Destination gating: a record for a migrating group is processable
//     only once its state chunk arrived AND its epoch is confirmed — per
//     predecessor channel under Record Scheduling ("fluid confirmation"),
//     or after full implicit alignment otherwise.
type opHook struct {
	engine.BaseHook
	m *Mechanism
}

func (h *opHook) Processable(in *engine.Instance, r *netsim.Record, e *netsim.Edge) bool {
	m := h.m
	s := m.subOfKG[r.KeyGroup]
	if s == nil {
		return true
	}
	if m.reverted[r.KeyGroup] {
		// The chunk transfer failed and the group lives back at its source.
		// Let records through everywhere: the source processes them normally;
		// stragglers already routed at the dead destination fall to the
		// keyed-state backstop (dropped and counted lost) instead of wedging
		// the channel.
		return true
	}
	// Ep records arriving on a re-route path only need their state chunk:
	// their order against the confirm barrier is preserved by the channel.
	if m.edgeIsReroute[e] {
		return m.chunkAt[r.KeyGroup]
	}
	mv := m.moveOf[r.KeyGroup]
	if mv.To != in.Index {
		// Source role (or unrelated): process locally while the state is
		// here; BeforeRecord re-routes once it is gone.
		return true
	}
	// Destination role: Ef records wait for the chunk and the epoch switch.
	if !m.chunkAt[r.KeyGroup] {
		return false
	}
	if m.Opt.Schedule {
		// Fluid confirmation: each channel switches epochs independently as
		// soon as its own rerouted confirm arrived.
		return s.confirmSeen[confirmKey(in.Index, mv.From, e.Src.Op, e.Src.Index)]
	}
	return s.confirmsLeftAt[in.Index] == 0
}

func (h *opHook) BeforeRecord(in *engine.Instance, r *netsim.Record, e *netsim.Edge) bool {
	m := h.m
	if !m.migratedOut[r.KeyGroup] {
		return false
	}
	mv := m.moveOf[r.KeyGroup]
	if mv.From != in.Index {
		return false
	}
	s := m.subOfKG[r.KeyGroup]
	// Re-route: forwarded as a special event, never suspended. ForceSend
	// keeps it ordered behind earlier re-routes; the paper bounds this
	// traffic by the input-cache size.
	m.rerouteEdges[[2]int{mv.From, mv.To}].ForceSend(&netsim.Rerouted{Inner: r, Subscale: s.id})
	return true
}

func (h *opHook) OnScaleMessage(in *engine.Instance, msg netsim.Message, e *netsim.Edge) bool {
	m := h.m
	switch b := msg.(type) {
	case *netsim.TriggerBarrier:
		if b.ScaleID != m.scaleID {
			return false
		}
		s := m.subByID[b.Subscale]
		// Fig 9b: a checkpoint barrier already sitting in the input buffer
		// must fire before migration starts — the trigger integrates into
		// it and replays after the snapshot.
		if cb := pendingCheckpoint(in); cb != nil {
			m.rt.Scale.AddCounter("drrs_ckpt_integrated_inbox", 1)
			cb.Integrated = append(cb.Integrated, b)
			return true
		}
		if !s.triggered[in.Index] {
			s.triggered[in.Index] = true
			m.startMigration(s, in.Index)
		}
		return true
	case *netsim.ConfirmBarrier:
		if b.ScaleID != m.scaleID {
			return false
		}
		s := m.subByID[b.Subscale]
		// Re-route the confirm to every destination this source serves,
		// duplicating across streams per the paper's compatibility rule.
		for _, dst := range s.dstsOf(in.Index) {
			m.rerouteEdges[[2]int{in.Index, dst}].ForceSend(&netsim.Rerouted{Inner: b, Subscale: s.id})
		}
		return true
	case *netsim.Rerouted:
		switch inner := b.Inner.(type) {
		case *netsim.ConfirmBarrier:
			// A superseding operation's hook can drain confirms the previous
			// operation re-routed before it was cancelled; matching on the
			// inner barrier's ScaleID keeps them from corrupting this one's
			// alignment state.
			s := m.subByID[b.Subscale]
			if inner.ScaleID != m.scaleID || s == nil {
				return true
			}
			key := confirmKey(in.Index, e.Src.Index, inner.FromOp, inner.FromIdx)
			if !s.confirmSeen[key] {
				s.confirmSeen[key] = true
				s.confirmsLeftAt[in.Index]--
				s.confirmsLeft--
				in.Wake()
				m.checkSubscale(s)
			}
		case *netsim.Record:
			if inner.Marker {
				in.ForwardMarker(inner)
				break
			}
			// The handler's CanProcess gate guarantees the chunk is local.
			in.ApplyRecord(inner)
		}
		m.maybeCleanup()
		return true
	}
	return false
}

// pendingCheckpoint scans an instance's input buffers for an unprocessed
// checkpoint barrier (the Fig 9b condition).
func pendingCheckpoint(in *engine.Instance) *netsim.CheckpointBarrier {
	for _, e := range in.InEdges() {
		if i := e.FindInbox(func(m netsim.Message) bool {
			return m.MsgKind() == netsim.KindCheckpointBarrier
		}); i >= 0 {
			return e.InboxAt(i).(*netsim.CheckpointBarrier)
		}
	}
	return nil
}
