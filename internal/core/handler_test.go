package core

import (
	"testing"

	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// handlerRig builds a two-source → keyed-op job whose aggregator instance
// has two input channels we can fill precisely, plus a gate hook that blocks
// chosen key groups — the minimal apparatus for exercising the scheduling
// handler's decisions.
type handlerRig struct {
	s    *simtime.Scheduler
	rt   *engine.Runtime
	agg  *engine.Instance
	gate *gateHook
}

type gateHook struct {
	engine.BaseHook
	blocked map[int]bool
}

func (h *gateHook) Processable(_ *engine.Instance, r *netsim.Record, _ *netsim.Edge) bool {
	return !h.blocked[r.KeyGroup]
}

func newHandlerRig(t *testing.T) *handlerRig {
	t.Helper()
	g := dataflow.NewGraph()
	for _, src := range []string{"srcA", "srcB"} {
		g.AddOperator(&dataflow.OperatorSpec{
			Name: src, Parallelism: 1,
			Source: func(dataflow.SourceContext) {},
		})
	}
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "agg", Parallelism: 1, KeyedInput: true, MaxKeyGroups: 8,
		CostPerRecord: 10 * simtime.Microsecond,
		NewLogic:      func() dataflow.Logic { return &engine.KeyedReduceLogic{} },
	})
	g.Connect("srcA", "agg", dataflow.ExchangeKeyed)
	g.Connect("srcB", "agg", dataflow.ExchangeKeyed)
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 1, MarkerInterval: -1})
	rig := &handlerRig{
		s: s, rt: rt,
		agg:  rt.Instance("agg", 0),
		gate: &gateHook{blocked: map[int]bool{}},
	}
	rig.agg.SetHook(rig.gate)
	rig.agg.SetHandler(&SchedulingHandler{Depth: 200})
	// Prevent the instance from consuming while tests stage inboxes.
	rig.agg.Halted = true
	rt.Start()
	return rig
}

// push delivers a record with the given key group onto channel ch (0 = from
// srcA, 1 = from srcB) and lets it arrive.
func (r *handlerRig) push(ch int, kg int, key uint64) {
	src := "srcA"
	if ch == 1 {
		src = "srcB"
	}
	e := r.rt.Instance(src, 0).OutEdges("agg")[0]
	e.TrySend(&netsim.Record{Key: key, KeyGroup: kg, Size: 64})
	r.s.Run()
}

func (r *handlerRig) pushControl(ch int, m netsim.Message) {
	src := "srcA"
	if ch == 1 {
		src = "srcB"
	}
	r.rt.Instance(src, 0).OutEdges("agg")[0].TrySend(m)
	r.s.Run()
}

func (r *handlerRig) next() (netsim.Message, engine.NextStatus) {
	m, _, st := r.agg.Handler().Next(r.agg)
	return m, st
}

func TestInterChannelScheduling(t *testing.T) {
	rig := newHandlerRig(t)
	rig.gate.blocked[1] = true
	rig.push(0, 1, 100) // channel 0 head: blocked group
	rig.push(1, 2, 200) // channel 1 head: processable
	m, st := rig.next()
	if st != engine.NextOK {
		t.Fatalf("status %v, want OK via inter-channel switch", st)
	}
	if m.(*netsim.Record).KeyGroup != 2 {
		t.Fatalf("took group %d, want 2 from the other channel", m.(*netsim.Record).KeyGroup)
	}
}

func TestIntraChannelBypass(t *testing.T) {
	rig := newHandlerRig(t)
	rig.gate.blocked[1] = true
	rig.push(0, 1, 100) // head blocked
	rig.push(0, 2, 200) // behind it: processable
	m, st := rig.next()
	if st != engine.NextOK {
		t.Fatalf("status %v, want OK via intra-channel bypass", st)
	}
	if m.(*netsim.Record).KeyGroup != 2 {
		t.Fatalf("took group %d, want 2 (bypassed record)", m.(*netsim.Record).KeyGroup)
	}
	// The blocked record must still be at the head, order preserved.
	e := rig.agg.InEdges()[0]
	if e.InboxLen() != 1 || e.InboxAt(0).(*netsim.Record).KeyGroup != 1 {
		t.Fatal("bypassed head lost or reordered")
	}
}

func TestIntraChannelFencesOnWatermark(t *testing.T) {
	rig := newHandlerRig(t)
	rig.gate.blocked[1] = true
	rig.push(0, 1, 100)                             // head blocked
	rig.pushControl(0, &netsim.Watermark{WM: 1000}) // fence
	rig.push(0, 2, 200)                             // processable but beyond the fence
	_, st := rig.next()
	if st != engine.NextSuspended {
		t.Fatalf("status %v: scheduling must not cross a watermark", st)
	}
}

func TestIntraChannelFencesOnCheckpointBarrier(t *testing.T) {
	rig := newHandlerRig(t)
	rig.gate.blocked[1] = true
	rig.push(0, 1, 100)
	rig.pushControl(0, &netsim.CheckpointBarrier{ID: 1})
	rig.push(0, 2, 200)
	_, st := rig.next()
	if st != engine.NextSuspended {
		t.Fatalf("status %v: scheduling must not cross a checkpoint barrier", st)
	}
}

func TestDepthLimitRespected(t *testing.T) {
	rig := newHandlerRig(t)
	rig.agg.SetHandler(&SchedulingHandler{Depth: 3})
	rig.gate.blocked[1] = true
	for i := 0; i < 3; i++ {
		rig.push(0, 1, uint64(100+i)) // three blocked records
	}
	rig.push(0, 2, 200) // processable at depth 3 — beyond the buffer
	_, st := rig.next()
	if st != engine.NextSuspended {
		t.Fatalf("status %v: record at depth 3 must be outside a 3-deep buffer", st)
	}
	rig.agg.SetHandler(&SchedulingHandler{Depth: 4})
	m, st := rig.next()
	if st != engine.NextOK || m.(*netsim.Record).KeyGroup != 2 {
		t.Fatal("deeper buffer should reach the record")
	}
}

func TestSuspendedOnlyWhenNothingProcessable(t *testing.T) {
	rig := newHandlerRig(t)
	if _, st := rig.next(); st != engine.NextIdle {
		t.Fatalf("empty channels should be idle, got %v", st)
	}
	rig.gate.blocked[1] = true
	rig.push(0, 1, 100)
	rig.push(1, 1, 101)
	if _, st := rig.next(); st != engine.NextSuspended {
		t.Fatal("all heads blocked, nothing deeper: must suspend")
	}
	rig.gate.blocked = map[int]bool{}
	if _, st := rig.next(); st != engine.NextOK {
		t.Fatal("unblocking must make progress")
	}
}

func TestHeadPreferredOverBypass(t *testing.T) {
	// Pass 1 (inter-channel) must win before pass 2 (intra-channel): a
	// processable head on channel 1 is taken, not a deep record on channel 0.
	rig := newHandlerRig(t)
	rig.gate.blocked[1] = true
	rig.push(0, 1, 100)
	rig.push(0, 3, 103)
	rig.push(1, 2, 200)
	m, st := rig.next()
	if st != engine.NextOK || m.(*netsim.Record).KeyGroup != 2 {
		t.Fatalf("want head of channel 1 (group 2), got %v", m)
	}
}

func TestSameGroupNeverReordered(t *testing.T) {
	// Records of one key group share processability, so a blocked group can
	// never be leapfrogged by its own later records: after unblocking, they
	// must come out in order.
	rig := newHandlerRig(t)
	rig.gate.blocked[1] = true
	rig.push(0, 1, 100)
	rig.push(0, 1, 101)
	rig.push(0, 2, 200)
	m, st := rig.next() // bypasses both group-1 records
	if st != engine.NextOK || m.(*netsim.Record).Key != 200 {
		t.Fatal("expected the group-2 record")
	}
	rig.gate.blocked = map[int]bool{}
	m1, _ := rig.next()
	m2, _ := rig.next()
	if m1.(*netsim.Record).Key != 100 || m2.(*netsim.Record).Key != 101 {
		t.Fatalf("group-1 records reordered: %d then %d",
			m1.(*netsim.Record).Key, m2.(*netsim.Record).Key)
	}
}
