// Package core implements DRRS — Decoupling & Re-routing, Record Scheduling,
// and Subscale Division — the paper's primary contribution.
//
// The mechanism mirrors the paper's architecture (Fig 8):
//
//   - Scale Coordinator (A): the Mechanism itself; it deploys instances
//     (Topology Updater A0 via engine.AddInstance) and drives subscales
//     (Subscale Handler A1).
//   - Scale Executor (B): the per-instance pieces — the opHook (Barrier
//     Handler B2 and Re-route Manager B4), the SchedulingHandler replacing
//     the native input handler (Scale Input Handler B1, Suspend Manager B3).
//   - Scale Planner (C): Plan (from the scaling framework) plus the
//     lexicographic subscale divider and the greedy fewest-keys-first
//     subscale scheduler with the per-node concurrency threshold (C0/C1).
//
// The three Options flags correspond to the paper's Fig 14 ablation: the
// full system enables all three; each variant keeps exactly one. Variants
// without DR fall back to coupled-barrier synchronization (the generalized
// OTFS framework), with Subscale Division degrading to Naive Division —
// concurrently launched coupled rounds whose alignments interfere (Fig 7a).
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"drrs/internal/cluster"
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/netsim"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

// Options selects which DRRS mechanisms are active.
type Options struct {
	// DR enables Decoupling and Re-routing: trigger/confirm barriers with
	// predecessor injection, output-cache redirection, and Ep-record
	// re-routing. Without it, synchronization uses coupled barriers.
	DR bool
	// Schedule enables Record Scheduling (inter- and intra-channel).
	Schedule bool
	// Subscale enables Subscale Division.
	Subscale bool

	// SubscaleKGs is the target key groups per subscale (default 8).
	SubscaleKGs int
	// NodeConcurrency caps concurrent subscales touching one node
	// (default 2, the paper's threshold).
	NodeConcurrency int
	// BufferDepth bounds the intra-channel scan (default 200, the paper's
	// pre-serialized record buffer).
	BufferDepth int
	// InstallCost is the per-chunk deserialization cost at the receiver.
	InstallCost simtime.Duration
}

// FullDRRS returns the complete system's options.
func FullDRRS() Options {
	return Options{DR: true, Schedule: true, Subscale: true}
}

// Variant returns options for Fig 14's ablation variants: "drrs", "dr",
// "schedule", or "subscale".
func Variant(name string) Options {
	switch name {
	case "drrs":
		return FullDRRS()
	case "dr":
		return Options{DR: true}
	case "schedule":
		return Options{Schedule: true}
	case "subscale":
		return Options{Subscale: true}
	default:
		panic(fmt.Sprintf("core: unknown variant %q", name))
	}
}

func (o *Options) fillDefaults() {
	if o.SubscaleKGs <= 0 {
		o.SubscaleKGs = 8
	}
	if o.NodeConcurrency <= 0 {
		o.NodeConcurrency = 2
	}
	if o.BufferDepth <= 0 {
		o.BufferDepth = 200
	}
	if o.InstallCost <= 0 {
		o.InstallCost = 200 * simtime.Microsecond
	}
}

// subscale is one independently migrating subset of the scaling operation.
type subscale struct {
	id     int
	signal string
	moves  []dataflow.Move
	kgs    map[int]bool
	srcs   []int // unique source instances, ascending
	dsts   []int // unique destination instances, ascending

	triggered map[int]bool // src → migration started
	// confirmSeen marks rerouted confirm consumption per
	// (dst, src, predOp, predIdx) — the per-channel "fluid confirmation".
	confirmSeen map[string]bool
	// confirmsLeftAt counts outstanding confirms per destination (implicit
	// alignment without Record Scheduling).
	confirmsLeftAt map[int]int
	confirmsLeft   int
	chunksLeft     int
	completed      bool
	launched       bool
}

func (s *subscale) kgsFrom(src int) []int {
	var out []int
	for _, mv := range s.moves {
		if mv.From == src {
			out = append(out, mv.KeyGroup)
		}
	}
	sort.Ints(out)
	return out
}

func (s *subscale) dstsOf(src int) []int {
	seen := map[int]bool{}
	var out []int
	for _, mv := range s.moves {
		if mv.From == src && !seen[mv.To] {
			seen[mv.To] = true
			out = append(out, mv.To)
		}
	}
	sort.Ints(out)
	return out
}

func confirmKey(dst, src int, predOp string, predIdx int) string {
	return fmt.Sprintf("%d|%d|%s|%d", dst, src, predOp, predIdx)
}

// scaleIDs is atomic: mechanisms start inside the bench harness's parallel
// runs, and the ID only needs process-wide uniqueness, not ordering.
var scaleIDs atomic.Int64

// Mechanism is the DRRS scale coordinator.
type Mechanism struct {
	Opt Options

	rt      *engine.Runtime
	plan    scaling.Plan
	op      string
	scaleID int64
	done    func()

	subs    []*subscale
	pending []*subscale
	subByID map[int]*subscale
	subOfKG map[int]*subscale
	moveOf  map[int]dataflow.Move

	// migratedOut marks key groups extracted from their source (records for
	// them re-route); chunkAt marks key groups installed at their target.
	migratedOut map[int]bool
	chunkAt     map[int]bool
	// reverted marks key groups whose chunk transfer failed (destination died
	// mid-flight): state re-installed at the source, routing reverted, and the
	// group left for a superseding recovery plan to move.
	reverted map[int]bool

	rerouteEdges  map[[2]int]*netsim.Edge
	edgeIsReroute map[*netsim.Edge]bool
	reroutesInto  map[int][]*netsim.Edge

	preds      []*engine.Instance
	activeNode map[string]int
	active     int
	// MaxActive records the peak number of concurrently running subscales
	// (observable evidence for the scheduler's concurrency threshold).
	MaxActive int
	deployed  bool
	finished  bool
	cleaned   bool
	cancelled bool
}

// New returns a DRRS mechanism with the given options.
func New(opt Options) *Mechanism {
	opt.fillDefaults()
	return &Mechanism{Opt: opt}
}

// Name implements scaling.Mechanism.
func (m *Mechanism) Name() string {
	switch {
	case m.Opt.DR && m.Opt.Schedule && m.Opt.Subscale:
		return "drrs"
	case m.Opt.DR:
		return "drrs-dr"
	case m.Opt.Schedule:
		return "drrs-schedule"
	case m.Opt.Subscale:
		return "drrs-subscale"
	default:
		return "drrs-none"
	}
}

// operation is the lifecycle handle over the DRRS coordinator: progress maps
// directly onto the coordinator's own bookkeeping, and Cancel is honored —
// subscales not yet launched are dropped and the operation settles early
// (the paper's concurrent-execution rule).
type operation struct{ m *Mechanism }

func (o operation) Progress() scaling.Progress {
	p := scaling.Progress{Total: len(o.m.plan.Moves), Moved: len(o.m.chunkAt), Cancelled: o.m.cancelled}
	switch {
	case o.m.finished:
		p.Phase = scaling.PhaseDone
	case !o.m.deployed:
		p.Phase = scaling.PhaseDeploy
	case p.Moved < p.Total:
		p.Phase = scaling.PhaseMigrate
	default:
		p.Phase = scaling.PhaseDrain
	}
	return p
}

func (o operation) Cancel() bool {
	o.m.Cancel()
	return true
}

// Begin implements the lifecycle scaling.Mechanism interface. The DR
// coordinator reports native phases and honors cancellation; the coupled
// ablation variants (no DR) ride the legacy adapter, since the coupled
// barrier protocol has no cancellation path.
func (m *Mechanism) Begin(rt *engine.Runtime, plan scaling.Plan, done func()) scaling.Operation {
	if !m.Opt.DR {
		return scaling.BeginLegacy(m, rt, plan, done)
	}
	m.Start(rt, plan, done)
	return operation{m}
}

// Start implements scaling.Starter.
func (m *Mechanism) Start(rt *engine.Runtime, plan scaling.Plan, done func()) {
	if !m.Opt.DR {
		m.startCoupled(rt, plan, done)
		return
	}
	m.scaleID = scaleIDs.Add(1)
	m.rt = rt
	m.plan = plan
	m.op = plan.Operator
	m.done = done
	m.subByID = make(map[int]*subscale)
	m.subOfKG = make(map[int]*subscale)
	m.moveOf = make(map[int]dataflow.Move)
	m.migratedOut = make(map[int]bool)
	m.chunkAt = make(map[int]bool)
	m.reverted = make(map[int]bool)
	m.rerouteEdges = make(map[[2]int]*netsim.Edge)
	m.edgeIsReroute = make(map[*netsim.Edge]bool)
	m.reroutesInto = make(map[int][]*netsim.Edge)
	m.activeNode = make(map[string]int)
	for _, mv := range plan.Moves {
		m.moveOf[mv.KeyGroup] = mv
	}
	m.subs = m.divide()
	m.pending = append([]*subscale(nil), m.subs...)
	for _, s := range m.subs {
		m.subByID[s.id] = s
		for _, mv := range s.moves {
			m.subOfKG[mv.KeyGroup] = s
			rt.Scale.UnitAssigned(mv.KeyGroup, s.signal)
		}
	}

	scaling.Deploy(rt, plan, func(added []*engine.Instance) {
		m.deployed = true
		m.preds = rt.PredecessorInstances(m.op)
		// Count expected confirms: one per (pred, src, dst) triple.
		for _, s := range m.subs {
			s.confirmsLeftAt = make(map[int]int)
			for _, src := range s.srcs {
				for _, dst := range s.dstsOf(src) {
					s.confirmsLeftAt[dst] += len(m.preds)
					s.confirmsLeft += len(m.preds)
				}
			}
			s.chunksLeft = len(s.moves)
		}
		// Re-route paths between every (src, dst) pair with a move.
		for _, s := range m.subs {
			for _, mv := range s.moves {
				key := [2]int{mv.From, mv.To}
				if m.rerouteEdges[key] == nil {
					e := rt.ConnectInstances(rt.Instance(m.op, mv.From), rt.Instance(m.op, mv.To))
					m.rerouteEdges[key] = e
					m.edgeIsReroute[e] = true
					m.reroutesInto[mv.To] = append(m.reroutesInto[mv.To], e)
				}
			}
		}
		// Executors: hook + the DR input handler (re-route channels are
		// out-of-band special events; Record Scheduling when enabled) on
		// every scaling-operator instance.
		for _, in := range rt.Instances(m.op) {
			in.SetHook(&opHook{m: m})
			in.SetHandler(&drHandler{
				m:        m,
				schedule: m.Opt.Schedule,
				sched:    SchedulingHandler{Depth: m.Opt.BufferDepth},
			})
		}
		m.scheduleNext()
	})
}

// divide implements the default Subscale Scheduler's partitioning (C1):
// moves grouped per (source, destination) pair, lexicographically chunked
// into subsets as equally sized as possible, bounded by SubscaleKGs. Without
// Subscale Division the whole plan forms a single subscale.
func (m *Mechanism) divide() []*subscale {
	mk := func(id int, moves []dataflow.Move) *subscale {
		s := &subscale{
			id:          id,
			signal:      fmt.Sprintf("drrs:%d:sub%d", m.scaleID, id),
			moves:       moves,
			kgs:         make(map[int]bool),
			triggered:   make(map[int]bool),
			confirmSeen: make(map[string]bool),
		}
		srcs := map[int]bool{}
		dsts := map[int]bool{}
		for _, mv := range moves {
			s.kgs[mv.KeyGroup] = true
			srcs[mv.From] = true
			dsts[mv.To] = true
		}
		for src := range srcs {
			s.srcs = append(s.srcs, src)
		}
		for dst := range dsts {
			s.dsts = append(s.dsts, dst)
		}
		sort.Ints(s.srcs)
		sort.Ints(s.dsts)
		return s
	}
	if !m.Opt.Subscale {
		moves := append([]dataflow.Move(nil), m.plan.Moves...)
		sort.Slice(moves, func(i, j int) bool { return moves[i].KeyGroup < moves[j].KeyGroup })
		return []*subscale{mk(0, moves)}
	}
	byPair := make(map[[2]int][]dataflow.Move)
	var pairs [][2]int
	for _, mv := range m.plan.Moves {
		key := [2]int{mv.From, mv.To}
		if byPair[key] == nil {
			pairs = append(pairs, key)
		}
		byPair[key] = append(byPair[key], mv)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	var out []*subscale
	id := 0
	for _, key := range pairs {
		moves := byPair[key]
		sort.Slice(moves, func(i, j int) bool { return moves[i].KeyGroup < moves[j].KeyGroup })
		// Equal-sized chunks bounded by SubscaleKGs.
		n := (len(moves) + m.Opt.SubscaleKGs - 1) / m.Opt.SubscaleKGs
		if n == 0 {
			n = 1
		}
		per := (len(moves) + n - 1) / n
		for len(moves) > 0 {
			k := per
			if k > len(moves) {
				k = len(moves)
			}
			out = append(out, mk(id, moves[:k]))
			id++
			moves = moves[k:]
		}
	}
	return out
}

// scheduleNext implements the greedy subscale scheduler: prioritize
// subscales migrating to instances holding the fewest keys (activating new
// instances fastest), subject to the per-node concurrency threshold.
func (m *Mechanism) scheduleNext() {
	if m.cancelled {
		m.maybeFinish()
		return
	}
	for {
		sort.SliceStable(m.pending, func(i, j int) bool {
			return m.heldKeys(m.pending[i]) < m.heldKeys(m.pending[j])
		})
		launched := false
		for i, s := range m.pending {
			if !m.nodeSlotsFree(s) {
				continue
			}
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.reserveNodes(s, +1)
			m.launch(s)
			launched = true
			break
		}
		if !launched {
			return
		}
	}
}

// heldKeys scores a subscale by the key groups its destinations already
// hold.
func (m *Mechanism) heldKeys(s *subscale) int {
	sum := 0
	for _, dst := range s.dsts {
		sum += len(m.rt.Instance(m.op, dst).Store().Groups())
	}
	return sum
}

func (m *Mechanism) subscaleNodes(s *subscale) []string {
	seen := map[string]bool{}
	var out []string
	for _, idx := range append(append([]int(nil), s.srcs...), s.dsts...) {
		n := ""
		if nd := m.rt.Cluster.NodeOf(netsim.Endpoint{Op: m.op, Index: idx}); nd != nil {
			n = nd.Name
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func (m *Mechanism) nodeSlotsFree(s *subscale) bool {
	for _, n := range m.subscaleNodes(s) {
		if m.activeNode[n] >= m.Opt.NodeConcurrency {
			return false
		}
	}
	return true
}

func (m *Mechanism) reserveNodes(s *subscale, delta int) {
	for _, n := range m.subscaleNodes(s) {
		m.activeNode[n] += delta
	}
}

// launch injects one subscale's decoupled signals at every predecessor.
func (m *Mechanism) launch(s *subscale) {
	s.launched = true
	m.active++
	if m.active > m.MaxActive {
		m.MaxActive = m.active
	}
	m.rt.Scale.SignalInjected(s.signal, m.rt.Sched.Now())
	m.rt.Sched.After(m.rt.Cfg.ControlLatency, func() {
		for _, p := range m.preds {
			m.inject(p, s)
		}
	})
}

// inject performs the predecessor-side protocol for one subscale: routing
// update, output-cache redirection (records bypassed by the confirm barrier
// move to the new channel in order), then trigger + confirm emission —
// integrating with an in-flight checkpoint barrier per Fig 9a if one sits in
// the output cache.
func (m *Mechanism) inject(p *engine.Instance, s *subscale) {
	tbl := p.Routing(m.op)
	for _, mv := range s.moves {
		tbl.SetOwner(mv.KeyGroup, mv.To)
	}
	isCkpt := func(msg netsim.Message) bool {
		return msg.MsgKind() == netsim.KindCheckpointBarrier
	}
	for _, src := range s.srcs {
		src := src
		edgeOld := p.OutEdges(m.op)[src]
		// Redirect output-cache records of this subscale's key groups
		// (stopping at a checkpoint barrier: Fig 9a says redirection
		// concludes there).
		take := func(msg netsim.Message) bool {
			r, ok := msg.(*netsim.Record)
			return ok && s.kgs[r.KeyGroup] && m.moveOf[r.KeyGroup].From == src
		}
		for _, rec := range edgeOld.ExtractOutbox(take, isCkpt) {
			r := rec.(*netsim.Record)
			p.OutEdges(m.op)[m.moveOf[r.KeyGroup].To].ForceSend(r)
		}
		// The blocked-emission queue is the tail of the output cache.
		for _, dst := range s.dstsOf(src) {
			dst := dst
			p.RedirectPending(edgeOld, p.OutEdges(m.op)[dst], func(r *netsim.Record) bool {
				return s.kgs[r.KeyGroup] && m.moveOf[r.KeyGroup].To == dst
			})
		}
		trig := &netsim.TriggerBarrier{ScaleID: m.scaleID, Subscale: s.id, FromOp: p.Spec.Name, FromIdx: p.Index}
		conf := &netsim.ConfirmBarrier{ScaleID: m.scaleID, Subscale: s.id, FromOp: p.Spec.Name, FromIdx: p.Index}
		if at := edgeOld.FindOutbox(isCkpt); at >= 0 {
			// Fig 9a: the checkpoint barrier becomes an integrated signal —
			// checkpoint, then trigger, then confirm.
			m.rt.Scale.AddCounter("drrs_ckpt_integrated_outbox", 1)
			edgeOld.InsertOutboxAt(at+1, trig)
			edgeOld.InsertOutboxAt(at+2, conf)
		} else {
			edgeOld.SendPriority(conf)
			edgeOld.SendPriority(trig) // ends up ahead of the confirm
		}
	}
}

// startMigration runs one source's fluid migration chain for a subscale.
func (m *Mechanism) startMigration(s *subscale, src int) {
	kgs := s.kgsFrom(src)
	from := m.rt.Instance(m.op, src)
	var step func(i int)
	step = func(i int) {
		if i >= len(kgs) {
			return
		}
		kg := kgs[i]
		to := m.rt.Instance(m.op, m.moveOf[kg].To)
		g := from.Store().ExtractGroup(kg)
		m.migratedOut[kg] = true
		m.rt.Scale.FirstMigration(s.signal, m.rt.Sched.Now())
		from.Wake() // queued records for kg now re-route instead of waiting
		bytes := 0
		if g != nil {
			bytes = g.Bytes
		}
		m.rt.Cluster.TransferChecked(from.Endpoint(), to.Endpoint(), bytes, func() {
			m.rt.Sched.After(m.Opt.InstallCost, func() {
				to.Store().InstallGroup(kg, g)
				m.chunkAt[kg] = true
				m.rt.Scale.UnitMigrated(kg, m.rt.Sched.Now())
				s.chunksLeft--
				to.Wake()
				m.checkSubscale(s)
				step(i + 1)
			})
		}, func(err error) {
			// Destination unreachable: the chunk returns to its source, the
			// predecessors' routing reverts, and the group is surrendered to a
			// superseding recovery plan (PlanFromPlacement sees it where it
			// actually is). Records already routed toward the dead destination
			// are dropped by the keyed-state backstop and counted lost.
			if cluster.IsTransient(err) {
				m.rt.Scale.AddCounter("drrs_reverts_transient", 1)
			} else {
				m.rt.Scale.AddCounter("drrs_reverts_fatal", 1)
			}
			from.Store().OwnGroup(kg)
			from.Store().InstallGroup(kg, g)
			delete(m.migratedOut, kg)
			m.reverted[kg] = true
			for _, p := range m.preds {
				p.Routing(m.op).SetOwner(kg, src)
			}
			s.chunksLeft--
			from.Wake()
			// Rerouted records for kg may already be parked at the live
			// destination, suspension-blocked on the chunk that will now never
			// arrive — and the rerouted confirm queued behind them. The revert
			// made them processable; a suspended destination never re-evaluates
			// without a wake, so without one the confirm never drains and the
			// operation wedges. Only a suspended instance needs it: waking
			// unconditionally would insert a scheduler event into runs that
			// were never stuck.
			if to.Suspended() && !to.Dead() {
				to.Wake()
			}
			m.checkSubscale(s)
			step(i + 1)
		})
	}
	step(0)
}

func (m *Mechanism) checkSubscale(s *subscale) {
	if s.completed || s.chunksLeft > 0 || s.confirmsLeft > 0 {
		return
	}
	s.completed = true
	m.active--
	m.reserveNodes(s, -1)
	m.scheduleNext()
	m.maybeFinish()
}

func (m *Mechanism) maybeFinish() {
	if m.finished {
		m.maybeCleanup()
		return
	}
	if !m.deployed {
		// A cancellation before deployment completes cannot settle yet: the
		// physical deployment is already in flight (scaling.Deploy's timer
		// will add the instances regardless), so reporting done here would
		// let a superseding operation plan against an instance set that is
		// about to change under it. The deploy callback re-runs the
		// scheduler, which lands back here once the instances exist.
		return
	}
	for _, s := range m.subs {
		if !s.completed && !(m.cancelled && !s.launched) {
			return
		}
	}
	m.finished = true
	m.rt.Scale.MarkScaleEnd(m.rt.Sched.Now())
	if m.done != nil {
		m.done()
	}
	m.maybeCleanup()
}

// maybeCleanup tears the scaling machinery down once the re-route paths have
// drained, returning the runtime to its non-scaling configuration (the
// paper: no DRRS components remain in runtime memory after scaling).
func (m *Mechanism) maybeCleanup() {
	if m.cleaned || !m.finished {
		return
	}
	//lint:allow maporder QueuedTotal is a pure read; the loop computes an any-nonempty predicate, which no iteration order can change
	for _, e := range m.rerouteEdges {
		if e.QueuedTotal() > 0 {
			return
		}
	}
	m.cleaned = true
	// Detach in sorted (src, dst) order: map iteration would vary the order
	// edges leave each instance's input list between identical runs, and the
	// controller path polls instances right through cleanup.
	keys := make([][2]int, 0, len(m.rerouteEdges))
	for key := range m.rerouteEdges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		m.rt.DetachInput(m.rt.Instance(m.op, key[1]), m.rerouteEdges[key])
	}
	for _, in := range m.rt.Instances(m.op) {
		in.SetHook(nil)
		in.SetHandler(&engine.NativeHandler{})
		in.Wake()
	}
}

// Cancel supersedes this scaling operation (the paper's concurrent-request
// rule: a newer request on the same operator terminates the older one).
// Subscales not yet launched are dropped; launched ones run to completion so
// state is never stranded mid-flight. The superseding request must plan from
// the resulting placement.
func (m *Mechanism) Cancel() {
	if m.cancelled || m.rt == nil {
		return
	}
	m.cancelled = true
	m.pending = nil
	m.maybeFinish()
}

// Cancelled reports whether the operation was superseded.
func (m *Mechanism) Cancelled() bool { return m.cancelled }

// Finished reports whether the operation has completed (or been fully
// superseded).
func (m *Mechanism) Finished() bool { return m.finished }

// MigratedGroups returns the key groups whose migration completed, useful
// for planning a superseding operation from actual placement.
func (m *Mechanism) MigratedGroups() []int {
	var out []int
	for kg, ok := range m.chunkAt {
		if ok {
			out = append(out, kg)
		}
	}
	sort.Ints(out)
	return out
}

// startCoupled runs the non-DR ablation variants on the coupled-barrier
// controller: Schedule-only is a single coupled round plus Record
// Scheduling; Subscale-only is Naive Division — concurrently launched
// coupled rounds that interfere through alignment blocking.
func (m *Mechanism) startCoupled(rt *engine.Runtime, plan scaling.Plan, done func()) {
	rounds := scaling.BatchRounds(plan, 0)
	if m.Opt.Subscale {
		rounds = scaling.BatchRounds(plan, m.Opt.SubscaleKGs)
	}
	c := scaling.NewCoupledController(plan, rounds)
	c.Fluid = true
	c.InjectAtSources = false
	c.Concurrent = m.Opt.Subscale
	if m.Opt.Schedule {
		depth := m.Opt.BufferDepth
		c.Scheduling = func() engine.InputHandler { return &SchedulingHandler{Depth: depth} }
	}
	c.Start(rt, done)
}
