package core

import (
	"testing"

	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/netsim"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

// Protocol-level tests for the Decoupling & Re-routing machinery: they pin
// the exact wire behaviour of Fig 4/5 — outbox redirection, trigger priority,
// confirm re-routing, Ep-record re-routing — on a surgically controlled job.

// protoRig builds src → agg(p=1, 8 groups) → sink with the aggregator halted
// so queues can be staged before signals inject.
type protoRig struct {
	s    *simtime.Scheduler
	rt   *engine.Runtime
	g    *dataflow.Graph
	sink *engine.CollectSink
}

func newProtoRig(t *testing.T, burst int) *protoRig {
	t.Helper()
	sink := engine.NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: func(ctx dataflow.SourceContext) {
			for i := 0; i < burst; i++ {
				ctx.Ingest(&netsim.Record{
					Key: uint64(i) + 1, EventTime: ctx.Now(), Size: 64, Value: 1.0,
				})
			}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "agg", Parallelism: 1, KeyedInput: true, MaxKeyGroups: 8,
		CostPerRecord: 50 * simtime.Microsecond,
		NewLogic:      func() dataflow.Logic { return &engine.KeyedReduceLogic{EmitUpdates: true} },
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "sink", Parallelism: 1,
		NewLogic: func() dataflow.Logic { return sink },
	})
	g.Connect("src", "agg", dataflow.ExchangeKeyed)
	g.Connect("agg", "sink", dataflow.ExchangeRebalance)
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{
		Seed: 17, EdgeInCap: 4, EdgeOutCap: 256, MarkerInterval: -1,
	})
	return &protoRig{s: s, rt: rt, g: g, sink: sink}
}

// TestOutboxRedirectionPreservesOrder stages records for a migrating group
// in the predecessor's output cache, injects DRRS, and verifies redirected
// records reach the new instance in their original order ahead of any
// post-injection records.
func TestOutboxRedirectionPreservesOrder(t *testing.T) {
	rig := newProtoRig(t, 60)
	rig.rt.Instance("agg", 0).Halted = true // inbox (4) fills; outbox retains the rest
	rig.rt.Start()
	rig.s.RunUntil(simtime.Time(simtime.Ms(5)))

	src := rig.rt.Instance("src", 0)
	edgeOld := src.OutEdges("agg")[0]
	if edgeOld.OutboxLen() == 0 {
		t.Fatal("setup failed: outbox empty, nothing to redirect")
	}
	mech := New(FullDRRS())
	var done bool
	plan := scaling.UniformPlan(rig.g, "agg", 2, simtime.Ms(1))
	mech.Start(rig.rt, plan, func() { done = true })
	rig.s.RunUntil(simtime.Time(simtime.Ms(10)))

	// The new channel's queue must contain only records of moved groups, in
	// ascending key order (keys were emitted in order and share the queue).
	moved := plan.Moved()
	edgeNew := src.OutEdges("agg")[1]
	var lastSeq uint64
	checkQueue := func(m netsim.Message) {
		r, ok := m.(*netsim.Record)
		if !ok {
			return
		}
		if !moved.Has(r.KeyGroup) {
			t.Fatalf("unmoved group %d redirected", r.KeyGroup)
		}
		if r.Seq < lastSeq {
			t.Fatalf("redirected records reordered: seq %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
	}
	for i := 0; i < edgeNew.OutboxLen(); i++ {
		checkQueue(edgeNew.OutboxAt(i))
	}
	// And the old channel must hold no moved-group records before the
	// confirm barrier (they were extracted).
	confirmSeen := false
	for i := 0; i < edgeOld.OutboxLen(); i++ {
		m := edgeOld.OutboxAt(i)
		if m.MsgKind() == netsim.KindConfirmBarrier {
			confirmSeen = true
			continue
		}
		if confirmSeen {
			break
		}
		if r, ok := m.(*netsim.Record); ok && moved.Has(r.KeyGroup) {
			t.Fatalf("moved-group record (kg %d) left ahead of the confirm barrier", r.KeyGroup)
		}
	}

	rig.rt.Instance("agg", 0).Halted = false
	rig.rt.Instance("agg", 0).Wake()
	rig.s.Run()
	if !done {
		t.Fatal("scaling never completed")
	}
	if rig.sink.Records != 60 {
		t.Fatalf("sink saw %d of 60 records", rig.sink.Records)
	}
	if d := rig.sink.Duplicates(); d != 0 {
		t.Fatalf("%d duplicates", d)
	}
}

// TestTriggerPrecedesConfirmOnWire pins the signal emission order: the
// trigger barrier sits ahead of the confirm barrier in the output cache, so
// migration starts before routing confirmation completes — the decoupling.
func TestTriggerPrecedesConfirmOnWire(t *testing.T) {
	rig := newProtoRig(t, 40)
	rig.rt.Instance("agg", 0).Halted = true
	rig.rt.Start()
	rig.s.RunUntil(simtime.Time(simtime.Ms(5)))
	mech := New(FullDRRS())
	mech.Start(rig.rt, scaling.UniformPlan(rig.g, "agg", 2, simtime.Ms(1)), nil)
	// Injection happens at scale-start + setup(1ms) + control latency(1ms);
	// arrival adds edge latency. 9ms leaves both signals delivered.
	rig.s.RunUntil(simtime.Time(simtime.Ms(9)))

	// Control messages leave the output cache immediately; the observable
	// artifact is on the receiver side: the trigger arrives at the *front*
	// of the old instance's input buffer (bypassing queued data), while the
	// confirm queues in order behind the data.
	e := rig.rt.Instance("agg", 0).InEdges()[0]
	trigAt := e.FindInbox(func(m netsim.Message) bool { return m.MsgKind() == netsim.KindTriggerBarrier })
	confAt := e.FindInbox(func(m netsim.Message) bool { return m.MsgKind() == netsim.KindConfirmBarrier })
	if trigAt != 0 {
		t.Fatalf("trigger at inbox depth %d, want 0 (priority arrival)", trigAt)
	}
	if confAt != -1 && confAt <= trigAt {
		t.Fatalf("confirm at %d should trail the trigger at %d", confAt, trigAt)
	}
	rig.rt.Instance("agg", 0).Halted = false
	rig.rt.Instance("agg", 0).Wake()
	rig.s.Run()
}

// TestMigrationStartsWhileOldInstanceBlocked is the decoupling headline: the
// trigger's priority path starts migration even though the old instance has
// a deep unprocessed queue (a coupled barrier would still be queueing).
func TestMigrationStartsWhileOldInstanceBlocked(t *testing.T) {
	rig := newProtoRig(t, 60)
	agg := rig.rt.Instance("agg", 0)
	agg.Halted = true
	rig.rt.Start()
	rig.s.RunUntil(simtime.Time(simtime.Ms(5)))
	mech := New(FullDRRS())
	mech.Start(rig.rt, scaling.UniformPlan(rig.g, "agg", 2, simtime.Ms(1)), nil)
	// Allow signals to inject and the trigger to arrive. The instance is
	// halted — but the trigger is consumed by the handler only when the
	// instance runs, so unhalt and run a sliver of time: far less than it
	// would take to drain the 60-record backlog.
	agg.Halted = false
	agg.Wake()
	rig.s.RunUntil(simtime.Time(simtime.Ms(8))) // ~3 records' worth of work
	if mech.rt.Scale.UnitsMigrated() == 0 && len(mech.migratedOut) == 0 {
		t.Fatal("migration never started while the queue was deep — trigger priority broken")
	}
	rig.s.Run()
}
