package bench

import (
	"fmt"
	"strings"

	"drrs/internal/core"
	"drrs/internal/scaling/megaphone"
	"drrs/internal/simtime"
)

// This file holds the design-choice ablations DESIGN.md calls out beyond the
// paper's Fig 14: how sensitive DRRS is to its own tuning knobs, and how
// sensitive Megaphone is to its reconfiguration batch size. None of these
// are paper figures; they answer the "why these defaults?" questions a
// downstream user will ask.

// SweepPoint is one configuration's outcome in a knob sweep.
type SweepPoint struct {
	Label        string
	PeakMs       float64
	AvgMs        float64
	ScalingSec   float64
	SuspMs       float64
	PropMs       float64
	MaxActive    int
	MigrationSec float64
}

func sweepRun(sc Scenario, mech interface {
	Name() string
}, o Outcome) SweepPoint {
	p := SweepPoint{
		Label:        mech.Name(),
		PeakMs:       o.PeakIn(o.ScaleAt, o.EndAt),
		AvgMs:        o.AvgIn(o.ScaleAt, o.EndAt),
		ScalingSec:   o.ScalingPeriod().Seconds(),
		SuspMs:       o.Scale.CumulativeSuspension().Millis(),
		PropMs:       o.Scale.CumulativePropagationDelay().Millis(),
		MigrationSec: o.Scale.MigrationDuration().Seconds(),
	}
	return p
}

// SweepSubscaleSize runs full DRRS on the Twitch scenario with varying
// subscale granularity (key groups per subscale). The paper's default is
// small subscales; degenerate settings recover DR-only behaviour (one giant
// subscale) or pure per-group scheduling (size 1).
func SweepSubscaleSize(seed int64, sizes []int) []SweepPoint {
	var out []SweepPoint
	for _, size := range sizes {
		opt := core.FullDRRS()
		opt.SubscaleKGs = size
		mech := core.New(opt)
		o := TwitchScenario(seed).Run(mech)
		p := sweepRun(TwitchScenario(seed), mech, o)
		p.Label = fmt.Sprintf("subscale=%d", size)
		p.MaxActive = mech.MaxActive
		out = append(out, p)
	}
	return out
}

// SweepBufferDepth varies Record Scheduling's intra-channel buffer (the
// paper fixes 200 records ≈ 200 KB per scaling instance).
func SweepBufferDepth(seed int64, depths []int) []SweepPoint {
	var out []SweepPoint
	for _, d := range depths {
		opt := core.FullDRRS()
		opt.BufferDepth = d
		mech := core.New(opt)
		o := TwitchScenario(seed).Run(mech)
		p := sweepRun(TwitchScenario(seed), mech, o)
		p.Label = fmt.Sprintf("depth=%d", d)
		out = append(out, p)
	}
	return out
}

// SweepNodeConcurrency varies the subscale scheduler's per-node concurrency
// threshold (the paper fixes 2 "to avoid potential resource contention") on
// the 4-node sensitivity cluster, where it actually binds.
func SweepNodeConcurrency(seed int64, limits []int) []SweepPoint {
	var out []SweepPoint
	for _, l := range limits {
		opt := core.FullDRRS()
		opt.NodeConcurrency = l
		mech := core.New(opt)
		sc := SensitivityScenario(seed, 8000, 15<<20, 0.5)
		o := sc.Run(mech)
		p := sweepRun(sc, mech, o)
		p.Label = fmt.Sprintf("conc=%d", l)
		p.MaxActive = mech.MaxActive
		out = append(out, p)
	}
	return out
}

// SweepMegaphoneBatch varies Megaphone's reconfiguration bin size: its
// fundamental trade-off between suspension (grows with batch) and scaling
// duration / propagation (shrink with batch).
func SweepMegaphoneBatch(seed int64, batches []int) []SweepPoint {
	var out []SweepPoint
	for _, b := range batches {
		mech := &megaphone.Mechanism{BatchKGs: b}
		o := TwitchScenario(seed).Run(mech)
		p := sweepRun(TwitchScenario(seed), mech, o)
		p.Label = fmt.Sprintf("batch=%d", b)
		out = append(out, p)
	}
	return out
}

// FormatSweep renders sweep points as a table.
func FormatSweep(title string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %12s %12s %12s\n",
		"", "peak(ms)", "avg(ms)", "scaling(s)", "susp(ms)", "prop(ms)", "migration(s)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14s %10.1f %10.1f %10.2f %12.1f %12.1f %12.2f\n",
			p.Label, p.PeakMs, p.AvgMs, p.ScalingSec, p.SuspMs, p.PropMs, p.MigrationSec)
	}
	return b.String()
}

// Sparkline renders a latency timeline as a compact ASCII strip for the
// figure reporters (the closest a terminal gets to the paper's plots).
func Sparkline(o Outcome, bucket simtime.Duration, from, to simtime.Time) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	pts := o.Latency.Series.Downsample(bucket)
	var max float64
	var vals []float64
	for _, p := range pts {
		if p.At < from || p.At >= to {
			continue
		}
		vals = append(vals, p.V)
		if p.V > max {
			max = p.V
		}
	}
	if max == 0 || len(vals) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range vals {
		idx := int(v / max * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	fmt.Fprintf(&b, "  (max %.0fms)", max)
	return b.String()
}
