package bench

import (
	"fmt"
	"sort"
	"strings"

	"drrs/internal/core"
	"drrs/internal/fitness"
	"drrs/internal/scaling"
	"drrs/internal/scaling/meces"
	"drrs/internal/scaling/megaphone"
	"drrs/internal/scaling/otfs"
	"drrs/internal/scaling/stopre"
	"drrs/internal/scaling/unbound"
	"drrs/internal/simtime"
)

// Mechanisms builds a fresh mechanism by report name (fresh per run: the
// implementations carry per-operation state).
func Mechanisms(name string) scaling.Mechanism {
	switch name {
	case "drrs":
		return core.New(core.FullDRRS())
	case "drrs-dr":
		return core.New(core.Variant("dr"))
	case "drrs-schedule":
		return core.New(core.Variant("schedule"))
	case "drrs-subscale":
		return core.New(core.Variant("subscale"))
	case "meces":
		return &meces.Mechanism{}
	case "megaphone":
		// A batch of 4 key groups keeps the sequential-round signature while
		// the scaled-down runs stay tractable.
		return &megaphone.Mechanism{BatchKGs: 4}
	case "otfs":
		return &otfs.Mechanism{Fluid: true}
	case "otfs-allatonce":
		return &otfs.Mechanism{Fluid: false}
	case "stop-restart":
		return &stopre.Mechanism{}
	case "unbound":
		return &unbound.Mechanism{}
	case "no-scale":
		return nil
	default:
		panic(fmt.Sprintf("bench: unknown mechanism %q", name))
	}
}

// mustSeeds validates the seed list up front: every figure indexes
// outs[mech][0] for its timeline printers, so an empty list would otherwise
// panic deep inside rendering with an opaque out-of-range error.
func mustSeeds(figure string, seeds []int64) {
	if len(seeds) == 0 {
		panic(fmt.Sprintf("bench: %s needs at least one seed (got an empty seed list)", figure))
	}
}

// FigureResult is one regenerated figure/table: paper-style text plus the
// raw rows for programmatic checks.
type FigureResult struct {
	Title string
	Text  string
	// Rows maps a label ("drrs", "meces", …) to its headline numbers.
	Rows map[string]Row
}

// Row is one mechanism's headline numbers for a figure.
type Row struct {
	PeakMs        Stat
	AvgMs         Stat
	ScalingSec    Stat
	MigrationSec  Stat
	PropDelayMs   Stat
	DepOverheadMs Stat
	SuspensionMs  Stat
	ThroughputDev Stat
	// Control carries the reactive-driving columns; nil outside the control
	// figure (and omitted from -json output there).
	Control *ControlStats `json:",omitempty"`
	// Faults carries the fault-and-recovery columns; nil when no aggregated
	// run was faulted (and omitted from -json output there), so healthy
	// sweeps serialize exactly as before the chaos track.
	Faults *FaultStats `json:",omitempty"`
	// Fitness carries the multi-objective fitness components and the weighted
	// score, so -json artifacts are self-describing inputs to policy search.
	Fitness *FitnessStats `json:",omitempty"`
}

// ControlStats are one mechanism's closed-loop headline numbers: how the
// control loop behaved, not just what latency resulted.
type ControlStats struct {
	// Decisions and Superseded aggregate per-run decision counts.
	Decisions  Stat
	Superseded Stat
	// OpsDone / OpsTotal count launched operations that completed across all
	// seeds.
	OpsDone, OpsTotal int
	// FinalParallelism histograms where the loop left the operator per seed
	// (key 0 = the policy never decided; the operator kept its initial
	// parallelism).
	FinalParallelism map[int]int
}

// FaultStats aggregates the per-run FaultSummary across seeds — the
// machine-readable face of the chaos track (drrs-bench -json), where the
// summary previously surfaced only in -list text.
type FaultStats struct {
	// Events / Crashes / FailedTransfers / RetriedTransfers / RecoveredGroups
	// / LostGroups / Replans / RecordsLost / RecoveryMs aggregate the
	// FaultSummary fields of the same names across the mechanism's runs.
	Events           Stat
	Crashes          Stat
	FailedTransfers  Stat
	RetriedTransfers Stat
	RecoveredGroups  Stat
	LostGroups       Stat
	Replans          Stat
	RecordsLost      Stat
	RecoveryMs       Stat
}

// faultStats aggregates runs' fault summaries; nil when none was faulted.
func faultStats(runs []Outcome) *FaultStats {
	var events, crashes, failed, retried, recovered, lost, replans, records, recovery []float64
	any := false
	for _, o := range runs {
		f := o.Faults
		if f == nil {
			continue
		}
		any = true
		events = append(events, float64(f.Events))
		crashes = append(crashes, float64(f.Crashes))
		failed = append(failed, float64(f.FailedTransfers))
		retried = append(retried, float64(f.RetriedTransfers))
		recovered = append(recovered, float64(f.RecoveredGroups))
		lost = append(lost, float64(f.LostGroups))
		replans = append(replans, float64(f.Replans))
		records = append(records, float64(f.RecordsLost))
		recovery = append(recovery, f.RecoveryMs)
	}
	if !any {
		return nil
	}
	return &FaultStats{
		Events:           NewStat(events),
		Crashes:          NewStat(crashes),
		FailedTransfers:  NewStat(failed),
		RetriedTransfers: NewStat(retried),
		RecoveredGroups:  NewStat(recovered),
		LostGroups:       NewStat(lost),
		Replans:          NewStat(replans),
		RecordsLost:      NewStat(records),
		RecoveryMs:       NewStat(recovery),
	}
}

// measureWindow computes the common statistics window the paper uses: from
// the scaling request to the longest observed scaling period among the
// compared mechanisms. Runs that never scaled — no-scale baselines, and
// controller runs whose policy never launched an operation (ScaleAt stays
// 0) — contribute no window edge; folding their zero ScaleAt in would drag
// the window back into warmup for every mechanism in the figure.
func measureWindow(outs map[string][]Outcome) (simtime.Time, simtime.Time) {
	var from, to simtime.Time
	first := true
	for _, runs := range outs {
		for _, o := range runs {
			if o.Mechanism == "no-scale" || o.ScaleAt == 0 {
				continue
			}
			if first || o.ScaleAt < from {
				from = o.ScaleAt
				first = false
			}
			end := o.StabilizedAt
			if !o.Stabilized || end > o.EndAt {
				end = o.EndAt
			}
			if end > to {
				to = end
			}
		}
	}
	return from, to
}

// compare runs one scenario under several mechanisms across seeds (in
// parallel across Workers; each run is independently deterministic) and
// aggregates the paper's headline metrics.
func compare(scenario func(int64) Scenario, mechs []string, seeds []int64) map[string][]Outcome {
	specs := make([]RunSpec, 0, len(mechs)*len(seeds))
	for _, mech := range mechs {
		for _, seed := range seeds {
			specs = append(specs, RunSpec{Scenario: scenario(seed), Mechanism: mech})
		}
	}
	results := RunParallel(specs, Workers)
	outs := make(map[string][]Outcome)
	for i, sp := range specs {
		outs[sp.Mechanism] = append(outs[sp.Mechanism], results[i])
	}
	return outs
}

func rowsFrom(outs map[string][]Outcome) map[string]Row {
	from, to := measureWindow(outs)
	rows := make(map[string]Row)
	for _, mech := range sortedKeys(outs) {
		runs := outs[mech]
		var peak, avg, dur, mig, prop, dep, susp []float64
		for _, o := range runs {
			peak = append(peak, o.PeakIn(from, to))
			avg = append(avg, o.AvgIn(from, to))
			dur = append(dur, o.ScalingPeriod().Seconds())
			mig = append(mig, o.Scale.MigrationDuration().Seconds())
			prop = append(prop, o.Scale.CumulativePropagationDelay().Millis())
			dep = append(dep, o.Scale.AvgDependencyOverhead().Millis())
			susp = append(susp, o.Scale.CumulativeSuspension().Millis())
		}
		rows[mech] = Row{
			PeakMs:        NewStat(peak),
			AvgMs:         NewStat(avg),
			ScalingSec:    NewStat(dur),
			MigrationSec:  NewStat(mig),
			PropDelayMs:   NewStat(prop),
			DepOverheadMs: NewStat(dep),
			SuspensionMs:  NewStat(susp),
			Faults:        faultStats(runs),
			Fitness:       fitnessStats(runs, fitness.DefaultWeights()),
		}
	}
	return rows
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Fig2 regenerates the motivation experiment: Unbound vs OTFS (generalized
// on-the-fly scaling with fluid migration) vs No Scale on the Twitch
// workload under a fixed input rate.
func Fig2(seeds []int64) FigureResult {
	mustSeeds("Fig2", seeds)
	outs := compare(TwitchScenario, []string{"unbound", "otfs", "no-scale"}, seeds)
	from, to := measureWindow(outs)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2 — Unbound vs OTFS vs No Scale (Twitch), window [%v, %v]\n", from, to)
	fmt.Fprintf(&b, "%-10s %20s %20s\n", "", "Peak Latency(ms)", "Average Latency(ms)")
	rows := make(map[string]Row)
	for _, mech := range []string{"otfs", "unbound", "no-scale"} {
		var peak, avg []float64
		for _, o := range outs[mech] {
			peak = append(peak, o.PeakIn(from, to))
			avg = append(avg, o.AvgIn(from, to))
		}
		r := Row{PeakMs: NewStat(peak), AvgMs: NewStat(avg)}
		rows[mech] = r
		fmt.Fprintf(&b, "%-10s %20s %20s\n", mech, r.PeakMs, r.AvgMs)
	}
	return FigureResult{Title: "fig2", Text: b.String(), Rows: rows}
}

// HeadToHead runs the Fig 10–13 experiment set for one workload (q7, q8,
// twitch) against Meces and Megaphone, producing all four figures' data from
// the same runs, as the paper does.
func HeadToHead(workloadName string, seeds []int64) FigureResult {
	mustSeeds("HeadToHead", seeds)
	outs := compare(func(seed int64) Scenario { return ScenarioByName(workloadName, seed) },
		[]string{"drrs", "meces", "megaphone"}, seeds)
	rows := rowsFrom(outs)
	from, to := measureWindow(outs)

	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10 (%s) — End-to-End Latency, window [%v, %v]\n", workloadName, from, to)
	fmt.Fprintf(&b, "%-10s %20s %20s %16s %16s\n", "", "Peak(ms)", "Average(ms)", "Scaling(s)", "Migration(s)")
	for _, mech := range []string{"drrs", "meces", "megaphone"} {
		r := rows[mech]
		fmt.Fprintf(&b, "%-10s %20s %20s %16s %16s\n", mech, r.PeakMs, r.AvgMs, r.ScalingSec, r.MigrationSec)
	}
	b.WriteString("\nlatency timelines (1 s means):\n")
	for _, mech := range []string{"drrs", "meces", "megaphone"} {
		if len(outs[mech]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %s\n", mech, Sparkline(outs[mech][0], simtime.Second, from, to))
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "Fig 11 (%s) — Throughput (records/s) timeline (1 s buckets, during scaling)\n", workloadName)
	for _, mech := range []string{"drrs", "meces", "megaphone"} {
		if len(outs[mech]) == 0 {
			continue
		}
		o := outs[mech][0]
		pts := o.Throughput.Series().Slice(from, to)
		fmt.Fprintf(&b, "%-10s", mech)
		for i, p := range pts {
			if i%2 == 0 { // compact
				fmt.Fprintf(&b, " %6.0f", p.V)
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "Fig 12 (%s) — Cumulative Propagation Delay / Avg Dependency Overhead (ms)\n", workloadName)
	fmt.Fprintf(&b, "%-10s %20s %20s\n", "", "Prop. Delay", "Dep. Overhead")
	for _, mech := range []string{"drrs", "meces", "megaphone"} {
		r := rows[mech]
		fmt.Fprintf(&b, "%-10s %20s %20s\n", mech, r.PropDelayMs, r.DepOverheadMs)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "Fig 13 (%s) — Cumulative Suspension Time (ms)\n", workloadName)
	for _, mech := range []string{"drrs", "meces", "megaphone"} {
		r := rows[mech]
		fmt.Fprintf(&b, "%-10s %20s\n", mech, r.SuspensionMs)
	}
	if wl := workloadName; wl == "q7" {
		// The paper's §V-B Meces statistic: sub-key-group re-fetch counts.
		for _, o := range outs["meces"] {
			if m, ok := o.MechRef.(*meces.Mechanism); ok {
				mean, max := m.FetchStats()
				fmt.Fprintf(&b, "\nMeces back-and-forth (Q7): mean %.2f transfers/sub-key-group, max %d\n", mean, max)
				break
			}
		}
	}
	return FigureResult{Title: "fig10-13/" + workloadName, Text: b.String(), Rows: rows}
}

// Fig14 regenerates the ablation: full DRRS vs DR-only vs Schedule-only vs
// Subscale-only on the Twitch workload.
func Fig14(seeds []int64) FigureResult {
	mustSeeds("Fig14", seeds)
	outs := compare(TwitchScenario,
		[]string{"drrs", "drrs-dr", "drrs-schedule", "drrs-subscale"}, seeds)
	rows := rowsFrom(outs)
	from, to := measureWindow(outs)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14 — DRRS mechanism ablation (Twitch), window [%v, %v]\n", from, to)
	fmt.Fprintf(&b, "%-15s %20s %20s\n", "", "Peak(ms)", "Average(ms)")
	for _, mech := range []string{"drrs", "drrs-dr", "drrs-schedule", "drrs-subscale"} {
		r := rows[mech]
		fmt.Fprintf(&b, "%-15s %20s %20s\n", mech, r.PeakMs, r.AvgMs)
	}
	return FigureResult{Title: "fig14", Text: b.String(), Rows: rows}
}

// MultiWave regenerates the multi-wave track for one registered scenario:
// every mechanism runs the scenario's full wave program (e.g. scale-out then
// scale-back), and the table reports each wave's scaling period, migration
// duration, suspension, and propagation delay separately — the per-wave
// decomposition single-wave figures cannot show.
func MultiWave(workloadName string, mechs []string, seeds []int64) FigureResult {
	mustSeeds("MultiWave", seeds)
	if len(mechs) == 0 {
		mechs = []string{"drrs", "meces", "megaphone"}
	}
	sc := ScenarioByName(workloadName, 0)
	outs := compare(func(seed int64) Scenario { return ScenarioByName(workloadName, seed) }, mechs, seeds)
	from, to := measureWindow(outs)

	var b strings.Builder
	fmt.Fprintf(&b, "Multi-wave (%s, waves %s) — per-wave scaling metrics, window [%v, %v]\n",
		workloadName, sc.ProgramString(), from, to)
	fmt.Fprintf(&b, "%-16s %20s %20s\n", "", "Peak(ms)", "Average(ms)")
	rows := make(map[string]Row)
	for _, mech := range mechs {
		var peak, avg []float64
		for _, o := range outs[mech] {
			peak = append(peak, o.PeakIn(from, to))
			avg = append(avg, o.AvgIn(from, to))
		}
		r := Row{PeakMs: NewStat(peak), AvgMs: NewStat(avg)}
		rows[mech] = r
		fmt.Fprintf(&b, "%-16s %20s %20s\n", mech, r.PeakMs, r.AvgMs)
	}
	waves := len(sc.Program())
	for w := 0; w < waves; w++ {
		target := sc.Program()[w].NewParallelism
		fmt.Fprintf(&b, "\nwave %d (→%d instances):\n", w, target)
		fmt.Fprintf(&b, "%-16s %16s %16s %16s %16s %10s\n",
			"", "Scaling(s)", "Migration(s)", "Susp(ms)", "Prop(ms)", "done")
		for _, mech := range mechs {
			var dur, mig, susp, prop []float64
			done := 0
			for _, o := range outs[mech] {
				if w >= len(o.Waves) || o.Waves[w].Scale == nil {
					continue
				}
				wo := o.Waves[w]
				dur = append(dur, wo.ScalingPeriod().Seconds())
				mig = append(mig, wo.Scale.MigrationDuration().Seconds())
				susp = append(susp, wo.Scale.CumulativeSuspension().Millis())
				prop = append(prop, wo.Scale.CumulativePropagationDelay().Millis())
				if wo.Done {
					done++
				}
			}
			r := Row{
				ScalingSec:   NewStat(dur),
				MigrationSec: NewStat(mig),
				SuspensionMs: NewStat(susp),
				PropDelayMs:  NewStat(prop),
			}
			rows[fmt.Sprintf("%s@w%d", mech, w)] = r
			fmt.Fprintf(&b, "%-16s %16s %16s %16s %16s %6d/%d\n",
				mech, r.ScalingSec, r.MigrationSec, r.SuspensionMs, r.PropDelayMs,
				done, len(outs[mech]))
		}
	}
	b.WriteString("\nlatency timelines (1 s means):\n")
	for _, mech := range mechs {
		if len(outs[mech]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-16s %s\n", mech, Sparkline(outs[mech][0], simtime.Second, from, to))
	}
	return FigureResult{Title: "multiwave/" + workloadName, Text: b.String(), Rows: rows}
}

// Sweep fans every (scenario × mechanism × seed) combination out across the
// worker pool and reports one aggregated row per (scenario, mechanism) pair —
// the bulk comparison harness for registered scenarios beyond the paper's
// fixed figure set.
func Sweep(scenarioNames []string, mechs []string, seeds []int64) FigureResult {
	mustSeeds("Sweep", seeds)
	if len(scenarioNames) == 0 {
		scenarioNames = ScenarioNames()
	}
	if len(mechs) == 0 {
		mechs = []string{"drrs", "meces", "megaphone"}
	}
	var specs []RunSpec
	type cell struct{ scenario, mech string }
	var cells []cell
	for _, scn := range scenarioNames {
		for _, mech := range mechs {
			for _, seed := range seeds {
				specs = append(specs, RunSpec{Scenario: ScenarioByName(scn, seed), Mechanism: mech})
				cells = append(cells, cell{scenario: scn, mech: mech})
			}
		}
	}
	results := RunParallel(specs, Workers)
	byCell := make(map[cell][]Outcome)
	for i, c := range cells {
		byCell[c] = append(byCell[c], results[i])
	}

	var b strings.Builder
	b.WriteString("Scenario sweep — per (scenario, mechanism) aggregates across seeds\n")
	fmt.Fprintf(&b, "%-16s %-12s %16s %16s %16s %16s %6s\n",
		"scenario", "mechanism", "Peak(ms)", "Average(ms)", "Scaling(s)", "Susp(ms)", "done")
	rows := make(map[string]Row)
	for _, scn := range scenarioNames {
		for _, mech := range mechs {
			runs := byCell[cell{scenario: scn, mech: mech}]
			var peak, avg, dur, susp []float64
			done := 0
			for _, o := range runs {
				from, to := o.ScaleAt, o.EndAt
				peak = append(peak, o.PeakIn(from, to))
				avg = append(avg, o.AvgIn(from, to))
				dur = append(dur, o.ScalingPeriod().Seconds())
				susp = append(susp, o.TotalSuspension().Millis())
				if o.Done {
					done++
				}
			}
			r := Row{
				PeakMs:       NewStat(peak),
				AvgMs:        NewStat(avg),
				ScalingSec:   NewStat(dur),
				SuspensionMs: NewStat(susp),
				Faults:       faultStats(runs),
				Fitness:      fitnessStats(runs, fitness.DefaultWeights()),
			}
			rows[scn+"/"+mech] = r
			fmt.Fprintf(&b, "%-16s %-12s %16s %16s %16s %16s %4d/%d\n",
				scn, mech, r.PeakMs, r.AvgMs, r.ScalingSec, r.SuspensionMs, done, len(runs))
		}
	}
	return FigureResult{Title: "sweep", Text: b.String(), Rows: rows}
}

// SensitivityPoint is one cell of the Fig 15 grid.
type SensitivityPoint struct {
	Mechanism  string
	RatePerSec float64
	StateBytes int
	Skew       float64
	// Deviation is the mean throughput shortfall below the offered rate over
	// the measurement window (records/s; lower is better).
	Deviation float64
}

// Fig15 regenerates the sensitivity grid: input rate × state size × skew →
// throughput deviation for DRRS, Megaphone, and Meces on the simulated
// 4-node cluster. Rates in records/s, stateBytes total across keys.
func Fig15(seed int64, rates []float64, stateBytes []int, skews []float64, mechs []string) ([]SensitivityPoint, FigureResult) {
	if len(mechs) == 0 {
		mechs = []string{"drrs", "megaphone", "meces"}
	}
	// The grid cells are independent runs: fan them out across Workers.
	var specs []RunSpec
	var cells []SensitivityPoint
	for _, mech := range mechs {
		for _, skew := range skews {
			for _, sb := range stateBytes {
				for _, rate := range rates {
					specs = append(specs, RunSpec{Scenario: SensitivityScenario(seed, rate, sb, skew), Mechanism: mech})
					cells = append(cells, SensitivityPoint{
						Mechanism: mech, RatePerSec: rate, StateBytes: sb, Skew: skew,
					})
				}
			}
		}
	}
	results := RunParallel(specs, Workers)
	pts := cells
	for i, o := range results {
		pts[i].Deviation = o.Throughput.DeviationFrom(pts[i].RatePerSec, o.ScaleAt, o.EndAt)
	}
	var b strings.Builder
	b.WriteString("Fig 15 — Sensitivity: throughput deviation (records/s below offered load; lower is better)\n")
	for _, mech := range mechs {
		fmt.Fprintf(&b, "\n%s:\n", mech)
		for _, skew := range skews {
			fmt.Fprintf(&b, "  skew=%.1f\n", skew)
			fmt.Fprintf(&b, "    %12s", "state\\rate")
			for _, rate := range rates {
				fmt.Fprintf(&b, " %8.0f", rate)
			}
			b.WriteString("\n")
			for _, sb := range stateBytes {
				fmt.Fprintf(&b, "    %10dMB", sb>>20)
				for _, rate := range rates {
					for _, p := range pts {
						if p.Mechanism == mech && p.Skew == skew && p.StateBytes == sb && p.RatePerSec == rate {
							fmt.Fprintf(&b, " %8.0f", p.Deviation)
						}
					}
				}
				b.WriteString("\n")
			}
		}
	}
	return pts, FigureResult{Title: "fig15", Text: b.String()}
}
