package bench

import (
	"drrs/internal/cluster"
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/nexmark"
	"drrs/internal/simtime"
	"drrs/internal/twitch"
	"drrs/internal/workload"
)

// The paper's experiments, scaled down ~10× in time and ~250× in state so a
// full figure regenerates in seconds of wall time. Shapes (who wins, by what
// factor, where crossovers sit) are the reproduction target; EXPERIMENTS.md
// records paper-vs-measured per figure.
//
// Paper setup (V-B): 300 s warm-up, scaling 8→12 instances, 111/128 key
// groups migrated, 1 Gbps network. Here: 10 s warm-up (hold window 5 s),
// same 8→12 over 128 groups, 4 MB/s migration bandwidth.

// horizon bounds every scenario's generation so post-measure drains
// terminate.
const (
	mainWarmup  = simtime.Duration(10 * simtime.Second)
	mainMeasure = simtime.Duration(40 * simtime.Second)
	mainHorizon = mainWarmup + mainMeasure
)

// The registry makes every scenario reachable by name from drrs-bench
// (-list, -workload, sweeps); adding a workload is one Register call plus a
// constructor. EXPERIMENTS.md documents each scenario's down-scaling.
func init() {
	Register(Definition{Name: "q7",
		Description: "NEXMark Q7 sliding-window max: high rate, short window (Figs 10–13)",
		New:         Q7Scenario})
	Register(Definition{Name: "q8",
		Description: "NEXMark Q8 person⋈auction join: low rate, the largest state (Figs 10–13)",
		New:         Q8Scenario})
	Register(Definition{Name: "twitch",
		Description: "seven-operator Twitch loyalty pipeline (Figs 2, 10–14)",
		New:         TwitchScenario})
	Register(Definition{Name: "sensitivity",
		Description: "Fig 15 custom job at the grid midpoint (8K tps, 15 MB, skew 0.5, 4-node cluster)",
		Layout:      "4-node heterogeneous Swarm",
		New: func(seed int64) Scenario {
			return SensitivityScenario(seed, 8000, 15<<20, 0.5)
		}})
	Register(Definition{Name: "flash-crowd",
		Description: "custom job under a 1.25× load spike: scale out into the spike, back after it",
		New:         FlashCrowdScenario})
	Register(Definition{Name: "diurnal",
		Description: "custom job under a compressed day/night ramp with an out-then-back program",
		New:         DiurnalScenario})
	Register(Definition{Name: "hotshift",
		Description: "custom job whose Zipf hot set drifts through the key space during scaling",
		New:         HotShiftScenario})
	Register(Definition{Name: "twitch-rebound",
		Description: "Twitch pipeline scaling 8→12 and back 12→8 once the crowd disperses",
		New:         TwitchReboundScenario})
	// The closed-loop track: scaling is triggered by the workload itself —
	// a control policy observing backlog/throughput/latency decides when and
	// how far to scale, instead of a pre-scripted wave program.
	Register(Definition{Name: "flash-crowd-reactive",
		Description: "1.5× flash crowd with the backlog policy chasing the spike (no script)",
		New:         FlashCrowdReactiveScenario})
	Register(Definition{Name: "diurnal-autoscale",
		Description: "day/night ramp with the predictive policy scaling into the trend",
		New:         DiurnalAutoscaleScenario})
	Register(Definition{Name: "oscillation-guard",
		Description: "hotshift drift under the threshold policy; debounce+hysteresis damp flapping",
		New:         OscillationGuardScenario})
}

// Q7Scenario reproduces the NEXMark Q7 setup: high input rate, short
// sliding window (paper: 20K tps, 10 s/500 ms, ~800 MB state).
func Q7Scenario(seed int64) Scenario {
	return Scenario{
		Name: "q7",
		Build: func(seed int64) (*dataflow.Graph, *engine.CollectSink) {
			return nexmark.BuildQ7(nexmark.Q7Config{
				RatePerSec:        2400, // ×2 sources = 4.8K tps, util ≈ 0.9
				SourceParallelism: 2,
				WindowParallelism: 8,
				MaxKeyGroups:      128,
				Auctions:          2000,
				WindowSize:        simtime.Sec(2),
				Slide:             simtime.Ms(100),
				BytesPerEntry:     200,
				// 4K tps over 8 instances at 1.5 ms/record ≈ 0.75 utilization:
				// the operator is a bottleneck, which is why it is scaling.
				CostPerRecord: 1500 * simtime.Microsecond,
				Duration:      mainHorizon,
				Seed:          seed,
			})
		},
		ScaleOp:        "winmax",
		NewParallelism: 12,
		Warmup:         mainWarmup,
		Measure:        mainMeasure,
		Setup:          simtime.Ms(200),
		Seed:           seed,
	}
}

// Q8Scenario reproduces the NEXMark Q8 setup: low rate, long window, the
// evaluation's largest state (paper: 1K tps, 40 s/5 s, ~3 GB).
func Q8Scenario(seed int64) Scenario {
	return Scenario{
		Name: "q8",
		Build: func(seed int64) (*dataflow.Graph, *engine.CollectSink) {
			return nexmark.BuildQ8(nexmark.Q8Config{
				PersonsPerSec:   480,
				AuctionsPerSec:  720, // 1.2K tps total, util ≈ 0.9
				JoinParallelism: 8,
				MaxKeyGroups:    128,
				People:          3000,
				WindowSize:      simtime.Sec(8),
				Slide:           simtime.Sec(1),
				BytesPerEntry:   1200,
				// 1K tps over 8 instances at 6 ms/record ≈ 0.75 utilization.
				CostPerRecord: 6 * simtime.Millisecond,
				Duration:      simtime.Duration(12+60) * simtime.Second,
				Seed:          seed,
			})
		},
		ScaleOp:        "join",
		NewParallelism: 12,
		Warmup:         simtime.Sec(12),
		Measure:        simtime.Sec(60),
		Setup:          simtime.Ms(200),
		// Larger state, same bandwidth: migration dominates, as in the paper.
		MigrationBandwidth: 4 << 20,
		Seed:               seed,
	}
}

// TwitchScenario reproduces the seven-operator loyalty pipeline (paper:
// ~4M events compressed into 1000 s, ~500 MB of state at scale time).
func TwitchScenario(seed int64) Scenario {
	return Scenario{
		Name: "twitch",
		Build: func(seed int64) (*dataflow.Graph, *engine.CollectSink) {
			return twitch.Build(twitch.Config{
				RatePerSec:         2300, // ×2 sources = 4.6K tps, util ≈ 0.86
				Users:              8000,
				Streamers:          500,
				SourceParallelism:  2,
				LoyaltyParallelism: 8,
				SessionParallelism: 4,
				MaxKeyGroups:       128,
				SessionBytes:       256,
				LoyaltyBytes:       512,
				// 4K tps over 8 loyalty instances at 1.5 ms ≈ 0.75 utilization.
				LoyaltyCost: 1500 * simtime.Microsecond,
				Duration:    mainHorizon,
				Seed:        seed,
			})
		},
		ScaleOp:        twitch.ScalingOperator,
		NewParallelism: 12,
		Warmup:         mainWarmup,
		Measure:        mainMeasure,
		Setup:          simtime.Ms(200),
		Seed:           seed,
	}
}

// The dynamic-shape track: the paper's custom job (Section V-A) under
// phase-programmable load instead of a fixed rate, exercising multi-wave
// scaling programs. Same scaled-down envelope as the main track: 128 key
// groups, 8 initial instances at ~0.75 utilization, ~8 MB of keyed state,
// 4 MB/s migration bandwidth.
const (
	shapeWarmup  = simtime.Duration(10 * simtime.Second)
	shapeMeasure = simtime.Duration(35 * simtime.Second)
	shapeHorizon = shapeWarmup + shapeMeasure
)

// shapedScenario builds one dynamic-shape scenario over the custom job,
// through the split Job/Traffic API (Split keeps the stream byte-identical
// to the pre-split builds, so the pinned digests still hold).
func shapedScenario(name string, skew float64, shape workload.Shape, waves []Wave, seed int64) Scenario {
	job, traffic := workload.Config{
		SourceParallelism: 2,
		AggParallelism:    8,
		MaxKeyGroups:      128,
		Keys:              8000,
		RatePerSec:        2000, // ×2 sources = 4K tps baseline, util ≈ 0.75
		Skew:              skew,
		StateBytesPerKey:  1024,
		// 4K tps over 8 instances at 1.5 ms/record ≈ 0.75 utilization,
		// leaving headroom the shapes deliberately eat into.
		CostPerRecord: 1500 * simtime.Microsecond,
		Shape:         shape,
		Duration:      shapeHorizon,
		Seed:          seed,
	}.Split()
	return Scenario{
		Name:    name,
		Job:     job,
		Traffic: traffic,
		ScaleOp: "agg",
		Waves:   waves,
		Warmup:  shapeWarmup,
		Measure: shapeMeasure,
		Setup:   simtime.Ms(200),
		Seed:    seed,
	}
}

// FlashCrowdScenario is the multi-wave flagship: a flash crowd multiplies
// load by 1.25× for 8 s right as the warmup ends; the program scales out
// 8→12 into the spike and back 12→8 once it disperses.
func FlashCrowdScenario(seed int64) Scenario {
	return shapedScenario("flash-crowd", 0.8,
		workload.FlashCrowd(shapeWarmup, simtime.Sec(8), 1.25),
		[]Wave{
			{NewParallelism: 12},
			{Gap: simtime.Sec(8), NewParallelism: 8},
		}, seed)
}

// DiurnalScenario drifts offered load between 0.7× and 1.1× on a compressed
// 24 s day/night cycle, scaling out near the peak and back as load falls.
func DiurnalScenario(seed int64) Scenario {
	return shapedScenario("diurnal", 0.5,
		workload.Diurnal(simtime.Sec(24), 0.7, 1.1),
		[]Wave{
			{NewParallelism: 12},
			{Gap: simtime.Sec(10), NewParallelism: 8},
		}, seed)
}

// HotShiftScenario keeps the rate flat but migrates the Zipf hot set by 4%
// of the key space every 2 s, so the key groups that matter at scale time
// are not the ones that matter when migration finishes.
func HotShiftScenario(seed int64) Scenario {
	sc := shapedScenario("hotshift", 1.0,
		workload.HotKeyDrift(simtime.Sec(2), 0.04), nil, seed)
	sc.NewParallelism = 12
	return sc
}

// FlashCrowdReactiveScenario is the closed-loop flagship: a 1.5× flash crowd
// arrives right after warmup with no scripted response — the backlog policy
// sees source queues grow (offered 6K rec/s against ~5.3K capacity at 8
// instances), scales out into the spike, and chases the drain back down once
// the crowd disperses. NewParallelism=12 remains as the scripted fallback so
// `-driver script` runs the paper-style comparison on the same workload.
func FlashCrowdReactiveScenario(seed int64) Scenario {
	sc := shapedScenario("flash-crowd-reactive", 0.8,
		workload.FlashCrowd(shapeWarmup, simtime.Sec(10), 1.5), nil, seed)
	sc.NewParallelism = 12
	sc.Driver = &ControllerDriver{Policy: "backlog", Min: 4, Max: 16}
	return sc
}

// DiurnalAutoscaleScenario drives the compressed day/night ramp with the
// predictive policy: the least-squares trend over recent throughput scales
// out on the rising edge — before queues form — and back down the far side.
func DiurnalAutoscaleScenario(seed int64) Scenario {
	sc := shapedScenario("diurnal-autoscale", 0.5,
		workload.Diurnal(simtime.Sec(24), 0.7, 1.1), nil, seed)
	sc.NewParallelism = 12
	sc.Driver = &ControllerDriver{Policy: "predictive", Min: 4, Max: 16}
	return sc
}

// OscillationGuardScenario stresses the controller's damping: hot-key drift
// at skew 1.0 produces transient per-instance hotspots whose backlog blips
// would flap a naive autoscaler. The threshold policy runs with the default
// debounce and hysteresis; the audit trail records how many decisions
// actually fire.
func OscillationGuardScenario(seed int64) Scenario {
	sc := shapedScenario("oscillation-guard", 1.0,
		workload.HotKeyDrift(simtime.Sec(2), 0.04), nil, seed)
	sc.NewParallelism = 12
	sc.Driver = &ControllerDriver{Policy: "threshold", Min: 4, Max: 16}
	return sc
}

// TwitchReboundScenario replays the Twitch pipeline with an out-then-back
// program: 8→12 at warmup, 12→8 eight seconds after the first wave settles.
func TwitchReboundScenario(seed int64) Scenario {
	sc := TwitchScenario(seed)
	sc.Name = "twitch-rebound"
	sc.Waves = []Wave{
		{NewParallelism: 12},
		{Gap: simtime.Sec(8), NewParallelism: 8},
	}
	return sc
}

// SwarmCluster builds the paper's 4-node heterogeneous Docker Swarm stand-in
// (two Silver-class nodes, one Gold-class, plus the primary), with per-node
// migration bandwidth representing the 1 Gbps fabric, scaled with the state.
func SwarmCluster(migBW float64) func(*simtime.Scheduler) *cluster.Cluster {
	return func(s *simtime.Scheduler) *cluster.Cluster {
		c := cluster.New(s) // "local" = primary Gold 5218
		c.AddNode("silver-1", 0.9, migBW)
		c.AddNode("silver-2", 0.9, migBW)
		c.AddNode("gold-6230", 1.05, migBW)
		return c
	}
}

// SensitivityScenario builds the Fig 15 custom-workload setup: 256 key
// groups, 25→30 instances (229 groups migrate), 4-node cluster. Input rate
// (records/s), total state size (bytes), and Zipf skewness are the swept
// parameters; the paper sweeps 5K–20K tps, 5–30 GB, skew 0–1.5 (state here
// is scaled ~1000×).
func SensitivityScenario(seed int64, ratePerSec float64, totalStateBytes int, skew float64) Scenario {
	const keys = 20000
	perKey := totalStateBytes / keys
	if perKey < 1 {
		perKey = 1
	}
	job, traffic := workload.Config{
		SourceParallelism: 2,
		AggParallelism:    25,
		MaxKeyGroups:      256,
		Keys:              keys,
		RatePerSec:        ratePerSec / 2,
		Skew:              skew,
		StateBytesPerKey:  perKey,
		// Capacity ≈ 12.5K rec/s at 25 instances, 15K at 30: the
		// swept rates (4–12K) go from comfortable to near-saturated,
		// matching the paper's 5–20K tps sweep against its cluster.
		CostPerRecord: 2 * simtime.Millisecond,
		Duration:      simtime.Duration(5+25) * simtime.Second,
		Seed:          seed,
	}.Split()
	return Scenario{
		Name:           "sensitivity",
		Job:            job,
		Traffic:        traffic,
		ScaleOp:        "agg",
		NewParallelism: 30,
		Warmup:         simtime.Sec(5),
		Measure:        simtime.Sec(25),
		Setup:          simtime.Ms(200),
		Cluster: func(s *simtime.Scheduler) *cluster.Cluster {
			c := SwarmCluster(4 << 20)(s)
			for _, op := range []string{"gen", "agg", "sink"} {
				c.PlaceRoundRobin(op, 32)
			}
			return c
		},
		Seed: seed,
	}
}
