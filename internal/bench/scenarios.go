package bench

import (
	"drrs/internal/cluster"
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/nexmark"
	"drrs/internal/simtime"
	"drrs/internal/twitch"
	"drrs/internal/workload"
)

// The paper's experiments, scaled down ~10× in time and ~250× in state so a
// full figure regenerates in seconds of wall time. Shapes (who wins, by what
// factor, where crossovers sit) are the reproduction target; EXPERIMENTS.md
// records paper-vs-measured per figure.
//
// Paper setup (V-B): 300 s warm-up, scaling 8→12 instances, 111/128 key
// groups migrated, 1 Gbps network. Here: 10 s warm-up (hold window 5 s),
// same 8→12 over 128 groups, 4 MB/s migration bandwidth.

// horizon bounds every scenario's generation so post-measure drains
// terminate.
const (
	mainWarmup  = simtime.Duration(10 * simtime.Second)
	mainMeasure = simtime.Duration(40 * simtime.Second)
	mainHorizon = mainWarmup + mainMeasure
)

// Q7Scenario reproduces the NEXMark Q7 setup: high input rate, short
// sliding window (paper: 20K tps, 10 s/500 ms, ~800 MB state).
func Q7Scenario(seed int64) Scenario {
	return Scenario{
		Name: "q7",
		Build: func(seed int64) (*dataflow.Graph, *engine.CollectSink) {
			return nexmark.BuildQ7(nexmark.Q7Config{
				RatePerSec:        2400, // ×2 sources = 4.8K tps, util ≈ 0.9
				SourceParallelism: 2,
				WindowParallelism: 8,
				MaxKeyGroups:      128,
				Auctions:          2000,
				WindowSize:        simtime.Sec(2),
				Slide:             simtime.Ms(100),
				BytesPerEntry:     200,
				// 4K tps over 8 instances at 1.5 ms/record ≈ 0.75 utilization:
				// the operator is a bottleneck, which is why it is scaling.
				CostPerRecord: 1500 * simtime.Microsecond,
				Duration:      mainHorizon,
				Seed:          seed,
			})
		},
		ScaleOp:        "winmax",
		NewParallelism: 12,
		Warmup:         mainWarmup,
		Measure:        mainMeasure,
		Setup:          simtime.Ms(200),
		Seed:           seed,
	}
}

// Q8Scenario reproduces the NEXMark Q8 setup: low rate, long window, the
// evaluation's largest state (paper: 1K tps, 40 s/5 s, ~3 GB).
func Q8Scenario(seed int64) Scenario {
	return Scenario{
		Name: "q8",
		Build: func(seed int64) (*dataflow.Graph, *engine.CollectSink) {
			return nexmark.BuildQ8(nexmark.Q8Config{
				PersonsPerSec:   480,
				AuctionsPerSec:  720, // 1.2K tps total, util ≈ 0.9
				JoinParallelism: 8,
				MaxKeyGroups:    128,
				People:          3000,
				WindowSize:      simtime.Sec(8),
				Slide:           simtime.Sec(1),
				BytesPerEntry:   1200,
				// 1K tps over 8 instances at 6 ms/record ≈ 0.75 utilization.
				CostPerRecord: 6 * simtime.Millisecond,
				Duration:      simtime.Duration(12+60) * simtime.Second,
				Seed:          seed,
			})
		},
		ScaleOp:        "join",
		NewParallelism: 12,
		Warmup:         simtime.Sec(12),
		Measure:        simtime.Sec(60),
		Setup:          simtime.Ms(200),
		// Larger state, same bandwidth: migration dominates, as in the paper.
		MigrationBandwidth: 4 << 20,
		Seed:               seed,
	}
}

// TwitchScenario reproduces the seven-operator loyalty pipeline (paper:
// ~4M events compressed into 1000 s, ~500 MB of state at scale time).
func TwitchScenario(seed int64) Scenario {
	return Scenario{
		Name: "twitch",
		Build: func(seed int64) (*dataflow.Graph, *engine.CollectSink) {
			return twitch.Build(twitch.Config{
				RatePerSec:         2300, // ×2 sources = 4.6K tps, util ≈ 0.86
				Users:              8000,
				Streamers:          500,
				SourceParallelism:  2,
				LoyaltyParallelism: 8,
				SessionParallelism: 4,
				MaxKeyGroups:       128,
				SessionBytes:       256,
				LoyaltyBytes:       512,
				// 4K tps over 8 loyalty instances at 1.5 ms ≈ 0.75 utilization.
				LoyaltyCost: 1500 * simtime.Microsecond,
				Duration:    mainHorizon,
				Seed:        seed,
			})
		},
		ScaleOp:        twitch.ScalingOperator,
		NewParallelism: 12,
		Warmup:         mainWarmup,
		Measure:        mainMeasure,
		Setup:          simtime.Ms(200),
		Seed:           seed,
	}
}

// SwarmCluster builds the paper's 4-node heterogeneous Docker Swarm stand-in
// (two Silver-class nodes, one Gold-class, plus the primary), with per-node
// migration bandwidth representing the 1 Gbps fabric, scaled with the state.
func SwarmCluster(migBW float64) func(*simtime.Scheduler) *cluster.Cluster {
	return func(s *simtime.Scheduler) *cluster.Cluster {
		c := cluster.New(s) // "local" = primary Gold 5218
		c.AddNode("silver-1", 0.9, migBW)
		c.AddNode("silver-2", 0.9, migBW)
		c.AddNode("gold-6230", 1.05, migBW)
		return c
	}
}

// SensitivityScenario builds the Fig 15 custom-workload setup: 256 key
// groups, 25→30 instances (229 groups migrate), 4-node cluster. Input rate
// (records/s), total state size (bytes), and Zipf skewness are the swept
// parameters; the paper sweeps 5K–20K tps, 5–30 GB, skew 0–1.5 (state here
// is scaled ~1000×).
func SensitivityScenario(seed int64, ratePerSec float64, totalStateBytes int, skew float64) Scenario {
	const keys = 20000
	perKey := totalStateBytes / keys
	if perKey < 1 {
		perKey = 1
	}
	return Scenario{
		Name: "sensitivity",
		Build: func(seed int64) (*dataflow.Graph, *engine.CollectSink) {
			g, sink := workload.Build(workload.Config{
				SourceParallelism: 2,
				AggParallelism:    25,
				MaxKeyGroups:      256,
				Keys:              keys,
				RatePerSec:        ratePerSec / 2,
				Skew:              skew,
				StateBytesPerKey:  perKey,
				// Capacity ≈ 12.5K rec/s at 25 instances, 15K at 30: the
				// swept rates (4–12K) go from comfortable to near-saturated,
				// matching the paper's 5–20K tps sweep against its cluster.
				CostPerRecord: 2 * simtime.Millisecond,
				Duration:      simtime.Duration(5+25) * simtime.Second,
				Seed:          seed,
			})
			return g, sink
		},
		ScaleOp:        "agg",
		NewParallelism: 30,
		Warmup:         simtime.Sec(5),
		Measure:        simtime.Sec(25),
		Setup:          simtime.Ms(200),
		Cluster: func(s *simtime.Scheduler) *cluster.Cluster {
			c := SwarmCluster(4 << 20)(s)
			for _, op := range []string{"gen", "agg", "sink"} {
				c.PlaceRoundRobin(op, 32)
			}
			return c
		},
		Seed: seed,
	}
}
