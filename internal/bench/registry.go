package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Definition is one registered scenario: a name, a one-line description for
// listings, and a constructor. Registering a scenario is all it takes to make
// it reachable from drrs-bench (-list, -workload, sweeps) and the figure
// harnesses.
type Definition struct {
	Name        string
	Description string
	// Layout names the deployment substrate for listings ("" reads as the
	// default flat single-node cluster).
	Layout string
	// Traffic is a one-line arrival-stream summary for listings; "" derives
	// it from the scenario's Traffic (TrafficSummary).
	Traffic string
	New     func(seed int64) Scenario
}

// TrafficSummary resolves the listing's traffic line: the explicit Traffic
// string, else the constructed scenario's own description.
func (def Definition) TrafficSummary() string {
	if def.Traffic != "" {
		return def.Traffic
	}
	return def.New(1).TrafficString()
}

// registry is populated from init functions (scenarios.go) and read-only
// afterwards, so the parallel runners need no locking.
var (
	registry = map[string]Definition{}
	regOrder []string
)

// Register adds a scenario definition. It panics on duplicates or malformed
// definitions — both are programming errors caught at init time.
func Register(def Definition) {
	if def.Name == "" || def.New == nil {
		panic("bench: Register needs a name and a constructor")
	}
	if _, dup := registry[def.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate scenario %q", def.Name))
	}
	registry[def.Name] = def
	regOrder = append(regOrder, def.Name)
}

// Definitions returns all registered scenarios in registration order.
func Definitions() []Definition {
	out := make([]Definition, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, registry[name])
	}
	return out
}

// ScenarioNames returns the registered names in registration order.
func ScenarioNames() []string { return append([]string(nil), regOrder...) }

// ScenarioByName builds a registered scenario for the seed. Unknown names
// panic with the full list of known ones, since they indicate a harness
// misconfiguration the caller should have validated.
func ScenarioByName(name string, seed int64) Scenario {
	def, ok := registry[name]
	if !ok {
		known := ScenarioNames()
		sort.Strings(known)
		panic(fmt.Sprintf("bench: unknown workload %q (known: %s)", name, strings.Join(known, ", ")))
	}
	return def.New(seed)
}
