package bench

import (
	"testing"

	"drrs/internal/scaling"
)

// goldenDigests pins the OutcomeDigest of fixed-seed runs. The values were
// recorded on the boxed (pre-slab, timer-per-record) data plane and must
// survive every perf refactor unchanged: same latency curve sample for
// sample, same throughput buckets, same migration byte accounting, same
// per-wave scaling metrics. A mismatch means an optimization changed what
// the simulated system *does*, not just how fast the simulator runs —
// rerecord only with a semantic change you can defend in review.
//
// Raw scheduler event counts are deliberately outside the digest (see
// OutcomeDigest): wake coalescing and batched emission may change them.
var goldenDigests = []struct {
	scenario string
	mech     string
	seed     int64
	want     uint64
}{
	{"twitch", "drrs", 7, 0x79187e882232338c},
	{"twitch", "no-scale", 7, 0xe14e359c8c083a1d},
	{"bigcluster-128", "drrs", 3, 0xc0ecb820c15b5e67},
	// Closed-loop: the digest additionally folds in the controller's
	// decision audit trail, so a policy or controller change that shifts any
	// decision (time, target, supersession) fails here.
	{"flash-crowd-reactive", "drrs", 5, 0x3d5a2fbe3a92a654},
	// Chaos track: the digest additionally folds in the fault summary
	// (crashes, failed transfers, recovered/lost groups, replay accounting)
	// and each decision's Recovery flag. Faults fire at planned virtual-time
	// offsets from a dedicated RNG stream, so a faulted run pins exactly like
	// a healthy one — across two seeds each, per the chaos acceptance bar.
	{"node-loss-mid-migrate", "drrs", 1, 0x6f6ae03c41252add},
	{"node-loss-mid-migrate", "drrs", 2, 0x450e5f559fae31bf},
	{"straggler-rack", "drrs", 1, 0xe4162c7acf3710f7},
	{"straggler-rack", "drrs", 2, 0x850848da37ede3ff},
	// Re-pinned when the chaos search's liveness oracle caught a wedge in the
	// revert path: a reverted chunk's destination was never woken, so rerouted
	// records (and the confirm behind them) stayed suspension-blocked on a
	// chunk that would never arrive — the seed-2 run sat at done=false with a
	// permanently in-flight operation. The old digests pinned that bug.
	{"flaky-uplink", "drrs", 1, 0xd5e7c2e54d3c0f9d},
	{"flaky-uplink", "drrs", 2, 0x5bf96fca3136d95d},
	// Graceful degradation: the retry scenario partitions r1 right before
	// the scale-out's cross-rack transfers launch, so every chunk toward r1
	// rides the capped-backoff retry loop (3 deterministic re-attempts per
	// seed) and lands after the heal; the digest additionally folds the
	// retry counter. A backoff, classification, or degraded-debounce change
	// that shifts any re-attempt fails here.
	{"flaky-uplink-retry", "drrs", 1, 0x99d35eee7cde67c1},
	{"flaky-uplink-retry", "drrs", 2, 0x5e4ecfed2501f675},
	// Cohort traffic: million-users exercises the full Spec surface (all four
	// arrival processes, shared Zipf tables, staggered diurnal phases, hot-key
	// drift, fixed key sets) under backlog-driven autoscaling, across two
	// seeds; trace-replay pins the trace codec end to end — a format or
	// repartition change that moves any arrival fails here.
	{"million-users", "drrs", 1, 0x6ea3f3664d90c4d9},
	{"million-users", "drrs", 2, 0xdc82e6b67928e013},
	{"trace-replay", "drrs", 1, 0x17c13a9bce72a33d},
}

// TestGoldenDigests replays each pinned scenario and compares the digest.
// twitch covers the seven-operator pipeline end to end (typed payloads
// through keyed reduce, map filters, markers, and a full DRRS scaling
// operation); bigcluster-128 covers the batched workload generator, the
// rack fabric's byte accounting, and 256→320-instance migration.
func TestGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs simulate a few hundred virtual seconds")
	}
	for _, c := range goldenDigests {
		c := c
		t.Run(c.scenario+"/"+c.mech, func(t *testing.T) {
			// RunWith with a fresh-factory: controller scenarios launch as
			// many operations as the policy decides.
			o := ScenarioByName(c.scenario, c.seed).
				RunWith(func() scaling.Mechanism { return Mechanisms(c.mech) })
			if got := OutcomeDigest(o); got != c.want {
				t.Errorf("outcome digest 0x%016x, want 0x%016x — the refactor changed simulation semantics",
					got, c.want)
			}
		})
	}
}

// TestOutcomeDigestSensitivity guards the digest itself: different seeds
// (and different mechanisms) must not collide, or the golden test would
// wave through regressions.
func TestOutcomeDigestSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("digest sensitivity simulates two scenario runs")
	}
	a := OutcomeDigest(TwitchScenario(7).Run(nil))
	b := OutcomeDigest(TwitchScenario(8).Run(nil))
	if a == b {
		t.Fatal("digest ignored the seed")
	}
}
