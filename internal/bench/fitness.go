package bench

import (
	"drrs/internal/fitness"
	"drrs/internal/simtime"
)

// instanceSeconds integrates the scaled operator's deployed parallelism over
// the run clock from the wave timeline: p0 instances until the first launched
// wave, max(previous, target) while an operation is in flight (scale-out
// deploys its new instances up front; scale-in keeps the old ones busy until
// migration drains), and the wave's target once it completes. An incomplete
// final wave stays at its in-flight level to the end of the run.
func instanceSeconds(p0 int, waves []WaveOutcome, end simtime.Time) float64 {
	cur := p0
	var t simtime.Time
	var total float64
	for i := range waves {
		w := &waves[i]
		if w.Scale == nil {
			// Never launched (scripted program outran the horizon).
			continue
		}
		if w.ScaleAt > t {
			total += float64(cur) * w.ScaleAt.Sub(t).Seconds()
			t = w.ScaleAt
		}
		alive := cur
		if w.Wave.NewParallelism > alive {
			alive = w.Wave.NewParallelism
		}
		stop := end
		if w.Done && w.DoneAt < end {
			stop = w.DoneAt
		}
		if stop > t {
			total += float64(alive) * stop.Sub(t).Seconds()
			t = stop
		}
		if w.Done {
			cur = w.Wave.NewParallelism
		} else {
			cur = alive
		}
	}
	if end > t {
		total += float64(cur) * end.Sub(t).Seconds()
	}
	return total
}

// FitnessInput adapts the outcome to the fitness package's neutral Input:
// the whole run is scored (warmup buckets sit at the baseline, so they never
// violate), against the warmup latency level the stabilization rule already
// uses.
func (o Outcome) FitnessInput() fitness.Input {
	in := fitness.Input{
		PreAvgMs:         o.PreAvgMs,
		From:             0,
		To:               o.EndAt,
		Decisions:        o.Decisions,
		TransferredBytes: o.TransferredBytes,
		InstanceSeconds:  o.InstanceSeconds,
	}
	if o.Latency != nil {
		in.Latency = o.Latency.Series
	}
	return in
}

// Fitness measures the run's objective vector.
func (o Outcome) Fitness() fitness.Components { return fitness.Measure(o.FitnessInput()) }

// FitnessStats aggregates per-run fitness components across seeds — the
// figure rows' machine-readable fitness columns (drrs-bench -json), so a
// search artifact carries its own objective values.
type FitnessStats struct {
	SLOViolations   Stat
	MigrationMB     Stat
	InstanceSeconds Stat
	Oscillations    Stat
	// Score is the weighted scalar under the weights the figure ran with
	// (DefaultWeights unless the caller chose otherwise).
	Score Stat
}

// fitnessStats aggregates runs' fitness vectors under w.
func fitnessStats(runs []Outcome, w fitness.Weights) *FitnessStats {
	if len(runs) == 0 {
		return nil
	}
	var slo, mig, inst, osc, score []float64
	for _, o := range runs {
		c := o.Fitness()
		slo = append(slo, c.SLOViolations)
		mig = append(mig, c.MigrationMB)
		inst = append(inst, c.InstanceSeconds)
		osc = append(osc, c.Oscillations)
		score = append(score, c.Score(w))
	}
	return &FitnessStats{
		SLOViolations:   NewStat(slo),
		MigrationMB:     NewStat(mig),
		InstanceSeconds: NewStat(inst),
		Oscillations:    NewStat(osc),
		Score:           NewStat(score),
	}
}
