package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"drrs/internal/scaling"
)

// Workers is the scenario-runner worker count used by the figure harnesses:
// 0 (the default) means GOMAXPROCS, 1 forces sequential execution.
// cmd/drrs-bench exposes it as -parallel.
//
// Parallelism is across runs only: each simulation owns a private scheduler,
// clock, RNG streams, and metrics, and stays single-threaded and
// deterministic. Results are therefore bit-for-bit identical at any worker
// count; only wall time changes.
var Workers int

// EventsSimulated counts scheduler events fired across all Scenario.Run
// calls in this process (atomically, so parallel runs can share it). The
// perf reporter in cmd/drrs-bench reads deltas around each figure.
var EventsSimulated atomic.Uint64

// RunSpec names one independent (scenario, mechanism) run for RunParallel.
// The mechanism is constructed inside the worker, fresh per scaling wave
// (mechanisms carry per-operation state, so a shared instance would race —
// and could not drive a second wave).
type RunSpec struct {
	Scenario  Scenario
	Mechanism string
}

// run executes one spec with a fresh mechanism per wave.
func (sp RunSpec) run() Outcome {
	return sp.Scenario.RunWith(func() scaling.Mechanism { return Mechanisms(sp.Mechanism) })
}

// RunParallel executes specs across a worker pool and returns outcomes in
// spec order. workers <= 0 selects GOMAXPROCS.
func RunParallel(specs []RunSpec, workers int) []Outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	out := make([]Outcome, len(specs))
	if workers <= 1 {
		for i, sp := range specs {
			out[i] = sp.run()
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				out[i] = specs[i].run()
			}
		}()
	}
	wg.Wait()
	return out
}
