// Package cliopts binds and applies the run-override flags shared by
// cmd/drrs-bench and cmd/drrs-sim: cluster topology, placement policy,
// driving mode, control policy, fault plan, and trace record/replay. Both
// binaries get the same flag names, help text, and validation from one
// place, so they cannot drift.
package cliopts

import (
	"flag"
	"fmt"
	"strings"

	"drrs/internal/bench"
	"drrs/internal/control"
)

// Common holds the shared override flags after parsing.
type Common struct {
	Topology  string
	Placement string
	Driver    string
	Policy    string
	Faults    string
	Record    string
	Replay    string
}

// Bind registers the shared flags on fs (call before fs.Parse).
func (c *Common) Bind(fs *flag.FlagSet) {
	fs.StringVar(&c.Topology, "topology", "",
		"override the run's cluster: "+strings.Join(bench.Topologies(), " | "))
	fs.StringVar(&c.Placement, "placement", "",
		"override the run's placement policy: spread | pack | rack-local")
	fs.StringVar(&c.Driver, "driver", "",
		"override the run's driving: script | controller")
	fs.StringVar(&c.Policy, "policy", "",
		"control policy for controller driving: "+strings.Join(control.PolicyNames(), " | "))
	fs.StringVar(&c.Faults, "faults", "",
		"override the run's fault plan: a fault spec (e.g. crash@12s:node=r0n1,restart=6s;ckpt=2s) or off")
	fs.StringVar(&c.Record, "record", "",
		"record the run's arrival stream to this trace file (single-run mode)")
	fs.StringVar(&c.Replay, "replay", "",
		"replay a recorded trace file as the run's traffic")
}

// Apply validates the parsed flags and installs the bench-wide overrides.
// The bench setters validate eagerly by panicking (they run before any
// simulation); Apply converts those panics into errors so the binaries can
// print a usage message instead of a stack trace.
func (c *Common) Apply() (err error) {
	if c.Record != "" && c.Replay != "" {
		return fmt.Errorf("-record and -replay are mutually exclusive: a replayed run would just re-record its input trace")
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	bench.SetClusterOverride(c.Topology, c.Placement)
	bench.SetDriverOverride(c.Driver, c.Policy)
	bench.SetFaultsOverride(c.Faults)
	bench.SetTrafficOverride(c.Replay)
	return nil
}

// Reset clears every bench-wide override Apply installs; tests use it to
// leave the process-global state clean.
func Reset() {
	bench.SetClusterOverride("", "")
	bench.SetDriverOverride("", "")
	bench.SetFaultsOverride("")
	bench.SetTrafficOverride("")
}
