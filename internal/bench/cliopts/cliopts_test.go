package cliopts

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"drrs/internal/bench"
	"drrs/internal/scaling"
	"drrs/internal/workload"
)

// parse binds a fresh Common onto a throwaway FlagSet and parses args.
func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	var c Common
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Bind(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return &c
}

func TestBindRegistersSharedFlags(t *testing.T) {
	c := parse(t,
		"-topology", "rack4x4", "-placement", "spread",
		"-driver", "controller", "-policy", "backlog",
		"-faults", "off", "-replay", "x.trace")
	if c.Topology != "rack4x4" || c.Placement != "spread" || c.Driver != "controller" ||
		c.Policy != "backlog" || c.Faults != "off" || c.Replay != "x.trace" {
		t.Fatalf("flags did not land in Common: %+v", c)
	}
}

func TestApplyInstallsAndResetClears(t *testing.T) {
	defer Reset()
	dir := t.TempDir()
	trace := workload.Synthesize(workload.Live(workload.Spec{
		Cohorts:  []workload.Cohort{workload.DefaultCohort()},
		Duration: 100,
	}), 1)
	path := filepath.Join(dir, "t.trace")
	if err := trace.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	c := parse(t, "-topology", "rack4x4", "-driver", "controller", "-policy", "backlog",
		"-faults", "off", "-replay", path)
	if err := c.Apply(); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	Reset()
	// After Reset a scenario runs with its own choices again; the cheapest
	// observable check is that Apply+Reset round-trips without panicking and
	// a followup Apply of empty options succeeds.
	if err := parse(t).Apply(); err != nil {
		t.Fatalf("Apply of empty options after Reset: %v", err)
	}
}

func TestApplyRejectsBadValuesAsErrors(t *testing.T) {
	defer Reset()
	for _, args := range [][]string{
		{"-topology", "nonexistent"},
		{"-placement", "nonexistent"},
		{"-driver", "nonexistent"},
		{"-policy", "nonexistent"},
		{"-faults", "gibberish"},
		{"-replay", "does-not-exist.trace"},
	} {
		c := parse(t, args...)
		if err := c.Apply(); err == nil {
			t.Errorf("Apply(%v) accepted a bad value", args)
		}
		Reset()
	}
}

func TestApplyRejectsRecordPlusReplay(t *testing.T) {
	defer Reset()
	c := parse(t, "-record", "a.trace", "-replay", "b.trace")
	err := c.Apply()
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Apply allowed -record with -replay: %v", err)
	}
}

// TestDriverOverrideReachesRuns exercises the full path: Apply installs the
// override, and a scripted scenario then runs controller-driven.
func TestDriverOverrideReachesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full scenario")
	}
	defer Reset()
	c := parse(t, "-driver", "controller", "-policy", "backlog")
	if err := c.Apply(); err != nil {
		t.Fatal(err)
	}
	sc := bench.ScenarioByName("flash-crowd", 1)
	out := sc.RunWith(func() scaling.Mechanism { return bench.Mechanisms("drrs") })
	if out.Driver != "controller" {
		t.Fatalf("override did not reach the run: driver %q", out.Driver)
	}
}
