package bench

import (
	"math"

	"drrs/internal/metrics"
)

// OutcomeDigest folds everything semantically observable about a run into one
// 64-bit FNV-1a hash: record counts, the full latency and throughput series,
// the scaling timeline, migration byte accounting, and every wave's
// delay-accounting metrics. Perf refactors must keep the digest bit-for-bit
// stable at a fixed seed; golden_test.go pins the values for the twitch and
// bigcluster-128 scenarios.
//
// Deliberately excluded: Outcome.Events (raw scheduler event counts) and
// anything wall-clock. Those describe how much work the simulator did, not
// what the simulated system did — batching and event-coalescing optimizations
// are allowed to change them.
func OutcomeDigest(o Outcome) uint64 {
	h := newDigest()
	h.str(o.Mechanism)
	h.i64(o.Seed)
	h.b(o.Done)
	h.i64(int64(o.ScaleAt))
	h.i64(int64(o.EndAt))
	h.i64(int64(o.StabilizedAt))
	h.b(o.Stabilized)
	h.f64(o.PreAvgMs)
	h.i64(o.Throughput.Total())
	h.i64(o.TransferredBytes)
	h.i64(o.CrossRackBytes)
	h.series(o.Latency.Series)
	h.series(o.Throughput.Series())
	h.i64(int64(len(o.Waves)))
	for i := range o.Waves {
		w := &o.Waves[i]
		h.i64(int64(w.FromParallelism))
		h.i64(int64(w.Wave.NewParallelism))
		h.i64(int64(w.ScaleAt))
		h.b(w.Done)
		h.i64(int64(w.DoneAt))
		h.i64(int64(w.StabilizedAt))
		h.b(w.Stabilized)
		if w.Scale != nil {
			h.i64(int64(w.Scale.CumulativeSuspension()))
			h.i64(int64(w.Scale.CumulativePropagationDelay()))
			h.i64(int64(w.Scale.AvgDependencyOverhead()))
			h.i64(int64(w.Scale.MigrationDuration()))
			h.i64(int64(w.Scale.UnitsMigrated()))
			h.series(w.Scale.SuspensionCurve())
		}
	}
	if len(o.Waves) == 0 && o.Scale != nil {
		h.i64(int64(o.Scale.CumulativeSuspension()))
		h.i64(int64(o.Scale.UnitsMigrated()))
	}
	// The controller audit trail folds in only when present, so every digest
	// pinned before the control plane existed (scripted runs have no
	// decisions) stays valid.
	if len(o.Decisions) > 0 {
		h.i64(int64(len(o.Decisions)))
		for _, d := range o.Decisions {
			h.i64(int64(d.At))
			h.str(d.Policy)
			h.i64(int64(d.From))
			h.i64(int64(d.To))
			h.b(d.Superseded)
			h.b(d.Launched)
			h.i64(int64(d.LaunchedAt))
			h.b(d.Done)
			h.i64(int64(d.DoneAt))
		}
	}
	// The fault block folds only for faulted runs (healthy runs carry nil),
	// so every digest pinned before the fault layer existed stays valid. The
	// per-decision Recovery flags fold here rather than in the decisions loop
	// above for the same reason.
	if f := o.Faults; f != nil {
		h.i64(int64(f.Events))
		h.i64(int64(f.Crashes))
		h.i64(int64(f.FailedTransfers))
		h.i64(int64(f.RecoveredGroups))
		h.i64(int64(f.LostGroups))
		h.i64(int64(f.Replans))
		h.u64(f.RecordsLost)
		h.u64(f.ReplayedRecords)
		h.f64(f.RecoveryMs)
		// Tagged and conditional for the same reason the whole block is:
		// retry landed after the first six chaos digests were pinned, and
		// only retry-armed runs may fold it.
		if f.RetriedTransfers > 0 {
			h.str("retries")
			h.i64(int64(f.RetriedTransfers))
		}
		for _, d := range o.Decisions {
			h.b(d.Recovery)
		}
	}
	return h.sum
}

// digest is a tiny FNV-1a accumulator; math/hash imports stay out of the hot
// simulation packages.
type digest struct{ sum uint64 }

func newDigest() *digest { return &digest{sum: 1469598103934665603} }

func (d *digest) byte(b byte) {
	d.sum ^= uint64(b)
	d.sum *= 1099511628211
}

func (d *digest) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.byte(byte(v >> (8 * i)))
	}
}

func (d *digest) i64(v int64)   { d.u64(uint64(v)) }
func (d *digest) f64(v float64) { d.u64(math.Float64bits(v)) }

func (d *digest) b(v bool) {
	if v {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

func (d *digest) str(s string) {
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
	d.byte(0)
}

func (d *digest) series(s *metrics.Series) {
	pts := s.Points()
	d.i64(int64(len(pts)))
	for _, p := range pts {
		d.i64(int64(p.At))
		d.f64(p.V)
	}
}
