package bench

import (
	"fmt"

	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

// trafficOverride is the -replay CLI override: a trace that replaces the
// traffic of every custom-job scenario run after SetTrafficOverride.
var trafficOverride struct {
	path  string
	trace *workload.Trace
}

// SetTrafficOverride installs the drrs-bench/drrs-sim -replay override: every
// subsequent run of a Traffic-driven scenario consumes the recorded trace
// instead of the scenario's own traffic. Empty path clears the override.
// Called once before runs begin; panics on an unreadable or corrupt trace so
// CLI typos fail eagerly rather than mid-sweep.
func SetTrafficOverride(replayPath string) {
	if replayPath == "" {
		trafficOverride.path, trafficOverride.trace = "", nil
		return
	}
	t, err := workload.ReadTraceFile(replayPath)
	if err != nil {
		panic(fmt.Sprintf("bench: -replay: %v", err))
	}
	trafficOverride.path, trafficOverride.trace = replayPath, t
}

// effectiveTraffic resolves what the run will consume: the -replay override's
// trace if installed, else the scenario's own traffic.
func (sc *Scenario) effectiveTraffic() workload.Traffic {
	if trafficOverride.trace != nil {
		return workload.Replay(trafficOverride.trace)
	}
	return sc.Traffic
}

// buildGraph constructs the run's job graph: through the split workload API
// when the scenario declares Job+Traffic, through the legacy Build closure
// otherwise (custom generators — twitch, nexmark — which have no replayable
// traffic stream).
func (sc *Scenario) buildGraph() (*dataflow.Graph, *engine.CollectSink) {
	if sc.Traffic == nil {
		if trafficOverride.trace != nil {
			panic(fmt.Sprintf("bench: scenario %q drives a custom generator and cannot replay a trace (-replay works with custom-job scenarios; see drrs-bench -list)", sc.Name))
		}
		return sc.Build(sc.Seed)
	}
	traffic := sc.effectiveTraffic()
	if sc.recorder != nil {
		traffic = sc.recorder
	}
	return workload.BuildJob(sc.Job, traffic)
}

// TrafficString renders the scenario's arrival-stream summary for listings.
func (sc Scenario) TrafficString() string {
	if sc.Traffic != nil {
		return sc.Traffic.Describe()
	}
	return "custom generator"
}

// RecordWith runs the scenario like RunWith while recording the arrival
// stream its sources consume, and returns the outcome together with the
// recorded trace (replayable via -replay or workload.Replay). Recording tees
// the stream without perturbing it: the outcome digest matches an unrecorded
// run bit-for-bit.
func (sc Scenario) RecordWith(newMech func() scaling.Mechanism) (Outcome, *workload.Trace) {
	if sc.Traffic == nil {
		panic(fmt.Sprintf("bench: scenario %q drives a custom generator; only custom-job scenarios record traces", sc.Name))
	}
	sc.recorder = workload.NewRecorder(sc.effectiveTraffic())
	out := sc.RunWith(newMech)
	return out, sc.recorder.Trace()
}

// MillionUsersSpec composes the heterogeneous load of the million-users
// scenario: nCohorts client populations (~1.3 M clients in total) with mixed
// arrival processes, staggered diurnal phases, drifting or pinned hot sets,
// and a sprinkling of cohorts hammering one shared global hot key. Aggregate
// offered load averages ≈3.7 K rec/s and peaks ≈1.3× over the 8-instance
// capacity, so backlog-driven controllers have real decisions to make.
func MillionUsersSpec(seed int64) workload.Spec {
	const nCohorts = 1200
	prm := simtime.NewRNG(seed, "bench/million-users/params")
	// Quantized key-space geometries: thousands of cohorts share a handful of
	// (KeyCount, Skew) pairs, so the Zipf CDF cache stays tiny.
	keyCounts := []int{160, 240, 320, 480}
	skews := []float64{0, 0.6, 0.9, 1.2}
	arrivals := []workload.Arrival{
		workload.ArrivalPoisson, workload.ArrivalPoisson, workload.ArrivalGamma,
		workload.ArrivalWeibull, workload.ArrivalConstant,
	}
	cohorts := make([]workload.Cohort, 0, nCohorts)
	for i := 0; i < nCohorts; i++ {
		c := workload.DefaultCohort()
		c.Name = fmt.Sprintf("c%04d", i)
		c.Clients = 400 + int(prm.Int63n(1400))
		// Cohorts aggregate to ~3.6 rec/s each regardless of population size;
		// individual clients are sub-1/minute, like real users.
		c.RatePerClient = 3.6 / float64(c.Clients)
		c.Arrival = arrivals[i%len(arrivals)]
		switch c.Arrival {
		case workload.ArrivalGamma:
			c.ArrivalShape = 0.5 // bursty sessions
		case workload.ArrivalWeibull:
			c.ArrivalShape = 0.8 // heavy-tailed think times
		case workload.ArrivalConstant:
			c.Jitter = 0.2 // polling clients
		}
		c.KeyCount = keyCounts[i%len(keyCounts)]
		c.Skew = skews[(i/len(keyCounts))%len(skews)]
		c.KeyBase = 1 + uint64((i*577)%7520)
		// A compressed day: every cohort rides the same diurnal cycle at a
		// phase staggered across a third of it — peaks roll through the
		// population but still pile up, pushing aggregate load past the
		// 8-instance capacity (~5.3K rec/s) so the backlog policy has to
		// scale out into the crest and back down the far side. (Spreading
		// phases over the full period would flatten the aggregate.)
		c.Load = workload.Diurnal(simtime.Sec(24), 0.55, 1.6)
		c.PhaseOffset = simtime.Duration(i%8) * simtime.Second
		if i%5 == 4 {
			// A fifth of the cohorts drift their hot set mid-run — the
			// adversarial case for placement decisions made at scale time.
			c.Load.HotKeyShiftEvery = simtime.Sec(float64(2 + i%3))
			c.Load.HotKeyShiftFraction = 0.1
		}
		if i%97 == 0 {
			// Global celebrities: a few cohorts all hit the same fixed keys,
			// concentrating cross-cohort load on a handful of key groups.
			c.KeySet = []uint64{11, 23, 37}
		}
		cohorts = append(cohorts, c)
	}
	return workload.Spec{Cohorts: cohorts, Duration: shapeHorizon, Seed: seed}
}

// MillionUsersScenario is the north-star load test: ≥1000 heterogeneous
// cohorts of simulated users (MillionUsersSpec) feeding the custom job, with
// the backlog controller deciding when to scale. The scripted fallback (for
// -driver script) is a single →12 wave.
func MillionUsersScenario(seed int64) Scenario {
	return Scenario{
		Name: "million-users",
		Job: workload.JobConfig{
			SourceParallelism: 2,
			AggParallelism:    8,
			MaxKeyGroups:      128,
			StateBytesPerKey:  512,
			CostPerRecord:     1500 * simtime.Microsecond,
			WatermarkEvery:    simtime.Ms(100),
		},
		Traffic:        workload.Live(MillionUsersSpec(seed)),
		ScaleOp:        "agg",
		NewParallelism: 12,
		Driver:         &ControllerDriver{Policy: "backlog", Min: 4, Max: 16},
		Warmup:         shapeWarmup,
		Measure:        shapeMeasure,
		Setup:          simtime.Ms(200),
		Seed:           seed,
	}
}

// traceReplaySpec is the small cohort mix behind the trace-replay scenario:
// six cohorts covering all four arrival processes, one drifting hot set, and
// one fixed-key cohort.
func traceReplaySpec(seed int64) workload.Spec {
	mk := func(name string, clients int, rate float64, arrival workload.Arrival, shape float64) workload.Cohort {
		c := workload.DefaultCohort()
		c.Name = name
		c.Clients = clients
		c.RatePerClient = rate / float64(clients)
		c.Arrival = arrival
		c.ArrivalShape = shape
		c.KeyCount = 2000
		return c
	}
	steady := mk("steady", 4000, 900, workload.ArrivalPoisson, 1)
	steady.Skew = 0.9
	bursty := mk("bursty", 2500, 700, workload.ArrivalGamma, 0.5)
	bursty.KeyBase = 2001
	bursty.Skew = 1.1
	bursty.Load = workload.HotKeyDrift(simtime.Sec(5), 0.1)
	tail := mk("tail", 1500, 600, workload.ArrivalWeibull, 0.8)
	tail.KeyBase = 4001
	pollers := mk("pollers", 800, 700, workload.ArrivalConstant, 0)
	pollers.Jitter = 0.3
	pollers.KeyBase = 6001
	diurnal := mk("diurnal", 3000, 800, workload.ArrivalPoisson, 1)
	diurnal.KeyBase = 1001
	diurnal.Skew = 0.6
	diurnal.Load = workload.Diurnal(simtime.Sec(20), 0.7, 1.4)
	hot := mk("hotkeys", 500, 200, workload.ArrivalPoisson, 1)
	hot.KeySet = []uint64{5, 6, 7}
	return workload.Spec{
		Cohorts:  []workload.Cohort{steady, bursty, tail, pollers, diurnal, hot},
		Duration: shapeHorizon,
		Seed:     seed,
	}
}

// TraceReplayScenario demonstrates trace-driven runs end to end: it replays
// a trace synthesized from traceReplaySpec at construction, so the scenario
// is self-contained (sweeps and -list need no trace file). -replay swaps in
// a recorded trace from disk, which is the workflow for replaying real runs.
func TraceReplayScenario(seed int64) Scenario {
	job := workload.JobConfig{
		SourceParallelism: 2,
		AggParallelism:    8,
		MaxKeyGroups:      128,
		StateBytesPerKey:  1024,
		CostPerRecord:     1500 * simtime.Microsecond,
		WatermarkEvery:    simtime.Ms(100),
	}
	trace := workload.Synthesize(workload.Live(traceReplaySpec(seed)), job.SourceParallelism)
	return Scenario{
		Name:           "trace-replay",
		Job:            job,
		Traffic:        workload.Replay(trace),
		ScaleOp:        "agg",
		NewParallelism: 12,
		Warmup:         shapeWarmup,
		Measure:        shapeMeasure,
		Setup:          simtime.Ms(200),
		Seed:           seed,
	}
}

func init() {
	Register(Definition{
		Name:        "million-users",
		Description: "1200 heterogeneous user cohorts, staggered diurnal peaks, drifting hot sets, backlog-driven autoscaling",
		Layout:      "1 node",
		New:         MillionUsersScenario,
	})
	Register(Definition{
		Name:        "trace-replay",
		Description: "replays a recorded multi-cohort trace through the custom job (swap the trace with -replay)",
		Layout:      "1 node",
		New:         TraceReplayScenario,
	})
}
