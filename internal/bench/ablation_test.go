package bench

import (
	"strings"
	"testing"
)

func TestSweepMegaphoneBatchTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulates several runs")
	}
	pts := SweepMegaphoneBatch(1, []int{1, 16, 111})
	// Megaphone's fundamental trade-off: larger bins migrate faster and
	// propagate less…
	if !(pts[0].MigrationSec > pts[1].MigrationSec && pts[1].MigrationSec > pts[2].MigrationSec) {
		t.Fatalf("migration time should fall with batch size: %+v", pts)
	}
	if !(pts[0].PropMs > pts[1].PropMs && pts[1].PropMs > pts[2].PropMs) {
		t.Fatalf("propagation should fall with batch size: %+v", pts)
	}
	// …and the fine-grained end pays for it in peak latency on a loaded
	// pipeline (every round's alignment stalls the operator again).
	if pts[0].PeakMs <= pts[2].PeakMs {
		t.Fatalf("batch=1 peak %.1f should exceed batch=111 peak %.1f", pts[0].PeakMs, pts[2].PeakMs)
	}
}

func TestSweepSubscaleSize(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulates several runs")
	}
	pts := SweepSubscaleSize(1, []int{1, 8, 128})
	// One-group subscales pay per-subscale signal cost: cumulative
	// propagation must exceed the default's.
	if pts[0].PropMs <= pts[1].PropMs {
		t.Fatalf("subscale=1 propagation %.1f should exceed subscale=8's %.1f",
			pts[0].PropMs, pts[1].PropMs)
	}
	// All settings stay within a sane latency envelope — subscale size is a
	// scheduling knob, not a correctness or stability cliff.
	for _, p := range pts {
		if p.PeakMs > 10*pts[1].PeakMs {
			t.Fatalf("setting %s destabilized latency: %+v", p.Label, p)
		}
	}
}

func TestFormatSweep(t *testing.T) {
	out := FormatSweep("title", []SweepPoint{{Label: "x", PeakMs: 1}})
	if !strings.Contains(out, "title") || !strings.Contains(out, "x") {
		t.Fatalf("bad table: %s", out)
	}
}

func TestSparkline(t *testing.T) {
	o := TwitchScenario(2).Run(nil)
	sp := Sparkline(o, 1e6, 0, o.EndAt)
	if sp == "" {
		t.Fatal("empty sparkline from a populated run")
	}
	if !strings.Contains(sp, "max") {
		t.Fatal("sparkline should annotate its max")
	}
}
