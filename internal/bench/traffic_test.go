package bench

import (
	"path/filepath"
	"testing"

	"drrs/internal/scaling"
	"drrs/internal/workload"
)

func drrsFactory() scaling.Mechanism { return Mechanisms("drrs") }

// TestRecordReplayDigestIdentity is the acceptance check behind
// drrs-bench -record/-replay: a recorded run, its unrecorded twin, and the
// replay of its trace all produce the same OutcomeDigest — recording is
// transparent and replay is bit-exact.
func TestRecordReplayDigestIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full flash-crowd simulations")
	}
	plain := OutcomeDigest(ScenarioByName("flash-crowd", 11).RunWith(drrsFactory))

	out, trace := ScenarioByName("flash-crowd", 11).RecordWith(drrsFactory)
	if got := OutcomeDigest(out); got != plain {
		t.Fatalf("recording perturbed the run: digest 0x%016x, plain 0x%016x", got, plain)
	}
	if trace.Events() == 0 {
		t.Fatal("recorded trace is empty")
	}

	// Round-trip through the file codec like the CLI does.
	path := filepath.Join(t.TempDir(), "fc.trace")
	if err := trace.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := ScenarioByName("flash-crowd", 11)
	sc.Traffic = workload.Replay(back)
	if got := OutcomeDigest(sc.RunWith(drrsFactory)); got != plain {
		t.Fatalf("replay diverged: digest 0x%016x, plain 0x%016x", got, plain)
	}
}

// TestReplayOverrideRejectsCustomGenerator: -replay cannot feed scenarios
// whose traffic is a custom generator closure; the failure must name the
// problem instead of silently ignoring the trace.
func TestReplayOverrideRejectsCustomGenerator(t *testing.T) {
	defer SetTrafficOverride("")
	path := filepath.Join(t.TempDir(), "tiny.trace")
	tr := workload.Synthesize(workload.Live(workload.Spec{
		Cohorts:  []workload.Cohort{workload.DefaultCohort()},
		Duration: 1000,
	}), 1)
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	SetTrafficOverride(path)
	sc := ScenarioByName("twitch", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("custom-generator scenario accepted a replay override")
		}
	}()
	sc.buildGraph()
}

// TestTrafficOverrideRejectsBadFiles: missing and corrupt traces fail at
// install time, before any simulation runs.
func TestTrafficOverrideRejectsBadFiles(t *testing.T) {
	defer SetTrafficOverride("")
	for name, path := range map[string]string{
		"missing": filepath.Join(t.TempDir(), "nope.trace"),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s trace accepted", name)
				}
			}()
			SetTrafficOverride(path)
		}()
	}
}

// TestRecordWithRejectsCustomGenerator: only custom-job scenarios have a
// replayable arrival stream to record.
func TestRecordWithRejectsCustomGenerator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RecordWith accepted a custom-generator scenario")
		}
	}()
	ScenarioByName("twitch", 1).RecordWith(drrsFactory)
}

// TestDefinitionsTrafficSummary: every registered scenario renders a traffic
// one-liner for drrs-bench -list, either declared or derived.
func TestDefinitionsTrafficSummary(t *testing.T) {
	for _, def := range Definitions() {
		if def.TrafficSummary() == "" {
			t.Errorf("scenario %s has no traffic summary", def.Name)
		}
	}
}

// TestMillionUsersSpecShape pins the scenario's structural promises: ≥1000
// cohorts, all four arrival processes present, over a million simulated
// clients, and a deterministic spec for a fixed seed.
func TestMillionUsersSpecShape(t *testing.T) {
	spec := MillionUsersSpec(1)
	if len(spec.Cohorts) < 1000 {
		t.Fatalf("million-users has %d cohorts, want ≥1000", len(spec.Cohorts))
	}
	clients := 0
	var kinds [4]bool
	for _, c := range spec.Cohorts {
		clients += c.Clients
		kinds[c.Arrival] = true
	}
	if clients < 1_000_000 {
		t.Fatalf("million-users simulates %d clients, want ≥1e6", clients)
	}
	for a, seen := range kinds {
		if !seen {
			t.Errorf("million-users never uses arrival process %v", workload.Arrival(a))
		}
	}
	a, b := MillionUsersSpec(7), MillionUsersSpec(7)
	if len(a.Cohorts) != len(b.Cohorts) || a.Cohorts[13].Clients != b.Cohorts[13].Clients {
		t.Fatal("MillionUsersSpec is not deterministic in the seed")
	}
}
