package bench

import (
	"math"
	"strings"
	"testing"

	"drrs/internal/simtime"
)

func TestNewStat(t *testing.T) {
	s := NewStat([]float64{2, 4, 6})
	if s.Mean != 4 {
		t.Fatalf("mean %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(8.0/3)) > 1e-9 {
		t.Fatalf("std %v", s.Std)
	}
	if NewStat(nil) != (Stat{}) {
		t.Fatal("empty stat should be zero")
	}
	if !strings.Contains(s.String(), "±") {
		t.Fatal("stat string should carry ±")
	}
}

func TestMechanismsRegistry(t *testing.T) {
	for _, name := range []string{
		"drrs", "drrs-dr", "drrs-schedule", "drrs-subscale",
		"meces", "megaphone", "otfs", "otfs-allatonce", "unbound",
	} {
		m := Mechanisms(name)
		if m == nil {
			t.Fatalf("mechanism %s is nil", name)
		}
		// Fresh instances every call: mechanisms carry per-run state.
		// (unbound is a zero-size struct, so pointer identity is meaningless
		// there — and it is also stateless.)
		if name != "unbound" && Mechanisms(name) == m {
			t.Fatalf("mechanism %s not fresh per call", name)
		}
	}
	if Mechanisms("no-scale") != nil {
		t.Fatal("no-scale should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mechanism should panic")
		}
	}()
	Mechanisms("bogus")
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 6 {
		t.Fatalf("registry has %d scenarios, want ≥6: %v", len(names), names)
	}
	for _, want := range []string{"q7", "q8", "twitch", "flash-crowd", "diurnal", "hotshift"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Fatalf("scenario %q not registered (have %v)", want, names)
		}
	}
	multiWave := 0
	for _, name := range names {
		sc := ScenarioByName(name, 7)
		if sc.Name != name || sc.Seed != 7 || sc.ScaleOp == "" {
			t.Fatalf("scenario %s malformed: %+v", name, sc)
		}
		if len(sc.Program()) == 0 {
			t.Fatalf("scenario %s has an empty wave program", name)
		}
		if len(sc.Program()) > 1 {
			multiWave++
		}
		for _, w := range sc.Program() {
			if w.NewParallelism <= 0 {
				t.Fatalf("scenario %s wave targets parallelism %d", name, w.NewParallelism)
			}
		}
		g, _ := sc.buildGraph()
		if err := g.Validate(); err != nil {
			t.Fatalf("scenario %s graph invalid: %v", name, err)
		}
		if g.Operator(sc.ScaleOp) == nil || !g.Operator(sc.ScaleOp).KeyedInput {
			t.Fatalf("scenario %s scale operator %s not keyed", name, sc.ScaleOp)
		}
	}
	if multiWave == 0 {
		t.Fatal("registry should contain at least one multi-wave scenario")
	}
	if len(Definitions()) != len(names) {
		t.Fatalf("Definitions/ScenarioNames disagree: %d vs %d", len(Definitions()), len(names))
	}
	for _, def := range Definitions() {
		if def.Description == "" {
			t.Fatalf("scenario %s has no description for -list", def.Name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload should panic")
		}
	}()
	ScenarioByName("bogus", 1)
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register(Definition{Name: "q7", Description: "dup", New: Q7Scenario})
}

// TestFigureSeedValidation guards the empty-seed-list fix: figure harnesses
// must refuse an empty list up front with a message naming the problem,
// instead of panicking on outs[mech][0] deep inside rendering.
func TestFigureSeedValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"HeadToHead": func() { HeadToHead("twitch", nil) },
		"Fig2":       func() { Fig2(nil) },
		"Fig14":      func() { Fig14([]int64{}) },
		"MultiWave":  func() { MultiWave("flash-crowd", nil, nil) },
		"Sweep":      func() { Sweep(nil, nil, nil) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s accepted an empty seed list", name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "seed") {
					t.Fatalf("%s panic %v does not name the seed problem", name, r)
				}
			}()
			fn()
		}()
	}
}

// TestRunRefusesMechanismReuseAcrossWaves documents why multi-wave scenarios
// need RunWith: mechanisms carry per-operation state, so Run's single
// instance cannot drive a second wave.
func TestRunRefusesMechanismReuseAcrossWaves(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full flash-crowd first wave before hitting the panic")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Run should refuse to reuse one mechanism across waves")
		}
	}()
	FlashCrowdScenario(1).Run(Mechanisms("drrs"))
}

func TestSensitivityScenarioPlacement(t *testing.T) {
	sc := SensitivityScenario(1, 8000, 10<<20, 0.5)
	g, _ := sc.buildGraph()
	if g.Operator("agg").MaxKeyGroups != 256 {
		t.Fatal("sensitivity must use 256 key groups (paper setup)")
	}
	if g.Operator("agg").Parallelism != 25 || sc.NewParallelism != 30 {
		t.Fatal("sensitivity must scale 25→30")
	}
	s := simtime.NewScheduler()
	cl := sc.Cluster(s)
	if len(cl.Nodes()) != 4 {
		t.Fatalf("swarm cluster has %d nodes, want 4", len(cl.Nodes()))
	}
}

// TestHeadlineShapeTwitch runs the smallest head-to-head (one seed) and
// asserts the paper's core orderings hold: DRRS beats Megaphone on peak
// latency and scaling duration, Meces has the lowest propagation delay, and
// Megaphone the largest propagation and dependency overhead.
func TestHeadlineShapeTwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shape test simulates ~150 virtual seconds")
	}
	drrs := TwitchScenario(3).Run(Mechanisms("drrs"))
	meces := TwitchScenario(3).Run(Mechanisms("meces"))
	mega := TwitchScenario(3).Run(Mechanisms("megaphone"))
	for _, o := range []Outcome{drrs, meces, mega} {
		if !o.Done {
			t.Fatalf("%s never completed", o.Mechanism)
		}
	}
	from, to := drrs.ScaleAt, mega.EndAt
	if dp, mp := drrs.PeakIn(from, to), mega.PeakIn(from, to); dp >= mp {
		t.Fatalf("DRRS peak %.1f should beat Megaphone %.1f", dp, mp)
	}
	if drrs.ScalingPeriod() >= mega.ScalingPeriod() {
		t.Fatalf("DRRS period %v should beat Megaphone %v", drrs.ScalingPeriod(), mega.ScalingPeriod())
	}
	if meces.Scale.CumulativePropagationDelay() >= drrs.Scale.CumulativePropagationDelay() {
		t.Fatal("Meces should have the lowest propagation delay (Fig 12a)")
	}
	if mega.Scale.CumulativePropagationDelay() <= drrs.Scale.CumulativePropagationDelay() {
		t.Fatal("Megaphone should have the highest propagation delay (Fig 12a)")
	}
	if mega.Scale.AvgDependencyOverhead() <= drrs.Scale.AvgDependencyOverhead() {
		t.Fatal("Megaphone should have the highest dependency overhead (Fig 12b)")
	}
	if drrs.Scale.CumulativeSuspension() >= meces.Scale.CumulativeSuspension() {
		t.Fatal("DRRS should suspend less than Meces (Fig 13)")
	}
}

// TestFig2Shape asserts the motivation experiment's claim: Unbound removes
// essentially all scaling overhead (≈ No Scale), while OTFS does not.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 shape test simulates ~150 virtual seconds")
	}
	unbound := TwitchScenario(4).Run(Mechanisms("unbound"))
	otfs := TwitchScenario(4).Run(Mechanisms("otfs"))
	base := TwitchScenario(4).Run(nil)
	from, to := unbound.ScaleAt, unbound.EndAt
	ub := unbound.AvgIn(from, to)
	ot := otfs.AvgIn(from, to)
	ns := base.AvgIn(from, to)
	if ot <= ub {
		t.Fatalf("OTFS avg %.1f should exceed Unbound %.1f", ot, ub)
	}
	if ub > ns*2 {
		t.Fatalf("Unbound avg %.1f should be close to No Scale %.1f", ub, ns)
	}
	if unbound.Scale.CumulativeSuspension() != 0 {
		t.Fatal("Unbound must never suspend")
	}
}
