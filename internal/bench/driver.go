package bench

import (
	"fmt"

	"drrs/internal/control"
	"drrs/internal/engine"
	"drrs/internal/faults"
	"drrs/internal/metrics"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

// Driver is the scenario's control plane: it decides when the job rescales
// and to what parallelism. ScriptDriver replays the pre-scripted wave
// program (the classic Scenario fields — the paper's experiments);
// ControllerDriver closes the loop, letting a control.Policy observe the
// running job and trigger scaling from the workload itself.
type Driver interface {
	// Name labels the driver in reports ("script", "controller").
	Name() string
	// Describe renders the driving program for listings — "→12→8" for a
	// scripted program, "reactive/backlog" for a policy.
	Describe(sc *Scenario) string
	// Drive installs the driver on a freshly started run: schedule the first
	// control event here. The run's Outcome fields the driver owns (Waves,
	// Decisions) are filled in during the simulation.
	Drive(r *Run)
	// Finish seals driver-owned outcome state after the simulation drains.
	Finish(r *Run)
}

// Run is the live context a Driver operates on: the built runtime, the
// scenario being driven, and the outcome under assembly.
type Run struct {
	Scenario *Scenario
	RT       *engine.Runtime
	Sched    *simtime.Scheduler
	Outcome  *Outcome
	// Horizon is Warmup+Measure: control events past it would drive an
	// idle, draining pipeline.
	Horizon simtime.Time

	// Injector is the run's fault injector (nil on healthy runs); the
	// controller driver wires its Health feed into the control plane.
	Injector *faults.Injector

	newMech func() scaling.Mechanism
	first   scaling.Mechanism
	ctl     *control.Controller
}

// NextMech hands out the run's pre-built first mechanism once, then fresh
// ones — mechanisms carry per-operation state, so every scaling operation
// needs its own instance.
func (r *Run) NextMech() scaling.Mechanism {
	if r.first != nil {
		m := r.first
		r.first = nil
		return m
	}
	return r.newMech()
}

// beginWave is the per-operation bookkeeping both drivers share: wave 0
// collects into the run's ambient ScalingMetrics; later waves swap in a
// fresh collector, splitting suspensions that span the boundary so the tail
// before it is credited to the wave that caused it.
func (r *Run) beginWave(wo *WaveOutcome) {
	now := r.Sched.Now()
	wo.ScaleAt = now
	if wo.Scale != nil {
		return
	}
	stillOpen := r.RT.Scale.CloseAllSuspensions(now)
	wo.Scale = metrics.NewScalingMetrics()
	r.RT.Scale = wo.Scale
	for _, name := range stillOpen {
		wo.Scale.SuspendBegin(name, now)
	}
}

// ScriptDriver replays an ordered wave program: wave 0 fires at Warmup+Gap,
// each later wave Gap after the previous wave completes. This is the
// pre-redesign Scenario behaviour, verbatim — registered scenarios produce
// byte-identical outcomes under it.
type ScriptDriver struct {
	Waves []Wave
}

// Name implements Driver.
func (d *ScriptDriver) Name() string { return "script" }

// Describe implements Driver.
func (d *ScriptDriver) Describe(sc *Scenario) string {
	s := ""
	for _, w := range d.Waves {
		s += fmt.Sprintf("→%d", w.NewParallelism)
	}
	return s
}

// Finish implements Driver.
func (d *ScriptDriver) Finish(r *Run) {}

// Drive implements Driver.
func (d *ScriptDriver) Drive(r *Run) {
	sc, s, rt, out := r.Scenario, r.Sched, r.RT, r.Outcome
	waves := d.Waves
	out.Waves = make([]WaveOutcome, len(waves))
	for i := range out.Waves {
		// Pre-fill the program so never-launched waves still report their
		// target.
		out.Waves[i].Wave = waves[i]
	}
	var launch func(i int, mech scaling.Mechanism)
	launch = func(i int, mech scaling.Mechanism) {
		if mech == nil {
			return
		}
		if s.Now() > r.Horizon {
			// The gap chain outran the measured run: the pipeline is
			// draining with no generators or markers, so numbers measured
			// now would describe an idle system. The wave stays un-launched
			// (Done=false, Scale=nil).
			return
		}
		w := waves[i]
		wo := &out.Waves[i]
		wo.ScaleAt = s.Now()
		var plan scaling.Plan
		if i == 0 {
			// The first wave scales from the nominal contiguous layout and
			// collects into the run's ambient metrics.
			plan = scaling.UniformPlan(rt.Graph, sc.ScaleOp, w.NewParallelism, sc.Setup)
			wo.Scale = rt.Scale
		} else {
			// Later waves plan from the actual placement the previous wave
			// left behind, into a fresh per-wave collector.
			plan = scaling.PlanFromPlacement(rt, sc.ScaleOp, w.NewParallelism, sc.Setup)
			r.beginWave(wo)
		}
		wo.FromParallelism = plan.OldParallelism
		if i > 0 {
			wo.FromParallelism = waves[i-1].NewParallelism
		}
		mech.Begin(rt, plan, func() {
			wo.Done = true
			wo.DoneAt = s.Now()
			if i+1 < len(waves) {
				s.After(waves[i+1].Gap, func() { launch(i+1, r.NextMech()) })
			}
		})
	}
	s.After(sc.Warmup+waves[0].Gap, func() { launch(0, r.NextMech()) })
}

// ControllerDriver closes the loop: a control.Controller samples the running
// job on a cadence and a registered policy decides when and how far to
// scale. The field set is pure configuration — the driver value is shared
// across parallel runs, so all mutable state (policy, controller, audit
// trail) is created per run inside Drive.
type ControllerDriver struct {
	// Policy names a registered control policy (control.PolicyNames).
	Policy string
	// Cadence / Debounce / Window override the controller defaults
	// (500 ms / 2 s / 4×cadence).
	Cadence  simtime.Duration
	Debounce simtime.Duration
	Window   simtime.Duration
	// DegradedDebounce / DegradedWindow arm the controller's degraded mode:
	// voluntary decisions space out to the wider debounce for DegradedWindow
	// after each cluster disruption. Zero keeps degraded mode off.
	DegradedDebounce simtime.Duration
	DegradedWindow   simtime.Duration
	// Min and Max bound the reachable parallelism. Zero defaults to
	// [max(2, P/2), 2×P] around the operator's initial parallelism.
	Min, Max int
	// RatedRPS is the per-instance capacity policies plan against; zero
	// derives 1/CostPerRecord from the scaling operator's spec.
	RatedRPS float64
	// Patience / Horizon tune the policy's scale-in hysteresis and projection
	// distance (zero keeps the policy defaults) — the knobs the policy search
	// sweeps alongside Cadence and Debounce.
	Patience int
	Horizon  simtime.Duration
	// Interventions force counterfactual forks at numbered decisions; see
	// control.Intervention. Empty reproduces the unforced run exactly.
	Interventions []control.Intervention
}

// Name implements Driver.
func (d *ControllerDriver) Name() string { return "controller" }

// Describe implements Driver.
func (d *ControllerDriver) Describe(sc *Scenario) string {
	return "reactive/" + d.Policy
}

// Drive implements Driver.
func (d *ControllerDriver) Drive(r *Run) {
	sc, rt, out := r.Scenario, r.RT, r.Outcome
	spec := rt.Graph.Operator(sc.ScaleOp)
	initP := spec.Parallelism
	rated := d.RatedRPS
	if rated == 0 && spec.CostPerRecord > 0 {
		rated = 1 / spec.CostPerRecord.Seconds()
	}
	min, max := d.Min, d.Max
	if min == 0 {
		if min = initP / 2; min < 2 {
			min = 2
		}
	}
	if max == 0 {
		max = initP * 2
	}
	pol := control.PolicyByName(d.Policy, control.PolicyParams{
		RatedRPS: rated,
		Patience: d.Patience,
		Horizon:  d.Horizon,
	})
	cfg := control.Config{
		Operator:           sc.ScaleOp,
		Policy:             pol,
		Cadence:            d.Cadence,
		Window:             d.Window,
		Debounce:           d.Debounce,
		DegradedDebounce:   d.DegradedDebounce,
		DegradedWindow:     d.DegradedWindow,
		HoldOff:            simtime.Time(sc.Warmup),
		Stop:               r.Horizon,
		Min:                min,
		Max:                max,
		Setup:              sc.Setup,
		InitialParallelism: initP,
		Interventions:      d.Interventions,
	}
	if r.Injector != nil {
		// Faulted runs close a second loop: the injector's disruption feed
		// lets the controller supersede an operation whose destination died.
		cfg.Health = r.Injector.Health
	}
	r.ctl = control.New(rt, cfg, r.NextMech, control.Hooks{
		WillLaunch: func(dec control.Decision, plan scaling.Plan) func() {
			i := len(out.Waves)
			out.Waves = append(out.Waves, WaveOutcome{
				Wave:            Wave{NewParallelism: dec.To},
				FromParallelism: dec.From,
			})
			wo := &out.Waves[i]
			if i == 0 {
				wo.ScaleAt = r.Sched.Now()
				wo.Scale = rt.Scale
			} else {
				r.beginWave(wo)
			}
			return func() {
				// Re-resolve by index: later appends may have moved the
				// backing array.
				wo := &out.Waves[i]
				wo.Done = true
				wo.DoneAt = r.Sched.Now()
			}
		},
	})
	r.ctl.Start()
}

// Finish implements Driver.
func (d *ControllerDriver) Finish(r *Run) {
	if r.ctl != nil {
		r.Outcome.Decisions = r.ctl.Decisions()
	}
}

// WithInterventions returns a copy of the scenario whose controller driver
// forces the given counterfactual interventions. It panics on scripted
// scenarios — a wave program has no policy decisions to fork; use the
// -driver controller override first.
func (sc Scenario) WithInterventions(ivs []control.Intervention) Scenario {
	own, ok := sc.driver().(*ControllerDriver)
	if !ok {
		panic(fmt.Sprintf("bench: scenario %q is driven by a scripted wave program — counterfactual interventions fork policy decisions, so the scenario must be controller-driven", sc.Name))
	}
	clone := *own
	clone.Interventions = ivs
	sc.Driver = &clone
	return sc
}

// driverOverride forces every subsequent run onto a driver/policy; see
// SetDriverOverride.
var driverOverride struct{ mode, policy string }

// SetDriverOverride forces every subsequent scenario run onto the named
// driver ("script" | "controller") and, for controller driving, the named
// policy. Empty strings keep each scenario's own choice. Names are validated
// eagerly; call it before runs start (the worker pool reads the override
// unsynchronized), mirroring SetClusterOverride.
func SetDriverOverride(mode, policy string) {
	switch mode {
	case "", "script", "controller":
	default:
		panic(fmt.Sprintf("bench: unknown driver %q (script | controller)", mode))
	}
	if policy != "" {
		control.PolicyByName(policy, control.PolicyParams{})
	}
	driverOverride.mode = mode
	driverOverride.policy = policy
}

// driver resolves the run's Driver: the CLI override first, then the
// scenario's own Driver, then the classic scripted wave program.
func (sc *Scenario) driver() Driver {
	switch driverOverride.mode {
	case "script":
		return &ScriptDriver{Waves: sc.Program()}
	case "controller":
		d := &ControllerDriver{Policy: "backlog"}
		if own, ok := sc.Driver.(*ControllerDriver); ok {
			clone := *own
			d = &clone
		}
		if driverOverride.policy != "" {
			d.Policy = driverOverride.policy
		}
		return d
	}
	if sc.Driver != nil {
		if own, ok := sc.Driver.(*ControllerDriver); ok && driverOverride.policy != "" {
			clone := *own
			clone.Policy = driverOverride.policy
			return &clone
		}
		return sc.Driver
	}
	return &ScriptDriver{Waves: sc.Program()}
}
