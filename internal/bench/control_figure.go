package bench

import (
	"fmt"
	"sort"
	"strings"

	"drrs/internal/fitness"
	"drrs/internal/simtime"
)

// ControlFigure compares mechanisms under reactive driving on one
// closed-loop scenario. Unlike the scripted figures, the mechanism's own
// speed feeds back into the run: a slow mechanism finishes its scale-out
// late, so the policy sees backlog for longer, decides differently, and may
// supersede it mid-flight — mechanism rankings here are outcomes of the
// whole control loop, not of an identical fixed schedule.
func ControlFigure(workloadName string, mechs []string, seeds []int64) FigureResult {
	mustSeeds("Control", seeds)
	if len(mechs) == 0 {
		mechs = []string{"drrs", "meces", "megaphone"}
	}
	sc := ScenarioByName(workloadName, 0)
	outs := compare(func(seed int64) Scenario { return ScenarioByName(workloadName, seed) }, mechs, seeds)
	from, to := measureWindow(outs)

	var b strings.Builder
	fmt.Fprintf(&b, "Control (%s, %s) — mechanisms under reactive driving, window [%v, %v]\n",
		workloadName, sc.ProgramString(), from, to)
	fmt.Fprintf(&b, "%-12s %18s %18s %12s %12s %10s %10s %12s %8s\n",
		"", "Peak(ms)", "Average(ms)", "Scaling(s)", "Susp(ms)", "decisions", "superseded", "ops done", "finalP")
	rows := make(map[string]Row)
	for _, mech := range mechs {
		var peak, avg, dur, susp, dec, sup []float64
		opsDone, opsAll := 0, 0
		finalP := make(map[int]int)
		for _, o := range outs[mech] {
			peak = append(peak, o.PeakIn(from, to))
			avg = append(avg, o.AvgIn(from, to))
			dur = append(dur, o.TotalScalingPeriod().Seconds())
			susp = append(susp, o.TotalSuspension().Millis())
			dec = append(dec, float64(len(o.Decisions)))
			nSup := 0
			for _, d := range o.Decisions {
				if d.Superseded {
					nSup++
				}
			}
			sup = append(sup, float64(nSup))
			for i := range o.Waves {
				opsAll++
				if o.Waves[i].Done {
					opsDone++
				}
			}
			finalP[FinalParallelism(o)]++
		}
		r := Row{
			PeakMs:       NewStat(peak),
			AvgMs:        NewStat(avg),
			ScalingSec:   NewStat(dur),
			SuspensionMs: NewStat(susp),
			Control: &ControlStats{
				Decisions:        NewStat(dec),
				Superseded:       NewStat(sup),
				OpsDone:          opsDone,
				OpsTotal:         opsAll,
				FinalParallelism: finalP,
			},
			Faults:  faultStats(outs[mech]),
			Fitness: fitnessStats(outs[mech], fitness.DefaultWeights()),
		}
		rows[mech] = r
		fmt.Fprintf(&b, "%-12s %18s %18s %12s %12s %10s %10s %9d/%d %8s\n",
			mech, r.PeakMs, r.AvgMs, r.ScalingSec, r.SuspensionMs,
			fmtMean(dec), fmtMean(sup), opsDone, opsAll, fmtFinalP(finalP))
	}

	b.WriteString("\nlatency timelines (1 s means):\n")
	for _, mech := range mechs {
		if len(outs[mech]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %s\n", mech, Sparkline(outs[mech][0], simtime.Second, from, to))
	}

	b.WriteString("\ndecision audit trail (first seed):\n")
	for _, mech := range mechs {
		if len(outs[mech]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:\n%s", mech, FormatDecisions(outs[mech][0]))
	}
	return FigureResult{Title: "control/" + workloadName, Text: b.String(), Rows: rows}
}

// FinalParallelism reports where the run's control loop left the operator:
// the target of the last completed operation, else the parallelism the
// first decision observed (the initial one), else 0 — a run whose policy
// never decided anything (rendered as "init" in the figure). Exported for
// the policy-search counterfactual diff.
func FinalParallelism(o Outcome) int {
	p := 0
	if len(o.Decisions) > 0 {
		p = o.Decisions[0].From
	}
	for i := range o.Waves {
		w := &o.Waves[i]
		if p == 0 {
			p = w.FromParallelism
		}
		if w.Done {
			p = w.Wave.NewParallelism
		}
	}
	return p
}

// FormatDecisions renders a run's audit trail as an indented table — the
// per-decision record of what the policy saw and what came of it.
func FormatDecisions(o Outcome) string {
	if len(o.Decisions) == 0 {
		return "  (no decisions)\n"
	}
	var b strings.Builder
	for _, d := range o.Decisions {
		status := "dropped"
		switch {
		case d.Done:
			status = fmt.Sprintf("done at %v", d.DoneAt)
		case d.Launched:
			status = "in flight at horizon"
		}
		flag := ""
		if d.Superseded {
			flag = " [superseded in-flight op]"
		}
		if d.Forced {
			flag += " [forced]"
		}
		fmt.Fprintf(&b, "  #%d %8v %s %2d→%-2d %-22s %s%s\n",
			d.Seq, d.At, d.Policy, d.From, d.To, status, d.Reason, flag)
	}
	return b.String()
}

func fmtMean(vals []float64) string {
	return fmt.Sprintf("%.1f", NewStat(vals).Mean)
}

// fmtFinalP renders the final-parallelism histogram compactly ("9" when all
// seeds agree, "9×2 11×1" otherwise; 0 — no decisions at all — as "init").
func fmtFinalP(hist map[int]int) string {
	label := func(p int) string {
		if p == 0 {
			return "init"
		}
		return fmt.Sprintf("%d", p)
	}
	var ps []int
	for p := range hist {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	if len(ps) == 1 {
		return label(ps[0])
	}
	var parts []string
	for _, p := range ps {
		parts = append(parts, fmt.Sprintf("%s×%d", label(p), hist[p]))
	}
	return strings.Join(parts, " ")
}
