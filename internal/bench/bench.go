// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section V): the motivation experiment
// (Fig 2), the head-to-head comparison against Meces and Megaphone on
// NEXMark Q7/Q8 and Twitch (Figs 10–13), the mechanism ablation (Fig 14),
// and the cluster sensitivity grid (Fig 15).
//
// Everything runs in virtual time on the simulated engine, with rates,
// windows, state sizes, and migration bandwidth scaled down together
// (documented per scenario and in EXPERIMENTS.md). Absolute milliseconds are
// not comparable to the paper's testbed; orderings and ratios are.
package bench

import (
	"fmt"

	"drrs/internal/cluster"
	"drrs/internal/control"
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/faults"
	"drrs/internal/metrics"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

// Scenario describes one job + a program of scaling waves,
// mechanism-agnostic.
type Scenario struct {
	// Name labels reports.
	Name string
	// Build constructs the job graph (and its sink) for a given seed. Only
	// scenarios with custom generators (twitch, nexmark) use it; custom-job
	// scenarios set Job + Traffic instead and leave Build nil.
	Build func(seed int64) (*dataflow.Graph, *engine.CollectSink)
	// Job and Traffic describe the scenario through the split workload API:
	// when Traffic is non-nil the run builds workload.BuildJob(Job, Traffic)
	// — with the -replay override's trace swapped in for Traffic, and a
	// Recorder wrapped around it under RecordWith.
	Job     workload.JobConfig
	Traffic workload.Traffic
	// recorder, when set by RecordWith, tees the effective traffic into a
	// Trace as the run consumes it.
	recorder *workload.Recorder
	// ScaleOp is the operator being rescaled.
	ScaleOp string
	// NewParallelism is the post-scaling parallelism of the classic
	// single-wave program; ignored when Waves is set.
	NewParallelism int
	// Waves is the scaling program: wave 0 fires at Warmup+Gap, each later
	// wave Gap after the previous wave completes. Empty means the classic
	// single wave to NewParallelism at Warmup.
	Waves []Wave
	// Driver overrides how the scenario is driven: nil replays the scripted
	// wave program above (ScriptDriver); a ControllerDriver closes the loop
	// with a control policy deciding when and how far to scale. Scenarios
	// with a Driver keep NewParallelism/Waves as their scripted fallback for
	// the -driver script comparison.
	Driver Driver
	// Warmup is the steady-state period before the first scaling request
	// (the paper uses 300 s; scenarios scale it down).
	Warmup simtime.Duration
	// Measure is how long the run continues after the first scaling request.
	Measure simtime.Duration
	// Setup models physical deployment time.
	Setup simtime.Duration
	// Engine overrides engine defaults.
	Engine engine.Config
	// Cluster builds the deployment; nil means one node with
	// MigrationBandwidth bytes/s. SetClusterOverride (drrs-bench -topology)
	// replaces it for the run.
	Cluster func(s *simtime.Scheduler) *cluster.Cluster
	// Placement names the placement policy installed on the cluster
	// ("spread", "pack", "rack-local"; empty keeps the cluster factory's
	// choice). SetClusterOverride (drrs-bench -placement) takes precedence.
	Placement string
	// MigrationBandwidth applies when Cluster is nil (default 4 MB/s — the
	// paper's 1 Gbps scaled down with the state sizes).
	MigrationBandwidth float64
	// Faults is the scenario's declarative fault plan (nil = healthy run —
	// no injector, no checkpointer, byte-identical to pre-fault builds).
	// SetFaultsOverride (drrs-bench -faults) replaces it for the run.
	Faults *faults.Plan
	// Inspect, when set, runs against the still-live runtime after the
	// outcome is sealed but before RunWith returns — the chaos oracles'
	// window onto end-of-run engine state (per-instance stores, routing
	// tables, sink contents) that the Outcome alone doesn't carry. It must
	// only read; nil on every registered scenario, so digests are untouched.
	Inspect func(*engine.Runtime, *Outcome)
	// Seed drives the run.
	Seed int64
}

// WithPlacement returns a copy of the scenario running under the named
// placement policy — the knob the topology figure flips to contrast
// rack-local against spread scale-out on an otherwise identical run.
func (sc Scenario) WithPlacement(policy string) Scenario {
	cluster.PolicyByName(policy) // validate eagerly
	sc.Placement = policy
	return sc
}

// Wave is one scaling operation in a scenario's program.
type Wave struct {
	// Gap delays the wave's scaling request: the first wave fires at
	// Warmup+Gap, later waves Gap after the previous wave completes (waves
	// never overlap — the paper's concurrent-request rule supersedes an
	// in-flight operation, which is a different experiment).
	Gap simtime.Duration
	// NewParallelism is the wave's target parallelism for ScaleOp.
	NewParallelism int
}

// Program returns the scenario's scaling waves (synthesizing the classic
// single wave when Waves is empty).
func (sc Scenario) Program() []Wave {
	if len(sc.Waves) > 0 {
		return sc.Waves
	}
	return []Wave{{NewParallelism: sc.NewParallelism}}
}

// ProgramString renders the driving program for listings: "→12→8" for a
// scripted program, "reactive/<policy>" for a closed-loop scenario. It
// reflects the -driver/-policy override, like the runs themselves.
func (sc Scenario) ProgramString() string {
	return sc.driver().Describe(&sc)
}

// WaveOutcome is one wave's measurement within an Outcome.
type WaveOutcome struct {
	Wave Wave
	// FromParallelism is the parallelism the wave scaled from.
	FromParallelism int
	ScaleAt         simtime.Time
	Done            bool
	DoneAt          simtime.Time
	// Scale holds this wave's delay accounting (each wave gets a fresh
	// collector, so Fig 12/13-style metrics stay per-wave).
	Scale *metrics.ScalingMetrics
	// PreAvgMs is the latency level the wave's stabilization is judged
	// against.
	PreAvgMs float64
	// StabilizedAt is the end of this wave's scaling period per the paper's
	// rule, searched only up to the next wave's request.
	StabilizedAt simtime.Time
	Stabilized   bool
}

// ScalingPeriod reports the wave's request-to-restabilization span.
func (w WaveOutcome) ScalingPeriod() simtime.Duration { return w.StabilizedAt.Sub(w.ScaleAt) }

// Outcome is everything measured from one run.
type Outcome struct {
	Mechanism string
	// MechRef is the first wave's mechanism instance (for mechanism-specific
	// stats like Meces fetch counts).
	MechRef scaling.Mechanism
	Seed    int64
	// Done reports whether every wave completed.
	Done bool

	// ScaleAt is the first wave's request instant.
	ScaleAt    simtime.Time
	EndAt      simtime.Time
	Latency    *metrics.LatencyTracker
	Throughput *metrics.ThroughputTracker
	// Scale is the first wave's delay accounting (the only wave in the
	// paper's single-wave experiments); later waves live in Waves.
	Scale *metrics.ScalingMetrics
	// Driver names how the run was driven ("script", "controller"; empty for
	// no-scale runs).
	Driver string
	// Waves holds per-wave measurements (nil for no-scale runs). Scripted
	// runs pre-fill one entry per programmed wave; controller runs append
	// one per launched operation.
	Waves []WaveOutcome
	// Decisions is the controller's per-decision audit trail (nil under
	// scripted driving): what the policy saw, what it asked for, and whether
	// the decision superseded an in-flight operation.
	Decisions []control.Decision
	// Events is the number of scheduler events the run fired — the raw
	// simulation work, used for events/second perf accounting.
	Events uint64
	// TransferredBytes is total outgoing migration traffic across all nodes;
	// CrossRackBytes is the share that crossed a rack uplink (0 on flat
	// clusters). Their difference is what rack-local placement saves.
	TransferredBytes int64
	CrossRackBytes   int64
	// InstanceSeconds integrates the scaled operator's deployed parallelism
	// over the run clock — the provisioning-cost axis of the fitness score.
	// Derived from the wave timeline after the run, so it is deliberately
	// outside OutcomeDigest: every digest pinned before it existed stays
	// byte-identical.
	InstanceSeconds float64

	// Faults summarizes the fault injection and recovery activity; nil on
	// unfaulted runs, so every digest pinned before the fault layer existed
	// stays valid.
	Faults *FaultSummary

	// PreAvgMs is the average latency over the warmup (pre-scaling level).
	PreAvgMs float64
	// StabilizedAt is the last wave's re-stabilization instant per the
	// paper's rule (latency within 110% of the pre-scaling level for the
	// hold window).
	StabilizedAt simtime.Time
	Stabilized   bool
}

// StabilityHold is the scaled-down version of the paper's 100-second rule.
const StabilityHold = simtime.Duration(5 * simtime.Second)

// Run executes the scenario under mech (nil = no scaling) and returns the
// outcome after draining the pipeline. Mechanisms carry per-operation state,
// so a single instance can only drive one scaling operation: multi-wave
// programs and controller-driven scenarios (which launch as many operations
// as the policy decides) must go through RunWith, which builds a fresh
// mechanism per operation.
func (sc Scenario) Run(mech scaling.Mechanism) Outcome {
	used := false
	return sc.RunWith(func() scaling.Mechanism {
		if used {
			panic(fmt.Sprintf("bench: scenario %q (driving %s) needs more than one scaling operation; Run cannot reuse one mechanism instance — use RunWith with a factory",
				sc.Name, sc.ProgramString()))
		}
		used = true
		return mech
	})
}

// RunWith executes the scenario under its Driver — the scripted wave program
// by default, a closed-loop controller when the scenario (or the CLI
// override) says so — calling newMech once per scaling operation (nil = no
// scaling). The scenario's Build must bound its generators to Warmup+Measure
// (HorizonOf helps), or the drain would never terminate.
func (sc Scenario) RunWith(newMech func() scaling.Mechanism) Outcome {
	g, _ := sc.buildGraph()
	// Captured before any scaling mutates the graph: the instance-seconds
	// integration starts from the operator's pre-scale deployment.
	initialP := 0
	if sc.ScaleOp != "" {
		initialP = g.Operator(sc.ScaleOp).Parallelism
	}
	s := simtime.NewScheduler()
	cl := sc.buildCluster(s)
	// Initial deployment consults the cluster's placement policy, operator by
	// operator in topological order (clusters without a policy keep their
	// explicit placement — the legacy scenarios stay bit-for-bit identical).
	// Scale-out instances are placed later, at deployment time, by
	// scaling.Deploy through the same policy.
	for _, op := range g.Topological() {
		cl.PlaceInstances(op, 0, g.Operator(op).Parallelism)
	}
	cfg := sc.Engine
	cfg.Seed = sc.Seed
	rt := engine.New(s, g, cl, cfg)
	rt.Start()

	// The fault injector (and its checkpointer) exists only when a plan does,
	// so healthy runs schedule no extra events and stay byte-identical.
	inj := faults.NewInjector(rt, sc.faultPlan(), sc.Seed)
	inj.Start()

	first := newMech()
	out := Outcome{Mechanism: "no-scale", MechRef: first, Seed: sc.Seed, Done: true}
	horizon := simtime.Time(sc.Warmup + sc.Measure)
	drv := sc.driver()
	run := &Run{
		Scenario: &sc,
		RT:       rt,
		Sched:    s,
		Outcome:  &out,
		Horizon:  horizon,
		newMech:  newMech,
		first:    first,
		Injector: inj,
	}
	if first != nil {
		out.Mechanism = first.Name()
		out.Driver = drv.Name()
		out.Done = false
		drv.Drive(run)
	}
	s.RunUntil(horizon)
	rt.StopMarkers()
	inj.Stop() // the checkpoint timer re-arms; stop it or the drain never empties
	s.Run()
	drv.Finish(run)
	out.Faults = faultSummary(inj, rt, out.Decisions)

	out.EndAt = s.Now()
	out.Events = s.Processed()
	out.TransferredBytes = cl.TransferredBytes()
	out.CrossRackBytes = cl.CrossRackBytes()
	EventsSimulated.Add(s.Processed())
	out.Latency = rt.Latency
	out.Throughput = rt.Throughput
	out.Scale = rt.Scale
	rt.Scale.CloseAllSuspensions(s.Now())
	out.PreAvgMs = rt.Latency.AvgIn(0, simtime.Time(sc.Warmup))
	if first != nil {
		if len(out.Waves) > 0 && out.Waves[0].Scale != nil {
			out.Scale = out.Waves[0].Scale
			out.ScaleAt = out.Waves[0].ScaleAt
		}
		out.Done = true
		for i := range out.Waves {
			out.Done = out.Done && out.Waves[i].Done
		}
		if len(out.Waves) > 0 {
			stabilizeWaves(rt.Latency, out.Waves, out.PreAvgMs)
			last := &out.Waves[len(out.Waves)-1]
			out.StabilizedAt, out.Stabilized = last.StabilizedAt, last.Stabilized
		}
	}
	if sc.ScaleOp != "" {
		out.InstanceSeconds = instanceSeconds(initialP, out.Waves, out.EndAt)
	}
	if sc.Inspect != nil {
		sc.Inspect(rt, &out)
	}
	return out
}

// buildCluster resolves the run's deployment substrate: the -topology
// override, else the scenario's cluster factory, else the default flat node;
// then the -placement override, else the scenario's Placement policy, on top.
func (sc Scenario) buildCluster(s *simtime.Scheduler) *cluster.Cluster {
	var cl *cluster.Cluster
	switch {
	case clusterOverride.topology != "":
		cl = TopologyByName(clusterOverride.topology)(s)
	case sc.Cluster != nil:
		cl = sc.Cluster(s)
	default:
		cl = cluster.New(s)
		bw := sc.MigrationBandwidth
		if bw == 0 {
			bw = 4 << 20
		}
		cl.Node("local").MigrationBandwidth = bw
	}
	switch {
	case sc.Placement != "":
		// Explicit per-scenario placement (WithPlacement — the topology
		// figure's two columns) outranks the CLI-wide override.
		cl.SetPolicy(cluster.PolicyByName(sc.Placement))
	case clusterOverride.placement != "":
		cl.SetPolicy(cluster.PolicyByName(clusterOverride.placement))
	}
	return cl
}

// stabilizeWaves applies the paper's scaling-period rule per wave on the
// smoothed latency curve: every wave is judged against pre, the warmup
// steady level (the run's pre-scaling level — judging a scale-back against
// the post-scale-out minimum would declare it unstable forever), searching
// from its request up to the next wave's request (or series end for the
// last wave).
func stabilizeWaves(lat *metrics.LatencyTracker, waves []WaveOutcome, pre float64) {
	smoothed := lat.Series.Downsample(simtime.Second)
	for i := range waves {
		wo := &waves[i]
		if wo.Scale == nil {
			// The wave never launched (a previous wave never completed, or
			// the gap chain ran past the horizon).
			continue
		}
		wo.PreAvgMs = pre
		pts := smoothed
		if i+1 < len(waves) && waves[i+1].ScaleAt > 0 {
			bound := waves[i+1].ScaleAt
			hi := len(pts)
			for hi > 0 && pts[hi-1].At >= bound {
				hi--
			}
			pts = pts[:hi]
		}
		wo.StabilizedAt, wo.Stabilized = metrics.StabilizesOn(
			pts, wo.ScaleAt, wo.PreAvgMs, 1.10, StabilityHold)
	}
}

// ScalingPeriod reports the paper's scaling period: request until latency
// re-stabilization. For multi-wave programs this is the first wave's span;
// per-wave periods live in Waves.
func (o Outcome) ScalingPeriod() simtime.Duration {
	if o.Mechanism == "no-scale" {
		return 0
	}
	if len(o.Waves) > 0 {
		return o.Waves[0].ScalingPeriod()
	}
	return o.StabilizedAt.Sub(o.ScaleAt)
}

// TotalSuspension sums suspension time across all waves.
func (o Outcome) TotalSuspension() simtime.Duration {
	var sum simtime.Duration
	for i := range o.Waves {
		if o.Waves[i].Scale != nil {
			sum += o.Waves[i].Scale.CumulativeSuspension()
		}
	}
	return sum
}

// TotalMigration sums migration duration across all launched waves.
func (o Outcome) TotalMigration() simtime.Duration {
	var sum simtime.Duration
	for i := range o.Waves {
		if o.Waves[i].Scale != nil {
			sum += o.Waves[i].Scale.MigrationDuration()
		}
	}
	return sum
}

// TotalScalingPeriod sums the request-to-restabilization span across all
// launched waves.
func (o Outcome) TotalScalingPeriod() simtime.Duration {
	if len(o.Waves) == 0 {
		return o.ScalingPeriod()
	}
	var sum simtime.Duration
	for i := range o.Waves {
		if o.Waves[i].Scale != nil {
			sum += o.Waves[i].ScalingPeriod()
		}
	}
	return sum
}

// PeakIn / AvgIn report latency stats over [from, to) in ms.
func (o Outcome) PeakIn(from, to simtime.Time) float64 { return o.Latency.PeakIn(from, to) }

// AvgIn reports the average latency over [from, to) in ms.
func (o Outcome) AvgIn(from, to simtime.Time) float64 { return o.Latency.AvgIn(from, to) }

// Stat is a mean ± std pair over repeated runs.
type Stat struct {
	Mean, Std float64
}

func (s Stat) String() string { return fmt.Sprintf("%8.0f(±%6.0f)", s.Mean, s.Std) }

// NewStat aggregates samples.
func NewStat(samples []float64) Stat {
	if len(samples) == 0 {
		return Stat{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	var sq float64
	for _, v := range samples {
		sq += (v - mean) * (v - mean)
	}
	return Stat{Mean: mean, Std: sqrt(sq / float64(len(samples)))}
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}
