// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section V): the motivation experiment
// (Fig 2), the head-to-head comparison against Meces and Megaphone on
// NEXMark Q7/Q8 and Twitch (Figs 10–13), the mechanism ablation (Fig 14),
// and the cluster sensitivity grid (Fig 15).
//
// Everything runs in virtual time on the simulated engine, with rates,
// windows, state sizes, and migration bandwidth scaled down together
// (documented per scenario and in EXPERIMENTS.md). Absolute milliseconds are
// not comparable to the paper's testbed; orderings and ratios are.
package bench

import (
	"fmt"

	"drrs/internal/cluster"
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/metrics"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

// Scenario describes one job + one scaling operation, mechanism-agnostic.
type Scenario struct {
	// Name labels reports.
	Name string
	// Build constructs the job graph (and its sink) for a given seed.
	Build func(seed int64) (*dataflow.Graph, *engine.CollectSink)
	// ScaleOp is the operator being rescaled.
	ScaleOp string
	// NewParallelism is the post-scaling parallelism.
	NewParallelism int
	// Warmup is the steady-state period before the scaling request (the
	// paper uses 300 s; scenarios scale it down).
	Warmup simtime.Duration
	// Measure is how long the run continues after the scaling request.
	Measure simtime.Duration
	// Setup models physical deployment time.
	Setup simtime.Duration
	// Engine overrides engine defaults.
	Engine engine.Config
	// Cluster builds the deployment; nil means one node with
	// MigrationBandwidth bytes/s.
	Cluster func(s *simtime.Scheduler) *cluster.Cluster
	// MigrationBandwidth applies when Cluster is nil (default 4 MB/s — the
	// paper's 1 Gbps scaled down with the state sizes).
	MigrationBandwidth float64
	// Seed drives the run.
	Seed int64
}

// Outcome is everything measured from one run.
type Outcome struct {
	Mechanism string
	// MechRef is the mechanism instance used (for mechanism-specific stats
	// like Meces fetch counts).
	MechRef scaling.Mechanism
	Seed    int64
	Done    bool

	ScaleAt    simtime.Time
	EndAt      simtime.Time
	Latency    *metrics.LatencyTracker
	Throughput *metrics.ThroughputTracker
	Scale      *metrics.ScalingMetrics
	// Events is the number of scheduler events the run fired — the raw
	// simulation work, used for events/second perf accounting.
	Events uint64

	// PreAvgMs is the average latency over the warmup (pre-scaling level).
	PreAvgMs float64
	// StabilizedAt is the end of the scaling period per the paper's rule
	// (latency within 110% of the pre-scaling level for the hold window).
	StabilizedAt simtime.Time
	Stabilized   bool
}

// StabilityHold is the scaled-down version of the paper's 100-second rule.
const StabilityHold = simtime.Duration(5 * simtime.Second)

// Run executes the scenario under mech (nil = no scaling) and returns the
// outcome after draining the pipeline. The scenario's Build must bound its
// generators to Warmup+Measure (HorizonOf helps), or the drain would never
// terminate.
func (sc Scenario) Run(mech scaling.Mechanism) Outcome {
	g, _ := sc.Build(sc.Seed)
	s := simtime.NewScheduler()
	var cl *cluster.Cluster
	if sc.Cluster != nil {
		cl = sc.Cluster(s)
	} else {
		cl = cluster.New(s)
		bw := sc.MigrationBandwidth
		if bw == 0 {
			bw = 4 << 20
		}
		cl.Node("local").MigrationBandwidth = bw
	}
	cfg := sc.Engine
	cfg.Seed = sc.Seed
	rt := engine.New(s, g, cl, cfg)
	rt.Start()

	out := Outcome{Mechanism: "no-scale", MechRef: mech, Seed: sc.Seed, Done: true}
	if mech != nil {
		out.Mechanism = mech.Name()
		out.Done = false
		s.After(sc.Warmup, func() {
			out.ScaleAt = s.Now()
			plan := scaling.UniformPlan(g, sc.ScaleOp, sc.NewParallelism, sc.Setup)
			mech.Start(rt, plan, func() { out.Done = true })
		})
	}
	s.RunUntil(simtime.Time(sc.Warmup + sc.Measure))
	rt.StopMarkers()
	s.Run()

	out.EndAt = s.Now()
	out.Events = s.Processed()
	EventsSimulated.Add(s.Processed())
	out.Latency = rt.Latency
	out.Throughput = rt.Throughput
	out.Scale = rt.Scale
	out.Scale.CloseAllSuspensions(s.Now())
	out.PreAvgMs = rt.Latency.AvgIn(0, simtime.Time(sc.Warmup))
	if mech != nil {
		out.StabilizedAt, out.Stabilized = rt.Latency.StabilizesSmoothed(
			simtime.Second, out.ScaleAt, out.PreAvgMs, 1.10, StabilityHold)
	}
	return out
}

// ScalingPeriod reports the paper's scaling period: request until latency
// re-stabilization.
func (o Outcome) ScalingPeriod() simtime.Duration {
	if o.Mechanism == "no-scale" {
		return 0
	}
	return o.StabilizedAt.Sub(o.ScaleAt)
}

// PeakIn / AvgIn report latency stats over [from, to) in ms.
func (o Outcome) PeakIn(from, to simtime.Time) float64 { return o.Latency.PeakIn(from, to) }

// AvgIn reports the average latency over [from, to) in ms.
func (o Outcome) AvgIn(from, to simtime.Time) float64 { return o.Latency.AvgIn(from, to) }

// Stat is a mean ± std pair over repeated runs.
type Stat struct {
	Mean, Std float64
}

func (s Stat) String() string { return fmt.Sprintf("%8.0f(±%6.0f)", s.Mean, s.Std) }

// NewStat aggregates samples.
func NewStat(samples []float64) Stat {
	if len(samples) == 0 {
		return Stat{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	var sq float64
	for _, v := range samples {
		sq += (v - mean) * (v - mean)
	}
	return Stat{Mean: mean, Std: sqrt(sq / float64(len(samples)))}
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}
