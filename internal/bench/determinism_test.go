package bench

import (
	"testing"

	"drrs/internal/metrics"
)

// requireSameOutcome asserts bit-for-bit equality of everything a run
// measures: scheduler events, record counts, and the full latency series.
func requireSameOutcome(t *testing.T, label string, a, b Outcome) {
	t.Helper()
	if a.Events != b.Events {
		t.Fatalf("%s: events %d vs %d", label, a.Events, b.Events)
	}
	if a.Throughput.Total() != b.Throughput.Total() {
		t.Fatalf("%s: processed %d vs %d", label, a.Throughput.Total(), b.Throughput.Total())
	}
	if a.ScaleAt != b.ScaleAt || a.EndAt != b.EndAt || a.StabilizedAt != b.StabilizedAt {
		t.Fatalf("%s: timeline differs: %v/%v/%v vs %v/%v/%v", label,
			a.ScaleAt, a.EndAt, a.StabilizedAt, b.ScaleAt, b.EndAt, b.StabilizedAt)
	}
	pa, pb := a.Latency.Series.Points(), b.Latency.Series.Points()
	if len(pa) != len(pb) {
		t.Fatalf("%s: latency series length %d vs %d", label, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%s: latency sample %d differs: %+v vs %+v", label, i, pa[i], pb[i])
		}
	}
	requireSameSeries(t, label+"/throughput", a.Throughput.Series(), b.Throughput.Series())
}

func requireSameSeries(t *testing.T, label string, a, b *metrics.Series) {
	t.Helper()
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		t.Fatalf("%s: series length %d vs %d", label, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%s: sample %d differs: %+v vs %+v", label, i, pa[i], pb[i])
		}
	}
}

// TestTwitchScenarioDeterminism is the regression guard for the fast-path
// overhaul: the same seed must reproduce the run bit for bit — pooled events,
// coalesced edge delivery, and record recycling included. It runs the full
// Twitch scenario twice under DRRS (the scaling path stresses cancellation,
// priority arrivals, and migration scheduling) and once more without scaling.
func TestTwitchScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism test simulates ~200 virtual seconds")
	}
	const seed = 11
	a := TwitchScenario(seed).Run(Mechanisms("drrs"))
	b := TwitchScenario(seed).Run(Mechanisms("drrs"))
	if !a.Done || !b.Done {
		t.Fatal("scaling never completed")
	}
	requireSameOutcome(t, "twitch/drrs", a, b)

	na := TwitchScenario(seed).Run(nil)
	nb := TwitchScenario(seed).Run(nil)
	requireSameOutcome(t, "twitch/no-scale", na, nb)
}

// TestRunParallelMatchesSequential guards the parallel scenario runner: the
// same spec list must produce identical outcomes at any worker count,
// because every run owns its scheduler, RNG streams, and metrics.
func TestRunParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel-equality test simulates ~200 virtual seconds")
	}
	specs := []RunSpec{
		{Scenario: TwitchScenario(7), Mechanism: "otfs"},
		{Scenario: TwitchScenario(7), Mechanism: "no-scale"},
		{Scenario: TwitchScenario(8), Mechanism: "megaphone"},
	}
	seq := RunParallel(specs, 1)
	par := RunParallel(specs, len(specs))
	for i := range specs {
		requireSameOutcome(t, specs[i].Mechanism, seq[i], par[i])
		if seq[i].Mechanism != par[i].Mechanism {
			t.Fatalf("mechanism label differs at %d", i)
		}
	}
}
