package bench

import (
	"fmt"
	"testing"

	"drrs/internal/metrics"
	"drrs/internal/scaling"
)

// requireSameOutcome asserts bit-for-bit equality of everything a run
// measures: scheduler events, record counts, and the full latency series.
func requireSameOutcome(t *testing.T, label string, a, b Outcome) {
	t.Helper()
	if a.Events != b.Events {
		t.Fatalf("%s: events %d vs %d", label, a.Events, b.Events)
	}
	if a.Throughput.Total() != b.Throughput.Total() {
		t.Fatalf("%s: processed %d vs %d", label, a.Throughput.Total(), b.Throughput.Total())
	}
	if a.ScaleAt != b.ScaleAt || a.EndAt != b.EndAt || a.StabilizedAt != b.StabilizedAt {
		t.Fatalf("%s: timeline differs: %v/%v/%v vs %v/%v/%v", label,
			a.ScaleAt, a.EndAt, a.StabilizedAt, b.ScaleAt, b.EndAt, b.StabilizedAt)
	}
	if a.TransferredBytes != b.TransferredBytes || a.CrossRackBytes != b.CrossRackBytes {
		t.Fatalf("%s: migration bytes differ: %d/%d vs %d/%d", label,
			a.TransferredBytes, a.CrossRackBytes, b.TransferredBytes, b.CrossRackBytes)
	}
	pa, pb := a.Latency.Series.Points(), b.Latency.Series.Points()
	if len(pa) != len(pb) {
		t.Fatalf("%s: latency series length %d vs %d", label, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%s: latency sample %d differs: %+v vs %+v", label, i, pa[i], pb[i])
		}
	}
	requireSameSeries(t, label+"/throughput", a.Throughput.Series(), b.Throughput.Series())
	if len(a.Waves) != len(b.Waves) {
		t.Fatalf("%s: wave count %d vs %d", label, len(a.Waves), len(b.Waves))
	}
	for i := range a.Waves {
		wa, wb := a.Waves[i], b.Waves[i]
		if wa.ScaleAt != wb.ScaleAt || wa.DoneAt != wb.DoneAt || wa.Done != wb.Done ||
			wa.StabilizedAt != wb.StabilizedAt || wa.Stabilized != wb.Stabilized {
			t.Fatalf("%s: wave %d timeline differs: %+v vs %+v", label, i, wa, wb)
		}
		if wa.Scale.CumulativeSuspension() != wb.Scale.CumulativeSuspension() ||
			wa.Scale.CumulativePropagationDelay() != wb.Scale.CumulativePropagationDelay() ||
			wa.Scale.AvgDependencyOverhead() != wb.Scale.AvgDependencyOverhead() ||
			wa.Scale.MigrationDuration() != wb.Scale.MigrationDuration() ||
			wa.Scale.UnitsMigrated() != wb.Scale.UnitsMigrated() {
			t.Fatalf("%s: wave %d scaling metrics differ: %s vs %s",
				label, i, wa.Scale.Summary(), wb.Scale.Summary())
		}
		requireSameSeries(t, fmt.Sprintf("%s/wave%d/suspension", label, i),
			wa.Scale.SuspensionCurve(), wb.Scale.SuspensionCurve())
	}
	if len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("%s: decision count %d vs %d", label, len(a.Decisions), len(b.Decisions))
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatalf("%s: decision %d differs: %+v vs %+v", label, i, a.Decisions[i], b.Decisions[i])
		}
	}
}

func requireSameSeries(t *testing.T, label string, a, b *metrics.Series) {
	t.Helper()
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		t.Fatalf("%s: series length %d vs %d", label, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%s: sample %d differs: %+v vs %+v", label, i, pa[i], pb[i])
		}
	}
}

// TestTwitchScenarioDeterminism is the regression guard for the fast-path
// overhaul: the same seed must reproduce the run bit for bit — pooled events,
// coalesced edge delivery, and record recycling included. It runs the full
// Twitch scenario twice under DRRS (the scaling path stresses cancellation,
// priority arrivals, and migration scheduling) and once more without scaling.
func TestTwitchScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism test simulates ~200 virtual seconds")
	}
	const seed = 11
	a := TwitchScenario(seed).Run(Mechanisms("drrs"))
	b := TwitchScenario(seed).Run(Mechanisms("drrs"))
	if !a.Done || !b.Done {
		t.Fatal("scaling never completed")
	}
	requireSameOutcome(t, "twitch/drrs", a, b)

	na := TwitchScenario(seed).Run(nil)
	nb := TwitchScenario(seed).Run(nil)
	requireSameOutcome(t, "twitch/no-scale", na, nb)
}

// TestFlashCrowdMultiWaveDeterminism extends the bit-for-bit guard to the
// dynamic-scenario track: a shaped workload (flash-crowd spike) driving a
// two-wave program (scale-out 8→12, then scale-back 12→8 planned from the
// actual placement) must reproduce the same run exactly — including each
// wave's own scaling-metrics collector and suspension curve.
func TestFlashCrowdMultiWaveDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-wave determinism test simulates ~90 virtual seconds")
	}
	runOnce := func() Outcome {
		return FlashCrowdScenario(11).RunWith(func() scaling.Mechanism { return Mechanisms("drrs") })
	}
	a := runOnce()
	b := runOnce()
	if !a.Done || !b.Done {
		t.Fatal("wave program never completed")
	}
	if len(a.Waves) != 2 {
		t.Fatalf("expected 2 waves, got %d", len(a.Waves))
	}
	if a.Waves[0].FromParallelism != 8 || a.Waves[0].Wave.NewParallelism != 12 ||
		a.Waves[1].FromParallelism != 12 || a.Waves[1].Wave.NewParallelism != 8 {
		t.Fatalf("wave program mismatch: %+v", a.Waves)
	}
	if a.Waves[1].ScaleAt <= a.Waves[0].DoneAt {
		t.Fatal("wave 1 must start after wave 0 completes")
	}
	if a.Waves[0].Scale == a.Waves[1].Scale {
		t.Fatal("waves must collect into separate metrics objects")
	}
	if a.Waves[1].Scale.UnitsMigrated() == 0 {
		t.Fatal("scale-back wave migrated nothing")
	}
	requireSameOutcome(t, "flash-crowd/drrs", a, b)
}

// TestControllerScenarioDeterminism extends the bit-for-bit guard to
// closed-loop driving: a controller sampling the live runtime (backlog,
// throughput buckets, marker latency) and superseding in-flight operations
// must reproduce the identical run — including the decision audit trail —
// at a fixed seed. This is the regression net for any map-iteration or
// wall-clock leak on the controller path.
func TestControllerScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("controller determinism test simulates ~90 virtual seconds")
	}
	runOnce := func() Outcome {
		return ScenarioByName("flash-crowd-reactive", 11).
			RunWith(func() scaling.Mechanism { return Mechanisms("drrs") })
	}
	a := runOnce()
	b := runOnce()
	if a.Driver != "controller" {
		t.Fatalf("driver %q, want controller", a.Driver)
	}
	if len(a.Decisions) == 0 {
		t.Fatal("the flash crowd provoked no scaling decisions")
	}
	if len(a.Waves) == 0 {
		t.Fatal("no operation launched")
	}
	requireSameOutcome(t, "flash-crowd-reactive/drrs", a, b)
}

// TestRunParallelMatchesSequential guards the parallel scenario runner: the
// same spec list must produce identical outcomes at any worker count,
// because every run owns its scheduler, RNG streams, and metrics.
func TestRunParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel-equality test simulates ~200 virtual seconds")
	}
	specs := []RunSpec{
		{Scenario: TwitchScenario(7), Mechanism: "otfs"},
		{Scenario: TwitchScenario(7), Mechanism: "no-scale"},
		{Scenario: TwitchScenario(8), Mechanism: "megaphone"},
	}
	seq := RunParallel(specs, 1)
	par := RunParallel(specs, len(specs))
	for i := range specs {
		requireSameOutcome(t, specs[i].Mechanism, seq[i], par[i])
		if seq[i].Mechanism != par[i].Mechanism {
			t.Fatalf("mechanism label differs at %d", i)
		}
	}
}
