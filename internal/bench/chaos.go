package bench

import (
	"fmt"

	"drrs/internal/control"
	"drrs/internal/engine"
	"drrs/internal/faults"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

// The chaos track: the paper evaluates rescaling on a healthy cluster; these
// scenarios rescale one that is actively failing underneath the migration —
// a destination node dying mid-flight, a rack straggling, a shared uplink
// degrading into a partition. Everything stays deterministic (faults fire at
// planned virtual-time offsets; the dedicated "faults" RNG stream is only
// consulted for explicit jitter), so golden digests pin chaos runs exactly
// like healthy ones. EXPERIMENTS.md §Chaos documents the recovery model.

// FaultSummary is the fault-and-recovery slice of an Outcome. Nil on
// unfaulted runs — its fields fold into OutcomeDigest only when present, so
// pre-fault-layer digests stay byte-identical.
type FaultSummary struct {
	// Events / Crashes / FailedTransfers / RecoveredGroups / LostGroups /
	// ReplayedRecords / RecoveryMs mirror faults.Stats.
	Events          int
	Crashes         int
	FailedTransfers int
	RecoveredGroups int
	LostGroups      int
	ReplayedRecords uint64
	RecoveryMs      float64
	// RetriedTransfers counts transfer re-attempts under the plan's retry
	// policy (folds into the digest only when nonzero, so pre-retry chaos
	// digests stay byte-identical).
	RetriedTransfers int
	// RecordsLost counts data records dropped at dead instances (in-flight at
	// the crash, or stranded at a destination whose state chunk reverted).
	RecordsLost uint64
	// WipedGroups / RelocatedGroups complete the crash-wipe identity
	// (Wiped == Recovered + Lost + Relocated) the chaos conservation oracle
	// checks. Deliberately NOT folded into OutcomeDigest: they are derived
	// from the already-folded recovery flow, and folding them would break
	// every pinned chaos digest.
	WipedGroups     int
	RelocatedGroups int
	// Replans counts controller decisions marked Recovery: involuntary
	// supersessions re-planning an in-flight operation around a disruption.
	Replans int
}

func (f *FaultSummary) String() string {
	s := fmt.Sprintf("faults=%d crashes=%d failedXfers=%d recovered=%d lost=%d replans=%d recordsLost=%d replayed=%d recovery=%.0fms",
		f.Events, f.Crashes, f.FailedTransfers, f.RecoveredGroups, f.LostGroups,
		f.Replans, f.RecordsLost, f.ReplayedRecords, f.RecoveryMs)
	if f.RetriedTransfers > 0 {
		s += fmt.Sprintf(" retries=%d", f.RetriedTransfers)
	}
	return s
}

// faultSummary assembles the Outcome's fault block (nil without an injector).
func faultSummary(inj *faults.Injector, rt *engine.Runtime, decisions []control.Decision) *FaultSummary {
	if inj == nil {
		return nil
	}
	st := inj.Stats()
	fs := &FaultSummary{
		Events:           st.Events,
		Crashes:          st.Crashes,
		FailedTransfers:  st.FailedTransfers,
		RecoveredGroups:  st.RecoveredGroups,
		LostGroups:       st.LostGroups,
		ReplayedRecords:  st.ReplayedRecords,
		RecoveryMs:       st.RecoveryMs,
		RetriedTransfers: st.RetriedTransfers,
		RecordsLost:      rt.LostRecords(),
		WipedGroups:      st.WipedGroups,
		RelocatedGroups:  st.RelocatedGroups,
	}
	for _, d := range decisions {
		if d.Recovery {
			fs.Replans++
		}
	}
	return fs
}

// faultsOverride is the -faults CLI override; see SetFaultsOverride.
var faultsOverride struct {
	set  bool
	plan *faults.Plan
}

// SetFaultsOverride forces every subsequent run's fault plan: a fault spec
// (faults.ParseSpec grammar) replaces each scenario's own plan, "off"
// disables fault injection entirely, and "" keeps the scenario's choice.
// Specs are validated eagerly; call before runs start (the worker pool reads
// the override unsynchronized), mirroring SetClusterOverride.
func SetFaultsOverride(spec string) {
	switch spec {
	case "":
		faultsOverride.set, faultsOverride.plan = false, nil
	case "off":
		faultsOverride.set, faultsOverride.plan = true, nil
	default:
		p, err := faults.ParseSpec(spec)
		if err != nil {
			panic(err)
		}
		faultsOverride.set, faultsOverride.plan = true, p
	}
}

// faultPlan resolves the run's fault plan: the CLI override (possibly "off"),
// else the scenario's own.
func (sc *Scenario) faultPlan() *faults.Plan {
	if faultsOverride.set {
		return faultsOverride.plan
	}
	return sc.Faults
}

func init() {
	Register(Definition{Name: "node-loss-mid-migrate",
		Description: "reactive scale-out whose destination node crashes mid-migration; checkpoint restore + re-plan",
		Layout:      "4 racks × 4 nodes; crash r0n1 at 13s (restarts at 19s), ckpt 2s",
		New:         NodeLossScenario})
	Register(Definition{Name: "straggler-rack",
		Description: "the operator's home rack degrades to 0.4× mid-run; the controller scales around it",
		Layout:      "4 racks × 4 nodes; r0n0–r0n3 straggle at 12s, heal at 24s",
		New:         StragglerRackScenario})
	Register(Definition{Name: "flaky-uplink",
		Description: "spread scale-out over a rack uplink that degrades, partitions, then heals mid-migration",
		Layout:      "4 racks × 4 nodes; r1 uplink 4MB/s→256KB/s at 11s, partitioned 13–18s, healed 21s",
		New:         FlakyUplinkScenario})
	Register(Definition{Name: "flaky-uplink-retry",
		Description: "flaky-uplink with transfer retry armed and the controller in degraded mode: transient failures back off and re-send instead of settling",
		Layout:      "4 racks × 4 nodes; r1 partitioned 11–14s; retries ×4 (500ms..4s backoff), degraded debounce 4s",
		New:         FlakyUplinkRetryScenario})
}

// chaosScenario is the shared substrate: the custom job under a 1.5× flash
// crowd on the rack4x4 fabric, driven closed-loop by the backlog policy —
// the spike forces a scale-out right as the fault plan starts firing.
func chaosScenario(name string, placement string, plan *faults.Plan, seed int64) Scenario {
	job, traffic := workload.Config{
		SourceParallelism: 2,
		AggParallelism:    8,
		MaxKeyGroups:      128,
		Keys:              8000,
		RatePerSec:        2000, // ×2 sources = 4K tps baseline, util ≈ 0.75
		Skew:              0.8,
		StateBytesPerKey:  1024,
		CostPerRecord:     1500 * simtime.Microsecond,
		Shape:             workload.FlashCrowd(shapeWarmup, simtime.Sec(10), 1.5),
		Duration:          shapeHorizon,
		Seed:              seed,
	}.Split()
	return Scenario{
		Name:           name,
		Job:            job,
		Traffic:        traffic,
		ScaleOp:        "agg",
		NewParallelism: 12, // scripted fallback for -driver script
		Driver:         &ControllerDriver{Policy: "backlog", Min: 4, Max: 16},
		Warmup:         shapeWarmup,
		Measure:        shapeMeasure,
		Setup:          simtime.Ms(200),
		Cluster:        TopologyByName("rack4x4"),
		Placement:      placement,
		Faults:         plan,
		Seed:           seed,
	}
}

// NodeLossScenario is the tentpole chaos run: rack-local placement packs the
// job onto r0, the flash crowd triggers a scale-out at ~12.5s, and r0n1 —
// which hosts both original and freshly deployed instances — crashes at 13s,
// while chunks are still in flight toward it. Transfers to the corpse fail, the
// mechanism reverts those groups to their sources, the controller's health
// feed fires an involuntary re-plan, and the injector restores the crashed
// instances from the 2s-cadence checkpoint (replaying lost progress) before
// the node itself returns at 18s.
func NodeLossScenario(seed int64) Scenario {
	return chaosScenario("node-loss-mid-migrate", "", &faults.Plan{
		CheckpointEvery: 2 * simtime.Second,
		RecoveryDelay:   simtime.Second,
		Faults: []faults.Fault{
			{Kind: faults.Crash, At: simtime.Sec(13), Node: "r0n1", Restart: simtime.Sec(6)},
		},
	}, seed)
}

// StragglerRackScenario degrades every node on the operator's home rack to
// 0.4× speed two seconds after the flash crowd lands: capacity collapses
// under the spike, backlog grows, and the controller has to scale out onto
// the healthy racks while r0 crawls. The rack heals 12 seconds later.
func StragglerRackScenario(seed int64) Scenario {
	fs := make([]faults.Fault, 0, 4)
	for n := 0; n < 4; n++ {
		fs = append(fs, faults.Fault{
			Kind: faults.Straggle, At: simtime.Sec(12),
			Node: fmt.Sprintf("r0n%d", n), Factor: 0.4, Heal: simtime.Sec(12),
		})
	}
	return chaosScenario("straggler-rack", "", &faults.Plan{Faults: fs}, seed)
}

// FlakyUplinkScenario forces migration across rack uplinks (spread placement)
// and then takes r1's uplink through the full failure arc: degraded to
// 256 KB/s at 11s, fully partitioned 13–18s, back to 256 KB/s until the
// degradation heals at 21s. Cross-rack chunk transfers stall, then fail
// outright — mechanisms revert the affected groups, the controller re-plans,
// and whatever still targets r1 completes once the uplink returns.
func FlakyUplinkScenario(seed int64) Scenario {
	return chaosScenario("flaky-uplink", "spread", &faults.Plan{
		Faults: []faults.Fault{
			{Kind: faults.Uplink, At: simtime.Sec(11), Rack: "r1", Bandwidth: 256 << 10, Heal: simtime.Sec(10)},
			{Kind: faults.Uplink, At: simtime.Sec(13), Rack: "r1", Bandwidth: 0, Heal: simtime.Sec(5)},
		},
	}, seed)
}

// FlakyUplinkRetryScenario is the graceful-degradation counterpart of
// flaky-uplink: r1's uplink partitions outright at 10.3s — right before the
// flash-crowd scale-out launches its cross-rack chunk transfers — but the
// plan arms the cluster's transfer retry (×4, 500ms..4s backoff), so chunks
// that would have failed and settled back to their sources instead back off
// deterministically and land once the partition heals at 13.3s. The driver's
// degraded mode widens the controller's debounce to 4s after the disruption,
// holding further voluntary rescaling while the cluster is unstable. Pinned
// by golden digests across two seeds.
func FlakyUplinkRetryScenario(seed int64) Scenario {
	sc := chaosScenario("flaky-uplink-retry", "spread", &faults.Plan{
		TransferRetries: 4,
		RetryBase:       500 * simtime.Millisecond,
		RetryCap:        4 * simtime.Second,
		Faults: []faults.Fault{
			{Kind: faults.Uplink, At: simtime.Ms(10300), Rack: "r1", Bandwidth: 0, Heal: simtime.Sec(3)},
		},
	}, seed)
	sc.Driver = &ControllerDriver{Policy: "backlog", Min: 4, Max: 16,
		DegradedDebounce: 4 * simtime.Second}
	return sc
}
