package bench

import (
	"fmt"
	"testing"

	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

// requireSameFaults extends the bit-for-bit outcome guard to the fault block:
// chaos runs must reproduce the identical disruption-and-recovery story, not
// just the same traffic.
func requireSameFaults(t *testing.T, label string, a, b Outcome) {
	t.Helper()
	requireSameOutcome(t, label, a, b)
	if (a.Faults == nil) != (b.Faults == nil) {
		t.Fatalf("%s: fault summary presence differs", label)
	}
	if a.Faults != nil && *a.Faults != *b.Faults {
		t.Fatalf("%s: fault summary differs:\n  %s\n  %s", label, a.Faults, b.Faults)
	}
}

// TestNodeLossRecoveryTentpole is the acceptance test for the chaos track's
// headline behaviour: a reactive scale-out whose destination node crashes
// mid-migration must complete anyway — in-flight chunks revert to their
// sources, the controller's health feed supersedes the wounded operation with
// a re-plan from the surviving placement, and the checkpoint layer restores
// the crashed instances' groups — with ZERO key groups lost, at two seeds,
// bit for bit deterministically.
func TestNodeLossRecoveryTentpole(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs simulate ~30 virtual seconds")
	}
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runOnce := func() Outcome {
				return ScenarioByName("node-loss-mid-migrate", seed).
					RunWith(func() scaling.Mechanism { return Mechanisms("drrs") })
			}
			a := runOnce()
			b := runOnce()
			requireSameFaults(t, "node-loss/drrs", a, b)
			f := a.Faults
			if f == nil {
				t.Fatal("faulted run produced no fault summary")
			}
			t.Logf("%s", f)
			if f.Crashes < 1 {
				t.Fatalf("planned crash never fired: %s", f)
			}
			if f.LostGroups != 0 {
				t.Fatalf("recovery lost %d key groups, want 0: %s", f.LostGroups, f)
			}
			if f.RecoveredGroups == 0 {
				t.Fatalf("checkpoint restore never ran: %s", f)
			}
			if f.FailedTransfers == 0 {
				t.Fatalf("crash missed the in-flight migration (no failed transfers): %s", f)
			}
			if f.Replans == 0 {
				t.Fatalf("controller never re-planned around the crash: %s", f)
			}
			var sawRecovery bool
			for _, d := range a.Decisions {
				if d.Recovery {
					if !d.Superseded {
						t.Fatalf("recovery decision %d did not supersede the in-flight op: %+v", d.Seq, d)
					}
					sawRecovery = true
				}
			}
			if !sawRecovery {
				t.Fatal("no recovery decision in the audit trail")
			}
			if !a.Done {
				t.Fatal("run did not complete every launched operation")
			}
		})
	}
}

// TestChaosScenariosDeterministic pins the other two chaos scenarios to the
// same bit-for-bit bar at two seeds each (the golden digests guard one seed;
// this guards the mechanism across seeds without pinning more constants).
func TestChaosScenariosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs simulate ~30 virtual seconds each")
	}
	for _, name := range []string{"straggler-rack", "flaky-uplink"} {
		for _, seed := range []int64{1, 2} {
			name, seed := name, seed
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				runOnce := func() Outcome {
					return ScenarioByName(name, seed).
						RunWith(func() scaling.Mechanism { return Mechanisms("drrs") })
				}
				a := runOnce()
				requireSameFaults(t, name, a, runOnce())
				if a.Faults == nil || a.Faults.Events == 0 {
					t.Fatalf("fault plan never fired: %+v", a.Faults)
				}
				if a.Faults.LostGroups != 0 {
					t.Fatalf("lost %d key groups: %s", a.Faults.LostGroups, a.Faults)
				}
				t.Logf("%s", a.Faults)
			})
		}
	}
}

// TestLegacyMechanismsSurviveNodeLoss runs the tentpole crash scenario under
// every legacy (BeginLegacy-adapted) mechanism: the controller's health feed
// fires an involuntary supersession whose Cancel the legacy adapter cannot
// honor, so the wounded operation must still settle on its own — against a
// dead destination — and release the pending recovery plan. No operation may
// wedge: every launched decision except at most the horizon-cut last one
// reports done, deterministically across two seeds.
func TestLegacyMechanismsSurviveNodeLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs simulate ~30 virtual seconds per mechanism")
	}
	for _, mech := range []string{"meces", "megaphone", "otfs", "stop-restart", "unbound"} {
		for _, seed := range []int64{1, 2} {
			mech, seed := mech, seed
			t.Run(fmt.Sprintf("%s/seed%d", mech, seed), func(t *testing.T) {
				runOnce := func() Outcome {
					return ScenarioByName("node-loss-mid-migrate", seed).
						RunWith(func() scaling.Mechanism { return Mechanisms(mech) })
				}
				a := runOnce()
				requireSameFaults(t, mech, a, runOnce())
				if a.Faults == nil || a.Faults.Crashes == 0 {
					t.Fatal("planned crash never fired")
				}
				t.Logf("%s", a.Faults)
				launched := -1
				for _, d := range a.Decisions {
					if !d.Launched {
						continue
					}
					if launched >= 0 && !a.Decisions[launched].Done {
						t.Fatalf("operation %d wedged: a later decision launched while it never settled: %+v",
							launched, a.Decisions[launched])
					}
					launched = d.Seq
				}
				if launched < 0 {
					t.Fatal("controller never launched an operation")
				}
			})
		}
	}
}

// TestLegacyCancelDuringDeployAndMigrate targets the two remaining phases of
// the supersession matrix directly: each legacy mechanism is cancelled once
// during deploy (setup still pending) and once mid-migration. The adapter
// reports the cancel as not honored, and the operation must still run to
// completion with every planned group at its destination — a cancel must
// never strand state or wedge the done callback.
func TestLegacyCancelDuringDeployAndMigrate(t *testing.T) {
	for _, mech := range []string{"meces", "megaphone", "otfs", "stop-restart", "unbound"} {
		for _, phase := range []scaling.Phase{scaling.PhaseDeploy, scaling.PhaseMigrate} {
			mech, phase := mech, phase
			t.Run(fmt.Sprintf("%s/%s", mech, phase), func(t *testing.T) {
				if mech == "stop-restart" && phase == scaling.PhaseMigrate {
					t.Skip("stop&restart moves all state in one event — no observable migrate window to cancel in")
				}
				g, _ := workload.Build(workload.Config{
					AggParallelism: 4, MaxKeyGroups: 32, Keys: 200,
					RatePerSec: 200, StateBytesPerKey: 512,
					Duration: simtime.Sec(2), Seed: 7,
				})
				s := simtime.NewScheduler()
				rt := engine.New(s, g, nil, engine.Config{Seed: 7, MarkerInterval: -1})
				rt.Start()
				plan := scaling.UniformPlan(g, "agg", 6, simtime.Ms(20))
				var done bool
				op := Mechanisms(mech).Begin(rt, plan, func() { done = true })
				var cancelled bool
				var probe func()
				probe = func() {
					if cancelled || done {
						return
					}
					if op.Progress().Phase >= phase {
						if op.Cancel() {
							t.Error("legacy adapter honored Cancel")
						}
						cancelled = true
						return
					}
					s.After(simtime.Ms(1), probe)
				}
				probe()
				s.Run()
				if !cancelled {
					t.Fatalf("operation finished before reaching phase %s", phase)
				}
				if !done {
					t.Fatal("cancelled operation wedged: done never fired")
				}
				for _, m := range plan.Moves {
					if !rt.Instance("agg", m.To).Store().HasGroup(m.KeyGroup) {
						t.Fatalf("kg %d stranded away from destination %d after cancel", m.KeyGroup, m.To)
					}
				}
			})
		}
	}
}
