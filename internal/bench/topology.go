package bench

import (
	"fmt"
	"strings"

	"drrs/internal/cluster"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

// The large-cluster track: the paper's sensitivity analysis stops at a
// 4-node Swarm cluster, but mechanism rankings can flip once network distance
// exists — per-node concurrency thresholds interact with shared rack uplinks,
// and where scale-out lands (rack-local vs cross-rack) changes what state
// transfer costs. These scenarios run the custom job on rack topologies from
// 16 to 128 nodes; TopologyFigure contrasts placement policies head-to-head.

// RackTopology returns a cluster factory for racks×nodesPerRack nodes named
// "r<i>n<j>" on racks "r<i>": slots instance slots and nodeBW migration
// bandwidth per node, a shared uplinkBW cross-rack pool and uplinkLat uplink
// latency per rack, per-rack speed factors (nil = homogeneous), and the named
// placement policy installed. The default "local" node is unschedulable so
// policies place every instance on the rack fabric.
func RackTopology(racks, nodesPerRack, slots int, nodeBW, uplinkBW float64,
	uplinkLat simtime.Duration, speeds []float64, policy string) func(*simtime.Scheduler) *cluster.Cluster {
	return func(s *simtime.Scheduler) *cluster.Cluster {
		c := cluster.New(s)
		c.Node("local").Unschedulable = true
		for r := 0; r < racks; r++ {
			rack := fmt.Sprintf("r%d", r)
			c.AddRack(rack, uplinkBW, uplinkLat)
			speed := 1.0
			if speeds != nil {
				speed = speeds[r%len(speeds)]
			}
			for n := 0; n < nodesPerRack; n++ {
				c.AddNodeOnRack(rack, fmt.Sprintf("%sn%d", rack, n), speed, nodeBW).Slots = slots
			}
		}
		c.SetPolicy(cluster.PolicyByName(policy))
		return c
	}
}

// Topologies lists the named deployment substrates drrs-bench -topology
// accepts.
func Topologies() []string {
	return []string{"flat", "swarm", "rack4x4", "rack8x16", "tiers3x8"}
}

// TopologyByName returns a cluster factory for a named substrate: "flat"
// (one node, 4 MB/s), "swarm" (the paper's 4-node heterogeneous cluster),
// "rack4x4" (16 nodes on 4 racks), "rack8x16" (128 nodes on 8 racks), or
// "tiers3x8" (24 nodes on 3 hardware tiers). Unknown names panic with the
// list.
func TopologyByName(name string) func(*simtime.Scheduler) *cluster.Cluster {
	switch name {
	case "flat":
		return func(s *simtime.Scheduler) *cluster.Cluster {
			c := cluster.New(s)
			c.Node("local").MigrationBandwidth = 4 << 20
			return c
		}
	case "swarm":
		return SwarmCluster(4 << 20)
	case "rack4x4":
		return RackTopology(4, 4, 8, 2<<20, 4<<20, simtime.Ms(2), nil, "rack-local")
	case "rack8x16":
		return RackTopology(8, 16, 4, 8<<20, 32<<20, simtime.Ms(1), nil, "spread")
	case "tiers3x8":
		return RackTopology(3, 8, 4, 4<<20, 16<<20, simtime.Ms(1), []float64{1.3, 1.0, 0.7}, "spread")
	default:
		panic(fmt.Sprintf("bench: unknown topology %q (known: %s)", name, strings.Join(Topologies(), ", ")))
	}
}

// clusterOverride is the -topology/-placement CLI override; see
// SetClusterOverride.
var clusterOverride struct{ topology, placement string }

// SetClusterOverride forces every subsequent scenario run onto the named
// topology and/or placement policy; empty strings keep the scenario's own
// choice, and Scenario.Placement (set by WithPlacement, as TopologyFigure
// does) still wins over the placement override. Names are validated eagerly.
// Call it before runs start: the worker pool reads the overrides
// unsynchronized.
func SetClusterOverride(topology, placement string) {
	if topology != "" {
		TopologyByName(topology)
	}
	if placement != "" {
		cluster.PolicyByName(placement)
	}
	clusterOverride.topology = topology
	clusterOverride.placement = placement
}

func init() {
	Register(Definition{Name: "rack-skew",
		Description: "custom job packed onto one of 4 racks; scale-out lands rack-local vs cross-rack",
		Layout:      "4 racks × 4 nodes, 2 MB/s NICs, shared 4 MB/s uplinks",
		New:         RackSkewScenario})
	Register(Definition{Name: "bigcluster-128",
		Description: "custom job at 256→320 instances on 128 nodes — the production-scale stress",
		Layout:      "8 racks × 16 nodes, 8 MB/s NICs, shared 32 MB/s uplinks",
		New:         BigCluster128Scenario})
	Register(Definition{Name: "hetero-tiers",
		Description: "three hardware tiers (1.3×/1.0×/0.7×); the slow tier gates scale-out and scale-back",
		Layout:      "3 racks × 8 nodes, tiered speeds",
		New:         HeteroTiersScenario})
}

// RackSkewScenario runs the custom job with its keyed state concentrated on
// one rack (rack-local placement packs all 16 initial instances plus the
// sources onto r0): the 16→24 scale-out either stays on the rack — fast, no
// uplink traffic — or, under a spread override, drags most of the hot state
// across the shared 4 MB/s uplinks. The Zipf skew keeps a few key groups
// dominant, so cross-rack placement also stretches the data plane.
func RackSkewScenario(seed int64) Scenario {
	job, traffic := workload.Config{
		SourceParallelism: 2,
		AggParallelism:    16,
		MaxKeyGroups:      128,
		Keys:              8000,
		RatePerSec:        2000, // ×2 sources = 4K tps
		// Skew 0.8 keeps instances hot without pinning a single key
		// group past saturation (a group is the atomic migration unit,
		// so scaling could never relieve that).
		Skew:             0.8,
		StateBytesPerKey: 1024,
		// Mean utilization 0.5 at 16 instances; the Zipf skew pushes
		// the hottest instances toward ~0.9, which is what the
		// scale-out relieves.
		CostPerRecord: 2 * simtime.Millisecond,
		Duration:      shapeHorizon,
		Seed:          seed,
	}.Split()
	return Scenario{
		Name:           "rack-skew",
		Job:            job,
		Traffic:        traffic,
		ScaleOp:        "agg",
		NewParallelism: 24,
		Warmup:         shapeWarmup,
		Measure:        shapeMeasure,
		Setup:          simtime.Ms(200),
		Cluster:        TopologyByName("rack4x4"),
		Seed:           seed,
	}
}

// BigCluster128Scenario is the production-scale stress: 256 aggregator
// instances spread over 128 nodes on 8 racks, scaling to 320 — two orders of
// magnitude beyond the paper's 4-node testbed, where migration fans out of
// ~128 distinct source NICs at once and the per-node concurrency threshold
// actually binds. Sized so a seeded run finishes in seconds of wall time
// (the CI smoke runs it with a wall-clock budget).
func BigCluster128Scenario(seed int64) Scenario {
	job, traffic := workload.Config{
		SourceParallelism: 4,
		AggParallelism:    256,
		MaxKeyGroups:      1024,
		Keys:              30000,
		RatePerSec:        2400, // ×4 sources = 9.6K tps, util ≈ 0.75 at 256 instances
		Skew:              0.5,
		StateBytesPerKey:  512,
		// 9.6K tps over 256 instances at 20 ms/record ≈ 0.75
		// utilization: each instance is slow but the fleet is wide.
		CostPerRecord: 20 * simtime.Millisecond,
		Duration:      simtime.Duration(6+24) * simtime.Second,
		Seed:          seed,
	}.Split()
	return Scenario{
		Name:           "bigcluster-128",
		Job:            job,
		Traffic:        traffic,
		ScaleOp:        "agg",
		NewParallelism: 320,
		Warmup:         simtime.Sec(6),
		Measure:        simtime.Sec(24),
		Setup:          simtime.Ms(200),
		Cluster:        TopologyByName("rack8x16"),
		Seed:           seed,
	}
}

// HeteroTiersScenario spreads the custom job across three hardware tiers and
// runs an out-then-back program: scale-out 24→32 lands instances on the slow
// 0.7× tier, which gates re-stabilization; the scale-back 32→24 then has to
// pull that state off again, crossing the tier racks both ways.
func HeteroTiersScenario(seed int64) Scenario {
	job, traffic := workload.Config{
		SourceParallelism: 2,
		AggParallelism:    24,
		MaxKeyGroups:      256,
		Keys:              10000,
		RatePerSec:        2000, // ×2 sources = 4K tps
		Skew:              0.8,
		StateBytesPerKey:  768,
		// Mean utilization 0.32–0.6 across the 1.3×/0.7× tiers at 24
		// instances: the slow tier queues visibly but does not
		// saturate, so both waves can re-stabilize.
		CostPerRecord: 2500 * simtime.Microsecond,
		Duration:      shapeHorizon,
		Seed:          seed,
	}.Split()
	return Scenario{
		Name:    "hetero-tiers",
		Job:     job,
		Traffic: traffic,
		ScaleOp: "agg",
		Waves: []Wave{
			{NewParallelism: 32},
			{Gap: simtime.Sec(8), NewParallelism: 24},
		},
		Warmup:  shapeWarmup,
		Measure: shapeMeasure,
		Setup:   simtime.Ms(200),
		Cluster: TopologyByName("tiers3x8"),
		Seed:    seed,
	}
}

// TopologyFigure is the cross-rack-vs-rack-local comparison: the same
// topology scenario, wave program, and seeds deployed end to end under
// rack-local and spread placement for each mechanism. The policy governs the
// *whole* deployment — initial layout and every scale-out wave follow it —
// so the columns compare a topology-aware operator against a topology-blind
// one, warmup included. The rack-local column should show near-zero
// cross-rack migration traffic; the gap between the columns is the price of
// ignoring the rack fabric. Scaling and migration columns sum across all
// launched waves of multi-wave programs.
func TopologyFigure(workloadName string, mechs []string, seeds []int64) FigureResult {
	mustSeeds("TopologyFigure", seeds)
	if len(mechs) == 0 {
		mechs = []string{"drrs", "meces", "megaphone"}
	}
	placements := []string{"rack-local", "spread"}
	var specs []RunSpec
	type cell struct{ placement, mech string }
	var cells []cell
	for _, p := range placements {
		for _, mech := range mechs {
			for _, seed := range seeds {
				specs = append(specs, RunSpec{Scenario: ScenarioByName(workloadName, seed).WithPlacement(p), Mechanism: mech})
				cells = append(cells, cell{placement: p, mech: mech})
			}
		}
	}
	results := RunParallel(specs, Workers)
	byCell := make(map[cell][]Outcome)
	for i, c := range cells {
		byCell[c] = append(byCell[c], results[i])
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Topology (%s) — rack-local vs spread deployment placement\n", workloadName)
	fmt.Fprintf(&b, "%-12s %-12s %16s %16s %14s %14s %16s\n",
		"placement", "mechanism", "Scaling(s)", "Migration(s)", "XRack(MB)", "Moved(MB)", "Peak(ms)")
	rows := make(map[string]Row)
	for _, p := range placements {
		for _, mech := range mechs {
			runs := byCell[cell{placement: p, mech: mech}]
			var dur, mig, xr, mv, peak []float64
			for _, o := range runs {
				dur = append(dur, o.TotalScalingPeriod().Seconds())
				mig = append(mig, o.TotalMigration().Seconds())
				xr = append(xr, float64(o.CrossRackBytes)/(1<<20))
				mv = append(mv, float64(o.TransferredBytes)/(1<<20))
				peak = append(peak, o.PeakIn(o.ScaleAt, o.EndAt))
			}
			r := Row{
				ScalingSec:   NewStat(dur),
				MigrationSec: NewStat(mig),
				PeakMs:       NewStat(peak),
				Faults:       faultStats(runs),
			}
			rows[mech+"@"+p] = r
			fmt.Fprintf(&b, "%-12s %-12s %16s %16s %14.2f %14.2f %16s\n",
				p, mech, r.ScalingSec, r.MigrationSec, NewStat(xr).Mean, NewStat(mv).Mean, r.PeakMs)
		}
	}
	b.WriteString("\nthe placement policy governs the whole deployment (initial layout and\nevery wave); rack-local keeps state transfers off the shared uplinks,\nand XRack is the traffic spread placement pushes through them.\n")
	return FigureResult{Title: "topology/" + workloadName, Text: b.String(), Rows: rows}
}
