package bench

import (
	"testing"

	"drrs/internal/metrics"
	"drrs/internal/simtime"
)

func TestInstanceSeconds(t *testing.T) {
	sec := func(s int64) simtime.Time { return simtime.Time(s) * simtime.Time(simtime.Second) }
	launched := func(target int, at, done simtime.Time) WaveOutcome {
		return WaveOutcome{
			Wave:    Wave{NewParallelism: target},
			ScaleAt: at, Done: true, DoneAt: done,
			Scale: metrics.NewScalingMetrics(),
		}
	}
	cases := []struct {
		name  string
		p0    int
		waves []WaveOutcome
		end   simtime.Time
		want  float64
	}{
		{"no waves", 8, nil, sec(10), 80},
		{
			// 4×10 + max(4,8)×5 + 8×5 = 40+40+40
			"scale-out", 4,
			[]WaveOutcome{launched(8, sec(10), sec(15))},
			sec(20), 120,
		},
		{
			// Scale-in keeps the old instances until migration drains:
			// 8×10 + max(8,4)×5 + 4×5 = 80+40+20
			"scale-in", 8,
			[]WaveOutcome{launched(4, sec(10), sec(15))},
			sec(20), 140,
		},
		{
			// An unfinished wave stays at its in-flight level to the end:
			// 4×10 + 8×10
			"in flight at horizon", 4,
			[]WaveOutcome{{
				Wave: Wave{NewParallelism: 8}, ScaleAt: sec(10),
				Scale: metrics.NewScalingMetrics(),
			}},
			sec(20), 120,
		},
		{
			// A never-launched wave (Scale nil) contributes nothing.
			"unlaunched wave", 4,
			[]WaveOutcome{{Wave: Wave{NewParallelism: 8}}},
			sec(10), 40,
		},
		{
			// Two waves: 4×10 + 8×5 + 8×5 + max(8,6)... scale-in 8→6:
			// 4×10 + max(4,8)×5 + 8×5 + max(8,6)×5 + 6×5 = 40+40+40+40+30
			"out then in", 4,
			[]WaveOutcome{
				launched(8, sec(10), sec(15)),
				launched(6, sec(20), sec(25)),
			},
			sec(30), 190,
		},
	}
	for _, c := range cases {
		if got := instanceSeconds(c.p0, c.waves, c.end); got != c.want {
			t.Errorf("%s: instanceSeconds = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestInstanceSecondsInRun pins the end-to-end accounting on a real scripted
// run: a scenario that never scales integrates exactly p0 × runtime, and a
// scaling run strictly more.
func TestInstanceSecondsInRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two simulated scenarios")
	}
	sc := TwitchScenario(7)
	noScale := sc.Run(nil)
	if noScale.InstanceSeconds <= 0 {
		t.Fatalf("no-scale InstanceSeconds = %v, want > 0", noScale.InstanceSeconds)
	}
	scaled := TwitchScenario(7).Run(Mechanisms("drrs"))
	if scaled.InstanceSeconds <= noScale.InstanceSeconds {
		t.Errorf("scale-out run InstanceSeconds %v not above the unscaled %v",
			scaled.InstanceSeconds, noScale.InstanceSeconds)
	}
}
