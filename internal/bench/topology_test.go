package bench

import (
	"strings"
	"testing"

	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

func TestTopologyByName(t *testing.T) {
	s := simtime.NewScheduler()
	for _, name := range Topologies() {
		if TopologyByName(name)(s) == nil {
			t.Fatalf("topology %s built nil", name)
		}
		s = simtime.NewScheduler() // fresh per build: node names collide
	}
	cl := TopologyByName("rack8x16")(simtime.NewScheduler())
	if got := len(cl.Racks()); got != 8 {
		t.Fatalf("rack8x16 has %d racks", got)
	}
	nodes := 0
	for _, r := range cl.Racks() {
		nodes += len(cl.RackNodes(r))
	}
	if nodes != 128 {
		t.Fatalf("rack8x16 has %d rack nodes, want 128", nodes)
	}
	if cl.PolicyName() == "" {
		t.Fatal("named topologies must install a placement policy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown topology should panic")
		}
	}()
	TopologyByName("bogus")
}

func TestClusterOverrideResolution(t *testing.T) {
	defer SetClusterOverride("", "")
	s := simtime.NewScheduler()
	sc := TwitchScenario(1)

	SetClusterOverride("rack4x4", "")
	cl := sc.buildCluster(s)
	if len(cl.Racks()) != 4 || cl.PolicyName() != "rack-local" {
		t.Fatalf("topology override not applied: racks=%d policy=%q", len(cl.Racks()), cl.PolicyName())
	}

	SetClusterOverride("rack4x4", "pack")
	cl = sc.buildCluster(simtime.NewScheduler())
	if cl.PolicyName() != "pack" {
		t.Fatalf("placement override not applied: %q", cl.PolicyName())
	}

	// WithPlacement (the topology figure's columns) outranks the CLI-wide
	// placement override.
	cl = sc.WithPlacement("spread").buildCluster(simtime.NewScheduler())
	if cl.PolicyName() != "spread" {
		t.Fatalf("WithPlacement lost to the override: %q", cl.PolicyName())
	}

	SetClusterOverride("", "")
	cl = sc.buildCluster(simtime.NewScheduler())
	if len(cl.Racks()) != 0 || cl.PolicyName() != "" {
		t.Fatal("cleared override still active")
	}
}

func TestWithPlacementValidatesEagerly(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown placement should panic at construction, not mid-run")
		}
	}()
	TwitchScenario(1).WithPlacement("bogus")
}

// TestBigClusterDeterminism extends the bit-for-bit regression guard to the
// production-scale track: a 128-node, 256→320-instance run — rack placement,
// shared-uplink contention, and path-derived edge latencies included — must
// reproduce exactly from the same seed.
func TestBigClusterDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two 128-node cluster runs")
	}
	runOnce := func() Outcome {
		return ScenarioByName("bigcluster-128", 11).RunWith(
			func() scaling.Mechanism { return Mechanisms("drrs") })
	}
	a := runOnce()
	b := runOnce()
	if !a.Done {
		t.Fatal("bigcluster-128 scaling never completed")
	}
	if a.Waves[0].FromParallelism != 256 || a.Waves[0].Wave.NewParallelism != 320 {
		t.Fatalf("wave program mismatch: %+v", a.Waves[0])
	}
	if a.CrossRackBytes == 0 {
		t.Fatal("a 128-node spread scale-out must cross rack uplinks")
	}
	if a.TransferredBytes < a.CrossRackBytes {
		t.Fatalf("cross-rack bytes %d exceed total moved %d", a.CrossRackBytes, a.TransferredBytes)
	}
	requireSameOutcome(t, "bigcluster-128/drrs", a, b)
}

// TestRackLocalAvoidsUplinks pins the headline topology claim: on the
// rack-skew scenario the rack-local scale-out moves zero bytes across rack
// uplinks, while the same run under spread placement pushes a large share of
// the migrated state through them.
func TestRackLocalAvoidsUplinks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two rack-cluster runs")
	}
	local := ScenarioByName("rack-skew", 5).WithPlacement("rack-local").
		RunWith(func() scaling.Mechanism { return Mechanisms("drrs") })
	spread := ScenarioByName("rack-skew", 5).WithPlacement("spread").
		RunWith(func() scaling.Mechanism { return Mechanisms("drrs") })
	if !local.Done || !spread.Done {
		t.Fatal("scaling never completed")
	}
	if local.CrossRackBytes != 0 {
		t.Fatalf("rack-local scale-out crossed uplinks: %d bytes", local.CrossRackBytes)
	}
	if spread.CrossRackBytes == 0 {
		t.Fatal("spread scale-out should cross uplinks")
	}
	if spread.CrossRackBytes*2 < spread.TransferredBytes {
		t.Fatalf("spread should push most state through uplinks: %d of %d",
			spread.CrossRackBytes, spread.TransferredBytes)
	}
}

func TestTopologyFigureRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the rack-skew comparison grid")
	}
	res := TopologyFigure("rack-skew", []string{"drrs"}, []int64{1})
	if !strings.Contains(res.Text, "rack-local") || !strings.Contains(res.Text, "spread") {
		t.Fatalf("figure missing placement columns:\n%s", res.Text)
	}
	if _, ok := res.Rows["drrs@rack-local"]; !ok {
		t.Fatalf("figure rows missing drrs@rack-local: %v", res.Rows)
	}
	mustSeedsPanic := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		TopologyFigure("rack-skew", nil, nil)
		return false
	}
	if !mustSeedsPanic() {
		t.Fatal("TopologyFigure accepted an empty seed list")
	}
}
