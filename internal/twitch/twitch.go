// Package twitch implements the paper's real-world workload: a seven-
// operator pipeline over Twitch viewing events that "analyzes viewer
// engagement patterns to compute loyalty scores" (Section V-A).
//
// The original dataset (Rappaz et al., RecSys'21: 100k users, ~6M viewing
// events; the paper uses a one-fifth subset of ~4M events compressed into a
// 1000-second window) is not redistributable, so this package ships a seeded
// synthetic trace generator preserving the properties the evaluation
// exploits: Zipf-skewed streamer popularity, per-user session structure, and
// continuous arrival that accumulates state naturally (~500 MB at scaling
// time in the paper). EXPERIMENTS.md records the down-scaling.
//
// Pipeline (7 operators):
//
//	events → parse → sessions(keyed by user) → engage → loyalty(keyed by
//	user, the scaling operator) → top → sink
package twitch

import (
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// View describes one synthetic viewing event. On the wire the event is
// encoded into the typed record fields (Key = User, Value = Minutes; the
// streamer dimension does not feed downstream computation), so the hot path
// never boxes a View.
type View struct {
	User     uint64
	Streamer uint64
	// Minutes watched in this interval.
	Minutes float64
}

// Config parameterizes the pipeline and trace.
type Config struct {
	// RatePerSec is events/second per source instance.
	RatePerSec float64
	// Users and Streamers size the trace's entity spaces.
	Users     int
	Streamers int
	// StreamerSkew is the Zipf skew of streamer popularity (real Twitch
	// viewing is heavily concentrated; default 1.1).
	StreamerSkew float64
	// SourceParallelism sets the source's parallelism.
	SourceParallelism int
	// LoyaltyParallelism is the scaling operator's initial parallelism
	// (paper: 8).
	LoyaltyParallelism int
	// SessionParallelism sets the session aggregator's parallelism.
	SessionParallelism int
	// MaxKeyGroups is the keyed operators' key-group count (paper: 128).
	MaxKeyGroups int
	// SessionBytes and LoyaltyBytes size per-user state.
	SessionBytes int
	LoyaltyBytes int
	// CostPerRecord is the session aggregator's processing cost.
	CostPerRecord simtime.Duration
	// LoyaltyCost is the loyalty (scaling) operator's processing cost;
	// defaults to CostPerRecord.
	LoyaltyCost simtime.Duration
	// Duration bounds generation (0 = endless).
	Duration simtime.Duration
	// Seed drives the trace.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.RatePerSec == 0 {
		c.RatePerSec = 2000
	}
	if c.Users == 0 {
		c.Users = 5000
	}
	if c.Streamers == 0 {
		c.Streamers = 500
	}
	if c.StreamerSkew == 0 {
		c.StreamerSkew = 1.1
	}
	if c.SourceParallelism == 0 {
		c.SourceParallelism = 2
	}
	if c.LoyaltyParallelism == 0 {
		c.LoyaltyParallelism = 8
	}
	if c.SessionParallelism == 0 {
		c.SessionParallelism = 4
	}
	if c.MaxKeyGroups == 0 {
		c.MaxKeyGroups = 128
	}
	if c.SessionBytes == 0 {
		c.SessionBytes = 256
	}
	if c.LoyaltyBytes == 0 {
		c.LoyaltyBytes = 512
	}
	if c.CostPerRecord == 0 {
		c.CostPerRecord = 60 * simtime.Microsecond
	}
	if c.LoyaltyCost == 0 {
		c.LoyaltyCost = c.CostPerRecord
	}
}

// ScalingOperator names the operator the paper rescales in this workload.
const ScalingOperator = "loyalty"

// Build constructs the seven-operator pipeline and returns the graph plus
// the sink for inspection.
func Build(cfg Config) (*dataflow.Graph, *engine.CollectSink) {
	cfg.fillDefaults()
	sink := engine.NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "events",
		Parallelism: cfg.SourceParallelism,
		Source:      traceSource(cfg),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          "parse",
		Parallelism:   2,
		CostPerRecord: 10 * simtime.Microsecond,
		NewLogic: func() dataflow.Logic {
			return &engine.MapLogic{} // identity decode; cost models parsing
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          "sessions",
		Parallelism:   cfg.SessionParallelism,
		KeyedInput:    true,
		MaxKeyGroups:  cfg.MaxKeyGroups,
		CostPerRecord: cfg.CostPerRecord,
		CostJitter:    0.1,
		NewLogic: func() dataflow.Logic {
			// The trace source carries minutes-watched in the typed Value
			// lane, so the default sum reduce is exactly "accumulate watch
			// time" — no payload unboxing on the hot path.
			return &engine.KeyedReduceLogic{
				StateBytes:  cfg.SessionBytes,
				EmitUpdates: true,
			}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          "engage",
		Parallelism:   2,
		CostPerRecord: 15 * simtime.Microsecond,
		NewLogic: func() dataflow.Logic {
			return &engine.MapLogic{Fn: func(r *netsim.Record) *netsim.Record {
				// Engagement score: diminishing returns on watch time.
				if v := r.Value; v > 0 {
					r.Value = 1 + v/(v+30)
				}
				return r
			}}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          ScalingOperator,
		Parallelism:   cfg.LoyaltyParallelism,
		KeyedInput:    true,
		MaxKeyGroups:  cfg.MaxKeyGroups,
		CostPerRecord: cfg.LoyaltyCost,
		CostJitter:    0.1,
		NewLogic: func() dataflow.Logic {
			return &engine.KeyedReduceLogic{
				StateBytes:  cfg.LoyaltyBytes,
				EmitUpdates: true,
			}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:          "top",
		Parallelism:   1,
		CostPerRecord: 5 * simtime.Microsecond,
		NewLogic: func() dataflow.Logic {
			return &engine.MapLogic{Fn: func(r *netsim.Record) *netsim.Record {
				// Forward only substantial loyalty updates (top-score feed).
				if r.Value < 5 {
					return nil
				}
				return r
			}}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name:        "sink",
		Parallelism: 1,
		NewLogic:    func() dataflow.Logic { return sink },
	})
	g.Connect("events", "parse", dataflow.ExchangeRebalance)
	g.Connect("parse", "sessions", dataflow.ExchangeKeyed)
	g.Connect("sessions", "engage", dataflow.ExchangeRebalance)
	g.Connect("engage", ScalingOperator, dataflow.ExchangeKeyed)
	g.Connect(ScalingOperator, "top", dataflow.ExchangeRebalance)
	g.Connect("top", "sink", dataflow.ExchangeRebalance)
	return g, sink
}

// traceSource generates the synthetic viewing trace: users arrive in
// sessions, streamer choice is Zipf-skewed, and watch intervals vary.
func traceSource(cfg Config) dataflow.SourceFunc {
	return func(ctx dataflow.SourceContext) {
		rng := simtime.NewRNG(cfg.Seed, "twitch/trace")
		userZipf := simtime.NewZipf(simtime.NewRNG(cfg.Seed, "twitch/users"), cfg.Users, 0.6)
		streamZipf := simtime.NewZipf(simtime.NewRNG(cfg.Seed, "twitch/streams"), cfg.Streamers, cfg.StreamerSkew)
		period := simtime.Duration(float64(simtime.Second) / cfg.RatePerSec)
		start := ctx.Now()
		var nextWM simtime.Time
		// Session affinity: a fraction of events continue the previous
		// user's session, mimicking the dataset's repeat-consumption
		// structure.
		var lastUser uint64
		var sessionLeft int
		var tick func()
		tick = func() {
			now := ctx.Now()
			if cfg.Duration > 0 && now >= start.Add(cfg.Duration) {
				ctx.EmitWatermark(now)
				return
			}
			var user uint64
			if sessionLeft > 0 && lastUser != 0 {
				user = lastUser
				sessionLeft--
			} else {
				user = uint64(userZipf.Next()) + 1
				lastUser = user
				sessionLeft = rng.Intn(6)
			}
			// The event is a View{user, streamer, minutes}; only the minutes
			// feed downstream computation, so they travel unboxed in the
			// Value lane. The streamer draw stays to keep the RNG sequence
			// (and thus the whole trace) identical to the boxed encoding.
			_ = streamZipf.Next()
			r := ctx.NewRecord()
			r.Key = user
			r.EventTime = now
			r.Size = 140
			r.Value = 5 + rng.Float64()*55
			ctx.Ingest(r)
			if now >= nextWM {
				ctx.EmitWatermark(now)
				nextWM = now.Add(simtime.Ms(100))
			}
			ctx.After(rng.Jitter(period, 0.1), tick)
		}
		tick()
	}
}
