package twitch

import (
	"testing"

	"drrs/internal/core"
	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

func smallConfig(seed int64, dur simtime.Duration) Config {
	return Config{
		RatePerSec: 1500, Users: 800, Streamers: 100,
		SourceParallelism: 2, LoyaltyParallelism: 4, SessionParallelism: 2,
		MaxKeyGroups: 32, Duration: dur, Seed: seed,
	}
}

func TestPipelineHasSevenOperators(t *testing.T) {
	g, _ := Build(smallConfig(1, simtime.Sec(1)))
	if got := len(g.Topological()); got != 7 {
		t.Fatalf("pipeline has %d operators, paper says 7", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineComputesLoyalty(t *testing.T) {
	g, sink := Build(smallConfig(2, simtime.Sec(3)))
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 2})
	rt.Start()
	s.RunUntil(simtime.Time(simtime.Sec(3)))
	rt.StopMarkers()
	s.Run()
	if sink.Records == 0 {
		t.Fatal("no loyalty updates reached the sink")
	}
	// Loyalty state accumulates naturally through continuous processing.
	if rt.TotalStateBytes(ScalingOperator) == 0 {
		t.Fatal("no loyalty state accumulated")
	}
	if rt.TotalStateBytes("sessions") == 0 {
		t.Fatal("no session state accumulated")
	}
}

func TestStreamerSkewConcentratesLoad(t *testing.T) {
	// The synthetic trace must preserve the dataset's skew: session state
	// per user varies and popular entities dominate. Verify user activity
	// skew via per-instance processed spread on sessions.
	g, _ := Build(smallConfig(3, simtime.Sec(2)))
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 3})
	rt.Start()
	s.RunUntil(simtime.Time(simtime.Sec(2)))
	rt.StopMarkers()
	s.Run()
	var minP, maxP uint64 = 1 << 62, 0
	for _, in := range rt.Instances("sessions") {
		if in.Processed < minP {
			minP = in.Processed
		}
		if in.Processed > maxP {
			maxP = in.Processed
		}
	}
	if maxP == 0 {
		t.Fatal("sessions processed nothing")
	}
	// Zipf user skew should create visible imbalance but not starvation.
	if minP == 0 {
		t.Fatal("a session instance starved entirely")
	}
}

func TestScalesUnderDRRS(t *testing.T) {
	g, sink := Build(smallConfig(4, simtime.Sec(4)))
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 4})
	rt.Start()
	var done bool
	s.After(simtime.Sec(1), func() {
		core.New(core.FullDRRS()).Start(rt,
			scaling.UniformPlan(g, ScalingOperator, 6, simtime.Ms(20)),
			func() { done = true })
	})
	s.RunUntil(simtime.Time(simtime.Sec(4)))
	rt.StopMarkers()
	s.Run()
	if !done {
		t.Fatal("scaling never completed")
	}
	if sink.Records == 0 {
		t.Fatal("no output after scaling")
	}
	for idx := 4; idx < 6; idx++ {
		if rt.Instance(ScalingOperator, idx).Processed == 0 {
			t.Fatalf("new loyalty instance %d idle after scaling", idx)
		}
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() int {
		g, sink := Build(smallConfig(9, simtime.Sec(2)))
		s := simtime.NewScheduler()
		rt := engine.New(s, g, nil, engine.Config{Seed: 9})
		rt.Start()
		s.RunUntil(simtime.Time(simtime.Sec(2)))
		rt.StopMarkers()
		s.Run()
		return sink.Records
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("trace not deterministic: %d vs %d", a, b)
	}
}
