// Package fitness scores a rescaling run against multiple objectives: how
// badly latency violated its SLO, how many bytes the mechanisms migrated, how
// much capacity the policy kept deployed, and how often it flapped. One run
// reduces to a Components vector; a Weights vector collapses it to a scalar
// Score for ranking, and Dominates/Front compare runs without committing to
// any weighting at all — the Pareto view the policy search reports.
//
// The package deliberately does not import the bench harness: it consumes a
// neutral Input assembled by the caller (bench provides an Outcome adapter),
// so fitness math is testable against hand-built series and decision lists.
package fitness

import (
	"fmt"

	"drrs/internal/control"
	"drrs/internal/metrics"
	"drrs/internal/simtime"
)

// Input is everything one run contributes to its fitness, in harness-neutral
// form.
type Input struct {
	// Latency is the per-marker latency series (ms). SLO violations are
	// counted over its Bucket-averaged timeline inside [From, To].
	Latency *metrics.Series
	// PreAvgMs is the pre-disturbance latency baseline; the SLO threshold is
	// SLOFactor times it. A non-positive baseline disables SLO counting (a
	// run with no pre-window has nothing to hold the latency against).
	PreAvgMs float64
	// SLOFactor scales the baseline into the violation threshold
	// (default 1.10: buckets more than 10 % over baseline violate).
	SLOFactor float64
	// From and To bound the scored window (typically the measurement window).
	From, To simtime.Time
	// Bucket is the SLO evaluation granularity (default 1 s).
	Bucket simtime.Duration
	// Decisions is the controller's audit trail; oscillations are counted
	// over its launched, non-recovery entries.
	Decisions []control.Decision
	// TransferredBytes is the run's total migration traffic.
	TransferredBytes int64
	// InstanceSeconds is deployed capacity integrated over the run clock.
	InstanceSeconds float64
}

// Components is one run's objective vector. Every component is a cost —
// lower is better on all axes — which is what makes weighted sums and
// Pareto dominance well-defined without per-field sign rules.
type Components struct {
	// SLOViolations counts Bucket-averaged latency windows above
	// SLOFactor×PreAvgMs inside the scored window.
	SLOViolations float64
	// MigrationMB is migration traffic in megabytes (1e6 bytes).
	MigrationMB float64
	// InstanceSeconds is deployed capacity integrated over the run clock —
	// the provisioning-cost axis.
	InstanceSeconds float64
	// Oscillations counts direction reversals between consecutive launched
	// scaling operations (scale-out followed by scale-in or vice versa) —
	// each reversal is state moved twice for nothing.
	Oscillations float64
}

// vector flattens the components in a fixed axis order for dominance and
// scoring loops.
func (c Components) vector() [4]float64 {
	return [4]float64{c.SLOViolations, c.MigrationMB, c.InstanceSeconds, c.Oscillations}
}

// Weights scales each objective's contribution to the scalar Score. All
// weights are per-unit-of-component; relative magnitude is what matters.
type Weights struct {
	SLO             float64
	MigrationMB     float64
	InstanceSeconds float64
	Oscillation     float64
}

// DefaultWeights balances the axes for the bundled scenarios: an SLO
// violation (one bad second) costs as much as ~20 MB of migration traffic or
// ~100 instance-seconds, and an oscillation — pure waste — costs five bad
// seconds.
func DefaultWeights() Weights {
	return Weights{SLO: 1, MigrationMB: 0.05, InstanceSeconds: 0.01, Oscillation: 5}
}

// Validate panics on a meaningless weighting: a negative weight would reward
// a cost, and all-zero weights score every run 0. Panicking mirrors the
// registry contracts elsewhere in the repo — a bad weighting is a harness
// bug, not a run-time condition.
func (w Weights) Validate() {
	if w.SLO < 0 || w.MigrationMB < 0 || w.InstanceSeconds < 0 || w.Oscillation < 0 {
		panic(fmt.Sprintf("fitness: negative weight in %+v — a negative weight rewards a cost", w))
	}
	if w.SLO == 0 && w.MigrationMB == 0 && w.InstanceSeconds == 0 && w.Oscillation == 0 {
		panic("fitness: all weights zero — every run would score 0")
	}
}

// Score collapses the components to a weighted scalar cost; lower is better.
func (c Components) Score(w Weights) float64 {
	w.Validate()
	return w.SLO*c.SLOViolations +
		w.MigrationMB*c.MigrationMB +
		w.InstanceSeconds*c.InstanceSeconds +
		w.Oscillation*c.Oscillations
}

// Measure reduces one run to its objective vector.
func Measure(in Input) Components {
	if in.SLOFactor == 0 {
		in.SLOFactor = 1.10
	}
	if in.Bucket == 0 {
		in.Bucket = simtime.Second
	}
	return Components{
		SLOViolations:   float64(sloViolations(in)),
		MigrationMB:     float64(in.TransferredBytes) / 1e6,
		InstanceSeconds: in.InstanceSeconds,
		Oscillations:    float64(Oscillations(in.Decisions)),
	}
}

// sloViolations buckets the latency samples inside [From, To] and counts
// buckets whose average exceeds the SLO threshold. Bucketing (rather than
// counting raw markers) keeps the count comparable across runs with
// different marker cadences: the unit is "bad seconds", not "bad markers".
func sloViolations(in Input) int {
	if in.Latency == nil || in.PreAvgMs <= 0 {
		return 0
	}
	slo := in.SLOFactor * in.PreAvgMs
	pts := in.Latency.Slice(in.From, in.To)
	if len(pts) == 0 {
		return 0
	}
	violations := 0
	start := pts[0].At
	var sum float64
	var n int
	var cur simtime.Time = start
	flush := func() {
		if n > 0 && sum/float64(n) > slo {
			violations++
		}
		sum, n = 0, 0
	}
	for _, p := range pts {
		b := start.Add(simtime.Duration(int64(p.At.Sub(start))/int64(in.Bucket)) * in.Bucket)
		if b != cur {
			flush()
			cur = b
		}
		sum += p.V
		n++
	}
	flush()
	return violations
}

// Oscillations counts direction reversals in the launched decision history.
// Recovery supersessions re-plan the same target around a fault — involuntary
// and directionless — so they are excluded; unlaunched decisions moved no
// state, so they cost nothing here (their churn shows up in latency instead).
func Oscillations(ds []control.Decision) int {
	flips, prev := 0, 0
	for _, d := range ds {
		if !d.Launched || d.Recovery || d.To == d.From {
			continue
		}
		dir := 1
		if d.To < d.From {
			dir = -1
		}
		if prev != 0 && dir != prev {
			flips++
		}
		prev = dir
	}
	return flips
}

// Mean averages component vectors axis by axis — the per-candidate reduction
// over seeds a search uses before comparing candidates. Empty input yields
// the zero vector.
func Mean(cs []Components) Components {
	if len(cs) == 0 {
		return Components{}
	}
	var m Components
	for _, c := range cs {
		m.SLOViolations += c.SLOViolations
		m.MigrationMB += c.MigrationMB
		m.InstanceSeconds += c.InstanceSeconds
		m.Oscillations += c.Oscillations
	}
	n := float64(len(cs))
	m.SLOViolations /= n
	m.MigrationMB /= n
	m.InstanceSeconds /= n
	m.Oscillations /= n
	return m
}

// Dominates reports a Pareto-dominates b: no worse on every axis and
// strictly better on at least one. Equal vectors dominate in neither
// direction, so duplicates coexist on a front.
func Dominates(a, b Components) bool {
	av, bv := a.vector(), b.vector()
	strict := false
	for i := range av {
		if av[i] > bv[i] {
			return false
		}
		if av[i] < bv[i] {
			strict = true
		}
	}
	return strict
}

// Front returns the indices (in input order) of the non-dominated elements —
// the Pareto front. An empty input yields an empty front.
func Front(cs []Components) []int {
	var front []int
	for i, c := range cs {
		dominated := false
		for j, o := range cs {
			if i != j && Dominates(o, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}
