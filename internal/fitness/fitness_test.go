package fitness

import (
	"testing"

	"drrs/internal/control"
	"drrs/internal/metrics"
	"drrs/internal/simtime"
)

func TestMeasureSLOViolations(t *testing.T) {
	// Ten seconds of markers at 250 ms cadence: baseline 20 ms for 4 s, a
	// 3-second excursion to 60 ms, then recovery. With a 1.10 factor the SLO
	// line is 22 ms, so exactly the three excursion buckets violate.
	lat := metrics.NewSeries("latency_ms")
	for at := simtime.Time(0); at < 10*simtime.Time(simtime.Second); at = at.Add(250 * simtime.Millisecond) {
		v := 20.0
		if at >= 4*simtime.Time(simtime.Second) && at < 7*simtime.Time(simtime.Second) {
			v = 60.0
		}
		lat.Append(at, v)
	}
	c := Measure(Input{
		Latency:          lat,
		PreAvgMs:         20,
		From:             0,
		To:               10 * simtime.Time(simtime.Second),
		TransferredBytes: 3_000_000,
		InstanceSeconds:  120,
	})
	if c.SLOViolations != 3 {
		t.Errorf("SLOViolations = %v, want 3 (one per excursion second)", c.SLOViolations)
	}
	if c.MigrationMB != 3 {
		t.Errorf("MigrationMB = %v, want 3", c.MigrationMB)
	}
	if c.InstanceSeconds != 120 {
		t.Errorf("InstanceSeconds = %v, want 120", c.InstanceSeconds)
	}
}

func TestMeasureNoBaseline(t *testing.T) {
	lat := metrics.NewSeries("latency_ms")
	lat.Append(simtime.Time(simtime.Second), 1e9)
	c := Measure(Input{Latency: lat, PreAvgMs: 0, To: 2 * simtime.Time(simtime.Second)})
	if c.SLOViolations != 0 {
		t.Errorf("SLOViolations = %v without a baseline, want 0", c.SLOViolations)
	}
}

func TestOscillations(t *testing.T) {
	d := func(from, to int, launched, recovery bool) control.Decision {
		return control.Decision{From: from, To: to, Launched: launched, Recovery: recovery}
	}
	cases := []struct {
		name string
		ds   []control.Decision
		want int
	}{
		{"empty", nil, 0},
		{"monotonic growth", []control.Decision{d(4, 8, true, false), d(8, 12, true, false)}, 0},
		{"one reversal", []control.Decision{d(4, 12, true, false), d(12, 6, true, false)}, 1},
		{"flapping", []control.Decision{
			d(4, 8, true, false), d(8, 4, true, false), d(4, 8, true, false), d(8, 4, true, false),
		}, 3},
		{"unlaunched ignored", []control.Decision{d(4, 12, true, false), d(12, 6, false, false), d(12, 16, true, false)}, 0},
		{"recovery ignored", []control.Decision{d(4, 12, true, false), d(12, 12, true, true), d(12, 6, true, false)}, 1},
	}
	for _, c := range cases {
		if got := Oscillations(c.ds); got != c.want {
			t.Errorf("%s: Oscillations = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDominates(t *testing.T) {
	base := Components{SLOViolations: 3, MigrationMB: 10, InstanceSeconds: 100, Oscillations: 1}
	better := Components{SLOViolations: 2, MigrationMB: 10, InstanceSeconds: 100, Oscillations: 1}
	mixed := Components{SLOViolations: 1, MigrationMB: 50, InstanceSeconds: 100, Oscillations: 1}
	if !Dominates(better, base) {
		t.Error("strictly-better-on-one-axis must dominate")
	}
	if Dominates(base, better) {
		t.Error("dominance reversed")
	}
	// Equal vectors: neither dominates — duplicates coexist on a front.
	if Dominates(base, base) || Dominates(better, better) {
		t.Error("a vector must not dominate its equal")
	}
	// Trade-off: better SLO but worse migration — incomparable.
	if Dominates(mixed, base) || Dominates(base, mixed) {
		t.Error("trade-off vectors must be incomparable")
	}
}

func TestFront(t *testing.T) {
	if got := Front(nil); len(got) != 0 {
		t.Errorf("Front(nil) = %v, want empty", got)
	}
	cs := []Components{
		{SLOViolations: 3, MigrationMB: 10}, // 0: dominated by 1
		{SLOViolations: 2, MigrationMB: 10}, // 1: on front
		{SLOViolations: 5, MigrationMB: 2},  // 2: on front (trade-off)
		{SLOViolations: 2, MigrationMB: 10}, // 3: duplicate of 1 — both stay
		{SLOViolations: 9, MigrationMB: 99}, // 4: dominated by everything
	}
	got := Front(cs)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Front = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Front = %v, want %v", got, want)
		}
	}
	// Single-objective tie on the only differing axis: both on front.
	tie := Front([]Components{{MigrationMB: 5}, {MigrationMB: 5}})
	if len(tie) != 2 {
		t.Errorf("single-objective tie front = %v, want both", tie)
	}
}

func TestWeightsValidatePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative", func() { Weights{SLO: -1, MigrationMB: 1}.Validate() })
	mustPanic("all zero", func() { Weights{}.Validate() })
	mustPanic("score with bad weights", func() { Components{}.Score(Weights{Oscillation: -0.5}) })
	// Sane weights must not panic.
	DefaultWeights().Validate()
	Weights{SLO: 1}.Validate()
}

func TestScore(t *testing.T) {
	c := Components{SLOViolations: 2, MigrationMB: 10, InstanceSeconds: 100, Oscillations: 1}
	w := Weights{SLO: 1, MigrationMB: 0.1, InstanceSeconds: 0.01, Oscillation: 5}
	if got, want := c.Score(w), 2+1+1+5.0; got != want {
		t.Errorf("Score = %v, want %v", got, want)
	}
	// Zeroing an axis removes its contribution.
	if got := c.Score(Weights{SLO: 1}); got != 2 {
		t.Errorf("SLO-only score = %v, want 2", got)
	}
}

// BenchmarkFitnessScore is gated in bench_baseline.json: scoring sits inside
// the search's candidate-evaluation loop, so a regression multiplies across
// every (candidate × seed) cell of a sweep.
func BenchmarkFitnessScore(b *testing.B) {
	lat := metrics.NewSeries("latency_ms")
	for at := simtime.Time(0); at < 60*simtime.Time(simtime.Second); at = at.Add(250 * simtime.Millisecond) {
		v := 20.0
		if at >= 20*simtime.Time(simtime.Second) && at < 30*simtime.Time(simtime.Second) {
			v = 45.0
		}
		lat.Append(at, v)
	}
	ds := make([]control.Decision, 8)
	for i := range ds {
		from, to := 4+i, 4+i+2
		if i%2 == 1 {
			from, to = to, from
		}
		ds[i] = control.Decision{From: from, To: to, Launched: true}
	}
	in := Input{
		Latency:          lat,
		PreAvgMs:         20,
		From:             0,
		To:               60 * simtime.Time(simtime.Second),
		Decisions:        ds,
		TransferredBytes: 50_000_000,
		InstanceSeconds:  720,
	}
	w := DefaultWeights()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Measure(in).Score(w)
	}
	_ = sink
}
