// Package dataflow defines the logical layer of the simulated engine: job
// graphs (DAGs of operator specifications), the operator-logic interface that
// user code implements, routing tables mapping key groups to instances, and
// the repartitioning math used by scaling plans.
package dataflow

import (
	"fmt"
	"sort"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

// Exchange describes how records travel on a stream edge.
type Exchange int

// Exchange kinds.
const (
	// ExchangeKeyed routes by key group through the sender's routing table.
	ExchangeKeyed Exchange = iota
	// ExchangeRebalance distributes records round-robin.
	ExchangeRebalance
	// ExchangeBroadcast copies every record to every downstream instance.
	ExchangeBroadcast
)

func (e Exchange) String() string {
	switch e {
	case ExchangeKeyed:
		return "keyed"
	case ExchangeRebalance:
		return "rebalance"
	case ExchangeBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("exchange(%d)", int(e))
	}
}

// OpContext is what operator logic sees while handling a record: emission,
// keyed state, and the clock.
type OpContext interface {
	// Emit sends a record downstream (routed per the outgoing exchange).
	Emit(r *netsim.Record)
	// Now returns the current virtual time.
	Now() simtime.Time
	// State returns this instance's keyed state store.
	State() *state.Store
	// InstanceIndex identifies the parallel subtask.
	InstanceIndex() int
	// CurrentWatermark returns the instance's aligned event-time watermark.
	CurrentWatermark() simtime.Time
}

// Logic is the user-defined behaviour of an operator instance. A fresh Logic
// value is created per instance via OperatorSpec.NewLogic.
type Logic interface {
	// OnRecord handles one data record. The record is only valid for the
	// duration of the call unless it is re-emitted: the engine recycles
	// records that were not forwarded, so implementations must copy what they
	// keep (key, value, times) rather than retain the pointer.
	OnRecord(ctx OpContext, r *netsim.Record)
	// OnWatermark fires when the instance's aligned watermark advances.
	OnWatermark(ctx OpContext, wm simtime.Time)
}

// Binder is an optional Logic extension: when a logic also implements
// Binder, the engine calls Bind exactly once, when the logic is attached to
// its instance and before any record flows. It is the place to resolve
// per-instance capabilities (e.g. the pooled-record allocator) so that
// capability checks stay off the per-record path.
type Binder interface {
	Bind(ctx OpContext)
}

// SourceFunc drives a source instance: it is called once at start and
// schedules its own emissions via the provided context.
type SourceFunc func(ctx SourceContext)

// SourceContext is the API available to source drivers.
type SourceContext interface {
	// Now returns the current virtual time.
	Now() simtime.Time
	// After schedules fn on the instance's scheduler.
	After(d simtime.Duration, fn func())
	// Ingest offers a record to the source's backlog; it will be emitted in
	// order as downstream capacity allows. IngestTime is stamped here.
	Ingest(r *netsim.Record)
	// NewRecord returns a zeroed record from the engine's recycling pool.
	// Sources should draw records here rather than allocating: the engine
	// returns every record to the pool once it has been fully processed.
	NewRecord() *netsim.Record
	// EmitWatermark broadcasts an event-time watermark downstream.
	EmitWatermark(wm simtime.Time)
	// InstanceIndex identifies the parallel source subtask.
	InstanceIndex() int
	// Parallelism reports the source operator's instance count, so a driver
	// can partition a shared workload across subtasks.
	Parallelism() int
	// BacklogLen reports records ingested but not yet emitted.
	BacklogLen() int
}

// SourcePump is an optional SourceContext capability (engine sources
// implement it): IngestNow stamps and enqueues r like Ingest, then
// synchronously drains the source's backlog instead of scheduling a
// zero-delay wake event. Batched generators resolve it once at start; the
// emitted stream is identical to the Ingest path — records still leave in
// backlog order, respect backpressure, and honour data pauses — but a
// drained record costs one scheduler event instead of two.
type SourcePump interface {
	IngestNow(r *netsim.Record)
}

// OperatorSpec describes one operator of the job graph.
type OperatorSpec struct {
	Name        string
	Parallelism int

	// Source is non-nil for source operators (no inputs).
	Source SourceFunc
	// NewLogic builds the per-instance logic for non-source operators.
	// Sinks use logic too (typically a latency-recording collector).
	NewLogic func() Logic

	// KeyedInput marks the operator as stateful/keyed: its inputs must use
	// ExchangeKeyed and its instances own key-group ranges.
	KeyedInput bool
	// MaxKeyGroups is the key-group count for keyed operators (Flink's
	// maxParallelism). Defaults to 128 when zero.
	MaxKeyGroups int

	// CostPerRecord is the processing time of one record.
	CostPerRecord simtime.Duration
	// CostJitter is the relative uniform jitter applied to CostPerRecord.
	CostJitter float64
}

func (o *OperatorSpec) validate() error {
	if o.Name == "" {
		return fmt.Errorf("dataflow: operator with empty name")
	}
	if o.Parallelism <= 0 {
		return fmt.Errorf("dataflow: operator %s has parallelism %d", o.Name, o.Parallelism)
	}
	if o.Source == nil && o.NewLogic == nil {
		return fmt.Errorf("dataflow: operator %s has neither Source nor NewLogic", o.Name)
	}
	if o.Source != nil && o.KeyedInput {
		return fmt.Errorf("dataflow: source %s cannot be keyed", o.Name)
	}
	if o.KeyedInput && o.MaxKeyGroups == 0 {
		o.MaxKeyGroups = 128
	}
	return nil
}

// StreamEdge connects two operators.
type StreamEdge struct {
	From, To string
	Exchange Exchange
}

// Graph is a validated job DAG.
type Graph struct {
	ops     map[string]*OperatorSpec
	order   []string // topological
	inputs  map[string][]StreamEdge
	outputs map[string][]StreamEdge
}

// NewGraph returns an empty job graph.
func NewGraph() *Graph {
	return &Graph{
		ops:     make(map[string]*OperatorSpec),
		inputs:  make(map[string][]StreamEdge),
		outputs: make(map[string][]StreamEdge),
	}
}

// AddOperator registers an operator spec. It panics on duplicate names or
// invalid specs; graph construction errors are programming errors.
func (g *Graph) AddOperator(spec *OperatorSpec) *Graph {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	if _, dup := g.ops[spec.Name]; dup {
		panic(fmt.Sprintf("dataflow: duplicate operator %s", spec.Name))
	}
	g.ops[spec.Name] = spec
	g.order = nil
	return g
}

// Connect adds a stream edge between registered operators.
func (g *Graph) Connect(from, to string, ex Exchange) *Graph {
	f, ok := g.ops[from]
	if !ok {
		panic(fmt.Sprintf("dataflow: connect from unknown operator %s", from))
	}
	t, ok := g.ops[to]
	if !ok {
		panic(fmt.Sprintf("dataflow: connect to unknown operator %s", to))
	}
	if t.Source != nil {
		panic(fmt.Sprintf("dataflow: source %s cannot have inputs", to))
	}
	if t.KeyedInput && ex != ExchangeKeyed {
		panic(fmt.Sprintf("dataflow: keyed operator %s requires keyed exchange from %s", to, from))
	}
	_ = f
	e := StreamEdge{From: from, To: to, Exchange: ex}
	g.inputs[to] = append(g.inputs[to], e)
	g.outputs[from] = append(g.outputs[from], e)
	g.order = nil
	return g
}

// Operator returns a registered spec.
func (g *Graph) Operator(name string) *OperatorSpec { return g.ops[name] }

// Inputs returns the inbound stream edges of an operator.
func (g *Graph) Inputs(name string) []StreamEdge { return g.inputs[name] }

// Outputs returns the outbound stream edges of an operator.
func (g *Graph) Outputs(name string) []StreamEdge { return g.outputs[name] }

// Predecessors returns the upstream operator names of name.
func (g *Graph) Predecessors(name string) []string {
	var out []string
	for _, e := range g.inputs[name] {
		out = append(out, e.From)
	}
	return out
}

// Successors returns the downstream operator names of name.
func (g *Graph) Successors(name string) []string {
	var out []string
	for _, e := range g.outputs[name] {
		out = append(out, e.To)
	}
	return out
}

// Topological returns operator names in a stable topological order. It
// panics on cycles — job graphs are DAGs by definition.
func (g *Graph) Topological() []string {
	if g.order != nil {
		return g.order
	}
	indeg := make(map[string]int, len(g.ops))
	names := make([]string, 0, len(g.ops))
	for n := range g.ops {
		names = append(names, n)
		indeg[n] = len(g.inputs[n])
	}
	sort.Strings(names) // stable tie-breaking
	var ready []string
	for _, n := range names {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var succs []string
		succs = append(succs, g.Successors(n)...)
		sort.Strings(succs)
		for _, s := range succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(g.ops) {
		panic("dataflow: job graph has a cycle")
	}
	g.order = order
	return order
}

// Validate checks structural integrity: every non-source has inputs, every
// source has outputs, and the graph is acyclic.
func (g *Graph) Validate() error {
	names := make([]string, 0, len(g.ops))
	for n := range g.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if op := g.ops[n]; op.Source == nil && len(g.inputs[n]) == 0 {
			return fmt.Errorf("dataflow: operator %s has no inputs and is not a source", n)
		}
	}
	defer func() { recover() }()
	g.Topological()
	return nil
}

// RoutingTable maps key groups to instance indices for one keyed operator,
// as held by one predecessor instance. During scaling, different predecessors
// may briefly hold different tables — that is exactly the synchronization
// problem the paper studies.
type RoutingTable struct {
	MaxKG int
	owner []int
}

// NewRoutingTable builds the contiguous Flink assignment for the given
// parallelism.
func NewRoutingTable(maxKG, parallelism int) *RoutingTable {
	rt := &RoutingTable{MaxKG: maxKG, owner: make([]int, maxKG)}
	for kg := 0; kg < maxKG; kg++ {
		rt.owner[kg] = state.OwnerOf(maxKG, parallelism, kg)
	}
	return rt
}

// Owner returns the instance owning kg.
func (rt *RoutingTable) Owner(kg int) int { return rt.owner[kg] }

// SetOwner reassigns kg.
func (rt *RoutingTable) SetOwner(kg, instance int) { rt.owner[kg] = instance }

// Clone copies the table.
func (rt *RoutingTable) Clone() *RoutingTable {
	owner := make([]int, len(rt.owner))
	copy(owner, rt.owner)
	return &RoutingTable{MaxKG: rt.MaxKG, owner: owner}
}

// Move is one key group's reassignment in a scale plan.
type Move struct {
	KeyGroup int
	From, To int
}

// UniformRepartition computes the paper's default strategy: the new
// assignment is the contiguous range assignment at the new parallelism; the
// plan is the set of key groups whose owner changes. Scaling 8→12 over 128
// groups moves 111 of them, reproducing the paper's experimental setup.
func UniformRepartition(maxKG, oldP, newP int) []Move {
	var moves []Move
	for kg := 0; kg < maxKG; kg++ {
		from := state.OwnerOf(maxKG, oldP, kg)
		to := state.OwnerOf(maxKG, newP, kg)
		if from != to {
			moves = append(moves, Move{KeyGroup: kg, From: from, To: to})
		}
	}
	return moves
}
