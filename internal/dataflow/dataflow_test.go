package dataflow

import (
	"testing"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

type nopLogic struct{}

func (nopLogic) OnRecord(OpContext, *netsim.Record)  {}
func (nopLogic) OnWatermark(OpContext, simtime.Time) {}

func specSource(name string, p int) *OperatorSpec {
	return &OperatorSpec{Name: name, Parallelism: p, Source: func(SourceContext) {}}
}

func specOp(name string, p int, keyed bool) *OperatorSpec {
	return &OperatorSpec{
		Name: name, Parallelism: p, KeyedInput: keyed,
		NewLogic: func() Logic { return nopLogic{} },
	}
}

func linearGraph() *Graph {
	g := NewGraph()
	g.AddOperator(specSource("src", 2))
	g.AddOperator(specOp("agg", 4, true))
	g.AddOperator(specOp("sink", 1, false))
	g.Connect("src", "agg", ExchangeKeyed)
	g.Connect("agg", "sink", ExchangeRebalance)
	return g
}

func TestGraphTopologicalOrder(t *testing.T) {
	g := linearGraph()
	order := g.Topological()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["src"] < pos["agg"] && pos["agg"] < pos["sink"]) {
		t.Fatalf("order %v", order)
	}
}

func TestGraphPredSucc(t *testing.T) {
	g := linearGraph()
	if p := g.Predecessors("agg"); len(p) != 1 || p[0] != "src" {
		t.Fatalf("preds %v", p)
	}
	if s := g.Successors("agg"); len(s) != 1 || s[0] != "sink" {
		t.Fatalf("succs %v", s)
	}
	if len(g.Predecessors("src")) != 0 || len(g.Successors("sink")) != 0 {
		t.Fatal("terminal ops should have no preds/succs")
	}
}

func TestGraphValidate(t *testing.T) {
	g := linearGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewGraph()
	bad.AddOperator(specOp("floating", 1, false))
	if err := bad.Validate(); err == nil {
		t.Fatal("operator without inputs should fail validation")
	}
}

func TestGraphDuplicatePanics(t *testing.T) {
	g := NewGraph()
	g.AddOperator(specSource("a", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate")
		}
	}()
	g.AddOperator(specSource("a", 1))
}

func TestGraphKeyedRequiresKeyedExchange(t *testing.T) {
	g := NewGraph()
	g.AddOperator(specSource("s", 1))
	g.AddOperator(specOp("k", 2, true))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: keyed op with rebalance input")
		}
	}()
	g.Connect("s", "k", ExchangeRebalance)
}

func TestGraphSourceCannotHaveInputs(t *testing.T) {
	g := NewGraph()
	g.AddOperator(specSource("a", 1))
	g.AddOperator(specSource("b", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: edge into source")
		}
	}()
	g.Connect("a", "b", ExchangeRebalance)
}

func TestSpecValidation(t *testing.T) {
	bad := &OperatorSpec{Name: "", Parallelism: 1, Source: func(SourceContext) {}}
	if bad.validate() == nil {
		t.Fatal("empty name should fail")
	}
	bad2 := &OperatorSpec{Name: "x", Parallelism: 0, Source: func(SourceContext) {}}
	if bad2.validate() == nil {
		t.Fatal("zero parallelism should fail")
	}
	bad3 := &OperatorSpec{Name: "x", Parallelism: 1}
	if bad3.validate() == nil {
		t.Fatal("no logic should fail")
	}
	keyed := specOp("x", 1, true)
	if err := keyed.validate(); err != nil || keyed.MaxKeyGroups != 128 {
		t.Fatalf("default MaxKeyGroups: %d err %v", keyed.MaxKeyGroups, err)
	}
}

func TestRoutingTableContiguous(t *testing.T) {
	rt := NewRoutingTable(128, 8)
	// Each instance should own a contiguous run of 16 groups.
	for kg := 0; kg < 128; kg++ {
		if rt.Owner(kg) != kg/16 {
			t.Fatalf("kg %d owner %d", kg, rt.Owner(kg))
		}
	}
}

func TestRoutingTableCloneIsolation(t *testing.T) {
	rt := NewRoutingTable(16, 4)
	cl := rt.Clone()
	cl.SetOwner(0, 3)
	if rt.Owner(0) == 3 {
		t.Fatal("clone not isolated")
	}
	if cl.Owner(0) != 3 {
		t.Fatal("SetOwner lost")
	}
}

func TestUniformRepartitionPaperSetup(t *testing.T) {
	// The paper's main experiments: 128 key groups, 8→12 instances migrates
	// 111 key groups.
	moves := UniformRepartition(128, 8, 12)
	if len(moves) != 111 {
		t.Fatalf("8→12 over 128 moves %d groups, paper says 111", len(moves))
	}
	// Sensitivity setup: 256 key groups, 25→30 migrates 229.
	moves = UniformRepartition(256, 25, 30)
	if len(moves) != 229 {
		t.Fatalf("25→30 over 256 moves %d groups, paper says 229", len(moves))
	}
}

func TestUniformRepartitionConsistency(t *testing.T) {
	moves := UniformRepartition(128, 8, 12)
	for _, m := range moves {
		if m.From == m.To {
			t.Fatalf("no-op move for kg %d", m.KeyGroup)
		}
		if m.From < 0 || m.From >= 8 || m.To < 0 || m.To >= 12 {
			t.Fatalf("bad move %+v", m)
		}
	}
	// Scaling in reverse must also be well-formed.
	down := UniformRepartition(128, 12, 8)
	if len(down) != len(moves) {
		t.Fatalf("down-scale moves %d, up-scale %d", len(down), len(moves))
	}
}

func TestDiamondGraphTopology(t *testing.T) {
	g := NewGraph()
	g.AddOperator(specSource("s", 1))
	g.AddOperator(specOp("a", 1, false))
	g.AddOperator(specOp("b", 1, false))
	g.AddOperator(specOp("join", 2, true))
	g.Connect("s", "a", ExchangeRebalance)
	g.Connect("s", "b", ExchangeRebalance)
	g.Connect("a", "join", ExchangeKeyed)
	g.Connect("b", "join", ExchangeKeyed)
	order := g.Topological()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if !(pos["s"] < pos["a"] && pos["s"] < pos["b"] && pos["a"] < pos["join"] && pos["b"] < pos["join"]) {
		t.Fatalf("diamond order %v", order)
	}
	if len(g.Predecessors("join")) != 2 {
		t.Fatal("join should have two predecessors")
	}
}
