package control

import (
	"testing"

	"drrs/internal/core"
	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/state"
	"drrs/internal/workload"
)

// newTestMech builds the cancellable mechanism the supersession paths need
// (core does not import control, so the test-only dependency is safe).
func newTestMech() scaling.Mechanism { return core.New(core.FullDRRS()) }

func snap(at simtime.Duration, p, backlog int, rps float64) Snapshot {
	return Snapshot{
		At:                simtime.Time(at),
		Parallelism:       p,
		TargetParallelism: p,
		SourceBacklog:     backlog,
		ThroughputRPS:     rps,
	}
}

func TestThresholdPolicyDeficitAndScaleIn(t *testing.T) {
	p := &Threshold{RatedRPS: 1000}
	// First sample primes the derivative — no action even with backlog.
	if acts := p.Observe(snap(simtime.Sec(1), 4, 200, 3000)); len(acts) != 0 {
		t.Fatalf("unprimed policy acted: %+v", acts)
	}
	// Backlog grew by 600 in 1 s: deficit above the 100 rec/s threshold.
	acts := p.Observe(snap(simtime.Sec(2), 4, 800, 3000))
	if len(acts) != 1 || acts[0].Target != 6 {
		t.Fatalf("deficit did not scale out by the step: %+v", acts)
	}
	// Flat backlog below BacklogHigh: no action.
	if acts := p.Observe(snap(simtime.Sec(3), 6, 800, 3000)); len(acts) != 0 {
		t.Fatalf("flat backlog acted: %+v", acts)
	}
	// Absolute watermark fires regardless of the derivative.
	if acts := p.Observe(snap(simtime.Sec(4), 6, 1500, 3000)); len(acts) != 1 || acts[0].Target != 8 {
		t.Fatalf("BacklogHigh did not fire: %+v", acts)
	}
	// Empty backlog at 30% utilization: scale in by the step.
	if acts := p.Observe(snap(simtime.Sec(5), 8, 0, 2400)); len(acts) != 1 || acts[0].Target != 6 {
		t.Fatalf("low utilization did not scale in: %+v", acts)
	}
}

func TestBacklogPolicyHysteresis(t *testing.T) {
	p := &Backlog{RatedRPS: 1000, TargetUtil: 0.75, Patience: 3}
	// Demand 6000+2000/2s = 7000 → ceil(7000/750) = 10: scale-out is
	// immediate.
	acts := p.Observe(snap(simtime.Sec(1), 8, 2000, 6000))
	if len(acts) != 1 || acts[0].Target != 10 {
		t.Fatalf("scale-out not immediate: %+v", acts)
	}
	// Oversized now — but shrink needs Patience consecutive samples, and
	// goal noise (need 4 vs 5) must not reset the countdown.
	if acts := p.Observe(snap(simtime.Sec(2), 10, 0, 3000)); len(acts) != 0 {
		t.Fatalf("shrink fired on the first sample: %+v", acts)
	}
	if acts := p.Observe(snap(simtime.Sec(3), 10, 0, 3400)); len(acts) != 0 {
		t.Fatalf("shrink fired on the second sample: %+v", acts)
	}
	acts = p.Observe(snap(simtime.Sec(4), 10, 0, 3000))
	if len(acts) != 1 {
		t.Fatalf("shrink never fired after patience: %+v", acts)
	}
	// Conservative goal: the largest need seen during the run
	// (ceil(3400/750) = 5), not the latest.
	if acts[0].Target != 5 {
		t.Fatalf("shrink target %d, want the conservative 5", acts[0].Target)
	}
	// A growth sample resets the countdown.
	p2 := &Backlog{RatedRPS: 1000, TargetUtil: 0.75, Patience: 2}
	p2.Observe(snap(simtime.Sec(1), 8, 0, 3000))    // shrinkRun 1
	p2.Observe(snap(simtime.Sec(2), 8, 4000, 8000)) // growth: resets
	if acts := p2.Observe(snap(simtime.Sec(3), 8, 0, 3000)); len(acts) != 0 {
		t.Fatalf("countdown survived a growth sample: %+v", acts)
	}
}

func TestPredictivePolicyExtrapolatesRamp(t *testing.T) {
	p := &Predictive{RatedRPS: 1000, TargetUtil: 0.75, Window: 4, Horizon: 2 * simtime.Second, Patience: 2}
	// Rate climbing 500 rec/s per second; current 3000 fits 4 instances
	// (util .75 of 4000 capacity at rated 1000), but the projection 2 s out
	// is ~5500 → ceil(5500/750) = 8.
	var acts []Action
	for i := 0; i < 4; i++ {
		acts = p.Observe(snap(simtime.Duration(i+1)*simtime.Second, 4, 0, 1500+500*float64(i+1)))
	}
	if len(acts) != 1 || acts[0].Target <= 4 {
		t.Fatalf("rising ramp not anticipated: %+v", acts)
	}
	// A flat window projects the current rate: no further growth.
	p2 := &Predictive{RatedRPS: 1000, TargetUtil: 0.75, Window: 3, Patience: 2}
	for i := 0; i < 3; i++ {
		acts = p2.Observe(snap(simtime.Duration(i+1)*simtime.Second, 4, 0, 2900))
	}
	if len(acts) != 0 {
		t.Fatalf("flat load acted: %+v", acts)
	}
}

func TestPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		p := PolicyByName(name, PolicyParams{RatedRPS: 500})
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	PolicyByName("nope", PolicyParams{})
}

// scriptedPolicy emits a fixed (time, target) program — the unit-test stand-in
// for a reactive policy, so controller behaviour is exact.
type scriptedPolicy struct {
	prog []struct {
		at     simtime.Time
		target int
	}
	// busyAtProposal records the in-flight operation's progress the first
	// time a proposal lands while an operation is running — the snapshot a
	// superseding decision is made on.
	busyAtProposal *scaling.Progress
}

func (p *scriptedPolicy) Name() string { return "scripted-test" }

func (p *scriptedPolicy) Observe(s Snapshot) []Action {
	// Keep proposing the latest due target; the controller dedupes repeats.
	var target int
	for _, e := range p.prog {
		if s.At >= e.at {
			target = e.target
		}
	}
	if target == 0 {
		return nil
	}
	if s.Busy && target != s.TargetParallelism && p.busyAtProposal == nil {
		op := s.Op
		p.busyAtProposal = &op
	}
	return []Action{{Target: target, Reason: "scripted"}}
}

func controllerRig(t *testing.T, seed int64) (*simtime.Scheduler, *engine.Runtime) {
	t.Helper()
	wl := workload.Config{
		SourceParallelism: 2,
		AggParallelism:    4,
		MaxKeyGroups:      32,
		Keys:              400,
		RatePerSec:        1500,
		StateBytesPerKey:  8192,
		CostPerRecord:     200 * simtime.Microsecond,
		Duration:          simtime.Sec(12),
		Seed:              seed,
	}
	g, _ := workload.Build(wl)
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: seed})
	// Slow migration so a second decision lands mid-operation.
	rt.Cluster.Node("local").MigrationBandwidth = 512 << 10
	rt.Start()
	return s, rt
}

// TestControllerSupersedesMidMigration is the controller-driving half of the
// concurrent-execution rule 1 coverage: the second decision fires while the
// first operation is still migrating, the controller cancels it, and the
// superseding plan — built by PlanFromPlacement — must source every move
// from the instance that *actually* holds the group, so nothing the
// cancelled operation already moved migrates twice.
func TestControllerSupersedesMidMigration(t *testing.T) {
	s, rt := controllerRig(t, 31)
	var plans []scaling.Plan
	pol := &scriptedPolicy{}
	pol.prog = append(pol.prog,
		struct {
			at     simtime.Time
			target int
		}{simtime.Time(simtime.Sec(1)), 6},
		struct {
			at     simtime.Time
			target int
		}{simtime.Time(simtime.Ms(3200)), 8},
	)
	var ctl *Controller
	ctl = New(rt, Config{
		Operator: "agg",
		Policy:   pol,
		Cadence:  simtime.Ms(250),
		Debounce: simtime.Ms(500),
		Min:      2,
		Max:      8,
		Setup:    simtime.Ms(50),
		Stop:     simtime.Time(simtime.Sec(12)),
	}, func() scaling.Mechanism { return newTestMech() }, Hooks{
		WillLaunch: func(d Decision, plan scaling.Plan) func() {
			if len(plans) == 1 {
				// Rule 1, checked at launch time: every move must leave from
				// the group's actual holder — never from its nominal
				// pre-cancellation owner — and a group the cancelled
				// operation already delivered to its final p=8 owner must
				// not be re-planned.
				moved2 := plan.Moved()
				for _, mv := range plan.Moves {
					holder := rt.Instance("agg", mv.From)
					if holder == nil || !holder.Store().HasGroup(mv.KeyGroup) {
						t.Errorf("superseding plan moves kg %d from %d, which does not hold it", mv.KeyGroup, mv.From)
					}
				}
				for _, mv := range plans[0].Moves {
					if ownerAt(rt, mv.KeyGroup) == state.OwnerOf(32, 8, mv.KeyGroup) && moved2.Has(mv.KeyGroup) {
						t.Errorf("kg %d already at its final owner but re-planned", mv.KeyGroup)
					}
				}
			}
			plans = append(plans, plan)
			return nil
		},
	})
	ctl.Start()
	s.RunUntil(simtime.Time(simtime.Sec(12)))
	rt.StopMarkers()
	s.Run()

	ds := ctl.Decisions()
	if len(ds) != 2 {
		t.Fatalf("decisions %d, want 2: %+v", len(ds), ds)
	}
	if ds[0].To != 6 || ds[0].Superseded || !ds[0].Done {
		t.Fatalf("first decision: %+v", ds[0])
	}
	if ds[1].To != 8 || !ds[1].Superseded || !ds[1].Done {
		t.Fatalf("second decision must supersede and complete: %+v", ds[1])
	}
	if len(plans) != 2 {
		t.Fatalf("launched %d operations, want 2", len(plans))
	}
	// The supersession must land mid-migration for the rule to be exercised:
	// the cancelled operation had moved some groups but not all.
	if pol.busyAtProposal == nil {
		t.Fatal("second proposal never observed a busy operation (rig needs retuning)")
	}
	if pr := *pol.busyAtProposal; pr.Moved == 0 || pr.Moved >= pr.Total {
		t.Fatalf("supersession did not land mid-migration: %+v (rig needs retuning)", pr)
	}
	// Final placement: settled at 8 instances with contiguous ownership.
	if ctl.Parallelism() != 8 {
		t.Fatalf("final parallelism %d, want 8", ctl.Parallelism())
	}
}

// ownerAt reports the instance index holding kg (or -1).
func ownerAt(rt *engine.Runtime, kg int) int {
	for _, in := range rt.Instances("agg") {
		if in.Store().HasGroup(kg) {
			return in.Index
		}
	}
	return -1
}

// TestControllerSupersedeDuringDeploy regresses the synchronous-cancel
// wedge: when the superseding decision lands while the old operation is
// still in its deploy phase (nothing launched yet), DRRS's Cancel completes
// the old operation *inside* the Cancel call — the controller must have the
// pending decision registered before that, or the replacement never
// launches and the loop silently stops scaling.
func TestControllerSupersedeDuringDeploy(t *testing.T) {
	s, rt := controllerRig(t, 17)
	pol := &scriptedPolicy{}
	pol.prog = append(pol.prog,
		struct {
			at     simtime.Time
			target int
		}{simtime.Time(simtime.Sec(1)), 6},
		struct {
			at     simtime.Time
			target int
		}{simtime.Time(simtime.Ms(1600)), 8},
	)
	ctl := New(rt, Config{
		Operator: "agg",
		Policy:   pol,
		Cadence:  simtime.Ms(200),
		Debounce: simtime.Ms(400),
		Min:      2,
		Max:      8,
		// Deploy takes 2 s: the second decision fires mid-deploy, before any
		// subscale launches.
		Setup: simtime.Sec(2),
		Stop:  simtime.Time(simtime.Sec(12)),
	}, func() scaling.Mechanism { return newTestMech() }, Hooks{})
	ctl.Start()
	s.RunUntil(simtime.Time(simtime.Sec(12)))
	rt.StopMarkers()
	s.Run()

	ds := ctl.Decisions()
	if len(ds) != 2 {
		t.Fatalf("decisions %d, want 2: %+v", len(ds), ds)
	}
	if !ds[1].Superseded {
		t.Fatalf("second decision did not supersede: %+v", ds[1])
	}
	if !ds[1].Launched || !ds[1].Done {
		t.Fatalf("superseding decision wedged (launched=%v done=%v): %+v",
			ds[1].Launched, ds[1].Done, ds[1])
	}
	if ctl.Parallelism() != 8 {
		t.Fatalf("final parallelism %d, want 8", ctl.Parallelism())
	}
}

// TestControllerDebounce: a policy that flip-flops every sample must be
// capped to one accepted decision per debounce window.
func TestControllerDebounce(t *testing.T) {
	s, rt := controllerRig(t, 7)
	flip := &flipPolicy{}
	ctl := New(rt, Config{
		Operator: "agg",
		Policy:   flip,
		Cadence:  simtime.Ms(100),
		Debounce: simtime.Sec(1),
		Min:      2,
		Max:      8,
		Stop:     simtime.Time(simtime.Sec(5)),
	}, func() scaling.Mechanism { return newTestMech() }, Hooks{})
	ctl.Start()
	s.RunUntil(simtime.Time(simtime.Sec(5)))
	rt.StopMarkers()
	s.Run()
	ds := ctl.Decisions()
	if len(ds) == 0 {
		t.Fatal("no decisions at all")
	}
	for i := 1; i < len(ds); i++ {
		if gap := ds[i].At.Sub(ds[i-1].At); gap < simtime.Sec(1) {
			t.Fatalf("decisions %d and %d only %v apart (debounce 1 s)", i-1, i, gap)
		}
	}
}

// flipPolicy asks for a different parallelism on every observation.
type flipPolicy struct{ n int }

func (p *flipPolicy) Name() string { return "flip" }

func (p *flipPolicy) Observe(s Snapshot) []Action {
	p.n++
	if p.n%2 == 0 {
		return []Action{{Target: 6, Reason: "flip"}}
	}
	return []Action{{Target: 4, Reason: "flop"}}
}
