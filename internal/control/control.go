// Package control is the reactive control plane: instead of a pre-scripted
// wave program deciding when and how far the job rescales, a Policy observes
// a cadence-sampled Snapshot of the running system (source backlog, emission
// rate, marker latency, in-flight operation progress) and emits scaling
// Actions. The Controller runs the policy on the simulated clock, debounces
// its decisions, launches mechanisms through the lifecycle-observable
// scaling.Mechanism interface, and — when a decision lands mid-operation —
// supersedes the in-flight operation per the paper's concurrent-execution
// rule 1: the old operation is cancelled, and the replacement plan comes
// from scaling.PlanFromPlacement so already-migrated key groups never move
// twice.
//
// Everything the controller reads derives from the seeded simulation, so
// closed-loop runs are exactly as deterministic as scripted ones.
package control

import (
	"fmt"

	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

// Config parameterizes a Controller.
type Config struct {
	// Operator is the operator being scaled.
	Operator string
	// Policy decides. The controller owns it for the run.
	Policy Policy
	// Cadence is the snapshot sampling period (default 500 ms).
	Cadence simtime.Duration
	// Window is the lookback for rate/latency sampling (default 4×Cadence).
	Window simtime.Duration
	// HoldOff suppresses actions before this instant (warmup guard);
	// sampling still runs so trend policies enter it warm.
	HoldOff simtime.Time
	// Stop ends sampling (the run horizon): no decision may launch into the
	// post-measurement drain. Required — the cadence loop re-arms itself, so
	// without a stop instant a post-horizon scheduler drain never empties.
	Stop simtime.Time
	// Debounce is the minimum spacing between accepted decisions
	// (default 2 s) — the oscillation guard.
	Debounce simtime.Duration
	// DegradedDebounce, when larger than Debounce, replaces it while the
	// cluster is degraded: for DegradedWindow after each Health disruption,
	// voluntary decisions space out to this wider guard so the controller
	// stops chasing a cluster that is still being faulted. Recovery
	// supersessions are unaffected — they already bypass the debounce.
	// Zero disables degraded mode (the historical behavior).
	DegradedDebounce simtime.Duration
	// DegradedWindow is how long after the latest disruption the degraded
	// debounce applies (default 2×DegradedDebounce).
	DegradedWindow simtime.Duration
	// Min and Max bound the reachable parallelism.
	Min, Max int
	// Setup is the plan's physical deployment delay.
	Setup simtime.Duration
	// InitialParallelism seeds the logical parallelism before the first
	// operation.
	InitialParallelism int
	// Health, when set, reports a monotonic cluster-disruption count plus a
	// note describing the latest disruption (the fault injector's view). The
	// controller polls it every tick; a count increase while an operation is
	// in flight triggers an involuntary recovery supersession — cancel,
	// re-plan from surviving placement — bypassing the debounce guard.
	Health func() (int, string)
	// Interventions force counterfactual forks: each intercepts the voluntary
	// decision whose Seq matches its K (recovery decisions are exempt) and
	// replaces the policy's choice — see Intervention. Empty means the policy
	// runs unforced, which is the only mode the golden digests pin.
	Interventions []Intervention
}

func (c *Config) fillDefaults() {
	if c.Cadence == 0 {
		c.Cadence = 500 * simtime.Millisecond
	}
	if c.Window == 0 {
		c.Window = 4 * c.Cadence
	}
	if c.Debounce == 0 {
		c.Debounce = 2 * simtime.Second
	}
	if c.DegradedDebounce > 0 && c.DegradedWindow == 0 {
		c.DegradedWindow = 2 * c.DegradedDebounce
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 1 << 30
	}
}

// Decision is one audit-trail entry: what the policy saw, what it asked
// for, and what became of the request.
type Decision struct {
	// Seq numbers decisions within the run.
	Seq int
	// At is the decision instant; Policy and Reason describe the trigger.
	At     simtime.Time
	Policy string
	Reason string
	// From is the parallelism the system was heading to when the decision
	// fired; To is the decision's (clamped) target.
	From, To int
	// Superseded reports the decision preempted an in-flight operation: the
	// old operation was cancelled and this launch waited for it to settle.
	Superseded bool
	// Recovery reports the decision was involuntary: a cluster disruption
	// (from Config.Health) invalidated the in-flight operation, and this
	// decision re-plans the same target from the surviving placement.
	Recovery bool
	// Launched/LaunchedAt report the resulting operation's start. A decision
	// that was itself replaced while waiting never launches.
	Launched   bool
	LaunchedAt simtime.Time
	// Done/DoneAt report the operation's completion.
	Done   bool
	DoneAt simtime.Time
	// Snapshot is what the policy saw when it fired — the evidence behind the
	// decision, recorded so counterfactual analysis can ask "given this view,
	// was the action right?". Not folded into outcome digests.
	Snapshot Snapshot
	// Forced reports a counterfactual intervention replaced the policy's
	// choice at this fork (see Config.Interventions). Never set on unforced
	// runs, so golden digests are unaffected.
	Forced bool
}

// Hooks are the harness integration points.
type Hooks struct {
	// WillLaunch fires right before the mechanism Begins an operation (the
	// bench harness swaps per-operation metrics collectors here). The
	// returned callback — if any — fires when the operation completes.
	WillLaunch func(d Decision, plan scaling.Plan) func()
}

// Controller runs one policy against one runtime.
type Controller struct {
	cfg     Config
	rt      *engine.Runtime
	newMech func() scaling.Mechanism
	hooks   Hooks

	decisions  []Decision
	cur        scaling.Operation
	curIdx     int // decision index of the in-flight operation
	pending    int // decision index waiting on supersession, -1 when none
	curP       int // logical parallelism (target of the last completed op)
	lastAct    simtime.Time
	acted      bool
	lastHealth int // last disruption count seen from cfg.Health
	// lastDisrupt/disrupted track when the latest disruption landed, for the
	// degraded-mode debounce widening.
	lastDisrupt simtime.Time
	disrupted   bool
	// delayed suppresses new policy decisions while a delay-intervened
	// decision waits for its shifted action: the fork under study is the
	// postponed action, not a race against fresher decisions.
	delayed bool
}

// New builds a controller. Call Start before running the scheduler.
func New(rt *engine.Runtime, cfg Config, newMech func() scaling.Mechanism, hooks Hooks) *Controller {
	if cfg.Stop <= 0 {
		panic("control: Config.Stop must be set — the sampling loop re-arms every cadence tick and would keep the scheduler drain alive forever")
	}
	cfg.fillDefaults()
	if cfg.InitialParallelism <= 0 {
		cfg.InitialParallelism = len(rt.Instances(cfg.Operator))
	}
	return &Controller{
		cfg:     cfg,
		rt:      rt,
		newMech: newMech,
		hooks:   hooks,
		curP:    cfg.InitialParallelism,
		pending: -1,
	}
}

// Start arms the sampling loop.
func (c *Controller) Start() { c.schedule() }

// Decisions returns the audit trail (shared slice; callers must not mutate).
func (c *Controller) Decisions() []Decision { return c.decisions }

// Parallelism reports the logical parallelism: the target of the last
// completed operation.
func (c *Controller) Parallelism() int { return c.curP }

// target is where the system is heading: pending supersession first, then
// the in-flight operation, then the settled parallelism.
func (c *Controller) target() int {
	if c.pending >= 0 {
		return c.decisions[c.pending].To
	}
	if c.cur != nil {
		return c.decisions[c.curIdx].To
	}
	return c.curP
}

func (c *Controller) schedule() {
	c.rt.Sched.After(c.cfg.Cadence, c.tick)
}

func (c *Controller) tick() {
	now := c.rt.Sched.Now()
	if now > c.cfg.Stop {
		return
	}
	c.checkHealth(now)
	s := c.Sample()
	acts := c.cfg.Policy.Observe(s)
	if now >= c.cfg.HoldOff {
		c.consider(now, s, acts)
	}
	c.schedule()
}

// checkHealth turns cluster disruptions into involuntary recovery
// supersessions. Unlike policy decisions, recovery ignores HoldOff and
// Debounce — a migration heading for a dead destination must not wait out an
// oscillation guard — and re-plans the *same* target: the point is to route
// the remaining moves around the disruption, not to change where the system
// is going.
func (c *Controller) checkHealth(now simtime.Time) {
	if c.cfg.Health == nil {
		return
	}
	h, note := c.cfg.Health()
	if h <= c.lastHealth {
		return
	}
	c.lastHealth = h
	c.lastDisrupt, c.disrupted = now, true
	if c.cur == nil || c.pending >= 0 {
		// Nothing in flight to rescue, or a replacement is already queued —
		// its launch re-plans from the actual placement anyway.
		return
	}
	d := Decision{
		Seq:        len(c.decisions),
		At:         now,
		Policy:     c.cfg.Policy.Name(),
		Reason:     "recovery: " + note,
		From:       c.target(),
		To:         c.target(),
		Superseded: true,
		Recovery:   true,
		Snapshot:   c.Sample(),
	}
	c.decisions = append(c.decisions, d)
	c.pending = d.Seq
	c.cur.Cancel()
}

// Sample assembles the policy's snapshot from the runtime's trackers.
func (c *Controller) Sample() Snapshot {
	now := c.rt.Sched.Now()
	from := now.Add(-c.cfg.Window)
	s := Snapshot{
		At:                now,
		Parallelism:       c.curP,
		TargetParallelism: c.target(),
		SourceBacklog:     c.rt.SourceBacklog(),
		ThroughputRPS:     c.rt.Throughput.RateIn(from, now),
		AvgLatencyMs:      c.rt.Latency.AvgIn(from, now),
	}
	if c.cur != nil {
		s.Busy = true
		s.Op = c.cur.Progress()
	}
	return s
}

// consider applies the first actionable entry: clamp, drop no-ops, debounce,
// then — unless a counterfactual intervention forces the fork — either launch
// or supersede.
func (c *Controller) consider(now simtime.Time, s Snapshot, acts []Action) {
	if c.delayed {
		// A delay-intervened decision is waiting for its shifted action.
		return
	}
	for _, a := range acts {
		to := a.Target
		if to < c.cfg.Min {
			to = c.cfg.Min
		}
		if to > c.cfg.Max {
			to = c.cfg.Max
		}
		if to == c.target() {
			continue
		}
		deb := c.cfg.Debounce
		if c.cfg.DegradedDebounce > deb && c.disrupted && now.Sub(c.lastDisrupt) < c.cfg.DegradedWindow {
			// Degraded mode: the cluster was disrupted recently enough that
			// another fault is plausible; hold voluntary rescaling longer.
			deb = c.cfg.DegradedDebounce
		}
		if c.acted && now.Sub(c.lastAct) < deb {
			return
		}
		c.lastAct, c.acted = now, true
		d := Decision{
			Seq:      len(c.decisions),
			At:       now,
			Policy:   c.cfg.Policy.Name(),
			Reason:   a.Reason,
			From:     c.target(),
			To:       to,
			Snapshot: s,
		}
		if iv, ok := intervention(c.cfg.Interventions, d.Seq); ok {
			c.force(d, iv)
			return
		}
		c.decisions = append(c.decisions, d)
		c.act(d.Seq)
		return
	}
}

// force applies a counterfactual intervention at decision d's fork. The
// decision passed every unforced gate (clamp, no-op skip, debounce) and has
// consumed the debounce slot, so the forced run's decision *timing* matches
// the baseline — only the action at this fork differs.
func (c *Controller) force(d Decision, iv Intervention) {
	d.Forced = true
	if iv.NoOp {
		// Drop the fork: record what the policy wanted (audit trail keeps the
		// original To) but cancel and launch nothing.
		d.Reason = "forced noop; policy wanted: " + d.Reason
		c.decisions = append(c.decisions, d)
		return
	}
	if iv.Target > 0 {
		to := iv.Target
		if to < c.cfg.Min {
			to = c.cfg.Min
		}
		if to > c.cfg.Max {
			to = c.cfg.Max
		}
		d.Reason = fmt.Sprintf("forced target %d; policy wanted %d: %s", to, d.To, d.Reason)
		d.To = to
		if d.To == c.target() {
			// The forced target is where the system is already heading — a
			// forced no-op, recorded but not acted on.
			c.decisions = append(c.decisions, d)
			return
		}
	}
	if iv.Delay > 0 {
		d.Reason = fmt.Sprintf("forced +%v delay: %s", iv.Delay, d.Reason)
		c.decisions = append(c.decisions, d)
		di := d.Seq
		c.delayed = true
		c.rt.Sched.After(iv.Delay, func() {
			c.delayed = false
			c.act(di)
		})
		return
	}
	c.decisions = append(c.decisions, d)
	c.act(d.Seq)
}

// act performs decision di's action: supersede the in-flight operation or
// launch immediately.
func (c *Controller) act(di int) {
	if c.cur != nil {
		// Concurrent-execution rule: the newer request terminates the
		// older one. Cancel stops mechanisms that honor it from
		// launching further migration work; either way the replacement
		// waits for the old operation's done, then plans from the actual
		// (partially migrated) placement. pending must be set before
		// Cancel: a mechanism with nothing in flight (still deploying,
		// or between subscale batches) completes synchronously inside
		// Cancel, and its done callback is what launches the
		// replacement.
		c.decisions[di].Superseded = true
		c.pending = di
		c.cur.Cancel()
		return
	}
	c.launch(di)
}

// launch begins decision di's operation from the actual current placement.
// Decisions are always re-resolved by index: the audit slice's backing array
// moves as later decisions append.
func (c *Controller) launch(di int) {
	now := c.rt.Sched.Now()
	if now > c.cfg.Stop {
		// The supersession chain outran the measured run; launching into the
		// drain would measure an idle system.
		return
	}
	d := &c.decisions[di]
	// Routing left pointing at an instance that never received its state (a
	// transfer failed mid-supersession) would make the new plan skip the
	// repair: PlanFromPlacement only moves groups whose holder and owner
	// disagree. Reconciling routing to actual holders first is a no-op on
	// healthy runs.
	scaling.ReconcileRouting(c.rt, c.cfg.Operator)
	plan := scaling.PlanFromPlacement(c.rt, c.cfg.Operator, d.To, c.cfg.Setup)
	var onDone func()
	if c.hooks.WillLaunch != nil {
		onDone = c.hooks.WillLaunch(*d, plan)
	}
	d.Launched = true
	d.LaunchedAt = now
	c.curIdx = di
	target := d.To
	mech := c.newMech()
	var op scaling.Operation
	op = mech.Begin(c.rt, plan, func() {
		d := &c.decisions[di]
		d.Done = true
		d.DoneAt = c.rt.Sched.Now()
		if op == nil || !op.Progress().Cancelled {
			// A cancelled operation settled short of its target (unlaunched
			// work dropped); claiming the target would misreport the
			// operator's parallelism to every later snapshot. The
			// superseding launch re-plans from actual placement and updates
			// curP when it completes.
			c.curP = target
		}
		c.cur = nil
		if onDone != nil {
			onDone()
		}
		if c.pending >= 0 {
			next := c.pending
			c.pending = -1
			c.launch(next)
		}
	})
	c.cur = op
}
