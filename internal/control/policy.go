package control

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

// Snapshot is one cadence sample of the running job — everything a policy is
// allowed to see. All fields derive from the simulated clock and seeded
// trackers, so policies observing snapshots stay bit-for-bit deterministic.
type Snapshot struct {
	// At is the sample instant.
	At simtime.Time
	// Parallelism is the operator's logical parallelism: the target of the
	// last completed operation (the physical instance count only grows).
	Parallelism int
	// TargetParallelism is where the system is heading — equal to
	// Parallelism when idle, the in-flight (or pending superseding) target
	// otherwise.
	TargetParallelism int
	// SourceBacklog is the records queued at the sources: offered load the
	// data plane has not absorbed (backpressure from a saturated operator
	// stalls emission, so unmet demand piles up here).
	SourceBacklog int
	// ThroughputRPS is the mean source emission rate over the sample window.
	ThroughputRPS float64
	// AvgLatencyMs is the mean marker latency over the sample window (0 when
	// no marker landed in it).
	AvgLatencyMs float64
	// Busy reports an operation in flight; Op is its lifecycle progress.
	Busy bool
	Op   scaling.Progress
}

// Action asks the controller to rescale the operator.
type Action struct {
	// Target is the desired parallelism (the controller clamps to its
	// configured bounds).
	Target int
	// Reason is a short human-readable justification recorded in the
	// decision audit trail.
	Reason string
}

// Policy turns snapshots into scaling actions. Policies may keep state
// across Observe calls (trend windows, hysteresis counters); the harness
// constructs a fresh policy per run, so state never leaks between seeds.
// The controller applies the first actionable entry of the returned slice.
type Policy interface {
	// Name identifies the policy in reports and audit trails.
	Name() string
	// Observe inspects one snapshot and returns zero or more actions.
	Observe(s Snapshot) []Action
}

// Threshold scales on throughput deficit: the backlog derivative says how
// many records per second the current configuration fails to absorb, and
// per-instance utilization against the rated capacity drives scale-in. This
// is the classic reactive autoscaler — fast on sustained deficit, blind to
// trends.
type Threshold struct {
	// RatedRPS is the per-instance processing capacity the policy plans
	// against (records/s).
	RatedRPS float64
	// DeficitRPS triggers scale-out when the backlog grows faster than this
	// (default 100 records/s).
	DeficitRPS float64
	// BacklogHigh triggers scale-out outright when the backlog exceeds it,
	// regardless of its derivative (default 1000 records).
	BacklogHigh int
	// LowUtil triggers scale-in when utilization falls below it with an
	// empty backlog (default 0.5).
	LowUtil float64
	// Step is how many instances each action adds or removes (default 2).
	Step int

	lastBacklog int
	lastAt      simtime.Time
	primed      bool
}

// Name implements Policy.
func (p *Threshold) Name() string { return "threshold" }

// Observe implements Policy.
func (p *Threshold) Observe(s Snapshot) []Action {
	p.fillDefaults()
	growth := 0.0
	if p.primed && s.At > p.lastAt {
		growth = float64(s.SourceBacklog-p.lastBacklog) / s.At.Sub(p.lastAt).Seconds()
	}
	p.lastBacklog, p.lastAt, p.primed = s.SourceBacklog, s.At, true

	cur := s.TargetParallelism
	switch {
	case growth > p.DeficitRPS || s.SourceBacklog > p.BacklogHigh:
		return []Action{{
			Target: cur + p.Step,
			Reason: fmt.Sprintf("deficit %.0f rec/s, backlog %d", growth, s.SourceBacklog),
		}}
	case s.SourceBacklog == 0 && s.ThroughputRPS > 0 &&
		s.ThroughputRPS < p.LowUtil*p.RatedRPS*float64(cur):
		return []Action{{
			Target: cur - p.Step,
			Reason: fmt.Sprintf("utilization %.2f below %.2f", s.ThroughputRPS/(p.RatedRPS*float64(cur)), p.LowUtil),
		}}
	}
	return nil
}

func (p *Threshold) fillDefaults() {
	if p.DeficitRPS == 0 {
		p.DeficitRPS = 100
	}
	if p.BacklogHigh == 0 {
		p.BacklogHigh = 1000
	}
	if p.LowUtil == 0 {
		p.LowUtil = 0.5
	}
	if p.Step == 0 {
		p.Step = 2
	}
}

// Backlog chases the source backlog with hysteresis: demand is estimated as
// the observed emission rate plus enough extra capacity to drain the queued
// backlog within DrainWindow, and the parallelism that serves that demand at
// TargetUtil becomes the goal. Hysteresis (Patience consecutive samples
// before shrinking, an asymmetric fast path for growth) keeps a noisy
// backlog from flapping the cluster.
type Backlog struct {
	// RatedRPS is the per-instance processing capacity (records/s).
	RatedRPS float64
	// TargetUtil is the planned post-scale utilization (default 0.75).
	TargetUtil float64
	// DrainWindow is how fast the backlog should be drained (default 2 s):
	// smaller windows chase harder.
	DrainWindow simtime.Duration
	// Deadband suppresses actions when the backlog is below it and the
	// computed target differs by a single instance (default 64 records).
	Deadband int
	// Patience is how many consecutive samples must agree before the policy
	// scales in (default 4). Scale-out fires on the first sample — queueing
	// hurts immediately, idling does not.
	Patience int

	shrinkRun  int
	shrinkGoal int
}

// Name implements Policy.
func (p *Backlog) Name() string { return "backlog" }

// Observe implements Policy.
func (p *Backlog) Observe(s Snapshot) []Action {
	p.fillDefaults()
	if p.RatedRPS <= 0 || s.ThroughputRPS <= 0 {
		return nil
	}
	demand := s.ThroughputRPS + float64(s.SourceBacklog)/p.DrainWindow.Seconds()
	need := int(math.Ceil(demand / (p.RatedRPS * p.TargetUtil)))
	if need < 1 {
		need = 1
	}
	cur := s.TargetParallelism
	switch {
	case need > cur:
		p.shrinkRun = 0
		return []Action{{
			Target: need,
			Reason: fmt.Sprintf("demand %.0f rec/s (backlog %d) needs %d instances", demand, s.SourceBacklog, need),
		}}
	case need < cur:
		if s.SourceBacklog <= p.Deadband && cur-need == 1 {
			// Within the deadband a one-instance shrink is noise.
			p.shrinkRun = 0
			return nil
		}
		// Hysteresis: count consecutive samples that agree the cluster is
		// oversized, and shrink only to the *largest* need seen during the
		// run — sample noise must not reset the countdown or overshoot the
		// shrink.
		p.shrinkRun++
		if p.shrinkRun == 1 || need > p.shrinkGoal {
			p.shrinkGoal = need
		}
		if p.shrinkRun < p.Patience {
			return nil
		}
		p.shrinkRun = 0
		return []Action{{
			Target: p.shrinkGoal,
			Reason: fmt.Sprintf("demand %.0f rec/s sustained %d samples below %d instances", demand, p.Patience, cur),
		}}
	default:
		p.shrinkRun = 0
	}
	return nil
}

func (p *Backlog) fillDefaults() {
	if p.TargetUtil == 0 {
		p.TargetUtil = 0.75
	}
	if p.DrainWindow == 0 {
		p.DrainWindow = 2 * simtime.Second
	}
	if p.Deadband == 0 {
		p.Deadband = 64
	}
	if p.Patience == 0 {
		p.Patience = 4
	}
}

// Predictive extrapolates the load shape: a least-squares line through the
// recent emission-rate samples is projected Horizon ahead, and the
// parallelism that serves the projected rate at TargetUtil becomes the goal.
// Where Threshold reacts after queues form, Predictive scales into a ramp
// before saturation — and scales back down the far side of the peak.
type Predictive struct {
	// RatedRPS is the per-instance processing capacity (records/s).
	RatedRPS float64
	// TargetUtil is the planned post-scale utilization (default 0.75).
	TargetUtil float64
	// Window is how many samples feed the trend fit (default 8).
	Window int
	// Horizon is how far ahead the trend is projected (default 3 s) —
	// roughly deployment time plus migration time, so capacity lands when
	// the load does.
	Horizon simtime.Duration
	// Patience is how many consecutive samples must agree before scaling in
	// (default 3; scale-out acts on the first).
	Patience int

	hist       []ratePoint
	shrinkRun  int
	shrinkGoal int
}

type ratePoint struct {
	at  simtime.Time
	rps float64
}

// Name implements Policy.
func (p *Predictive) Name() string { return "predictive" }

// Observe implements Policy.
func (p *Predictive) Observe(s Snapshot) []Action {
	p.fillDefaults()
	if p.RatedRPS <= 0 {
		return nil
	}
	p.hist = append(p.hist, ratePoint{at: s.At, rps: s.ThroughputRPS})
	if len(p.hist) > p.Window {
		p.hist = p.hist[len(p.hist)-p.Window:]
	}
	if len(p.hist) < p.Window {
		return nil
	}
	predicted := p.extrapolate(s.At.Add(p.Horizon))
	// Queued backlog is demand the projection cannot see; fold it in so a
	// spike mid-window still registers.
	predicted += float64(s.SourceBacklog) / p.Horizon.Seconds()
	need := int(math.Ceil(predicted / (p.RatedRPS * p.TargetUtil)))
	if need < 1 {
		need = 1
	}
	cur := s.TargetParallelism
	switch {
	case need > cur:
		p.shrinkRun = 0
		return []Action{{
			Target: need,
			Reason: fmt.Sprintf("projected %.0f rec/s in %v needs %d instances", predicted, p.Horizon, need),
		}}
	case need < cur:
		// Same conservative hysteresis as Backlog: shrink to the largest
		// need seen during the patience run.
		p.shrinkRun++
		if p.shrinkRun == 1 || need > p.shrinkGoal {
			p.shrinkGoal = need
		}
		if p.shrinkRun < p.Patience {
			return nil
		}
		p.shrinkRun = 0
		return []Action{{
			Target: p.shrinkGoal,
			Reason: fmt.Sprintf("projected %.0f rec/s sustained %d samples below %d instances", predicted, p.Patience, cur),
		}}
	default:
		p.shrinkRun = 0
	}
	return nil
}

// extrapolate fits rate = a + b·t over the window by least squares and
// evaluates at t. A degenerate window (all samples at one instant) falls
// back to the latest rate.
func (p *Predictive) extrapolate(at simtime.Time) float64 {
	n := float64(len(p.hist))
	t0 := p.hist[0].at
	var st, sy, stt, sty float64
	for _, h := range p.hist {
		t := h.at.Sub(t0).Seconds()
		st += t
		sy += h.rps
		stt += t * t
		sty += t * h.rps
	}
	den := n*stt - st*st
	if den == 0 {
		return p.hist[len(p.hist)-1].rps
	}
	b := (n*sty - st*sy) / den
	a := (sy - b*st) / n
	v := a + b*at.Sub(t0).Seconds()
	if v < 0 {
		return 0
	}
	return v
}

func (p *Predictive) fillDefaults() {
	if p.TargetUtil == 0 {
		p.TargetUtil = 0.75
	}
	if p.Window == 0 {
		p.Window = 8
	}
	if p.Horizon == 0 {
		p.Horizon = 3 * simtime.Second
	}
	if p.Patience == 0 {
		p.Patience = 3
	}
}

// PolicyParams carries the scenario-derived calibration a by-name policy
// needs (the registry cannot know per-workload capacities), plus the tunable
// knobs the policy-search sweeps explore. Zero values defer to each policy's
// fillDefaults, so existing by-name construction is unchanged.
type PolicyParams struct {
	// RatedRPS is the per-instance processing capacity (records/s). The
	// bench driver derives it from the scaling operator's CostPerRecord when
	// the scenario does not pin it.
	RatedRPS float64
	// Patience is the scale-in hysteresis: consecutive agreeing samples
	// required before shrinking (backlog and predictive policies; threshold
	// has no hysteresis counter).
	Patience int
	// Horizon is the predictive policy's projection distance.
	Horizon simtime.Duration
}

// policyFactories maps registry names to constructors. Policies are stateful,
// so the registry hands out factories, never shared instances.
var policyFactories = map[string]func(PolicyParams) Policy{
	"threshold": func(p PolicyParams) Policy { return &Threshold{RatedRPS: p.RatedRPS} },
	"backlog":   func(p PolicyParams) Policy { return &Backlog{RatedRPS: p.RatedRPS, Patience: p.Patience} },
	"predictive": func(p PolicyParams) Policy {
		return &Predictive{RatedRPS: p.RatedRPS, Patience: p.Patience, Horizon: p.Horizon}
	},
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	out := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PolicyByName constructs a fresh registered policy. Unknown names panic
// with the full list, mirroring the scenario registry's contract.
func PolicyByName(name string, params PolicyParams) Policy {
	f, ok := policyFactories[name]
	if !ok {
		panic(fmt.Sprintf("control: unknown policy %q (known: %s)", name, strings.Join(PolicyNames(), ", ")))
	}
	return f(params)
}
