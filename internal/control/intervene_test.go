package control

import (
	"testing"

	"drrs/internal/simtime"
)

func TestParseInterventions(t *testing.T) {
	cases := []struct {
		spec string
		want []Intervention
	}{
		{"k=2:noop", []Intervention{{K: 2, NoOp: true}}},
		{"all:noop", []Intervention{{K: AllDecisions, NoOp: true}}},
		{"k=0:target=14", []Intervention{{K: 0, Target: 14}}},
		{"k=1:delay=2s", []Intervention{{K: 1, Delay: 2 * simtime.Second}}},
		{"k=1:target=6,delay=500ms", []Intervention{{K: 1, Target: 6, Delay: 500 * simtime.Millisecond}}},
		{"k=0:noop; k=3:target=8", []Intervention{{K: 0, NoOp: true}, {K: 3, Target: 8}}},
	}
	for _, c := range cases {
		got, err := ParseInterventions(c.spec)
		if err != nil {
			t.Errorf("ParseInterventions(%q): %v", c.spec, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseInterventions(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseInterventions(%q)[%d] = %+v, want %+v", c.spec, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseInterventionsRejects(t *testing.T) {
	for _, spec := range []string{
		"",                  // empty
		"k=2",               // no action
		"k=2:",              // empty action
		"2:noop",            // bare index
		"k=-1:noop",         // negative index
		"k=2:noop,target=8", // noop excludes target
		"k=2:target=0",      // non-positive target
		"k=2:delay=-1s",     // non-positive delay
		"k=2:delay=fast",    // unparseable duration
		"k=2:sideways",      // unknown action
	} {
		if ivs, err := ParseInterventions(spec); err == nil {
			t.Errorf("ParseInterventions(%q) accepted as %v, want error", spec, ivs)
		}
	}
}

// TestInterventionRoundTrip pins that String() re-parses to the same
// intervention, so forced runs are reproducible from printed reports.
func TestInterventionRoundTrip(t *testing.T) {
	for _, iv := range []Intervention{
		{K: 2, NoOp: true},
		{K: AllDecisions, NoOp: true},
		{K: 0, Target: 14},
		{K: 1, Target: 6, Delay: 2 * simtime.Second},
	} {
		back, err := ParseInterventions(iv.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", iv.String(), err)
		}
		if len(back) != 1 || back[0] != iv {
			t.Errorf("round trip %+v → %q → %+v", iv, iv.String(), back)
		}
	}
}

// TestInterventionLookup pins precedence: an exact K match beats the
// AllDecisions wildcard regardless of spec order.
func TestInterventionLookup(t *testing.T) {
	ivs := []Intervention{
		{K: AllDecisions, NoOp: true},
		{K: 2, Target: 9},
	}
	if iv, ok := intervention(ivs, 2); !ok || iv.Target != 9 {
		t.Errorf("seq 2 resolved %+v, want the exact target=9 match", iv)
	}
	if iv, ok := intervention(ivs, 5); !ok || !iv.NoOp {
		t.Errorf("seq 5 resolved %+v, want the wildcard noop", iv)
	}
	if _, ok := intervention([]Intervention{{K: 1, NoOp: true}}, 0); ok {
		t.Error("seq 0 matched a k=1 intervention")
	}
}
