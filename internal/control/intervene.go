package control

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"drrs/internal/simtime"
)

// AllDecisions is the Intervention.K wildcard: the intervention fires at
// every policy decision instead of one numbered fork point.
const AllDecisions = -1

// Intervention forces an alternative at one decision point of a controller
// run — the counterfactual fork. A counterfactual replay is a deterministic
// re-execution of the same seeded scenario with one (or more) decisions
// replaced: drop the decision entirely (NoOp), redirect it to a different
// target parallelism (Target), or shift its timing (Delay). Everything else
// — workload, policy, debounce, supersession — runs exactly as in the
// baseline, so any outcome difference is attributable to the fork.
//
// Interventions match voluntary policy decisions by their audit-trail Seq.
// Involuntary recovery decisions (Config.Health supersessions) are never
// intercepted: forcing a no-op there would leave an operation migrating into
// a dead destination, which is a fault-handling experiment, not a decision
// counterfactual.
type Intervention struct {
	// K selects the decision (Decision.Seq) to force; AllDecisions matches
	// every voluntary decision.
	K int
	// NoOp drops the decision: it is recorded in the audit trail (Forced,
	// never Launched) but nothing is cancelled or launched.
	NoOp bool
	// Target, when > 0, replaces the policy's requested parallelism. It is
	// clamped to the controller's Min/Max like any decision.
	Target int
	// Delay postpones the decision's action: the decision is recorded at its
	// original instant, but the cancel-and-launch (or launch) happens Delay
	// later. Policy decisions arriving during the delay are suppressed — the
	// fork under study is the shifted action, not a race against it.
	Delay simtime.Duration
}

// String renders the intervention in the spec grammar ParseInterventions
// reads, so a forced run is reproducible from its printed report.
func (iv Intervention) String() string {
	k := "all"
	if iv.K != AllDecisions {
		k = fmt.Sprintf("k=%d", iv.K)
	}
	var acts []string
	if iv.NoOp {
		acts = append(acts, "noop")
	}
	if iv.Target > 0 {
		acts = append(acts, fmt.Sprintf("target=%d", iv.Target))
	}
	if iv.Delay > 0 {
		acts = append(acts, "delay="+(time.Duration(iv.Delay)*time.Microsecond).String())
	}
	return k + ":" + strings.Join(acts, ",")
}

// ParseInterventions parses a counterfactual spec:
//
//	spec   := entry (';' entry)*
//	entry  := ('k=' N | 'all') ':' action (',' action)*
//	action := 'noop' | 'target=' N | 'delay=' duration
//
// Examples: "k=2:noop" drops decision 2; "k=0:target=14" redirects the first
// decision; "k=1:delay=2s" shifts decision 1's action two seconds later;
// "all:noop" suppresses every voluntary decision (the no-controller
// counterfactual). Durations use Go syntax ("500ms", "2s").
func ParseInterventions(spec string) ([]Intervention, error) {
	var out []Intervention
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		sel, actions, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("control: intervention %q needs '<k=N|all>:<actions>'", entry)
		}
		iv := Intervention{K: AllDecisions}
		switch {
		case strings.TrimSpace(sel) == "all":
		case strings.HasPrefix(strings.TrimSpace(sel), "k="):
			k, err := strconv.Atoi(strings.TrimSpace(sel)[2:])
			if err != nil || k < 0 {
				return nil, fmt.Errorf("control: intervention %q: bad decision index %q", entry, sel)
			}
			iv.K = k
		default:
			return nil, fmt.Errorf("control: intervention %q: selector %q is neither k=N nor all", entry, sel)
		}
		for _, act := range strings.Split(actions, ",") {
			key, val, hasVal := strings.Cut(strings.TrimSpace(act), "=")
			switch key {
			case "noop":
				if hasVal {
					return nil, fmt.Errorf("control: intervention %q: noop takes no value", entry)
				}
				iv.NoOp = true
			case "target":
				n, err := strconv.Atoi(val)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("control: intervention %q: bad target %q", entry, val)
				}
				iv.Target = n
			case "delay":
				td, err := time.ParseDuration(val)
				if err != nil || td <= 0 {
					return nil, fmt.Errorf("control: intervention %q: bad delay %q", entry, val)
				}
				iv.Delay = simtime.Duration(td / time.Microsecond)
			default:
				return nil, fmt.Errorf("control: intervention %q: unknown action %q (noop | target=N | delay=D)", entry, act)
			}
		}
		if iv.NoOp && (iv.Target > 0 || iv.Delay > 0) {
			return nil, fmt.Errorf("control: intervention %q: noop excludes target/delay — a dropped decision has no action to modify", entry)
		}
		if !iv.NoOp && iv.Target == 0 && iv.Delay == 0 {
			return nil, fmt.Errorf("control: intervention %q has no action", entry)
		}
		out = append(out, iv)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("control: intervention spec %q is empty", spec)
	}
	return out, nil
}

// intervention resolves the intervention forcing decision seq: an exact K
// match wins over the AllDecisions wildcard.
func intervention(ivs []Intervention, seq int) (Intervention, bool) {
	var wild Intervention
	found := false
	for _, iv := range ivs {
		if iv.K == seq {
			return iv, true
		}
		if iv.K == AllDecisions && !found {
			wild, found = iv, true
		}
	}
	return wild, found
}
