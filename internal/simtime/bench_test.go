package simtime

import (
	"testing"
)

// BenchmarkScheduler measures the steady-state cost of the scheduler's core
// cycle: schedule a future event, fire it, repeat — the dominant pattern of
// the simulation (processing-cost timers and edge arrivals).
func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Duration(i%97+1), fn)
		if i%4 == 3 {
			for s.Step() {
			}
		}
	}
	s.Run()
}

// BenchmarkSchedulerFastLane measures the After(0, ...) wake pattern that
// bypasses the heap entirely.
func BenchmarkSchedulerFastLane(b *testing.B) {
	s := NewScheduler()
	n := 0
	var fn func()
	fn = func() {
		if n < b.N {
			n++
			s.After(0, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.After(0, fn)
	s.Run()
}

// BenchmarkSchedulerCancel measures indexed cancellation of heap events.
func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.After(Duration(i%1024+1), fn)
		t.Cancel()
		if i%1024 == 1023 {
			s.Run() // drain nothing; keep the clock moving
		}
	}
}

// BenchmarkSchedulerMixed stresses a deep heap: many pending timers with
// interleaved scheduling, firing, and cancellation.
func BenchmarkSchedulerMixed(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	var timers []Timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timers = append(timers, s.After(Duration(i*7%1000+1), fn))
		if i%3 == 0 && len(timers) > 0 {
			timers[len(timers)-1].Cancel()
			timers = timers[:len(timers)-1]
		}
		if i%64 == 63 {
			s.RunUntil(s.Now().Add(100))
			timers = timers[:0]
		}
	}
	s.Run()
}

// TestSchedulerSteadyStateAllocs is the CI guard for the pooled scheduler:
// once the pool and heap are warm, the schedule→fire cycle must not allocate.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm the pool, heap, and fast lane.
	for i := 0; i < 1024; i++ {
		s.After(Duration(i%13), fn)
	}
	s.Run()
	avg := testing.AllocsPerRun(1000, func() {
		s.After(5, fn)
		s.After(0, fn)
		tm := s.After(9, fn)
		tm.Cancel()
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("scheduler steady state allocates %.2f objects per cycle, want 0", avg)
	}
}

// TestSchedulerPendingExcludesCancelled pins the new Pending contract:
// cancelled events leave the count immediately (the old implementation kept
// lazy tombstones and over-counted).
func TestSchedulerPendingExcludesCancelled(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	a := s.At(10, fn)
	b := s.At(20, fn)
	c := s.At(30, fn)
	if s.Pending() != 3 {
		t.Fatalf("pending %d, want 3", s.Pending())
	}
	if !b.Cancel() {
		t.Fatal("cancel failed")
	}
	if s.Pending() != 2 {
		t.Fatalf("pending after heap cancel %d, want 2", s.Pending())
	}
	// Fast-lane events count and un-count the same way.
	d := s.After(0, fn)
	if s.Pending() != 3 {
		t.Fatalf("pending with lane event %d, want 3", s.Pending())
	}
	if !d.Cancel() {
		t.Fatal("lane cancel failed")
	}
	if s.Pending() != 2 {
		t.Fatalf("pending after lane cancel %d, want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("pending after run %d, want 0", s.Pending())
	}
	if a.Pending() || c.Pending() {
		t.Fatal("fired timers still pending")
	}
	if s.Processed() != 2 {
		t.Fatalf("processed %d, want 2 (cancelled events must not fire)", s.Processed())
	}
}

// TestSchedulerCancelReuse exercises slot reuse: a stale Timer for a fired
// event must not cancel the event that recycled its pool slot.
func TestSchedulerCancelReuse(t *testing.T) {
	s := NewScheduler()
	var fired int
	old := s.At(1, func() { fired++ })
	s.Run()
	// The slot is free now; the next event reuses it.
	nu := s.At(2, func() { fired += 10 })
	if old.Cancel() {
		t.Fatal("stale timer cancelled a recycled event")
	}
	if !nu.Pending() {
		t.Fatal("new event should be pending")
	}
	s.Run()
	if fired != 11 {
		t.Fatalf("fired %d, want 11", fired)
	}
}

// TestSchedulerHeapLaneOrdering pins the tie-break between heap events and
// fast-lane events at the same instant: scheduling order wins, regardless of
// which structure holds the event.
func TestSchedulerHeapLaneOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	// Scheduled before the clock reaches 10 → heap.
	s.At(10, func() { got = append(got, 1) })
	s.At(5, func() {
		// At t=5, schedule for t=10: also heap (future).
		s.At(10, func() { got = append(got, 2) })
	})
	s.At(10, func() {
		// Fires at t=10 (first heap event... this is the 3rd at-10 event by
		// seq, but scheduled second). During the instant, After(0) → lane.
		s.After(0, func() { got = append(got, 4) })
		got = append(got, 3)
	})
	s.Run()
	// Heap events at t=10 fire in seq order (1, 3, 2 — seq 0, 2, then the
	// nested one), then the lane (4). Build the expected order explicitly:
	// seq: At(10)#1 seq0, At(5) seq1, At(10)#3 seq2; at t=5 nested At(10)
	// gets seq3. So at t=10: seq0 → "1", seq2 → "3" (queues lane "4"),
	// seq3 → "2", then lane → "4".
	want := []int{1, 3, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
