package simtime

import (
	"math"
	"testing"
)

// TestGammaMean checks the Marsaglia–Tsang sampler hits the requested mean
// across shapes on both sides of the k=1 boost branch.
func TestGammaMean(t *testing.T) {
	for _, k := range []float64{0.3, 0.5, 1, 2, 4} {
		r := NewRNG(11, "gamma")
		mean := Duration(1000)
		var sum float64
		n := 50000
		for i := 0; i < n; i++ {
			v := r.Gamma(mean, k)
			if v < 0 {
				t.Fatalf("k=%v: negative sample %v", k, v)
			}
			sum += float64(v)
		}
		got := sum / float64(n)
		if math.Abs(got-1000) > 60 {
			t.Errorf("k=%v: gamma mean %v too far from 1000", k, got)
		}
	}
}

// TestGammaShapeControlsBurstiness: smaller shape means higher variance at
// the same mean (the property cohort specs rely on for bursty sessions).
func TestGammaShapeControlsBurstiness(t *testing.T) {
	variance := func(k float64) float64 {
		r := NewRNG(5, "gammavar")
		n := 30000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Gamma(1000, k))
			sum += v
			sumSq += v * v
		}
		m := sum / float64(n)
		return sumSq/float64(n) - m*m
	}
	if variance(0.5) <= variance(4) {
		t.Fatal("gamma k=0.5 should be burstier (higher variance) than k=4")
	}
}

// TestWeibullMean checks the inverse-CDF sampler against the requested mean,
// including the heavy-tailed k<1 regime.
func TestWeibullMean(t *testing.T) {
	for _, k := range []float64{0.6, 0.8, 1, 2} {
		r := NewRNG(13, "weibull")
		var sum float64
		n := 50000
		for i := 0; i < n; i++ {
			v := r.Weibull(1000, k)
			if v < 0 {
				t.Fatalf("k=%v: negative sample %v", k, v)
			}
			sum += float64(v)
		}
		got := sum / float64(n)
		// k<1 has heavy tails, so the sample mean converges slowly.
		tol := 80.0
		if k < 1 {
			tol = 160
		}
		if math.Abs(got-1000) > tol {
			t.Errorf("k=%v: weibull mean %v too far from 1000", k, got)
		}
	}
}

// TestWeibullUnitShapeIsExponential: at k=1 the Weibull reduces to the
// exponential, so its tail mass should match Exp's within sampling noise.
func TestWeibullUnitShapeIsExponential(t *testing.T) {
	r := NewRNG(17, "wexp")
	n := 50000
	tail := 0
	for i := 0; i < n; i++ {
		if r.Weibull(1000, 1) > 2000 {
			tail++
		}
	}
	// P(X > 2·mean) = e^-2 ≈ 0.135 for the exponential.
	frac := float64(tail) / float64(n)
	if math.Abs(frac-math.Exp(-2)) > 0.01 {
		t.Fatalf("weibull k=1 tail mass %v, want ≈ %v", frac, math.Exp(-2))
	}
}

// TestGammaWeibullDeterminism: same (seed, name) streams replay identically —
// the property every cohort stream depends on.
func TestGammaWeibullDeterminism(t *testing.T) {
	a, b := NewRNG(3, "d"), NewRNG(3, "d")
	for i := 0; i < 200; i++ {
		if a.Gamma(500, 0.7) != b.Gamma(500, 0.7) {
			t.Fatal("gamma streams diverged")
		}
		if a.Weibull(500, 0.9) != b.Weibull(500, 0.9) {
			t.Fatal("weibull streams diverged")
		}
	}
}

// TestGammaWeibullRejectBadShape: non-positive shapes are programming errors.
func TestGammaWeibullRejectBadShape(t *testing.T) {
	for name, fn := range map[string]func(*RNG){
		"gamma":   func(r *RNG) { r.Gamma(1000, 0) },
		"weibull": func(r *RNG) { r.Weibull(1000, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted a non-positive shape", name)
				}
			}()
			fn(NewRNG(1, "bad"))
		}()
	}
}

// TestZipfSharedMatchesOwned: a Zipf built over a precomputed shared CDF
// table draws the exact sequence of one that built its own table — the
// invariant that lets thousands of cohorts share a handful of tables.
func TestZipfSharedMatchesOwned(t *testing.T) {
	for _, s := range []float64{0, 0.9, 1.5} {
		own := NewZipf(NewRNG(21, "zs"), 256, s)
		shared := NewZipfShared(NewRNG(21, "zs"), 256, s, ZipfCDF(256, s))
		for i := 0; i < 5000; i++ {
			if a, b := own.Next(), shared.Next(); a != b {
				t.Fatalf("s=%v: shared-table draw %d diverged: %d vs %d", s, i, a, b)
			}
		}
	}
}

// TestZipfCDFValidation pins the table contract: nil for the uniform case,
// panic on a nonsensical size or a mismatched table.
func TestZipfCDFValidation(t *testing.T) {
	if ZipfCDF(10, 0) != nil {
		t.Fatal("s=0 should need no table (uniform)")
	}
	if got := len(ZipfCDF(10, 1)); got != 10 {
		t.Fatalf("table length %d, want 10", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ZipfCDF accepted n=0")
			}
		}()
		ZipfCDF(0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewZipfShared accepted a mismatched table")
			}
		}()
		NewZipfShared(NewRNG(1, "z"), 10, 1, ZipfCDF(20, 1))
	}()
}
