package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDurationUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit ratios wrong")
	}
	if Ms(1.5) != 1500*Microsecond {
		t.Fatalf("Ms(1.5) = %d", Ms(1.5))
	}
	if Sec(2) != 2*Second {
		t.Fatalf("Sec(2) = %d", Sec(2))
	}
	if got := Time(2500).Millis(); got != 2.5 {
		t.Fatalf("Millis = %v", got)
	}
	if got := Duration(3 * Second).Seconds(); got != 3 {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: %d", t1)
	}
	if t1.Sub(t0) != 50 {
		t.Fatalf("Sub: %d", t1.Sub(t0))
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("now: %v", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.At(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested: %v", fired)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(5, func() {})
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var n int
	s.At(10, func() { n++ })
	s.At(20, func() { n++ })
	s.At(30, func() { n++ })
	s.RunUntil(20)
	if n != 2 {
		t.Fatalf("fired %d", n)
	}
	if s.Now() != 20 {
		t.Fatalf("now %v", s.Now())
	}
	s.RunUntil(100)
	if n != 3 || s.Now() != 100 {
		t.Fatalf("after: n=%d now=%v", n, s.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler()
	var fired bool
	tm := s.At(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("double cancel should fail")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(10, func() {})
	s.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestSchedulerAfterNegative(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(100)
	var at Time
	s.After(-5, func() { at = s.Now() })
	s.Run()
	if at != 100 {
		t.Fatalf("negative After fired at %v", at)
	}
}

func TestSchedulerProcessedCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Processed() != 5 {
		t.Fatalf("processed %d", s.Processed())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, "source")
	b := NewRNG(42, "source")
	c := NewRNG(42, "other")
	same, diff := true, false
	for i := 0; i < 100; i++ {
		x, y, z := a.Int63(), b.Int63(), c.Int63()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Fatal("same-name streams diverged")
	}
	if !diff {
		t.Fatal("different-name streams identical")
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(1, "j")
	d := Duration(1000)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(d, 0.25)
		if v < 750 || v > 1250 {
			t.Fatalf("jitter out of bounds: %d", v)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("zero jitter should be identity")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(7, "e")
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(1000))
	}
	mean := sum / float64(n)
	if math.Abs(mean-1000) > 50 {
		t.Fatalf("exp mean %v too far from 1000", mean)
	}
}

func TestZipfUniform(t *testing.T) {
	r := NewRNG(3, "z")
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("uniform zipf rank %d count %d", i, c)
		}
	}
}

func TestZipfSkewMonotone(t *testing.T) {
	r := NewRNG(3, "z2")
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[50] || counts[0] < counts[99] {
		t.Fatalf("skewed zipf not concentrated at rank 0: %d vs %d vs %d",
			counts[0], counts[50], counts[99])
	}
	// Rank 0 under s=1 over 100 ranks should carry roughly 1/H(100) ~ 19%.
	frac := float64(counts[0]) / 200000
	if frac < 0.12 || frac < float64(counts[1])/200000 {
		t.Fatalf("rank-0 mass %v implausible for s=1", frac)
	}
}

func TestZipfHighSkew(t *testing.T) {
	r := NewRNG(9, "z3")
	z := NewZipf(r, 64, 1.5)
	counts := make([]int, 64)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	top := counts[0] + counts[1] + counts[2] + counts[3]
	if float64(top)/100000 < 0.5 {
		t.Fatalf("s=1.5 should put >50%% mass on top-4 ranks, got %v", float64(top)/100000)
	}
}

func TestZipfRangeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := float64(sRaw%30) / 10 // 0 .. 2.9
		z := NewZipf(NewRNG(seed, "prop"), n, s)
		for i := 0; i < 200; i++ {
			v := z.Next()
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerEventStorm(t *testing.T) {
	// Property: N self-rescheduling chains fire in strict time order.
	s := NewScheduler()
	last := Time(-1)
	var steps int
	var spawn func(at Time, left int)
	spawn = func(at Time, left int) {
		s.At(at, func() {
			if s.Now() < last {
				t.Fatalf("time went backwards: %v < %v", s.Now(), last)
			}
			last = s.Now()
			steps++
			if left > 0 {
				spawn(s.Now().Add(Duration(left%7+1)), left-1)
			}
		})
	}
	for i := 0; i < 20; i++ {
		spawn(Time(i), 50)
	}
	s.Run()
	if steps != 20*51 {
		t.Fatalf("steps %d", steps)
	}
}
