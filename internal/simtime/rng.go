package simtime

import (
	"math"
	"math/rand"
)

// RNG is a named deterministic random stream. Each simulation component draws
// from its own stream so that adding randomness to one component does not
// perturb another (a classic discrete-event-simulation discipline).
type RNG struct {
	*rand.Rand
}

// NewRNG derives a deterministic stream from a base seed and a component
// name.
func NewRNG(seed int64, name string) *RNG {
	h := uint64(seed)
	for _, c := range name {
		h = h*1099511628211 + uint64(c) // FNV-1a style mix
	}
	return &RNG{Rand: rand.New(rand.NewSource(int64(h)))}
}

// Jitter returns a duration uniformly drawn from [d*(1-f), d*(1+f)].
func (r *RNG) Jitter(d Duration, f float64) Duration {
	if f <= 0 {
		return d
	}
	lo := float64(d) * (1 - f)
	hi := float64(d) * (1 + f)
	return Duration(lo + r.Float64()*(hi-lo))
}

// Exp returns an exponentially distributed duration with the given mean,
// useful for Poisson arrival processes.
func (r *RNG) Exp(mean Duration) Duration {
	return Duration(r.ExpFloat64() * float64(mean))
}

// Zipf draws integers in [0, n) with Zipf skewness s, matching the paper's
// workload-skew parameter (s = 0 is uniform; larger s concentrates mass on
// low ranks). Unlike math/rand's Zipf it accepts any s >= 0 by sampling the
// generalized harmonic CDF directly.
type Zipf struct {
	n    int
	s    float64
	cdf  []float64
	rand *rand.Rand
}

// NewZipf builds a Zipf sampler over [0, n) with skewness s.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("simtime: Zipf needs n > 0")
	}
	z := &Zipf{n: n, s: s, rand: r.Rand}
	if s > 0 {
		z.cdf = make([]float64, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += 1 / math.Pow(float64(i+1), s)
			z.cdf[i] = sum
		}
		for i := range z.cdf {
			z.cdf[i] /= sum
		}
	}
	return z
}

// Next draws one rank in [0, n).
func (z *Zipf) Next() int {
	if z.s <= 0 {
		return int(z.rand.Int63n(int64(z.n)))
	}
	u := z.rand.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
