package simtime

import (
	"math"
	"math/rand"
)

// RNG is a named deterministic random stream. Each simulation component draws
// from its own stream so that adding randomness to one component does not
// perturb another (a classic discrete-event-simulation discipline).
type RNG struct {
	*rand.Rand
}

// NewRNG derives a deterministic stream from a base seed and a component
// name.
func NewRNG(seed int64, name string) *RNG {
	h := uint64(seed)
	for _, c := range name {
		h = h*1099511628211 + uint64(c) // FNV-1a style mix
	}
	return &RNG{Rand: rand.New(rand.NewSource(int64(h)))}
}

// Jitter returns a duration uniformly drawn from [d*(1-f), d*(1+f)].
func (r *RNG) Jitter(d Duration, f float64) Duration {
	if f <= 0 {
		return d
	}
	lo := float64(d) * (1 - f)
	hi := float64(d) * (1 + f)
	return Duration(lo + r.Float64()*(hi-lo))
}

// Exp returns an exponentially distributed duration with the given mean,
// useful for Poisson arrival processes.
func (r *RNG) Exp(mean Duration) Duration {
	return Duration(r.ExpFloat64() * float64(mean))
}

// Gamma returns a gamma-distributed duration with the given mean and shape k
// (k = 1 is exponential; k < 1 is burstier, k > 1 more regular). Sampling is
// Marsaglia–Tsang squeeze for k >= 1, boosted by U^(1/k) for k < 1.
func (r *RNG) Gamma(mean Duration, k float64) Duration {
	if k <= 0 {
		panic("simtime: Gamma needs shape k > 0")
	}
	shape, boost := k, 1.0
	if shape < 1 {
		boost = math.Pow(r.Float64(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			// d*v*boost ~ Gamma(k, 1); scale mean/k makes the mean exact.
			return Duration(d * v * boost * float64(mean) / k)
		}
	}
}

// Weibull returns a Weibull-distributed duration with the given mean and
// shape k (k = 1 is exponential; k < 1 heavy-tailed, k > 1 concentrated),
// sampled by inverse CDF with the scale normalized so the mean is exact.
func (r *RNG) Weibull(mean Duration, k float64) Duration {
	if k <= 0 {
		panic("simtime: Weibull needs shape k > 0")
	}
	scale := float64(mean) / math.Gamma(1+1/k)
	u := 1 - r.Float64() // (0, 1]: keeps Log finite
	return Duration(scale * math.Pow(-math.Log(u), 1/k))
}

// Zipf draws integers in [0, n) with Zipf skewness s, matching the paper's
// workload-skew parameter (s = 0 is uniform; larger s concentrates mass on
// low ranks). Unlike math/rand's Zipf it accepts any s >= 0 by sampling the
// generalized harmonic CDF directly.
type Zipf struct {
	n   int
	s   float64
	cdf []float64
	// jump[b] is the first rank whose CDF reaches b/zipfJumpBuckets, so a
	// draw only binary-searches the [jump[b], jump[b+1]] sliver of cdf. The
	// rank found for a given u is identical with or without the accelerator,
	// so seeded draw sequences are unaffected.
	jump [zipfJumpBuckets + 1]int32
	rand *rand.Rand
}

// zipfJumpBuckets sizes the search accelerator; 256 keeps the per-draw
// search inside a couple of cache lines even for large key spaces.
const zipfJumpBuckets = 256

// NewZipf builds a Zipf sampler over [0, n) with skewness s.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	return NewZipfShared(r, n, s, ZipfCDF(n, s))
}

// ZipfCDF precomputes the generalized harmonic CDF over [0, n) with skewness
// s (nil for s <= 0: uniform sampling needs none). The table depends only on
// (n, s), so samplers over the same distribution can share one — building it
// is O(n), which matters when thousands of cohorts reuse a handful of
// distributions.
func ZipfCDF(n int, s float64) []float64 {
	if n <= 0 {
		panic("simtime: Zipf needs n > 0")
	}
	if s <= 0 {
		return nil
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// NewZipfShared builds a Zipf sampler around a precomputed ZipfCDF(n, s)
// table. The table is read-only; only the RNG is per-sampler.
func NewZipfShared(r *RNG, n int, s float64, cdf []float64) *Zipf {
	if n <= 0 {
		panic("simtime: Zipf needs n > 0")
	}
	if s > 0 && len(cdf) != n {
		panic("simtime: Zipf CDF table does not match n")
	}
	z := &Zipf{n: n, s: s, cdf: cdf, rand: r.Rand}
	if s > 0 {
		for b := 1; b <= zipfJumpBuckets; b++ {
			z.jump[b] = int32(searchCDF(cdf, float64(b)/zipfJumpBuckets))
		}
	}
	return z
}

// searchCDF returns the first index whose CDF value reaches u (n-1 when u
// exceeds every entry, which only floating-point rounding can produce).
func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Next draws one rank in [0, n).
func (z *Zipf) Next() int {
	if z.s <= 0 {
		return int(z.rand.Int63n(int64(z.n)))
	}
	u := z.rand.Float64()
	b := int(u * zipfJumpBuckets)
	lo, hi := int(z.jump[b]), int(z.jump[b+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
