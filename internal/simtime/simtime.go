// Package simtime provides the virtual clock and event scheduler that the
// whole simulation runs on.
//
// Everything in this repository — record transmission, operator processing,
// state migration, scaling-signal propagation — is an event scheduled on a
// single Scheduler. Time is virtual: a "600 second" experiment is an event
// count, not wall time, so runs are fast and fully deterministic. Events at
// the same instant fire in scheduling order (a monotone sequence number
// breaks ties), which makes every experiment replayable bit-for-bit.
//
// The scheduler is built for the simulation hot path: events live in a
// free-list pool (no per-event heap allocation in steady state), the time
// ordering is a hand-rolled 4-ary heap indexed by pool slot (cancellation is
// an O(log n) indexed removal, never a lazy tombstone), and events scheduled
// for the current instant — the ubiquitous After(0, ...) wake pattern — go
// through a FIFO fast lane that bypasses the heap entirely.
package simtime

import (
	"fmt"
)

// Time is an instant in virtual time, in microseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Ms constructs a Duration from milliseconds.
func Ms(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Sec constructs a Duration from seconds.
func Sec(s float64) Duration { return Duration(s * float64(Second)) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between t and earlier instant o.
func (t Time) Sub(o Time) Duration { return Duration(t - o) }

// Millis reports t in (fractional) milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Millis reports d in (fractional) milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration as milliseconds.
func (d Duration) String() string { return fmt.Sprintf("%.3fms", d.Millis()) }

// Event placement states (the event.where field): non-negative values are
// heap positions.
const (
	whereFree     int32 = -1 // in the free list (or fired)
	whereLane     int32 = -2 // queued in the same-instant fast lane
	whereLaneDead int32 = -3 // cancelled while in the fast lane, not yet drained
)

// event is one pooled scheduler entry. Events are recycled through a free
// list; the generation counter invalidates stale Timer handles on reuse.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	gen   uint32
	where int32
}

// Timer is a handle to a scheduled event. The zero Timer is valid and
// behaves as an already-fired event. Cancelling a fired or already cancelled
// timer is a no-op.
type Timer struct {
	s   *Scheduler
	idx int32
	gen uint32
}

// Cancel prevents the event from firing. Reports whether the event was still
// pending. Cancellation of a heap event removes it immediately (indexed
// removal), so Pending() never over-counts cancelled events.
func (t Timer) Cancel() bool {
	if t.s == nil {
		return false
	}
	return t.s.cancel(t.idx, t.gen)
}

// Pending reports whether the timer's event has neither fired nor been
// cancelled.
func (t Timer) Pending() bool {
	if t.s == nil {
		return false
	}
	ev := &t.s.pool[t.idx]
	return ev.gen == t.gen && ev.where != whereLaneDead && ev.where != whereFree
}

// Scheduler is a deterministic discrete-event scheduler.
//
// It is not safe for concurrent use; each simulation is single-threaded by
// design (the parallel scenario runner gives every run its own Scheduler).
type Scheduler struct {
	now     Time
	seq     uint64
	stepped uint64
	live    int // scheduled and neither fired nor cancelled

	pool []event
	free []int32

	// heap is a 4-ary min-heap of pool indices ordered by (at, seq);
	// pool[i].where tracks each event's heap position for O(log n) removal.
	heap []int32

	// lane is a FIFO ring of pool indices for events at the current instant.
	lane     []int32
	laneHead int
	laneLen  int
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Processed reports how many events have fired so far.
func (s *Scheduler) Processed() uint64 { return s.stepped }

// Pending reports how many events are scheduled and still runnable.
// Cancelled events never count: heap cancellation removes the event
// immediately, and fast-lane cancellation decrements the live count.
func (s *Scheduler) Pending() int { return s.live }

// alloc takes an event slot from the free list (or grows the pool) and
// stamps it with the next sequence number.
func (s *Scheduler) alloc(at Time, fn func()) int32 {
	var i int32
	if n := len(s.free); n > 0 {
		i = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.pool = append(s.pool, event{where: whereFree})
		i = int32(len(s.pool) - 1)
	}
	ev := &s.pool[i]
	ev.at = at
	ev.fn = fn
	ev.seq = s.seq
	s.seq++
	return i
}

// release returns a slot to the free list, invalidating outstanding Timers.
func (s *Scheduler) release(i int32) {
	ev := &s.pool[i]
	ev.fn = nil
	ev.where = whereFree
	ev.gen++
	s.free = append(s.free, i)
}

// At schedules fn to run at instant t. Scheduling in the past panics: it
// always indicates a simulation bug. Scheduling at the current instant takes
// the FIFO fast lane and never touches the heap.
func (s *Scheduler) At(t Time, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", t, s.now))
	}
	i := s.alloc(t, fn)
	s.live++
	if t == s.now {
		s.pool[i].where = whereLane
		s.lanePush(i)
	} else {
		s.heapPush(i)
	}
	return Timer{s: s, idx: i, gen: s.pool[i].gen}
}

// After schedules fn to run d after the current time. Negative d is treated
// as zero.
func (s *Scheduler) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

func (s *Scheduler) cancel(idx int32, gen uint32) bool {
	ev := &s.pool[idx]
	if ev.gen != gen {
		return false
	}
	switch {
	case ev.where >= 0:
		s.heapRemoveAt(int(ev.where))
		s.release(idx)
		s.live--
		return true
	case ev.where == whereLane:
		// The lane is a ring; mark the entry dead and let the drain skip it.
		// Lane entries only live within the current instant, so the tombstone
		// is gone by the time the clock next advances.
		ev.where = whereLaneDead
		ev.fn = nil
		s.live--
		return true
	default:
		return false
	}
}

// Step fires the next event. It reports false when no runnable event remains.
//
// Ordering: heap events at the current instant were necessarily scheduled
// before the clock reached it (later same-instant arrivals go to the lane),
// so they carry smaller sequence numbers than every lane entry and fire
// first; then the lane drains FIFO; only then may the clock advance.
func (s *Scheduler) Step() bool {
	for {
		var i int32
		switch {
		case len(s.heap) > 0 && s.pool[s.heap[0]].at == s.now:
			i = s.heapPopMin()
		case s.laneLen > 0:
			i = s.lanePop()
			if s.pool[i].where == whereLaneDead {
				s.release(i)
				continue
			}
		case len(s.heap) > 0:
			i = s.heapPopMin()
		default:
			return false
		}
		ev := &s.pool[i]
		s.now = ev.at
		fn := ev.fn
		s.release(i)
		s.live--
		s.stepped++
		fn()
		return true
	}
}

// nextAt reports the instant of the next runnable event.
func (s *Scheduler) nextAt() (Time, bool) {
	for s.laneLen > 0 {
		i := s.lane[s.laneHead]
		if s.pool[i].where != whereLaneDead {
			return s.now, true
		}
		s.lanePop()
		s.release(i)
	}
	if len(s.heap) > 0 {
		return s.pool[s.heap[0]].at, true
	}
	return 0, false
}

// RunUntil fires events until the queue is exhausted or the next event lies
// beyond t. The clock is left at min(t, time of last fired event), never
// before its current value.
func (s *Scheduler) RunUntil(t Time) {
	for {
		at, ok := s.nextAt()
		if !ok || at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Run fires events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// --- 4-ary indexed heap ---

// less orders events by (at, seq).
func (s *Scheduler) less(a, b int32) bool {
	ea, eb := &s.pool[a], &s.pool[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (s *Scheduler) heapPush(i int32) {
	s.heap = append(s.heap, i)
	pos := len(s.heap) - 1
	s.pool[i].where = int32(pos)
	s.siftUp(pos)
}

func (s *Scheduler) heapPopMin() int32 {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.pool[s.heap[0]].where = 0
		s.siftDown(0)
	}
	return top
}

// heapRemoveAt removes the event at heap position pos (indexed cancel).
func (s *Scheduler) heapRemoveAt(pos int) {
	last := len(s.heap) - 1
	s.heap[pos] = s.heap[last]
	s.heap = s.heap[:last]
	if pos < last {
		s.pool[s.heap[pos]].where = int32(pos)
		s.siftDown(pos)
		s.siftUp(pos)
	}
}

func (s *Scheduler) siftUp(pos int) {
	i := s.heap[pos]
	for pos > 0 {
		parent := (pos - 1) >> 2
		p := s.heap[parent]
		if !s.less(i, p) {
			break
		}
		s.heap[pos] = p
		s.pool[p].where = int32(pos)
		pos = parent
	}
	s.heap[pos] = i
	s.pool[i].where = int32(pos)
}

func (s *Scheduler) siftDown(pos int) {
	i := s.heap[pos]
	n := len(s.heap)
	for {
		first := pos<<2 + 1 // first child
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s.less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		b := s.heap[best]
		if !s.less(b, i) {
			break
		}
		s.heap[pos] = b
		s.pool[b].where = int32(pos)
		pos = best
	}
	s.heap[pos] = i
	s.pool[i].where = int32(pos)
}

// --- same-instant FIFO fast lane ---

func (s *Scheduler) lanePush(i int32) {
	if s.laneLen == len(s.lane) {
		newCap := len(s.lane) * 2
		if newCap < 16 {
			newCap = 16
		}
		nl := make([]int32, newCap)
		for k := 0; k < s.laneLen; k++ {
			nl[k] = s.lane[(s.laneHead+k)%len(s.lane)]
		}
		s.lane = nl
		s.laneHead = 0
	}
	s.lane[(s.laneHead+s.laneLen)%len(s.lane)] = i
	s.laneLen++
}

func (s *Scheduler) lanePop() int32 {
	i := s.lane[s.laneHead]
	s.laneHead = (s.laneHead + 1) % len(s.lane)
	s.laneLen--
	return i
}
