// Package simtime provides the virtual clock and event scheduler that the
// whole simulation runs on.
//
// Everything in this repository — record transmission, operator processing,
// state migration, scaling-signal propagation — is an event scheduled on a
// single Scheduler. Time is virtual: a "600 second" experiment is an event
// count, not wall time, so runs are fast and fully deterministic. Events at
// the same instant fire in scheduling order (a monotone sequence number
// breaks ties), which makes every experiment replayable bit-for-bit.
package simtime

import (
	"container/heap"
	"fmt"
)

// Time is an instant in virtual time, in microseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Ms constructs a Duration from milliseconds.
func Ms(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Sec constructs a Duration from seconds.
func Sec(s float64) Duration { return Duration(s * float64(Second)) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between t and earlier instant o.
func (t Time) Sub(o Time) Duration { return Duration(t - o) }

// Millis reports t in (fractional) milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Millis reports d in (fractional) milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration as milliseconds.
func (d Duration) String() string { return fmt.Sprintf("%.3fms", d.Millis()) }

// Timer is a handle to a scheduled event. Cancelling a fired or already
// cancelled timer is a no-op.
type Timer struct {
	ev *event
}

// Cancel prevents the event from firing. Reports whether the event was still
// pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer's event has neither fired nor been
// cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler.
//
// It is not safe for concurrent use; the whole simulation is single-threaded
// by design.
type Scheduler struct {
	now     Time
	events  eventHeap
	seq     uint64
	stepped uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Processed reports how many events have fired so far.
func (s *Scheduler) Processed() uint64 { return s.stepped }

// Pending reports how many events are queued (including cancelled ones not
// yet drained).
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn to run at instant t. Scheduling in the past panics: it
// always indicates a simulation bug.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time. Negative d is treated
// as zero.
func (s *Scheduler) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Step fires the next event. It reports false when no runnable event remains.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fired = true
		s.stepped++
		ev.fn()
		return true
	}
	return false
}

// RunUntil fires events until the queue is exhausted or the next event lies
// beyond t. The clock is left at min(t, time of last fired event), never
// before its current value.
func (s *Scheduler) RunUntil(t Time) {
	for {
		ev := s.peek()
		if ev == nil || ev.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Run fires events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

func (s *Scheduler) peek() *event {
	for len(s.events) > 0 {
		if s.events[0].cancelled {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0]
	}
	return nil
}
