// Package scaletest is the shared harness for exercising scaling mechanisms
// on the custom workload: it runs a seeded job, triggers one scaling
// operation mid-stream, drains the pipeline, and exposes the invariant checks
// (exactly-once delivery, state conservation, participation) that every
// mechanism's tests assert.
package scaletest

import (
	"fmt"
	"sort"

	"drrs/internal/cluster"
	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/state"
	"drrs/internal/workload"
)

// Run configures one harness execution.
type Run struct {
	// Workload parameterizes the custom job. Duration must be set (the
	// harness drains to completion).
	Workload workload.Config
	// Mechanism is the scaling mechanism under test; nil runs without
	// scaling (the baseline).
	Mechanism scaling.Mechanism
	// ScaleAt is when the scaling request fires.
	ScaleAt simtime.Duration
	// NewParallelism is the target parallelism for "agg".
	NewParallelism int
	// SetupDelay models deployment time (default 50 ms).
	SetupDelay simtime.Duration
	// Cluster optionally supplies a multi-node deployment.
	Cluster func(s *simtime.Scheduler) *cluster.Cluster
	// Engine overrides engine defaults (Seed is taken from Workload).
	Engine engine.Config
}

// Result is what a harness execution produced.
type Result struct {
	RT       *engine.Runtime
	Sink     *engine.CollectSink
	Plan     scaling.Plan
	Mech     scaling.Mechanism
	Op       scaling.Operation // lifecycle handle of the scaling operation
	Done     bool              // the mechanism reported completion
	ScaleAt  simtime.Time
	Duration simtime.Duration // virtual time simulated
}

// Execute runs the configured scenario to quiescence and returns the result.
func (r Run) Execute() Result {
	if r.Workload.Duration <= 0 {
		panic("scaletest: Workload.Duration must be positive")
	}
	r.Workload.EmitUpdates = true
	g, sink := workload.Build(r.Workload)
	s := simtime.NewScheduler()
	var cl *cluster.Cluster
	if r.Cluster != nil {
		cl = r.Cluster(s)
		// Initial deployment through the cluster's placement policy (no-op
		// without one); scale-out instances are placed by scaling.Deploy.
		for _, op := range g.Topological() {
			cl.PlaceInstances(op, 0, g.Operator(op).Parallelism)
		}
	}
	cfg := r.Engine
	cfg.Seed = r.Workload.Seed
	rt := engine.New(s, g, cl, cfg)
	rt.Start()

	res := Result{RT: rt, Sink: sink, Mech: r.Mechanism}
	if r.Mechanism != nil {
		setup := r.SetupDelay
		if setup == 0 {
			setup = simtime.Ms(50)
		}
		s.After(r.ScaleAt, func() {
			res.ScaleAt = s.Now()
			res.Plan = scaling.UniformPlan(g, "agg", r.NewParallelism, setup)
			res.Op = r.Mechanism.Begin(rt, res.Plan, func() { res.Done = true })
		})
	}
	// Run generation, then drain: markers off, let every queued event (state
	// transfers, rerouted records, backlogged streams) play out.
	s.RunUntil(s.Now().Add(r.Workload.Duration))
	rt.StopMarkers()
	s.Run()
	res.Duration = simtime.Duration(s.Now())
	return res
}

// CheckExactlyOnce verifies the scaled run delivered exactly the baseline's
// per-key aggregates: no loss, no duplication, per-key order preserved (the
// running-sum signature is order-sensitive per key). Returns a description of
// the first mismatch, or "".
func CheckExactlyOnce(baseline, scaled Result) string {
	if got, want := scaled.Sink.Records, baseline.Sink.Records; got != want {
		return fmt.Sprintf("record count: scaled %d vs baseline %d", got, want)
	}
	if d := scaled.Sink.Duplicates(); d != 0 {
		return fmt.Sprintf("%d duplicated sequence numbers", d)
	}
	// Report the lowest offending key so a failure message is stable across
	// runs instead of naming whichever key map iteration met first.
	for _, k := range sortedKeys(baseline.Sink.ByKey) {
		want := baseline.Sink.ByKey[k]
		if got := scaled.Sink.ByKey[k]; got != want {
			return fmt.Sprintf("key %d aggregate: scaled %v vs baseline %v", k, got, want)
		}
	}
	for _, k := range sortedKeys(scaled.Sink.ByKey) {
		if _, ok := baseline.Sink.ByKey[k]; !ok {
			return fmt.Sprintf("key %d appears only in scaled run", k)
		}
	}
	return ""
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// CheckPlacement verifies every key group lives exactly where the plan put
// it, and nowhere else. Returns a description of the first violation, or "".
func CheckPlacement(res Result) string {
	rt := res.RT
	plan := res.Plan
	spec := rt.Graph.Operator(plan.Operator)
	owner := make(map[int]int, spec.MaxKeyGroups)
	for kg := 0; kg < spec.MaxKeyGroups; kg++ {
		owner[kg] = state.OwnerOf(spec.MaxKeyGroups, plan.OldParallelism, kg)
	}
	for _, m := range plan.Moves {
		owner[m.KeyGroup] = m.To
	}
	for _, in := range rt.Instances(plan.Operator) {
		for _, kg := range in.Store().Groups() {
			// Empty shells are allowed off-target: Meces keeps them as
			// serving stubs for potential fetch-backs.
			g := in.Store().Group(kg)
			if owner[kg] != in.Index && g.Len() > 0 {
				return fmt.Sprintf("kg %d found at %s, belongs to instance %d", kg, in.Name(), owner[kg])
			}
		}
	}
	return ""
}

// CheckParticipation verifies every new instance processed records. Returns a
// description of the first idle new instance, or "".
func CheckParticipation(res Result) string {
	for idx := res.Plan.OldParallelism; idx < res.Plan.NewParallelism; idx++ {
		in := res.RT.Instance(res.Plan.Operator, idx)
		if in == nil {
			return fmt.Sprintf("instance %d was never created", idx)
		}
		if in.Processed == 0 {
			return fmt.Sprintf("new instance %s processed nothing", in.Name())
		}
	}
	return ""
}

// RackCluster returns a factory for a racks×nodesPerRack topology test
// cluster: per-node migration bandwidth nodeBW, shared per-rack uplinks at
// uplinkBW with 1 ms uplink latency, slots instance slots per node, and the
// named placement policy installed. The default "local" node is marked
// unschedulable so policies place every instance on the rack fabric.
func RackCluster(racks, nodesPerRack int, nodeBW, uplinkBW float64, slots int, policy string) func(*simtime.Scheduler) *cluster.Cluster {
	return func(s *simtime.Scheduler) *cluster.Cluster {
		c := cluster.New(s)
		c.Node("local").Unschedulable = true
		for r := 0; r < racks; r++ {
			rack := fmt.Sprintf("rack%d", r)
			c.AddRack(rack, uplinkBW, simtime.Ms(1))
			for n := 0; n < nodesPerRack; n++ {
				c.AddNodeOnRack(rack, fmt.Sprintf("%s-n%d", rack, n), 1, nodeBW).Slots = slots
			}
		}
		c.SetPolicy(cluster.PolicyByName(policy))
		return c
	}
}

// SlowMigrationCluster returns a cluster factory whose single node has the
// given migration bandwidth (bytes/s), making state-transfer time visible in
// tests.
func SlowMigrationCluster(bandwidth float64) func(*simtime.Scheduler) *cluster.Cluster {
	return func(s *simtime.Scheduler) *cluster.Cluster {
		c := cluster.New(s)
		c.Node("local").MigrationBandwidth = bandwidth
		return c
	}
}

// DefaultWorkload is a small, fast configuration for mechanism tests.
func DefaultWorkload(seed int64) workload.Config {
	return workload.Config{
		SourceParallelism: 2,
		AggParallelism:    4,
		MaxKeyGroups:      32,
		Keys:              200,
		RatePerSec:        2000,
		StateBytesPerKey:  512,
		CostPerRecord:     50 * simtime.Microsecond,
		Duration:          simtime.Sec(3),
		Seed:              seed,
	}
}
