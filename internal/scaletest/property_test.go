package scaletest

import (
	"fmt"
	"testing"

	"drrs/internal/core"
	"drrs/internal/scaling"
	"drrs/internal/scaling/meces"
	"drrs/internal/scaling/megaphone"
	"drrs/internal/scaling/otfs"
	"drrs/internal/scaling/stopre"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

// mechanismsUnderTest builds every correctness-preserving mechanism fresh.
func mechanismsUnderTest() map[string]func() scaling.Mechanism {
	return map[string]func() scaling.Mechanism{
		"drrs":          func() scaling.Mechanism { return core.New(core.FullDRRS()) },
		"drrs-dr":       func() scaling.Mechanism { return core.New(core.Variant("dr")) },
		"drrs-schedule": func() scaling.Mechanism { return core.New(core.Variant("schedule")) },
		"drrs-subscale": func() scaling.Mechanism { return core.New(core.Variant("subscale")) },
		"otfs-fluid":    func() scaling.Mechanism { return &otfs.Mechanism{Fluid: true} },
		"otfs-batch":    func() scaling.Mechanism { return &otfs.Mechanism{Fluid: false} },
		"megaphone":     func() scaling.Mechanism { return &megaphone.Mechanism{BatchKGs: 3} },
		"meces":         func() scaling.Mechanism { return &meces.Mechanism{} },
		"stop-restart":  func() scaling.Mechanism { return &stopre.Mechanism{} },
	}
}

// TestExactlyOnceProperty is the repository's central correctness property:
// for randomized workload shapes (rate, skew, key space, state size, scaling
// moment, migration bandwidth), every mechanism must reproduce the
// non-scaling run's per-key aggregates exactly — no loss, no duplication, no
// per-key order violation — and leave state where the plan says.
//
// 72 scaled runs (8 shapes × 9 mechanisms); run with -short to skip.
func TestExactlyOnceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep runs 70+ simulations")
	}
	type shape struct {
		rate    float64
		skew    float64
		keys    int
		bytes   int
		scaleAt simtime.Duration
		newP    int
		migBW   float64
	}
	rng := simtime.NewRNG(2025, "exactly-once-prop")
	var shapes []shape
	for i := 0; i < 8; i++ {
		shapes = append(shapes, shape{
			rate:    float64(1000 + rng.Intn(7000)),
			skew:    []float64{0, 0.5, 1.0, 1.5}[rng.Intn(4)],
			keys:    100 + rng.Intn(400),
			bytes:   64 + rng.Intn(2048),
			scaleAt: simtime.Ms(float64(500 + rng.Intn(1500))),
			newP:    5 + rng.Intn(3), // 4 → 5..7
			migBW:   float64(int64(1) << (19 + rng.Intn(6))),
		})
	}
	for si, sh := range shapes {
		sh := sh
		wl := workload.Config{
			SourceParallelism: 2,
			AggParallelism:    4,
			MaxKeyGroups:      32,
			Keys:              sh.keys,
			RatePerSec:        sh.rate,
			Skew:              sh.skew,
			StateBytesPerKey:  sh.bytes,
			CostPerRecord:     50 * simtime.Microsecond,
			Duration:          simtime.Sec(3),
			Seed:              int64(1000 + si),
		}
		base := Run{Workload: wl}.Execute()
		for name, mk := range mechanismsUnderTest() {
			name, mk := name, mk
			t.Run(fmt.Sprintf("shape%d/%s", si, name), func(t *testing.T) {
				res := Run{
					Workload:       wl,
					Mechanism:      mk(),
					ScaleAt:        sh.scaleAt,
					NewParallelism: sh.newP,
					Cluster:        SlowMigrationCluster(sh.migBW),
				}.Execute()
				if !res.Done {
					t.Fatalf("shape %+v: scaling never completed", sh)
				}
				if msg := CheckExactlyOnce(base, res); msg != "" {
					t.Fatalf("shape %+v: %s", sh, msg)
				}
				if msg := CheckPlacement(res); msg != "" {
					t.Fatalf("shape %+v: %s", sh, msg)
				}
			})
		}
	}
}

// TestRackUplinkByteConservation is the topology-path property sweep: under
// every placement policy, a scaled run on a racked cluster must stay
// exactly-once-correct, and its migration byte accounting must balance —
// every byte leaving a rack uplink arrives at exactly one other rack, and
// uplinks never carry more than the nodes sent.
func TestRackUplinkByteConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a baseline plus one scaled run per placement policy")
	}
	wl := DefaultWorkload(42)
	base := Run{Workload: wl}.Execute()
	for _, policy := range []string{"spread", "pack", "rack-local"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			res := Run{
				Workload:       wl,
				Mechanism:      core.New(core.FullDRRS()),
				ScaleAt:        simtime.Sec(1),
				NewParallelism: 6,
				Cluster:        RackCluster(2, 2, 1<<20, 2<<20, 3, policy),
			}.Execute()
			if !res.Done {
				t.Fatal("scaling never completed")
			}
			if msg := CheckExactlyOnce(base, res); msg != "" {
				t.Fatal(msg)
			}
			if msg := CheckPlacement(res); msg != "" {
				t.Fatal(msg)
			}
			cl := res.RT.Cluster
			var in int64
			for _, r := range cl.Racks() {
				in += cl.Rack(r).InBytes
			}
			out := cl.CrossRackBytes()
			if out != in {
				t.Fatalf("uplink bytes not conserved: out %d vs in %d", out, in)
			}
			total := cl.TransferredBytes()
			if total <= 0 {
				t.Fatal("migration moved no bytes")
			}
			if out > total {
				t.Fatalf("uplinks carried %d bytes but nodes only sent %d", out, total)
			}
			// The 3-slot nodes cannot hold agg's 6 instances plus sources and
			// sink on one rack, so every policy must produce some cross-rack
			// state transfer here.
			if out == 0 {
				t.Fatal("expected cross-rack migration traffic on this layout")
			}
		})
	}
}

// TestRackClusterDeterministicReplay extends the replay guard to the
// topology path: same seed, same rack cluster ⇒ identical results and
// identical byte accounting.
func TestRackClusterDeterministicReplay(t *testing.T) {
	run := func() (int, float64, int64, int64) {
		res := Run{
			Workload:       DefaultWorkload(7),
			Mechanism:      core.New(core.FullDRRS()),
			ScaleAt:        simtime.Sec(1),
			NewParallelism: 6,
			Cluster:        RackCluster(2, 2, 1<<20, 2<<20, 3, "rack-local"),
		}.Execute()
		var sum float64
		for _, v := range res.Sink.ByKey {
			sum += v
		}
		return res.Sink.Records, sum, res.RT.Cluster.TransferredBytes(), res.RT.Cluster.CrossRackBytes()
	}
	r1, s1, t1, x1 := run()
	r2, s2, t2, x2 := run()
	if r1 != r2 || s1 != s2 || t1 != t2 || x1 != x2 {
		t.Fatalf("replay diverged: (%d, %v, %d, %d) vs (%d, %v, %d, %d)", r1, s1, t1, x1, r2, s2, t2, x2)
	}
}

// TestDeterministicReplay asserts the simulator's core promise: identical
// configuration ⇒ bit-identical outcome, for a protocol-heavy mechanism.
func TestDeterministicReplay(t *testing.T) {
	run := func() (int, float64) {
		res := Run{
			Workload:       DefaultWorkload(99),
			Mechanism:      core.New(core.FullDRRS()),
			ScaleAt:        simtime.Sec(1),
			NewParallelism: 6,
			Cluster:        SlowMigrationCluster(2 << 20),
		}.Execute()
		var sum float64
		for _, v := range res.Sink.ByKey {
			sum += v
		}
		return res.Sink.Records, sum
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 || s1 != s2 {
		t.Fatalf("replay diverged: (%d, %v) vs (%d, %v)", r1, s1, r2, s2)
	}
}
