package scaling

import (
	"drrs/internal/engine"
	"drrs/internal/metrics"
)

// Phase identifies where an in-flight scaling operation stands in its
// lifecycle. Every mechanism moves through the same coarse phases — physical
// deployment, state migration, protocol drain — even though the fine
// structure (subscales, rounds, on-demand fetches) differs per mechanism.
type Phase uint8

const (
	// PhaseDeploy: resources are initializing (SetupDelay, instance wiring);
	// no state has moved yet.
	PhaseDeploy Phase = iota
	// PhaseMigrate: key groups are in flight between instances.
	PhaseMigrate
	// PhaseDrain: every planned key group has landed, but the mechanism's
	// protocol is still settling (re-route channels draining, final barriers,
	// restart of halted instances) before it reports completion.
	PhaseDrain
	// PhaseDone: the operation reported completion (or was fully superseded).
	PhaseDone
)

// String renders the phase for reports and audit trails.
func (p Phase) String() string {
	switch p {
	case PhaseDeploy:
		return "deploy"
	case PhaseMigrate:
		return "migrate"
	case PhaseDrain:
		return "drain"
	case PhaseDone:
		return "done"
	}
	return "unknown"
}

// Progress is a point-in-time report of an in-flight scaling operation —
// what a controller sees when it polls mid-operation to decide whether a
// straggling migration should be superseded.
type Progress struct {
	Phase Phase
	// Moved and Total count migrated versus planned key groups.
	Moved, Total int
	// Cancelled reports the operation was asked to stand down. The operation
	// still runs launched work to completion (state is never stranded
	// mid-flight) and fires its done callback when settled.
	Cancelled bool
}

// Operation is the live handle Begin returns: observers poll Progress on the
// simulated clock, and a superseding request Cancels the operation per the
// paper's concurrent-execution rule 1. After a Cancel, the superseding plan
// must come from PlanFromPlacement so key groups the cancelled operation
// already moved are not migrated twice.
type Operation interface {
	// Progress reports the operation's current phase and migration counts.
	Progress() Progress
	// Cancel asks the operation to stand down: stop launching new migration
	// work, finish what is in flight, then report done. It returns true when
	// the mechanism honors cancellation; legacy mechanisms adapted through
	// BeginLegacy return false and run their full plan to completion (the
	// supersessor then launches once the old operation's done fires).
	Cancel() bool
}

// Starter is the legacy fire-and-forget mechanism surface: Start begins the
// operation and the only observable signal is the done callback. Mechanisms
// migrate to the lifecycle Mechanism interface incrementally by routing
// their Start through BeginLegacy.
type Starter interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Start begins scaling per plan; done (optional) fires when the scaling
	// operation has fully completed (all state migrated, protocol drained).
	Start(rt *engine.Runtime, plan Plan, done func())
}

// BeginLegacy adapts a Starter to the lifecycle Mechanism contract: it runs
// Start and returns an Operation whose progress is inferred from the
// runtime's active ScalingMetrics collector (captured at Begin time, so
// per-wave collector swaps attribute counts to the right operation). Cancel
// is recorded but not honored — the legacy mechanism runs to completion.
func BeginLegacy(s Starter, rt *engine.Runtime, plan Plan, done func()) Operation {
	op := &legacyOperation{scale: rt.Scale, total: len(plan.Moves)}
	s.Start(rt, plan, func() {
		op.finished = true
		if done != nil {
			done()
		}
	})
	return op
}

// legacyOperation infers lifecycle phases from delay-accounting metrics:
// nothing migrated yet reads as deploy, partial migration as migrate, full
// migration without the done callback as drain.
type legacyOperation struct {
	scale     *metrics.ScalingMetrics
	total     int
	finished  bool
	cancelled bool
}

func (o *legacyOperation) Progress() Progress {
	p := Progress{Moved: o.scale.UnitsMigrated(), Total: o.total, Cancelled: o.cancelled}
	switch {
	case o.finished:
		p.Phase = PhaseDone
	case p.Moved == 0 && p.Total > 0:
		p.Phase = PhaseDeploy
	case p.Moved < p.Total:
		p.Phase = PhaseMigrate
	default:
		p.Phase = PhaseDrain
	}
	return p
}

func (o *legacyOperation) Cancel() bool {
	o.cancelled = true
	return false
}
