package stopre

import (
	"testing"

	"drrs/internal/engine"
	"drrs/internal/scaletest"
	"drrs/internal/simtime"
)

func TestExactlyOnce(t *testing.T) {
	base := scaletest.Run{Workload: scaletest.DefaultWorkload(61)}.Execute()
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(61),
		Mechanism:      &Mechanism{},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
	}.Execute()
	if !scaled.Done {
		t.Fatal("restart never completed")
	}
	if msg := scaletest.CheckExactlyOnce(base, scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckPlacement(scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckParticipation(scaled); msg != "" {
		t.Fatal(msg)
	}
}

func TestDowntimeVisibleInLatency(t *testing.T) {
	// Stop-restart's defining cost: a visible latency spike spanning the
	// restore. With a deliberately slow restore the peak must dwarf the
	// steady-state latency.
	wl := scaletest.DefaultWorkload(62)
	wl.Duration = simtime.Sec(4)
	scaled := scaletest.Run{
		Workload:       wl,
		Mechanism:      &Mechanism{RestoreBytesPerSec: 1 << 20},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
		SetupDelay:     simtime.Ms(300),
	}.Execute()
	if !scaled.Done {
		t.Fatal("restart never completed")
	}
	lat := scaled.RT.Latency
	pre := lat.AvgIn(0, simtime.Time(simtime.Sec(1)))
	peak := lat.PeakIn(simtime.Time(simtime.Sec(1)), simtime.Time(simtime.Sec(4)))
	if peak < 10*pre {
		t.Fatalf("peak %vms vs pre %vms: downtime did not register", peak, pre)
	}
	if peak < 300 {
		t.Fatalf("peak %vms below the 300ms setup delay — markers did not observe the halt", peak)
	}
}

func TestThroughputDipsToZeroThenRecovers(t *testing.T) {
	wl := scaletest.DefaultWorkload(63)
	wl.Duration = simtime.Sec(4)
	scaled := scaletest.Run{
		Workload:       wl,
		Mechanism:      &Mechanism{RestoreBytesPerSec: 1 << 20},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
		SetupDelay:     simtime.Ms(500),
		Engine:         engine.Config{ThroughputBucket: simtime.Ms(100)},
	}.Execute()
	s := scaled.RT.Throughput.Series()
	var sawZero, recovered bool
	for _, p := range s.Points() {
		at := p.At
		if at >= simtime.Time(simtime.Sec(1)) && p.V == 0 {
			sawZero = true
		}
		if sawZero && p.V > 0 {
			recovered = true
		}
	}
	if !sawZero {
		t.Fatal("throughput never hit zero during the halt")
	}
	if !recovered {
		t.Fatal("throughput never recovered after restart")
	}
}

func TestName(t *testing.T) {
	if (&Mechanism{}).Name() != "stop-restart" {
		t.Fatal("name")
	}
}
