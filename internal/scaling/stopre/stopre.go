// Package stopre implements the Stop-Checkpoint-Restart mechanism mainstream
// SPEs use for rescaling (the paper's Section I/II motivation): pause the
// sources, take a global aligned checkpoint, halt the job, redeploy with the
// new configuration, restore state, and resume.
//
// It is not part of the paper's main comparison figures (the paper dismisses
// it for latency-sensitive work), but it is the reference point that makes
// the on-the-fly numbers meaningful, so the repository includes it.
package stopre

import (
	"drrs/internal/engine"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

// Mechanism is the Stop-Checkpoint-Restart baseline.
type Mechanism struct {
	// RestoreBytesPerSec is the state restore rate (default 400 MB/s).
	RestoreBytesPerSec float64
}

// Name implements scaling.Mechanism.
func (m *Mechanism) Name() string { return "stop-restart" }

// Begin implements the lifecycle scaling.Mechanism interface through the
// legacy-start adapter. Stop-Checkpoint-Restart cannot be cancelled once the
// checkpoint fires: the job is halted and must restore before resuming, so
// Cancel is recorded but the restart runs to completion.
func (m *Mechanism) Begin(rt *engine.Runtime, plan scaling.Plan, done func()) scaling.Operation {
	return scaling.BeginLegacy(m, rt, plan, done)
}

// Start implements scaling.Starter.
func (m *Mechanism) Start(rt *engine.Runtime, plan scaling.Plan, done func()) {
	if m.RestoreBytesPerSec <= 0 {
		m.RestoreBytesPerSec = 400 << 20
	}
	const signal = "stop-restart"
	rt.Scale.MarkScaleStart(rt.Sched.Now())
	rt.Scale.SignalInjected(signal, rt.Sched.Now())
	for _, mv := range plan.Moves {
		rt.Scale.UnitAssigned(mv.KeyGroup, signal)
	}

	// Phase 1: global checkpoint with sources pausing at the barrier.
	id := rt.TriggerCheckpoint(func(int64) {
		m.restart(rt, plan, signal, done)
	})
	if id < 0 {
		panic("stopre: a checkpoint is already running")
	}
	rt.EachInstance(func(in *engine.Instance) {
		if in.Spec.Source != nil {
			in.PauseAfterCkpt = id
		}
	})
}

// restart runs after the checkpoint completes: the topology is quiet (all
// pre-barrier records processed, sources paused), so the job halts, state is
// redistributed, and everything resumes under the new configuration.
func (m *Mechanism) restart(rt *engine.Runtime, plan scaling.Plan, signal string, done func()) {
	rt.EachInstance(func(in *engine.Instance) { in.Halted = true })
	totalState := rt.TotalStateBytes(plan.Operator)
	restore := plan.SetupDelay +
		simtime.Duration(float64(totalState)/m.RestoreBytesPerSec*float64(simtime.Second))
	rt.Sched.After(restore, func() {
		rt.Cluster.PlaceInstances(plan.Operator, plan.OldParallelism, plan.NewParallelism)
		for idx := plan.OldParallelism; idx < plan.NewParallelism; idx++ {
			rt.AddInstance(plan.Operator, idx)
		}
		rt.Scale.FirstMigration(signal, rt.Sched.Now())
		// Redistribute state directly: restore time was already charged.
		for _, mv := range plan.Moves {
			from := rt.Instance(plan.Operator, mv.From)
			to := rt.Instance(plan.Operator, mv.To)
			to.Store().InstallGroup(mv.KeyGroup, from.Store().ExtractGroup(mv.KeyGroup))
			rt.Scale.UnitMigrated(mv.KeyGroup, rt.Sched.Now())
		}
		for _, p := range rt.PredecessorInstances(plan.Operator) {
			tbl := p.Routing(plan.Operator)
			for _, mv := range plan.Moves {
				tbl.SetOwner(mv.KeyGroup, mv.To)
			}
		}
		rt.EachInstance(func(in *engine.Instance) {
			if in.Dead() {
				// Crashed mid-restart: only the fault injector's recovery path
				// may revive it, after re-placement and state restore.
				return
			}
			in.Halted = false
			if in.Spec.Source != nil {
				in.PauseData = false
			}
			in.Wake()
		})
		rt.Scale.MarkScaleEnd(rt.Sched.Now())
		if done != nil {
			done()
		}
	})
}
