package scaling

import (
	"testing"

	"drrs/internal/dataflow"
)

// bigclusterPlan mirrors the bigcluster-128 scenario's scale-out: 1024 key
// groups repartitioned 256→320, the largest plan the registered scenarios
// build. The migrators resolve MovesFrom once per source and a per-group
// move per migration step, so this is the shape where the linear scan hurt.
func bigclusterPlan() Plan {
	p := Plan{
		Operator:       "agg",
		OldParallelism: 256,
		NewParallelism: 320,
		Moves:          dataflow.UniformRepartition(1024, 256, 320),
	}
	p.Finalize()
	return p
}

// BenchmarkPlanMovesFrom measures one full per-source sweep plus a per-move
// lookup over the bigcluster-128 plan — the per-operation access pattern of
// the migrators (gated in bench_baseline.json).
func BenchmarkPlanMovesFrom(b *testing.B) {
	plan := bigclusterPlan()
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for src := 0; src < plan.OldParallelism; src++ {
			sink += len(plan.MovesFrom(src))
		}
		for _, m := range plan.Moves {
			if mv, ok := plan.Move(m.KeyGroup); ok {
				sink += mv.To
			}
		}
	}
	_ = sink
}

// BenchmarkPlanMovesFromScan is the pre-index baseline for comparison: the
// same sweep over an unindexed plan falls back to linear scans.
func BenchmarkPlanMovesFromScan(b *testing.B) {
	plan := bigclusterPlan()
	plan.index = nil
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for src := 0; src < plan.OldParallelism; src++ {
			sink += len(plan.MovesFrom(src))
		}
		for _, m := range plan.Moves {
			if mv, ok := plan.Move(m.KeyGroup); ok {
				sink += mv.To
			}
		}
	}
	_ = sink
}
