package unbound

import (
	"testing"

	"drrs/internal/scaletest"
	"drrs/internal/simtime"
)

func TestNoSuspensionEver(t *testing.T) {
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(51),
		Mechanism:      &Mechanism{},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
		Cluster:        scaletest.SlowMigrationCluster(2 << 20),
	}.Execute()
	if !scaled.Done {
		t.Fatal("background migration never completed")
	}
	if s := scaled.RT.Scale.CumulativeSuspension(); s != 0 {
		t.Fatalf("unbound suspended for %v; it must never suspend", s)
	}
}

func TestNoRecordLossButWrongAggregates(t *testing.T) {
	// Unbound must deliver every record exactly once (it loses no data) but
	// its per-key aggregates are corrupted by the split-state processing —
	// that corruption is the whole point of the diagnostic.
	base := scaletest.Run{Workload: scaletest.DefaultWorkload(52)}.Execute()
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(52),
		Mechanism:      &Mechanism{},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
		Cluster:        scaletest.SlowMigrationCluster(2 << 20),
	}.Execute()
	if scaled.Sink.Records != base.Sink.Records {
		t.Fatalf("record count %d vs %d: unbound must not lose records",
			scaled.Sink.Records, base.Sink.Records)
	}
	if d := scaled.Sink.Duplicates(); d != 0 {
		t.Fatalf("%d duplicates", d)
	}
	mismatch := false
	for k, want := range base.Sink.ByKey {
		if scaled.Sink.ByKey[k] != want {
			mismatch = true
			break
		}
	}
	if !mismatch {
		t.Fatal("unbound produced perfectly correct aggregates — the universal-key corruption did not manifest, so the diagnostic is not exercising what it claims")
	}
}

func TestParticipationAndCompletion(t *testing.T) {
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(53),
		Mechanism:      &Mechanism{},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
	}.Execute()
	if msg := scaletest.CheckParticipation(scaled); msg != "" {
		t.Fatal(msg)
	}
	if scaled.RT.Scale.UnitsMigrated() != len(scaled.Plan.Moves) {
		t.Fatalf("migrated %d of %d", scaled.RT.Scale.UnitsMigrated(), len(scaled.Plan.Moves))
	}
}

func TestName(t *testing.T) {
	if (&Mechanism{}).Name() != "unbound" {
		t.Fatal("name")
	}
}
