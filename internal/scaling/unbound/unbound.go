// Package unbound implements the paper's "extreme" scaling solution
// (Section II-B, Fig 2): correctness is sacrificed entirely to isolate the
// mechanism-level overheads. Routing tables flip instantly without signal
// propagation, record keys behave as "universal keys" — every instance can
// process any record against a fresh local state — and migration happens in
// the background without ever suspending processing.
//
// Unbound eliminates Lp and Ls and hides Ld, so the residual gap between it
// and a non-scaling run bounds the inherent overhead Lo. Its output is WRONG
// by construction (per-key aggregates are split across instances and merged
// by overwrite); it exists purely as the paper's diagnostic upper bound.
package unbound

import (
	"sort"

	"drrs/internal/engine"
	"drrs/internal/netsim"
	"drrs/internal/scaling"
)

// Mechanism is the Unbound diagnostic baseline.
type Mechanism struct{}

// Name implements scaling.Mechanism.
func (m *Mechanism) Name() string { return "unbound" }

// Begin implements the lifecycle scaling.Mechanism interface through the
// legacy-start adapter: phases are inferred from migration accounting, and
// Cancel is recorded but not honored (Unbound has no protocol to stand down).
func (m *Mechanism) Begin(rt *engine.Runtime, plan scaling.Plan, done func()) scaling.Operation {
	return scaling.BeginLegacy(m, rt, plan, done)
}

// Start implements scaling.Starter.
func (m *Mechanism) Start(rt *engine.Runtime, plan scaling.Plan, done func()) {
	const signal = "unbound"
	for _, mv := range plan.Moves {
		rt.Scale.UnitAssigned(mv.KeyGroup, signal)
	}
	mig := scaling.NewMigrator(rt, plan, func() {
		rt.Scale.MarkScaleEnd(rt.Sched.Now())
		if done != nil {
			done()
		}
	})
	scaling.Deploy(rt, plan, func(added []*engine.Instance) {
		rt.Scale.SignalInjected(signal, rt.Sched.Now())
		// Universal keys: any instance processes any record, creating local
		// state shells on demand, so nothing ever suspends — including old
		// instances handling stragglers for groups already extracted. The
		// hook stays installed; Unbound has no cleanup protocol (it has no
		// protocol at all — that is the point).
		for _, in := range rt.Instances(plan.Operator) {
			in.SetHook(universalHook{})
		}
		for _, mv := range plan.Moves {
			rt.Instance(plan.Operator, mv.To).Store().OwnGroup(mv.KeyGroup)
		}
		// Instant routing flip, no propagation, no alignment.
		for _, p := range rt.PredecessorInstances(plan.Operator) {
			tbl := p.Routing(plan.Operator)
			for _, mv := range plan.Moves {
				tbl.SetOwner(mv.KeyGroup, mv.To)
			}
		}
		// Background migration of the old state; InstallGroup merges into the
		// live shells (overwriting concurrent updates — the correctness hole
		// Unbound deliberately accepts).
		bySrc := make(map[int][]int)
		var srcs []int
		for _, mv := range plan.Moves {
			if _, seen := bySrc[mv.From]; !seen {
				srcs = append(srcs, mv.From)
			}
			bySrc[mv.From] = append(bySrc[mv.From], mv.KeyGroup)
		}
		// Launch in sorted source order so runs are replayable bit-for-bit.
		sort.Ints(srcs)
		for _, src := range srcs {
			mig.MigrateSequence(bySrc[src], signal, nil)
		}
	})
}

// universalHook implements the universal-key semantics: before any record is
// processed, its key group is made local (as an empty shell if absent), so
// processing never waits for state and never panics on non-local writes.
type universalHook struct{ engine.BaseHook }

func (universalHook) BeforeRecord(in *engine.Instance, r *netsim.Record, _ *netsim.Edge) bool {
	in.Store().OwnGroup(r.KeyGroup)
	return false
}
