// Package scaling defines the mechanism framework every rescaling approach
// plugs into: scale plans, physical deployment, the shared state-migration
// machinery with delay accounting, and the "coupled round" primitive that the
// generalized OTFS framework, Megaphone, and DRRS's ablation variants build
// on.
package scaling

import (
	"fmt"
	"sort"

	"drrs/internal/cluster"
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

// Plan describes one scaling operation on one operator.
type Plan struct {
	// Operator is the scaling operator's name.
	Operator string
	// OldParallelism and NewParallelism bound the instance set.
	OldParallelism, NewParallelism int
	// Moves lists the key groups changing owner.
	Moves []dataflow.Move
	// SetupDelay models physical resource initialization (container start,
	// task deployment) before new instances are operational — part of the
	// paper's inherent overhead Lo.
	SetupDelay simtime.Duration

	// index accelerates MovesFrom/Move lookups; built by Finalize (the plan
	// constructors call it). Plans assembled literally fall back to scanning
	// Moves. The index is shared by value copies of the plan, which is safe:
	// it is read-only after Finalize.
	index *planIndex
}

// planIndex is the precomputed lookup structure over Plan.Moves: the
// migrators resolve per-source move lists and per-key-group moves on every
// migration step, which was an O(moves) scan per call.
type planIndex struct {
	bySrc map[int][]dataflow.Move
	byKG  map[int]int // key group → position in Moves
}

// Finalize builds the plan's move index. It is idempotent; call it after
// assembling Moves by hand to get indexed lookups (the constructors in this
// package already do).
func (p *Plan) Finalize() {
	idx := &planIndex{
		bySrc: make(map[int][]dataflow.Move),
		byKG:  make(map[int]int, len(p.Moves)),
	}
	for i, m := range p.Moves {
		idx.bySrc[m.From] = append(idx.bySrc[m.From], m)
		idx.byKG[m.KeyGroup] = i
	}
	p.index = idx
}

// UniformPlan builds the paper's default plan: scale op to newP instances
// with uniform (contiguous-range) repartitioning.
func UniformPlan(g *dataflow.Graph, op string, newP int, setup simtime.Duration) Plan {
	spec := g.Operator(op)
	if spec == nil {
		panic(fmt.Sprintf("scaling: unknown operator %s", op))
	}
	if !spec.KeyedInput {
		panic(fmt.Sprintf("scaling: operator %s is not keyed", op))
	}
	p := Plan{
		Operator:       op,
		OldParallelism: spec.Parallelism,
		NewParallelism: newP,
		Moves:          dataflow.UniformRepartition(spec.MaxKeyGroups, spec.Parallelism, newP),
		SetupDelay:     setup,
	}
	p.Finalize()
	return p
}

// NewRouting builds the routing table for the post-scaling assignment.
func (p Plan) NewRouting(maxKG int) *dataflow.RoutingTable {
	rt := dataflow.NewRoutingTable(maxKG, p.OldParallelism)
	for _, m := range p.Moves {
		rt.SetOwner(m.KeyGroup, m.To)
	}
	return rt
}

// MovesFrom returns the plan's moves leaving instance idx, in key-group
// order. Finalized plans answer from the per-source index; hand-assembled
// plans fall back to scanning Moves.
func (p Plan) MovesFrom(idx int) []dataflow.Move {
	if p.index != nil {
		return p.index.bySrc[idx]
	}
	var out []dataflow.Move
	for _, m := range p.Moves {
		if m.From == idx {
			out = append(out, m)
		}
	}
	return out
}

// Move returns the plan's move for key group kg, if any.
func (p Plan) Move(kg int) (dataflow.Move, bool) {
	if p.index != nil {
		if i, ok := p.index.byKG[kg]; ok {
			return p.Moves[i], true
		}
		return dataflow.Move{}, false
	}
	for _, m := range p.Moves {
		if m.KeyGroup == kg {
			return m, true
		}
	}
	return dataflow.Move{}, false
}

// KeyGroupSet is a bitset over key-group ids: O(1) membership, deterministic
// ascending iteration, and no per-run map allocation churn — it replaces the
// map[int]bool the per-record Processable gate used to consult.
type KeyGroupSet struct {
	bits []uint64
	n    int
}

// Has reports membership. Out-of-range ids are simply absent.
func (s KeyGroupSet) Has(kg int) bool {
	w := kg >> 6
	if kg < 0 || w >= len(s.bits) {
		return false
	}
	return s.bits[w]&(1<<(uint(kg)&63)) != 0
}

// Len reports the number of key groups in the set.
func (s KeyGroupSet) Len() int { return s.n }

// Slice materializes the members in ascending order.
func (s KeyGroupSet) Slice() []int {
	out := make([]int, 0, s.n)
	for w, bits := range s.bits {
		for b := 0; bits != 0; b++ {
			if bits&1 != 0 {
				out = append(out, w<<6|b)
			}
			bits >>= 1
		}
	}
	return out
}

func (s *KeyGroupSet) add(kg int) {
	w := kg >> 6
	for w >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	mask := uint64(1) << (uint(kg) & 63)
	if s.bits[w]&mask == 0 {
		s.bits[w] |= mask
		s.n++
	}
}

// Moved returns the set of migrating key groups.
func (p Plan) Moved() KeyGroupSet {
	var s KeyGroupSet
	for _, m := range p.Moves {
		s.add(m.KeyGroup)
	}
	return s
}

// PlanFromPlacement builds a plan from the *actual* current state placement
// rather than the nominal contiguous assignment — required when a scaling
// request supersedes a partially completed one (the paper's concurrent-
// execution rule 1): groups the cancelled operation already moved must not
// migrate twice.
func PlanFromPlacement(rt *engine.Runtime, op string, newP int, setup simtime.Duration) Plan {
	spec := rt.Graph.Operator(op)
	cur := len(rt.Instances(op))
	holder := make(map[int]int, spec.MaxKeyGroups)
	for _, in := range rt.Instances(op) {
		for _, kg := range in.Store().Groups() {
			holder[kg] = in.Index
		}
	}
	var moves []dataflow.Move
	for kg := 0; kg < spec.MaxKeyGroups; kg++ {
		from, ok := holder[kg]
		if !ok {
			from = state.OwnerOf(spec.MaxKeyGroups, cur, kg)
		}
		to := state.OwnerOf(spec.MaxKeyGroups, newP, kg)
		if from != to {
			moves = append(moves, dataflow.Move{KeyGroup: kg, From: from, To: to})
		}
	}
	p := Plan{
		Operator:       op,
		OldParallelism: cur,
		NewParallelism: newP,
		Moves:          moves,
		SetupDelay:     setup,
	}
	p.Finalize()
	return p
}

// Mechanism is one rescaling approach, lifecycle-observable: Begin returns a
// live Operation handle that reports phase progress (deploy → migrate →
// drain) and accepts supersession via Cancel. Mechanisms that only implement
// the legacy Starter surface satisfy this interface by routing Begin through
// BeginLegacy (see lifecycle.go).
type Mechanism interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Begin starts scaling per plan and returns the operation handle; done
	// (optional) fires when the operation has fully completed — or, after a
	// Cancel, when the work it could not abandon has settled.
	Begin(rt *engine.Runtime, plan Plan, done func()) Operation
}

// Deploy performs the physical half of scaling shared by every mechanism:
// after plan.SetupDelay (resource initialization), it places the new
// instances through the cluster's placement policy (rack-local scale-out vs
// spread is decided here, before wiring, so channel latencies reflect the
// topology path), creates them, wires them, and hands them to then. It also
// marks the scale start in the runtime's metrics.
func Deploy(rt *engine.Runtime, plan Plan, then func(added []*engine.Instance)) {
	rt.Scale.MarkScaleStart(rt.Sched.Now())
	rt.Sched.After(plan.SetupDelay, func() {
		rt.Cluster.PlaceInstances(plan.Operator, plan.OldParallelism, plan.NewParallelism)
		var added []*engine.Instance
		for idx := plan.OldParallelism; idx < plan.NewParallelism; idx++ {
			added = append(added, rt.AddInstance(plan.Operator, idx))
		}
		then(added)
	})
}

// Migrator moves key groups between instances with full delay accounting.
// One Migrator serves one scaling operation.
type Migrator struct {
	rt   *engine.Runtime
	plan Plan
	// InstallCost is charged at the receiver per chunk (deserialization).
	InstallCost simtime.Duration

	migrated map[int]bool
	failed   map[int]bool
	total    int
	onAll    func()
}

// NewMigrator returns a migrator for the plan. onAll (optional) fires when
// every planned move has settled — completed, or failed against an unhealthy
// destination (the state then sits back at its source and the controller's
// recovery path re-plans it).
func NewMigrator(rt *engine.Runtime, plan Plan, onAll func()) *Migrator {
	return &Migrator{
		rt:          rt,
		plan:        plan,
		InstallCost: 200 * simtime.Microsecond,
		migrated:    make(map[int]bool),
		failed:      make(map[int]bool),
		onAll:       onAll,
		total:       len(plan.Moves),
	}
}

// Migrated reports whether kg has completed migration.
func (m *Migrator) Migrated(kg int) bool { return m.migrated[kg] }

// Remaining reports moves not yet settled.
func (m *Migrator) Remaining() int { return m.total - len(m.migrated) - len(m.failed) }

// Failed reports how many moves failed against an unhealthy destination.
func (m *Migrator) Failed() int { return len(m.failed) }

// settle re-homes a move whose transfer failed: the extracted state merges
// back into the source store and every predecessor's routing entry is pointed
// back at the source, so records keep flowing to where the state actually is.
// The move then counts as settled — sequences continue past it and onAll can
// fire — leaving the re-plan to the control plane's recovery supersession.
// The typed cause distinguishes transient failures (the cluster-level retry
// budget ran out against a partition or a restartable crash) from fatal ones
// (the destination node is gone) in the mechanism's counters.
func (m *Migrator) settleFailure(kg int, g *state.Group, mv dataflow.Move, err error) {
	from := m.rt.Instance(m.plan.Operator, mv.From)
	from.Store().InstallGroup(kg, g)
	for _, p := range m.rt.PredecessorInstances(m.plan.Operator) {
		if tbl := p.Routing(m.plan.Operator); tbl != nil {
			tbl.SetOwner(kg, mv.From)
		}
	}
	m.failed[kg] = true
	if cluster.IsTransient(err) {
		m.rt.Scale.AddCounter("xfer_settled_transient", 1)
	} else {
		m.rt.Scale.AddCounter("xfer_settled_fatal", 1)
	}
	from.Wake()
	// Records for kg may already be parked at the destination, gated by the
	// mechanism's Processable; now that the repair re-pointed the group away
	// from it, wake it so those records drain (ApplyRecord counts them as
	// stranded losses) instead of suspending the instance forever.
	if to := m.rt.Instance(m.plan.Operator, mv.To); to != nil {
		to.Wake()
	}
}

func (m *Migrator) checkAll() {
	if len(m.migrated)+len(m.failed) == m.total && m.onAll != nil {
		all := m.onAll
		m.onAll = nil
		all()
	}
}

// MigrateGroup extracts kg from its source instance and transfers it to the
// destination under the given signal label; done (optional) fires after the
// destination installs it. The paper's Fig 12 metrics hang off the signal
// label: FirstMigration on extraction, UnitMigrated on installation.
func (m *Migrator) MigrateGroup(kg int, signal string, done func()) {
	move := m.findMove(kg)
	from := m.rt.Instance(m.plan.Operator, move.From)
	to := m.rt.Instance(m.plan.Operator, move.To)
	if from == nil || to == nil {
		panic(fmt.Sprintf("scaling: migrate kg %d with missing instances", kg))
	}
	g := from.Store().ExtractGroup(kg)
	m.rt.Scale.FirstMigration(signal, m.rt.Sched.Now())
	bytes := 0
	if g != nil {
		bytes = g.Bytes
	}
	m.rt.Cluster.TransferChecked(from.Endpoint(), to.Endpoint(), bytes, func() {
		m.rt.Sched.After(m.InstallCost, func() {
			to.Store().InstallGroup(kg, g)
			m.rt.Scale.UnitMigrated(kg, m.rt.Sched.Now())
			m.migrated[kg] = true
			to.Wake()
			if done != nil {
				done()
			}
			m.checkAll()
		})
	}, func(err error) {
		m.settleFailure(kg, g, move, err)
		if done != nil {
			done()
		}
		m.checkAll()
	})
}

// MigrateSequence migrates the given key groups one after another (fluid
// migration's per-unit serial dependency); done fires after the last one.
func (m *Migrator) MigrateSequence(kgs []int, signal string, done func()) {
	if len(kgs) == 0 {
		if done != nil {
			done()
		}
		return
	}
	m.MigrateGroup(kgs[0], signal, func() {
		m.MigrateSequence(kgs[1:], signal, done)
	})
}

// MigrateAllAtOnce extracts all given groups immediately and ships each
// (source, destination) pair's state as a single batch: nothing is usable at
// a destination until its whole batch lands (the traditional approach in
// Fig 1b).
func (m *Migrator) MigrateAllAtOnce(kgs []int, signal string, done func()) {
	if len(kgs) == 0 {
		if done != nil {
			done()
		}
		return
	}
	type pair struct{ from, to int }
	type item struct {
		kg int
		g  *state.Group
	}
	batches := make(map[pair][]item)
	bytes := make(map[pair]int)
	var pairs []pair
	for _, kg := range kgs {
		mv := m.findMove(kg)
		from := m.rt.Instance(m.plan.Operator, mv.From)
		g := from.Store().ExtractGroup(kg)
		p := pair{from: mv.From, to: mv.To}
		if _, seen := batches[p]; !seen {
			pairs = append(pairs, p)
		}
		batches[p] = append(batches[p], item{kg: kg, g: g})
		if g != nil {
			bytes[p] += g.Bytes
		}
	}
	// Deterministic transfer launch order (map iteration would vary per run).
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].from != pairs[j].from {
			return pairs[i].from < pairs[j].from
		}
		return pairs[i].to < pairs[j].to
	})
	m.rt.Scale.FirstMigration(signal, m.rt.Sched.Now())
	remaining := len(batches)
	for _, p := range pairs {
		p, items := p, batches[p]
		from := m.rt.Instance(m.plan.Operator, p.from)
		to := m.rt.Instance(m.plan.Operator, p.to)
		m.rt.Cluster.TransferChecked(from.Endpoint(), to.Endpoint(), bytes[p], func() {
			m.rt.Sched.After(m.InstallCost, func() {
				for _, it := range items {
					to.Store().InstallGroup(it.kg, it.g)
					m.rt.Scale.UnitMigrated(it.kg, m.rt.Sched.Now())
					m.migrated[it.kg] = true
				}
				to.Wake()
				remaining--
				if remaining == 0 && done != nil {
					done()
				}
				m.checkAll()
			})
		}, func(err error) {
			for _, it := range items {
				m.settleFailure(it.kg, it.g, dataflow.Move{KeyGroup: it.kg, From: p.from, To: p.to}, err)
			}
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
			m.checkAll()
		})
	}
}

func (m *Migrator) findMove(kg int) dataflow.Move {
	if mv, ok := m.plan.Move(kg); ok {
		return mv
	}
	panic(fmt.Sprintf("scaling: kg %d not in plan", kg))
}

// ReconcileRouting points every predecessor's routing entry for op at each
// key group's actual current holder. On a healthy run it is a no-op — every
// entry is rewritten to the value it already has and no events fire. After a
// fault-interrupted operation it repairs the divergence an abandoned
// migration can leave behind: a key group re-homed to its source (or restored
// from checkpoint at a revived instance) while some predecessor table still
// points at the old destination. PlanFromPlacement only emits moves where
// holder and target owner differ, so such a stale route would otherwise never
// be corrected; the control plane calls this before planning every operation.
func ReconcileRouting(rt *engine.Runtime, op string) {
	holder := make(map[int]int)
	for _, in := range rt.Instances(op) {
		for _, kg := range in.Store().Groups() {
			holder[kg] = in.Index
		}
	}
	kgs := make([]int, 0, len(holder))
	for kg := range holder {
		kgs = append(kgs, kg)
	}
	sort.Ints(kgs)
	for _, p := range rt.PredecessorInstances(op) {
		tbl := p.Routing(op)
		if tbl == nil {
			continue
		}
		for _, kg := range kgs {
			tbl.SetOwner(kg, holder[kg])
		}
	}
}
