// Package otfs implements the paper's generalized on-the-fly scaling
// framework (Section II-B, Fig 1): a single coupled scaling barrier injected
// at the sources, propagated with alignment, followed by state migration —
// either all-at-once (Fig 1b) or fluid (Fig 1c).
//
// This is the "OTFS" baseline of Fig 2 and the conceptual frame the paper's
// three challenges (propagation delay, suspension, dependency overhead) are
// defined against.
package otfs

import (
	"drrs/internal/engine"
	"drrs/internal/scaling"
)

// Mechanism is the generalized OTFS baseline.
type Mechanism struct {
	// Fluid selects fluid migration; false selects all-at-once.
	Fluid bool
}

// Name implements scaling.Mechanism.
func (m *Mechanism) Name() string {
	if m.Fluid {
		return "otfs-fluid"
	}
	return "otfs-allatonce"
}

// Begin implements the lifecycle scaling.Mechanism interface through the
// legacy-start adapter: the coupled barrier protocol reports inferred phases
// and runs to completion on Cancel.
func (m *Mechanism) Begin(rt *engine.Runtime, plan scaling.Plan, done func()) scaling.Operation {
	return scaling.BeginLegacy(m, rt, plan, done)
}

// Start implements scaling.Starter.
func (m *Mechanism) Start(rt *engine.Runtime, plan scaling.Plan, done func()) {
	c := scaling.NewCoupledController(plan, scaling.BatchRounds(plan, 0))
	c.Fluid = m.Fluid
	c.InjectAtSources = true
	c.Start(rt, done)
}
