package otfs

import (
	"testing"

	"drrs/internal/scaletest"
	"drrs/internal/simtime"
)

func runPair(t *testing.T, fluid bool, seed int64) (scaletest.Result, scaletest.Result) {
	t.Helper()
	base := scaletest.Run{Workload: scaletest.DefaultWorkload(seed)}.Execute()
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(seed),
		Mechanism:      &Mechanism{Fluid: fluid},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
	}.Execute()
	return base, scaled
}

func TestFluidExactlyOnce(t *testing.T) {
	base, scaled := runPair(t, true, 11)
	if !scaled.Done {
		t.Fatal("scaling never completed")
	}
	if msg := scaletest.CheckExactlyOnce(base, scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckPlacement(scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckParticipation(scaled); msg != "" {
		t.Fatal(msg)
	}
}

func TestAllAtOnceExactlyOnce(t *testing.T) {
	base, scaled := runPair(t, false, 12)
	if !scaled.Done {
		t.Fatal("scaling never completed")
	}
	if msg := scaletest.CheckExactlyOnce(base, scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckPlacement(scaled); msg != "" {
		t.Fatal(msg)
	}
}

func TestScalingMetricsRecorded(t *testing.T) {
	_, scaled := runPair(t, true, 13)
	m := scaled.RT.Scale
	if !m.Ended() {
		t.Fatal("scale end not marked")
	}
	if m.UnitsMigrated() != len(scaled.Plan.Moves) {
		t.Fatalf("migrated %d of %d units", m.UnitsMigrated(), len(scaled.Plan.Moves))
	}
	if m.CumulativePropagationDelay() <= 0 {
		t.Fatal("no propagation delay recorded (source injection must cost something)")
	}
	if m.AvgDependencyOverhead() <= 0 {
		t.Fatal("no dependency overhead recorded")
	}
}

func TestFluidMakesStateAvailableEarlier(t *testing.T) {
	// The motivation for fluid migration (Fig 1c): the first state unit is
	// usable long before the batch finishes, so per-unit completion times
	// spread out instead of all landing together. (Cumulative suspension is
	// workload-dependent — the paper notes fluid can degenerate to
	// all-at-once when the head record needs the tail unit — so the test
	// asserts the deterministic property.)
	mk := func(fluid bool) (first, last simtime.Time) {
		res := scaletest.Run{
			Workload:       scaletest.DefaultWorkload(21),
			Mechanism:      &Mechanism{Fluid: fluid},
			ScaleAt:        simtime.Sec(1),
			NewParallelism: 6,
			Cluster:        scaletest.SlowMigrationCluster(4 << 20),
		}.Execute()
		times := res.RT.Scale.UnitDoneTimes()
		if len(times) == 0 {
			t.Fatal("no units migrated")
		}
		first, last = simtime.Time(1<<62), 0
		for _, at := range times {
			if at < first {
				first = at
			}
			if at > last {
				last = at
			}
		}
		return first, last
	}
	fFirst, fLast := mk(true)
	bFirst, bLast := mk(false)
	if fFirst >= bFirst {
		t.Fatalf("fluid first unit at %v, not earlier than all-at-once %v", fFirst, bFirst)
	}
	if fLast.Sub(fFirst) <= bLast.Sub(bFirst) {
		t.Fatalf("fluid spread %v should exceed batch spread %v",
			fLast.Sub(fFirst), bLast.Sub(bFirst))
	}
	// Both finish, and suspension is non-zero under slow migration.
}

func TestNames(t *testing.T) {
	if (&Mechanism{Fluid: true}).Name() != "otfs-fluid" {
		t.Fatal("fluid name")
	}
	if (&Mechanism{}).Name() != "otfs-allatonce" {
		t.Fatal("batch name")
	}
}
