package scaling

import (
	"testing"

	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

func testPlan(t *testing.T) (Plan, *dataflow.Graph) {
	t.Helper()
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	return UniformPlan(g, "agg", 6, simtime.Ms(10)), g
}

func TestUniformPlanShape(t *testing.T) {
	plan, _ := testPlan(t)
	if plan.OldParallelism != 4 || plan.NewParallelism != 6 {
		t.Fatalf("parallelism %d→%d", plan.OldParallelism, plan.NewParallelism)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("no moves")
	}
	for _, m := range plan.Moves {
		if m.From == m.To || m.From >= 4 || m.To >= 6 {
			t.Fatalf("bad move %+v", m)
		}
	}
}

func TestUniformPlanPanicsOnNonKeyed(t *testing.T) {
	_, g := testPlan(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-keyed operator")
		}
	}()
	UniformPlan(g, "sink", 2, 0)
}

func TestNewRoutingMatchesMoves(t *testing.T) {
	plan, g := testPlan(t)
	rt := plan.NewRouting(g.Operator("agg").MaxKeyGroups)
	moved := plan.Moved()
	for _, m := range plan.Moves {
		if rt.Owner(m.KeyGroup) != m.To {
			t.Fatalf("kg %d routed to %d, want %d", m.KeyGroup, rt.Owner(m.KeyGroup), m.To)
		}
	}
	for kg := 0; kg < 32; kg++ {
		if !moved.Has(kg) && rt.Owner(kg) >= 4 {
			t.Fatalf("unmoved kg %d routed to new instance %d", kg, rt.Owner(kg))
		}
	}
}

func TestKeyGroupSet(t *testing.T) {
	plan, _ := testPlan(t)
	moved := plan.Moved()
	if moved.Len() != len(plan.Moves) {
		t.Fatalf("Len %d, want %d", moved.Len(), len(plan.Moves))
	}
	want := map[int]bool{}
	for _, m := range plan.Moves {
		want[m.KeyGroup] = true
	}
	for kg := -1; kg < 200; kg++ {
		if moved.Has(kg) != want[kg] {
			t.Fatalf("Has(%d) = %v, want %v", kg, moved.Has(kg), want[kg])
		}
	}
	last := -1
	for _, kg := range moved.Slice() {
		if kg <= last {
			t.Fatalf("Slice not ascending: %d after %d", kg, last)
		}
		if !want[kg] {
			t.Fatalf("Slice contains %d, not in plan", kg)
		}
		last = kg
	}
	if got := len(moved.Slice()); got != moved.Len() {
		t.Fatalf("Slice length %d vs Len %d", got, moved.Len())
	}
}

func TestMovesFrom(t *testing.T) {
	plan, _ := testPlan(t)
	var total int
	for idx := 0; idx < plan.OldParallelism; idx++ {
		for _, m := range plan.MovesFrom(idx) {
			if m.From != idx {
				t.Fatalf("MovesFrom(%d) returned move from %d", idx, m.From)
			}
			total++
		}
	}
	if total != len(plan.Moves) {
		t.Fatalf("MovesFrom partition lost moves: %d vs %d", total, len(plan.Moves))
	}
}

// TestMovesFromIndexMatchesScan pins the indexed lookups to the linear-scan
// semantics: a finalized plan and an unindexed copy must agree on every
// per-source list and per-group move.
func TestMovesFromIndexMatchesScan(t *testing.T) {
	plan, _ := testPlan(t)
	bare := Plan{Operator: plan.Operator, OldParallelism: plan.OldParallelism,
		NewParallelism: plan.NewParallelism, Moves: plan.Moves}
	for idx := 0; idx < plan.NewParallelism; idx++ {
		a, b := plan.MovesFrom(idx), bare.MovesFrom(idx)
		if len(a) != len(b) {
			t.Fatalf("MovesFrom(%d): indexed %d moves, scan %d", idx, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("MovesFrom(%d)[%d]: %+v vs %+v", idx, i, a[i], b[i])
			}
		}
	}
	for kg := 0; kg < 32; kg++ {
		am, aok := plan.Move(kg)
		bm, bok := bare.Move(kg)
		if aok != bok || am != bm {
			t.Fatalf("Move(%d): indexed %+v/%v, scan %+v/%v", kg, am, aok, bm, bok)
		}
	}
}

func TestBatchRounds(t *testing.T) {
	plan, _ := testPlan(t)
	rounds := BatchRounds(plan, 3)
	var total int
	last := -1
	for _, r := range rounds {
		if len(r) == 0 || len(r) > 3 {
			t.Fatalf("round size %d", len(r))
		}
		for _, kg := range r {
			if kg <= last {
				t.Fatalf("rounds not in key-group order: %d after %d", kg, last)
			}
			last = kg
			total++
		}
	}
	if total != len(plan.Moves) {
		t.Fatalf("rounds cover %d of %d moves", total, len(plan.Moves))
	}
	// Zero batch size = single round.
	if rounds := BatchRounds(plan, 0); len(rounds) != 1 {
		t.Fatalf("zero batch should give one round, got %d", len(rounds))
	}
}

func TestDeployCreatesInstancesAfterSetup(t *testing.T) {
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 1, MarkerInterval: -1})
	plan := UniformPlan(g, "agg", 6, simtime.Ms(50))
	var deployedAt simtime.Time
	var got int
	Deploy(rt, plan, func(added []*engine.Instance) {
		deployedAt = s.Now()
		got = len(added)
	})
	s.Run()
	if got != 2 {
		t.Fatalf("deployed %d instances, want 2", got)
	}
	if deployedAt != simtime.Time(simtime.Ms(50)) {
		t.Fatalf("deployed at %v, want 50ms", deployedAt)
	}
	if len(rt.Instances("agg")) != 6 {
		t.Fatal("instances not registered")
	}
}

func TestMigratorSequenceOrderAndCompletion(t *testing.T) {
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 1, MarkerInterval: -1})
	plan := UniformPlan(g, "agg", 6, 0)
	var allDone bool
	Deploy(rt, plan, func([]*engine.Instance) {
		mig := NewMigrator(rt, plan, func() { allDone = true })
		bySrc := map[int][]int{}
		for _, m := range plan.Moves {
			bySrc[m.From] = append(bySrc[m.From], m.KeyGroup)
		}
		for _, kgs := range bySrc {
			mig.MigrateSequence(kgs, "test", nil)
		}
	})
	s.Run()
	if !allDone {
		t.Fatal("migrator onAll never fired")
	}
	if rt.Scale.UnitsMigrated() != len(plan.Moves) {
		t.Fatalf("migrated %d of %d", rt.Scale.UnitsMigrated(), len(plan.Moves))
	}
	// Every move's group now lives at its destination.
	for _, m := range plan.Moves {
		if !rt.Instance("agg", m.To).Store().HasGroup(m.KeyGroup) {
			t.Fatalf("kg %d missing at destination %d", m.KeyGroup, m.To)
		}
		if rt.Instance("agg", m.From).Store().HasGroup(m.KeyGroup) {
			t.Fatalf("kg %d still at source %d", m.KeyGroup, m.From)
		}
	}
}

// recordingStarter is a minimal legacy mechanism: Start only captures the
// done callback, so the test controls exactly when the operation "finishes"
// and what the metrics collector has seen at each probe.
type recordingStarter struct{ done func() }

func (r *recordingStarter) Name() string { return "recording" }
func (r *recordingStarter) Start(rt *engine.Runtime, plan Plan, done func()) {
	r.done = done
}

// TestBeginLegacyPhases pins the adapter's phase inference: deploy while
// nothing migrated, migrate while partial, drain when all units landed but
// the mechanism has not reported done, done afterwards — and Cancel is
// recorded but reported as not honored.
func TestBeginLegacyPhases(t *testing.T) {
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 1, MarkerInterval: -1})
	plan := UniformPlan(g, "agg", 6, 0)
	st := &recordingStarter{}
	op := BeginLegacy(st, rt, plan, nil)
	if ph := op.Progress().Phase; ph != PhaseDeploy {
		t.Fatalf("phase %v before any migration, want deploy", ph)
	}
	rt.Scale.UnitMigrated(plan.Moves[0].KeyGroup, s.Now())
	if pr := op.Progress(); pr.Phase != PhaseMigrate || pr.Moved != 1 || pr.Total != len(plan.Moves) {
		t.Fatalf("mid-migration progress %+v", pr)
	}
	if op.Cancel() {
		t.Fatal("legacy adapter must report cancellation as not honored")
	}
	if pr := op.Progress(); !pr.Cancelled {
		t.Fatal("cancellation not recorded")
	}
	for _, mv := range plan.Moves[1:] {
		rt.Scale.UnitMigrated(mv.KeyGroup, s.Now())
	}
	if ph := op.Progress().Phase; ph != PhaseDrain {
		t.Fatalf("phase %v with all units landed but no done, want drain", ph)
	}
	st.done()
	if ph := op.Progress().Phase; ph != PhaseDone {
		t.Fatalf("phase %v after done, want done", ph)
	}
}

func TestPlanFromPlacementAfterPartialMove(t *testing.T) {
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 1, MarkerInterval: -1})
	// Manually move kg 0 from its owner to instance 3.
	from := rt.Instance("agg", 0)
	if !from.Store().HasGroup(0) {
		t.Skip("kg 0 not at instance 0 in this assignment")
	}
	rt.Instance("agg", 3).Store().InstallGroup(0, from.Store().ExtractGroup(0))
	plan := PlanFromPlacement(rt, "agg", 4, 0)
	// Re-planning to the same parallelism must move kg 0 back home and
	// nothing else.
	if len(plan.Moves) != 1 || plan.Moves[0].KeyGroup != 0 || plan.Moves[0].From != 3 || plan.Moves[0].To != 0 {
		t.Fatalf("plan %+v", plan.Moves)
	}
}
