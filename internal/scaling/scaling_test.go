package scaling

import (
	"testing"

	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/simtime"
	"drrs/internal/workload"
)

func testPlan(t *testing.T) (Plan, *dataflow.Graph) {
	t.Helper()
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	return UniformPlan(g, "agg", 6, simtime.Ms(10)), g
}

func TestUniformPlanShape(t *testing.T) {
	plan, _ := testPlan(t)
	if plan.OldParallelism != 4 || plan.NewParallelism != 6 {
		t.Fatalf("parallelism %d→%d", plan.OldParallelism, plan.NewParallelism)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("no moves")
	}
	for _, m := range plan.Moves {
		if m.From == m.To || m.From >= 4 || m.To >= 6 {
			t.Fatalf("bad move %+v", m)
		}
	}
}

func TestUniformPlanPanicsOnNonKeyed(t *testing.T) {
	_, g := testPlan(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-keyed operator")
		}
	}()
	UniformPlan(g, "sink", 2, 0)
}

func TestNewRoutingMatchesMoves(t *testing.T) {
	plan, g := testPlan(t)
	rt := plan.NewRouting(g.Operator("agg").MaxKeyGroups)
	moved := plan.MovedSet()
	for _, m := range plan.Moves {
		if rt.Owner(m.KeyGroup) != m.To {
			t.Fatalf("kg %d routed to %d, want %d", m.KeyGroup, rt.Owner(m.KeyGroup), m.To)
		}
	}
	for kg := 0; kg < 32; kg++ {
		if !moved[kg] && rt.Owner(kg) >= 4 {
			t.Fatalf("unmoved kg %d routed to new instance %d", kg, rt.Owner(kg))
		}
	}
}

func TestMovesFrom(t *testing.T) {
	plan, _ := testPlan(t)
	var total int
	for idx := 0; idx < plan.OldParallelism; idx++ {
		for _, m := range plan.MovesFrom(idx) {
			if m.From != idx {
				t.Fatalf("MovesFrom(%d) returned move from %d", idx, m.From)
			}
			total++
		}
	}
	if total != len(plan.Moves) {
		t.Fatalf("MovesFrom partition lost moves: %d vs %d", total, len(plan.Moves))
	}
}

func TestBatchRounds(t *testing.T) {
	plan, _ := testPlan(t)
	rounds := BatchRounds(plan, 3)
	var total int
	last := -1
	for _, r := range rounds {
		if len(r) == 0 || len(r) > 3 {
			t.Fatalf("round size %d", len(r))
		}
		for _, kg := range r {
			if kg <= last {
				t.Fatalf("rounds not in key-group order: %d after %d", kg, last)
			}
			last = kg
			total++
		}
	}
	if total != len(plan.Moves) {
		t.Fatalf("rounds cover %d of %d moves", total, len(plan.Moves))
	}
	// Zero batch size = single round.
	if rounds := BatchRounds(plan, 0); len(rounds) != 1 {
		t.Fatalf("zero batch should give one round, got %d", len(rounds))
	}
}

func TestDeployCreatesInstancesAfterSetup(t *testing.T) {
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 1, MarkerInterval: -1})
	plan := UniformPlan(g, "agg", 6, simtime.Ms(50))
	var deployedAt simtime.Time
	var got int
	Deploy(rt, plan, func(added []*engine.Instance) {
		deployedAt = s.Now()
		got = len(added)
	})
	s.Run()
	if got != 2 {
		t.Fatalf("deployed %d instances, want 2", got)
	}
	if deployedAt != simtime.Time(simtime.Ms(50)) {
		t.Fatalf("deployed at %v, want 50ms", deployedAt)
	}
	if len(rt.Instances("agg")) != 6 {
		t.Fatal("instances not registered")
	}
}

func TestMigratorSequenceOrderAndCompletion(t *testing.T) {
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 1, MarkerInterval: -1})
	plan := UniformPlan(g, "agg", 6, 0)
	var allDone bool
	Deploy(rt, plan, func([]*engine.Instance) {
		mig := NewMigrator(rt, plan, func() { allDone = true })
		bySrc := map[int][]int{}
		for _, m := range plan.Moves {
			bySrc[m.From] = append(bySrc[m.From], m.KeyGroup)
		}
		for _, kgs := range bySrc {
			mig.MigrateSequence(kgs, "test", nil)
		}
	})
	s.Run()
	if !allDone {
		t.Fatal("migrator onAll never fired")
	}
	if rt.Scale.UnitsMigrated() != len(plan.Moves) {
		t.Fatalf("migrated %d of %d", rt.Scale.UnitsMigrated(), len(plan.Moves))
	}
	// Every move's group now lives at its destination.
	for _, m := range plan.Moves {
		if !rt.Instance("agg", m.To).Store().HasGroup(m.KeyGroup) {
			t.Fatalf("kg %d missing at destination %d", m.KeyGroup, m.To)
		}
		if rt.Instance("agg", m.From).Store().HasGroup(m.KeyGroup) {
			t.Fatalf("kg %d still at source %d", m.KeyGroup, m.From)
		}
	}
}

func TestPlanFromPlacementAfterPartialMove(t *testing.T) {
	g, _ := workload.Build(workload.Config{AggParallelism: 4, MaxKeyGroups: 32, Duration: simtime.Sec(1)})
	s := simtime.NewScheduler()
	rt := engine.New(s, g, nil, engine.Config{Seed: 1, MarkerInterval: -1})
	// Manually move kg 0 from its owner to instance 3.
	from := rt.Instance("agg", 0)
	if !from.Store().HasGroup(0) {
		t.Skip("kg 0 not at instance 0 in this assignment")
	}
	rt.Instance("agg", 3).Store().InstallGroup(0, from.Store().ExtractGroup(0))
	plan := PlanFromPlacement(rt, "agg", 4, 0)
	// Re-planning to the same parallelism must move kg 0 back home and
	// nothing else.
	if len(plan.Moves) != 1 || plan.Moves[0].KeyGroup != 0 || plan.Moves[0].From != 3 || plan.Moves[0].To != 0 {
		t.Fatalf("plan %+v", plan.Moves)
	}
}
