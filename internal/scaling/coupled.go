package scaling

import (
	"fmt"
	"sort"
	"sync/atomic"

	"drrs/internal/engine"
	"drrs/internal/netsim"
)

// CoupledController implements the generalized OTFS synchronization the paper
// describes in Section II-B: a coupled scaling barrier that serves as both
// routing confirmation and migration trigger, propagated in-band and aligned
// with channel blocking at the scaling operator.
//
// One controller drives one scaling operation as a sequence of rounds, each
// reconfiguring a batch of key groups:
//   - OTFS:        one round covering every move, injected at the sources.
//   - Megaphone:   many sequential rounds (timestamp-driven reconfigurations)
//     injected at the predecessors.
//   - Naive/Subscale-variant division: many rounds launched concurrently —
//     their alignments interfere through blocked channels (the paper's
//     Fig 7a), which is exactly the behaviour being measured.
//
// Rounds are always injected in the same order at every predecessor, which
// keeps concurrent alignment deadlock-free (each channel delivers round r's
// barrier before round r+1's).
type CoupledController struct {
	// Fluid selects per-key-group fluid migration (Fig 1c) over all-at-once
	// (Fig 1b).
	Fluid bool
	// InjectAtSources selects source injection (OTFS) over predecessor
	// injection (Megaphone and division variants).
	InjectAtSources bool
	// Concurrent launches every round immediately instead of waiting for the
	// previous round's migration to finish.
	Concurrent bool
	// Scheduling installs DRRS's Record Scheduling input handler on the
	// scaling instances (the paper's Schedule-only ablation variant). The
	// handler is provided by the caller to avoid an import cycle.
	Scheduling func() engine.InputHandler
	// AnnounceUpfront attributes every round's signal injection to the start
	// of the scaling operation. Megaphone is timestamp-driven: the whole
	// reconfiguration schedule is announced once, and rounds merely take
	// effect as the frontier passes their timestamps — so delay metrics
	// count from the announcement, which is what makes its cumulative
	// propagation delay and dependency overhead dominate the paper's Fig 12.
	AnnounceUpfront bool

	rt      *engine.Runtime
	plan    Plan
	scaleID int64
	mig     *Migrator
	rounds  [][]int // key groups per round
	nextInj int     // next round to inject
	done    func()

	moved    KeyGroupSet
	aligned  map[int]map[int]bool // round → old-instance set aligned
	migDone  map[int]bool         // round → migration complete
	oldCount int
	finished bool
}

// coupledIDs is atomic: controllers are built inside the bench harness's
// parallel runs, and the ID only needs process-wide uniqueness, not ordering.
var coupledIDs atomic.Int64

// NewCoupledController builds a controller over the plan with the given
// round batches (each a slice of key groups). Batches must cover the plan's
// moves exactly.
func NewCoupledController(plan Plan, rounds [][]int) *CoupledController {
	return &CoupledController{
		plan:    plan,
		rounds:  rounds,
		scaleID: coupledIDs.Add(1),
		moved:   plan.Moved(),
		aligned: make(map[int]map[int]bool),
		migDone: make(map[int]bool),
	}
}

// BatchRounds splits the plan's moves into round batches of at most n key
// groups, in key-group order.
func BatchRounds(plan Plan, n int) [][]int {
	kgs := make([]int, 0, len(plan.Moves))
	for _, m := range plan.Moves {
		kgs = append(kgs, m.KeyGroup)
	}
	sort.Ints(kgs)
	if n <= 0 {
		n = len(kgs)
	}
	var out [][]int
	for len(kgs) > 0 {
		k := n
		if k > len(kgs) {
			k = len(kgs)
		}
		out = append(out, kgs[:k])
		kgs = kgs[k:]
	}
	return out
}

func (c *CoupledController) signal(round int) string {
	return fmt.Sprintf("coupled:%d:r%d", c.scaleID, round)
}

// Start implements the mechanism flow: deploy, install hooks, run rounds.
func (c *CoupledController) Start(rt *engine.Runtime, done func()) {
	c.rt = rt
	c.done = done
	c.oldCount = c.plan.OldParallelism
	// Units are assigned to their round's signal for Fig 12b accounting.
	for r, kgs := range c.rounds {
		for _, kg := range kgs {
			rt.Scale.UnitAssigned(kg, c.signal(r))
		}
	}
	c.mig = NewMigrator(rt, c.plan, nil)
	if c.AnnounceUpfront {
		for r := range c.rounds {
			rt.Scale.SignalInjected(c.signal(r), rt.Sched.Now())
		}
	}
	Deploy(rt, c.plan, func(added []*engine.Instance) {
		// Hooks on the scaling operator's instances.
		for _, in := range rt.Instances(c.plan.Operator) {
			in.SetHook(&coupledOpHook{c: c})
			if c.Scheduling != nil {
				in.SetHandler(c.Scheduling())
			}
		}
		// Hooks on direct predecessors (they update routing tables).
		for _, p := range rt.PredecessorInstances(c.plan.Operator) {
			p.SetHook(&coupledPredHook{c: c})
		}
		if c.Concurrent {
			for r := range c.rounds {
				c.injectRound(r)
			}
		} else {
			c.injectRound(0)
		}
	})
}

// injectRound starts round r's synchronization.
func (c *CoupledController) injectRound(r int) {
	if r >= len(c.rounds) {
		return
	}
	c.nextInj = r + 1
	if !c.AnnounceUpfront {
		c.rt.Scale.SignalInjected(c.signal(r), c.rt.Sched.Now())
	}
	barrier := func() *netsim.ScaleBarrier {
		return &netsim.ScaleBarrier{ScaleID: c.scaleID, Round: r}
	}
	if c.InjectAtSources {
		c.rt.Sched.After(c.rt.Cfg.ControlLatency, func() {
			for _, name := range c.rt.Graph.Topological() {
				if c.rt.Graph.Operator(name).Source == nil {
					continue
				}
				for _, src := range c.rt.Instances(name) {
					// Sources that are also direct predecessors update their
					// routing when emitting (they are their own injection
					// point).
					if c.isPred(src) {
						c.applyRouting(src, r)
					}
					src.BroadcastControl(barrier())
				}
			}
		})
	} else {
		c.rt.Sched.After(c.rt.Cfg.ControlLatency, func() {
			for _, p := range c.rt.PredecessorInstances(c.plan.Operator) {
				c.applyRouting(p, r)
				p.BroadcastControl(barrier())
			}
		})
	}
}

func (c *CoupledController) isPred(in *engine.Instance) bool {
	for _, p := range c.rt.Graph.Predecessors(c.plan.Operator) {
		if in.Spec.Name == p {
			return true
		}
	}
	return false
}

// applyRouting repoints round r's key groups in one predecessor's table.
func (c *CoupledController) applyRouting(p *engine.Instance, r int) {
	tbl := p.Routing(c.plan.Operator)
	for _, kg := range c.rounds[r] {
		if m, ok := c.plan.Move(kg); ok {
			tbl.SetOwner(kg, m.To)
		}
	}
}

// oldInstanceAligned is called when an original scaling instance finishes
// alignment for round r; migration for the round starts once every original
// instance aligned.
func (c *CoupledController) oldInstanceAligned(idx, r int) {
	set := c.aligned[r]
	if set == nil {
		set = make(map[int]bool)
		c.aligned[r] = set
	}
	set[idx] = true
	if len(set) < c.oldCount {
		return
	}
	// All original instances aligned: migrate this round's groups.
	sig := c.signal(r)
	onRoundDone := func() {
		c.migDone[r] = true
		c.checkComplete()
		if !c.Concurrent {
			if r+1 < len(c.rounds) {
				c.injectRound(r + 1)
			}
		}
	}
	if c.Fluid {
		// Per-source sequential chains run in parallel across sources.
		bySrc := make(map[int][]int)
		var srcs []int
		for _, kg := range c.rounds[r] {
			mv := c.moveOf(kg)
			if _, seen := bySrc[mv.From]; !seen {
				srcs = append(srcs, mv.From)
			}
			bySrc[mv.From] = append(bySrc[mv.From], kg)
		}
		// Deterministic launch order: map iteration order would perturb event
		// sequencing (and therefore run results) between identical runs.
		sort.Ints(srcs)
		remaining := len(bySrc)
		for _, src := range srcs {
			c.mig.MigrateSequence(bySrc[src], sig, func() {
				remaining--
				if remaining == 0 {
					onRoundDone()
				}
			})
		}
	} else {
		c.mig.MigrateAllAtOnce(c.rounds[r], sig, onRoundDone)
	}
}

func (c *CoupledController) moveOf(kg int) (mv struct{ From, To int }) {
	if m, ok := c.plan.Move(kg); ok {
		return struct{ From, To int }{m.From, m.To}
	}
	panic("scaling: unknown kg")
}

func (c *CoupledController) checkComplete() {
	if c.finished || len(c.migDone) < len(c.rounds) {
		return
	}
	c.finished = true
	c.rt.Scale.MarkScaleEnd(c.rt.Sched.Now())
	// Remove hooks; scaling machinery leaves the runtime.
	for _, in := range c.rt.Instances(c.plan.Operator) {
		in.SetHook(nil)
		if c.Scheduling != nil {
			in.SetHandler(&engine.NativeHandler{})
		}
		in.Wake()
	}
	for _, p := range c.rt.PredecessorInstances(c.plan.Operator) {
		p.SetHook(nil)
	}
	if c.done != nil {
		c.done()
	}
}

// coupledPredHook updates routing tables at predecessor operators when the
// source-injected barrier passes through (predecessor-injected rounds update
// routing at injection instead and the hook only forwards).
type coupledPredHook struct {
	engine.BaseHook
	c *CoupledController
}

func (h *coupledPredHook) OnScaleMessage(in *engine.Instance, m netsim.Message, e *netsim.Edge) bool {
	sb, ok := m.(*netsim.ScaleBarrier)
	if !ok || sb.ScaleID != h.c.scaleID {
		return false
	}
	key := fmt.Sprintf("cp:%d:%d", sb.ScaleID, sb.Round)
	if !in.AlignOn(key, e) {
		return true
	}
	if h.c.InjectAtSources && in.Spec.Source == nil {
		// Routing confirmation rides on the barrier: update before
		// propagating, per the generalized OTFS framework.
		h.c.applyRouting(in, sb.Round)
	}
	in.BroadcastControl(&netsim.ScaleBarrier{ScaleID: sb.ScaleID, Round: sb.Round})
	in.ReleaseAlignment(key)
	return true
}

// coupledOpHook runs on the scaling operator's instances: alignment at the
// originals triggers migration; record processability gates on migrated
// state at the new instances.
type coupledOpHook struct {
	engine.BaseHook
	c *CoupledController
}

func (h *coupledOpHook) OnScaleMessage(in *engine.Instance, m netsim.Message, e *netsim.Edge) bool {
	sb, ok := m.(*netsim.ScaleBarrier)
	if !ok || sb.ScaleID != h.c.scaleID {
		return false
	}
	key := fmt.Sprintf("op:%d:%d", sb.ScaleID, sb.Round)
	if !in.AlignOn(key, e) {
		return true
	}
	in.BroadcastControl(&netsim.ScaleBarrier{ScaleID: sb.ScaleID, Round: sb.Round})
	in.ReleaseAlignment(key)
	if in.Index < h.c.plan.OldParallelism {
		h.c.oldInstanceAligned(in.Index, sb.Round)
	}
	return true
}

func (h *coupledOpHook) Processable(in *engine.Instance, r *netsim.Record, _ *netsim.Edge) bool {
	if !h.c.moved.Has(r.KeyGroup) {
		return true
	}
	// A migrating group's records are processable wherever its state
	// currently lives.
	if in.Store().HasGroup(r.KeyGroup) {
		return true
	}
	// No state here and the routing repair (settleFailure) has re-pointed
	// the group elsewhere: the chunk this record was waiting on will never
	// land. Admit it so ApplyRecord counts the strand, instead of gating the
	// instance on state that isn't coming.
	for _, p := range in.Runtime().PredecessorInstances(in.Spec.Name) {
		if tbl := p.Routing(in.Spec.Name); tbl != nil {
			return tbl.Owner(r.KeyGroup) != in.Index
		}
	}
	return false
}
