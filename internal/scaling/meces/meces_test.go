package meces

import (
	"testing"

	"drrs/internal/scaletest"
	"drrs/internal/simtime"
)

func TestExactlyOnce(t *testing.T) {
	base := scaletest.Run{Workload: scaletest.DefaultWorkload(41)}.Execute()
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(41),
		Mechanism:      &Mechanism{},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
	}.Execute()
	if !scaled.Done {
		t.Fatal("scaling never completed")
	}
	if msg := scaletest.CheckExactlyOnce(base, scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckPlacement(scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckParticipation(scaled); msg != "" {
		t.Fatal(msg)
	}
}

func TestFetchOnDemandHappens(t *testing.T) {
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(42),
		Mechanism:      &Mechanism{},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
		Cluster:        scaletest.SlowMigrationCluster(8 << 20),
	}.Execute()
	if !scaled.Done {
		t.Fatal("scaling never completed")
	}
	m := scaled.RT.Scale
	if m.Counter("meces_demand_fetches") == 0 {
		t.Fatal("no on-demand fetches happened — the mechanism degenerated to pure background migration")
	}
	if m.Counter("meces_transfers") == 0 {
		t.Fatal("no transfers recorded")
	}
}

func TestBackAndForthUnderStragglers(t *testing.T) {
	// With a busy pipeline (records in flight at routing-flip time), the old
	// instances keep seeing records for moved groups and must fetch some
	// sub-units back.
	wl := scaletest.DefaultWorkload(43)
	// Run the aggregator near saturation so channels are deep at flip time:
	// 2 sources × 9000/s over 4 instances at ~200 µs/record ≈ 0.9 utilization.
	wl.RatePerSec = 9000
	wl.CostPerRecord = 200 * simtime.Microsecond
	mech := &Mechanism{SubKeyGroups: 2, BackgroundPause: simtime.Ms(2)}
	scaled := scaletest.Run{
		Workload:       wl,
		Mechanism:      mech,
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
		Cluster:        scaletest.SlowMigrationCluster(4 << 20),
	}.Execute()
	if !scaled.Done {
		t.Fatal("scaling never completed")
	}
	mean, max := mech.FetchStats()
	if mean < 1 {
		t.Fatalf("mean fetches per sub-unit %v < 1", mean)
	}
	if max < 2 {
		t.Fatalf("max fetches per sub-unit %d — no back-and-forth observed", max)
	}
	if scaled.RT.Scale.Counter("meces_refetches") == 0 {
		t.Fatal("no refetches counted")
	}
}

func TestLowestPropagationDelay(t *testing.T) {
	// Meces's single synchronization gives it the paper's lowest cumulative
	// propagation delay (Fig 12a): one signal, first migration almost
	// immediately after the routing flip.
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(44),
		Mechanism:      &Mechanism{},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
	}.Execute()
	prop := scaled.RT.Scale.CumulativePropagationDelay()
	if prop <= 0 {
		t.Fatal("no propagation delay recorded")
	}
	if prop > simtime.Ms(50) {
		t.Fatalf("meces propagation delay %v too high for a single-sync design", prop)
	}
}

func TestName(t *testing.T) {
	if (&Mechanism{}).Name() != "meces" {
		t.Fatal("name")
	}
}
