// Package meces reimplements Meces (Gu et al., USENIX ATC 2022) the way the
// DRRS paper's evaluation does: inside the engine, without the external Redis
// cluster, keeping its two core features — Fetch-on-Demand and Hierarchical
// State Organization (sub-key-groups).
//
// Mechanics: one cheap synchronization flips every predecessor's routing
// table at once (lowest propagation delay in Fig 12a), then the new instance
// fetches state sub-units on demand with priority transfers while a
// background process migrates the remainder. Records that reach the *old*
// instance after its sub-unit was fetched away trigger a fetch-back — the
// back-and-forth behaviour that inflates Meces's suspension time (Fig 13) and
// produced the paper's Q7 statistic of one sub-key-group migrating 6.25× on
// average (up to 46×).
package meces

import (
	"fmt"

	"drrs/internal/cluster"
	"drrs/internal/engine"
	"drrs/internal/netsim"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

// Mechanism is the Meces baseline.
type Mechanism struct {
	// SubKeyGroups is the hierarchical split factor per key group (default 4).
	SubKeyGroups int
	// BackgroundPause is inserted between background sub-unit pushes so
	// on-demand fetches keep priority on the migration path (default 2 ms).
	BackgroundPause simtime.Duration

	rt   *engine.Runtime
	plan scaling.Plan
	done func()

	// loc tracks each migrating sub-unit's current owner instance index;
	// inFlight marks sub-units on the wire.
	loc      map[subUnit]int
	inFlight map[subUnit]bool
	// fetchCount counts transfers per sub-unit (the back-and-forth stat).
	fetchCount map[subUnit]int
	target     map[int]int // kg → plan destination
	kgDone     map[int]bool
	finished   bool
	bgActive   bool
	bgCursor   int
	units      []subUnit
}

type subUnit struct{ kg, sub int }

// Name implements scaling.Mechanism.
func (m *Mechanism) Name() string { return "meces" }

const signal = "meces"

// Begin implements the lifecycle scaling.Mechanism interface through the
// legacy-start adapter: Fetch-on-Demand makes sub-unit locations demand-
// driven, so a cancelled operation still migrates its remaining background
// units to completion rather than stranding sub-key-groups mid-split.
func (m *Mechanism) Begin(rt *engine.Runtime, plan scaling.Plan, done func()) scaling.Operation {
	return scaling.BeginLegacy(m, rt, plan, done)
}

// Start implements scaling.Starter.
func (m *Mechanism) Start(rt *engine.Runtime, plan scaling.Plan, done func()) {
	if m.SubKeyGroups <= 0 {
		m.SubKeyGroups = 4
	}
	if m.BackgroundPause <= 0 {
		m.BackgroundPause = simtime.Ms(2)
	}
	m.rt = rt
	m.plan = plan
	m.done = done
	m.loc = make(map[subUnit]int)
	m.inFlight = make(map[subUnit]bool)
	m.fetchCount = make(map[subUnit]int)
	m.target = make(map[int]int)
	m.kgDone = make(map[int]bool)
	for _, mv := range plan.Moves {
		m.target[mv.KeyGroup] = mv.To
		rt.Scale.UnitAssigned(mv.KeyGroup, signal)
		for s := 0; s < m.SubKeyGroups; s++ {
			u := subUnit{kg: mv.KeyGroup, sub: s}
			m.loc[u] = mv.From
			m.units = append(m.units, u)
		}
	}
	scaling.Deploy(rt, plan, func(added []*engine.Instance) {
		for _, in := range rt.Instances(plan.Operator) {
			in.SetHook(&hook{m: m})
		}
		// Single synchronization: flip every predecessor's routing at once.
		rt.Scale.SignalInjected(signal, rt.Sched.Now())
		rt.Sched.After(rt.Cfg.ControlLatency, func() {
			for _, p := range rt.PredecessorInstances(plan.Operator) {
				tbl := p.Routing(plan.Operator)
				for _, mv := range plan.Moves {
					tbl.SetOwner(mv.KeyGroup, mv.To)
				}
			}
			// New instances own (initially empty) shells of their incoming
			// groups so partially fetched groups can serve state.
			for _, mv := range plan.Moves {
				rt.Instance(plan.Operator, mv.To).Store().OwnGroup(mv.KeyGroup)
			}
			m.ensureBackground()
		})
	})
}

// transfer moves one sub-unit to instance dst and invokes after installation.
func (m *Mechanism) transfer(u subUnit, dst int) {
	src := m.loc[u]
	if src == dst || m.inFlight[u] {
		return
	}
	m.inFlight[u] = true
	m.fetchCount[u]++
	m.rt.Scale.AddCounter("meces_transfers", 1)
	if m.fetchCount[u] > 1 {
		m.rt.Scale.AddCounter("meces_refetches", 1)
	}
	from := m.rt.Instance(m.plan.Operator, src)
	to := m.rt.Instance(m.plan.Operator, dst)
	m.rt.Sched.After(m.rt.Cfg.ControlLatency, func() {
		g := from.Store().ExtractSubUnit(u.kg, u.sub, m.SubKeyGroups)
		m.rt.Scale.FirstMigration(signal, m.rt.Sched.Now())
		bytes := 128 // sub-unit framing overhead
		if g != nil {
			bytes += g.Bytes
		}
		m.rt.Cluster.TransferChecked(from.Endpoint(), to.Endpoint(), bytes, func() {
			to.Store().OwnGroup(u.kg)
			to.Store().InstallGroup(u.kg, g)
			m.loc[u] = dst
			m.inFlight[u] = false
			m.checkUnit(u.kg)
			// Wake every instance, not just the endpoints: a third instance
			// can be suspended on this same sub-unit (its records were routed
			// there under an older wave's plan), and without a wake it parks
			// those records forever. Wakes coalesce, so this is cheap.
			m.wakeAll()
			// A fetch-back may have regressed progress; make sure the
			// background pusher is running to re-migrate it.
			m.ensureBackground()
		}, func(err error) {
			// Destination unreachable: the sub-unit merges back into its
			// source shell and stays where it was. The background pusher keeps
			// retrying; once the node restarts (or the group is re-planned
			// away), the push converges.
			if cluster.IsTransient(err) {
				m.rt.Scale.AddCounter("meces_fails_transient", 1)
			} else {
				m.rt.Scale.AddCounter("meces_fails_fatal", 1)
			}
			from.Store().OwnGroup(u.kg)
			from.Store().InstallGroup(u.kg, g)
			m.inFlight[u] = false
			// Every waiter re-evaluates: the demanding side re-issues its
			// fetch (the retry converges once the fault heals or recovery
			// re-places the source), and third-party waiters unpark.
			m.wakeAll()
			m.ensureBackground()
		})
	})
}

// wakeAll wakes every instance of the scaled operator in index order.
func (m *Mechanism) wakeAll() {
	for _, in := range m.rt.Instances(m.plan.Operator) {
		in.Wake()
	}
}

// checkUnit marks kg migrated once all its sub-units have reached the plan
// target, and finishes the scaling when everything has settled.
func (m *Mechanism) checkUnit(kg int) {
	if m.finished {
		return // metrics are frozen; post-completion wobble is cleanup only
	}
	if m.kgDone[kg] {
		// A fetch-back can regress a finished group; background migration
		// will push it again.
		for s := 0; s < m.SubKeyGroups; s++ {
			if m.loc[subUnit{kg: kg, sub: s}] != m.target[kg] {
				delete(m.kgDone, kg)
				return
			}
		}
		return
	}
	for s := 0; s < m.SubKeyGroups; s++ {
		if m.loc[subUnit{kg: kg, sub: s}] != m.target[kg] {
			return
		}
	}
	m.kgDone[kg] = true
	m.rt.Scale.UnitMigrated(kg, m.rt.Sched.Now())
	m.maybeFinish()
}

func (m *Mechanism) maybeFinish() {
	if m.finished || len(m.kgDone) < len(m.target) {
		return
	}
	for u, l := range m.loc {
		if l != m.target[u.kg] || m.inFlight[u] {
			return
		}
	}
	m.finished = true
	m.rt.Scale.MarkScaleEnd(m.rt.Sched.Now())
	// Unlike barrier-synchronized mechanisms, Meces cannot tear its ownership
	// machinery down at this point: records for moved groups may still be
	// queued or in flight toward the *old* instances, and serving them
	// requires further fetch-backs. The hooks and (empty) group shells stay
	// installed; the background pusher keeps re-settling any post-completion
	// ping-pong. This mirrors the real system, where state ownership lives in
	// the external store for the job's lifetime.
	if m.done != nil {
		m.done()
	}
}

// ensureBackground (re)starts the background pusher if it is not running.
// It keeps running after completion too: post-completion fetch-backs must be
// pushed back to their plan targets.
func (m *Mechanism) ensureBackground() {
	if m.bgActive {
		return
	}
	m.bgActive = true
	m.rt.Sched.After(m.BackgroundPause, m.backgroundStep)
}

// backgroundStep pushes the next sub-unit that still lives away from its
// target, pacing pushes so on-demand fetches dominate the migration path.
func (m *Mechanism) backgroundStep() {
	m.bgActive = false
	for scanned := 0; scanned < len(m.units); scanned++ {
		u := m.units[m.bgCursor%len(m.units)]
		m.bgCursor++
		if m.loc[u] != m.target[u.kg] && !m.inFlight[u] {
			m.rt.Scale.AddCounter("meces_background", 1)
			m.transfer(u, m.target[u.kg])
			break
		}
	}
	if !m.settled() {
		m.ensureBackground()
	} else {
		m.maybeFinish()
	}
}

func (m *Mechanism) settled() bool {
	for u, l := range m.loc {
		if l != m.target[u.kg] || m.inFlight[u] {
			return false
		}
	}
	return true
}

func (m *Mechanism) moveOf(kg int) struct{ From, To int } {
	for _, mv := range m.plan.Moves {
		if mv.KeyGroup == kg {
			return struct{ From, To int }{mv.From, mv.To}
		}
	}
	panic(fmt.Sprintf("meces: kg %d not in plan", kg))
}

// FetchStats reports the back-and-forth statistics the paper quotes for Q7:
// the mean and max number of times a sub-key-group was transferred.
func (m *Mechanism) FetchStats() (mean float64, max int) {
	if len(m.fetchCount) == 0 {
		return 0, 0
	}
	var sum int
	for _, c := range m.fetchCount {
		sum += c
		if c > max {
			max = c
		}
	}
	return float64(sum) / float64(len(m.fetchCount)), max
}

// hook gates record processing on sub-unit locality and issues on-demand
// (and fetch-back) transfers.
type hook struct {
	engine.BaseHook
	m *Mechanism
}

func (h *hook) Processable(in *engine.Instance, r *netsim.Record, _ *netsim.Edge) bool {
	if _, isMoved := h.m.target[r.KeyGroup]; !isMoved {
		return true
	}
	u := subUnit{kg: r.KeyGroup, sub: state.SubUnitOf(r.Key, h.m.SubKeyGroups)}
	if h.m.loc[u] == in.Index && !h.m.inFlight[u] {
		return true
	}
	// Fetch on demand toward whoever needs the record — including the old
	// instance (fetch-back), which is where the back-and-forth cost comes
	// from.
	if !h.m.inFlight[u] {
		h.m.rt.Scale.AddCounter("meces_demand_fetches", 1)
		h.m.transfer(u, in.Index)
	}
	return false
}
