// Package megaphone reimplements Megaphone (Hoffmann et al., VLDB 2019) the
// way the DRRS paper's evaluation does: predecessor-injected scaling signals
// (matching Megaphone's separated control plane) driving a timestamp-ordered
// sequence of small reconfigurations, each migrating one batch of key groups
// with full routing-update + alignment synchronization (the paper's Naive
// Division strategy).
//
// The behavioural signature the paper measures: suspension grows slowly
// (each round blocks little), but cumulative propagation delay and average
// dependency overhead dwarf the other mechanisms because every batch waits
// for all earlier batches, stretching the scaling duration by up to 7.24×
// DRRS's.
package megaphone

import (
	"drrs/internal/engine"
	"drrs/internal/scaling"
)

// Mechanism is the Megaphone baseline.
type Mechanism struct {
	// BatchKGs is the number of key groups reconfigured per round
	// (Megaphone's migration "bin" granularity). Default 1: the original
	// system's finest, fully fluid configuration.
	BatchKGs int
}

// Name implements scaling.Mechanism.
func (m *Mechanism) Name() string { return "megaphone" }

// Begin implements the lifecycle scaling.Mechanism interface through the
// legacy-start adapter. Megaphone announces its whole reconfiguration
// schedule up front, so a Cancel is recorded but the announced rounds run to
// completion.
func (m *Mechanism) Begin(rt *engine.Runtime, plan scaling.Plan, done func()) scaling.Operation {
	return scaling.BeginLegacy(m, rt, plan, done)
}

// Start implements scaling.Starter.
func (m *Mechanism) Start(rt *engine.Runtime, plan scaling.Plan, done func()) {
	batch := m.BatchKGs
	if batch <= 0 {
		batch = 1
	}
	c := scaling.NewCoupledController(plan, scaling.BatchRounds(plan, batch))
	c.Fluid = true
	c.InjectAtSources = false // predecessor injection
	c.Concurrent = false      // timestamp-driven: strictly sequential rounds
	c.AnnounceUpfront = true  // the full schedule is announced at scale start
	c.Start(rt, done)
}
