package megaphone

import (
	"testing"

	"drrs/internal/scaletest"
	"drrs/internal/scaling/otfs"
	"drrs/internal/simtime"
)

func TestExactlyOnce(t *testing.T) {
	base := scaletest.Run{Workload: scaletest.DefaultWorkload(31)}.Execute()
	scaled := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(31),
		Mechanism:      &Mechanism{BatchKGs: 2},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
	}.Execute()
	if !scaled.Done {
		t.Fatal("scaling never completed")
	}
	if msg := scaletest.CheckExactlyOnce(base, scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckPlacement(scaled); msg != "" {
		t.Fatal(msg)
	}
	if msg := scaletest.CheckParticipation(scaled); msg != "" {
		t.Fatal(msg)
	}
}

func TestSequentialRoundsStretchDependency(t *testing.T) {
	// Megaphone's signature (paper Fig 12): many sequential rounds mean the
	// later units wait for all earlier rounds, so cumulative propagation
	// delay and average dependency overhead dwarf a single-round OTFS run on
	// the same workload.
	mega := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(32),
		Mechanism:      &Mechanism{BatchKGs: 1},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
		Cluster:        scaletest.SlowMigrationCluster(8 << 20),
	}.Execute()
	single := scaletest.Run{
		Workload:       scaletest.DefaultWorkload(32),
		Mechanism:      &otfs.Mechanism{Fluid: true},
		ScaleAt:        simtime.Sec(1),
		NewParallelism: 6,
		Cluster:        scaletest.SlowMigrationCluster(8 << 20),
	}.Execute()
	if !mega.Done || !single.Done {
		t.Fatal("runs did not complete")
	}
	mp := mega.RT.Scale.CumulativePropagationDelay()
	sp := single.RT.Scale.CumulativePropagationDelay()
	if mp <= sp {
		t.Fatalf("megaphone cumulative propagation %v should exceed single-round %v", mp, sp)
	}
	md := mega.RT.Scale.AvgDependencyOverhead()
	sd := single.RT.Scale.AvgDependencyOverhead()
	if md <= sd {
		t.Fatalf("megaphone dependency overhead %v should exceed single-round %v", md, sd)
	}
	if mega.RT.Scale.MigrationDuration() <= single.RT.Scale.MigrationDuration() {
		t.Fatalf("megaphone scaling duration %v should exceed single-round %v",
			mega.RT.Scale.MigrationDuration(), single.RT.Scale.MigrationDuration())
	}
}

func TestBatchSizeTradeoff(t *testing.T) {
	// Bigger batches → fewer rounds → shorter total scaling duration.
	dur := func(batch int) simtime.Duration {
		res := scaletest.Run{
			Workload:       scaletest.DefaultWorkload(33),
			Mechanism:      &Mechanism{BatchKGs: batch},
			ScaleAt:        simtime.Sec(1),
			NewParallelism: 6,
		}.Execute()
		if !res.Done {
			t.Fatalf("batch=%d never completed", batch)
		}
		return res.RT.Scale.MigrationDuration()
	}
	small := dur(1)
	large := dur(16)
	if large >= small {
		t.Fatalf("batch=16 duration %v should beat batch=1 %v", large, small)
	}
}

func TestName(t *testing.T) {
	if (&Mechanism{}).Name() != "megaphone" {
		t.Fatal("name")
	}
}
