// Package chaos implements the deterministic chaos search: randomized fault
// plans (faults.Generate) run against the registered benchmark scenarios,
// with invariant oracles evaluated after every run and a delta-debugging
// shrinker that reduces a failing plan to a minimal spec string.
//
// Everything is deterministic. The fault plan for a (scenario, seed) pair is
// drawn from the named simtime RNG stream "chaos/<scenario>", the runs are
// the same deterministic simulations the golden digests pin, and every run
// is executed twice with the digests compared — so a reported violation
// replays from its seed and spec string alone, with no stored artifacts.
//
// The oracles:
//
//   - conservation: every key group of every keyed operator has a live
//     holder (beyond losses the injector explicitly accounted), and every
//     crash-wiped group is accounted by the recovery flow (recovered, lost,
//     or relocated — the wipe identity).
//   - accounting: records emitted by the sources equal records processed by
//     the keyed operator plus records explicitly counted lost or still queued
//     at live instances; no records parked at dead instances; the sink saw
//     no duplicate sequence numbers (exactly-once).
//   - routing: after a completed run, every upstream routing table entry
//     points at a live instance that holds the group.
//   - liveness: when the plan leaves no permanent disruption, every launched
//     scaling operation completes (or is superseded by a re-plan).
//   - determinism: two runs of the identical case produce byte-identical
//     outcome digests.
package chaos

import (
	"fmt"

	"drrs/internal/bench"
	"drrs/internal/dataflow"
	"drrs/internal/engine"
)

// Oracle names, as they appear in Violation.Oracle.
const (
	OracleConservation = "conservation"
	OracleAccounting   = "accounting"
	OracleRouting      = "routing"
	OracleLiveness     = "liveness"
	OracleDeterminism  = "determinism"
)

// Finding is one oracle violation observed on one run.
type Finding struct {
	Oracle string
	Detail string
}

// Probe evaluates the state-level oracles (conservation, accounting,
// routing) against the still-live runtime through Scenario.Inspect — the
// Outcome alone doesn't carry per-instance stores or routing tables. The
// liveness and determinism oracles run afterwards on Outcome values alone.
type Probe struct {
	filled   bool
	findings []Finding
}

func (p *Probe) add(oracle, detail string) {
	p.findings = append(p.findings, Finding{Oracle: oracle, Detail: detail})
}

// fill is the Scenario.Inspect hook: read-only against the runtime.
func (p *Probe) fill(rt *engine.Runtime, out *bench.Outcome) {
	p.filled = true
	p.wipeIdentity(out)
	for _, op := range rt.Graph.Topological() {
		spec := rt.Graph.Operator(op)
		if spec == nil || !spec.KeyedInput {
			continue
		}
		p.conservation(rt, out, op, spec)
		if out.Done {
			// Mid-flight state (an in-flight wave at end of run) legitimately
			// leaves routing in transition; only quiesced runs are checked.
			p.routing(rt, op, spec)
		}
	}
	p.accounting(rt, out)
}

// wipeIdentity: every key group a crash destroyed must be accounted for by
// the recovery flow — restored from checkpoint, written off as lost, or
// relocated to a new live home by a superseding migration. This is the oracle
// that catches a recovery path that silently stops running: the per-group
// conservation scan below can be fooled by a re-plan installing empty shells
// at the new owners, but nothing else increments the recovery counters.
func (p *Probe) wipeIdentity(out *bench.Outcome) {
	fs := out.Faults
	if fs == nil {
		return
	}
	if acc := fs.RecoveredGroups + fs.LostGroups + fs.RelocatedGroups; fs.WipedGroups != acc {
		p.add(OracleConservation, fmt.Sprintf(
			"crashes wiped %d key groups but recovery accounted %d (recovered %d + lost %d + relocated %d)",
			fs.WipedGroups, acc, fs.RecoveredGroups, fs.LostGroups, fs.RelocatedGroups))
	}
}

// conservation: every key group has at least one live holder, beyond what
// the injector explicitly wrote off as lost. Extra stale copies at live
// instances are deliberately NOT flagged: fetch-on-demand mechanisms (meces)
// legitimately leave state behind at the source — the harmful condition is
// records routed to two different holders, which the routing oracle owns.
func (p *Probe) conservation(rt *engine.Runtime, out *bench.Outcome, op string, spec *dataflow.OperatorSpec) {
	instances := rt.Instances(op)
	var missing []int
	for kg := 0; kg < spec.MaxKeyGroups; kg++ {
		holders := 0
		for _, in := range instances {
			if !in.Dead() && in.Store().HasGroup(kg) {
				holders++
			}
		}
		if holders == 0 {
			missing = append(missing, kg)
		}
	}
	accountedLost := 0
	if out.Faults != nil {
		accountedLost = out.Faults.LostGroups
	}
	if len(missing) > accountedLost {
		p.add(OracleConservation, fmt.Sprintf(
			"op %s: %d key groups with no live holder (e.g. kg %v), only %d accounted lost",
			op, len(missing), head(missing), accountedLost))
	}
}

// routing: for every key group, all upstream routing tables agree on one
// owner, and that owner is a live instance holding the group.
func (p *Probe) routing(rt *engine.Runtime, op string, spec *dataflow.OperatorSpec) {
	preds := rt.PredecessorInstances(op)
	var stale, split []int
	for kg := 0; kg < spec.MaxKeyGroups; kg++ {
		owner, seen := -1, false
		for _, pre := range preds {
			tbl := pre.Routing(op)
			if tbl == nil {
				continue
			}
			o := tbl.Owner(kg)
			if seen && o != owner {
				split = append(split, kg)
			}
			owner, seen = o, true
		}
		if !seen {
			continue
		}
		if in := rt.Instance(op, owner); in == nil || in.Dead() || !in.Store().HasGroup(kg) {
			stale = append(stale, kg)
		}
	}
	if len(split) > 0 {
		p.add(OracleRouting, fmt.Sprintf(
			"op %s: upstream tables disagree on the owner of %d key groups (e.g. kg %v)",
			op, len(split), head(split)))
	}
	if len(stale) > 0 {
		p.add(OracleRouting, fmt.Sprintf(
			"op %s: %d key groups routed to a dead or stateless owner (e.g. kg %v)",
			op, len(stale), head(stale)))
	}
}

// accounting: emitted = delivered + explicitly lost, and exactly-once at the
// sink. Applicable when the graph has exactly one keyed operator fed
// directly by sources (the chaos substrate's shape); richer pipelines filter
// records mid-stream, where per-operator deltas aren't conserved.
func (p *Probe) accounting(rt *engine.Runtime, out *bench.Outcome) {
	var keyed []string
	for _, op := range rt.Graph.Topological() {
		if spec := rt.Graph.Operator(op); spec != nil && spec.KeyedInput {
			keyed = append(keyed, op)
		}
	}
	if len(keyed) != 1 {
		return
	}
	op := keyed[0]
	for _, pre := range rt.Graph.Predecessors(op) {
		if s := rt.Graph.Operator(pre); s == nil || s.Source == nil {
			return
		}
	}
	var delivered, lost uint64
	queued, deadQueued := 0, 0
	var detail string
	for _, in := range rt.Instances(op) {
		delivered += in.Processed
		if l := in.LostRecords(); l > 0 {
			lost += l
			detail += fmt.Sprintf(" %s:-%d", in.Name(), l)
		}
		// Records still parked on input channels (a wave that straddles a
		// permanent fault can back-pressure past the horizon) are observable
		// in-flight data, not loss. QueuedTotal includes the odd control
		// message, so the check is one-sided: even crediting every queued
		// message as a record, emissions must not exceed the accounted total.
		// The credit only covers LIVE instances: a dead instance will never
		// drain its queue and nothing re-routes it — records parked at a
		// corpse at end of run are losses the harness failed to count.
		q := 0
		for _, e := range in.InEdges() {
			q += e.QueuedTotal()
		}
		if in.Dead() {
			deadQueued += q
		} else {
			queued += q
		}
	}
	if deadQueued > 0 {
		p.add(OracleAccounting, fmt.Sprintf(
			"op %s: %d messages parked at dead instances with no recovery draining them",
			op, deadQueued))
	}
	emitted := uint64(out.Throughput.Total())
	if emitted > delivered+lost+uint64(queued)+uint64(deadQueued) {
		p.add(OracleAccounting, fmt.Sprintf(
			"op %s: emitted %d > delivered %d + lost %d + queued %d (%d records vanished)%s",
			op, emitted, delivered, lost, queued+deadQueued,
			emitted-delivered-lost-uint64(queued)-uint64(deadQueued), detail))
	}
	if delivered+lost > emitted {
		p.add(OracleAccounting, fmt.Sprintf(
			"op %s: delivered %d + lost %d exceeds emitted %d (records duplicated)%s",
			op, delivered, lost, emitted, detail))
	}
	dups := 0
	rt.EachInstance(func(in *engine.Instance) {
		if cs, ok := in.Logic().(*engine.CollectSink); ok {
			dups += cs.Duplicates()
		}
	})
	if dups > 0 {
		p.add(OracleAccounting, fmt.Sprintf("sink saw %d duplicate sequence numbers", dups))
	}
}

// head renders the first few entries of a key-group list.
func head(xs []int) []int {
	if len(xs) > 4 {
		return xs[:4]
	}
	return xs
}
