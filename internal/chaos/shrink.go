package chaos

import (
	"drrs/internal/faults"
	"drrs/internal/simtime"
)

// ShrinkViolation minimizes a violation's fault plan by delta debugging:
// greedily drop faults one at a time to a fixpoint, then simplify the
// survivors (round onsets to 500 ms, drop restarts). Every candidate is
// accepted only if re-executing the case still reproduces the same oracle
// violation; budget caps the re-executions, so the worst case degrades to
// "no shrink", never to a false repro. The returned violation's Spec string
// plus its seed replays the minimized failure exactly.
func ShrinkViolation(v Violation, workers, budget int) Violation {
	if budget <= 0 {
		budget = 24
	}
	runs := 0
	reproduces := func(p faults.Plan) bool {
		if runs >= budget {
			return false
		}
		runs++
		fs := execCase(v.Scenario, v.Mechanism, v.Seed, p, v.Oracle == OracleDeterminism, workers)
		return hasOracle(fs, v.Oracle)
	}

	cur := clonePlanVal(v.Plan)
	// Phase 1: drop one fault at a time until no single drop reproduces.
	for changed := true; changed && len(cur.Faults) > 1; {
		changed = false
		for i := range cur.Faults {
			cand := cur
			cand.Faults = dropFault(cur.Faults, i)
			if reproduces(cand) {
				cur = cand
				changed = true
				break
			}
		}
	}
	// Phase 2: simplify each surviving fault.
	for i := range cur.Faults {
		if r := cur.Faults[i].At % (500 * simtime.Millisecond); r != 0 {
			cand := withFault(cur, i, func(f *faults.Fault) { f.At -= r })
			if reproduces(cand) {
				cur = cand
			}
		}
		if cur.Faults[i].Restart > 0 {
			cand := withFault(cur, i, func(f *faults.Fault) { f.Restart = 0 })
			if reproduces(cand) {
				cur = cand
			}
		}
	}

	v.Plan = cur
	v.Spec = specOf(cur)
	v.Shrunk = true
	v.ShrinkRuns = runs
	return v
}

// dropFault returns a copy of fs without element i.
func dropFault(fs []faults.Fault, i int) []faults.Fault {
	out := make([]faults.Fault, 0, len(fs)-1)
	out = append(out, fs[:i]...)
	return append(out, fs[i+1:]...)
}

// withFault returns a copy of the plan with mutate applied to fault i.
func withFault(p faults.Plan, i int, mutate func(*faults.Fault)) faults.Plan {
	cp := clonePlanVal(p)
	mutate(&cp.Faults[i])
	return cp
}
