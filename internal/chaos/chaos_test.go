package chaos

import (
	"strings"
	"testing"

	"drrs/internal/faults"
	"drrs/internal/simtime"
)

// crashHeavyGen aims the fuzzer at the operator's home rack (the node-loss
// scenario packs the job onto r0), so generated crashes reliably hit nodes
// that hold keyed state. An untargeted search still works — it just spends
// most of its faults on empty nodes.
func crashHeavyGen() *faults.GenConfig {
	return &faults.GenConfig{
		Nodes:       []string{"r0n0", "r0n1", "r0n2", "r0n3"},
		MinFaults:   4,
		MaxFaults:   6,
		CrashWeight: 3, StraggleWeight: 1, UplinkWeight: 1,
	}
}

// TestSearchCleanAtHead: the CI-shaped search — generated fault plans over
// the chaos trio, every mechanism, each case run twice — finds no oracle
// violations at HEAD. This is the baseline the broken-build test below is
// measured against.
func TestSearchCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos search simulates minutes of virtual time")
	}
	res := Search(Config{Seeds: []int64{1, 2}})
	if res.Cases != 18 || res.Runs != 36 {
		t.Fatalf("cases=%d runs=%d, want 18/36 (trio × 3 mechanisms × 2 seeds × pair)", res.Cases, res.Runs)
	}
	for _, v := range res.Violations {
		t.Errorf("[%s/%s seed=%d] %s: %s\n  repro: %s",
			v.Scenario, v.Mechanism, v.Seed, v.Oracle, v.Detail, v.Repro())
	}
}

// TestSearchTargetedCleanAtHead raises the bar: crash-heavy plans aimed at
// the state-holding rack, across all three mechanisms. Recovery, transfer
// retry, re-planning, and the accounting counters all get exercised hard —
// and must stay violation-free.
func TestSearchTargetedCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos search simulates minutes of virtual time")
	}
	res := Search(Config{
		Scenarios: []string{"node-loss-mid-migrate"},
		Seeds:     []int64{1, 2, 3},
		Gen:       crashHeavyGen(),
	})
	for _, v := range res.Violations {
		t.Errorf("[%s/%s seed=%d] %s: %s\n  repro: %s",
			v.Scenario, v.Mechanism, v.Seed, v.Oracle, v.Detail, v.Repro())
	}
}

// TestBrokenRecoveryCaughtAndShrunk is the harness-of-the-harness acceptance
// test: with the recovery re-plan disabled behind the test hook, the search
// must catch the regression on every seed, shrink a failing plan to at most
// three faults, and the shrunk spec string must reproduce the violation from
// its seed alone (replayed through faults.ParseSpec, exactly as a developer
// pasting the repro line would).
func TestBrokenRecoveryCaughtAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos search simulates minutes of virtual time")
	}
	prev := faults.SetDisableRecovery(true)
	defer faults.SetDisableRecovery(prev)
	seeds := []int64{1, 2, 3}
	res := Search(Config{
		Scenarios:  []string{"node-loss-mid-migrate"},
		Mechanisms: []string{"drrs"},
		Seeds:      seeds,
		Gen:        crashHeavyGen(),
		Shrink:     true,
	})
	bySeed := map[int64]int{}
	for _, v := range res.Violations {
		bySeed[v.Seed]++
	}
	for _, s := range seeds {
		if bySeed[s] == 0 {
			t.Errorf("seed %d: broken recovery not caught", s)
		}
	}
	var shrunk *Violation
	for i := range res.Violations {
		v := &res.Violations[i]
		if !v.Shrunk {
			continue
		}
		if len(v.Plan.Faults) > 3 {
			t.Errorf("seed %d: shrunk plan still has %d faults (%s)", v.Seed, len(v.Plan.Faults), v.Spec)
		}
		if v.ShrinkRuns <= 0 {
			t.Errorf("seed %d: shrunk without spending runs", v.Seed)
		}
		if shrunk == nil {
			shrunk = v
		}
	}
	if shrunk == nil {
		t.Fatal("no violation was shrunk")
	}
	// The repro line names the exact flags; the spec string must parse and
	// reproduce the same oracle violation.
	if !strings.Contains(shrunk.Repro(), shrunk.Spec) {
		t.Fatalf("repro %q does not carry the spec", shrunk.Repro())
	}
	p, err := faults.ParseSpec(shrunk.Spec)
	if err != nil {
		t.Fatalf("shrunk spec %q does not parse: %v", shrunk.Spec, err)
	}
	fs := execCase(shrunk.Scenario, shrunk.Mechanism, shrunk.Seed, *p,
		shrunk.Oracle == OracleDeterminism, 0)
	if !hasOracle(fs, shrunk.Oracle) {
		t.Fatalf("replaying %q at seed %d did not reproduce the %s violation (got %v)",
			shrunk.Spec, shrunk.Seed, shrunk.Oracle, fs)
	}
	t.Logf("shrunk to %d fault(s) in %d runs: %s", len(shrunk.Plan.Faults), shrunk.ShrinkRuns, shrunk.Repro())
}

// TestSearchRequiresSeeds pins the no-silent-default contract.
func TestSearchRequiresSeeds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Search without seeds must panic")
		}
	}()
	Search(Config{})
}

// BenchmarkChaosPlanOverhead measures the per-run bookkeeping the chaos mode
// adds on top of the simulation itself: drawing the plan from the seed,
// cloning it for the run pair, and rendering + re-parsing the repro spec.
// Gated in CI via benchgate so the search stays generation-bound on the
// simulator, not on its own scaffolding.
func BenchmarkChaosPlanOverhead(b *testing.B) {
	cfg := faults.GenConfig{
		Nodes:   []string{"r0n0", "r0n1", "r0n2", "r0n3"},
		Racks:   []string{"r0", "r1", "r2", "r3"},
		Retries: 2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := faults.Generate(simtime.NewRNG(int64(i), "chaos/bench"), cfg)
		pair := [2]*faults.Plan{clonePlan(plan), clonePlan(plan)}
		spec := plan.Spec()
		if _, err := faults.ParseSpec(spec); err != nil {
			b.Fatal(err)
		}
		_ = pair
	}
}
