package chaos

import (
	"fmt"

	"drrs/internal/bench"
	"drrs/internal/faults"
	"drrs/internal/simtime"
)

// Config bounds one chaos search. Zero values fall back to the CI defaults:
// the three chaos scenarios, the three paper mechanisms, generated plans
// with two transfer retries, no shrinking.
type Config struct {
	// Scenarios are registered scenario names (default: the chaos trio).
	Scenarios []string
	// Mechanisms are rescaling mechanisms (default: drrs, meces, megaphone).
	Mechanisms []string
	// Seeds drive both the workload and the generated fault plan; required.
	Seeds []int64
	// Gen overrides the generator bounds. Nil derives targets (schedulable
	// nodes, racks) from each scenario's own cluster and keeps defaults.
	Gen *faults.GenConfig
	// Retries arms transfer retry on generated plans (default 2; negative
	// disables).
	Retries int
	// Workers bounds the parallel runner (<= 0 selects GOMAXPROCS).
	Workers int
	// Shrink minimizes the plan of each violating case before reporting.
	Shrink bool
	// ShrinkBudget caps re-executions per shrink (default 24).
	ShrinkBudget int
}

func (cfg *Config) fillDefaults() {
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = []string{"node-loss-mid-migrate", "straggler-rack", "flaky-uplink"}
	}
	if len(cfg.Mechanisms) == 0 {
		cfg.Mechanisms = []string{"drrs", "meces", "megaphone"}
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.ShrinkBudget <= 0 {
		cfg.ShrinkBudget = 24
	}
}

// Violation is one oracle failure, self-reproducing from Seed + Spec.
type Violation struct {
	Scenario  string
	Mechanism string
	Seed      int64
	Oracle    string
	Detail    string
	// Plan is the fault plan in force (shrunk when Shrunk); Spec is its
	// canonical spec string — faults.ParseSpec(Spec) replays it exactly.
	Plan faults.Plan `json:"-"`
	Spec string
	// Shrunk marks a minimized plan; ShrinkRuns counts the re-executions
	// the shrinker spent.
	Shrunk     bool
	ShrinkRuns int `json:",omitempty"`
}

// Repro renders the CLI invocation that replays the violation.
func (v Violation) Repro() string {
	return fmt.Sprintf("drrs-bench -workload %s -mechanisms %s -seed %d -faults %q",
		v.Scenario, v.Mechanism, v.Seed, v.Spec)
}

// Result summarizes a search. Scenarios and Mechanisms echo the resolved
// bounds (after defaulting), so callers can report what actually ran.
type Result struct {
	Scenarios  []string
	Mechanisms []string
	Cases      int
	Runs       int
	Violations []Violation
}

// Search fans (scenario × mechanism × seed) cases — each executed twice for
// the determinism oracle — over the parallel runner and evaluates every
// oracle on each case. With cfg.Shrink, the first violation of each failing
// case is minimized before reporting.
func Search(cfg Config) Result {
	cfg.fillDefaults()
	if len(cfg.Seeds) == 0 {
		panic("chaos: Search needs at least one seed")
	}
	type searchCase struct {
		scenario, mech string
		seed           int64
		plan           faults.Plan
		probes         [2]*Probe
		specIdx        [2]int
	}
	var cases []searchCase
	var specs []bench.RunSpec
	for _, scn := range cfg.Scenarios {
		gen := cfg.genConfig(scn)
		for _, seed := range cfg.Seeds {
			plan := faults.Generate(simtime.NewRNG(seed, "chaos/"+scn), gen)
			for _, mech := range cfg.Mechanisms {
				c := searchCase{scenario: scn, mech: mech, seed: seed, plan: plan}
				for r := 0; r < 2; r++ {
					c.probes[r] = &Probe{}
					c.specIdx[r] = len(specs)
					specs = append(specs, caseSpec(scn, mech, seed, clonePlan(plan), c.probes[r]))
				}
				cases = append(cases, c)
			}
		}
	}
	outs := bench.RunParallel(specs, cfg.Workers)
	res := Result{Scenarios: cfg.Scenarios, Mechanisms: cfg.Mechanisms, Cases: len(cases), Runs: len(specs)}
	for i := range cases {
		c := &cases[i]
		if !c.probes[0].filled || !c.probes[1].filled {
			// The Inspect hook is the state oracles' only window into the
			// runtime; a run that never invoked it yields vacuously-passing
			// oracles, which must never be mistaken for a clean search.
			panic("chaos: Inspect hook never ran")
		}
		o0, o1 := outs[c.specIdx[0]], outs[c.specIdx[1]]
		fs := append([]Finding(nil), c.probes[0].findings...)
		fs = append(fs, liveness(c.plan, o0)...)
		fs = append(fs, determinism(o0, o1)...)
		for j, f := range fs {
			v := Violation{
				Scenario: c.scenario, Mechanism: c.mech, Seed: c.seed,
				Oracle: f.Oracle, Detail: f.Detail,
				Plan: clonePlanVal(c.plan), Spec: specOf(c.plan),
			}
			if cfg.Shrink && j == 0 {
				v = ShrinkViolation(v, cfg.Workers, cfg.ShrinkBudget)
			}
			res.Violations = append(res.Violations, v)
		}
	}
	return res
}

// genConfig resolves the generator bounds for one scenario: the explicit
// override when set (deriving targets if it names none), else scenario-
// derived targets with default bounds plus the search's retry knob.
func (cfg *Config) genConfig(scenario string) faults.GenConfig {
	g := faults.GenConfig{Retries: cfg.Retries}
	if cfg.Gen != nil {
		g = *cfg.Gen
		if g.Retries == 0 {
			g.Retries = cfg.Retries
		}
	}
	if len(g.Nodes) == 0 && len(g.Racks) == 0 {
		g.Nodes, g.Racks = deriveTargets(scenario)
	}
	return g
}

// deriveTargets builds the scenario's cluster on a throwaway scheduler and
// collects its schedulable nodes and racks as fault targets.
func deriveTargets(scenario string) (nodes, racks []string) {
	sc := bench.ScenarioByName(scenario, 1)
	if sc.Cluster == nil {
		return nil, nil
	}
	cl := sc.Cluster(simtime.NewScheduler())
	for _, n := range cl.Nodes() {
		if nd := cl.Node(n); nd != nil && !nd.Unschedulable {
			nodes = append(nodes, n)
		}
	}
	return nodes, cl.Racks()
}

// caseSpec assembles one run: the registered scenario with its fault plan
// replaced by the generated one and the probe's oracle hook installed.
func caseSpec(scenario, mech string, seed int64, plan *faults.Plan, p *Probe) bench.RunSpec {
	sc := bench.ScenarioByName(scenario, seed)
	sc.Faults = plan
	sc.Inspect = p.fill
	return bench.RunSpec{Scenario: sc, Mechanism: mech}
}

// execCase re-runs one case (a pair when the determinism oracle is under
// test) and returns its findings — the shrinker's probe.
func execCase(scenario, mech string, seed int64, plan faults.Plan, pair bool, workers int) []Finding {
	n := 1
	if pair {
		n = 2
	}
	probes := make([]*Probe, n)
	specs := make([]bench.RunSpec, n)
	for r := 0; r < n; r++ {
		probes[r] = &Probe{}
		specs[r] = caseSpec(scenario, mech, seed, clonePlan(plan), probes[r])
	}
	outs := bench.RunParallel(specs, workers)
	if !probes[0].filled {
		panic("chaos: Inspect hook never ran")
	}
	fs := append([]Finding(nil), probes[0].findings...)
	fs = append(fs, liveness(plan, outs[0])...)
	if pair {
		fs = append(fs, determinism(outs[0], outs[1])...)
	}
	return fs
}

// liveness: when the plan leaves no permanent disruption, every launched
// scaling operation must have completed or been superseded by a re-plan.
// Deliberately decision-scoped rather than Outcome.Done: a superseded wave
// may legitimately linger past the horizon (Megaphone cannot cancel announced
// rounds, and its frontier-driven reconfigurations starve once the sources
// stop emitting) — the controller has already re-planned around it, so the
// lingering wave is not a stuck operation.
func liveness(plan faults.Plan, o bench.Outcome) []Finding {
	if permanentDisruption(plan) {
		return nil
	}
	stuck := 0
	for _, d := range o.Decisions {
		if d.Launched && !d.Done && !d.Superseded {
			stuck++
		}
	}
	if stuck == 0 {
		return nil
	}
	return []Finding{{OracleLiveness, fmt.Sprintf(
		"%d launched operations neither completed nor superseded (all faults heal; run done=%v, end %v)",
		stuck, o.Done, o.EndAt)}}
}

// permanentDisruption reports whether the plan leaves the cluster degraded
// forever: a crash that never restarts, or an uplink fault that never heals.
// (A straggler is slow but alive — progress is still guaranteed.) Liveness
// is vacuous under permanent disruption.
func permanentDisruption(plan faults.Plan) bool {
	for _, f := range plan.Faults {
		switch f.Kind {
		case faults.Crash:
			if f.Restart <= 0 {
				return true
			}
		case faults.Uplink:
			if f.Heal <= 0 {
				return true
			}
		}
	}
	return false
}

// determinism: two runs of the identical case must digest identically.
func determinism(a, b bench.Outcome) []Finding {
	da, db := bench.OutcomeDigest(a), bench.OutcomeDigest(b)
	if da == db {
		return nil
	}
	return []Finding{{OracleDeterminism, fmt.Sprintf(
		"digest 0x%016x vs 0x%016x across identical runs", da, db)}}
}

// hasOracle reports whether findings contain the named oracle.
func hasOracle(fs []Finding, oracle string) bool {
	for _, f := range fs {
		if f.Oracle == oracle {
			return true
		}
	}
	return false
}

// clonePlan deep-copies a plan onto the heap: each parallel run owns its
// plan (the injector normalizes defaults in place).
func clonePlan(p faults.Plan) *faults.Plan {
	cp := clonePlanVal(p)
	return &cp
}

func clonePlanVal(p faults.Plan) faults.Plan {
	p.Faults = append([]faults.Fault(nil), p.Faults...)
	return p
}

func specOf(p faults.Plan) string { return p.Spec() }
