package engine

import (
	"testing"

	"drrs/internal/dataflow"
	"drrs/internal/simtime"
)

// BenchmarkStateCheckpoint measures one out-of-band snapshot sweep plus the
// recovery-path lookups over populated keyed stores — the recurring cost the
// fault layer adds to a run at every checkpoint cadence. The sweep deep-copies
// every live keyed group, so this is the number to watch when changing the
// slab store's Snapshot path.
func BenchmarkStateCheckpoint(b *testing.B) {
	sink := NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 2,
		Source: fixedRateSource(2000, simtime.Ms(1), 512),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "agg", Parallelism: 4, KeyedInput: true, MaxKeyGroups: 32,
		CostPerRecord: simtime.Ms(0.1),
		NewLogic:      func() dataflow.Logic { return &KeyedReduceLogic{EmitUpdates: true} },
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "sink", Parallelism: 1,
		NewLogic: func() dataflow.Logic { return sink },
	})
	g.Connect("src", "agg", dataflow.ExchangeKeyed)
	g.Connect("agg", "sink", dataflow.ExchangeRebalance)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 7, MarkerInterval: -1})
	rt.Start()
	rt.RunFor(simtime.Sec(5))

	ck := rt.StartStateCheckpoints(simtime.Sec(1))
	ck.Stop() // drive take() by hand below; no timer churn in the loop
	name := rt.Instance("agg", 0).Name()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ck.take()
		for kg := 0; kg < 32; kg++ {
			if _, ok := ck.Lookup("agg", name, kg); !ok {
				b.Fatalf("kg %d in no snapshot", kg)
			}
		}
	}
}
