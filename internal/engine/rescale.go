package engine

import (
	"fmt"

	"drrs/internal/dataflow"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// AddInstance creates instance idx of an already-running operator and wires
// it to every predecessor and successor instance. The new instance owns no
// key groups and receives no traffic until predecessors' routing tables are
// updated — exactly the state a scaling mechanism starts from after physical
// deployment (the paper's Deploy Updater, B0).
//
// Returns the new instance. idx must equal the operator's current instance
// count (instances are appended).
func (rt *Runtime) AddInstance(op string, idx int) *Instance {
	spec := rt.Graph.Operator(op)
	if spec == nil {
		panic(fmt.Sprintf("engine: AddInstance on unknown operator %s", op))
	}
	if idx != len(rt.instances[op]) {
		panic(fmt.Sprintf("engine: AddInstance %s[%d] out of order (have %d)", op, idx, len(rt.instances[op])))
	}
	in := rt.newInstance(spec, idx)
	rt.instances[op] = append(rt.instances[op], in)

	// Wire from every predecessor instance.
	for _, se := range rt.Graph.Inputs(op) {
		for _, from := range rt.instances[se.From] {
			rt.wire(from, in, se)
		}
	}
	// Wire toward every successor instance, and copy routing tables so the
	// new instance routes like its siblings.
	for _, se := range rt.Graph.Outputs(op) {
		for _, to := range rt.instances[se.To] {
			rt.wire(in, to, se)
		}
		if se.Exchange == dataflow.ExchangeKeyed {
			if sib := rt.Instance(op, 0); sib != nil && sib.routing[se.To] != nil {
				in.routing[se.To] = sib.routing[se.To].Clone()
			}
		}
	}
	// Seed watermarks on the new instance's inputs with the predecessors'
	// current output watermark view so event-time processing can make
	// progress; affected data-driven messages are duplicated to both streams
	// per the paper's compatibility rule.
	for _, e := range in.ins {
		in.SeedWatermark(e, -1)
	}
	return in
}

// ConnectInstances wires a dedicated auxiliary channel between two live
// instances (DRRS's re-route path from the scaling-out instance to the
// scaling-in instance). The channel is registered as an input of dst so
// handlers poll it like any other channel. Its watermark is seeded
// "transparent" (effectively +inf) so it never holds back the receiver's
// aligned watermark — rerouted records are Ep-epoch stragglers, not a
// watermarked stream of their own.
func (rt *Runtime) ConnectInstances(src, dst *Instance) *netsim.Edge {
	cfg := rt.edgeConfig()
	cfg.Latency = rt.Cluster.LinkLatency(src.Endpoint(), dst.Endpoint(), cfg.Latency)
	e := netsim.NewEdge(rt.Sched, src.Endpoint(), dst.Endpoint(), cfg)
	e.Auxiliary = true
	e.SetReceiver(func(*netsim.Edge) { dst.Wake() })
	e.SetSenderWake(func() { src.Wake() })
	dst.addInput(e)
	dst.SeedWatermark(e, simtime.Time(1)<<62)
	return e
}

// DetachInput removes an auxiliary input channel from dst (scaling cleanup,
// so alignment counts return to normal after the scaling completes).
func (rt *Runtime) DetachInput(dst *Instance, e *netsim.Edge) {
	for i, have := range dst.ins {
		if have == e {
			dst.ins = append(dst.ins[:i], dst.ins[i+1:]...)
			delete(dst.wmPer, e)
			delete(dst.blockedEdges, e)
			return
		}
	}
}

// PredecessorInstances returns the live instances of every direct
// predecessor operator of op.
func (rt *Runtime) PredecessorInstances(op string) []*Instance {
	var out []*Instance
	for _, p := range rt.Graph.Predecessors(op) {
		out = append(out, rt.instances[p]...)
	}
	return out
}
