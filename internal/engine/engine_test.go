package engine

import (
	"testing"

	"drrs/internal/dataflow"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// fixedRateSource ingests n records at the given period, cycling keys over
// keySpace, then emits a final high watermark.
func fixedRateSource(n int, period simtime.Duration, keySpace uint64) dataflow.SourceFunc {
	return func(ctx dataflow.SourceContext) {
		var emit func(i int)
		emit = func(i int) {
			if i >= n {
				ctx.EmitWatermark(simtime.Time(1 << 50))
				return
			}
			ctx.Ingest(&netsim.Record{
				Key:       uint64(i)%keySpace + 1,
				EventTime: ctx.Now(),
				Size:      64,
				Value:     1.0,
			})
			if i%10 == 9 {
				ctx.EmitWatermark(ctx.Now())
			}
			ctx.After(period, func() { emit(i + 1) })
		}
		emit(0)
	}
}

// buildSimpleJob returns a src → agg(keyed) → sink job and the sink logic.
func buildSimpleJob(t *testing.T, srcP, aggP int, n int) (*Runtime, *CollectSink) {
	t.Helper()
	sink := NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: srcP,
		Source: fixedRateSource(n, simtime.Ms(1), 16),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "agg", Parallelism: aggP, KeyedInput: true, MaxKeyGroups: 32,
		CostPerRecord: simtime.Ms(0.1),
		NewLogic:      func() dataflow.Logic { return &KeyedReduceLogic{EmitUpdates: true} },
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "sink", Parallelism: 1,
		NewLogic: func() dataflow.Logic { return sink },
	})
	g.Connect("src", "agg", dataflow.ExchangeKeyed)
	g.Connect("agg", "sink", dataflow.ExchangeRebalance)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 7})
	return rt, sink
}

func TestPipelineDeliversAllRecords(t *testing.T) {
	rt, sink := buildSimpleJob(t, 2, 3, 200)
	rt.Start()
	rt.RunFor(simtime.Sec(10))
	// 2 sources × 200 records each.
	if sink.Records != 400 {
		t.Fatalf("sink saw %d records, want 400", sink.Records)
	}
	if d := sink.Duplicates(); d != 0 {
		t.Fatalf("%d duplicated seqs", d)
	}
}

func TestKeyedRoutingPartitionsByKeyGroup(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 3, 300)
	rt.Start()
	rt.RunFor(simtime.Sec(10))
	// Each agg instance must only hold keys of its own key groups.
	for _, in := range rt.Instances("agg") {
		st := in.Store()
		for _, kg := range st.Groups() {
			g := st.Group(kg)
			for _, k := range g.Keys() {
				if got := kgOf(k, 32); got != kg {
					t.Fatalf("key %d in group %d, hashes to %d", k, kg, got)
				}
			}
		}
	}
	// All three instances should have processed something.
	for _, in := range rt.Instances("agg") {
		if in.Processed == 0 {
			t.Fatalf("instance %s processed nothing", in.Name())
		}
	}
}

func kgOf(k uint64, maxKG int) int {
	return int(stateKeyGroupOf(k, maxKG))
}

// stateKeyGroupOf avoids importing state twice in tests.
func stateKeyGroupOf(k uint64, maxKG int) int {
	h := k
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(maxKG))
}

func TestLatencyMarkersMeasured(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 2, 500)
	rt.Start()
	rt.RunFor(simtime.Sec(5))
	if rt.Latency.Series.Len() == 0 {
		t.Fatal("no latency samples")
	}
	st := rt.Latency.Series.StatsIn(0, simtime.Time(simtime.Sec(5)))
	if st.Mean <= 0 {
		t.Fatalf("mean latency %v", st.Mean)
	}
	if st.Mean > 100 {
		t.Fatalf("unloaded pipeline mean latency %vms is implausible", st.Mean)
	}
}

func TestThroughputTracked(t *testing.T) {
	rt, _ := buildSimpleJob(t, 2, 2, 300)
	rt.Start()
	rt.RunFor(simtime.Sec(5))
	if rt.Throughput.Total() != 600 {
		t.Fatalf("throughput total %d", rt.Throughput.Total())
	}
}

func TestKeyedReduceAggregation(t *testing.T) {
	rt, sink := buildSimpleJob(t, 1, 2, 160)
	rt.Start()
	rt.RunFor(simtime.Sec(10))
	// 160 records over 16 keys → 10 each; running sum emits 1..10 per key;
	// the sink sums the emitted updates: 55 per key.
	for k := uint64(1); k <= 16; k++ {
		if sink.ByKey[k] != 55 {
			t.Fatalf("key %d sum %v, want 55", k, sink.ByKey[k])
		}
	}
}

func TestWatermarkAlignmentMultiInput(t *testing.T) {
	// Two sources with different watermark paces: the keyed operator's
	// watermark must follow the minimum.
	var wms []simtime.Time
	g := dataflow.NewGraph()
	mk := func(name string, wmEvery simtime.Duration) {
		g.AddOperator(&dataflow.OperatorSpec{
			Name: name, Parallelism: 1,
			Source: func(ctx dataflow.SourceContext) {
				var tick func(i int)
				tick = func(i int) {
					if i >= 20 {
						return
					}
					ctx.Ingest(&netsim.Record{Key: uint64(i + 1), EventTime: ctx.Now(), Size: 64})
					ctx.EmitWatermark(ctx.Now())
					ctx.After(wmEvery, func() { tick(i + 1) })
				}
				tick(0)
			},
		})
	}
	mk("fast", simtime.Ms(10))
	mk("slow", simtime.Ms(50))
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "agg", Parallelism: 1, KeyedInput: true, MaxKeyGroups: 8,
		NewLogic: func() dataflow.Logic {
			return &watermarkProbe{out: &wms}
		},
	})
	g.Connect("fast", "agg", dataflow.ExchangeKeyed)
	g.Connect("slow", "agg", dataflow.ExchangeKeyed)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 1, MarkerInterval: -1})
	rt.Start()
	rt.RunFor(simtime.Sec(3))
	if len(wms) == 0 {
		t.Fatal("no watermarks observed")
	}
	for i := 1; i < len(wms); i++ {
		if wms[i] <= wms[i-1] {
			t.Fatalf("watermarks not strictly increasing: %v", wms)
		}
	}
	// The aligned watermark can never exceed the slow source's last emission
	// (20 ticks × 50ms = ~1s).
	last := wms[len(wms)-1]
	if last > simtime.Time(simtime.Sec(1)).Add(simtime.Ms(1)) {
		t.Fatalf("aligned watermark %v ran ahead of the slow source", last)
	}
}

type watermarkProbe struct {
	out *[]simtime.Time
}

func (p *watermarkProbe) OnRecord(dataflow.OpContext, *netsim.Record) {}
func (p *watermarkProbe) OnWatermark(_ dataflow.OpContext, wm simtime.Time) {
	*p.out = append(*p.out, wm)
}

func TestSlidingWindowFires(t *testing.T) {
	sink := NewCollectSink()
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: func(ctx dataflow.SourceContext) {
			var tick func(i int)
			tick = func(i int) {
				if i >= 100 {
					ctx.EmitWatermark(simtime.Time(1 << 50))
					return
				}
				ctx.Ingest(&netsim.Record{
					Key: uint64(i%4) + 1, EventTime: ctx.Now(),
					Size: 64, Value: float64(i),
				})
				ctx.EmitWatermark(ctx.Now() - simtime.Time(simtime.Ms(1)))
				ctx.After(simtime.Ms(10), func() { tick(i + 1) })
			}
			tick(0)
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "win", Parallelism: 2, KeyedInput: true, MaxKeyGroups: 8,
		CostPerRecord: simtime.Ms(0.01),
		NewLogic: func() dataflow.Logic {
			return &SlidingWindowLogic{Size: simtime.Ms(200), Slide: simtime.Ms(100)}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "sink", Parallelism: 1,
		NewLogic: func() dataflow.Logic { return sink },
	})
	g.Connect("src", "win", dataflow.ExchangeKeyed)
	g.Connect("win", "sink", dataflow.ExchangeRebalance)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 3, MarkerInterval: -1})
	rt.Start()
	rt.RunFor(simtime.Sec(5))
	if sink.Records == 0 {
		t.Fatal("no window emissions")
	}
	// Every key should have produced window outputs.
	for k := uint64(1); k <= 4; k++ {
		if sink.CountByKey[k] == 0 {
			t.Fatalf("key %d fired no windows", k)
		}
	}
	// Window state should be trimmed, not grow forever.
	total := rt.TotalStateBytes("win")
	if total > 100*24*2 {
		t.Fatalf("window state not trimmed: %d bytes", total)
	}
}

func TestCheckpointCompletes(t *testing.T) {
	rt, _ := buildSimpleJob(t, 2, 3, 400)
	rt.Start()
	var doneAt simtime.Time
	var doneID int64
	rt.Sched.After(simtime.Ms(50), func() {
		id := rt.TriggerCheckpoint(func(id int64) {
			doneAt = rt.Sched.Now()
			doneID = id
		})
		if id != 1 {
			t.Fatalf("ckpt id %d", id)
		}
	})
	rt.RunFor(simtime.Sec(10))
	if doneID != 1 || doneAt == 0 {
		t.Fatal("checkpoint never completed")
	}
	if rt.CheckpointRunning() {
		t.Fatal("checkpoint still marked running")
	}
	// A second checkpoint should work after the first.
	var second bool
	rt.TriggerCheckpoint(func(int64) { second = true })
	rt.RunFor(simtime.Sec(5))
	if !second {
		t.Fatal("second checkpoint never completed")
	}
}

func TestCheckpointRejectsConcurrent(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 2, 2000)
	rt.Start()
	rt.Sched.After(simtime.Ms(10), func() {
		if rt.TriggerCheckpoint(nil) == -1 {
			t.Fatal("first checkpoint refused")
		}
		if rt.TriggerCheckpoint(nil) != -1 {
			t.Fatal("concurrent checkpoint accepted")
		}
	})
	rt.RunFor(simtime.Ms(20))
}

func TestBackpressurePropagatesToSource(t *testing.T) {
	// A very slow sink with small buffers must throttle the source.
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: fixedRateSource(5000, simtime.Ms(0.1), 8),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "slow", Parallelism: 1, KeyedInput: true, MaxKeyGroups: 8,
		CostPerRecord: simtime.Ms(5), // 200/s max against 10000/s offered
		NewLogic:      func() dataflow.Logic { return &KeyedReduceLogic{} },
	})
	g.Connect("src", "slow", dataflow.ExchangeKeyed)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 5, EdgeOutCap: 16, EdgeInCap: 16, MarkerInterval: -1})
	rt.Start()
	rt.RunFor(simtime.Sec(2))
	src := rt.Instance("src", 0)
	if src.BacklogLen() < 1000 {
		t.Fatalf("backlog %d; backpressure did not throttle the source", src.BacklogLen())
	}
	slow := rt.Instance("slow", 0)
	if slow.Processed > 500 {
		t.Fatalf("slow op processed %d in 2s at 5ms/record", slow.Processed)
	}
}

func TestAddInstanceWiring(t *testing.T) {
	rt, _ := buildSimpleJob(t, 2, 3, 100)
	rt.Start()
	rt.RunFor(simtime.Ms(50))
	in := rt.AddInstance("agg", 3)
	if in.Name() != "agg[3]" {
		t.Fatalf("name %s", in.Name())
	}
	// Inputs: one edge from each of 2 source instances.
	if len(in.InEdges()) != 2 {
		t.Fatalf("inputs %d", len(in.InEdges()))
	}
	// Outputs: one edge to the sink.
	if len(in.OutEdges("sink")) != 1 {
		t.Fatalf("outputs %d", len(in.OutEdges("sink")))
	}
	// Each source instance now has 4 agg out-edges.
	for _, src := range rt.Instances("src") {
		if len(src.OutEdges("agg")) != 4 {
			t.Fatalf("src out edges %d", len(src.OutEdges("agg")))
		}
	}
	// New instance owns no key groups and receives no traffic yet.
	if len(in.Store().Groups()) != 0 {
		t.Fatal("new instance should own nothing")
	}
	rt.RunFor(simtime.Sec(5))
	if in.Processed != 0 {
		t.Fatalf("unrouted instance processed %d records", in.Processed)
	}
}

func TestAddInstanceOutOfOrderPanics(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.AddInstance("agg", 5)
}

// gateHook blocks records of chosen key groups, for suspension testing.
type gateHook struct {
	BaseHook
	blocked map[int]bool
}

func (h *gateHook) Processable(_ *Instance, r *netsim.Record, _ *netsim.Edge) bool {
	return !h.blocked[r.KeyGroup]
}

func TestSuspensionAccountingViaHook(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 1, 200)
	agg := rt.Instance("agg", 0)
	hook := &gateHook{blocked: map[int]bool{}}
	for kg := 0; kg < 32; kg++ {
		hook.blocked[kg] = true // block everything
	}
	agg.SetHook(hook)
	rt.Start()
	rt.RunFor(simtime.Sec(1))
	if agg.Processed != 0 {
		t.Fatalf("blocked instance processed %d", agg.Processed)
	}
	if !agg.Suspended() {
		t.Fatal("instance should be suspended")
	}
	// Unblock: processing resumes and suspension closes.
	hook.blocked = map[int]bool{}
	agg.Wake()
	rt.RunFor(simtime.Sec(5))
	if agg.Processed == 0 {
		t.Fatal("instance never resumed")
	}
	rt.Scale.CloseAllSuspensions(rt.Sched.Now())
	if rt.Scale.CumulativeSuspension() < simtime.Ms(900) {
		t.Fatalf("suspension %v, want ≥900ms", rt.Scale.CumulativeSuspension())
	}
}

func TestRedirectPending(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 2, 10)
	src := rt.Instance("src", 0)
	e0 := src.OutEdges("agg")[0]
	e1 := src.OutEdges("agg")[1]
	// Manufacture pending emissions directly.
	src.pending = []pendingEmit{
		{edge: e0, msg: &netsim.Record{Key: 1, KeyGroup: 3}},
		{edge: e0, msg: &netsim.Record{Key: 2, KeyGroup: 4}},
	}
	n := src.RedirectPending(e0, e1, func(r *netsim.Record) bool { return r.KeyGroup == 3 })
	if n != 1 {
		t.Fatalf("redirected %d", n)
	}
	if src.pending[0].edge != e1 || src.pending[1].edge != e0 {
		t.Fatal("wrong pending retargeting")
	}
}

func TestHaltFreezesInstance(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 1, 500)
	agg := rt.Instance("agg", 0)
	rt.Start()
	rt.RunFor(simtime.Ms(50))
	before := agg.Processed
	agg.Halted = true
	rt.RunFor(simtime.Ms(200))
	if agg.Processed != before {
		t.Fatalf("halted instance processed %d more records", agg.Processed-before)
	}
	agg.Halted = false
	agg.Wake()
	rt.RunFor(simtime.Sec(5))
	if agg.Processed <= before {
		t.Fatal("instance never resumed after halt")
	}
}

func TestMarkerBypassesWindowing(t *testing.T) {
	// Markers must reach the sink even though the window operator only emits
	// on watermark firing.
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: fixedRateSource(50, simtime.Ms(5), 4),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "win", Parallelism: 1, KeyedInput: true, MaxKeyGroups: 8,
		NewLogic: func() dataflow.Logic {
			return &SlidingWindowLogic{Size: simtime.Sec(100), Slide: simtime.Sec(50)}
		},
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "sink", Parallelism: 1,
		NewLogic: func() dataflow.Logic { return NewCollectSink() },
	})
	g.Connect("src", "win", dataflow.ExchangeKeyed)
	g.Connect("win", "sink", dataflow.ExchangeRebalance)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 9, MarkerInterval: simtime.Ms(20)})
	var markers int
	rt.OnMarkerSink = func(*netsim.Record) { markers++ }
	rt.Start()
	rt.RunFor(simtime.Sec(1))
	if markers == 0 {
		t.Fatal("no markers reached the sink through the window operator")
	}
	if rt.Latency.Series.Len() != markers {
		t.Fatalf("latency samples %d != markers %d", rt.Latency.Series.Len(), markers)
	}
}

func TestDebugStringContainsInstances(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 2, 10)
	s := rt.DebugString()
	for _, want := range []string{"src[0]", "agg[0]", "agg[1]", "sink[0]"} {
		if !contains(s, want) {
			t.Fatalf("debug string missing %s:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
