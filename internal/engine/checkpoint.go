package engine

import (
	"drrs/internal/simtime"
	"drrs/internal/state"
)

// stateSnapshot is one periodic out-of-band copy of every live instance's
// keyed state (plus progress counters), keyed by instance name.
type stateSnapshot struct {
	at        simtime.Time
	order     []string // instance names in EachInstance order
	ops       map[string]string
	groups    map[string]map[int]*state.Group
	processed map[string]uint64
}

// StateCheckpointer takes periodic deep snapshots of all keyed state for
// fault recovery. It is deliberately out-of-band: unlike the engine's aligned
// checkpoints (TriggerCheckpoint), these snapshots cost no simulated time —
// the price of recovery is paid where it belongs, as replay time when a
// crashed instance restores (faults.Injector charges it via ChargeBusy).
//
// The two most recent snapshots are retained. One is not enough: a key group
// extracted for migration at the instant of the newest snapshot lives in
// neither store, and a snapshot taken while an instance is dead records
// nothing for it — the older snapshot covers both windows.
//
// Only started when a fault plan is active, so unfaulted runs schedule no
// snapshot events and stay byte-identical.
type StateCheckpointer struct {
	rt    *Runtime
	every simtime.Duration
	snaps [2]*stateSnapshot // [0] newest
	timer simtime.Timer
	taken int
}

// StartStateCheckpoints begins periodic state snapshots on the given cadence,
// taking the first one immediately so recovery always has a baseline. Call
// Stop at teardown or the rearming timer keeps the scheduler alive forever.
func (rt *Runtime) StartStateCheckpoints(every simtime.Duration) *StateCheckpointer {
	if every <= 0 {
		every = 2 * simtime.Second
	}
	ck := &StateCheckpointer{rt: rt, every: every}
	ck.take()
	ck.arm()
	return ck
}

func (ck *StateCheckpointer) arm() {
	ck.timer = ck.rt.Sched.After(ck.every, func() {
		ck.take()
		ck.arm()
	})
}

// Stop cancels the snapshot timer.
func (ck *StateCheckpointer) Stop() { ck.timer.Cancel() }

// Snapshots reports how many snapshots have been taken.
func (ck *StateCheckpointer) Snapshots() int { return ck.taken }

func (ck *StateCheckpointer) take() {
	snap := &stateSnapshot{
		at:        ck.rt.Sched.Now(),
		ops:       make(map[string]string),
		groups:    make(map[string]map[int]*state.Group),
		processed: make(map[string]uint64),
	}
	ck.rt.EachInstance(func(in *Instance) {
		if in.Dead() {
			// A corpse's empty store says nothing; leaving it out lets
			// lookups fall through to the older snapshot.
			return
		}
		name := in.Name()
		snap.order = append(snap.order, name)
		snap.ops[name] = in.Spec.Name
		snap.processed[name] = in.Processed
		if in.Spec.KeyedInput {
			snap.groups[name] = in.store.Snapshot()
		}
	})
	ck.snaps[1] = ck.snaps[0]
	ck.snaps[0] = snap
	ck.taken++
}

// Lookup finds the most recent snapshot copy of key group kg for the named
// instance of operator op. When the instance never held kg at a snapshot
// instant (the group migrated in after the newest snapshot), the search
// widens to the operator's other instances in deterministic order — the
// group's pre-migration host had it. The returned group is the checkpoint's
// copy; callers must Clone before installing it into a live store.
func (ck *StateCheckpointer) Lookup(op, name string, kg int) (*state.Group, bool) {
	for _, snap := range ck.snaps {
		if snap == nil {
			continue
		}
		if g, ok := snap.groups[name][kg]; ok {
			return g, true
		}
	}
	for _, snap := range ck.snaps {
		if snap == nil {
			continue
		}
		for _, other := range snap.order {
			if snap.ops[other] != op || other == name {
				continue
			}
			if g, ok := snap.groups[other][kg]; ok {
				return g, true
			}
		}
	}
	return nil, false
}

// ProcessedAt reports the instance's processed-record count at the most
// recent snapshot covering it (false when no snapshot saw the instance).
func (ck *StateCheckpointer) ProcessedAt(name string) (uint64, bool) {
	for _, snap := range ck.snaps {
		if snap == nil {
			continue
		}
		if n, ok := snap.processed[name]; ok {
			return n, true
		}
	}
	return 0, false
}
