package engine

import (
	"sort"

	"drrs/internal/dataflow"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

// This file is the operator-logic library: keyed running aggregation,
// event-time sliding windows, a windowed two-stream join, and collector
// sinks. These are the building blocks of the NEXMark, Twitch, and custom
// workloads.
//
// All of it runs on the typed record payload (Record.Value) and the state
// backend's float64 fast lane, so the steady-state record path performs no
// interface boxing.

// recordAllocator resolves how a logic draws output records: from the
// engine's recycling pool when the context provides one (Instance does),
// falling back to plain allocation so logic stays usable against test fakes.
// Resolved once per operator bind — not per emit.
func recordAllocator(ctx dataflow.OpContext) func() *netsim.Record {
	if p, ok := ctx.(interface{ NewRecord() *netsim.Record }); ok {
		return p.NewRecord
	}
	return func() *netsim.Record { return &netsim.Record{} }
}

// recEmitter is the embeddable half of every emitting logic: it caches the
// resolved allocator so the capability check runs once per operator bind
// (dataflow.Binder), with a lazy fallback for plain test-fake contexts.
type recEmitter struct {
	newRec func() *netsim.Record
}

// Bind implements dataflow.Binder.
func (e *recEmitter) Bind(ctx dataflow.OpContext) { e.newRec = recordAllocator(ctx) }

func (e *recEmitter) rec(ctx dataflow.OpContext) *netsim.Record {
	if e.newRec == nil {
		e.Bind(ctx) // unbound context (plain test fake): resolve lazily, once
	}
	return e.newRec()
}

// KeyedReduceLogic maintains a per-key float64 accumulator and emits the
// updated value per record. StateBytes is the accounted size per key
// (the custom workload's "state size" knob).
type KeyedReduceLogic struct {
	// Reduce folds a record's value into the accumulator (default: sum of
	// Record.Value).
	Reduce func(acc float64, r *netsim.Record) float64
	// StateBytes is the per-key accounted state size (default 64).
	StateBytes int
	// EmitUpdates controls whether each update is emitted downstream.
	EmitUpdates bool

	recEmitter
}

// OnRecord implements dataflow.Logic.
func (l *KeyedReduceLogic) OnRecord(ctx dataflow.OpContext, r *netsim.Record) {
	st := ctx.State()
	acc, _ := st.GetF64(r.Key)
	if l.Reduce != nil {
		acc = l.Reduce(acc, r)
	} else {
		acc += r.Value
	}
	sb := l.StateBytes
	if sb <= 0 {
		sb = 64
	}
	st.PutF64(r.Key, acc, sb)
	if l.EmitUpdates {
		out := l.rec(ctx)
		out.Key = r.Key
		out.EventTime = r.EventTime
		out.IngestTime = r.IngestTime
		out.Seq = r.Seq
		out.Size = 32
		out.Value = acc
		ctx.Emit(out)
	}
}

// OnWatermark implements dataflow.Logic.
func (l *KeyedReduceLogic) OnWatermark(dataflow.OpContext, simtime.Time) {}

// windowPane is the per-key buffer of one sliding-window state value.
type windowPane struct {
	// Values holds (eventTime, value) pairs pending in open windows.
	Values []paneEntry
}

type paneEntry struct {
	At simtime.Time
	V  float64
}

// SlidingWindowLogic is an event-time sliding-window aggregate: per key it
// buffers values and, on watermark advance, fires every window whose end has
// passed, emitting one record per (key, window). Window state is keyed state
// and migrates with the key group, which is what gives NEXMark Q7/Q8 their
// large migrating state.
type SlidingWindowLogic struct {
	Size  simtime.Duration
	Slide simtime.Duration
	// Agg folds the pane values of a fired window (default max).
	Agg func(vals []float64) float64
	// BytesPerEntry accounts state growth (default 24).
	BytesPerEntry int

	lastFired simtime.Time
	inited    bool

	recEmitter
	// Reusable scratch buffers keep window firing allocation-free in steady
	// state (one fire touches every key of every local group).
	keyScratch []uint64
	valScratch []float64
}

// OnRecord implements dataflow.Logic.
func (l *SlidingWindowLogic) OnRecord(ctx dataflow.OpContext, r *netsim.Record) {
	var pane *windowPane
	if v, ok := ctx.State().Get(r.Key); ok {
		pane = v.(*windowPane)
	} else {
		pane = &windowPane{}
	}
	pane.Values = append(pane.Values, paneEntry{At: r.EventTime, V: r.Value})
	bpe := l.BytesPerEntry
	if bpe <= 0 {
		bpe = 24
	}
	ctx.State().Put(r.Key, pane, len(pane.Values)*bpe)
}

// OnWatermark implements dataflow.Logic.
func (l *SlidingWindowLogic) OnWatermark(ctx dataflow.OpContext, wm simtime.Time) {
	if !l.inited {
		// Start the firing grid at the first watermark: windows ending at or
		// before it are considered already fired (on a freshly scaled-in
		// instance they fired at the migration source).
		l.lastFired = wm
		l.inited = true
	}
	fire := func(end simtime.Time) { l.fireWindow(ctx, end) }
	l.lastFired = fireSlides(ctx, l.lastFired, wm, l.Slide, l.Size, fire)
}

// fireSlides fires every window end in (lastFired, wm] on the slide grid.
// When the watermark jumps by an enormous amount (stream flush), iterating
// every grid point would be unbounded, so it switches to firing only the
// candidate ends that can contain buffered entries.
func fireSlides(ctx dataflow.OpContext, lastFired, wm simtime.Time, slide, size simtime.Duration, fire func(simtime.Time)) simtime.Time {
	first := nextSlideEnd(lastFired, slide)
	if wm < first {
		return lastFired
	}
	const denseLimit = 1 << 14
	if (int64(wm)-int64(first))/int64(slide)+1 <= denseLimit {
		for end := first; end <= wm; end += simtime.Time(slide) {
			fire(end)
		}
	} else {
		for _, end := range candidateEnds(ctx, first, wm, slide, size) {
			fire(end)
		}
	}
	// Advance to the last grid point ≤ wm.
	return simtime.Time(int64(wm) / int64(slide) * int64(slide))
}

// candidateEnds returns the sorted slide-grid points in [first, wm] whose
// windows can be non-empty given the entries currently buffered in state.
func candidateEnds(ctx dataflow.OpContext, first, wm simtime.Time, slide, size simtime.Duration) []simtime.Time {
	ends := make(map[simtime.Time]struct{})
	st := ctx.State()
	addEntry := func(at simtime.Time) {
		// Non-empty ends for an entry at time t lie in (t, t+size].
		for end := nextSlideEnd(at, slide); end <= at.Add(size) && end <= wm; end += simtime.Time(slide) {
			if end >= first {
				ends[end] = struct{}{}
			}
		}
	}
	for _, kg := range st.Groups() {
		st.Group(kg).ForEach(func(_ uint64, value any, _ int) {
			switch v := value.(type) {
			case *windowPane:
				for _, pe := range v.Values {
					addEntry(pe.At)
				}
			case *joinState:
				for _, pe := range v.Left {
					addEntry(pe.At)
				}
				for _, pe := range v.Right {
					addEntry(pe.At)
				}
			}
		})
	}
	out := make([]simtime.Time, 0, len(ends))
	for e := range ends {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func nextSlideEnd(after simtime.Time, slide simtime.Duration) simtime.Time {
	if slide <= 0 {
		panic("engine: sliding window needs positive slide")
	}
	n := int64(after)/int64(slide) + 1
	return simtime.Time(n * int64(slide))
}

// sortedGroupKeys fills scratch with the group's keys in ascending order
// (window firing iterates keys deterministically and emission order is part
// of the engine's observable behaviour).
func sortedGroupKeys(g *state.Group, scratch []uint64) []uint64 {
	keys := g.AppendKeys(scratch[:0])
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func (l *SlidingWindowLogic) fireWindow(ctx dataflow.OpContext, end simtime.Time) {
	start := end.Add(-l.Size)
	st := ctx.State()
	bpe := l.BytesPerEntry
	if bpe <= 0 {
		bpe = 24
	}
	for _, kg := range st.Groups() {
		g := st.Group(kg)
		l.keyScratch = sortedGroupKeys(g, l.keyScratch)
		for _, key := range l.keyScratch {
			v, _ := g.Get(key)
			pane := v.(*windowPane)
			vals := l.valScratch[:0]
			kept := pane.Values[:0]
			for _, pe := range pane.Values {
				if pe.At >= start && pe.At < end {
					vals = append(vals, pe.V)
				}
				// Entries older than the window start can never fire again.
				if pe.At >= start {
					kept = append(kept, pe)
				}
			}
			pane.Values = kept
			if len(pane.Values) == 0 {
				g.Delete(key)
			} else {
				g.Put(key, pane, len(pane.Values)*bpe)
			}
			if len(vals) == 0 {
				continue
			}
			agg := maxOf(vals)
			if l.Agg != nil {
				agg = l.Agg(vals)
			}
			l.valScratch = vals[:0]
			out := l.rec(ctx)
			out.Key = key
			out.EventTime = end
			out.Size = 32
			out.Value = agg
			ctx.Emit(out)
		}
	}
}

func maxOf(vals []float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// JoinSide tags records for WindowJoinLogic via Record.Aux (the typed-payload
// escape hatch: join inputs are the one stream shape that does not reduce to
// a single float64).
type JoinSide struct {
	Left  bool
	Value float64
}

// joinState buffers both sides per key.
type joinState struct {
	Left, Right []paneEntry
}

// WindowJoinLogic joins two tagged streams per key over a sliding window:
// when a window fires, keys present on both sides emit a match (NEXMark Q8's
// persons⋈auctions shape).
type WindowJoinLogic struct {
	Size          simtime.Duration
	Slide         simtime.Duration
	BytesPerEntry int

	lastFired simtime.Time
	inited    bool

	recEmitter
	keyScratch []uint64
}

// OnRecord implements dataflow.Logic.
func (l *WindowJoinLogic) OnRecord(ctx dataflow.OpContext, r *netsim.Record) {
	var js *joinState
	if v, ok := ctx.State().Get(r.Key); ok {
		js = v.(*joinState)
	} else {
		js = &joinState{}
	}
	side, _ := r.Aux.(JoinSide)
	pe := paneEntry{At: r.EventTime, V: side.Value}
	if side.Left {
		js.Left = append(js.Left, pe)
	} else {
		js.Right = append(js.Right, pe)
	}
	bpe := l.BytesPerEntry
	if bpe <= 0 {
		bpe = 24
	}
	ctx.State().Put(r.Key, js, (len(js.Left)+len(js.Right))*bpe)
}

// OnWatermark implements dataflow.Logic.
func (l *WindowJoinLogic) OnWatermark(ctx dataflow.OpContext, wm simtime.Time) {
	if !l.inited {
		l.lastFired = wm
		l.inited = true
	}
	fire := func(end simtime.Time) { l.fire(ctx, end) }
	l.lastFired = fireSlides(ctx, l.lastFired, wm, l.Slide, l.Size, fire)
}

func (l *WindowJoinLogic) fire(ctx dataflow.OpContext, end simtime.Time) {
	start := end.Add(-l.Size)
	st := ctx.State()
	bpe := l.BytesPerEntry
	if bpe <= 0 {
		bpe = 24
	}
	for _, kg := range st.Groups() {
		g := st.Group(kg)
		l.keyScratch = sortedGroupKeys(g, l.keyScratch)
		for _, key := range l.keyScratch {
			v, _ := g.Get(key)
			js := v.(*joinState)
			inWin := func(es []paneEntry) int {
				n := 0
				for _, pe := range es {
					if pe.At >= start && pe.At < end {
						n++
					}
				}
				return n
			}
			nl, nr := inWin(js.Left), inWin(js.Right)
			if nl > 0 && nr > 0 {
				out := l.rec(ctx)
				out.Key = key
				out.EventTime = end
				out.Size = 32
				out.Value = float64(nl * nr)
				ctx.Emit(out)
			}
			trim := func(es []paneEntry) []paneEntry {
				kept := es[:0]
				for _, pe := range es {
					if pe.At >= start {
						kept = append(kept, pe)
					}
				}
				return kept
			}
			js.Left, js.Right = trim(js.Left), trim(js.Right)
			if len(js.Left)+len(js.Right) == 0 {
				g.Delete(key)
			} else {
				g.Put(key, js, (len(js.Left)+len(js.Right))*bpe)
			}
		}
	}
}

// MapLogic applies a stateless transform and forwards.
type MapLogic struct {
	// Fn may mutate and return the record, or return nil to drop it.
	Fn func(r *netsim.Record) *netsim.Record
}

// OnRecord implements dataflow.Logic.
func (l *MapLogic) OnRecord(ctx dataflow.OpContext, r *netsim.Record) {
	out := r
	if l.Fn != nil {
		out = l.Fn(r)
	}
	if out != nil {
		ctx.Emit(out)
	}
}

// OnWatermark implements dataflow.Logic.
func (l *MapLogic) OnWatermark(dataflow.OpContext, simtime.Time) {}

// CollectSink records everything that reaches it; correctness tests compare
// its contents across scaling mechanisms.
type CollectSink struct {
	// ByKey accumulates the sum of values per key.
	ByKey map[uint64]float64
	// CountByKey counts records per key.
	CountByKey map[uint64]int
	// Seqs tracks seen sequence numbers for loss/duplication checks.
	Seqs map[uint64]int
	// Records counts total data records.
	Records int
}

// NewCollectSink returns an empty sink.
func NewCollectSink() *CollectSink {
	return &CollectSink{
		ByKey:      make(map[uint64]float64),
		CountByKey: make(map[uint64]int),
		Seqs:       make(map[uint64]int),
	}
}

// OnRecord implements dataflow.Logic.
func (s *CollectSink) OnRecord(_ dataflow.OpContext, r *netsim.Record) {
	s.Records++
	s.ByKey[r.Key] += r.Value
	s.CountByKey[r.Key]++
	if r.Seq != 0 {
		s.Seqs[r.Seq]++
	}
}

// OnWatermark implements dataflow.Logic.
func (s *CollectSink) OnWatermark(dataflow.OpContext, simtime.Time) {}

// Duplicates reports how many sequence numbers were seen more than once.
func (s *CollectSink) Duplicates() int {
	var n int
	for _, c := range s.Seqs {
		if c > 1 {
			n += c - 1
		}
	}
	return n
}

// Keyed state for SlidingWindowLogic and WindowJoinLogic flows through
// state.Store as *windowPane / *joinState aux payloads; KeyedReduceLogic
// rides the float64 fast lane. The library types satisfy dataflow.Logic, and
// the emitters also satisfy dataflow.Binder so the per-emit pool-capability
// check is resolved once at bind time.
var (
	_ dataflow.Logic  = (*KeyedReduceLogic)(nil)
	_ dataflow.Logic  = (*SlidingWindowLogic)(nil)
	_ dataflow.Logic  = (*WindowJoinLogic)(nil)
	_ dataflow.Logic  = (*MapLogic)(nil)
	_ dataflow.Logic  = (*CollectSink)(nil)
	_ dataflow.Binder = (*KeyedReduceLogic)(nil)
	_ dataflow.Binder = (*SlidingWindowLogic)(nil)
	_ dataflow.Binder = (*WindowJoinLogic)(nil)
)
