package engine

import (
	"drrs/internal/netsim"
)

// NextStatus reports the outcome of an input-handler poll.
type NextStatus int

// Poll outcomes.
const (
	// NextIdle: no consumable input exists right now.
	NextIdle NextStatus = iota
	// NextOK: a message was consumed and should be processed.
	NextOK
	// NextSuspended: input is queued but the head is unprocessable — the
	// instance is suspension-blocked waiting for state migration. This is
	// the Ls the paper measures.
	NextSuspended
)

// InputHandler selects the next message an instance processes. It is the
// seam the paper's Scale Input Handler (B1) replaces: the native handler
// implements stock Flink behaviour; mechanisms install their own.
type InputHandler interface {
	Next(in *Instance) (netsim.Message, *netsim.Edge, NextStatus)
}

// NativeHandler models Flink's stock input gate: it serves channels in
// round-robin order of data availability, and once it commits to a channel
// whose head record cannot be processed, the whole task blocks on it until
// the record becomes processable — exactly the baseline suspension behaviour
// the paper attacks with Record Scheduling.
type NativeHandler struct {
	rr    int
	stuck *netsim.Edge
}

// Next implements InputHandler.
func (h *NativeHandler) Next(in *Instance) (netsim.Message, *netsim.Edge, NextStatus) {
	if h.stuck != nil {
		e := h.stuck
		if in.EdgeBlocked(e) || e.InboxLen() == 0 {
			// The committed channel went away (alignment block or a priority
			// message consumed elsewhere); release the commitment.
			h.stuck = nil
		} else {
			m := e.InboxAt(0)
			if !in.CanProcess(m, e) {
				return nil, e, NextSuspended
			}
			h.stuck = nil
			return e.PopInbox(), e, NextOK
		}
	}
	n := len(in.InEdges())
	if n == 0 {
		return nil, nil, NextIdle
	}
	for k := 0; k < n; k++ {
		h.rr = (h.rr + 1) % n
		e := in.InEdges()[h.rr]
		if in.EdgeBlocked(e) || e.InboxLen() == 0 {
			continue
		}
		m := e.InboxAt(0)
		if !in.CanProcess(m, e) {
			// Commit to this channel and block: stock engines cannot skip
			// within or across channels once data is at the gate.
			h.stuck = e
			return nil, e, NextSuspended
		}
		return e.PopInbox(), e, NextOK
	}
	return nil, nil, NextIdle
}
