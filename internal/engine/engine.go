// Package engine is the runtime of the simulated stream processing engine:
// operator instances with an event-driven processing loop, pluggable input
// handlers (the seam DRRS's Scale Input Handler replaces), keyed emission
// through per-sender routing tables, watermark alignment, aligned
// checkpoints, sources with ingest backlogs, latency-marker plumbing, and
// runtime rescaling primitives (instance addition, edge wiring, outbox
// redirection).
//
// The engine deliberately mirrors the pieces of Apache Flink that the paper's
// mechanisms manipulate, at the granularity the paper reasons about: output
// caches, input buffers, barriers, key groups, and routing tables.
package engine

import (
	"fmt"

	"drrs/internal/cluster"
	"drrs/internal/dataflow"
	"drrs/internal/metrics"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

// Config carries runtime-wide tunables. Zero values select the defaults
// documented on each field.
type Config struct {
	// Seed drives every random stream in the run.
	Seed int64

	// EdgeLatency is the per-hop network latency of data edges
	// (default 0.5 ms, LAN-ish).
	EdgeLatency simtime.Duration
	// EdgeBandwidth is the per-edge byte rate; 0 means infinite (the data
	// plane is rarely the bottleneck in the paper's experiments).
	EdgeBandwidth float64
	// EdgeOutCap / EdgeInCap bound the output cache and input buffer of each
	// edge in records (default 128 each, roughly Flink's buffer pools).
	EdgeOutCap int
	EdgeInCap  int

	// ControlLatency models coordinator→worker RPC latency (default 1 ms).
	ControlLatency simtime.Duration

	// MarkerInterval is the latency-marker injection period (default 250 ms;
	// 0 disables markers).
	MarkerInterval simtime.Duration

	// SnapshotBytesPerSec is the checkpoint write rate (default 400 MB/s).
	SnapshotBytesPerSec float64

	// ThroughputBucket is the throughput series resolution (default 1 s).
	ThroughputBucket simtime.Duration
}

func (c *Config) fillDefaults() {
	if c.EdgeLatency == 0 {
		c.EdgeLatency = simtime.Ms(0.5)
	}
	if c.EdgeOutCap == 0 {
		c.EdgeOutCap = 128
	}
	if c.EdgeInCap == 0 {
		c.EdgeInCap = 128
	}
	if c.ControlLatency == 0 {
		c.ControlLatency = simtime.Ms(1)
	}
	if c.MarkerInterval == 0 {
		c.MarkerInterval = simtime.Ms(250)
	}
	if c.SnapshotBytesPerSec == 0 {
		c.SnapshotBytesPerSec = 400 << 20
	}
	if c.ThroughputBucket == 0 {
		c.ThroughputBucket = simtime.Second
	}
}

// Runtime executes one job graph on a scheduler.
type Runtime struct {
	Sched   *simtime.Scheduler
	Graph   *dataflow.Graph
	Cluster *cluster.Cluster
	Cfg     Config

	instances map[string][]*Instance

	// Latency records marker end-to-end latencies (ms).
	Latency *metrics.LatencyTracker
	// Throughput records source emission rates.
	Throughput *metrics.ThroughputTracker
	// Scale aggregates scaling-delay accounting; mechanisms write into it.
	Scale *metrics.ScalingMetrics

	rng       *simtime.RNG
	recSeq    uint64
	markerSeq uint64
	ckptSeq   int64
	ckpt      *checkpointRound

	// lostRecords counts data records dropped by faults: mid-service at a
	// crashed instance, or stranded behind a recovery re-route. Always zero
	// on a healthy run.
	lostRecords uint64

	// recPool recycles Record values on the ingest path: sources and marker
	// injection draw from it, and records are returned when they die (applied
	// without being forwarded, or a marker reaching its sink).
	recPool netsim.RecordPool

	// OnMarkerSink, if set, is called for each marker reaching a sink
	// (after latency recording).
	OnMarkerSink func(r *netsim.Record)

	markerTimer simtime.Timer
}

// New builds a runtime for the graph: it validates the DAG, creates all
// instances, wires all edges, and assigns key-group ranges, but does not
// start sources. Call Start (or StartAt) before running the scheduler.
func New(s *simtime.Scheduler, g *dataflow.Graph, cl *cluster.Cluster, cfg Config) *Runtime {
	cfg.fillDefaults()
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if cl == nil {
		cl = cluster.New(s)
	}
	rt := &Runtime{
		Sched:      s,
		Graph:      g,
		Cluster:    cl,
		Cfg:        cfg,
		instances:  make(map[string][]*Instance),
		Latency:    metrics.NewLatencyTracker(),
		Throughput: metrics.NewThroughputTracker(cfg.ThroughputBucket),
		Scale:      metrics.NewScalingMetrics(),
		rng:        simtime.NewRNG(cfg.Seed, "runtime"),
	}
	// Create instances in topological order, then wire edges.
	for _, name := range g.Topological() {
		spec := g.Operator(name)
		for i := 0; i < spec.Parallelism; i++ {
			rt.instances[name] = append(rt.instances[name], rt.newInstance(spec, i))
		}
	}
	for _, name := range g.Topological() {
		for _, se := range g.Outputs(name) {
			for _, from := range rt.instances[name] {
				for _, to := range rt.instances[se.To] {
					rt.wire(from, to, se)
				}
			}
		}
	}
	// Keyed operators own their initial key-group ranges.
	for _, name := range g.Topological() {
		spec := g.Operator(name)
		if !spec.KeyedInput {
			continue
		}
		for i, in := range rt.instances[name] {
			lo, hi := state.KeyGroupRange(spec.MaxKeyGroups, spec.Parallelism, i)
			for kg := lo; kg < hi; kg++ {
				in.store.OwnGroup(kg)
			}
		}
	}
	return rt
}

// edgeConfig returns the standard data-edge parameters.
func (rt *Runtime) edgeConfig() netsim.EdgeConfig {
	return netsim.EdgeConfig{
		Latency:   rt.Cfg.EdgeLatency,
		Bandwidth: rt.Cfg.EdgeBandwidth,
		OutCap:    rt.Cfg.EdgeOutCap,
		InCap:     rt.Cfg.EdgeInCap,
	}
}

// wire creates the physical channel for one (from-instance, to-instance)
// pair of a stream edge. The channel's latency is derived from the cluster
// topology path between the two instances (cross-rack hops pay both uplink
// latencies), so placement decisions shape the data plane, not just state
// migration.
func (rt *Runtime) wire(from, to *Instance, se dataflow.StreamEdge) {
	cfg := rt.edgeConfig()
	cfg.Latency = rt.Cluster.LinkLatency(from.Endpoint(), to.Endpoint(), cfg.Latency)
	e := netsim.NewEdge(rt.Sched, from.Endpoint(), to.Endpoint(), cfg)
	e.SetReceiver(func(*netsim.Edge) { to.Wake() })
	e.SetSenderWake(func() { from.Wake() })
	from.addOutput(se.To, to.Index, e)
	to.addInput(e)
	if se.Exchange == dataflow.ExchangeKeyed {
		toSpec := rt.Graph.Operator(se.To)
		if from.routing[se.To] == nil {
			from.routing[se.To] = dataflow.NewRoutingTable(toSpec.MaxKeyGroups, toSpec.Parallelism)
		}
	}
}

// Instances returns the live instances of an operator.
func (rt *Runtime) Instances(op string) []*Instance { return rt.instances[op] }

// Instance returns one instance, or nil when out of range.
func (rt *Runtime) Instance(op string, idx int) *Instance {
	is := rt.instances[op]
	if idx < 0 || idx >= len(is) {
		return nil
	}
	return is[idx]
}

// EachInstance visits all instances in topological operator order.
func (rt *Runtime) EachInstance(fn func(*Instance)) {
	for _, name := range rt.Graph.Topological() {
		for _, in := range rt.instances[name] {
			fn(in)
		}
	}
}

// Start launches all source drivers and the latency-marker injector at the
// current scheduler time.
func (rt *Runtime) Start() {
	for _, name := range rt.Graph.Topological() {
		spec := rt.Graph.Operator(name)
		if spec.Source == nil {
			continue
		}
		for _, in := range rt.instances[name] {
			in.startSource()
		}
	}
	if rt.Cfg.MarkerInterval > 0 {
		rt.scheduleMarker()
	}
}

func (rt *Runtime) scheduleMarker() {
	rt.markerTimer = rt.Sched.After(rt.Cfg.MarkerInterval, func() {
		rt.injectMarkers()
		rt.scheduleMarker()
	})
}

// injectMarkers ingests one latency marker at every source instance. The
// marker key rotates so that, over time, markers sample every downstream
// instance path (suspended instances therefore show up as latency spikes).
func (rt *Runtime) injectMarkers() {
	for _, name := range rt.Graph.Topological() {
		spec := rt.Graph.Operator(name)
		if spec.Source == nil {
			continue
		}
		for _, in := range rt.instances[name] {
			rt.markerSeq++
			m := rt.recPool.Get()
			m.Key = rt.markerSeq
			m.IngestTime = rt.Sched.Now()
			m.Size = 32
			m.Marker = true
			in.ingest(m)
		}
	}
}

// StopMarkers halts marker injection (used at experiment teardown).
func (rt *Runtime) StopMarkers() {
	rt.markerTimer.Cancel()
}

// NextSeq hands out a global record sequence number.
func (rt *Runtime) NextSeq() uint64 {
	rt.recSeq++
	return rt.recSeq
}

// checkpointRound tracks one in-flight aligned checkpoint.
type checkpointRound struct {
	id      int64
	started simtime.Time
	pending map[string]bool // instance names yet to ack
	done    func(id int64)
}

// ckptStarted reports when checkpoint id was triggered (zero if unknown).
func (rt *Runtime) ckptStarted(id int64) simtime.Time {
	if rt.ckpt != nil && rt.ckpt.id == id {
		return rt.ckpt.started
	}
	return 0
}

// TriggerCheckpoint starts an aligned checkpoint: barriers are injected at
// every source instance and flow through the topology with channel-blocking
// alignment. done (optional) fires when every instance has snapshotted.
// It returns the checkpoint id, or -1 if one is already running.
func (rt *Runtime) TriggerCheckpoint(done func(id int64)) int64 {
	if rt.ckpt != nil {
		return -1
	}
	rt.ckptSeq++
	round := &checkpointRound{id: rt.ckptSeq, started: rt.Sched.Now(), pending: make(map[string]bool), done: done}
	rt.EachInstance(func(in *Instance) { round.pending[in.Name()] = true })
	rt.ckpt = round
	for _, name := range rt.Graph.Topological() {
		spec := rt.Graph.Operator(name)
		if spec.Source == nil {
			continue
		}
		for _, in := range rt.instances[name] {
			in.sourceEmitBarrier(&netsim.CheckpointBarrier{ID: round.id})
		}
	}
	return round.id
}

// ackCheckpoint is called by instances after snapshotting.
func (rt *Runtime) ackCheckpoint(id int64, instance string) {
	if rt.ckpt == nil || rt.ckpt.id != id {
		return
	}
	delete(rt.ckpt.pending, instance)
	if len(rt.ckpt.pending) == 0 {
		round := rt.ckpt
		rt.ckpt = nil
		if round.done != nil {
			round.done(round.id)
		}
	}
}

// CheckpointRunning reports whether an aligned checkpoint is in flight.
func (rt *Runtime) CheckpointRunning() bool { return rt.ckpt != nil }

// RunFor advances the simulation by d.
func (rt *Runtime) RunFor(d simtime.Duration) {
	rt.Sched.RunUntil(rt.Sched.Now().Add(d))
}

// SourceBacklog sums the ingest backlogs across every source instance — the
// demand pressure the data plane has not yet absorbed, and the reactive
// control plane's primary signal (backpressure from a saturated operator
// stalls source emission, so unabsorbed load piles up here).
func (rt *Runtime) SourceBacklog() int {
	n := 0
	for _, name := range rt.Graph.Topological() {
		if rt.Graph.Operator(name).Source == nil {
			continue
		}
		for _, in := range rt.instances[name] {
			n += in.BacklogLen()
		}
	}
	return n
}

func (rt *Runtime) noteLostRecords(n uint64) { rt.lostRecords += n }

// LostRecords reports how many data records faults have destroyed so far
// (zero on healthy runs).
func (rt *Runtime) LostRecords() uint64 { return rt.lostRecords }

// TotalStateBytes sums keyed state across an operator's instances.
func (rt *Runtime) TotalStateBytes(op string) int {
	var sum int
	for _, in := range rt.instances[op] {
		sum += in.store.TotalBytes()
	}
	return sum
}

// DebugString summarizes live instances (used by drrs-sim).
func (rt *Runtime) DebugString() string {
	s := ""
	rt.EachInstance(func(in *Instance) {
		s += fmt.Sprintf("%-16s processed=%-8d stateKB=%-8d backlog=%d\n",
			in.Name(), in.Processed, in.store.TotalBytes()/1024, in.BacklogLen())
	})
	return s
}
