package engine

import (
	"testing"

	"drrs/internal/dataflow"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

func TestRebalanceDistributesRoundRobin(t *testing.T) {
	sink0 := NewCollectSink()
	sink1 := NewCollectSink()
	sinks := []*CollectSink{sink0, sink1}
	var next int
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: fixedRateSource(100, simtime.Ms(1), 8),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "sink", Parallelism: 2,
		NewLogic: func() dataflow.Logic { s := sinks[next]; next++; return s },
	})
	g.Connect("src", "sink", dataflow.ExchangeRebalance)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 1, MarkerInterval: -1})
	rt.Start()
	s.Run()
	if sink0.Records != 50 || sink1.Records != 50 {
		t.Fatalf("rebalance split %d/%d, want 50/50", sink0.Records, sink1.Records)
	}
}

func TestBroadcastDuplicatesToAllInstances(t *testing.T) {
	sink0 := NewCollectSink()
	sink1 := NewCollectSink()
	sinks := []*CollectSink{sink0, sink1}
	var next int
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: fixedRateSource(40, simtime.Ms(1), 8),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "sink", Parallelism: 2,
		NewLogic: func() dataflow.Logic { s := sinks[next]; next++; return s },
	})
	g.Connect("src", "sink", dataflow.ExchangeBroadcast)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 1, MarkerInterval: -1})
	rt.Start()
	s.Run()
	if sink0.Records != 40 || sink1.Records != 40 {
		t.Fatalf("broadcast delivered %d/%d, want 40/40", sink0.Records, sink1.Records)
	}
}

func TestPauseDataHoldsRecordsPassesControl(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 1, 1000)
	src := rt.Instance("src", 0)
	rt.Start()
	rt.RunFor(simtime.Ms(50))
	emitted := rt.Throughput.Total()
	src.PauseData = true
	rt.RunFor(simtime.Ms(200))
	if rt.Throughput.Total() != emitted {
		t.Fatalf("paused source emitted %d more records", rt.Throughput.Total()-emitted)
	}
	if src.BacklogLen() == 0 {
		t.Fatal("ingest should keep accumulating in the backlog")
	}
	src.PauseData = false
	src.Wake()
	rt.RunFor(simtime.Sec(5))
	if rt.Throughput.Total() <= emitted {
		t.Fatal("source never resumed")
	}
}

func TestPauseAfterCkptArmsExactlyOnce(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 1, 2000)
	src := rt.Instance("src", 0)
	rt.Start()
	rt.RunFor(simtime.Ms(20))
	id := rt.TriggerCheckpoint(nil)
	src.PauseAfterCkpt = id
	rt.RunFor(simtime.Ms(300))
	if !src.PauseData {
		t.Fatal("source should have paused at the barrier")
	}
	if src.PauseAfterCkpt != 0 {
		t.Fatal("arm flag should clear after firing")
	}
}

func TestScaleBarrierDefaultAlignForward(t *testing.T) {
	// Without any hook, a coupled scale barrier aligns at an operator and is
	// forwarded downstream exactly once.
	rt, _ := buildSimpleJob(t, 2, 1, 50)
	rt.Start()
	rt.RunFor(simtime.Ms(10))
	for _, src := range rt.Instances("src") {
		src.BroadcastControl(&netsim.ScaleBarrier{ScaleID: 5, Round: 0})
	}
	rt.RunFor(simtime.Sec(2))
	sinkIn := rt.Instance("sink", 0)
	// The sink consumed the forwarded barrier from its single agg channel;
	// the agg instance must have forwarded exactly one (aligned) copy.
	var sawForwarded uint64
	for _, e := range sinkIn.InEdges() {
		sawForwarded += e.Delivered
	}
	if sawForwarded == 0 {
		t.Fatal("nothing reached the sink")
	}
	agg := rt.Instance("agg", 0)
	if agg.EdgeBlocked(agg.InEdges()[0]) || agg.EdgeBlocked(agg.InEdges()[1]) {
		t.Fatal("alignment blocks not released")
	}
}

func TestSendControlTargetsOneInstance(t *testing.T) {
	rt, _ := buildSimpleJob(t, 1, 2, 10)
	src := rt.Instance("src", 0)
	rt.Start()
	src.SendControl("agg", 1, &netsim.ScaleBarrier{ScaleID: 9})
	rt.RunFor(simtime.Ms(10))
	e0 := src.OutEdges("agg")[0]
	find := func(e *netsim.Edge) bool {
		return e.FindInbox(func(m netsim.Message) bool {
			sb, ok := m.(*netsim.ScaleBarrier)
			return ok && sb.ScaleID == 9
		}) >= 0
	}
	if find(e0) {
		t.Fatal("barrier leaked to instance 0")
	}
	// Instance 1 either holds it or already consumed it (alignment with one
	// pred completes immediately and forwards) — consumption is fine; what
	// matters is it never reached instance 0.
}

func TestAuxiliaryEdgeTransparentToWatermarks(t *testing.T) {
	// A re-route channel must not hold back the receiver's watermark.
	var wms []simtime.Time
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: fixedRateSource(50, simtime.Ms(2), 8),
	})
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "agg", Parallelism: 2, KeyedInput: true, MaxKeyGroups: 8,
		NewLogic: func() dataflow.Logic { return &watermarkProbe{out: &wms} },
	})
	g.Connect("src", "agg", dataflow.ExchangeKeyed)
	s := simtime.NewScheduler()
	rt := New(s, g, nil, Config{Seed: 2, MarkerInterval: -1})
	// Wire an auxiliary channel into agg[0] before starting.
	rt.ConnectInstances(rt.Instance("agg", 1), rt.Instance("agg", 0))
	rt.Start()
	s.Run()
	if len(wms) == 0 {
		t.Fatal("watermarks stalled: the auxiliary edge held back alignment")
	}
}

func TestDetachInputRestoresAlignmentCount(t *testing.T) {
	rt, _ := buildSimpleJob(t, 2, 2, 100)
	agg := rt.Instance("agg", 0)
	before := len(agg.InEdges())
	aux := rt.ConnectInstances(rt.Instance("agg", 1), agg)
	if len(agg.InEdges()) != before+1 {
		t.Fatal("aux edge not registered")
	}
	rt.DetachInput(agg, aux)
	if len(agg.InEdges()) != before {
		t.Fatal("aux edge not detached")
	}
	// Checkpoints still complete after attach/detach churn.
	rt.Start()
	var done bool
	rt.Sched.After(simtime.Ms(20), func() {
		rt.TriggerCheckpoint(func(int64) { done = true })
	})
	rt.RunFor(simtime.Sec(3))
	if !done {
		t.Fatal("checkpoint failed after detach")
	}
}

func TestCostScalesWithNodeSpeed(t *testing.T) {
	// A slower node must stretch processing time: compare total processed in
	// a fixed window on nodes of speed 1.0 vs 0.25 under saturation.
	processed := func(speed float64) uint64 {
		g := dataflow.NewGraph()
		g.AddOperator(&dataflow.OperatorSpec{
			Name: "src", Parallelism: 1,
			Source: fixedRateSource(5000, simtime.Ms(0.05), 8),
		})
		g.AddOperator(&dataflow.OperatorSpec{
			Name: "agg", Parallelism: 1, KeyedInput: true, MaxKeyGroups: 8,
			CostPerRecord: simtime.Ms(1),
			NewLogic:      func() dataflow.Logic { return &KeyedReduceLogic{} },
		})
		g.Connect("src", "agg", dataflow.ExchangeKeyed)
		s := simtime.NewScheduler()
		rt := New(s, g, nil, Config{Seed: 3, MarkerInterval: -1})
		rt.Cluster.Node("local").Speed = speed
		rt.Start()
		rt.RunFor(simtime.Sec(1))
		return rt.Instance("agg", 0).Processed
	}
	fast := processed(1.0)
	slow := processed(0.25)
	if slow*3 > fast {
		t.Fatalf("speed 0.25 processed %d vs speed 1.0 %d — node speed ignored", slow, fast)
	}
}
