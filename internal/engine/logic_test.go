package engine

import (
	"testing"

	"drrs/internal/netsim"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

// fakeCtx is a minimal OpContext for exercising operator logic directly.
type fakeCtx struct {
	store *state.Store
	now   simtime.Time
	out   []*netsim.Record
}

func newFakeCtx() *fakeCtx {
	st := state.NewStore(8)
	for kg := 0; kg < 8; kg++ {
		st.OwnGroup(kg)
	}
	return &fakeCtx{store: st}
}

func (c *fakeCtx) Emit(r *netsim.Record)          { c.out = append(c.out, r) }
func (c *fakeCtx) Now() simtime.Time              { return c.now }
func (c *fakeCtx) State() *state.Store            { return c.store }
func (c *fakeCtx) InstanceIndex() int             { return 0 }
func (c *fakeCtx) CurrentWatermark() simtime.Time { return c.now }

func rec(key uint64, at simtime.Time, v float64) *netsim.Record {
	return &netsim.Record{Key: key, EventTime: at, Value: v}
}

func TestSlidingWindowExactContents(t *testing.T) {
	ctx := newFakeCtx()
	l := &SlidingWindowLogic{Size: 100, Slide: 50}
	l.OnWatermark(ctx, 0) // init the grid
	// Values at t=10, 60, 110 for key 1.
	l.OnRecord(ctx, rec(1, 10, 5))
	l.OnRecord(ctx, rec(1, 60, 7))
	l.OnRecord(ctx, rec(1, 110, 3))
	l.OnWatermark(ctx, 100) // fires windows ending at 50 and 100
	// Window (−50,50]: contains t=10 → max 5. Window (0,100]: 5,7 → 7.
	if len(ctx.out) != 2 {
		t.Fatalf("fired %d windows, want 2", len(ctx.out))
	}
	if ctx.out[0].Value != 5 || ctx.out[1].Value != 7 {
		t.Fatalf("window values %v, %v", ctx.out[0].Value, ctx.out[1].Value)
	}
	ctx.out = nil
	l.OnWatermark(ctx, 220) // windows ending 150, 200 contain t=60?,110
	// (50,150]: 7 at 60, 3 at 110 → 7; (100,200]: 3 → 3; plus empty (150,250] not yet.
	if len(ctx.out) != 2 {
		t.Fatalf("fired %d windows, want 2 (150 and 200)", len(ctx.out))
	}
	if ctx.out[0].Value != 7 || ctx.out[1].Value != 3 {
		t.Fatalf("window values %v, %v", ctx.out[0].Value, ctx.out[1].Value)
	}
}

func TestSlidingWindowEvictsOldState(t *testing.T) {
	ctx := newFakeCtx()
	l := &SlidingWindowLogic{Size: 100, Slide: 50, BytesPerEntry: 10}
	l.OnWatermark(ctx, 0)
	l.OnRecord(ctx, rec(1, 10, 1))
	if ctx.store.TotalBytes() != 10 {
		t.Fatalf("bytes %d", ctx.store.TotalBytes())
	}
	l.OnWatermark(ctx, 300) // far beyond t=10+Size: entry evicted, key deleted
	if ctx.store.TotalBytes() != 0 || ctx.store.KeyCount() != 0 {
		t.Fatalf("stale window state retained: %d bytes, %d keys",
			ctx.store.TotalBytes(), ctx.store.KeyCount())
	}
}

func TestSlidingWindowHugeWatermarkJump(t *testing.T) {
	// A stream-end watermark jump of ~10^9 slides must not iterate the grid:
	// the catch-up path fires only candidate ends.
	ctx := newFakeCtx()
	l := &SlidingWindowLogic{Size: simtime.Duration(100), Slide: simtime.Duration(50)}
	l.OnWatermark(ctx, 0)
	l.OnRecord(ctx, rec(1, 60, 9))
	l.OnWatermark(ctx, simtime.Time(1)<<50)
	// The record's only non-empty windows end at 100 and 150.
	if len(ctx.out) != 2 {
		t.Fatalf("catch-up fired %d windows, want 2", len(ctx.out))
	}
	for _, r := range ctx.out {
		if r.Value != 9 {
			t.Fatalf("bad catch-up value %v", r.Value)
		}
	}
}

func TestWindowJoinMatchesBothSidesOnly(t *testing.T) {
	ctx := newFakeCtx()
	l := &WindowJoinLogic{Size: 100, Slide: 100}
	l.OnWatermark(ctx, 0)
	// Key 1: both sides. Key 2: left only.
	l.OnRecord(ctx, &netsim.Record{Key: 1, EventTime: 10, Aux: JoinSide{Left: true, Value: 1}})
	l.OnRecord(ctx, &netsim.Record{Key: 1, EventTime: 20, Aux: JoinSide{Left: false, Value: 1}})
	l.OnRecord(ctx, &netsim.Record{Key: 2, EventTime: 30, Aux: JoinSide{Left: true, Value: 1}})
	l.OnWatermark(ctx, 100)
	if len(ctx.out) != 1 {
		t.Fatalf("join fired %d matches, want 1", len(ctx.out))
	}
	if ctx.out[0].Key != 1 || ctx.out[0].Value != 1 {
		t.Fatalf("bad match %+v", ctx.out[0])
	}
}

func TestWindowJoinPairCount(t *testing.T) {
	ctx := newFakeCtx()
	l := &WindowJoinLogic{Size: 100, Slide: 100}
	l.OnWatermark(ctx, 0)
	for i := 0; i < 3; i++ {
		l.OnRecord(ctx, &netsim.Record{Key: 1, EventTime: simtime.Time(10 + i), Aux: JoinSide{Left: true}})
	}
	for i := 0; i < 2; i++ {
		l.OnRecord(ctx, &netsim.Record{Key: 1, EventTime: simtime.Time(40 + i), Aux: JoinSide{Left: false}})
	}
	l.OnWatermark(ctx, 100)
	if len(ctx.out) != 1 || ctx.out[0].Value != 6 {
		t.Fatalf("want 3×2=6 pairs, got %v", ctx.out)
	}
}

func TestMapLogicDropAndTransform(t *testing.T) {
	ctx := newFakeCtx()
	drop := &MapLogic{Fn: func(r *netsim.Record) *netsim.Record {
		if r.Key%2 == 0 {
			return nil
		}
		r.Value = 42
		return r
	}}
	drop.OnRecord(ctx, rec(1, 0, 0))
	drop.OnRecord(ctx, rec(2, 0, 0))
	if len(ctx.out) != 1 || ctx.out[0].Value != 42 {
		t.Fatalf("map output %v", ctx.out)
	}
	// Identity map forwards untouched.
	ctx.out = nil
	(&MapLogic{}).OnRecord(ctx, rec(3, 0, 0))
	if len(ctx.out) != 1 || ctx.out[0].Key != 3 {
		t.Fatal("identity map broken")
	}
}

func TestKeyedReduceCustomReducer(t *testing.T) {
	ctx := newFakeCtx()
	l := &KeyedReduceLogic{
		Reduce: func(acc float64, r *netsim.Record) float64 {
			if r.Value > acc {
				return r.Value
			}
			return acc
		},
	}
	for _, v := range []float64{3, 9, 5} {
		l.OnRecord(ctx, rec(1, 0, v))
	}
	if got, ok := ctx.store.GetF64(1); !ok || got != 9 {
		t.Fatalf("running max %v", got)
	}
}

func TestJoinSideMissingAuxDefaultsToRightZero(t *testing.T) {
	// A record without an Aux payload joins as a zero-valued right-side
	// entry (the JoinSide zero value) instead of panicking.
	ctx := newFakeCtx()
	l := &WindowJoinLogic{Size: 100, Slide: 100}
	l.OnWatermark(ctx, 0)
	l.OnRecord(ctx, &netsim.Record{Key: 1, EventTime: 10})
	l.OnRecord(ctx, &netsim.Record{Key: 1, EventTime: 20, Aux: JoinSide{Left: true}})
	l.OnWatermark(ctx, 100)
	if len(ctx.out) != 1 || ctx.out[0].Value != 1 {
		t.Fatalf("want one 1×1 match, got %v", ctx.out)
	}
}
