package engine

import (
	"fmt"
	"sort"

	"drrs/internal/dataflow"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
	"drrs/internal/state"
)

// ScaleHook is the seam through which a scaling mechanism attaches to an
// instance. A nil hook (or the embedded BaseHook defaults) yields plain
// non-scaling behaviour.
type ScaleHook interface {
	// Processable gates a data record: false means the record must not be
	// processed yet (its state is not local / not yet activated).
	Processable(in *Instance, r *netsim.Record, e *netsim.Edge) bool
	// BeforeRecord intercepts a data record already popped for processing.
	// Return true when the hook consumed it (e.g. re-routed it).
	BeforeRecord(in *Instance, r *netsim.Record, e *netsim.Edge) bool
	// OnScaleMessage handles scaling control messages (trigger/confirm/scale
	// barriers, rerouted messages, in-band state chunks). Return true when
	// consumed; unconsumed scale barriers get default align-and-forward
	// treatment.
	OnScaleMessage(in *Instance, m netsim.Message, e *netsim.Edge) bool
	// OnCheckpointBarrier intercepts checkpoint barriers (DRRS's Fig 9
	// integration). Return true when fully handled.
	OnCheckpointBarrier(in *Instance, b *netsim.CheckpointBarrier, e *netsim.Edge) bool
}

// BaseHook is a no-op ScaleHook for embedding.
type BaseHook struct{}

// Processable implements ScaleHook.
func (BaseHook) Processable(*Instance, *netsim.Record, *netsim.Edge) bool { return true }

// BeforeRecord implements ScaleHook.
func (BaseHook) BeforeRecord(*Instance, *netsim.Record, *netsim.Edge) bool { return false }

// OnScaleMessage implements ScaleHook.
func (BaseHook) OnScaleMessage(*Instance, netsim.Message, *netsim.Edge) bool { return false }

// OnCheckpointBarrier implements ScaleHook.
func (BaseHook) OnCheckpointBarrier(*Instance, *netsim.CheckpointBarrier, *netsim.Edge) bool {
	return false
}

type pendingEmit struct {
	edge *netsim.Edge
	msg  netsim.Message
}

// Instance is one parallel subtask of an operator.
type Instance struct {
	rt    *Runtime
	Spec  *dataflow.OperatorSpec
	Index int

	ins     []*netsim.Edge
	outs    map[string][]*netsim.Edge
	routing map[string]*dataflow.RoutingTable
	rrNext  map[string]int

	store   *state.Store
	logic   dataflow.Logic
	handler InputHandler
	hook    ScaleHook

	busy    bool
	pending []pendingEmit
	// Halted freezes the instance entirely (Stop-Checkpoint-Restart).
	Halted bool
	// PauseData stops a source from emitting data records while letting
	// control messages through (Stop-Checkpoint-Restart quiesces this way:
	// the checkpoint barrier passes, data stays in the ingest backlog).
	PauseData bool
	// PauseAfterCkpt arms PauseData: the source pauses itself right after
	// emitting the checkpoint barrier with this id.
	PauseAfterCkpt int64

	blockedEdges map[*netsim.Edge]bool
	aligners     map[string]map[*netsim.Edge]bool

	wmPer map[*netsim.Edge]simtime.Time
	curWM simtime.Time

	backlog netsim.Deque[netsim.Message]
	srcRng  *simtime.RNG

	suspended  bool
	wakeQueued bool
	costRng    *simtime.RNG

	// dead marks a crashed instance (its node failed): Halted, state wiped,
	// inputs queueing. See Fail/Revive.
	dead bool

	// Prebound closures and in-progress message state keep the per-record
	// scheduling path free of closure allocations.
	stepFn  func()
	doneFn  func()
	curMsg  netsim.Message
	curEdge *netsim.Edge
	// recycleCandidate is the record being applied; Emit clears it when the
	// same pointer is forwarded downstream, otherwise apply recycles it.
	recycleCandidate *netsim.Record

	// Processed counts data records handled by this instance.
	Processed uint64
	// lost counts data records destroyed at this instance by faults — the
	// per-instance share of the runtime's LostRecords total, which chaos
	// oracles use to localize record-accounting violations.
	lost uint64
}

func (rt *Runtime) newInstance(spec *dataflow.OperatorSpec, idx int) *Instance {
	in := &Instance{
		rt:           rt,
		Spec:         spec,
		Index:        idx,
		outs:         make(map[string][]*netsim.Edge),
		routing:      make(map[string]*dataflow.RoutingTable),
		rrNext:       make(map[string]int),
		blockedEdges: make(map[*netsim.Edge]bool),
		aligners:     make(map[string]map[*netsim.Edge]bool),
		wmPer:        make(map[*netsim.Edge]simtime.Time),
		curWM:        -1,
		costRng:      simtime.NewRNG(rt.Cfg.Seed, fmt.Sprintf("cost/%s/%d", spec.Name, idx)),
		srcRng:       simtime.NewRNG(rt.Cfg.Seed, fmt.Sprintf("src/%s/%d", spec.Name, idx)),
	}
	maxKG := spec.MaxKeyGroups
	if maxKG == 0 {
		maxKG = 128
	}
	in.store = state.NewStore(maxKG)
	if spec.NewLogic != nil {
		in.logic = spec.NewLogic()
		if b, ok := in.logic.(dataflow.Binder); ok {
			b.Bind(in)
		}
	}
	in.handler = &NativeHandler{}
	in.stepFn = in.step
	in.doneFn = in.processDone
	return in
}

// Endpoint identifies this instance as a channel endpoint.
func (in *Instance) Endpoint() netsim.Endpoint {
	return netsim.Endpoint{Op: in.Spec.Name, Index: in.Index}
}

// Name returns "op[idx]".
func (in *Instance) Name() string { return in.Endpoint().String() }

// Store exposes the instance's keyed state.
func (in *Instance) Store() *state.Store { return in.store }

// Logic exposes the instance's operator logic (tests inspect sinks this way).
func (in *Instance) Logic() dataflow.Logic { return in.logic }

// Runtime returns the owning runtime.
func (in *Instance) Runtime() *Runtime { return in.rt }

// SetHandler replaces the input handler (DRRS's Scale Input Handler seam).
func (in *Instance) SetHandler(h InputHandler) { in.handler = h }

// Handler returns the current input handler.
func (in *Instance) Handler() InputHandler { return in.handler }

// SetHook installs a scaling hook.
func (in *Instance) SetHook(h ScaleHook) { in.hook = h }

// Hook returns the installed scaling hook, or nil.
func (in *Instance) Hook() ScaleHook { return in.hook }

// InEdges returns the instance's input channels in wiring order.
func (in *Instance) InEdges() []*netsim.Edge { return in.ins }

// OutEdges returns the channels toward a downstream operator, indexed by the
// target instance index.
func (in *Instance) OutEdges(op string) []*netsim.Edge { return in.outs[op] }

// Routing returns this instance's routing table toward a keyed downstream
// operator.
func (in *Instance) Routing(op string) *dataflow.RoutingTable { return in.routing[op] }

// SetRouting replaces a routing table (used when installing planned tables).
func (in *Instance) SetRouting(op string, rt *dataflow.RoutingTable) { in.routing[op] = rt }

func (in *Instance) addInput(e *netsim.Edge) { in.ins = append(in.ins, e) }
func (in *Instance) addOutput(op string, idx int, e *netsim.Edge) {
	edges := in.outs[op]
	if idx != len(edges) {
		panic(fmt.Sprintf("engine: out-of-order wiring %s→%s[%d], have %d", in.Name(), op, idx, len(edges)))
	}
	in.outs[op] = append(edges, e)
}

// BlockEdge excludes an input channel from the handler (alignment blocking).
func (in *Instance) BlockEdge(e *netsim.Edge) { in.blockedEdges[e] = true }

// UnblockEdge re-admits a blocked channel and wakes the instance.
func (in *Instance) UnblockEdge(e *netsim.Edge) {
	delete(in.blockedEdges, e)
	in.Wake()
}

// EdgeBlocked reports whether e is alignment-blocked.
func (in *Instance) EdgeBlocked(e *netsim.Edge) bool { return in.blockedEdges[e] }

// BacklogLen reports the source backlog size (0 for non-sources).
func (in *Instance) BacklogLen() int { return in.backlog.Len() }

// Suspended reports whether the instance is currently suspension-blocked.
func (in *Instance) Suspended() bool { return in.suspended }

// Wake schedules a processing attempt. Wakes coalesce: any number of calls
// before the next step produce a single step. The indirection through the
// scheduler keeps the engine free of reentrant processing.
func (in *Instance) Wake() {
	if in.wakeQueued {
		return
	}
	in.wakeQueued = true
	in.rt.Sched.After(0, in.stepFn)
}

func (in *Instance) step() {
	in.wakeQueued = false
	if in.Spec.Source != nil {
		// Sources share one gate-and-drain path with dataflow.SourcePump, so
		// timer-driven and batched ingestion can never diverge.
		in.pumpBacklog()
		return
	}
	if in.Halted || in.busy {
		return
	}
	if len(in.pending) > 0 && !in.drainPending() {
		return // blocked on output; edge wake will retry
	}
	msg, edge, st := in.handler.Next(in)
	switch st {
	case NextOK:
		in.noteSuspend(false)
		in.process(msg, edge)
	case NextSuspended:
		in.noteSuspend(true)
	case NextIdle:
		in.noteSuspend(false)
	}
}

func (in *Instance) noteSuspend(on bool) {
	if on == in.suspended {
		return
	}
	in.suspended = on
	if on {
		in.rt.Scale.SuspendBegin(in.Name(), in.rt.Sched.Now())
	} else {
		in.rt.Scale.SuspendEnd(in.Name(), in.rt.Sched.Now())
	}
}

// CanProcess is the handler-side processability test: control messages and
// latency markers always pass; data records — including rerouted ones, which
// wait in the re-route channel until their state chunk lands — are gated by
// the scaling hook.
func (in *Instance) CanProcess(m netsim.Message, e *netsim.Edge) bool {
	if rr, ok := m.(*netsim.Rerouted); ok {
		if inner, ok := rr.Inner.(*netsim.Record); ok && !inner.Marker && in.hook != nil {
			return in.hook.Processable(in, inner, e)
		}
		return true
	}
	r, ok := m.(*netsim.Record)
	if !ok || r.Marker {
		return true
	}
	if in.hook == nil {
		return true
	}
	return in.hook.Processable(in, r, e)
}

const controlCost = 10 * simtime.Microsecond

func (in *Instance) costOf(m netsim.Message) simtime.Duration {
	switch r := m.(type) {
	case *netsim.Record:
		if r.Marker {
			return 2 * controlCost
		}
		c := in.costRng.Jitter(in.Spec.CostPerRecord, in.Spec.CostJitter)
		speed := in.rt.Cluster.SpeedOf(in.Endpoint())
		if speed != 1.0 && speed > 0 {
			c = simtime.Duration(float64(c) / speed)
		}
		return c
	case *netsim.Rerouted:
		// A rerouted data record costs what a record costs; wrapped control
		// messages stay cheap.
		if inner, ok := r.Inner.(*netsim.Record); ok && !inner.Marker {
			return in.costOf(inner)
		}
		return controlCost
	default:
		return controlCost
	}
}

func (in *Instance) process(m netsim.Message, e *netsim.Edge) {
	in.busy = true
	in.curMsg, in.curEdge = m, e
	in.rt.Sched.After(in.costOf(m), in.doneFn)
}

func (in *Instance) processDone() {
	m, e := in.curMsg, in.curEdge
	in.curMsg, in.curEdge = nil, nil
	in.busy = false
	if in.dead {
		// The instance crashed while this message was mid-service. Data in
		// the jaws of the crash is lost (a real system rewinds to the last
		// checkpoint; the simulator counts the loss instead), but control
		// messages keep their protocol obligations — discarding a barrier or
		// a confirm here would wedge an alignment forever.
		switch msg := m.(type) {
		case *netsim.Record:
			if !msg.Marker {
				in.noteLost(1)
			}
			in.rt.recPool.Put(msg)
		case *netsim.Rerouted:
			if inner, ok := msg.Inner.(*netsim.Record); ok {
				if !inner.Marker {
					in.noteLost(1)
				}
				in.rt.recPool.Put(inner)
			} else {
				in.apply(m, e)
			}
		default:
			in.apply(m, e)
		}
		return
	}
	in.apply(m, e)
	in.Wake()
}

// noteLost records n data records destroyed by a fault at this instance,
// keeping the per-instance and runtime-wide tallies in lockstep.
func (in *Instance) noteLost(n uint64) {
	in.lost += n
	in.rt.noteLostRecords(n)
}

// LostRecords reports how many data records faults destroyed at this
// instance (mid-service at a crash, or stranded after a routing repair).
func (in *Instance) LostRecords() uint64 { return in.lost }

// Fail kills the instance in place (its node crashed): processing freezes,
// keyed state is wiped, and input edges keep queueing — peers back-pressure
// against the corpse instead of observing a vanished endpoint, which is what
// lets in-flight scaling protocols settle deterministically. Returns the
// sorted key groups whose state was lost, for checkpoint-based recovery.
func (in *Instance) Fail() []int {
	in.dead = true
	in.Halted = true
	// Alignment state is volatile: a crashed process forgets which barrier
	// epochs it was collecting, and the in-flight barriers died with it. Keep
	// the input channels admissible, or the revived instance deadlocks
	// waiting on markers that can never arrive (its inboxes fill, upstream
	// backpressures, and the records are neither delivered nor counted lost).
	clear(in.blockedEdges)
	clear(in.aligners)
	lost := in.store.Groups()
	for _, kg := range lost {
		in.store.ExtractGroup(kg)
	}
	return lost
}

// Dead reports whether the instance is currently crashed.
func (in *Instance) Dead() bool { return in.dead }

// Revive returns a crashed instance to service. The caller (the fault
// injector's recovery path) is responsible for re-placing it on a live node
// and re-installing state before calling this.
func (in *Instance) Revive() {
	in.dead = false
	in.Halted = false
	in.Wake()
}

// ChargeBusy occupies the instance for d without processing anything — the
// recovery path uses it to charge checkpoint-replay time (progress since the
// last snapshot is re-earned, not free).
func (in *Instance) ChargeBusy(d simtime.Duration) {
	if d <= 0 {
		in.Wake()
		return
	}
	in.busy = true
	in.rt.Sched.After(d, func() {
		in.busy = false
		in.Wake()
	})
}

// apply dispatches one consumed message.
func (in *Instance) apply(m netsim.Message, e *netsim.Edge) {
	switch msg := m.(type) {
	case *netsim.Record:
		if in.hook != nil && in.hook.BeforeRecord(in, msg, e) {
			return
		}
		if msg.Marker {
			in.forwardMarker(msg)
			return
		}
		in.ApplyRecord(msg)
	case *netsim.Watermark:
		in.onWatermark(msg, e)
	case *netsim.CheckpointBarrier:
		if in.hook != nil && in.hook.OnCheckpointBarrier(in, msg, e) {
			return
		}
		in.onCheckpointBarrier(msg, e)
	default:
		if in.hook != nil && in.hook.OnScaleMessage(in, m, e) {
			return
		}
		if sb, ok := m.(*netsim.ScaleBarrier); ok {
			in.defaultScaleBarrier(sb, e)
		}
		// Other unhandled scale messages are dropped; mechanisms install
		// hooks wherever their messages can arrive.
	}
}

// ApplyRecord runs one data record through the instance's logic with the
// record-recycling bookkeeping: the record dies here — and returns to the
// ingest pool — unless the logic forwards the very same pointer downstream
// (Emit clears the candidate). Scaling hooks use it for rerouted records so
// the migration window recycles like the steady state.
func (in *Instance) ApplyRecord(r *netsim.Record) {
	if in.Spec.KeyedInput && !in.store.HasGroup(r.KeyGroup) {
		// Stranded: the record was routed here before a fault-recovery repair
		// repointed its key group elsewhere. A real system replays it from
		// the rewound checkpoint; the simulator drops it and counts the loss.
		// Unreachable on a healthy run — every mechanism lands state before
		// its records become processable.
		in.noteLost(1)
		in.rt.recPool.Put(r)
		return
	}
	in.Processed++
	if in.logic == nil {
		return
	}
	in.recycleCandidate = r
	in.logic.OnRecord(in, r)
	if in.recycleCandidate == r {
		in.rt.recPool.Put(r)
	}
	in.recycleCandidate = nil
}

// --- OpContext implementation (what operator logic sees) ---

// Emit routes a record to all downstream operators. With multiple outputs the
// record is copied per output stream.
func (in *Instance) Emit(r *netsim.Record) {
	if r == in.recycleCandidate {
		in.recycleCandidate = nil // forwarded: the pointer lives on downstream
	}
	outs := in.rt.Graph.Outputs(in.Spec.Name)
	for i, se := range outs {
		rec := r
		if i > 0 {
			c := in.rt.recPool.Get()
			*c = *r
			rec = c
		}
		in.routeTo(se, rec)
	}
}

// NewRecord draws a zeroed record from the runtime's recycling pool (the
// emission-side counterpart of SourceContext.NewRecord).
func (in *Instance) NewRecord() *netsim.Record { return in.rt.recPool.Get() }

// Now implements dataflow.OpContext.
func (in *Instance) Now() simtime.Time { return in.rt.Sched.Now() }

// State implements dataflow.OpContext.
func (in *Instance) State() *state.Store { return in.store }

// InstanceIndex implements dataflow.OpContext.
func (in *Instance) InstanceIndex() int { return in.Index }

// CurrentWatermark implements dataflow.OpContext.
func (in *Instance) CurrentWatermark() simtime.Time { return in.curWM }

func (in *Instance) routeTo(se dataflow.StreamEdge, r *netsim.Record) {
	edges := in.outs[se.To]
	if len(edges) == 0 {
		return
	}
	switch se.Exchange {
	case dataflow.ExchangeKeyed:
		toSpec := in.rt.Graph.Operator(se.To)
		kg := state.KeyGroupOf(r.Key, toSpec.MaxKeyGroups)
		r.KeyGroup = kg
		idx := in.routing[se.To].Owner(kg)
		in.send(edges[idx], r)
	case dataflow.ExchangeRebalance:
		i := in.rrNext[se.To]
		in.rrNext[se.To] = (i + 1) % len(edges)
		in.send(edges[i], r)
	case dataflow.ExchangeBroadcast:
		for i, e := range edges {
			rec := r
			if i > 0 {
				c := in.rt.recPool.Get()
				*c = *r
				rec = c
			}
			in.send(e, rec)
		}
	}
}

// send enqueues m on e, preserving emission order through the pending queue
// when the edge refuses (backpressure).
func (in *Instance) send(e *netsim.Edge, m netsim.Message) {
	if len(in.pending) > 0 || !e.TrySend(m) {
		in.pending = append(in.pending, pendingEmit{edge: e, msg: m})
	}
}

func (in *Instance) drainPending() bool {
	for len(in.pending) > 0 {
		pe := in.pending[0]
		if !pe.edge.TrySend(pe.msg) {
			return false
		}
		in.pending = in.pending[1:]
	}
	return true
}

// PendingEmits reports the blocked-emission queue length.
func (in *Instance) PendingEmits() int { return len(in.pending) }

// RedirectPending retargets blocked emissions matching take from one edge to
// another (part of DRRS's output-cache redirection: the pending queue is the
// tail of the output cache).
func (in *Instance) RedirectPending(from, to *netsim.Edge, take func(*netsim.Record) bool) int {
	var n int
	for i := range in.pending {
		if in.pending[i].edge != from {
			continue
		}
		if r, ok := in.pending[i].msg.(*netsim.Record); ok && take(r) {
			in.pending[i].edge = to
			n++
		}
	}
	return n
}

// broadcastControl enqueues a control message to every output edge of every
// downstream operator, preserving order relative to pending records.
func (in *Instance) broadcastControl(m netsim.Message) {
	for _, se := range in.rt.Graph.Outputs(in.Spec.Name) {
		for _, e := range in.outs[se.To] {
			in.send(e, m)
		}
	}
}

// ForwardMarker passes a latency marker downstream, or records its latency at
// a sink; exported for scaling hooks that consume rerouted markers.
func (in *Instance) ForwardMarker(r *netsim.Record) { in.forwardMarker(r) }

// forwardMarker passes a latency marker downstream, or records its latency at
// a sink (no outputs).
func (in *Instance) forwardMarker(r *netsim.Record) {
	outs := in.rt.Graph.Outputs(in.Spec.Name)
	if len(outs) == 0 {
		in.rt.Latency.Observe(in.rt.Sched.Now(), r.IngestTime)
		if in.rt.OnMarkerSink != nil {
			in.rt.OnMarkerSink(r)
		}
		// The marker's journey ends at the sink; recycle it. OnMarkerSink must
		// not retain the pointer.
		in.rt.recPool.Put(r)
		return
	}
	in.Emit(r)
}

// --- Watermarks ---

func (in *Instance) onWatermark(w *netsim.Watermark, e *netsim.Edge) {
	if e != nil {
		in.wmPer[e] = w.WM
	}
	min := simtime.Time(-1)
	for _, edge := range in.ins {
		wm, ok := in.wmPer[edge]
		if !ok {
			return // some channel has no watermark yet
		}
		if min == -1 || wm < min {
			min = wm
		}
	}
	if min > in.curWM {
		in.curWM = min
		if in.logic != nil {
			in.logic.OnWatermark(in, min)
		}
		in.broadcastControl(&netsim.Watermark{WM: min})
	}
}

// SeedWatermark initializes a channel's watermark (used when a scaling
// mechanism wires a new instance so its windows don't stall forever).
func (in *Instance) SeedWatermark(e *netsim.Edge, wm simtime.Time) {
	if _, ok := in.wmPer[e]; !ok {
		in.wmPer[e] = wm
	}
}

// --- Alignment machinery (checkpoints and coupled scale barriers) ---

// AlignOn is the exported alignment primitive for scaling mechanisms: it
// records that the barrier identified by key arrived on e, blocks e, and
// reports whether every current input channel has delivered it.
func (in *Instance) AlignOn(key string, e *netsim.Edge) bool { return in.alignOn(key, e) }

// ReleaseAlignment unblocks the channels captured under key.
func (in *Instance) ReleaseAlignment(key string) { in.releaseAlignment(key) }

// BroadcastControl enqueues a control message on every output edge,
// preserving order relative to pending emissions.
func (in *Instance) BroadcastControl(m netsim.Message) { in.broadcastControl(m) }

// SendControl enqueues a control message toward one downstream instance,
// preserving order relative to pending emissions.
func (in *Instance) SendControl(op string, idx int, m netsim.Message) {
	in.send(in.outs[op][idx], m)
}

// alignOn records that barrier key arrived on e, blocks e, and reports
// whether all current input channels have now delivered it.
func (in *Instance) alignOn(key string, e *netsim.Edge) bool {
	set := in.aligners[key]
	if set == nil {
		set = make(map[*netsim.Edge]bool)
		in.aligners[key] = set
	}
	if e != nil {
		set[e] = true
		in.BlockEdge(e)
	}
	return len(set) >= len(in.ins)
}

// releaseAlignment unblocks the channels captured under key, in sorted
// (src, dst) endpoint order: unblocking re-arms delivery timers, and map
// order here would vary the same-instant FIFO sequence between runs.
func (in *Instance) releaseAlignment(key string) {
	edges := make([]*netsim.Edge, 0, len(in.aligners[key]))
	for e := range in.aligners[key] {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Src != b.Src {
			if a.Src.Op != b.Src.Op {
				return a.Src.Op < b.Src.Op
			}
			return a.Src.Index < b.Src.Index
		}
		if a.Dst.Op != b.Dst.Op {
			return a.Dst.Op < b.Dst.Op
		}
		return a.Dst.Index < b.Dst.Index
	})
	for _, e := range edges {
		in.UnblockEdge(e)
	}
	delete(in.aligners, key)
}

func (in *Instance) onCheckpointBarrier(b *netsim.CheckpointBarrier, e *netsim.Edge) {
	key := fmt.Sprintf("ckpt:%d", b.ID)
	in.alignOn(key, e)
	// A checkpoint expects barriers only on the ordinary channels that
	// existed when it was triggered: channels wired mid-scaling (new
	// instances, re-route paths) never carry this barrier.
	started := in.rt.ckptStarted(b.ID)
	expected := 0
	for _, edge := range in.ins {
		if !edge.Auxiliary && edge.Created <= started {
			expected++
		}
	}
	if len(in.aligners[key]) < expected {
		return
	}
	// Aligned: snapshot, forward, unblock.
	snapCost := simtime.Duration(float64(in.store.TotalBytes()) / in.rt.Cfg.SnapshotBytesPerSec * float64(simtime.Second))
	in.busy = true
	in.rt.Sched.After(snapCost, func() {
		in.busy = false
		in.broadcastControl(&netsim.CheckpointBarrier{ID: b.ID})
		in.releaseAlignment(key)
		in.rt.ackCheckpoint(b.ID, in.Name())
		// Replay any integrated DRRS signals behind the barrier (Fig 9a).
		for _, im := range b.Integrated {
			if in.hook != nil {
				in.hook.OnScaleMessage(in, im, e)
			}
		}
		in.Wake()
	})
}

// defaultScaleBarrier is the non-participating-operator behaviour for coupled
// scaling signals: align, then forward (no state action).
func (in *Instance) defaultScaleBarrier(b *netsim.ScaleBarrier, e *netsim.Edge) {
	key := fmt.Sprintf("scale:%d:%d", b.ScaleID, b.Round)
	if !in.alignOn(key, e) {
		return
	}
	in.broadcastControl(&netsim.ScaleBarrier{ScaleID: b.ScaleID, Round: b.Round})
	in.releaseAlignment(key)
}

// --- Source machinery ---

type sourceContext struct{ in *Instance }

func (c sourceContext) Now() simtime.Time { return c.in.rt.Sched.Now() }
func (c sourceContext) After(d simtime.Duration, fn func()) {
	c.in.rt.Sched.After(d, fn)
}
func (c sourceContext) Ingest(r *netsim.Record) { c.in.ingest(r) }

// IngestNow implements dataflow.SourcePump: same stamping and enqueueing as
// Ingest, but the backlog drains synchronously instead of via a wake event.
func (c sourceContext) IngestNow(r *netsim.Record) {
	c.in.enqueueIngest(r)
	c.in.pumpBacklog()
}
func (c sourceContext) NewRecord() *netsim.Record {
	return c.in.rt.recPool.Get()
}
func (c sourceContext) EmitWatermark(wm simtime.Time) {
	c.in.backlog.PushBack(&netsim.Watermark{WM: wm})
	c.in.Wake()
}
func (c sourceContext) InstanceIndex() int { return c.in.Index }
func (c sourceContext) Parallelism() int   { return c.in.Spec.Parallelism }
func (c sourceContext) BacklogLen() int    { return c.in.backlog.Len() }

func (in *Instance) startSource() {
	in.Spec.Source(sourceContext{in: in})
}

func (in *Instance) ingest(r *netsim.Record) {
	in.enqueueIngest(r)
	in.Wake()
}

// enqueueIngest is the shared stamp-and-enqueue half of Ingest/IngestNow;
// the two paths differ only in how the backlog then drains.
func (in *Instance) enqueueIngest(r *netsim.Record) {
	if r.IngestTime == 0 {
		r.IngestTime = in.rt.Sched.Now()
	}
	if r.Seq == 0 {
		r.Seq = in.rt.NextSeq()
	}
	in.backlog.PushBack(r)
}

// pumpBacklog is the synchronous drain behind dataflow.SourcePump: the same
// gates step applies to a source (halted, mid-snapshot, blocked pending
// emissions), then a full backlog drain — without the zero-delay wake event
// a Wake would cost per record.
func (in *Instance) pumpBacklog() {
	if in.Halted || in.busy {
		return
	}
	if len(in.pending) > 0 && !in.drainPending() {
		return // blocked on output; edge wake will retry
	}
	in.drainBacklog()
}

// drainBacklog emits queued source messages until backpressure bites (or the
// source is data-paused).
func (in *Instance) drainBacklog() {
	for in.backlog.Len() > 0 {
		if len(in.pending) > 0 && !in.drainPending() {
			return
		}
		if in.PauseData {
			if _, isRec := in.backlog.At(0).(*netsim.Record); isRec {
				return
			}
		}
		m := in.backlog.PopFront()
		switch msg := m.(type) {
		case *netsim.Record:
			if !msg.Marker {
				in.rt.Throughput.Observe(in.rt.Sched.Now(), 1)
			}
			in.Emit(msg)
		case *netsim.Watermark:
			in.broadcastControl(msg)
		default:
			in.broadcastControl(m)
			if cb, ok := m.(*netsim.CheckpointBarrier); ok && in.PauseAfterCkpt != 0 && cb.ID == in.PauseAfterCkpt {
				in.PauseData = true
				in.PauseAfterCkpt = 0
			}
		}
	}
}

// sourceEmitBarrier injects a checkpoint barrier at a source: the source
// snapshots immediately (offsets are trivial) and the barrier joins the
// stream behind already-emitted records.
func (in *Instance) sourceEmitBarrier(b *netsim.CheckpointBarrier) {
	in.backlog.PushBack(b)
	in.rt.ackCheckpoint(b.ID, in.Name())
	in.Wake()
}
