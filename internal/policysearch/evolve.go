package policysearch

import (
	"drrs/internal/fitness"
	"drrs/internal/simtime"
)

// EvolveConfig parameterizes an evolutionary sweep.
type EvolveConfig struct {
	// Scenario and Mechanism name the workload under search.
	Scenario  string
	Mechanism string
	// Seeds are the per-candidate evaluation seeds (each candidate runs once
	// per seed; fitness is the mean).
	Seeds []int64
	// SearchSeed drives all evolutionary randomness through the named stream
	// "policysearch/<scenario>": a (scenario, search-seed) tuple fully
	// determines the sweep.
	SearchSeed int64
	// Population and Generations size the sweep (defaults 8 × 3). Every
	// candidate across all generations is evaluated at most once — mutation
	// that lands on a seen candidate re-rolls.
	Population  int
	Generations int
	// Weights score candidates for elite selection (default DefaultWeights).
	Weights fitness.Weights
	// Space is the knob menu mutations move along (default DefaultSpace).
	Space Space
}

func (cfg *EvolveConfig) fillDefaults() {
	if cfg.Mechanism == "" {
		cfg.Mechanism = "drrs"
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1}
	}
	if cfg.Population == 0 {
		cfg.Population = 8
	}
	if cfg.Generations == 0 {
		cfg.Generations = 3
	}
	if cfg.Weights == (fitness.Weights{}) {
		cfg.Weights = fitness.DefaultWeights()
	}
	if len(cfg.Space.Policies) == 0 {
		cfg.Space = DefaultSpace()
	}
}

// Evolve runs a mutation-only evolutionary sweep: a seeded random population,
// then per generation an elite selection (best half by score over everything
// evaluated so far) whose mutated offspring form the next population. It
// returns every candidate evaluated, across all generations — callers take
// Pareto of the result for the front, so non-elite trade-offs survive.
//
// Duplicate work is structurally impossible: the seen-set rejects any
// mutation that lands on an already-evaluated candidate, and a sweep whose
// space is exhausted simply stops early.
func Evolve(cfg EvolveConfig) []Evaluated {
	cfg.fillDefaults()
	rng := simtime.NewRNG(cfg.SearchSeed, "policysearch/"+cfg.Scenario)
	seen := make(map[Candidate]bool)
	fill := func(dst []Candidate, propose func() Candidate) []Candidate {
		// Bounded rejection sampling: a small or nearly-exhausted space stops
		// producing fresh candidates long before the attempt budget.
		for attempts := 0; len(dst) < cfg.Population && attempts < cfg.Population*64; attempts++ {
			c := propose()
			if !seen[c] {
				seen[c] = true
				dst = append(dst, c)
			}
		}
		return dst
	}

	pop := fill(nil, func() Candidate { return randomCandidate(rng, cfg.Space) })
	var all []Evaluated
	for gen := 0; gen < cfg.Generations && len(pop) > 0; gen++ {
		all = append(all, Evaluate(cfg.Scenario, cfg.Mechanism, pop, cfg.Seeds, cfg.Weights)...)
		if gen == cfg.Generations-1 {
			break
		}
		// Elites: best half of everything evaluated so far, by score.
		elite := append([]Evaluated(nil), all...)
		sortEvaluated(elite)
		n := len(elite) / 2
		if n < 2 {
			n = len(elite)
		}
		elite = elite[:n]
		pop = fill(nil, func() Candidate {
			return mutate(rng, elite[rng.Intn(len(elite))].Candidate, cfg.Space)
		})
	}
	return all
}

// randomCandidate draws one point uniformly from the space's menus, zeroing
// knobs the drawn policy ignores so the seen-set treats dead-knob variants
// as the same candidate.
func randomCandidate(rng *simtime.RNG, s Space) Candidate {
	pol := s.Policies[rng.Intn(len(s.Policies))]
	pats, hors, bounds := s.axes(pol)
	b := bounds[rng.Intn(len(bounds))]
	return Candidate{
		Policy:   pol,
		Cadence:  s.Cadences[rng.Intn(len(s.Cadences))],
		Debounce: s.Debounces[rng.Intn(len(s.Debounces))],
		Patience: pats[rng.Intn(len(pats))],
		Horizon:  hors[rng.Intn(len(hors))],
		Min:      b[0],
		Max:      b[1],
	}
}

// mutate moves one knob of the parent to a different menu value. Mutating
// the policy re-resolves the dead-knob axes (a threshold child drops the
// parent's patience; a predictive child draws a horizon).
func mutate(rng *simtime.RNG, parent Candidate, s Space) Candidate {
	c := parent
	switch rng.Intn(5) {
	case 0:
		c.Policy = pick(rng, s.Policies, c.Policy)
	case 1:
		c.Cadence = pick(rng, s.Cadences, c.Cadence)
	case 2:
		c.Debounce = pick(rng, s.Debounces, c.Debounce)
	case 3:
		pats, _, _ := s.axes(c.Policy)
		c.Patience = pick(rng, pats, c.Patience)
	case 4:
		_, hors, _ := s.axes(c.Policy)
		c.Horizon = pick(rng, hors, c.Horizon)
	}
	// Re-normalize dead knobs after a policy flip.
	pats, hors, _ := s.axes(c.Policy)
	if len(pats) == 1 && pats[0] == 0 {
		c.Patience = 0
	} else if c.Patience == 0 {
		c.Patience = pats[rng.Intn(len(pats))]
	}
	if len(hors) == 1 && hors[0] == 0 {
		c.Horizon = 0
	} else if c.Horizon == 0 {
		c.Horizon = hors[rng.Intn(len(hors))]
	}
	return c
}

// pick draws a menu value different from cur when the menu has one; a
// single-entry menu returns its only value.
func pick[T comparable](rng *simtime.RNG, menu []T, cur T) T {
	if len(menu) == 1 {
		return menu[0]
	}
	for {
		if v := menu[rng.Intn(len(menu))]; v != cur {
			return v
		}
	}
}
