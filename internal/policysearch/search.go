// Package policysearch searches the scaling-policy knob space offline: grid
// and evolutionary sweeps fan candidate controller configurations over the
// parallel run harness, score each candidate's runs with the multi-objective
// fitness package, and report the per-scenario Pareto front — the repo's
// first subsystem whose output is a policy rather than a measurement.
//
// Everything is deterministic: candidate enumeration is ordered, evaluation
// rides bench.RunParallel (bit-for-bit identical at any worker count), and
// all evolutionary randomness draws from one named simtime RNG stream, so a
// (scenario, search-seed) tuple fully determines the sweep.
package policysearch

import (
	"fmt"
	"sort"

	"drrs/internal/bench"
	"drrs/internal/fitness"
	"drrs/internal/simtime"
)

// Candidate is one point in the policy knob space: which policy runs the
// loop and how its controller is tuned. Zero-valued knobs keep the
// controller/policy defaults, so the zero Candidate with only Policy set is
// the stock configuration.
type Candidate struct {
	// Policy names a registered control policy.
	Policy string
	// Cadence is the controller's sampling period; Debounce the minimum
	// spacing between accepted decisions.
	Cadence  simtime.Duration
	Debounce simtime.Duration
	// Patience is the policy's scale-in hysteresis (samples that must agree
	// before shrinking); ignored by threshold, which has no such counter.
	Patience int
	// Horizon is the predictive policy's projection distance; ignored by the
	// reactive policies.
	Horizon simtime.Duration
	// Min and Max clamp the reachable parallelism (0 = scenario default).
	Min, Max int
}

// Label renders the candidate compactly for tables and artifacts, omitting
// knobs the policy ignores.
func (c Candidate) Label() string {
	s := fmt.Sprintf("%s/c%gms/d%gms", c.Policy, c.Cadence.Millis(), c.Debounce.Millis())
	if c.Patience > 0 && c.Policy != "threshold" {
		s += fmt.Sprintf("/p%d", c.Patience)
	}
	if c.Horizon > 0 && c.Policy == "predictive" {
		s += fmt.Sprintf("/h%gms", c.Horizon.Millis())
	}
	if c.Min > 0 || c.Max > 0 {
		s += fmt.Sprintf("/[%d..%d]", c.Min, c.Max)
	}
	return s
}

// Apply returns a copy of the scenario driven by this candidate's controller
// configuration. A scenario that already runs a ControllerDriver keeps its
// calibration (RatedRPS, degraded-mode debounce); scripted scenarios get a
// fresh driver, closing the loop the candidate describes.
func (c Candidate) Apply(sc bench.Scenario) bench.Scenario {
	d := &bench.ControllerDriver{}
	if own, ok := sc.Driver.(*bench.ControllerDriver); ok {
		clone := *own
		d = &clone
	}
	d.Policy = c.Policy
	d.Cadence = c.Cadence
	d.Debounce = c.Debounce
	d.Patience = c.Patience
	d.Horizon = c.Horizon
	if c.Min > 0 {
		d.Min = c.Min
	}
	if c.Max > 0 {
		d.Max = c.Max
	}
	sc.Driver = d
	return sc
}

// Space is the searchable knob menu. Grid takes its cartesian product;
// Evolve mutates along its axes. Menus are value lists rather than ranges so
// both search modes agree on what "adjacent" means.
type Space struct {
	Policies  []string
	Cadences  []simtime.Duration
	Debounces []simtime.Duration
	Patiences []int
	Horizons  []simtime.Duration
	// Bounds lists [min, max] clamp pairs; {0, 0} keeps scenario defaults.
	Bounds [][2]int
}

// DefaultSpace brackets each controller default (cadence 500 ms, debounce
// 2 s, patience 3–4, horizon 3 s) with one faster and one slower setting —
// 63 grid candidates over the three policies.
func DefaultSpace() Space {
	return Space{
		Policies:  []string{"backlog", "predictive", "threshold"},
		Cadences:  []simtime.Duration{250 * simtime.Millisecond, 500 * simtime.Millisecond, simtime.Second},
		Debounces: []simtime.Duration{simtime.Second, 2 * simtime.Second, 4 * simtime.Second},
		Patiences: []int{2, 4, 6},
		Horizons:  []simtime.Duration{2 * simtime.Second, 3 * simtime.Second, 5 * simtime.Second},
	}
}

// SmokeSpace is the CI-sized grid: two reactive policies, two cadences, two
// debounces — 10 candidates, small enough to sweep inside a smoke-job budget
// while still producing a non-trivial front.
func SmokeSpace() Space {
	return Space{
		Policies:  []string{"backlog", "predictive"},
		Cadences:  []simtime.Duration{500 * simtime.Millisecond, simtime.Second},
		Debounces: []simtime.Duration{simtime.Second, 2 * simtime.Second},
		Patiences: []int{4},
		Horizons:  []simtime.Duration{3 * simtime.Second},
	}
}

// axes resolves the menus that apply to one policy: knobs a policy ignores
// collapse to a single zero entry so the grid never enumerates candidates
// that differ only in a dead knob (they would evaluate identically and
// crowd the front with duplicates).
func (s Space) axes(policy string) (pats []int, hors []simtime.Duration, bounds [][2]int) {
	pats = s.Patiences
	if policy == "threshold" || len(pats) == 0 {
		pats = []int{0}
	}
	hors = s.Horizons
	if policy != "predictive" || len(hors) == 0 {
		hors = []simtime.Duration{0}
	}
	bounds = s.Bounds
	if len(bounds) == 0 {
		bounds = [][2]int{{0, 0}}
	}
	return pats, hors, bounds
}

// Grid enumerates the space's cartesian product in deterministic order.
func (s Space) Grid() []Candidate {
	var out []Candidate
	for _, pol := range s.Policies {
		pats, hors, bounds := s.axes(pol)
		for _, cad := range s.Cadences {
			for _, deb := range s.Debounces {
				for _, pat := range pats {
					for _, hor := range hors {
						for _, b := range bounds {
							out = append(out, Candidate{
								Policy: pol, Cadence: cad, Debounce: deb,
								Patience: pat, Horizon: hor, Min: b[0], Max: b[1],
							})
						}
					}
				}
			}
		}
	}
	return out
}

// Evaluated is one candidate's measured fitness: the per-seed objective
// vectors, their mean, and the weighted scalar score.
type Evaluated struct {
	Candidate Candidate
	// PerSeed holds one objective vector per evaluation seed, in seed order.
	PerSeed []fitness.Components
	// Components is the per-seed mean — the vector dominance compares.
	Components fitness.Components
	// Score is Components.Score under the sweep's weights (lower is better).
	Score float64
}

// Evaluate runs every (candidate × seed) cell over the parallel harness and
// reduces each candidate to its mean objective vector. Results are in
// candidate order regardless of worker count.
func Evaluate(scenario, mech string, cands []Candidate, seeds []int64, w fitness.Weights) []Evaluated {
	w.Validate()
	specs := make([]bench.RunSpec, 0, len(cands)*len(seeds))
	for _, c := range cands {
		for _, seed := range seeds {
			specs = append(specs, bench.RunSpec{
				Scenario:  c.Apply(bench.ScenarioByName(scenario, seed)),
				Mechanism: mech,
			})
		}
	}
	outs := bench.RunParallel(specs, bench.Workers)
	evs := make([]Evaluated, len(cands))
	for i, c := range cands {
		per := make([]fitness.Components, len(seeds))
		for j := range seeds {
			per[j] = outs[i*len(seeds)+j].Fitness()
		}
		mean := fitness.Mean(per)
		evs[i] = Evaluated{Candidate: c, PerSeed: per, Components: mean, Score: mean.Score(w)}
	}
	return evs
}

// Pareto returns the non-dominated evaluated candidates (by mean objective
// vector), sorted by score so the cheapest compromise leads the front.
func Pareto(evs []Evaluated) []Evaluated {
	comps := make([]fitness.Components, len(evs))
	for i := range evs {
		comps[i] = evs[i].Components
	}
	var front []Evaluated
	for _, i := range fitness.Front(comps) {
		front = append(front, evs[i])
	}
	sortEvaluated(front)
	return front
}

// sortEvaluated orders by score, breaking ties on the label so equal-scored
// candidates list deterministically.
func sortEvaluated(evs []Evaluated) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Score != evs[j].Score {
			return evs[i].Score < evs[j].Score
		}
		return evs[i].Candidate.Label() < evs[j].Candidate.Label()
	})
}
