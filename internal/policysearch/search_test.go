package policysearch

import (
	"testing"

	"drrs/internal/bench"
	"drrs/internal/control"
	"drrs/internal/fitness"
	"drrs/internal/metrics"
	"drrs/internal/simtime"
)

// testSpace is a deliberately small menu so sweep tests stay fast: 2 policies
// × 2 cadences × 2 debounces (patience/horizon fixed) = 8 grid candidates.
func testSpace() Space {
	return Space{
		Policies:  []string{"backlog", "predictive"},
		Cadences:  []simtime.Duration{500 * simtime.Millisecond, simtime.Second},
		Debounces: []simtime.Duration{simtime.Second, 2 * simtime.Second},
		Patiences: []int{4},
		Horizons:  []simtime.Duration{3 * simtime.Second},
	}
}

func TestGridSkipsDeadKnobs(t *testing.T) {
	g := DefaultSpace().Grid()
	seen := make(map[Candidate]bool)
	for _, c := range g {
		if seen[c] {
			t.Fatalf("grid enumerated %v twice", c)
		}
		seen[c] = true
		if c.Policy == "threshold" && c.Patience != 0 {
			t.Errorf("threshold candidate %v varies dead knob Patience", c)
		}
		if c.Policy != "predictive" && c.Horizon != 0 {
			t.Errorf("%s candidate %v varies dead knob Horizon", c.Policy, c)
		}
	}
	// backlog: 3 cad × 3 deb × 3 pat = 27; predictive: ×3 horizons = 81;
	// threshold: 3×3 = 9.
	if want := 27 + 81 + 9; len(g) != want {
		t.Errorf("grid size %d, want %d", len(g), want)
	}
}

// TestCounterfactualDeterminism is the acceptance bar's first half: replaying
// the same forced intervention twice is bit-for-bit identical — the full
// outcome digest, not just headline numbers.
func TestCounterfactualDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("counterfactual replay simulates four closed-loop runs")
	}
	ivs, err := control.ParseInterventions("k=0:target=14")
	if err != nil {
		t.Fatal(err)
	}
	a := RunCounterfactual("flash-crowd-reactive", "drrs", 5, ivs)
	b := RunCounterfactual("flash-crowd-reactive", "drrs", 5, ivs)
	if ad, bd := bench.OutcomeDigest(a.Forced), bench.OutcomeDigest(b.Forced); ad != bd {
		t.Errorf("forced replay digests differ: 0x%016x vs 0x%016x", ad, bd)
	}
	if ad, bd := bench.OutcomeDigest(a.Base), bench.OutcomeDigest(b.Base); ad != bd {
		t.Errorf("baseline replay digests differ: 0x%016x vs 0x%016x", ad, bd)
	}
	// The fork must actually fork: decision 0 redirected to the forced
	// target, marked as forced, and the two runs' digests must differ.
	if len(a.Forced.Decisions) == 0 {
		t.Fatal("forced run recorded no decisions")
	}
	d0 := a.Forced.Decisions[0]
	if !d0.Forced || d0.To != 14 {
		t.Errorf("decision 0 = %+v, want Forced with To=14", d0)
	}
	if d0.Snapshot.At != d0.At {
		t.Errorf("decision 0 snapshot taken at %v, decision fired at %v — the trigger evidence is missing", d0.Snapshot.At, d0.At)
	}
	if bench.OutcomeDigest(a.Base) == bench.OutcomeDigest(a.Forced) {
		t.Error("forcing target=14 at decision 0 left the outcome identical — the intervention did nothing")
	}
}

// TestAllNoopMatchesUnscaledRun is the acceptance bar's second half: forcing
// noop at every decision leaves the controller recording decisions but
// launching nothing, so the data plane must evolve exactly as under the
// empty wave program — the nil-mechanism run of the same seeded scenario.
// (Audit-trail fields legitimately differ: the forced run still samples and
// decides; only the actions are dropped.)
func TestAllNoopMatchesUnscaledRun(t *testing.T) {
	if testing.Short() {
		t.Skip("noop equivalence simulates two closed-loop runs")
	}
	ivs, err := control.ParseInterventions("all:noop")
	if err != nil {
		t.Fatal(err)
	}
	outs := bench.RunParallel([]bench.RunSpec{
		{Scenario: bench.ScenarioByName("flash-crowd-reactive", 5).WithInterventions(ivs), Mechanism: "drrs"},
		{Scenario: bench.ScenarioByName("flash-crowd-reactive", 5), Mechanism: "no-scale"},
	}, 0)
	forced, unscaled := outs[0], outs[1]

	if len(forced.Decisions) == 0 {
		t.Fatal("all-noop run recorded no decisions — the policy never fired, so the test proves nothing")
	}
	for _, d := range forced.Decisions {
		if !d.Forced || d.Launched {
			t.Errorf("decision %d = %+v, want forced and unlaunched", d.Seq, d)
		}
	}
	if len(forced.Waves) != 0 {
		t.Errorf("all-noop run launched %d operations, want 0", len(forced.Waves))
	}

	// Data-plane equivalence, sample for sample.
	eqSeries := func(name string, a, b []metrics.Point) {
		t.Helper()
		if len(a) != len(b) {
			t.Errorf("%s: %d points vs %d", name, len(a), len(b))
			return
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: point %d differs: %+v vs %+v", name, i, a[i], b[i])
				return
			}
		}
	}
	eqSeries("latency", forced.Latency.Series.Points(), unscaled.Latency.Series.Points())
	eqSeries("throughput", forced.Throughput.Series().Points(), unscaled.Throughput.Series().Points())
	if forced.Throughput.Total() != unscaled.Throughput.Total() {
		t.Errorf("records processed: %d vs %d", forced.Throughput.Total(), unscaled.Throughput.Total())
	}
	if forced.TransferredBytes != 0 || unscaled.TransferredBytes != 0 {
		t.Errorf("migration bytes: forced %d, unscaled %d, want 0 and 0", forced.TransferredBytes, unscaled.TransferredBytes)
	}
	// EndAt is deliberately not compared: it is the last *scheduler* event's
	// instant, and the forced run's final cadence tick (control plane, at the
	// horizon) outlives the unscaled run's last data event.
}

// TestGridSearchFront is the acceptance bar for the sweep: the smoke-sized
// grid on flash-crowd-reactive must surface a genuine trade-off — at least
// two non-dominated configurations.
func TestGridSearchFront(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep simulates eight closed-loop runs")
	}
	evs := Evaluate("flash-crowd-reactive", "drrs", testSpace().Grid(), []int64{5}, fitness.DefaultWeights())
	if len(evs) != 8 {
		t.Fatalf("evaluated %d candidates, want 8", len(evs))
	}
	front := Pareto(evs)
	if len(front) < 2 {
		for _, e := range evs {
			t.Logf("%-40s score %.2f %+v", e.Candidate.Label(), e.Score, e.Components)
		}
		t.Fatalf("Pareto front has %d member(s), want >= 2 non-dominated configurations", len(front))
	}
	// Front members must be mutually non-dominated.
	for i := range front {
		for j := range front {
			if i != j && fitness.Dominates(front[i].Components, front[j].Components) {
				t.Errorf("front member %v dominates front member %v", front[i].Candidate, front[j].Candidate)
			}
		}
	}
}

// TestEvolveDeterministic pins the acceptance bar's last clause: two
// evolutionary sweeps with the same (scenario, search-seed) tuple evaluate
// the same candidates in the same order with identical fitness.
func TestEvolveDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("evolutionary sweep simulates a dozen closed-loop runs")
	}
	cfg := EvolveConfig{
		Scenario:    "flash-crowd-reactive",
		Mechanism:   "drrs",
		Seeds:       []int64{5},
		SearchSeed:  7,
		Population:  4,
		Generations: 2,
		Space:       testSpace(),
	}
	a := Evolve(cfg)
	b := Evolve(cfg)
	if len(a) == 0 {
		t.Fatal("sweep evaluated no candidates")
	}
	if len(a) != len(b) {
		t.Fatalf("sweep sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Candidate != b[i].Candidate {
			t.Errorf("candidate %d differs: %v vs %v", i, a[i].Candidate, b[i].Candidate)
		}
		if a[i].Components != b[i].Components || a[i].Score != b[i].Score {
			t.Errorf("fitness %d differs: %+v (%.4f) vs %+v (%.4f)",
				i, a[i].Components, a[i].Score, b[i].Components, b[i].Score)
		}
	}
	// A different search seed must explore a different trajectory (the
	// stream is named, so this also guards against the seed being ignored).
	cfg.SearchSeed = 8
	c := Evolve(cfg)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i].Candidate != c[i].Candidate {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("search seed 8 explored the identical candidate sequence as seed 7 — the RNG stream is ignoring the seed")
	}
}
