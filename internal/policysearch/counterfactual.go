package policysearch

import (
	"fmt"
	"strings"

	"drrs/internal/bench"
	"drrs/internal/control"
	"drrs/internal/fitness"
)

// Counterfactual pairs a baseline run with its forced re-execution.
type Counterfactual struct {
	Scenario  string
	Mechanism string
	Seed      int64
	Spec      []control.Intervention
	Base      bench.Outcome
	Forced    bench.Outcome
}

// RunCounterfactual re-executes one seeded scenario twice — unforced, then
// with the interventions applied — over the parallel harness. Both runs share
// the seed and every RNG stream, so the outcome diff is attributable to the
// forced forks alone.
func RunCounterfactual(scenario, mech string, seed int64, ivs []control.Intervention) Counterfactual {
	outs := bench.RunParallel([]bench.RunSpec{
		{Scenario: bench.ScenarioByName(scenario, seed), Mechanism: mech},
		{Scenario: bench.ScenarioByName(scenario, seed).WithInterventions(ivs), Mechanism: mech},
	}, bench.Workers)
	return Counterfactual{
		Scenario: scenario, Mechanism: mech, Seed: seed, Spec: ivs,
		Base: outs[0], Forced: outs[1],
	}
}

// FormatDiff renders the side-by-side outcome diff: headline metrics and
// fitness components for both runs, then each run's decision audit trail
// with the forced forks marked.
func (cf Counterfactual) FormatDiff() string {
	var specs []string
	for _, iv := range cf.Spec {
		specs = append(specs, iv.String())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "counterfactual %q — %s/%s seed %d\n",
		strings.Join(specs, ";"), cf.Scenario, cf.Mechanism, cf.Seed)
	fmt.Fprintf(&b, "%-24s %14s %14s %14s\n", "", "baseline", "forced", "delta")

	base, forced := cf.Base, cf.Forced
	bc, fc := base.Fitness(), forced.Fitness()
	w := fitness.DefaultWeights()
	num := func(label string, bv, fv float64) {
		fmt.Fprintf(&b, "%-24s %14.2f %14.2f %+14.2f\n", label, bv, fv, fv-bv)
	}
	num("peak latency (ms)", base.PeakIn(0, base.EndAt), forced.PeakIn(0, forced.EndAt))
	num("avg latency (ms)", base.AvgIn(0, base.EndAt), forced.AvgIn(0, forced.EndAt))
	num("SLO violations (s)", bc.SLOViolations, fc.SLOViolations)
	num("migration (MB)", bc.MigrationMB, fc.MigrationMB)
	num("instance-seconds", bc.InstanceSeconds, fc.InstanceSeconds)
	num("oscillations", bc.Oscillations, fc.Oscillations)
	num("fitness score", bc.Score(w), fc.Score(w))
	num("decisions", float64(len(base.Decisions)), float64(len(forced.Decisions)))
	num("operations launched", float64(len(base.Waves)), float64(len(forced.Waves)))
	fmt.Fprintf(&b, "%-24s %14d %14d\n", "final parallelism",
		bench.FinalParallelism(base), bench.FinalParallelism(forced))

	b.WriteString("\nbaseline decisions:\n")
	b.WriteString(bench.FormatDecisions(base))
	b.WriteString("forced decisions:\n")
	b.WriteString(bench.FormatDecisions(forced))
	return b.String()
}
