package policysearch

import (
	"fmt"
	"strings"

	"drrs/internal/bench"
	"drrs/internal/fitness"
)

// SearchConfig parameterizes the search figure.
type SearchConfig struct {
	// Scenario and Mechanism name the workload under search.
	Scenario  string
	Mechanism string
	// Seeds are the per-candidate evaluation seeds.
	Seeds []int64
	// Mode selects the sweep: "grid", "evolve", or "both" (grid first, then
	// the evolutionary sweep over the same space; fronts merge).
	Mode string
	// SearchSeed drives the evolutionary sweep's RNG stream.
	SearchSeed int64
	// Weights score candidates (zero = DefaultWeights); Space is the knob
	// menu (zero = DefaultSpace).
	Weights fitness.Weights
	Space   Space
}

func (cfg *SearchConfig) fillDefaults() {
	if cfg.Mechanism == "" {
		cfg.Mechanism = "drrs"
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1}
	}
	if cfg.Mode == "" {
		cfg.Mode = "both"
	}
	if cfg.SearchSeed == 0 {
		cfg.SearchSeed = 1
	}
	if cfg.Weights == (fitness.Weights{}) {
		cfg.Weights = fitness.DefaultWeights()
	}
	if len(cfg.Space.Policies) == 0 {
		cfg.Space = DefaultSpace()
	}
}

// Search runs the configured sweep(s) and renders the per-scenario Pareto
// front as a figure: one row per evaluated candidate (front members
// starred), with the fitness components filled into the machine-readable
// rows so -json artifacts carry the full objective data.
func Search(cfg SearchConfig) bench.FigureResult {
	cfg.fillDefaults()
	var all []Evaluated
	switch cfg.Mode {
	case "grid":
		all = Evaluate(cfg.Scenario, cfg.Mechanism, cfg.Space.Grid(), cfg.Seeds, cfg.Weights)
	case "evolve":
		all = Evolve(EvolveConfig{
			Scenario: cfg.Scenario, Mechanism: cfg.Mechanism, Seeds: cfg.Seeds,
			SearchSeed: cfg.SearchSeed, Weights: cfg.Weights, Space: cfg.Space,
		})
	case "both":
		all = Evaluate(cfg.Scenario, cfg.Mechanism, cfg.Space.Grid(), cfg.Seeds, cfg.Weights)
		all = append(all, Evolve(EvolveConfig{
			Scenario: cfg.Scenario, Mechanism: cfg.Mechanism, Seeds: cfg.Seeds,
			SearchSeed: cfg.SearchSeed, Weights: cfg.Weights, Space: cfg.Space,
		})...)
	default:
		panic(fmt.Sprintf("policysearch: unknown search mode %q (grid | evolve | both)", cfg.Mode))
	}
	front := Pareto(all)
	onFront := make(map[Candidate]bool, len(front))
	for _, e := range front {
		onFront[e.Candidate] = true
	}

	ranked := append([]Evaluated(nil), all...)
	sortEvaluated(ranked)
	var b strings.Builder
	fmt.Fprintf(&b, "Policy search (%s/%s, mode %s, %d candidates, seeds %v)\n",
		cfg.Scenario, cfg.Mechanism, cfg.Mode, len(all), cfg.Seeds)
	fmt.Fprintf(&b, "weights: SLO %.2f  migration/MB %.3f  instance-sec %.3f  oscillation %.2f\n",
		cfg.Weights.SLO, cfg.Weights.MigrationMB, cfg.Weights.InstanceSeconds, cfg.Weights.Oscillation)
	fmt.Fprintf(&b, "Pareto front: %d non-dominated configuration(s) (*)\n\n", len(front))
	fmt.Fprintf(&b, "  %-40s %10s %8s %10s %10s %6s\n",
		"candidate", "score", "SLO(s)", "mig(MB)", "inst-sec", "osc")
	rows := make(map[string]bench.Row, len(all))
	for _, e := range ranked {
		mark := " "
		if onFront[e.Candidate] {
			mark = "*"
		}
		c := e.Components
		fmt.Fprintf(&b, "%s %-40s %10.2f %8.0f %10.2f %10.0f %6.0f\n",
			mark, e.Candidate.Label(), e.Score, c.SLOViolations, c.MigrationMB, c.InstanceSeconds, c.Oscillations)
		rows[e.Candidate.Label()] = bench.Row{Fitness: fitnessRow(e, cfg.Weights)}
	}
	return bench.FigureResult{Title: "search/" + cfg.Scenario, Text: b.String(), Rows: rows}
}

// fitnessRow spreads one candidate's per-seed fitness vectors into the
// figure-row stats (mean ± std across seeds).
func fitnessRow(e Evaluated, w fitness.Weights) *bench.FitnessStats {
	var slo, mig, inst, osc, score []float64
	for _, c := range e.PerSeed {
		slo = append(slo, c.SLOViolations)
		mig = append(mig, c.MigrationMB)
		inst = append(inst, c.InstanceSeconds)
		osc = append(osc, c.Oscillations)
		score = append(score, c.Score(w))
	}
	return &bench.FitnessStats{
		SLOViolations:   bench.NewStat(slo),
		MigrationMB:     bench.NewStat(mig),
		InstanceSeconds: bench.NewStat(inst),
		Oscillations:    bench.NewStat(osc),
		Score:           bench.NewStat(score),
	}
}
