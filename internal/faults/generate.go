package faults

import (
	"sort"

	"drrs/internal/simtime"
)

// GenConfig bounds the fault schedules Generate draws. The zero value of
// every knob falls back to a sensible default, so callers only name the
// targets (Nodes/Racks) and whatever they want to pin.
type GenConfig struct {
	// Nodes are crash/straggle targets; Racks are uplink targets. An empty
	// list disables the kinds that need it.
	Nodes []string
	Racks []string
	// MinFaults..MaxFaults bounds the plan size (defaults 1..3).
	MinFaults int
	MaxFaults int
	// Onset is the earliest fault time; Window is the span after Onset in
	// which every onset lands (defaults 10s and 10s — inside the measured
	// phase of the standard scenario shape).
	Onset  simtime.Duration
	Window simtime.Duration
	// CrashWeight/StraggleWeight/UplinkWeight are relative kind weights
	// (each defaults to 1 when its target list is non-empty).
	CrashWeight    int
	StraggleWeight int
	UplinkWeight   int
	// RestartProb is the probability a crash schedules a restart (default
	// 0.75); restarts land in [RestartMin, RestartMax] (defaults 2s..8s).
	RestartProb float64
	RestartMin  simtime.Duration
	RestartMax  simtime.Duration
	// HealMin..HealMax bounds straggle/uplink heal windows (defaults
	// 3s..12s).
	HealMin simtime.Duration
	HealMax simtime.Duration
	// PartitionProb is the probability an uplink fault partitions the rack
	// outright instead of degrading it (default 0.5).
	PartitionProb float64
	// CheckpointEvery/RecoveryDelay/Retries/RetryBase/RetryCap pass through
	// to the generated Plan (Plan defaults apply where zero).
	CheckpointEvery simtime.Duration
	RecoveryDelay   simtime.Duration
	Retries         int
	RetryBase       simtime.Duration
	RetryCap        simtime.Duration
}

func (cfg *GenConfig) fillDefaults() {
	if cfg.MinFaults <= 0 {
		cfg.MinFaults = 1
	}
	if cfg.MaxFaults < cfg.MinFaults {
		cfg.MaxFaults = cfg.MinFaults + 2
	}
	if cfg.Onset <= 0 {
		cfg.Onset = 10 * simtime.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * simtime.Second
	}
	if len(cfg.Nodes) > 0 {
		if cfg.CrashWeight <= 0 {
			cfg.CrashWeight = 1
		}
		if cfg.StraggleWeight <= 0 {
			cfg.StraggleWeight = 1
		}
	} else {
		cfg.CrashWeight, cfg.StraggleWeight = 0, 0
	}
	if len(cfg.Racks) > 0 {
		if cfg.UplinkWeight <= 0 {
			cfg.UplinkWeight = 1
		}
	} else {
		cfg.UplinkWeight = 0
	}
	if cfg.RestartProb <= 0 {
		cfg.RestartProb = 0.75
	}
	if cfg.RestartMin <= 0 {
		cfg.RestartMin = 2 * simtime.Second
	}
	if cfg.RestartMax < cfg.RestartMin {
		cfg.RestartMax = cfg.RestartMin + 6*simtime.Second
	}
	if cfg.HealMin <= 0 {
		cfg.HealMin = 3 * simtime.Second
	}
	if cfg.HealMax < cfg.HealMin {
		cfg.HealMax = cfg.HealMin + 9*simtime.Second
	}
	if cfg.PartitionProb <= 0 {
		cfg.PartitionProb = 0.5
	}
}

// Generate draws a randomized fault schedule from rng — the chaos search's
// fuzzer. Every choice (count, kinds, targets, timings, heal windows) comes
// from the one stream in a fixed order, so the (seed, config) pair fully
// determines the plan; times are millisecond-quantized and factors and
// bandwidths come from small menus, which keeps generated plans readable and
// shrinker-friendly. Plans carry no Jitter: the randomness already happened
// here, and a repro must replay exactly.
func Generate(rng *simtime.RNG, cfg GenConfig) Plan {
	cfg.fillDefaults()
	plan := Plan{
		CheckpointEvery: cfg.CheckpointEvery,
		RecoveryDelay:   cfg.RecoveryDelay,
		TransferRetries: cfg.Retries,
		RetryBase:       cfg.RetryBase,
		RetryCap:        cfg.RetryCap,
	}
	total := cfg.CrashWeight + cfg.StraggleWeight + cfg.UplinkWeight
	if total == 0 {
		return plan // no targets to fault
	}
	n := cfg.MinFaults + rng.Intn(cfg.MaxFaults-cfg.MinFaults+1)
	for i := 0; i < n; i++ {
		f := Fault{At: cfg.Onset + quantized(rng, cfg.Window)}
		switch w := rng.Intn(total); {
		case w < cfg.CrashWeight:
			f.Kind = Crash
			f.Node = cfg.Nodes[rng.Intn(len(cfg.Nodes))]
			if rng.Float64() < cfg.RestartProb {
				f.Restart = durRange(rng, cfg.RestartMin, cfg.RestartMax)
			}
		case w < cfg.CrashWeight+cfg.StraggleWeight:
			f.Kind = Straggle
			f.Node = cfg.Nodes[rng.Intn(len(cfg.Nodes))]
			f.Factor = 0.2 + 0.1*float64(rng.Intn(5)) // 0.2 .. 0.6
			f.Heal = durRange(rng, cfg.HealMin, cfg.HealMax)
		default:
			f.Kind = Uplink
			f.Rack = cfg.Racks[rng.Intn(len(cfg.Racks))]
			if rng.Float64() >= cfg.PartitionProb {
				f.Bandwidth = float64(int64(256<<10) << rng.Intn(4)) // 256KB..2MB/s
			}
			f.Heal = durRange(rng, cfg.HealMin, cfg.HealMax)
		}
		plan.Faults = append(plan.Faults, f)
	}
	sort.SliceStable(plan.Faults, func(i, j int) bool { return plan.Faults[i].At < plan.Faults[j].At })
	return plan
}

// quantized draws a millisecond-quantized offset in [0, span).
func quantized(rng *simtime.RNG, span simtime.Duration) simtime.Duration {
	ms := int64(span / simtime.Millisecond)
	if ms <= 0 {
		return 0
	}
	return simtime.Duration(rng.Int63n(ms)) * simtime.Millisecond
}

// durRange draws a millisecond-quantized duration in [min, max].
func durRange(rng *simtime.RNG, min, max simtime.Duration) simtime.Duration {
	return min + quantized(rng, max-min+simtime.Millisecond)
}
