package faults

import (
	"strings"
	"testing"

	"drrs/internal/simtime"
)

func TestParseSpecFull(t *testing.T) {
	p, err := ParseSpec("crash@12s:node=r1n0,restart=6s; straggle@15s:node=r0n1,factor=0.3,heal=10s;" +
		"uplink@14s:rack=r0,bw=0,heal=8s;ckpt=2s;recovery=1s")
	if err != nil {
		t.Fatal(err)
	}
	if p.CheckpointEvery != 2*simtime.Second || p.RecoveryDelay != simtime.Second {
		t.Fatalf("plan knobs %v/%v", p.CheckpointEvery, p.RecoveryDelay)
	}
	if len(p.Faults) != 3 {
		t.Fatalf("parsed %d faults, want 3", len(p.Faults))
	}
	// Entries sort stably by onset: crash@12s, uplink@14s, straggle@15s.
	if p.Faults[0].Kind != Crash || p.Faults[1].Kind != Uplink || p.Faults[2].Kind != Straggle {
		t.Fatalf("order %v %v %v", p.Faults[0].Kind, p.Faults[1].Kind, p.Faults[2].Kind)
	}
	c := p.Faults[0]
	if c.Node != "r1n0" || c.At != simtime.Sec(12) || c.Restart != simtime.Sec(6) {
		t.Fatalf("crash %+v", c)
	}
	u := p.Faults[1]
	if u.Rack != "r0" || u.Bandwidth != 0 || u.Heal != simtime.Sec(8) {
		t.Fatalf("uplink %+v", u)
	}
	s := p.Faults[2]
	if s.Node != "r0n1" || s.Factor != 0.3 || s.Heal != simtime.Sec(10) {
		t.Fatalf("straggle %+v", s)
	}
	if sum := p.Summary(); !strings.Contains(sum, "crash@") || !strings.Contains(sum, "partition") {
		t.Fatalf("summary %q", sum)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"explode@12s:node=n0",          // unknown kind
		"crash:node=n0",                // missing @time
		"crash@12s",                    // missing node=
		"crash@soon:node=n0",           // bad duration
		"straggle@1s:node=n0",          // missing factor
		"straggle@1s:node=n0,factor=0", // factor must be > 0
		"uplink@1s:bw=0",               // missing rack=
		"crash@1s:node=n0,volume=11",   // unknown arg
		"crash@1s:node",                // arg without =
		"ckpt=fast",                    // bad plan knob
		"retry=-1",                     // retry count must be >= 0
		"retry=many",                   // retry count must be numeric
		"retrybase=soon",               // bad backoff duration
		"retrycap=2x",                  // bad backoff cap
		"crash@1s:node=n0,jitter=lots", // bad jitter value
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestParseSpecEmptyAndDefaults(t *testing.T) {
	p, err := ParseSpec("crash@1s:node=n0")
	if err != nil {
		t.Fatal(err)
	}
	// Plan knobs default only inside the injector; the parsed plan reports
	// what the spec said (zero = default).
	if p.CheckpointEvery != 0 || p.RecoveryDelay != 0 {
		t.Fatalf("unset knobs %v/%v", p.CheckpointEvery, p.RecoveryDelay)
	}
	var filled = *p
	filled.fillDefaults()
	if filled.CheckpointEvery != 2*simtime.Second || filled.RecoveryDelay != simtime.Second {
		t.Fatalf("defaults %v/%v", filled.CheckpointEvery, filled.RecoveryDelay)
	}
	// Blank entries (trailing semicolons, spaces) are ignored.
	if q, err := ParseSpec(" ; crash@1s:node=n0 ; "); err != nil || len(q.Faults) != 1 {
		t.Fatalf("blank-entry handling: %v %+v", err, q)
	}
}

// TestNilInjectorIsSafe pins the nil-plan contract: callers wire the injector
// through unconditionally, so every method on a nil *Injector must be a safe
// no-op — healthy runs pay nothing for the fault layer.
func TestNilInjectorIsSafe(t *testing.T) {
	inj := NewInjector(nil, nil, 7)
	if inj != nil {
		t.Fatal("nil plan must yield a nil injector")
	}
	inj.Start()
	inj.Stop()
	if h, note := inj.Health(); h != 0 || note != "" {
		t.Fatalf("nil Health = %d %q", h, note)
	}
	if st := inj.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if inj.Checkpointer() != nil {
		t.Fatal("nil Checkpointer must be nil")
	}
	var p *Plan
	if p.Summary() != "" {
		t.Fatal("nil plan summary must be empty")
	}
}
