// Package faults is the deterministic fault-injection and recovery layer: a
// declarative Plan of scheduled disruptions — node crashes with optional
// restart, straggler onset, rack-uplink degradation or partition — executed
// on the simulated clock against the cluster and engine, plus the recovery
// machinery that restores crashed instances from periodic state checkpoints.
//
// Determinism rules:
//
//   - Every fault fires at a planned virtual-time offset; the dedicated
//     "faults" RNG stream is consulted only for per-fault Jitter, so plans
//     without jitter need no randomness at all.
//   - The Injector (and its checkpointer) is only created when a Plan is
//     present, so unfaulted runs schedule no extra events and stay
//     byte-identical with pre-fault-layer builds.
//   - Recovery is closed-loop: crashed instances are re-placed through the
//     cluster's placement policy, their key groups restored from the newest
//     snapshot that held them, and the progress lost since that snapshot is
//     re-earned as replay time (ChargeBusy) rather than silently forgiven.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"drrs/internal/cluster"
	"drrs/internal/engine"
	"drrs/internal/netsim"
	"drrs/internal/simtime"
)

// Kind names a fault class.
type Kind string

// The supported fault kinds.
const (
	// Crash kills a node: its instances die in place (state wiped, inputs
	// keep queueing) and are revived after the plan's RecoveryDelay —
	// re-placed via the placement policy, state restored from checkpoint.
	Crash Kind = "crash"
	// Straggle multiplies a node's processing speed by Factor mid-run.
	Straggle Kind = "straggle"
	// Uplink degrades a rack's shared uplink to Bandwidth bytes/s, or
	// partitions the rack entirely when Bandwidth <= 0.
	Uplink Kind = "uplink"
)

// Fault is one scheduled disruption.
type Fault struct {
	Kind Kind
	// At is the onset offset from the injector's start.
	At simtime.Duration
	// Node targets crash/straggle faults; Rack targets uplink faults.
	Node string
	Rack string
	// Restart, when positive, brings a crashed node back at At+Restart.
	Restart simtime.Duration
	// Factor is the straggler speed multiplier (0.3 → node runs at 30%).
	Factor float64
	// Bandwidth is the degraded uplink rate in bytes/s; <= 0 partitions the
	// rack (bandwidth pools treat zero as infinite, so partition is a flag).
	Bandwidth float64
	// Heal, when positive, reverts a straggle/uplink fault at At+Heal.
	Heal simtime.Duration
	// Jitter is the relative uniform jitter applied to At through the
	// dedicated faults RNG stream (0 = exactly on schedule).
	Jitter float64
}

// Plan is a declarative fault schedule plus the recovery knobs.
type Plan struct {
	// CheckpointEvery is the periodic state-snapshot cadence (default 2s).
	CheckpointEvery simtime.Duration
	// RecoveryDelay is how long crashed instances stay down before the
	// recovery path revives them (default 1s) — detection plus restart cost.
	RecoveryDelay simtime.Duration
	// TransferRetries, when positive, arms the cluster's transfer retry
	// policy: transient transfer failures (partitioned uplink, restartable
	// crash) re-attempt up to this many times with capped exponential
	// backoff. Zero keeps the historical fail-fast behavior.
	TransferRetries int
	// RetryBase and RetryCap shape the backoff (defaults 250ms and 2s; only
	// meaningful when TransferRetries > 0).
	RetryBase simtime.Duration
	RetryCap  simtime.Duration
	Faults    []Fault
}

func (p *Plan) fillDefaults() {
	if p.CheckpointEvery <= 0 {
		p.CheckpointEvery = 2 * simtime.Second
	}
	if p.RecoveryDelay <= 0 {
		p.RecoveryDelay = simtime.Second
	}
	if p.TransferRetries > 0 {
		if p.RetryBase <= 0 {
			p.RetryBase = 250 * simtime.Millisecond
		}
		if p.RetryCap <= 0 {
			p.RetryCap = 2 * simtime.Second
		}
	}
}

// Summary renders the plan compactly for listings.
func (p *Plan) Summary() string {
	if p == nil {
		return ""
	}
	parts := make([]string, 0, len(p.Faults))
	for _, f := range p.Faults {
		s := fmt.Sprintf("%s@%s", f.Kind, f.At)
		switch f.Kind {
		case Crash:
			s += ":" + f.Node
			if f.Restart > 0 {
				s += fmt.Sprintf("+restart@%s", f.Restart)
			}
		case Straggle:
			s += fmt.Sprintf(":%s×%.2g", f.Node, f.Factor)
		case Uplink:
			if f.Bandwidth <= 0 {
				s += ":" + f.Rack + " partition"
			} else {
				s += fmt.Sprintf(":%s→%.3gMB/s", f.Rack, f.Bandwidth/1e6)
			}
		}
		if f.Heal > 0 {
			s += fmt.Sprintf("+heal@%s", f.Heal)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "; ")
}

// Spec renders the plan in the exact grammar ParseSpec reads, knobs first,
// so any plan — generated ones included — round-trips through a -faults flag
// value. A shrunk chaos repro is reported this way: the spec string plus the
// scenario seed fully determine the failing run.
func (p *Plan) Spec() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.CheckpointEvery > 0 {
		parts = append(parts, "ckpt="+fmtDur(p.CheckpointEvery))
	}
	if p.RecoveryDelay > 0 {
		parts = append(parts, "recovery="+fmtDur(p.RecoveryDelay))
	}
	if p.TransferRetries > 0 {
		parts = append(parts, fmt.Sprintf("retry=%d", p.TransferRetries))
		if p.RetryBase > 0 {
			parts = append(parts, "retrybase="+fmtDur(p.RetryBase))
		}
		if p.RetryCap > 0 {
			parts = append(parts, "retrycap="+fmtDur(p.RetryCap))
		}
	}
	for _, f := range p.Faults {
		s := fmt.Sprintf("%s@%s", f.Kind, fmtDur(f.At))
		var args []string
		if f.Node != "" {
			args = append(args, "node="+f.Node)
		}
		if f.Rack != "" {
			args = append(args, "rack="+f.Rack)
		}
		if f.Kind == Straggle {
			args = append(args, fmt.Sprintf("factor=%g", f.Factor))
		}
		if f.Kind == Uplink {
			args = append(args, fmt.Sprintf("bw=%g", f.Bandwidth))
		}
		if f.Restart > 0 {
			args = append(args, "restart="+fmtDur(f.Restart))
		}
		if f.Heal > 0 {
			args = append(args, "heal="+fmtDur(f.Heal))
		}
		if f.Jitter > 0 {
			args = append(args, fmt.Sprintf("jitter=%g", f.Jitter))
		}
		if len(args) > 0 {
			s += ":" + strings.Join(args, ",")
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// fmtDur renders a simulated duration in the Go syntax parseDur reads.
func fmtDur(d simtime.Duration) string {
	return (time.Duration(d) * time.Microsecond).String()
}

// Stats aggregates what the injector did and what recovery cost.
type Stats struct {
	// Events counts fault onsets (heals and restarts excluded).
	Events int
	// Crashes counts crash faults executed.
	Crashes int
	// FailedTransfers counts state transfers the cluster reported failed.
	FailedTransfers int
	// RetriedTransfers counts transfer re-attempts scheduled by the
	// cluster's retry policy (only nonzero when the plan arms it).
	RetriedTransfers int
	// WipedGroups counts key groups destroyed by crashes (state discarded at
	// Instance.Fail). Recovery must account for every one of them:
	// WipedGroups == RecoveredGroups + LostGroups + RelocatedGroups is an
	// invariant of a healthy harness, and the chaos search's conservation
	// oracle checks it — it is what catches a recovery path that silently
	// stops running.
	WipedGroups int
	// RecoveredGroups counts key groups restored from checkpoint.
	RecoveredGroups int
	// LostGroups counts key groups no snapshot covered (restored empty).
	LostGroups int
	// RelocatedGroups counts wiped key groups that found a new live home
	// before recovery ran (a superseding migration moved them), so recovery
	// left them alone rather than forking their state.
	RelocatedGroups int
	// ReplayedRecords counts records re-earned as post-restore replay.
	ReplayedRecords uint64
	// RecoveryMs sums, per crash event, the time from onset to the revived
	// instances being caught up (recovery delay plus the slowest replay).
	RecoveryMs float64
}

// Injector executes a Plan against a running simulation.
type Injector struct {
	rt    *engine.Runtime
	plan  Plan
	rng   *simtime.RNG
	ck    *engine.StateCheckpointer
	stats Stats

	// disruptions is the monotonic count the controller's Health hook polls;
	// lastNote describes the latest disruption.
	disruptions int
	lastNote    string
	started     bool
}

// NewInjector builds an injector for the plan. A nil plan yields a nil
// injector — callers can wire it through unconditionally, and every method
// on a nil *Injector is a safe no-op.
func NewInjector(rt *engine.Runtime, plan *Plan, seed int64) *Injector {
	if plan == nil {
		return nil
	}
	p := *plan
	p.fillDefaults()
	return &Injector{rt: rt, plan: p, rng: simtime.NewRNG(seed, "faults")}
}

// Start begins checkpointing and schedules every fault. Call it after
// engine.Runtime.Start, and Stop at teardown (the checkpoint timer re-arms).
func (inj *Injector) Start() {
	if inj == nil || inj.started {
		return
	}
	inj.started = true
	inj.ck = inj.rt.StartStateCheckpoints(inj.plan.CheckpointEvery)
	prevFail := inj.rt.Cluster.OnTransferFail
	inj.rt.Cluster.OnTransferFail = func(from, to netsim.Endpoint, bytes int, err error) {
		inj.stats.FailedTransfers++
		if prevFail != nil {
			prevFail(from, to, bytes, err)
		}
	}
	if inj.plan.TransferRetries > 0 {
		inj.rt.Cluster.TransferRetry = cluster.RetryPolicy{
			Max:  inj.plan.TransferRetries,
			Base: inj.plan.RetryBase,
			Cap:  inj.plan.RetryCap,
		}
	}
	prevRetry := inj.rt.Cluster.OnTransferRetry
	inj.rt.Cluster.OnTransferRetry = func(from, to netsim.Endpoint, bytes int, err error, attempt int) {
		inj.stats.RetriedTransfers++
		if prevRetry != nil {
			prevRetry(from, to, bytes, err, attempt)
		}
	}
	for i := range inj.plan.Faults {
		f := inj.plan.Faults[i]
		at := f.At
		if f.Jitter > 0 {
			at = inj.rng.Jitter(at, f.Jitter)
		}
		inj.rt.Sched.After(at, func() { inj.fire(f) })
	}
}

// Stop cancels the checkpoint timer so the scheduler can drain.
func (inj *Injector) Stop() {
	if inj == nil || inj.ck == nil {
		return
	}
	inj.ck.Stop()
}

// Health implements the controller's disruption feed: a monotonic count and
// a note describing the latest disruption.
func (inj *Injector) Health() (int, string) {
	if inj == nil {
		return 0, ""
	}
	return inj.disruptions, inj.lastNote
}

// Stats returns a copy of the accumulated fault/recovery statistics.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return inj.stats
}

// Checkpointer exposes the injector's state checkpointer (nil-safe).
func (inj *Injector) Checkpointer() *engine.StateCheckpointer {
	if inj == nil {
		return nil
	}
	return inj.ck
}

func (inj *Injector) disrupt(note string) {
	inj.disruptions++
	inj.lastNote = note
	inj.stats.Events++
}

func (inj *Injector) fire(f Fault) {
	switch f.Kind {
	case Crash:
		inj.crash(f)
	case Straggle:
		inj.straggle(f)
	case Uplink:
		inj.uplink(f)
	}
}

func (inj *Injector) crash(f Fault) {
	c := inj.rt.Cluster
	if c.Node(f.Node) == nil {
		return
	}
	inj.disrupt("node " + f.Node + " crashed")
	inj.stats.Crashes++
	crashAt := inj.rt.Sched.Now()
	c.MarkDead(f.Node)
	// Victims: live instances placed on the node. Collected via EachInstance
	// so the order (and thus every recovery event) is deterministic.
	var victims []*engine.Instance
	lost := make(map[*engine.Instance][]int)
	inj.rt.EachInstance(func(in *engine.Instance) {
		nd := c.NodeOf(in.Endpoint())
		if nd == nil || nd.Name != f.Node || in.Dead() {
			return
		}
		victims = append(victims, in)
		lost[in] = in.Fail()
		inj.stats.WipedGroups += len(lost[in])
	})
	if f.Restart > 0 {
		restart := f.Restart
		inj.rt.Sched.After(restart, func() { c.MarkAlive(f.Node) })
	}
	if disableRecovery.Load() {
		// Test hook: the crash's victims stay dead and their state stays
		// gone, so the chaos search's conservation/liveness oracles have a
		// genuine defect to find and shrink.
		return
	}
	inj.rt.Sched.After(inj.plan.RecoveryDelay, func() { inj.recover(crashAt, victims, lost) })
}

// disableRecovery suppresses the crash-recovery re-plan (checkpoint restore,
// replay, revive). It exists solely so chaos-search tests can verify the
// harness catches a recovery regression; atomic because parallel bench
// workers read it concurrently.
var disableRecovery atomic.Bool

// SetDisableRecovery toggles the recovery-suppression test hook and returns
// the previous value so tests can restore it.
func SetDisableRecovery(v bool) bool {
	return disableRecovery.Swap(v)
}

// recover revives a crash's victims: re-place through the placement policy,
// restore lost key groups from the newest snapshot that covered them, and
// charge the progress lost since that snapshot as replay time.
func (inj *Injector) recover(crashAt simtime.Time, victims []*engine.Instance, lost map[*engine.Instance][]int) {
	c := inj.rt.Cluster
	var slowest simtime.Duration
	for _, in := range victims {
		c.PlaceInstance(in.Endpoint())
		op := in.Spec.Name
		for _, kg := range lost[in] {
			if inj.heldElsewhere(op, in, kg) {
				// The group found a new live home while the victim was down
				// (a superseding migration moved it); restoring a stale copy
				// here would fork its state.
				inj.stats.RelocatedGroups++
				continue
			}
			if g, ok := inj.ck.Lookup(op, in.Name(), kg); ok {
				in.Store().OwnGroup(kg)
				in.Store().InstallGroup(kg, g.Clone())
				inj.stats.RecoveredGroups++
			} else {
				in.Store().OwnGroup(kg)
				inj.stats.LostGroups++
			}
		}
		var replay uint64
		if at, ok := inj.ck.ProcessedAt(in.Name()); ok && in.Processed > at {
			replay = in.Processed - at
		}
		inj.stats.ReplayedRecords += replay
		var cost simtime.Duration
		if speed := c.SpeedOf(in.Endpoint()); replay > 0 && speed > 0 {
			cost = simtime.Duration(float64(replay) * float64(in.Spec.CostPerRecord) / speed)
		}
		if cost > slowest {
			slowest = cost
		}
		in.Revive()
		if cost > 0 {
			in.ChargeBusy(cost)
		}
	}
	done := inj.rt.Sched.Now().Add(slowest)
	inj.stats.RecoveryMs += done.Sub(crashAt).Millis()
}

func (inj *Injector) heldElsewhere(op string, victim *engine.Instance, kg int) bool {
	for _, other := range inj.rt.Instances(op) {
		if other != victim && !other.Dead() && other.Store().HasGroup(kg) {
			return true
		}
	}
	return false
}

func (inj *Injector) straggle(f Fault) {
	nd := inj.rt.Cluster.Node(f.Node)
	if nd == nil || f.Factor <= 0 {
		return
	}
	inj.disrupt(fmt.Sprintf("node %s straggling ×%.2g", f.Node, f.Factor))
	orig := nd.Speed
	nd.Speed = orig * f.Factor
	if f.Heal > 0 {
		inj.rt.Sched.After(f.Heal, func() { nd.Speed = orig })
	}
}

func (inj *Injector) uplink(f Fault) {
	r := inj.rt.Cluster.Rack(f.Rack)
	if r == nil {
		return
	}
	origBW, origDown := r.UplinkBandwidth, r.Down
	if f.Bandwidth <= 0 {
		inj.disrupt("rack " + f.Rack + " partitioned")
		r.Down = true
	} else {
		inj.disrupt(fmt.Sprintf("rack %s uplink degraded to %.3g MB/s", f.Rack, f.Bandwidth/1e6))
		r.UplinkBandwidth = f.Bandwidth
	}
	if f.Heal > 0 {
		inj.rt.Sched.After(f.Heal, func() {
			r.UplinkBandwidth, r.Down = origBW, origDown
		})
	}
}

// ParseSpec parses the compact fault-spec grammar used by flags and
// scenarios. Entries are ';'-separated:
//
//	crash@12s:node=r1n0,restart=6s
//	straggle@15s:node=r0n1,factor=0.3,heal=10s
//	uplink@14s:rack=r0,bw=0,heal=8s
//	ckpt=2s          (plan knob: checkpoint cadence)
//	recovery=1s      (plan knob: crash recovery delay)
//	retry=3          (plan knob: transient-transfer retry budget)
//	retrybase=250ms  (plan knob: first retry backoff)
//	retrycap=2s      (plan knob: backoff ceiling)
//
// Durations use Go syntax ("500ms", "12s"); bw is bytes/s ("0" partitions).
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if v, ok := strings.CutPrefix(entry, "ckpt="); ok {
			d, err := parseDur(v)
			if err != nil {
				return nil, fmt.Errorf("faults: ckpt: %w", err)
			}
			p.CheckpointEvery = d
			continue
		}
		if v, ok := strings.CutPrefix(entry, "recovery="); ok {
			d, err := parseDur(v)
			if err != nil {
				return nil, fmt.Errorf("faults: recovery: %w", err)
			}
			p.RecoveryDelay = d
			continue
		}
		if v, ok := strings.CutPrefix(entry, "retry="); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: retry: want a non-negative count, got %q", v)
			}
			p.TransferRetries = n
			continue
		}
		if v, ok := strings.CutPrefix(entry, "retrybase="); ok {
			d, err := parseDur(v)
			if err != nil {
				return nil, fmt.Errorf("faults: retrybase: %w", err)
			}
			p.RetryBase = d
			continue
		}
		if v, ok := strings.CutPrefix(entry, "retrycap="); ok {
			d, err := parseDur(v)
			if err != nil {
				return nil, fmt.Errorf("faults: retrycap: %w", err)
			}
			p.RetryCap = d
			continue
		}
		f, err := parseFault(entry)
		if err != nil {
			return nil, err
		}
		p.Faults = append(p.Faults, f)
	}
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].At < p.Faults[j].At })
	return p, nil
}

func parseFault(entry string) (Fault, error) {
	head, args, _ := strings.Cut(entry, ":")
	kind, at, ok := strings.Cut(head, "@")
	if !ok {
		return Fault{}, fmt.Errorf("faults: %q: want kind@time[:k=v,...]", entry)
	}
	f := Fault{Kind: Kind(kind)}
	switch f.Kind {
	case Crash, Straggle, Uplink:
	default:
		return Fault{}, fmt.Errorf("faults: unknown kind %q (want crash, straggle, uplink)", kind)
	}
	d, err := parseDur(at)
	if err != nil {
		return Fault{}, fmt.Errorf("faults: %q: %w", entry, err)
	}
	f.At = d
	if args != "" {
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return Fault{}, fmt.Errorf("faults: %q: want k=v, got %q", entry, kv)
			}
			if err := f.setArg(k, v); err != nil {
				return Fault{}, fmt.Errorf("faults: %q: %w", entry, err)
			}
		}
	}
	if err := f.validate(); err != nil {
		return Fault{}, fmt.Errorf("faults: %q: %w", entry, err)
	}
	return f, nil
}

func (f *Fault) setArg(k, v string) error {
	switch k {
	case "node":
		f.Node = v
	case "rack":
		f.Rack = v
	case "restart":
		d, err := parseDur(v)
		if err != nil {
			return err
		}
		f.Restart = d
	case "heal":
		d, err := parseDur(v)
		if err != nil {
			return err
		}
		f.Heal = d
	case "factor":
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		f.Factor = x
	case "bw":
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		f.Bandwidth = x
	case "jitter":
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return err
		}
		f.Jitter = x
	default:
		return fmt.Errorf("unknown arg %q", k)
	}
	return nil
}

func (f *Fault) validate() error {
	switch f.Kind {
	case Crash:
		if f.Node == "" {
			return fmt.Errorf("crash needs node=")
		}
	case Straggle:
		if f.Node == "" {
			return fmt.Errorf("straggle needs node=")
		}
		if f.Factor <= 0 {
			return fmt.Errorf("straggle needs factor>0")
		}
	case Uplink:
		if f.Rack == "" {
			return fmt.Errorf("uplink needs rack=")
		}
	}
	return nil
}

func parseDur(s string) (simtime.Duration, error) {
	td, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return simtime.Duration(td / time.Microsecond), nil
}
