package faults

import (
	"testing"

	"drrs/internal/simtime"
)

func genCfg() GenConfig {
	return GenConfig{
		Nodes: []string{"r0n0", "r0n1", "r1n0"},
		Racks: []string{"r0", "r1"},
	}
}

// TestGenerateDeterministic pins the fuzzer's core contract: the (seed,
// config) pair fully determines the plan, so a violation replays from its
// seed alone.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(simtime.NewRNG(42, "chaos/x"), genCfg())
	b := Generate(simtime.NewRNG(42, "chaos/x"), genCfg())
	if a.Spec() != b.Spec() {
		t.Fatalf("same seed diverged:\n  %s\n  %s", a.Spec(), b.Spec())
	}
	c := Generate(simtime.NewRNG(43, "chaos/x"), genCfg())
	if a.Spec() == c.Spec() {
		t.Fatalf("seeds 42 and 43 drew the identical plan %q", a.Spec())
	}
	d := Generate(simtime.NewRNG(42, "chaos/y"), genCfg())
	if a.Spec() == d.Spec() {
		t.Fatalf("distinct RNG streams drew the identical plan %q", a.Spec())
	}
}

// TestGenerateBounds checks every drawn value lands inside the configured
// (or default) bounds, across enough seeds to exercise all three kinds.
func TestGenerateBounds(t *testing.T) {
	cfg := genCfg()
	cfg.MinFaults, cfg.MaxFaults = 2, 5
	cfg.Onset, cfg.Window = 8*simtime.Second, 4*simtime.Second
	cfg.HealMin, cfg.HealMax = simtime.Second, 3*simtime.Second
	cfg.RestartMin, cfg.RestartMax = simtime.Second, 2*simtime.Second
	nodes := map[string]bool{"r0n0": true, "r0n1": true, "r1n0": true}
	racks := map[string]bool{"r0": true, "r1": true}
	kinds := map[Kind]int{}
	for seed := int64(0); seed < 40; seed++ {
		p := Generate(simtime.NewRNG(seed, "bounds"), cfg)
		if len(p.Faults) < 2 || len(p.Faults) > 5 {
			t.Fatalf("seed %d: %d faults outside [2,5]", seed, len(p.Faults))
		}
		for i, f := range p.Faults {
			kinds[f.Kind]++
			if f.At < cfg.Onset || f.At >= cfg.Onset+cfg.Window {
				t.Fatalf("seed %d: onset %v outside [%v,%v)", seed, f.At, cfg.Onset, cfg.Onset+cfg.Window)
			}
			if f.At%simtime.Millisecond != 0 {
				t.Fatalf("seed %d: onset %v not ms-quantized", seed, f.At)
			}
			if i > 0 && f.At < p.Faults[i-1].At {
				t.Fatalf("seed %d: faults not sorted by onset", seed)
			}
			if f.Jitter != 0 {
				t.Fatalf("seed %d: generated plans must not carry jitter", seed)
			}
			switch f.Kind {
			case Crash:
				if !nodes[f.Node] {
					t.Fatalf("seed %d: crash target %q not in config", seed, f.Node)
				}
				if f.Restart != 0 && (f.Restart < cfg.RestartMin || f.Restart > cfg.RestartMax) {
					t.Fatalf("seed %d: restart %v outside bounds", seed, f.Restart)
				}
			case Straggle:
				if !nodes[f.Node] {
					t.Fatalf("seed %d: straggle target %q not in config", seed, f.Node)
				}
				if f.Factor < 0.2 || f.Factor > 0.6+1e-9 {
					t.Fatalf("seed %d: factor %g outside menu", seed, f.Factor)
				}
				if f.Heal < cfg.HealMin || f.Heal > cfg.HealMax {
					t.Fatalf("seed %d: heal %v outside bounds", seed, f.Heal)
				}
			case Uplink:
				if !racks[f.Rack] {
					t.Fatalf("seed %d: uplink target %q not in config", seed, f.Rack)
				}
				if f.Heal < cfg.HealMin || f.Heal > cfg.HealMax {
					t.Fatalf("seed %d: heal %v outside bounds", seed, f.Heal)
				}
			}
		}
	}
	for _, k := range []Kind{Crash, Straggle, Uplink} {
		if kinds[k] == 0 {
			t.Fatalf("40 seeds never drew a %s fault", k)
		}
	}
}

// TestGenerateSpecRoundTrip: every generated plan survives Spec → ParseSpec
// unchanged — the property that makes a shrunk repro string authoritative.
func TestGenerateSpecRoundTrip(t *testing.T) {
	cfg := genCfg()
	cfg.Retries = 2
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(simtime.NewRNG(seed, "roundtrip"), cfg)
		q, err := ParseSpec(p.Spec())
		if err != nil {
			t.Fatalf("seed %d: ParseSpec(%q): %v", seed, p.Spec(), err)
		}
		if q.Spec() != p.Spec() {
			t.Fatalf("seed %d: round trip changed the plan:\n  %s\n  %s", seed, p.Spec(), q.Spec())
		}
	}
}

// TestGenerateNoTargets: with nothing to fault, the plan is empty (but keeps
// the pass-through knobs).
func TestGenerateNoTargets(t *testing.T) {
	p := Generate(simtime.NewRNG(1, "none"), GenConfig{Retries: 3})
	if len(p.Faults) != 0 {
		t.Fatalf("targetless config generated %d faults", len(p.Faults))
	}
	if p.TransferRetries != 3 {
		t.Fatalf("retry knob dropped: %d", p.TransferRetries)
	}
}

// TestGenerateNodesOnly: without racks, no uplink faults are drawn (and vice
// versa) — the kind weights collapse to the available targets.
func TestGenerateNodesOnly(t *testing.T) {
	cfg := GenConfig{Nodes: []string{"n0"}, MinFaults: 3, MaxFaults: 3}
	for seed := int64(0); seed < 10; seed++ {
		for _, f := range Generate(simtime.NewRNG(seed, "n"), cfg).Faults {
			if f.Kind == Uplink {
				t.Fatalf("rackless config drew an uplink fault")
			}
		}
	}
	cfg = GenConfig{Racks: []string{"r0"}, MinFaults: 3, MaxFaults: 3}
	for seed := int64(0); seed < 10; seed++ {
		for _, f := range Generate(simtime.NewRNG(seed, "r"), cfg).Faults {
			if f.Kind != Uplink {
				t.Fatalf("nodeless config drew a %s fault", f.Kind)
			}
		}
	}
}
