package faults

import (
	"testing"

	"drrs/internal/cluster"
	"drrs/internal/dataflow"
	"drrs/internal/engine"
	"drrs/internal/simtime"
)

// injectorHarness builds the smallest runtime an injector can drive: one
// silent source on a two-node, one-rack cluster. Fault mechanics (speed
// factors, uplink state, heal timers, onset jitter) act on the cluster and
// scheduler alone, so no traffic needs to flow.
func injectorHarness(t *testing.T, plan *Plan, seed int64) (*simtime.Scheduler, *cluster.Cluster, *Injector) {
	t.Helper()
	s := simtime.NewScheduler()
	cl := cluster.New(s)
	cl.AddRack("r0", 8<<20, simtime.Ms(1))
	cl.AddNode("n0", 1.0, 16<<20).Rack = "r0"
	cl.AddNode("n1", 1.0, 16<<20).Rack = "r0"
	g := dataflow.NewGraph()
	g.AddOperator(&dataflow.OperatorSpec{
		Name: "src", Parallelism: 1,
		Source: func(ctx dataflow.SourceContext) {},
	})
	rt := engine.New(s, g, cl, engine.Config{Seed: seed, MarkerInterval: -1})
	rt.Start()
	inj := NewInjector(rt, plan, seed)
	inj.Start()
	return s, cl, inj
}

// TestStraggleHealScheduling: a straggle fault multiplies the node's speed at
// onset and the heal timer restores the original speed, both on schedule.
func TestStraggleHealScheduling(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: Straggle, At: simtime.Sec(1), Node: "n0", Factor: 0.5, Heal: simtime.Sec(2)},
	}}
	s, cl, inj := injectorHarness(t, plan, 1)
	defer inj.Stop()
	s.RunUntil(simtime.Time(simtime.Ms(999)))
	if sp := cl.Node("n0").Speed; sp != 1.0 {
		t.Fatalf("speed %g before onset", sp)
	}
	s.RunUntil(simtime.Time(simtime.Ms(1500)))
	if sp := cl.Node("n0").Speed; sp != 0.5 {
		t.Fatalf("speed %g during straggle, want 0.5", sp)
	}
	s.RunUntil(simtime.Time(simtime.Ms(2999)))
	if sp := cl.Node("n0").Speed; sp != 0.5 {
		t.Fatalf("speed %g before heal, want 0.5", sp)
	}
	s.RunUntil(simtime.Time(simtime.Ms(3001)))
	if sp := cl.Node("n0").Speed; sp != 1.0 {
		t.Fatalf("speed %g after heal, want 1.0", sp)
	}
	if ev, _ := inj.Health(); ev != 1 {
		t.Fatalf("disruptions %d, want 1 (heal is not a disruption)", ev)
	}
}

// TestUplinkHealScheduling: partition flips Rack.Down at onset and the heal
// restores both flags; a degrade variant restores the original bandwidth.
func TestUplinkHealScheduling(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: Uplink, At: simtime.Sec(1), Rack: "r0", Bandwidth: 0, Heal: simtime.Sec(1)},
		{Kind: Uplink, At: simtime.Sec(4), Rack: "r0", Bandwidth: 256 << 10, Heal: simtime.Sec(1)},
	}}
	s, cl, inj := injectorHarness(t, plan, 1)
	defer inj.Stop()
	r := cl.Rack("r0")
	s.RunUntil(simtime.Time(simtime.Ms(1500)))
	if !r.Down {
		t.Fatal("rack not partitioned at onset")
	}
	s.RunUntil(simtime.Time(simtime.Ms(2500)))
	if r.Down || r.UplinkBandwidth != 8<<20 {
		t.Fatalf("partition heal incomplete: down=%v bw=%g", r.Down, r.UplinkBandwidth)
	}
	s.RunUntil(simtime.Time(simtime.Ms(4500)))
	if r.Down || r.UplinkBandwidth != 256<<10 {
		t.Fatalf("degrade not applied: down=%v bw=%g", r.Down, r.UplinkBandwidth)
	}
	s.RunUntil(simtime.Time(simtime.Ms(5500)))
	if r.UplinkBandwidth != 8<<20 {
		t.Fatalf("degrade heal restored bw=%g, want original", r.UplinkBandwidth)
	}
}

// straggleOnsetAt runs one jittered straggle plan and samples (on a 1 ms
// grid) when the speed change lands.
func straggleOnsetAt(t *testing.T, seed int64, jitter float64) simtime.Duration {
	t.Helper()
	plan := &Plan{Faults: []Fault{
		{Kind: Straggle, At: simtime.Sec(2), Node: "n0", Factor: 0.5, Jitter: jitter},
	}}
	s, cl, inj := injectorHarness(t, plan, seed)
	defer inj.Stop()
	for at := simtime.Ms(1000); at <= simtime.Ms(4000); at += simtime.Ms(1) {
		s.RunUntil(simtime.Time(at))
		if cl.Node("n0").Speed != 1.0 {
			return at
		}
	}
	t.Fatalf("seed %d: jittered fault never fired in [1s,4s]", seed)
	return 0
}

// TestJitterScheduling: per-fault jitter draws from the dedicated "faults"
// stream — deterministic per seed, onset stays inside At·(1±jitter), and a
// zero jitter fires exactly on schedule.
func TestJitterScheduling(t *testing.T) {
	if exact := straggleOnsetAt(t, 5, 0); exact != simtime.Ms(2000) {
		t.Fatalf("unjittered onset observed at %v, want 2s", exact)
	}
	a := straggleOnsetAt(t, 5, 0.25)
	b := straggleOnsetAt(t, 5, 0.25)
	if a != b {
		t.Fatalf("same seed jittered to %v then %v", a, b)
	}
	if lo, hi := simtime.Ms(1500), simtime.Ms(2501); a < lo || a > hi {
		t.Fatalf("jittered onset %v outside [%v, %v]", a, lo, hi)
	}
	seen := map[simtime.Duration]bool{a: true}
	for seed := int64(6); seed < 12; seed++ {
		seen[straggleOnsetAt(t, seed, 0.25)] = true
	}
	if len(seen) < 2 {
		t.Fatal("seven seeds produced one identical jittered onset")
	}
}
